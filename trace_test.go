package ariadne_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"ariadne"
	"ariadne/internal/analytics"
	"ariadne/internal/engine"
	"ariadne/internal/fault"
	"ariadne/internal/obs"
	"ariadne/internal/queries"
	"ariadne/internal/transport"
	"ariadne/internal/value"
)

// Distributed run tracing (PR 7): one trace ID spans master and worker
// processes, the merged timeline decomposes transport overhead into named
// buckets, the run's telemetry is queryable from PQL, and all of it
// survives checkpoint/resume.

// startTCPWorkers spawns n worker processes-in-goroutines (real TCP
// loopback, separate executors — the same isolation a separate process has,
// minus the fork) and returns their addresses.
func startTCPWorkers(t *testing.T, g *ariadne.Graph, prog ariadne.Program, parts, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		x, err := engine.NewExecutor(g, prog, engine.Config{Partitions: parts})
		if err != nil {
			t.Fatal(err)
		}
		w, err := transport.NewWorker(x, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve()
		t.Cleanup(func() { w.Close() })
		addrs[i] = w.Addr()
	}
	return addrs
}

func dialTCP(t *testing.T, g *ariadne.Graph, parts int, addrs []string, mod func(*transport.TCPConfig)) *transport.TCP {
	t.Helper()
	cfg := transport.TCPConfig{
		Addrs: addrs,
		Fingerprint: transport.Fingerprint{
			Partitions:  parts,
			NumVertices: g.NumVertices(),
			NumEdges:    g.NumEdges(),
		},
	}
	if mod != nil {
		mod(&cfg)
	}
	tr, err := transport.DialTCP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func TestDistributedTraceTimeline(t *testing.T) {
	g := rmatGraph(t)
	const parts = 4
	prog := func() ariadne.Program { return &analytics.PageRank{Iterations: 6} }

	m := ariadne.NewMetrics()
	// One dropped frame on partition 1 so the retry bucket is exercised
	// alongside serialize/wire/worker_compute.
	inj := fault.NewInjector(fault.NetMatrix(1, 1, 0)["drop"]...)
	addrs := startTCPWorkers(t, g, prog(), parts, 2)
	tr := dialTCP(t, g, parts, addrs, func(c *transport.TCPConfig) {
		c.MessageDeadline = 100 * time.Millisecond
		c.MaxRetries = 2
		c.Backoff = time.Millisecond
		c.Fault = inj
		c.Metrics = m
	})

	res, err := ariadne.Run(g, prog(),
		ariadne.WithMaxSupersteps(7),
		ariadne.WithPartitions(parts),
		ariadne.WithMetrics(m),
		ariadne.WithSpanTrace(),
		ariadne.WithTransport(tr))
	if err != nil {
		t.Fatal(err)
	}
	if inj.Fired() == 0 {
		t.Fatal("drop fault never fired")
	}

	spans := res.Metrics.Spans()
	if len(spans) == 0 {
		t.Fatal("traced distributed run recorded no spans")
	}

	// One trace ID across every span, master and workers alike.
	tid := res.Metrics.SpanTraceID()
	procs := map[string]bool{}
	bySS := map[int]map[string]int64{} // superstep -> phase -> dur
	for _, sp := range spans {
		if sp.TraceID != tid {
			t.Fatalf("span %s has trace ID %#x, want %#x", sp.Name, sp.TraceID, tid)
		}
		procs[sp.Proc] = true
		if sp.Partition == -1 && sp.Proc == obs.ProcMaster {
			if bySS[sp.Superstep] == nil {
				bySS[sp.Superstep] = map[string]int64{}
			}
			bySS[sp.Superstep][sp.Name] += sp.Dur
		}
	}
	if !procs[obs.ProcMaster] {
		t.Error("no master spans")
	}
	for _, a := range addrs {
		if !procs["worker:"+a] {
			t.Errorf("no spans from worker %s (procs: %v)", a, procs)
		}
	}

	// The per-superstep phase spans must agree with the profile: the sum of
	// compute+barrier+observe within 10% of the profile's superstep
	// wall-time, for every superstep, and the umbrella span must cover it.
	if len(res.Profile) == 0 {
		t.Fatal("no profiles")
	}
	for _, p := range res.Profile {
		phases := bySS[p.Superstep]
		if phases == nil {
			t.Fatalf("superstep %d has no master phase spans", p.Superstep)
		}
		sum := phases[obs.SpanCompute] + phases[obs.SpanBarrier] + phases[obs.SpanObserve]
		wall := p.ComputeNS + p.BarrierNS + p.ObserveNS
		if wall == 0 {
			continue
		}
		if ratio := float64(sum) / float64(wall); ratio < 0.9 || ratio > 1.1 {
			t.Errorf("superstep %d: phase spans sum %d vs profile wall %d (ratio %.3f, want within 10%%)",
				p.Superstep, sum, wall, ratio)
		}
		if phases[obs.SpanSuperstep] < sum {
			t.Errorf("superstep %d: umbrella span %d shorter than its phases %d",
				p.Superstep, phases[obs.SpanSuperstep], sum)
		}
	}

	// All four transport buckets must be nonzero: the run serialized
	// requests, crossed the wire, computed on workers, and backed off once.
	buckets := res.Metrics.TransportBuckets()
	if buckets == nil {
		t.Fatal("no transport buckets")
	}
	for _, b := range []string{"serialize", "wire", "worker_compute", "retry"} {
		if buckets[b] <= 0 {
			t.Errorf("bucket %s = %d, want > 0 (%v)", b, buckets[b], buckets)
		}
	}

	// Satellite: the net counters surface on the Result.
	if res.NetStats["ariadne_net_bytes_sent_total"] <= 0 ||
		res.NetStats["ariadne_net_retransmits_total"] <= 0 {
		t.Errorf("NetStats missing transport counters: %v", res.NetStats)
	}

	// The Chrome export is valid trace_event JSON with one pid per process.
	var chrome struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			PID int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(res.Metrics.ChromeTrace(), &chrome); err != nil {
		t.Fatalf("ChromeTrace unparseable: %v", err)
	}
	pids := map[int]bool{}
	for _, e := range chrome.TraceEvents {
		if e.Ph == "X" {
			pids[e.PID] = true
		}
	}
	if len(pids) != 3 {
		t.Errorf("trace has %d pids, want 3 (master + 2 workers)", len(pids))
	}
}

// TestTelemetryEDBDifferential runs the committed net-gap self-query — join
// net_rpc retries with capture_gap sheds — over a run whose partition 1 is
// unreachable, at 1 and 2 workers. The projected rows must be identical
// across worker counts and must name the unreachable partition.
func TestTelemetryEDBDifferential(t *testing.T) {
	g := rmatGraph(t)
	const parts = 4
	prog := func() ariadne.Program { return &analytics.PageRank{Iterations: 6} }

	var ref *ariadne.QueryResult
	for _, nw := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers-%d", nw), func(t *testing.T) {
			m := ariadne.NewMetrics()
			inj := fault.NewInjector(fault.NetMatrix(1, -1, 0)["unreachable"]...)
			addrs := startTCPWorkers(t, g, prog(), parts, nw)
			tr := dialTCP(t, g, parts, addrs, func(c *transport.TCPConfig) {
				c.MessageDeadline = 50 * time.Millisecond
				c.MaxRetries = 1
				c.Backoff = time.Millisecond
				c.Fault = inj
				c.Metrics = m
			})
			res, err := ariadne.Run(g, prog(),
				ariadne.WithMaxSupersteps(7),
				ariadne.WithPartitions(parts),
				ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{}),
				ariadne.WithMetrics(m),
				ariadne.WithSpanTrace(),
				ariadne.WithSupervision(ariadne.SuperviseConfig{
					MaxRetries:          2,
					Backoff:             time.Millisecond,
					DegradeCaptureAfter: 1,
				}),
				ariadne.WithTransport(tr))
			if err != nil {
				t.Fatal(err)
			}
			defer res.Provenance.Close()
			if len(res.CaptureGaps) == 0 {
				t.Fatal("unreachable partition did not shed capture")
			}

			qr, err := ariadne.QueryOffline(queries.NetGap(), res.Provenance, g, ariadne.Auto, 0)
			if err != nil {
				t.Fatal(err)
			}
			gaps := ariadne.Tuples(qr, "net_gap")
			if len(gaps) == 0 {
				t.Fatal("net_gap derived no rows: the telemetry join found nothing")
			}
			one := value.NewInt(1)
			for _, row := range gaps {
				if !row[0].Equal(one) {
					t.Errorf("net_gap names partition %v, want 1", row[0])
				}
			}
			retries := ariadne.Tuples(qr, "exchange_retry")
			if len(retries) == 0 {
				t.Fatal("exchange_retry derived no rows despite retransmits")
			}

			if ref == nil {
				ref = qr
			} else {
				sameQueryResults(t, qr, ref)
			}
		})
	}
}

// TestObsServeScrapeDuringTracedRun hammers every obs.Serve endpoint —
// including the new /debug/ariadne/trace.json — while a traced distributed
// run is in flight. Run under -race this is the data-race gate for the span
// collector and the Chrome exporter.
func TestObsServeScrapeDuringTracedRun(t *testing.T) {
	g := rmatGraph(t)
	const parts = 4
	prog := func() ariadne.Program { return &analytics.PageRank{Iterations: 8} }

	m := ariadne.NewMetrics()
	srv, addr, err := obs.Serve("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	laddr := addr.String()

	done := make(chan struct{})
	var wg sync.WaitGroup
	endpoints := []string{"/metrics", "/debug/vars", "/debug/ariadne/trace.json", "/trace", "/supersteps"}
	for _, ep := range endpoints {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					continue // server may be mid-close at test end
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}("http://" + laddr + ep)
	}

	addrs := startTCPWorkers(t, g, prog(), parts, 2)
	tr := dialTCP(t, g, parts, addrs, func(c *transport.TCPConfig) { c.Metrics = m })
	_, err = ariadne.Run(g, prog(),
		ariadne.WithMaxSupersteps(9),
		ariadne.WithPartitions(parts),
		ariadne.WithMetrics(m),
		ariadne.WithSpanTrace(),
		ariadne.WithTransport(tr))
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	// A final scrape of the trace endpoint must return the full timeline.
	resp, err := http.Get("http://" + laddr + "/debug/ariadne/trace.json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("trace.json unparseable: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("trace.json empty after a traced run")
	}
}

// TestSpanTraceCheckpointResume: spans persist through checkpoint (v5) and
// a resumed run continues the same trace — pre-crash supersteps and
// post-resume supersteps under one trace ID.
func TestSpanTraceCheckpointResume(t *testing.T) {
	g := chain(t, 30)
	dir := t.TempDir()
	common := func(m *ariadne.Metrics) []ariadne.Option {
		return []ariadne.Option{
			ariadne.WithMetrics(m),
			ariadne.WithSpanTrace(),
			ariadne.WithCheckpoint(dir, 2),
		}
	}

	m1 := ariadne.NewMetrics()
	_, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
		append(common(m1), ariadne.WithFault(fault.NewInjector(fault.PanicAt(6, -1))))...)
	if err == nil {
		t.Fatal("want crash, got success")
	}
	firstTID := m1.SpanTraceID()
	if firstTID == 0 {
		t.Fatal("crashed run had no trace ID")
	}

	// Fresh registry = fresh process: everything must come off the disk.
	m2 := ariadne.NewMetrics()
	res, err := ariadne.Resume(g, &analytics.SSSP{Source: 0}, common(m2)...)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedFrom <= 0 {
		t.Fatalf("ResumedFrom = %d, want > 0", res.ResumedFrom)
	}
	spans := res.Metrics.Spans()
	var pre, post bool
	for _, sp := range spans {
		if sp.TraceID != firstTID {
			t.Fatalf("span %s/%d trace ID %#x, want the original run's %#x (one trace across resume)",
				sp.Name, sp.Superstep, sp.TraceID, firstTID)
		}
		if sp.Name == obs.SpanSuperstep {
			if sp.Superstep < res.ResumedFrom {
				pre = true
			} else {
				post = true
			}
		}
	}
	if !pre {
		t.Error("resumed run lost the pre-crash superstep spans (checkpoint v5 restore)")
	}
	if !post {
		t.Error("resumed run recorded no new superstep spans")
	}

	// Span IDs must not collide across the restore boundary.
	seen := map[uint64]bool{}
	for _, sp := range spans {
		if seen[sp.SpanID] {
			t.Fatalf("duplicate span ID %d after resume", sp.SpanID)
		}
		seen[sp.SpanID] = true
	}
}
