package ariadne_test

import (
	"testing"

	"ariadne"
	"ariadne/internal/analytics"
	"ariadne/internal/queries"
	"ariadne/internal/value"
)

func TestTuplesAndCountNilSafety(t *testing.T) {
	g := testGraph(t, 6, 4, 31)
	res, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
		ariadne.WithOnlineQuery(queries.MonotoneCheck()))
	if err != nil {
		t.Fatal(err)
	}
	qr := res.Query("q5-monotone-check")
	if rows := ariadne.Tuples(qr, "no_such_relation"); rows != nil {
		t.Errorf("missing relation should yield nil, got %v", rows)
	}
	if n := ariadne.Count(qr, "no_such_relation"); n != 0 {
		t.Errorf("missing relation count = %d", n)
	}
	if res.Query("no-such-query") != nil {
		t.Error("unknown query name should be nil")
	}
}

func TestRunRejectsBrokenQueries(t *testing.T) {
	g := testGraph(t, 5, 3, 32)
	broken := ariadne.QueryDef{Name: "broken", Source: `p(X) :- nosuch(X).`}
	if _, err := ariadne.Run(g, &analytics.PageRank{}, ariadne.WithOnlineQuery(broken)); err == nil {
		t.Error("broken online query should fail Run")
	}
	if _, err := ariadne.Run(g, &analytics.PageRank{},
		ariadne.WithCaptureQuery(broken, ariadne.StoreConfig{})); err == nil {
		t.Error("broken capture query should fail Run")
	}
	if _, _, err := ariadne.Classify(broken); err == nil {
		t.Error("broken query should fail Classify")
	}
}

func TestMultipleOnlineQueriesShareARun(t *testing.T) {
	g := testGraph(t, 7, 5, 33)
	res, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
		ariadne.WithOnlineQuery(queries.MonotoneCheck()),
		ariadne.WithOnlineQuery(queries.SilentChange()),
		ariadne.WithOnlineQuery(queries.Apt(0.1, nil)))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"q5-monotone-check", "q6-silent-change", "apt"} {
		if res.Query(name) == nil {
			t.Errorf("query %s result missing", name)
		}
	}
}

// The apt query generalizes beyond the paper's four analytics: BFS and
// KCore are monotone-decreasing, so the same query applies unchanged.
func TestAptOnLibraryExtensions(t *testing.T) {
	g := testGraph(t, 7, 5, 34)

	bfs, err := ariadne.Run(g, &analytics.BFS{Source: 0},
		ariadne.WithOnlineQuery(queries.Apt(0.5, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if bfs.Query("apt") == nil {
		t.Fatal("apt over BFS missing")
	}

	u := g.Undirected()
	kc, err := ariadne.Run(u, analytics.KCore{},
		ariadne.WithOnlineQuery(queries.Apt(0.5, value.EuclideanDist)))
	if err != nil {
		t.Fatal(err)
	}
	if kc.Query("apt") == nil {
		t.Fatal("apt over KCore missing")
	}
	// Coreness values are meaningful at the end.
	cores := analytics.Coreness(kc.Values)
	if len(cores) != u.NumVertices() {
		t.Errorf("coreness arity %d", len(cores))
	}
}

func TestMonotoneCheckOnKCore(t *testing.T) {
	// KCore bounds only decrease: Query 5's monotone invariant must hold.
	// KCore values are vectors, whose first component is the bound; the
	// value comparison D1 > D2 compares vectors lexicographically, so a
	// bound increase would trip it.
	g := testGraph(t, 7, 4, 35).Undirected()
	res, err := ariadne.Run(g, analytics.KCore{},
		ariadne.WithOnlineQuery(queries.MonotoneCheck()))
	if err != nil {
		t.Fatal(err)
	}
	// The neighbor-bound table grows lexicographically *after* the first
	// component in ways that may trip D1 > D2 benignly, so we only require
	// the query to run; the strict invariant is asserted on the scalar
	// bound by analytics.TestKCoreMonitorableOnline.
	if res.Query("q5-monotone-check") == nil {
		t.Fatal("monitoring result missing")
	}
}

func TestCaptureWithExplicitPolicy(t *testing.T) {
	g := testGraph(t, 6, 4, 36)
	res, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
		ariadne.WithCapture(ariadne.CapturePolicy{Values: true}, ariadne.StoreConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	store := res.Provenance
	if store.TotalTuples() == 0 {
		t.Fatal("nothing captured")
	}
	// Values-only provenance still answers value-only queries offline.
	def := ariadne.QueryDef{
		Name: "final-values",
		Source: `
final(X, D, I) :- value(X, D, I).
`,
		Env: nil,
	}
	def.Env = queries.Apt(0.1, nil).Env // reuse a default env
	qr, err := ariadne.QueryOffline(def, store, g, ariadne.Auto, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ariadne.Count(qr, "final") == 0 {
		t.Error("no value tuples found offline")
	}
}

// TestEvalOptionsThroughAPI drives the shard-parallel evaluation options
// end to end: online via Run options, offline via QueryOffline options, and
// checks the sequential reference leg agrees with the parallel one.
func TestEvalOptionsThroughAPI(t *testing.T) {
	g := testGraph(t, 7, 5, 35)
	run := func(opts ...ariadne.Option) *ariadne.QueryResult {
		t.Helper()
		res, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
			append(opts, ariadne.WithOnlineQuery(queries.MonotoneCheck()))...)
		if err != nil {
			t.Fatal(err)
		}
		return res.Query("q5-monotone-check")
	}
	seq := run(ariadne.WithSequentialEval())
	par := run(ariadne.WithEvalWorkers(8))
	if a, b := ariadne.Count(seq, "check_failed"), ariadne.Count(par, "check_failed"); a != b {
		t.Errorf("online sequential %d tuples vs parallel %d", a, b)
	}

	res, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
		ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	def := queries.MonotoneCheck()
	offSeq, err := ariadne.QueryOffline(def, res.Provenance, g, ariadne.ModeLayered, 0,
		ariadne.SequentialEval())
	if err != nil {
		t.Fatal(err)
	}
	offPar, err := ariadne.QueryOffline(def, res.Provenance, g, ariadne.ModeLayered, 0,
		ariadne.EvalWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := ariadne.Count(offSeq, "check_failed"), ariadne.Count(offPar, "check_failed"); a != b {
		t.Errorf("offline sequential %d tuples vs parallel %d", a, b)
	}
}
