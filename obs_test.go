package ariadne_test

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ariadne"
	"ariadne/internal/analytics"
	"ariadne/internal/fault"
	"ariadne/internal/obs"
	"ariadne/internal/queries"
)

// Observability suite: per-superstep profiles through the public API, the
// differential metrics-survive-recovery guarantee, race-safe mid-run
// scraping, and warning trace events for retried spills under faults.

// TestRunWithMetricsProfile covers the tentpole end to end: one registry
// threaded through engine, capture, and an online query, with the profile
// exposed on the Result.
func TestRunWithMetricsProfile(t *testing.T) {
	g := rmatGraph(t)
	m := ariadne.NewMetrics()
	res, err := ariadne.Run(g, &analytics.PageRank{Iterations: 10},
		ariadne.WithMaxSupersteps(11),
		ariadne.WithMetrics(m),
		ariadne.WithOnlineQuery(queries.PageRankCheck()),
		ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics != m {
		t.Fatal("Result.Metrics is not the registry passed in")
	}
	if len(res.Profile) != res.Stats.Supersteps {
		t.Fatalf("profile entries = %d, want %d (one per superstep)", len(res.Profile), res.Stats.Supersteps)
	}

	var sent, delivered, combined, captured, piggyback int64
	peak := 0
	for i, p := range res.Profile {
		if p.Superstep != i {
			t.Errorf("profile %d covers superstep %d", i, p.Superstep)
		}
		if p.ActiveVertices != res.Stats.ActiveVertices[i] {
			t.Errorf("superstep %d active = %d, want %d", i, p.ActiveVertices, res.Stats.ActiveVertices[i])
		}
		sent += p.MessagesSent
		delivered += p.MessagesDelivered
		combined += p.MessagesCombined
		captured += p.CaptureTuples["value"]
		piggyback += p.PiggybackTuples["q4-pagerank-check"]
		peak = max(peak, p.ActiveVertices)
	}
	if sent != res.Stats.MessagesSent || delivered != res.Stats.MessagesDelivered || combined != res.Stats.MessagesCombined {
		t.Errorf("profile sums %d/%d/%d != stats %d/%d/%d",
			sent, delivered, combined, res.Stats.MessagesSent, res.Stats.MessagesDelivered, res.Stats.MessagesCombined)
	}
	if res.Stats.MessagesSent != res.Stats.MessagesDelivered+res.Stats.MessagesCombined {
		t.Errorf("sent %d != delivered %d + combined %d",
			res.Stats.MessagesSent, res.Stats.MessagesDelivered, res.Stats.MessagesCombined)
	}
	if res.Stats.PeakActiveVertices != peak {
		t.Errorf("peak active = %d, want %d", res.Stats.PeakActiveVertices, peak)
	}
	// Full capture records one value tuple per computed vertex.
	var active int64
	for _, n := range res.Stats.ActiveVertices {
		active += int64(n)
	}
	if captured != active {
		t.Errorf("captured value tuples = %d, want %d (one per active vertex)", captured, active)
	}
	if piggyback <= 0 {
		t.Error("online query derived no piggyback tuples in the profile")
	}
	// Counters agree with the profile sums.
	if got := m.Counter(obs.MetricMessagesSent).Value(); got != sent {
		t.Errorf("messages counter = %d, want %d", got, sent)
	}
	if got := m.Counter(obs.L(obs.MetricPiggybackTuples, "query", "q4-pagerank-check")).Value(); got != piggyback {
		t.Errorf("piggyback counter = %d, want %d", got, piggyback)
	}
	if res.Stats.ComputeWall <= 0 || res.Stats.BarrierWall <= 0 {
		t.Error("phase wall times not recorded")
	}
}

// TestCombinerMetrics: with a combiner installed (and no raw-message
// observers) the merged-away messages show up in stats and profiles.
func TestCombinerMetrics(t *testing.T) {
	g := rmatGraph(t)
	m := ariadne.NewMetrics()
	res, err := ariadne.Run(g, &analytics.PageRank{Iterations: 5},
		ariadne.WithMaxSupersteps(6),
		ariadne.WithCombiner(analytics.SumCombiner),
		ariadne.WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MessagesCombined == 0 {
		t.Error("combiner merged no messages on an RMAT graph (expected fan-in)")
	}
	if res.Stats.MessagesSent != res.Stats.MessagesDelivered+res.Stats.MessagesCombined {
		t.Errorf("sent %d != delivered %d + combined %d",
			res.Stats.MessagesSent, res.Stats.MessagesDelivered, res.Stats.MessagesCombined)
	}
}

// normalizeProfiles zeroes the fields a straight-vs-resumed comparison must
// ignore: wall-clock durations always differ across runs, and checkpoint
// write costs are attributed after the profile is snapshotted into the
// checkpoint itself (plus the resumed run may write a different number of
// checkpoints than the baseline, which writes none).
func normalizeProfiles(ps []ariadne.SuperstepProfile) []ariadne.SuperstepProfile {
	out := append([]ariadne.SuperstepProfile(nil), ps...)
	for i := range out {
		out[i].ComputeNS, out[i].BarrierNS, out[i].ObserveNS = 0, 0, 0
		out[i].SpillNS = 0
		out[i].CheckpointBytes, out[i].CheckpointNS = 0, 0
		out[i].Retries = nil
	}
	return out
}

func sameProfiles(t *testing.T, got, want []ariadne.SuperstepProfile) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("profile count %d != %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Superstep != w.Superstep || g.ActiveVertices != w.ActiveVertices {
			t.Errorf("profile %d superstep/active %d/%d != %d/%d", i, g.Superstep, g.ActiveVertices, w.Superstep, w.ActiveVertices)
		}
		if g.MessagesSent != w.MessagesSent || g.MessagesDelivered != w.MessagesDelivered || g.MessagesCombined != w.MessagesCombined {
			t.Errorf("profile %d messages %d/%d/%d != %d/%d/%d", i,
				g.MessagesSent, g.MessagesDelivered, g.MessagesCombined, w.MessagesSent, w.MessagesDelivered, w.MessagesCombined)
		}
		if g.CaptureBytes != w.CaptureBytes || g.SpillBytes != w.SpillBytes {
			t.Errorf("profile %d capture/spill bytes %d/%d != %d/%d", i, g.CaptureBytes, g.SpillBytes, w.CaptureBytes, w.SpillBytes)
		}
		if len(g.CaptureTuples) != len(w.CaptureTuples) {
			t.Errorf("profile %d capture tables %v != %v", i, g.CaptureTuples, w.CaptureTuples)
		}
		for table, n := range w.CaptureTuples {
			if g.CaptureTuples[table] != n {
				t.Errorf("profile %d capture[%s] = %d, want %d", i, table, g.CaptureTuples[table], n)
			}
		}
		for q, n := range w.PiggybackTuples {
			if g.PiggybackTuples[q] != n {
				t.Errorf("profile %d piggyback[%s] = %d, want %d", i, q, g.PiggybackTuples[q], n)
			}
		}
	}
}

// TestMetricsSurviveRecovery is the differential observability test: a run
// crashed mid-flight and resumed from its checkpoint must report the same
// per-superstep profiles and cumulative counters as an uninterrupted run —
// modulo durations and checkpoint-write accounting (normalizeProfiles).
func TestMetricsSurviveRecovery(t *testing.T) {
	g := rmatGraph(t)
	prog := &analytics.PageRank{Iterations: 14}
	def := queries.PageRankCheck()

	baseM := ariadne.NewMetrics()
	baseline, err := ariadne.Run(g, prog,
		ariadne.WithMaxSupersteps(15),
		ariadne.WithMetrics(baseM),
		ariadne.WithOnlineQuery(def),
		ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{SpillAll: true, SpillDir: t.TempDir()}))
	if err != nil {
		t.Fatal(err)
	}
	defer baseline.Provenance.Close()

	spillDir, ckDir := t.TempDir(), t.TempDir()
	runOpts := func(m *ariadne.Metrics) []ariadne.Option {
		return []ariadne.Option{
			ariadne.WithMaxSupersteps(15),
			ariadne.WithMetrics(m),
			ariadne.WithOnlineQuery(def),
			ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{SpillAll: true, SpillDir: spillDir}),
			ariadne.WithCheckpoint(ckDir, 3),
		}
	}
	crashM := ariadne.NewMetrics()
	_, err = ariadne.Run(g, prog, append(runOpts(crashM),
		ariadne.WithFault(fault.NewInjector(fault.PanicAt(8, -1))))...)
	var ce *ariadne.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want CrashError, got %v", err)
	}

	// Resume in a fresh registry, as a restarted process would.
	resM := ariadne.NewMetrics()
	res, err := ariadne.Resume(g, prog, runOpts(resM)...)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Provenance.Close()
	if res.ResumedFrom == 0 {
		t.Fatal("Resume did not restart from a checkpoint")
	}

	sameProfiles(t, normalizeProfiles(res.Profile), normalizeProfiles(baseline.Profile))
	if res.Stats.Supersteps != baseline.Stats.Supersteps ||
		res.Stats.MessagesSent != baseline.Stats.MessagesSent ||
		res.Stats.MessagesDelivered != baseline.Stats.MessagesDelivered ||
		res.Stats.PeakActiveVertices != baseline.Stats.PeakActiveVertices {
		t.Errorf("recovered stats %+v != baseline %+v", res.Stats, baseline.Stats)
	}
	// Cumulative counters match too — the resumed registry rebuilt the
	// pre-crash history from the checkpointed profiles.
	for _, name := range []string{
		obs.MetricSupersteps,
		obs.MetricMessagesSent,
		obs.MetricMessagesDelivered,
		obs.MetricCaptureBytes,
		obs.L(obs.MetricCaptureTuples, "table", "value"),
		obs.L(obs.MetricPiggybackTuples, "query", def.Name),
	} {
		if got, want := resM.Counter(name).Value(), baseM.Counter(name).Value(); got != want {
			t.Errorf("counter %s = %d after recovery, want %d", name, got, want)
		}
	}
}

// TestConcurrentScrape exercises the race-safety claim under -race: HTTP
// scrapes of /metrics and /supersteps proceed while supersteps execute.
func TestConcurrentScrape(t *testing.T) {
	g := rmatGraph(t)
	m := ariadne.NewMetrics()
	srv := httptest.NewServer(obs.Handler(m))
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	scrape := func(path string) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(srv.URL + path)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
	wg.Add(2)
	go scrape("/metrics")
	go scrape("/supersteps")

	res, err := ariadne.Run(g, &analytics.PageRank{Iterations: 12},
		ariadne.WithMaxSupersteps(13),
		ariadne.WithMetrics(m),
		ariadne.WithTrace(128),
		ariadne.WithOnlineQuery(queries.PageRankCheck()))
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	// Final scrape reflects the completed run.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "ariadne_supersteps_total "+itoa(res.Stats.Supersteps)) {
		t.Errorf("final /metrics missing superstep total %d:\n%s", res.Stats.Supersteps, body)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestSpillRetryWarnTrace covers the fault-observability satellite: a layer
// write that falls back to retry under injected I/O faults must leave a
// warning-level trace event and a retry count — never retry silently.
func TestSpillRetryWarnTrace(t *testing.T) {
	g := chain(t, 16)
	m := ariadne.NewMetrics()
	res, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
		ariadne.WithMetrics(m),
		ariadne.WithTrace(256),
		ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{SpillAll: true, SpillDir: t.TempDir()}),
		ariadne.WithFault(fault.NewInjector(fault.IOErrors(fault.SiteSpillWrite, 2))))
	if err != nil {
		t.Fatalf("transient spill faults should be retried away: %v", err)
	}
	defer res.Provenance.Close()

	if got := m.Counter(obs.L(obs.MetricRetries, "site", "spill")).Value(); got != 2 {
		t.Errorf("spill retry counter = %d, want 2", got)
	}
	var profRetries int64
	for _, p := range res.Profile {
		profRetries += p.Retries["spill"]
	}
	if profRetries != 2 {
		t.Errorf("profile spill retries = %d, want 2", profRetries)
	}
	events, _ := m.TraceEvents()
	warns := 0
	for _, e := range events {
		if e.Level == obs.Warn && e.Site == "spill" && strings.Contains(e.Msg, "retrying") {
			warns++
		}
	}
	if warns != 2 {
		t.Errorf("warning trace events for spill retries = %d, want 2 (events: %+v)", warns, events)
	}
}

// TestWithTraceImpliesMetrics: WithTrace alone must still produce profiles
// and trace events (it creates the registry implicitly).
func TestWithTraceImpliesMetrics(t *testing.T) {
	g := chain(t, 8)
	res, err := ariadne.Run(g, &analytics.SSSP{Source: 0}, ariadne.WithTrace(64))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("WithTrace did not create a registry")
	}
	if !res.Metrics.TraceEnabled() {
		t.Error("trace not enabled")
	}
	if len(res.Profile) != res.Stats.Supersteps {
		t.Errorf("profile entries = %d, want %d", len(res.Profile), res.Stats.Supersteps)
	}
}

// TestNoMetricsNoProfile: an uninstrumented run stays uninstrumented.
func TestNoMetricsNoProfile(t *testing.T) {
	g := chain(t, 8)
	res, err := ariadne.Run(g, &analytics.SSSP{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics != nil || res.Profile != nil {
		t.Error("uninstrumented run produced metrics")
	}
}
