package provenance

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"ariadne/internal/fault"
	"ariadne/internal/obs"
	"ariadne/internal/value"
)

// Binary layer file format, version 1 (the HDFS-offload stand-in):
//
//	magic "APRV" | version:1 | superstep:uvarint | nrecords:uvarint | records
//
// Each record:
//
//	vertex:uvarint | prevActive+1:uvarint | flags:1 |
//	[value] | nsends:uvarint sends | nrecvs:uvarint recvs |
//	nemitted:uvarint { tableLen:uvarint table nargs:uvarint args }
//
// flags: bit0 HasValue, bit1 SentAny.
//
// Version 2 is the columnar format in columnar.go; readers sniff the
// version byte, so v1 files written by earlier builds keep loading.

var layerMagic = [4]byte{'A', 'P', 'R', 'V'}

const (
	layerVersion = 1
	// spillAttempts/spillBackoff bound the retry loop for transient write
	// errors (capped exponential backoff via fault.Retry).
	spillAttempts = 4
	spillBackoff  = time.Millisecond
	// maxDecodeLen caps length-prefixed allocations while decoding so a
	// corrupt layer file errors out instead of attempting a huge make().
	maxDecodeLen = 1 << 26
)

// writeLayerFile persists one layer atomically in the given format (v1 row
// or v2 columnar): the bytes go to a temp file, are fsynced, and only then
// renamed to the final path, so a crash or I/O error mid-write never leaves
// a partial layer visible where readLayerFile would trip over it. Transient
// errors (injectable via inj for testing) are retried with capped
// exponential backoff; each fallback to retry is recorded as a warning
// trace event and a retry counter bump — never silently — so
// fault-injection runs are auditable from the trace buffer alone. Returns
// the on-disk size of the written file.
func writeLayerFile(path string, l *Layer, format int, inj *fault.Injector, m *obs.Metrics) (int64, error) {
	var written int64
	attempt := func() error {
		if err := inj.Hit(fault.SiteSpillWrite, l.Superstep, -1, -1); err != nil {
			return err
		}
		tmp := path + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		cw := &countingWriter{w: bufio.NewWriter(f)}
		if format == FormatV1 {
			err = encodeLayer(cw, l)
		} else {
			err = encodeLayerColumnar(cw, l)
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if err := cw.w.Flush(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if err := f.Close(); err != nil {
			os.Remove(tmp)
			return err
		}
		if err := os.Rename(tmp, path); err != nil {
			os.Remove(tmp)
			return err
		}
		written = cw.n
		return nil
	}
	notify := func(n int, err error) {
		m.AddRetry("spill")
		m.Tracef(obs.Warn, "spill", l.Superstep, "layer write attempt %d/%d failed, retrying: %v",
			n, spillAttempts, err)
	}
	if err := fault.RetryNotify(spillAttempts, spillBackoff, attempt, notify); err != nil {
		m.Tracef(obs.Error, "spill", l.Superstep, "layer write giving up after %d attempts: %v", spillAttempts, err)
		return 0, err
	}
	return written, nil
}

// countingWriter counts bytes through to a bufio.Writer (the actual on-disk
// layer size, which v2 makes much smaller than EncodedSize's v1-shaped
// estimate).
type countingWriter struct {
	w *bufio.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// readLayerFile loads a complete layer, sniffing the format version.
func readLayerFile(path string) (*Layer, error) {
	l, _, err := readLayerFileProjected(path, maskAll)
	return l, err
}

// readLayerFileProjected loads a layer materializing only the columns in
// mask (core columns always). v1 row files ignore the mask — every column
// streams past the reader anyway — and report maskAll. The returned mask
// records which columns are actually materialized, for cache bookkeeping.
func readLayerFileProjected(path string, mask colMask) (*Layer, colMask, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	var ver [5]byte
	if _, err := io.ReadFull(f, ver[:]); err != nil {
		return nil, 0, fmt.Errorf("provenance: layer file too short: %w", err)
	}
	if [4]byte(ver[:4]) != layerMagic {
		return nil, 0, fmt.Errorf("provenance: bad layer magic %q", ver[:4])
	}
	switch ver[4] {
	case layerVersion:
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, 0, err
		}
		l, err := decodeLayer(bufio.NewReader(f))
		return l, maskAll, err
	case layerVersionColumnar:
		st, err := f.Stat()
		if err != nil {
			return nil, 0, err
		}
		cl, err := openColumnar(f, st.Size())
		if err != nil {
			return nil, 0, err
		}
		l := &Layer{}
		if err := cl.decodeInto(l, mask); err != nil {
			return nil, 0, err
		}
		return l, mask | maskCore, nil
	default:
		return nil, 0, fmt.Errorf("provenance: unsupported layer version %d", ver[4])
	}
}

// mergeLayerColumns decodes the additional columns in add from a v2 layer
// file into a previously projected layer (in place). Only columnar files
// ever yield partial layers, so a v1 file here is a bookkeeping bug.
func mergeLayerColumns(path string, l *Layer, add colMask) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	cl, err := openColumnar(f, st.Size())
	if err != nil {
		return err
	}
	return cl.mergeInto(l, add)
}

func encodeLayer(w io.Writer, l *Layer) error {
	if _, err := w.Write(layerMagic[:]); err != nil {
		return err
	}
	if _, err := w.Write([]byte{layerVersion}); err != nil {
		return err
	}
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(l.Superstep))
	buf = binary.AppendUvarint(buf, uint64(len(l.Records)))
	for i := range l.Records {
		r := &l.Records[i]
		buf = binary.AppendUvarint(buf, uint64(r.Vertex))
		buf = binary.AppendUvarint(buf, uint64(r.PrevActive+1))
		var flags byte
		if r.HasValue {
			flags |= 1
		}
		if r.SentAny {
			flags |= 2
		}
		buf = append(buf, flags)
		if r.HasValue {
			buf = r.Value.AppendBinary(buf)
		}
		buf = binary.AppendUvarint(buf, uint64(len(r.Sends)))
		for _, m := range r.Sends {
			buf = binary.AppendUvarint(buf, uint64(m.Peer))
			buf = m.Val.AppendBinary(buf)
		}
		buf = binary.AppendUvarint(buf, uint64(len(r.Recvs)))
		for _, m := range r.Recvs {
			buf = binary.AppendUvarint(buf, uint64(m.Peer))
			buf = m.Val.AppendBinary(buf)
		}
		buf = binary.AppendUvarint(buf, uint64(len(r.Emitted)))
		for _, fc := range r.Emitted {
			buf = binary.AppendUvarint(buf, uint64(len(fc.Table)))
			buf = append(buf, fc.Table...)
			buf = binary.AppendUvarint(buf, uint64(len(fc.Args)))
			for _, a := range fc.Args {
				buf = a.AppendBinary(buf)
			}
		}
	}
	_, err := w.Write(buf)
	return err
}

type byteReader interface {
	io.Reader
	io.ByteReader
}

func decodeLayer(r byteReader) (*Layer, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != layerMagic {
		return nil, fmt.Errorf("provenance: bad layer magic %q", magic[:])
	}
	ver, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != layerVersion {
		return nil, fmt.Errorf("provenance: unsupported layer version %d", ver)
	}
	ss, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxDecodeLen {
		return nil, fmt.Errorf("provenance: corrupt layer: record count %d exceeds sanity cap", n)
	}
	// Grow incrementally: a corrupt count should fail on the first short
	// read, not pre-allocate the claimed size.
	l := &Layer{Superstep: int(ss), Records: make([]Record, 0, min(n, 4096))}
	for i := uint64(0); i < n; i++ {
		l.Records = append(l.Records, Record{})
		rec := &l.Records[len(l.Records)-1]
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		rec.Vertex = VertexID(v)
		pa, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		rec.PrevActive = int32(pa) - 1
		flags, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		rec.HasValue = flags&1 != 0
		rec.SentAny = flags&2 != 0
		if rec.HasValue {
			if rec.Value, err = readValue(r); err != nil {
				return nil, err
			}
		}
		if rec.Sends, err = readMsgHalves(r); err != nil {
			return nil, err
		}
		if rec.Recvs, err = readMsgHalves(r); err != nil {
			return nil, err
		}
		ne, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if ne > maxDecodeLen {
			return nil, fmt.Errorf("provenance: corrupt layer: emitted count %d exceeds sanity cap", ne)
		}
		if ne > 0 {
			rec.Emitted = make([]Fact, ne)
			for j := range rec.Emitted {
				tl, err := binary.ReadUvarint(r)
				if err != nil {
					return nil, err
				}
				if tl > maxDecodeLen {
					return nil, fmt.Errorf("provenance: corrupt layer: table name length %d exceeds sanity cap", tl)
				}
				tb := make([]byte, tl)
				if _, err := io.ReadFull(r, tb); err != nil {
					return nil, err
				}
				na, err := binary.ReadUvarint(r)
				if err != nil {
					return nil, err
				}
				if na > maxDecodeLen {
					return nil, fmt.Errorf("provenance: corrupt layer: arg count %d exceeds sanity cap", na)
				}
				args := make([]value.Value, na)
				for k := range args {
					if args[k], err = readValue(r); err != nil {
						return nil, err
					}
				}
				rec.Emitted[j] = Fact{Table: string(tb), Args: args}
			}
		}
	}
	return l, nil
}

func readMsgHalves(r byteReader) ([]MsgHalf, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > maxDecodeLen {
		return nil, fmt.Errorf("provenance: corrupt layer: message count %d exceeds sanity cap", n)
	}
	ms := make([]MsgHalf, n)
	for i := range ms {
		p, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		ms[i].Peer = VertexID(p)
		if ms[i].Val, err = readValue(r); err != nil {
			return nil, err
		}
	}
	return ms, nil
}

// readValue decodes one value from a stream by buffering the maximum value
// header and payload incrementally.
func readValue(r byteReader) (value.Value, error) {
	// Values are self-describing; re-encode the stream bytes into a buffer
	// large enough for DecodeValue. Read kind byte first.
	kind, err := r.ReadByte()
	if err != nil {
		return value.NullValue, err
	}
	switch value.Kind(kind) {
	case value.Null:
		return value.NullValue, nil
	case value.Bool:
		b, err := r.ReadByte()
		if err != nil {
			return value.NullValue, err
		}
		return value.NewBool(b == 1), nil
	case value.Int, value.Float:
		var raw [8]byte
		if _, err := io.ReadFull(r, raw[:]); err != nil {
			return value.NullValue, err
		}
		buf := append([]byte{kind}, raw[:]...)
		v, _, err := value.DecodeValue(buf)
		return v, err
	case value.String:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return value.NullValue, err
		}
		if n > maxDecodeLen {
			return value.NullValue, fmt.Errorf("provenance: corrupt layer: string length %d exceeds sanity cap", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return value.NullValue, err
		}
		return value.NewString(string(b)), nil
	case value.Vector:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return value.NullValue, err
		}
		if n > maxDecodeLen/8 {
			return value.NullValue, fmt.Errorf("provenance: corrupt layer: vector length %d exceeds sanity cap", n)
		}
		raw := make([]byte, 8*n)
		if _, err := io.ReadFull(r, raw); err != nil {
			return value.NullValue, err
		}
		buf := binary.AppendUvarint([]byte{kind}, n)
		buf = append(buf, raw...)
		v, _, err := value.DecodeValue(buf)
		return v, err
	default:
		return value.NullValue, fmt.Errorf("provenance: corrupt value kind %d in layer file", kind)
	}
}
