package provenance

import "testing"

func TestReloadCacheHitsAndEviction(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(StoreConfig{SpillAll: true, SpillDir: dir, ReloadCache: 2})
	defer s.Close()
	for ss := 0; ss < 4; ss++ {
		if err := s.AppendLayer(sampleLayer(ss, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	// A repeated read of a spilled layer is a cache hit: same object, no
	// second decode.
	l0a, err := s.Layer(0)
	if err != nil {
		t.Fatal(err)
	}
	l0b, err := s.Layer(0)
	if err != nil {
		t.Fatal(err)
	}
	if l0a != l0b {
		t.Error("second read of a spilled layer should come from the cache")
	}

	// Capacity 2: touching layers 1 and 2 evicts layer 0 (LRU).
	if _, err := s.Layer(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Layer(2); err != nil {
		t.Fatal(err)
	}
	l0c, err := s.Layer(0)
	if err != nil {
		t.Fatal(err)
	}
	if l0c == l0a {
		t.Error("layer 0 should have been evicted by two newer reloads")
	}

	// Truncation invalidates the cache.
	l2a, err := s.Layer(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.TruncateLayers(3); err != nil {
		t.Fatal(err)
	}
	l2b, err := s.Layer(2)
	if err != nil {
		t.Fatal(err)
	}
	if l2a == l2b {
		t.Error("truncate must invalidate the reload cache")
	}
}

func TestReloadCacheDisabled(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(StoreConfig{SpillAll: true, SpillDir: dir, ReloadCache: -1})
	defer s.Close()
	for ss := 0; ss < 2; ss++ {
		if err := s.AppendLayer(sampleLayer(ss, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	a, err := s.Layer(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Layer(0)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("ReloadCache < 0 must disable caching")
	}
}
