package provenance

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"ariadne/internal/fault"
	"ariadne/internal/obs"
)

// ErrBudgetExceeded is returned when the in-memory provenance exceeds the
// configured budget and no spill directory is available — the condition
// under which the paper's prototype could not capture full ALS provenance
// (§6.1: "the size of provenance for the smallest dataset, for one
// superstep, exceeded 80GB").
var ErrBudgetExceeded = errors.New("provenance: memory budget exceeded and no spill directory configured")

// StoreConfig controls the provenance store.
type StoreConfig struct {
	// MemoryBudget caps resident layer bytes; 0 means unlimited.
	MemoryBudget int64
	// SpillDir, when set, receives the oldest layers as binary files once
	// the budget is exceeded (the stand-in for the paper's asynchronous
	// HDFS offload).
	SpillDir string
	// SpillAll writes every layer to SpillDir immediately and keeps nothing
	// resident — the paper's capture-for-offline-querying mode, where the
	// provenance graph lives in HDFS and offline evaluation pays the cost
	// of reading it back (§6.2: offline timings include loading the
	// captured provenance, not capturing it).
	SpillAll bool
	// Fault, when set, injects transient I/O errors into layer-file writes
	// (fault.SiteSpillWrite) to exercise the retry path.
	Fault *fault.Injector
	// Metrics, when set, receives capture-size counters, spill
	// bytes/durations, and warning trace events when a layer write falls
	// back to retry under (injected or real) I/O faults. nil disables
	// instrumentation.
	Metrics *obs.Metrics
}

// CaptureGap records a contiguous superstep range whose provenance was
// shed under degraded-mode capture: the analytic kept running (Theorem 5.4
// non-interference), but layers From..To hold no tuples for Partition.
// Partition -1 means the whole layer was shed. Gaps surface in PQL as the
// static EDB capture_gap(Partition, From, To), so an offline query can
// tell "no result" apart from "provenance not captured here".
type CaptureGap struct {
	Partition int    `json:"partition"`
	From      int    `json:"from"`
	To        int    `json:"to"`
	Reason    string `json:"reason,omitempty"`
}

// Store holds the captured provenance graph as a sequence of layers, with
// size accounting and optional spill-to-disk.
type Store struct {
	cfg StoreConfig

	layers  []*Layer // nil when spilled
	spilled []bool
	files   []string

	resident    int64 // in-memory bytes of resident layers
	totalBytes  int64 // serialized bytes ever captured (resident + spilled)
	totalTuples int64
	vertices    map[VertexID]struct{} // distinct captured vertices

	gaps []CaptureGap // shed ranges, ordered by (Partition, From)
}

// NewStore creates an empty store.
func NewStore(cfg StoreConfig) *Store {
	return &Store{cfg: cfg, vertices: make(map[VertexID]struct{})}
}

// AppendLayer adds the provenance layer for the next superstep. Layers must
// arrive in superstep order. When the memory budget is exceeded the oldest
// resident layers spill to disk; without a spill directory the append fails
// with ErrBudgetExceeded.
func (s *Store) AppendLayer(l *Layer) error {
	if l.Superstep != len(s.layers) {
		return fmt.Errorf("provenance: layer %d appended out of order (have %d layers)", l.Superstep, len(s.layers))
	}
	sz := l.MemSize()
	enc := l.EncodedSize()
	for i := range l.Records {
		s.vertices[l.Records[i].Vertex] = struct{}{}
	}
	s.layers = append(s.layers, l)
	s.spilled = append(s.spilled, false)
	s.files = append(s.files, "")
	s.resident += sz
	s.totalBytes += enc
	s.totalTuples += l.NumTuples()
	s.cfg.Metrics.AddCaptureBytes(enc)

	if s.cfg.SpillAll {
		if s.cfg.SpillDir == "" {
			return fmt.Errorf("provenance: SpillAll requires a SpillDir")
		}
		i := len(s.layers) - 1
		path := filepath.Join(s.cfg.SpillDir, layerFileName(i))
		if err := s.spillLayer(path, l, enc); err != nil {
			return fmt.Errorf("provenance: spilling layer %d: %w", i, err)
		}
		s.resident -= sz
		s.layers[i] = nil
		s.spilled[i] = true
		s.files[i] = path
		return nil
	}
	if s.cfg.MemoryBudget > 0 && s.resident > s.cfg.MemoryBudget {
		if s.cfg.SpillDir == "" {
			return fmt.Errorf("%w: resident %d bytes > budget %d", ErrBudgetExceeded, s.resident, s.cfg.MemoryBudget)
		}
		if err := s.spillOldest(); err != nil {
			return err
		}
	}
	return nil
}

// AddGap records that partition p's provenance was shed at superstep ss
// (p = -1 for the whole layer), merging into the partition's existing gap
// when the range is contiguous — so one degraded partition yields one
// CaptureGap row, not one per superstep. Idempotent for repeated
// (p, ss) notes.
func (s *Store) AddGap(ss, p int, reason string) {
	for i := range s.gaps {
		g := &s.gaps[i]
		if g.Partition != p {
			continue
		}
		if ss >= g.From && ss <= g.To {
			return
		}
		if ss == g.To+1 {
			g.To = ss
			return
		}
	}
	s.gaps = append(s.gaps, CaptureGap{Partition: p, From: ss, To: ss, Reason: reason})
}

// Gaps returns the recorded capture gaps, ordered by (Partition, From).
func (s *Store) Gaps() []CaptureGap {
	out := append([]CaptureGap(nil), s.gaps...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Partition != out[j].Partition {
			return out[i].Partition < out[j].Partition
		}
		return out[i].From < out[j].From
	})
	return out
}

// RestoreGaps replaces the gap list (checkpoint recovery).
func (s *Store) RestoreGaps(gaps []CaptureGap) {
	s.gaps = append([]CaptureGap(nil), gaps...)
}

// truncateGaps trims the gap list to supersteps < n alongside
// TruncateLayers, so a recovered run's gaps match its surviving layers.
func (s *Store) truncateGaps(n int) {
	kept := s.gaps[:0]
	for _, g := range s.gaps {
		if g.From >= n {
			continue
		}
		if g.To >= n {
			g.To = n - 1
		}
		kept = append(kept, g)
	}
	s.gaps = kept
}

// AppendGapLayer appends an *empty* placeholder layer for superstep ss
// after a whole-layer capture failure, keeping layer indices aligned with
// supersteps so later layers still append in order. The placeholder stays
// resident even under SpillAll — it records the absence of provenance, and
// writing it through the same failing spill path would just fail again.
func (s *Store) AppendGapLayer(ss int, reason string) error {
	l := &Layer{Superstep: ss}
	if ss != len(s.layers) {
		return fmt.Errorf("provenance: gap layer %d appended out of order (have %d layers)", ss, len(s.layers))
	}
	s.layers = append(s.layers, l)
	s.spilled = append(s.spilled, false)
	s.files = append(s.files, "")
	s.resident += l.MemSize()
	s.AddGap(ss, -1, reason)
	return nil
}

// spillOldest writes resident layers to disk, oldest first, until the
// budget is met again (the newest layer always stays resident).
func (s *Store) spillOldest() error {
	for i := 0; i < len(s.layers)-1 && s.resident > s.cfg.MemoryBudget; i++ {
		if s.spilled[i] || s.layers[i] == nil {
			continue
		}
		path := filepath.Join(s.cfg.SpillDir, layerFileName(i))
		if err := s.spillLayer(path, s.layers[i], s.layers[i].EncodedSize()); err != nil {
			return fmt.Errorf("provenance: spilling layer %d: %w", i, err)
		}
		s.resident -= s.layers[i].MemSize()
		s.layers[i] = nil
		s.spilled[i] = true
		s.files[i] = path
	}
	if s.resident > s.cfg.MemoryBudget {
		return fmt.Errorf("%w: a single layer exceeds the budget", ErrBudgetExceeded)
	}
	return nil
}

// spillLayer writes one layer file, accounting bytes and duration to the
// metrics registry (enc is the layer's encoded size, which the caller has
// already computed for its own bookkeeping).
func (s *Store) spillLayer(path string, l *Layer, enc int64) error {
	m := s.cfg.Metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	if err := writeLayerFile(path, l, s.cfg.Fault, m); err != nil {
		return err
	}
	if m != nil {
		m.AddSpill(enc, time.Since(start))
	}
	return nil
}

// NumLayers returns the number of captured layers (supersteps).
func (s *Store) NumLayers() int { return len(s.layers) }

// Layer returns layer i, reading it back from disk if it was spilled.
func (s *Store) Layer(i int) (*Layer, error) {
	if i < 0 || i >= len(s.layers) {
		return nil, fmt.Errorf("provenance: layer %d out of range [0,%d)", i, len(s.layers))
	}
	if s.layers[i] != nil {
		return s.layers[i], nil
	}
	l, err := readLayerFile(s.files[i])
	if err != nil {
		return nil, fmt.Errorf("provenance: reloading spilled layer %d: %w", i, err)
	}
	return l, nil
}

// TotalBytes returns the *serialized* size of the captured provenance graph
// in bytes — the on-storage footprint paper Tables 3 and 4 compare against
// the input graph size. (Resident memory is tracked separately via
// ResidentBytes and the memory budget.)
func (s *Store) TotalBytes() int64 { return s.totalBytes }

// TotalTuples returns the number of provenance tuples captured.
func (s *Store) TotalTuples() int64 { return s.totalTuples }

// DistinctVertices returns how many input vertices appear in the provenance
// (Table 4: the custom provenance "contains more than 80% of the input
// vertices").
func (s *Store) DistinctVertices() int { return len(s.vertices) }

// ResidentBytes returns the bytes currently held in memory.
func (s *Store) ResidentBytes() int64 { return s.resident }

// SpilledLayers returns how many layers live on disk.
func (s *Store) SpilledLayers() int {
	n := 0
	for _, sp := range s.spilled {
		if sp {
			n++
		}
	}
	return n
}

// layerFileName names the spill file of layer i.
func layerFileName(i int) string { return fmt.Sprintf("layer-%06d.prov", i) }

// TruncateLayers drops every layer with index >= n — the recovery path: a
// capture observer restored from a checkpoint with watermark n discards the
// layers a crashed run appended past its last checkpoint, so the resumed
// run re-appends them in order. Size and vertex statistics are recomputed
// from the surviving layers (spilled ones are read back).
func (s *Store) TruncateLayers(n int) error {
	if n < 0 || n > len(s.layers) {
		return fmt.Errorf("provenance: truncate to %d layers out of range [0,%d]", n, len(s.layers))
	}
	for i := n; i < len(s.layers); i++ {
		if s.files[i] != "" {
			os.Remove(s.files[i])
		}
	}
	s.layers = s.layers[:n]
	s.spilled = s.spilled[:n]
	s.files = s.files[:n]
	s.truncateGaps(n)
	s.resident, s.totalBytes, s.totalTuples = 0, 0, 0
	s.vertices = make(map[VertexID]struct{})
	for i := 0; i < n; i++ {
		l, err := s.Layer(i)
		if err != nil {
			return fmt.Errorf("provenance: recomputing stats after truncation: %w", err)
		}
		if !s.spilled[i] {
			s.resident += l.MemSize()
		}
		s.totalBytes += l.EncodedSize()
		s.totalTuples += l.NumTuples()
		for ri := range l.Records {
			s.vertices[l.Records[ri].Vertex] = struct{}{}
		}
	}
	return nil
}

// Reattach adopts the first n layer files already present in SpillDir (a
// previous run's spill output) as this store's layers — the cross-process
// recovery path for capture under SpillAll: the store's content lives on
// disk, so a restored observer only needs the files re-registered.
func (s *Store) Reattach(n int) error {
	if len(s.layers) != 0 {
		return errors.New("provenance: Reattach requires an empty store")
	}
	if s.cfg.SpillDir == "" {
		return errors.New("provenance: Reattach requires a SpillDir")
	}
	for i := 0; i < n; i++ {
		path := filepath.Join(s.cfg.SpillDir, layerFileName(i))
		l, err := readLayerFile(path)
		if err != nil {
			return fmt.Errorf("provenance: reattaching layer %d: %w", i, err)
		}
		if l.Superstep != i {
			return fmt.Errorf("provenance: reattached layer file %d holds superstep %d", i, l.Superstep)
		}
		s.layers = append(s.layers, nil)
		s.spilled = append(s.spilled, true)
		s.files = append(s.files, path)
		s.totalBytes += l.EncodedSize()
		s.totalTuples += l.NumTuples()
		for ri := range l.Records {
			s.vertices[l.Records[ri].Vertex] = struct{}{}
		}
	}
	return nil
}

// Close removes any spill files.
func (s *Store) Close() error {
	var firstErr error
	for i, f := range s.files {
		if f != "" {
			if err := os.Remove(f); err != nil && firstErr == nil {
				firstErr = err
			}
			s.files[i] = ""
		}
	}
	return firstErr
}
