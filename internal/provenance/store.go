package provenance

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"ariadne/internal/fault"
	"ariadne/internal/obs"
)

// ErrBudgetExceeded is returned when the in-memory provenance exceeds the
// configured budget and no spill directory is available — the condition
// under which the paper's prototype could not capture full ALS provenance
// (§6.1: "the size of provenance for the smallest dataset, for one
// superstep, exceeded 80GB").
var ErrBudgetExceeded = errors.New("provenance: memory budget exceeded and no spill directory configured")

// StoreConfig controls the provenance store.
type StoreConfig struct {
	// MemoryBudget caps resident layer bytes; 0 means unlimited.
	MemoryBudget int64
	// SpillDir, when set, receives the oldest layers as binary files once
	// the budget is exceeded (the stand-in for the paper's asynchronous
	// HDFS offload).
	SpillDir string
	// SpillAll writes every layer to SpillDir immediately and keeps nothing
	// resident — the paper's capture-for-offline-querying mode, where the
	// provenance graph lives in HDFS and offline evaluation pays the cost
	// of reading it back (§6.2: offline timings include loading the
	// captured provenance, not capturing it).
	SpillAll bool
	// Fault, when set, injects transient I/O errors into layer-file writes
	// (fault.SiteSpillWrite) to exercise the retry path.
	Fault *fault.Injector
	// Metrics, when set, receives capture-size counters, spill
	// bytes/durations, and warning trace events when a layer write falls
	// back to retry under (injected or real) I/O faults. nil disables
	// instrumentation.
	Metrics *obs.Metrics
	// SyncSpill disables the asynchronous spill pipeline: layer files are
	// written inline and write errors surface immediately from AppendLayer
	// (the pre-pipeline behavior; also what the fault-injection tests that
	// assert on immediate errors select).
	SyncSpill bool
	// SpillQueue bounds the async spill pipeline: at most this many layer
	// writes may be queued or in flight before AppendLayer blocks
	// (backpressure). 0 means the default of 2 — double-buffering: one
	// layer being written while the next is queued.
	SpillQueue int
	// ReloadCache bounds the LRU cache of spilled layers reloaded by
	// Layer(): layered backward evaluation revisits the same layer once per
	// rule body, so rereading the file each visit is pure waste. 0 means
	// the default of 3 layers; negative disables caching.
	ReloadCache int
	// Format selects the layer file format for spilled layers: FormatV1
	// (row-oriented) or FormatV2 (columnar with projection support). 0
	// means FormatV2. Reads sniff the version byte, so a store always loads
	// files of either format regardless of this setting.
	Format int
}

// Layer file format selectors for StoreConfig.Format.
const (
	FormatV1 = 1 // row-oriented stream (the original format)
	FormatV2 = 2 // columnar blocks with per-column footer offsets
)

const (
	defaultSpillQueue  = 2
	defaultReloadCache = 3
)

// CaptureGap records a contiguous superstep range whose provenance was
// shed under degraded-mode capture: the analytic kept running (Theorem 5.4
// non-interference), but layers From..To hold no tuples for Partition.
// Partition -1 means the whole layer was shed. Gaps surface in PQL as the
// static EDB capture_gap(Partition, From, To), so an offline query can
// tell "no result" apart from "provenance not captured here".
type CaptureGap struct {
	Partition int    `json:"partition"`
	From      int    `json:"from"`
	To        int    `json:"to"`
	Reason    string `json:"reason,omitempty"`
}

// Store holds the captured provenance graph as a sequence of layers, with
// size accounting and optional spill-to-disk.
//
// Concurrency: the Store API is single-goroutine (the engine's observe
// phase). The async spill pipeline adds exactly one background writer
// goroutine, which only ever touches the layers handed to it via the jobs
// channel and the (internally synchronized) metrics registry; all Store
// state, including the pending set, stays owned by the caller goroutine.
type Store struct {
	cfg StoreConfig

	layers  []*Layer // nil when spilled
	spilled []bool
	files   []string

	resident    int64 // in-memory bytes of resident layers
	totalBytes  int64 // serialized bytes ever captured (resident + spilled)
	diskBytes   int64 // actual on-disk bytes of spilled layer files
	totalTuples int64
	vertices    map[VertexID]struct{} // distinct captured vertices

	gaps []CaptureGap // shed ranges, ordered by (Partition, From)

	// telemetry is the run's execution profile, attached after the run so
	// offline PQL evaluation can feed the telemetry EDBs (superstep_profile,
	// net_rpc) alongside the provenance itself.
	telemetry Telemetry

	// Async spill pipeline state. pending holds layers whose file write is
	// queued or in flight — logically spilled (accounting already moved)
	// but still readable from memory. asyncErr is the sticky first write
	// failure, surfaced at the next AppendLayer or Sync and cleared once
	// reported; the failed layer reverts to resident before it surfaces.
	sp          *spillPipeline
	pending     map[int]*Layer
	outstanding int
	highWater   int64
	asyncErr    error

	// LRU reload cache for spilled layers (bounded, default 3). Entries may
	// be partially materialized (a projected reload); their byte charge
	// covers only the decoded columns, and a wider later projection merges
	// the missing columns into the cached layer in place.
	cache      map[int]*cacheEntry
	cacheLRU   []int // least-recently-used first
	cacheBytes int64 // sum of cached layers' MemSize (decoded columns only)
}

// cacheEntry is one cached reload: the (possibly partial) layer, the
// columns it has materialized, and its current byte charge.
type cacheEntry struct {
	l     *Layer
	mask  colMask
	bytes int64
}

// format returns the layer file format in effect for new spill writes.
func (s *Store) format() int {
	if s.cfg.Format == 0 {
		return FormatV2
	}
	return s.cfg.Format
}

// NewStore creates an empty store.
func NewStore(cfg StoreConfig) *Store {
	return &Store{cfg: cfg, vertices: make(map[VertexID]struct{})}
}

// spillPipeline is the bounded background writer: jobs carries layers to
// persist (capacity = SpillQueue, giving double-buffering by default), done
// carries completions back to the store goroutine.
type spillPipeline struct {
	jobs chan spillJob
	done chan spillDone
}

type spillJob struct {
	idx  int
	path string
	l    *Layer
	enc  int64
	// attrSS is the superstep whose append triggered this spill — the
	// profile the write's bytes/duration are attributed to, regardless of
	// when the background write completes.
	attrSS int
}

type spillDone struct {
	idx   int
	err   error
	bytes int64 // on-disk size of the written layer file
}

// pipeline lazily starts the background writer the first time an async
// spill is needed, so stores that never spill never spawn a goroutine.
func (s *Store) pipeline() *spillPipeline {
	if s.sp == nil {
		q := s.cfg.SpillQueue
		if q <= 0 {
			q = defaultSpillQueue
		}
		s.sp = &spillPipeline{
			jobs: make(chan spillJob, q),
			done: make(chan spillDone, q+1),
		}
		s.pending = make(map[int]*Layer)
		go func(sp *spillPipeline) {
			for j := range sp.jobs {
				n, err := s.spillLayer(j.path, j.l, j.enc, j.attrSS)
				sp.done <- spillDone{idx: j.idx, err: err, bytes: n}
			}
			close(sp.done)
		}(s.sp)
	}
	return s.sp
}

// enqueueSpill moves layer i onto the spill pipeline (or writes it inline
// under SyncSpill). Accounting happens at enqueue — the layer is logically
// spilled from this point, though Layer(i) still serves it from the pending
// set until the write completes. A full queue blocks, draining completions
// while waiting (backpressure instead of unbounded buffering).
func (s *Store) enqueueSpill(i int, l *Layer) error {
	path := filepath.Join(s.cfg.SpillDir, layerFileName(i))
	enc := l.EncodedSize()
	attrSS := len(s.layers) - 1 // the superstep being appended
	if s.cfg.SyncSpill {
		n, err := s.spillLayer(path, l, enc, attrSS)
		if err != nil {
			return fmt.Errorf("provenance: spilling layer %d: %w", i, err)
		}
		s.diskBytes += n
		s.resident -= l.MemSize()
		s.layers[i] = nil
		s.spilled[i] = true
		s.files[i] = path
		return nil
	}
	sp := s.pipeline()
	s.resident -= l.MemSize()
	s.layers[i] = nil
	s.spilled[i] = true
	s.files[i] = path
	s.pending[i] = l
	job := spillJob{idx: i, path: path, l: l, enc: enc, attrSS: attrSS}
	for {
		select {
		case sp.jobs <- job:
			s.outstanding++
			if int64(s.outstanding) > s.highWater {
				s.highWater = int64(s.outstanding)
			}
			s.cfg.Metrics.SpillQueue(int64(s.outstanding), s.highWater)
			return nil
		case d := <-sp.done:
			s.complete(d)
		}
	}
}

// complete applies one writer completion: a success finalizes the spill; a
// failure reverts the layer to resident and latches the first error so the
// next AppendLayer (or Sync) reports it — the async-spill error contract.
func (s *Store) complete(d spillDone) {
	s.outstanding--
	l := s.pending[d.idx]
	delete(s.pending, d.idx)
	if d.err == nil {
		s.diskBytes += d.bytes
	}
	if d.err != nil && l != nil {
		s.layers[d.idx] = l
		s.spilled[d.idx] = false
		s.files[d.idx] = ""
		s.resident += l.MemSize()
		if s.asyncErr == nil {
			s.asyncErr = fmt.Errorf("provenance: spilling layer %d: %w", d.idx, d.err)
		}
	}
	s.cfg.Metrics.SpillQueue(int64(s.outstanding), s.highWater)
}

// drainCompletions consumes any writer completions without blocking.
func (s *Store) drainCompletions() {
	if s.sp == nil {
		return
	}
	for {
		select {
		case d := <-s.sp.done:
			s.complete(d)
		default:
			return
		}
	}
}

// Sync blocks until every queued layer write has completed and returns (and
// clears) the first write error, if any. Checkpointing calls this before
// using NumLayers() as a recovery watermark: a layer counted by the
// watermark must actually be durable on disk.
func (s *Store) Sync() error {
	for s.outstanding > 0 {
		s.complete(<-s.sp.done)
	}
	err := s.asyncErr
	s.asyncErr = nil
	return err
}

// AppendLayer adds the provenance layer for the next superstep. Layers must
// arrive in superstep order. When the memory budget is exceeded the oldest
// resident layers spill to disk; without a spill directory the append fails
// with ErrBudgetExceeded.
func (s *Store) AppendLayer(l *Layer) error {
	if l.Superstep != len(s.layers) {
		return fmt.Errorf("provenance: layer %d appended out of order (have %d layers)", l.Superstep, len(s.layers))
	}
	s.drainCompletions()
	sz := l.MemSize()
	enc := l.EncodedSize()
	for i := range l.Records {
		s.vertices[l.Records[i].Vertex] = struct{}{}
	}
	s.layers = append(s.layers, l)
	s.spilled = append(s.spilled, false)
	s.files = append(s.files, "")
	s.resident += sz
	s.totalBytes += enc
	s.totalTuples += l.NumTuples()
	s.cfg.Metrics.AddCaptureBytes(enc)

	if s.cfg.SpillAll {
		if s.cfg.SpillDir == "" {
			return fmt.Errorf("provenance: SpillAll requires a SpillDir")
		}
		if err := s.enqueueSpill(len(s.layers)-1, l); err != nil {
			return err
		}
	} else if s.cfg.MemoryBudget > 0 && s.resident > s.cfg.MemoryBudget {
		if s.cfg.SpillDir == "" {
			return fmt.Errorf("%w: resident %d bytes > budget %d", ErrBudgetExceeded, s.resident, s.cfg.MemoryBudget)
		}
		if err := s.spillOldest(); err != nil {
			return err
		}
	}
	// Surface a deferred async write failure only after the current layer
	// is appended: the caller's degraded-capture recovery truncates to the
	// failing superstep and appends a gap layer, which needs NumLayers to
	// already cover this superstep.
	s.drainCompletions()
	if err := s.asyncErr; err != nil {
		s.asyncErr = nil
		return err
	}
	return nil
}

// AddGap records that partition p's provenance was shed at superstep ss
// (p = -1 for the whole layer), merging into the partition's existing gap
// when the range is contiguous in either direction — so one degraded
// partition yields one CaptureGap row, not one per superstep, even when
// the notes arrive out of order. Idempotent for repeated (p, ss) notes.
func (s *Store) AddGap(ss, p int, reason string) {
	for i := range s.gaps {
		g := &s.gaps[i]
		if g.Partition != p {
			continue
		}
		if ss >= g.From && ss <= g.To {
			return
		}
		if ss == g.To+1 {
			g.To = ss
			s.coalesceGaps(p)
			return
		}
		if ss == g.From-1 {
			g.From = ss
			s.coalesceGaps(p)
			return
		}
	}
	s.gaps = append(s.gaps, CaptureGap{Partition: p, From: ss, To: ss, Reason: reason})
}

// coalesceGaps merges partition p's gaps that became adjacent or
// overlapping after an extension (an out-of-order note can bridge two
// previously separate ranges).
func (s *Store) coalesceGaps(p int) {
	var mine []CaptureGap
	rest := s.gaps[:0]
	for _, g := range s.gaps {
		if g.Partition == p {
			mine = append(mine, g)
		} else {
			rest = append(rest, g)
		}
	}
	if len(mine) < 2 {
		s.gaps = append(rest, mine...)
		return
	}
	sort.Slice(mine, func(i, j int) bool { return mine[i].From < mine[j].From })
	merged := mine[:1]
	for _, g := range mine[1:] {
		last := &merged[len(merged)-1]
		if g.From <= last.To+1 {
			if g.To > last.To {
				last.To = g.To
			}
			continue
		}
		merged = append(merged, g)
	}
	s.gaps = append(rest, merged...)
}

// Gaps returns the recorded capture gaps, ordered by (Partition, From).
func (s *Store) Gaps() []CaptureGap {
	out := append([]CaptureGap(nil), s.gaps...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Partition != out[j].Partition {
			return out[i].Partition < out[j].Partition
		}
		return out[i].From < out[j].From
	})
	return out
}

// Telemetry bundles the run's own execution profile for telemetry-as-EDB
// querying: per-superstep phase timings, per-RPC network accounting, and
// (when span tracing was on) the raw span timeline.
type Telemetry struct {
	Profiles []obs.SuperstepProfile
	RPCs     []obs.RPCStat
	Spans    []obs.Span
}

// SetTelemetry attaches the run's telemetry to the store (called once by the
// API layer when the run finishes).
func (s *Store) SetTelemetry(t Telemetry) { s.telemetry = t }

// Telemetry returns the attached run telemetry (zero value when the run was
// not instrumented).
func (s *Store) Telemetry() Telemetry { return s.telemetry }

// RestoreGaps replaces the gap list (checkpoint recovery).
func (s *Store) RestoreGaps(gaps []CaptureGap) {
	s.gaps = append([]CaptureGap(nil), gaps...)
}

// truncateGaps trims the gap list to supersteps < n alongside
// TruncateLayers, so a recovered run's gaps match its surviving layers.
func (s *Store) truncateGaps(n int) {
	kept := s.gaps[:0]
	for _, g := range s.gaps {
		if g.From >= n {
			continue
		}
		if g.To >= n {
			g.To = n - 1
		}
		kept = append(kept, g)
	}
	s.gaps = kept
}

// AppendGapLayer appends an *empty* placeholder layer for superstep ss
// after a whole-layer capture failure, keeping layer indices aligned with
// supersteps so later layers still append in order. The placeholder stays
// resident even under SpillAll — it records the absence of provenance, and
// writing it through the same failing spill path would just fail again.
func (s *Store) AppendGapLayer(ss int, reason string) error {
	l := &Layer{Superstep: ss}
	if ss != len(s.layers) {
		return fmt.Errorf("provenance: gap layer %d appended out of order (have %d layers)", ss, len(s.layers))
	}
	s.layers = append(s.layers, l)
	s.spilled = append(s.spilled, false)
	s.files = append(s.files, "")
	s.resident += l.MemSize()
	s.AddGap(ss, -1, reason)
	return nil
}

// spillOldest moves resident layers onto the spill pipeline, oldest first,
// until the budget is met again (the newest layer always stays resident).
// Enqueue-time accounting means the budget check converges immediately even
// though the writes land asynchronously.
func (s *Store) spillOldest() error {
	for i := 0; i < len(s.layers)-1 && s.resident > s.cfg.MemoryBudget; i++ {
		if s.spilled[i] || s.layers[i] == nil {
			continue
		}
		if err := s.enqueueSpill(i, s.layers[i]); err != nil {
			return err
		}
	}
	if s.resident > s.cfg.MemoryBudget {
		return fmt.Errorf("%w: a single layer exceeds the budget", ErrBudgetExceeded)
	}
	return nil
}

// spillLayer writes one layer file in the configured format, accounting
// bytes and duration to the metrics registry under superstep attrSS (enc is
// the layer's encoded size, which the caller has already computed for its
// own bookkeeping). Returns the on-disk file size. Runs on the caller
// goroutine under SyncSpill and on the pipeline's writer goroutine
// otherwise — everything it touches is either job-local or internally
// synchronized.
func (s *Store) spillLayer(path string, l *Layer, enc int64, attrSS int) (int64, error) {
	m := s.cfg.Metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	n, err := writeLayerFile(path, l, s.format(), s.cfg.Fault, m)
	if err != nil {
		return 0, err
	}
	if m != nil {
		m.AddSpill(attrSS, enc, time.Since(start))
	}
	return n, nil
}

// NumLayers returns the number of captured layers (supersteps).
func (s *Store) NumLayers() int { return len(s.layers) }

// Layer returns layer i fully materialized. Resident layers come from
// memory; layers whose spill write is still in flight are served from the
// pending set (the write need not be waited for); already-spilled layers
// are read back from disk through a small LRU cache, since layered
// backward evaluation visits the same layer once per rule body.
//
// Layer is not safe for concurrent use: the cache's LRU bookkeeping and the
// spill-completion drain mutate store state. The layered driver's prefetch
// pipeline respects this by making its producer goroutine the sole Layer
// caller for the duration of a replay.
func (s *Store) Layer(i int) (*Layer, error) { return s.LayerProjected(i, nil) }

// LayerProjected returns layer i with at least the columns selected by
// proj materialized (nil means all — Layer's behavior). Resident and
// pending layers are always full. For spilled v2 layers only the projected
// column blocks are read and decoded; a cached partial layer is widened in
// place when a later caller asks for more columns (the untouched columns
// stay lazily decodable on disk). The returned layer may hold more columns
// than requested — never fewer — so callers must treat extra columns as
// present-but-ignorable.
//
// Same concurrency contract as Layer.
func (s *Store) LayerProjected(i int, proj *LayerProjection) (*Layer, error) {
	if i < 0 || i >= len(s.layers) {
		return nil, fmt.Errorf("provenance: layer %d out of range [0,%d)", i, len(s.layers))
	}
	if s.layers[i] != nil {
		return s.layers[i], nil
	}
	s.drainCompletions()
	if l := s.pending[i]; l != nil {
		return l, nil
	}
	want := proj.mask()
	if e := s.cacheGet(i); e != nil {
		if missing := want &^ e.mask; missing != 0 {
			if err := mergeLayerColumns(s.files[i], e.l, missing); err != nil {
				return nil, fmt.Errorf("provenance: widening cached layer %d: %w", i, err)
			}
			e.mask |= missing
			nb := e.l.MemSize()
			s.cacheBytes += nb - e.bytes
			e.bytes = nb
			s.cfg.Metrics.Counter("store_layer_cache_widen_total").Add(1)
			s.cfg.Metrics.Gauge("store_layer_cache_bytes").Set(s.cacheBytes)
		}
		s.cfg.Metrics.Counter("store_layer_cache_hits_total").Add(1)
		return e.l, nil
	}
	s.cfg.Metrics.Counter("store_layer_reload_total").Add(1)
	l, got, err := readLayerFileProjected(s.files[i], want)
	if err != nil {
		return nil, fmt.Errorf("provenance: reloading spilled layer %d: %w", i, err)
	}
	s.cachePut(i, l, got)
	return l, nil
}

// cacheGet returns the cached reload of layer i, marking it most recently
// used.
func (s *Store) cacheGet(i int) *cacheEntry {
	e := s.cache[i]
	if e == nil {
		return nil
	}
	for j, k := range s.cacheLRU {
		if k == i {
			s.cacheLRU = append(append(s.cacheLRU[:j], s.cacheLRU[j+1:]...), i)
			break
		}
	}
	return e
}

// cachePut inserts a reloaded layer with the columns it has materialized,
// evicting the least recently used entry beyond the configured capacity.
// Byte accounting charges each entry for its decoded columns only: a
// projected layer without its value/message payloads costs a fraction of
// the full layer (the reload LRU's budget, surfaced via CacheBytes).
func (s *Store) cachePut(i int, l *Layer, mask colMask) {
	capLayers := s.cfg.ReloadCache
	if capLayers == 0 {
		capLayers = defaultReloadCache
	}
	if capLayers < 0 {
		return
	}
	if s.cache == nil {
		s.cache = make(map[int]*cacheEntry, capLayers)
	}
	e := &cacheEntry{l: l, mask: mask, bytes: l.MemSize()}
	if old := s.cache[i]; old != nil {
		s.cacheBytes -= old.bytes
	}
	s.cache[i] = e
	s.cacheBytes += e.bytes
	s.cacheLRU = append(s.cacheLRU, i)
	for len(s.cacheLRU) > capLayers {
		evict := s.cacheLRU[0]
		s.cacheLRU = s.cacheLRU[1:]
		if old := s.cache[evict]; old != nil {
			s.cacheBytes -= old.bytes
			delete(s.cache, evict)
		}
	}
	s.cfg.Metrics.Gauge("store_layer_cache_bytes").Set(s.cacheBytes)
}

// invalidateCache drops every cached reload (truncation/close).
func (s *Store) invalidateCache() {
	s.cache = nil
	s.cacheLRU = nil
	s.cacheBytes = 0
}

// CacheBytes returns the in-memory bytes currently charged to the reload
// cache — partially materialized layers count their decoded columns only.
func (s *Store) CacheBytes() int64 { return s.cacheBytes }

// TotalBytes returns the *serialized* size of the captured provenance graph
// in bytes — the on-storage footprint paper Tables 3 and 4 compare against
// the input graph size. (Resident memory is tracked separately via
// ResidentBytes and the memory budget.)
func (s *Store) TotalBytes() int64 { return s.totalBytes }

// DiskBytes returns the actual on-disk size of the spilled layer files —
// what the columnar format shrinks relative to TotalBytes' v1-shaped
// logical size (the bytes_per_tuple benchmark ratio divides this by
// TotalTuples).
func (s *Store) DiskBytes() int64 { return s.diskBytes }

// TotalTuples returns the number of provenance tuples captured.
func (s *Store) TotalTuples() int64 { return s.totalTuples }

// DistinctVertices returns how many input vertices appear in the provenance
// (Table 4: the custom provenance "contains more than 80% of the input
// vertices").
func (s *Store) DistinctVertices() int { return len(s.vertices) }

// ResidentBytes returns the bytes currently held in memory.
func (s *Store) ResidentBytes() int64 { return s.resident }

// SpilledLayers returns how many layers live on disk.
func (s *Store) SpilledLayers() int {
	n := 0
	for _, sp := range s.spilled {
		if sp {
			n++
		}
	}
	return n
}

// layerFileName names the spill file of layer i.
func layerFileName(i int) string { return fmt.Sprintf("layer-%06d.prov", i) }

// TruncateLayers drops every layer with index >= n — the recovery path: a
// capture observer restored from a checkpoint with watermark n discards the
// layers a crashed run appended past its last checkpoint, so the resumed
// run re-appends them in order. Size and vertex statistics are recomputed
// from the surviving layers (spilled ones are read back).
func (s *Store) TruncateLayers(n int) error {
	if n < 0 || n > len(s.layers) {
		return fmt.Errorf("provenance: truncate to %d layers out of range [0,%d]", n, len(s.layers))
	}
	// Quiesce the spill pipeline first so no write lands after its file was
	// removed. A surfaced write error is absorbed here: the failed layer is
	// resident again, and truncation recomputes all accounting below.
	s.Sync()
	s.invalidateCache()
	for i := n; i < len(s.layers); i++ {
		if s.files[i] != "" {
			os.Remove(s.files[i])
		}
	}
	s.layers = s.layers[:n]
	s.spilled = s.spilled[:n]
	s.files = s.files[:n]
	s.truncateGaps(n)
	s.resident, s.totalBytes, s.totalTuples, s.diskBytes = 0, 0, 0, 0
	s.vertices = make(map[VertexID]struct{})
	for i := 0; i < n; i++ {
		l, err := s.Layer(i)
		if err != nil {
			return fmt.Errorf("provenance: recomputing stats after truncation: %w", err)
		}
		if !s.spilled[i] {
			s.resident += l.MemSize()
		} else if st, err := os.Stat(s.files[i]); err == nil {
			s.diskBytes += st.Size()
		}
		s.totalBytes += l.EncodedSize()
		s.totalTuples += l.NumTuples()
		for ri := range l.Records {
			s.vertices[l.Records[ri].Vertex] = struct{}{}
		}
	}
	return nil
}

// Reattach adopts the first n layer files already present in SpillDir (a
// previous run's spill output) as this store's layers — the cross-process
// recovery path for capture under SpillAll: the store's content lives on
// disk, so a restored observer only needs the files re-registered.
func (s *Store) Reattach(n int) error {
	if len(s.layers) != 0 {
		return errors.New("provenance: Reattach requires an empty store")
	}
	if s.cfg.SpillDir == "" {
		return errors.New("provenance: Reattach requires a SpillDir")
	}
	for i := 0; i < n; i++ {
		path := filepath.Join(s.cfg.SpillDir, layerFileName(i))
		l, err := readLayerFile(path)
		if err != nil {
			return fmt.Errorf("provenance: reattaching layer %d: %w", i, err)
		}
		if l.Superstep != i {
			return fmt.Errorf("provenance: reattached layer file %d holds superstep %d", i, l.Superstep)
		}
		s.layers = append(s.layers, nil)
		s.spilled = append(s.spilled, true)
		s.files = append(s.files, path)
		if st, err := os.Stat(path); err == nil {
			s.diskBytes += st.Size()
		}
		s.totalBytes += l.EncodedSize()
		s.totalTuples += l.NumTuples()
		for ri := range l.Records {
			s.vertices[l.Records[ri].Vertex] = struct{}{}
		}
	}
	return nil
}

// Close drains the spill pipeline, stops its writer, and removes any spill
// files.
func (s *Store) Close() error {
	firstErr := s.Sync()
	if s.sp != nil {
		close(s.sp.jobs)
		s.sp = nil
		s.pending = nil
	}
	s.invalidateCache()
	for i, f := range s.files {
		if f != "" {
			if err := os.Remove(f); err != nil && firstErr == nil {
				firstErr = err
			}
			s.files[i] = ""
		}
	}
	return firstErr
}
