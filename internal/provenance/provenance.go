// Package provenance implements the paper's provenance graph (§3) in its
// compact representation: instead of materializing one node per
// (vertex, superstep) instantiation, the input graph's vertices are
// annotated with relational tuples — value, send-message, receive-message,
// superstep, and evolution facts — organized into *layers*, one per
// superstep (Def. 5.1). Layers are the unit of storage, size accounting,
// disk spill, and offline (layered) query evaluation.
package provenance

import (
	"ariadne/internal/graph"
	"ariadne/internal/value"
)

// VertexID aliases the graph vertex identifier.
type VertexID = graph.VertexID

// MsgHalf is one endpoint view of a message edge in the provenance graph:
// for send-message tuples Peer is the destination, for receive-message
// tuples Peer is the source. Val is Null when the capture policy drops
// message values (e.g. paper Query 11).
type MsgHalf struct {
	Peer VertexID
	Val  value.Value
}

// Fact is an auxiliary provenance fact emitted by the analytic
// (e.g. prov_error), stored verbatim under its table name.
type Fact struct {
	Table string
	Args  []value.Value
}

// Record is the compact provenance of one vertex at one superstep: the
// provenance-graph node with its annotations and incident message edges.
type Record struct {
	Vertex VertexID
	// PrevActive is the previous superstep this vertex computed in, or -1;
	// it materializes the evolution edge (PrevActive -> this layer).
	PrevActive int32
	// HasValue marks whether Value was captured (policies may drop values).
	HasValue bool
	Value    value.Value
	// Sends/Recvs are the message edges incident to this node.
	Sends []MsgHalf
	Recvs []MsgHalf
	// SentAny marks that the vertex sent at least one message this
	// superstep even when individual Sends are not captured — the paper's
	// prov-send(x,i) relation (Query 11).
	SentAny bool
	Emitted []Fact
}

// MemSize estimates the in-memory footprint of the record in bytes.
func (r *Record) MemSize() int64 {
	s := int64(4 + 4 + 2 + 16) // ids, flags, headers
	if r.HasValue {
		s += int64(r.Value.MemSize())
	}
	for _, m := range r.Sends {
		s += 4 + int64(m.Val.MemSize())
	}
	for _, m := range r.Recvs {
		s += 4 + int64(m.Val.MemSize())
	}
	for _, f := range r.Emitted {
		s += int64(len(f.Table)) + 16
		for _, a := range f.Args {
			s += int64(a.MemSize())
		}
	}
	return s
}

// EncodedSize returns the record's serialized size in bytes (the layer file
// format) — the on-storage footprint the paper's Tables 3 and 4 compare
// against the input graph.
func (r *Record) EncodedSize() int64 {
	s := int64(10 + 1) // vertex + prevActive varints (<=5 each), flags
	if r.HasValue {
		s += int64(r.Value.EncodedSize())
	}
	s += 2 // sends/recvs length varints (typical)
	for _, m := range r.Sends {
		s += 5 + int64(m.Val.EncodedSize())
	}
	for _, m := range r.Recvs {
		s += 5 + int64(m.Val.EncodedSize())
	}
	s++ // emitted length varint
	for _, f := range r.Emitted {
		s += int64(2 + len(f.Table))
		for _, a := range f.Args {
			s += int64(a.EncodedSize())
		}
	}
	return s
}

// Layer is the compact provenance of one superstep: all captured records,
// sorted by vertex ID.
type Layer struct {
	Superstep int
	Records   []Record
}

// MemSize estimates the in-memory footprint of the layer in bytes.
func (l *Layer) MemSize() int64 {
	s := int64(16)
	for i := range l.Records {
		s += l.Records[i].MemSize()
	}
	return s
}

// EncodedSize returns the layer's serialized size in bytes.
func (l *Layer) EncodedSize() int64 {
	s := int64(16)
	for i := range l.Records {
		s += l.Records[i].EncodedSize()
	}
	return s
}

// NumTuples counts the provenance tuples the layer contributes (superstep,
// value, evolution, send/receive-message, emitted facts) — the numerator of
// the paper's "provenance is 10x larger than the input graph" comparisons.
func (l *Layer) NumTuples() int64 {
	var n int64
	for i := range l.Records {
		r := &l.Records[i]
		n++ // superstep fact
		if r.HasValue {
			n++
		}
		if r.PrevActive >= 0 {
			n++ // evolution fact
		}
		n += int64(len(r.Sends) + len(r.Recvs) + len(r.Emitted))
		if r.SentAny {
			n++
		}
	}
	return n
}
