package provenance

import (
	"bufio"
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"ariadne/internal/value"
)

func sampleLayer(ss int, nrec int) *Layer {
	l := &Layer{Superstep: ss}
	for i := 0; i < nrec; i++ {
		r := Record{
			Vertex:     VertexID(i * 3),
			PrevActive: int32(ss - 1),
			HasValue:   true,
			Value:      value.NewFloat(float64(i) * 1.5),
			SentAny:    i%2 == 0,
		}
		if i%2 == 0 {
			r.Sends = []MsgHalf{{Peer: VertexID(i + 1), Val: value.NewFloat(0.5)}}
			r.Recvs = []MsgHalf{{Peer: VertexID(i + 2), Val: value.NewString("m")}}
			r.Emitted = []Fact{{Table: "prov_error", Args: []value.Value{value.NewInt(int64(i)), value.NewFloat(0.1)}}}
		}
		l.Records = append(l.Records, r)
	}
	return l
}

func TestLayerAccounting(t *testing.T) {
	l := sampleLayer(0, 4)
	if l.MemSize() <= 0 {
		t.Error("MemSize must be positive")
	}
	// 4 superstep + 4 value + 0 evolution (ss-1 = -1) + 2 sends + 2 recvs +
	// 2 emitted + 2 sentany
	l0 := sampleLayer(0, 4)
	for i := range l0.Records {
		l0.Records[i].PrevActive = -1
	}
	want := int64(4 + 4 + 2 + 2 + 2 + 2)
	if got := l0.NumTuples(); got != want {
		t.Errorf("NumTuples = %d, want %d", got, want)
	}
	// With evolution edges present, 4 more.
	l1 := sampleLayer(1, 4)
	if got := l1.NumTuples(); got != want+4 {
		t.Errorf("NumTuples with evolution = %d, want %d", got, want+4)
	}
}

func TestStoreBasic(t *testing.T) {
	s := NewStore(StoreConfig{})
	defer s.Close()
	for ss := 0; ss < 3; ss++ {
		if err := s.AppendLayer(sampleLayer(ss, 5)); err != nil {
			t.Fatal(err)
		}
	}
	if s.NumLayers() != 3 {
		t.Errorf("layers = %d", s.NumLayers())
	}
	if s.TotalBytes() <= 0 || s.TotalTuples() <= 0 {
		t.Error("size accounting should be positive")
	}
	if s.DistinctVertices() != 5 {
		t.Errorf("distinct vertices = %d, want 5", s.DistinctVertices())
	}
	l, err := s.Layer(1)
	if err != nil || l.Superstep != 1 {
		t.Errorf("Layer(1) = %v, %v", l, err)
	}
	if _, err := s.Layer(9); err == nil {
		t.Error("out-of-range layer should fail")
	}
	if err := s.AppendLayer(sampleLayer(7, 1)); err == nil {
		t.Error("out-of-order append should fail")
	}
}

func TestStoreBudgetWithoutSpillFails(t *testing.T) {
	s := NewStore(StoreConfig{MemoryBudget: 64})
	defer s.Close()
	err := s.AppendLayer(sampleLayer(0, 50))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

func TestStoreSpillsAndReloads(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(StoreConfig{MemoryBudget: 16384, SpillDir: dir})
	defer s.Close()
	var want []*Layer
	for ss := 0; ss < 12; ss++ {
		l := sampleLayer(ss, 20)
		want = append(want, l)
		if err := s.AppendLayer(l); err != nil {
			t.Fatal(err)
		}
	}
	if s.SpilledLayers() == 0 {
		t.Fatal("expected some layers to spill")
	}
	if s.ResidentBytes() > 16384 {
		t.Errorf("resident %d exceeds budget", s.ResidentBytes())
	}
	// Spilled layers reload identically.
	for ss := 0; ss < 12; ss++ {
		got, err := s.Layer(ss)
		if err != nil {
			t.Fatalf("Layer(%d): %v", ss, err)
		}
		assertLayersEqual(t, want[ss], got)
	}
	// Spill files exist under dir once the pipeline drains.
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "layer-*.prov"))
	if len(files) != s.SpilledLayers() {
		t.Errorf("spill files %d, want %d", len(files), s.SpilledLayers())
	}
}

func TestStoreSingleLayerOverBudget(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(StoreConfig{MemoryBudget: 16, SpillDir: dir})
	defer s.Close()
	// One giant layer cannot fit even after spilling older layers: the
	// newest layer always stays resident, so this must fail like the
	// paper's ALS full-capture (§6.1).
	if err := s.AppendLayer(sampleLayer(0, 100)); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

func assertLayersEqual(t *testing.T, a, b *Layer) {
	t.Helper()
	if a.Superstep != b.Superstep || len(a.Records) != len(b.Records) {
		t.Fatalf("layer mismatch: ss %d/%d records %d/%d", a.Superstep, b.Superstep, len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		ra, rb := &a.Records[i], &b.Records[i]
		if ra.Vertex != rb.Vertex || ra.PrevActive != rb.PrevActive ||
			ra.HasValue != rb.HasValue || ra.SentAny != rb.SentAny ||
			!ra.Value.Equal(rb.Value) && ra.HasValue {
			t.Fatalf("record %d differs: %+v vs %+v", i, ra, rb)
		}
		if len(ra.Sends) != len(rb.Sends) || len(ra.Recvs) != len(rb.Recvs) || len(ra.Emitted) != len(rb.Emitted) {
			t.Fatalf("record %d edge counts differ", i)
		}
		for j := range ra.Sends {
			if ra.Sends[j].Peer != rb.Sends[j].Peer || !ra.Sends[j].Val.Equal(rb.Sends[j].Val) {
				t.Fatalf("record %d send %d differs", i, j)
			}
		}
		for j := range ra.Emitted {
			if ra.Emitted[j].Table != rb.Emitted[j].Table || len(ra.Emitted[j].Args) != len(rb.Emitted[j].Args) {
				t.Fatalf("record %d fact %d differs", i, j)
			}
			for k := range ra.Emitted[j].Args {
				if !ra.Emitted[j].Args[k].Equal(rb.Emitted[j].Args[k]) {
					t.Fatalf("record %d fact %d arg %d differs", i, j, k)
				}
			}
		}
	}
}

func TestLayerCodecRoundTrip(t *testing.T) {
	l := sampleLayer(5, 30)
	// Add tricky values.
	l.Records[0].Value = value.NewVector([]float64{1, -2, 3})
	l.Records[1].Value = value.NewString("")
	l.Records[2].HasValue = false

	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := encodeLayer(w, l); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	got, err := decodeLayer(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	assertLayersEqual(t, l, got)
}

func TestLayerCodecCorruption(t *testing.T) {
	if _, err := decodeLayer(bufio.NewReader(bytes.NewReader([]byte("XXXX")))); err == nil {
		t.Error("bad magic should fail")
	}
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := encodeLayer(w, sampleLayer(0, 3)); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	full := buf.Bytes()
	// Truncations anywhere must error, never panic.
	for cut := 1; cut < len(full); cut += 7 {
		if _, err := decodeLayer(bufio.NewReader(bytes.NewReader(full[:cut]))); err == nil {
			t.Errorf("truncation at %d should fail", cut)
		}
	}
	// Bad version byte.
	bad := append([]byte{}, full...)
	bad[4] = 99
	if _, err := decodeLayer(bufio.NewReader(bytes.NewReader(bad))); err == nil {
		t.Error("bad version should fail")
	}
}

func TestLayerCodecQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := &Layer{Superstep: r.Intn(50)}
		for i := 0; i < r.Intn(10); i++ {
			rec := Record{
				Vertex:     VertexID(r.Intn(1000)),
				PrevActive: int32(r.Intn(10) - 1),
				HasValue:   r.Intn(2) == 0,
				SentAny:    r.Intn(2) == 0,
			}
			switch r.Intn(3) {
			case 0:
				rec.Value = value.NewFloat(r.NormFloat64())
			case 1:
				rec.Value = value.NewInt(r.Int63())
			default:
				rec.Value = value.NewVector([]float64{r.Float64()})
			}
			for j := 0; j < r.Intn(4); j++ {
				rec.Sends = append(rec.Sends, MsgHalf{Peer: VertexID(r.Intn(100)), Val: value.NewFloat(r.Float64())})
			}
			l.Records = append(l.Records, rec)
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := encodeLayer(w, l); err != nil {
			return false
		}
		w.Flush()
		got, err := decodeLayer(bufio.NewReader(&buf))
		if err != nil || got.Superstep != l.Superstep || len(got.Records) != len(l.Records) {
			return false
		}
		for i := range l.Records {
			if got.Records[i].Vertex != l.Records[i].Vertex {
				return false
			}
			if l.Records[i].HasValue && !got.Records[i].Value.Equal(l.Records[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}
