package provenance

import (
	"testing"
)

// BenchmarkSpillPipeline compares the synchronous spill path (layer encode +
// fsync-free write inline in AppendLayer) against the async writer-goroutine
// pipeline. Each iteration interleaves layer *construction* (standing in for
// a superstep's capture work, the way a real run builds the next layer while
// the previous one spills) with AppendLayer under SpillAll: the sync leg
// serializes build -> encode -> write, the async leg overlaps the writer
// goroutine's encode+write with the next layer's build. The async/sync time
// ratio is the regression metric archived by `make bench-micro`; an earlier
// version of this benchmark pre-built all layers outside the timed loop,
// which left the async leg nothing to overlap with and measured ~1.0x.
func BenchmarkSpillPipeline(b *testing.B) {
	const (
		layersPerRun = 12
		recsPerLayer = 2000
	)
	for _, mode := range []struct {
		name string
		sync bool
	}{{"sync", true}, {"async", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			dir := b.TempDir()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := NewStore(StoreConfig{
					SpillAll:  true,
					SpillDir:  dir,
					SyncSpill: mode.sync,
				})
				for ss := 0; ss < layersPerRun; ss++ {
					// The build is the "compute" the async writer hides behind.
					l := sampleLayer(ss, recsPerLayer)
					if err := s.AppendLayer(l); err != nil {
						b.Fatal(err)
					}
				}
				if err := s.Sync(); err != nil {
					b.Fatal(err)
				}
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
