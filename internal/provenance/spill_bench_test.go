package provenance

import (
	"testing"
)

// BenchmarkSpillPipeline compares the synchronous spill path (layer encode +
// fsync-free write inline in AppendLayer) against the async writer-goroutine
// pipeline. Every iteration appends layersPerRun layers under SpillAll, so
// each one spills; the async leg overlaps layer encoding with the next
// superstep's append and should win on any machine with spare cores. The
// async/sync time ratio is the regression metric archived by
// `make bench-micro`.
func BenchmarkSpillPipeline(b *testing.B) {
	const (
		layersPerRun = 16
		recsPerLayer = 400
	)
	for _, mode := range []struct {
		name string
		sync bool
	}{{"sync", true}, {"async", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			dir := b.TempDir()
			layers := make([]*Layer, layersPerRun)
			for ss := range layers {
				layers[ss] = sampleLayer(ss, recsPerLayer)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := NewStore(StoreConfig{
					SpillAll:  true,
					SpillDir:  dir,
					SyncSpill: mode.sync,
				})
				for _, l := range layers {
					if err := s.AppendLayer(l); err != nil {
						b.Fatal(err)
					}
				}
				if err := s.Sync(); err != nil {
					b.Fatal(err)
				}
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
