package provenance

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ariadne/internal/fault"
)

func listDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestSpillWriteRetriesTransientErrors(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(StoreConfig{
		SpillAll: true,
		SpillDir: dir,
		Fault:    fault.NewInjector(fault.IOErrors(fault.SiteSpillWrite, 2)),
	})
	defer s.Close()
	if err := s.AppendLayer(sampleLayer(0, 5)); err != nil {
		t.Fatalf("transient spill errors should be retried: %v", err)
	}
	// The layer landed at the final path, readable, with no temp debris.
	got, err := s.Layer(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 5 {
		t.Errorf("reloaded layer has %d records, want 5", len(got.Records))
	}
	for _, name := range listDir(t, dir) {
		if filepath.Ext(name) == ".tmp" {
			t.Errorf("temp file %s left behind", name)
		}
	}
}

func TestSpillWriteExhaustedRetriesLeaveNoPartialFile(t *testing.T) {
	// Async pipeline (the default): the enqueue succeeds, the exhausted
	// write surfaces at Sync (or the next AppendLayer), and the failed
	// layer reverts to resident so its provenance is not lost.
	t.Run("async", func(t *testing.T) {
		dir := t.TempDir()
		s := NewStore(StoreConfig{
			SpillAll: true,
			SpillDir: dir,
			Fault:    fault.NewInjector(fault.IOErrors(fault.SiteSpillWrite, 100)),
		})
		defer s.Close()
		if err := s.AppendLayer(sampleLayer(0, 5)); err != nil && !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("append = %v, want nil or deferred ErrInjected", err)
		}
		if err := s.Sync(); err != nil && !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("Sync = %v, want ErrInjected (or already surfaced at append)", err)
		}
		// The failed layer reverted to resident: still readable, counted as
		// unspilled.
		if s.SpilledLayers() != 0 {
			t.Errorf("failed spill still counted: %d spilled layers", s.SpilledLayers())
		}
		l, err := s.Layer(0)
		if err != nil || len(l.Records) != 5 {
			t.Errorf("failed-spill layer unreadable: %v", err)
		}
		// Neither a partial layer file nor a temp file may exist.
		if names := listDir(t, dir); len(names) != 0 {
			t.Errorf("failed spill left files behind: %v", names)
		}
	})
	// SyncSpill: the pre-pipeline contract — the error surfaces from
	// AppendLayer itself.
	t.Run("sync", func(t *testing.T) {
		dir := t.TempDir()
		s := NewStore(StoreConfig{
			SpillAll:  true,
			SpillDir:  dir,
			SyncSpill: true,
			Fault:     fault.NewInjector(fault.IOErrors(fault.SiteSpillWrite, 100)),
		})
		defer s.Close()
		err := s.AppendLayer(sampleLayer(0, 5))
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("exhausted retries = %v, want ErrInjected", err)
		}
		if names := listDir(t, dir); len(names) != 0 {
			t.Errorf("failed spill left files behind: %v", names)
		}
	})
}

// formatCases names both layer file formats for format-matrix subtests.
var formatCases = []struct {
	name   string
	format int
}{{"v1", FormatV1}, {"v2", FormatV2}}

// TestLayerTruncationNeverPanics reads a layer file truncated at every byte
// boundary, in both formats; each truncation must yield an error, never a
// panic. The v2 leg also exercises the projected decode path, whose footer
// seek reads the file back-to-front.
func TestLayerTruncationNeverPanics(t *testing.T) {
	for _, fc := range formatCases {
		t.Run(fc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "layer.prov")
			if _, err := writeLayerFile(path, sampleLayer(0, 6), fc.format, nil, nil); err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			trunc := filepath.Join(dir, "trunc.prov")
			for cut := 0; cut < len(raw); cut++ {
				if err := os.WriteFile(trunc, raw[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				if _, err := readLayerFile(trunc); err == nil {
					t.Fatalf("truncation at byte %d of %d decoded without error", cut, len(raw))
				}
				if _, _, err := readLayerFileProjected(trunc, maskCore); err == nil {
					t.Fatalf("projected decode of truncation at byte %d of %d succeeded", cut, len(raw))
				}
			}
		})
	}
}

// TestLayerCorruptCountsNeverPanic flips bytes across the file (header
// counts, column footers, packed values) and checks decode errors out
// rather than over-allocating or panicking, in both formats.
func TestLayerCorruptCountsNeverPanic(t *testing.T) {
	for _, fc := range formatCases {
		t.Run(fc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "layer.prov")
			if _, err := writeLayerFile(path, sampleLayer(0, 6), fc.format, nil, nil); err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			mut := filepath.Join(dir, "mut.prov")
			for pos := 5; pos < len(raw); pos++ {
				for _, bit := range []byte{0x80, 0xff} {
					b := append([]byte(nil), raw...)
					b[pos] ^= bit
					if err := os.WriteFile(mut, b, 0o644); err != nil {
						t.Fatal(err)
					}
					// Any outcome but a panic is acceptable: some flips still
					// decode (payload bytes), corrupt counts must error.
					readLayerFile(mut)
					readLayerFileProjected(mut, maskCore)
				}
			}
		})
	}
}

func TestTruncateLayers(t *testing.T) {
	s := NewStore(StoreConfig{})
	defer s.Close()
	for ss := 0; ss < 5; ss++ {
		if err := s.AppendLayer(sampleLayer(ss, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.TruncateLayers(2); err != nil {
		t.Fatal(err)
	}
	if s.NumLayers() != 2 {
		t.Fatalf("layers = %d, want 2", s.NumLayers())
	}
	// Appending continues at the truncation point.
	if err := s.AppendLayer(sampleLayer(2, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s.TruncateLayers(7); err == nil {
		t.Error("truncating beyond the layer count should fail")
	}
}

func TestReattachSpilledLayers(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(StoreConfig{SpillAll: true, SpillDir: dir})
	for ss := 0; ss < 4; ss++ {
		if err := s.AppendLayer(sampleLayer(ss, 4)); err != nil {
			t.Fatal(err)
		}
	}
	wantTuples := s.TotalTuples()
	// The cross-process handoff point (a checkpoint) syncs the pipeline, so
	// every layer file is on disk before another process adopts them.
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	// A fresh store (a new process) adopts the on-disk layers.
	s2 := NewStore(StoreConfig{SpillAll: true, SpillDir: dir})
	if err := s2.Reattach(3); err != nil {
		t.Fatal(err)
	}
	if s2.NumLayers() != 3 {
		t.Fatalf("reattached layers = %d, want 3", s2.NumLayers())
	}
	if s2.TotalTuples() >= wantTuples {
		t.Errorf("3 reattached layers should hold fewer tuples than all 4")
	}
	l, err := s2.Layer(1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Superstep != 1 || len(l.Records) != 4 {
		t.Errorf("reattached layer 1 = ss %d, %d records", l.Superstep, len(l.Records))
	}
	// The resumed run re-appends layer 3 (and may overwrite its old file).
	if err := s2.AppendLayer(sampleLayer(3, 4)); err != nil {
		t.Fatal(err)
	}
	if s2.TotalTuples() != wantTuples {
		t.Errorf("tuples after re-append = %d, want %d", s2.TotalTuples(), wantTuples)
	}
	// Drain the async writer before t.TempDir cleanup, or the re-appended
	// layer's spill file can appear mid-RemoveAll.
	if err := s2.Sync(); err != nil {
		t.Fatal(err)
	}
}
