package provenance

import (
	"reflect"
	"testing"
)

func TestAddGapMergesBothDirections(t *testing.T) {
	s := NewStore(StoreConfig{})
	defer s.Close()

	// Backward extension: a note for ss-1 must extend the existing range
	// downward, not open a duplicate row for the same partition.
	s.AddGap(5, 1, "deadline")
	s.AddGap(4, 1, "deadline")
	want := []CaptureGap{{Partition: 1, From: 4, To: 5, Reason: "deadline"}}
	if got := s.Gaps(); !reflect.DeepEqual(got, want) {
		t.Fatalf("backward merge: got %+v, want %+v", got, want)
	}

	// Forward extension still works, and repeats are idempotent.
	s.AddGap(6, 1, "deadline")
	s.AddGap(6, 1, "deadline")
	s.AddGap(5, 1, "deadline")
	want[0].To = 6
	if got := s.Gaps(); !reflect.DeepEqual(got, want) {
		t.Fatalf("forward merge: got %+v, want %+v", got, want)
	}
}

func TestAddGapBridgesOutOfOrderRanges(t *testing.T) {
	s := NewStore(StoreConfig{})
	defer s.Close()

	// Two separate ranges for one partition, then the bridging superstep
	// arrives last: 3-4 and 6-7 must collapse into a single 3-7 row.
	s.AddGap(3, 2, "retry")
	s.AddGap(4, 2, "retry")
	s.AddGap(7, 2, "retry")
	s.AddGap(6, 2, "retry")
	if got := len(s.Gaps()); got != 2 {
		t.Fatalf("before bridge: %d gaps, want 2", got)
	}
	s.AddGap(5, 2, "retry")
	want := []CaptureGap{{Partition: 2, From: 3, To: 7, Reason: "retry"}}
	if got := s.Gaps(); !reflect.DeepEqual(got, want) {
		t.Fatalf("bridged: got %+v, want %+v", got, want)
	}
}

func TestAddGapKeepsPartitionsSeparate(t *testing.T) {
	s := NewStore(StoreConfig{})
	defer s.Close()

	// Adjacent supersteps on different partitions (including the whole-layer
	// partition -1) never merge with each other.
	s.AddGap(2, 0, "a")
	s.AddGap(3, 1, "b")
	s.AddGap(4, -1, "shed")
	got := s.Gaps()
	want := []CaptureGap{
		{Partition: -1, From: 4, To: 4, Reason: "shed"},
		{Partition: 0, From: 2, To: 2, Reason: "a"},
		{Partition: 1, From: 3, To: 3, Reason: "b"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}
