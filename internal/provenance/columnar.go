package provenance

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"ariadne/internal/value"
)

// Version 2 columnar layer file format. Where v1 streams self-describing
// row records, v2 splits the layer into per-column blocks so a reader can
// seek to and decode only the columns a query projects (the
// workflow-provenance-on-SPARK lesson: store provenance scan-friendly):
//
//	magic "APRV" | version:2 | superstep:uvarint | nrecords:uvarint |
//	column blocks (ascending column ID, contiguous) |
//	footer | footerLen:uint32-LE | end magic "VRPA"
//
// footer: ncols:uvarint { colID:uvarint | offset:uvarint | length:uvarint }
// with offsets absolute from the start of the file, so a reader stats the
// file, reads the 8-byte trailer, then the footer, and issues one ReadAt
// per selected column.
//
// Columns (IDs are stable on disk — append new ones, never renumber):
//
//	0 vertex      zigzag delta varints (records are sorted by vertex, so
//	              deltas are small non-negatives; zigzag keeps unsorted
//	              layers encodable)
//	1 prevActive  zigzag varint of (superstep-1 - prevActive): the common
//	              "active last superstep" case encodes as one zero byte
//	2 flags       2 bits per record (bit0 HasValue, bit1 SentAny), packed
//	              four records per byte
//	3 sendPeers   per record: count uvarint, then zigzag deltas between
//	              consecutive peer IDs (first delta from the record's own
//	              vertex); capture order is preserved — replay delivery
//	              order must stay bit-identical
//	4 sendValues  packed values, aligned by the counts in column 3
//	5 recvPeers   as column 3, for received messages
//	6 recvValues  packed values, aligned by the counts in column 5
//	7 values      packed values, one per record with HasValue set
//	8 emitted     table-name dictionary, then per record: fact count,
//	              { tableIdx uvarint | nargs uvarint | packed args }
//
// Columns 0-3 are "core": replay always needs the vertex set, activation
// lineage, flags, and the send topology to regenerate the layer's message
// structure, so every decode materializes them. Columns 4-8 decode only
// when projected, and can be merged into a cached partial layer later.

const layerVersionColumnar = 2

// Column IDs of the v2 format.
const (
	colVertex = iota
	colPrevActive
	colFlags
	colSendPeers
	colSendValues
	colRecvPeers
	colRecvValues
	colValues
	colEmitted
	numColumns
)

// colMask is a bitset of column IDs.
type colMask uint16

const (
	maskCore colMask = 1<<colVertex | 1<<colPrevActive | 1<<colFlags | 1<<colSendPeers
	maskAll  colMask = 1<<numColumns - 1
)

func (m colMask) has(col int) bool { return m&(1<<col) != 0 }

// LayerProjection selects which optional layer columns a reader needs
// materialized. The zero value requests only the core columns (vertex,
// activation, flags, send topology); a nil *LayerProjection means "all
// columns". Requesting RecvValues implies RecvPeers (values align to the
// per-record receive counts).
type LayerProjection struct {
	Values     bool // the value(X, D, I) payload column
	SendValues bool // message payloads on send_message tuples
	RecvPeers  bool // receive topology (peer IDs and counts)
	RecvValues bool // message payloads on receive_message tuples
	Emitted    bool // analytic-emitted fact tables
}

// mask folds the projection into a column bitset. nil selects every column.
func (p *LayerProjection) mask() colMask {
	if p == nil {
		return maskAll
	}
	m := maskCore
	if p.Values {
		m |= 1 << colValues
	}
	if p.SendValues {
		m |= 1 << colSendValues
	}
	if p.RecvPeers || p.RecvValues {
		m |= 1 << colRecvPeers
	}
	if p.RecvValues {
		m |= 1 << colRecvValues
	}
	if p.Emitted {
		m |= 1 << colEmitted
	}
	return m
}

var layerEndMagic = [4]byte{'V', 'R', 'P', 'A'}

func zigzag(i int64) uint64   { return uint64(i<<1) ^ uint64(i>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Packed value encoding: a tag byte selects the representation. Integers
// and integral floats become zigzag varints (graph analytics values —
// component labels, hop counts, iteration-rounded ranks — are
// overwhelmingly small integers); only genuinely fractional floats pay the
// raw 8 bytes.
const (
	pvNull     = 0
	pvFalse    = 1
	pvTrue     = 2
	pvInt      = 3 // zigzag varint
	pvFloatInt = 4 // zigzag varint, value is float64(int64)
	pvFloatRaw = 5 // 8 bytes little-endian Float64bits
	pvString   = 6 // uvarint length + bytes
	pvVecRaw   = 7 // uvarint n + n*8 bytes little-endian
	pvVecInt   = 8 // uvarint n + n zigzag varints (all elements integral)
)

// integralFloat reports whether f round-trips bit-exactly through int64
// (rejects NaN, infinities, -0.0, fractions, and magnitudes where float64
// spacing exceeds 1).
func integralFloat(f float64) (int64, bool) {
	if f != math.Trunc(f) || f < -(1<<62) || f > 1<<62 {
		return 0, false
	}
	i := int64(f)
	if math.Float64bits(float64(i)) != math.Float64bits(f) {
		return 0, false
	}
	return i, true
}

func appendPackedValue(buf []byte, v value.Value) []byte {
	switch v.Kind() {
	case value.Null:
		return append(buf, pvNull)
	case value.Bool:
		if v.Bool() {
			return append(buf, pvTrue)
		}
		return append(buf, pvFalse)
	case value.Int:
		buf = append(buf, pvInt)
		return binary.AppendUvarint(buf, zigzag(v.Int()))
	case value.Float:
		f := v.Float()
		if i, ok := integralFloat(f); ok {
			buf = append(buf, pvFloatInt)
			return binary.AppendUvarint(buf, zigzag(i))
		}
		buf = append(buf, pvFloatRaw)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	case value.String:
		s := v.Str()
		buf = append(buf, pvString)
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		return append(buf, s...)
	case value.Vector:
		vec := v.Vec()
		allInt := true
		for _, f := range vec {
			if _, ok := integralFloat(f); !ok {
				allInt = false
				break
			}
		}
		if allInt {
			buf = append(buf, pvVecInt)
			buf = binary.AppendUvarint(buf, uint64(len(vec)))
			for _, f := range vec {
				i, _ := integralFloat(f)
				buf = binary.AppendUvarint(buf, zigzag(i))
			}
			return buf
		}
		buf = append(buf, pvVecRaw)
		buf = binary.AppendUvarint(buf, uint64(len(vec)))
		for _, f := range vec {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
		return buf
	default:
		// Unknown kinds cannot occur from the value package; encode Null so
		// the file stays decodable.
		return append(buf, pvNull)
	}
}

// bcursor is a bounds-checked cursor over one column block. Every decode
// error is a clean "corrupt layer" error, never a panic — the fuzz target
// holds the codec to that.
type bcursor struct {
	b   []byte
	off int
}

func corruptf(format string, args ...any) error {
	return fmt.Errorf("provenance: corrupt v2 layer: "+format, args...)
}

func (c *bcursor) remaining() int { return len(c.b) - c.off }

func (c *bcursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, corruptf("truncated varint at block offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *bcursor) zigzag() (int64, error) {
	u, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	return unzigzag(u), nil
}

func (c *bcursor) byte() (byte, error) {
	if c.off >= len(c.b) {
		return 0, corruptf("truncated block at offset %d", c.off)
	}
	b := c.b[c.off]
	c.off++
	return b, nil
}

func (c *bcursor) take(n int) ([]byte, error) {
	if n < 0 || n > c.remaining() {
		return nil, corruptf("length %d exceeds %d remaining block bytes", n, c.remaining())
	}
	b := c.b[c.off : c.off+n]
	c.off += n
	return b, nil
}

// count reads a uvarint element count and sanity-checks it against the
// remaining block bytes at perElem minimum bytes per element, so a corrupt
// count fails before any oversized allocation.
func (c *bcursor) count(perElem int) (int, error) {
	u, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	if u > uint64(maxDecodeLen) || int64(u)*int64(perElem) > int64(c.remaining()) {
		return 0, corruptf("count %d exceeds %d remaining block bytes", u, c.remaining())
	}
	return int(u), nil
}

func (c *bcursor) packedValue() (value.Value, error) {
	tag, err := c.byte()
	if err != nil {
		return value.NullValue, err
	}
	switch tag {
	case pvNull:
		return value.NullValue, nil
	case pvFalse:
		return value.NewBool(false), nil
	case pvTrue:
		return value.NewBool(true), nil
	case pvInt:
		i, err := c.zigzag()
		if err != nil {
			return value.NullValue, err
		}
		return value.NewInt(i), nil
	case pvFloatInt:
		i, err := c.zigzag()
		if err != nil {
			return value.NullValue, err
		}
		return value.NewFloat(float64(i)), nil
	case pvFloatRaw:
		raw, err := c.take(8)
		if err != nil {
			return value.NullValue, err
		}
		return value.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(raw))), nil
	case pvString:
		n, err := c.count(1)
		if err != nil {
			return value.NullValue, err
		}
		raw, err := c.take(n)
		if err != nil {
			return value.NullValue, err
		}
		return value.NewString(string(raw)), nil
	case pvVecRaw:
		n, err := c.count(8)
		if err != nil {
			return value.NullValue, err
		}
		raw, err := c.take(8 * n)
		if err != nil {
			return value.NullValue, err
		}
		vec := make([]float64, n)
		for i := range vec {
			vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
		return value.NewVector(vec), nil
	case pvVecInt:
		n, err := c.count(1)
		if err != nil {
			return value.NullValue, err
		}
		vec := make([]float64, n)
		for i := range vec {
			z, err := c.zigzag()
			if err != nil {
				return value.NullValue, err
			}
			vec[i] = float64(z)
		}
		return value.NewVector(vec), nil
	default:
		return value.NullValue, corruptf("unknown packed value tag %d", tag)
	}
}

// encodeLayerColumnar serializes l in the v2 columnar format.
func encodeLayerColumnar(w io.Writer, l *Layer) error {
	var head []byte
	head = append(head, layerMagic[:]...)
	head = append(head, layerVersionColumnar)
	head = binary.AppendUvarint(head, uint64(l.Superstep))
	head = binary.AppendUvarint(head, uint64(len(l.Records)))

	var blocks [numColumns][]byte
	prevVertex := int64(0)
	prevBase := int64(l.Superstep - 1)
	var flagAcc byte
	flagBits := 0
	dict := map[string]int{}
	var tables []string
	var emittedBody []byte
	for i := range l.Records {
		r := &l.Records[i]
		v := int64(r.Vertex)
		blocks[colVertex] = binary.AppendUvarint(blocks[colVertex], zigzag(v-prevVertex))
		prevVertex = v
		blocks[colPrevActive] = binary.AppendUvarint(blocks[colPrevActive], zigzag(prevBase-int64(r.PrevActive)))
		var fl byte
		if r.HasValue {
			fl |= 1
		}
		if r.SentAny {
			fl |= 2
		}
		flagAcc |= fl << flagBits
		flagBits += 2
		if flagBits == 8 {
			blocks[colFlags] = append(blocks[colFlags], flagAcc)
			flagAcc, flagBits = 0, 0
		}
		blocks[colSendPeers] = appendPeerDeltas(blocks[colSendPeers], v, r.Sends)
		for _, m := range r.Sends {
			blocks[colSendValues] = appendPackedValue(blocks[colSendValues], m.Val)
		}
		blocks[colRecvPeers] = appendPeerDeltas(blocks[colRecvPeers], v, r.Recvs)
		for _, m := range r.Recvs {
			blocks[colRecvValues] = appendPackedValue(blocks[colRecvValues], m.Val)
		}
		if r.HasValue {
			blocks[colValues] = appendPackedValue(blocks[colValues], r.Value)
		}
		emittedBody = binary.AppendUvarint(emittedBody, uint64(len(r.Emitted)))
		for _, fc := range r.Emitted {
			idx, ok := dict[fc.Table]
			if !ok {
				idx = len(tables)
				dict[fc.Table] = idx
				tables = append(tables, fc.Table)
			}
			emittedBody = binary.AppendUvarint(emittedBody, uint64(idx))
			emittedBody = binary.AppendUvarint(emittedBody, uint64(len(fc.Args)))
			for _, a := range fc.Args {
				emittedBody = appendPackedValue(emittedBody, a)
			}
		}
	}
	if flagBits > 0 {
		blocks[colFlags] = append(blocks[colFlags], flagAcc)
	}
	var emitted []byte
	emitted = binary.AppendUvarint(emitted, uint64(len(tables)))
	for _, t := range tables {
		emitted = binary.AppendUvarint(emitted, uint64(len(t)))
		emitted = append(emitted, t...)
	}
	blocks[colEmitted] = append(emitted, emittedBody...)

	var foot []byte
	foot = binary.AppendUvarint(foot, numColumns)
	off := uint64(len(head))
	for id, b := range blocks {
		foot = binary.AppendUvarint(foot, uint64(id))
		foot = binary.AppendUvarint(foot, off)
		foot = binary.AppendUvarint(foot, uint64(len(b)))
		off += uint64(len(b))
	}
	if _, err := w.Write(head); err != nil {
		return err
	}
	for _, b := range blocks {
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	if _, err := w.Write(foot); err != nil {
		return err
	}
	var trailer [8]byte
	binary.LittleEndian.PutUint32(trailer[:4], uint32(len(foot)))
	copy(trailer[4:], layerEndMagic[:])
	_, err := w.Write(trailer[:])
	return err
}

// appendPeerDeltas encodes one record's message peer list: a count, then
// zigzag deltas between consecutive peers, the first relative to the
// record's own vertex. Capture order is preserved exactly — replay walks
// this list to regenerate deliveries, and the differential suite demands
// bit-identical runs.
func appendPeerDeltas(buf []byte, vertex int64, ms []MsgHalf) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ms)))
	prev := vertex
	for _, m := range ms {
		p := int64(m.Peer)
		buf = binary.AppendUvarint(buf, zigzag(p-prev))
		prev = p
	}
	return buf
}

// columnarLayer is an opened v2 layer file: parsed header and footer, with
// column blocks still on storage until decodeInto reads the projected ones.
type columnarLayer struct {
	r         io.ReaderAt
	superstep int
	nrecords  int
	present   colMask
	offs      [numColumns]int64
	lens      [numColumns]int64
}

// openColumnar parses the header and footer of a v2 layer file of the given
// size without reading any column block.
func openColumnar(r io.ReaderAt, size int64) (*columnarLayer, error) {
	hdr := make([]byte, 64)
	if size < int64(len(hdr)) {
		hdr = hdr[:size]
	}
	if _, err := r.ReadAt(hdr, 0); err != nil {
		return nil, corruptf("short header read: %v", err)
	}
	if len(hdr) < 5 || [4]byte(hdr[:4]) != layerMagic {
		return nil, fmt.Errorf("provenance: bad layer magic %q", hdr[:min(len(hdr), 4)])
	}
	if hdr[4] != layerVersionColumnar {
		return nil, fmt.Errorf("provenance: unsupported layer version %d", hdr[4])
	}
	c := bcursor{b: hdr, off: 5}
	ss, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxDecodeLen {
		return nil, corruptf("record count %d exceeds sanity cap", n)
	}
	headerEnd := int64(c.off)

	var trailer [8]byte
	if size < headerEnd+int64(len(trailer)) {
		return nil, corruptf("file size %d too small for trailer", size)
	}
	if _, err := r.ReadAt(trailer[:], size-8); err != nil {
		return nil, corruptf("short trailer read: %v", err)
	}
	if [4]byte(trailer[4:]) != layerEndMagic {
		return nil, corruptf("bad end magic %q (truncated write?)", trailer[4:])
	}
	footLen := int64(binary.LittleEndian.Uint32(trailer[:4]))
	if footLen <= 0 || footLen > size-8-headerEnd {
		return nil, corruptf("footer length %d out of range", footLen)
	}
	foot := make([]byte, footLen)
	if _, err := r.ReadAt(foot, size-8-footLen); err != nil {
		return nil, corruptf("short footer read: %v", err)
	}
	fc := bcursor{b: foot}
	ncols, err := fc.count(1)
	if err != nil {
		return nil, err
	}
	cl := &columnarLayer{r: r, superstep: int(ss), nrecords: int(n)}
	blocksEnd := size - 8 - footLen
	for i := 0; i < ncols; i++ {
		id, err := fc.uvarint()
		if err != nil {
			return nil, err
		}
		off, err := fc.uvarint()
		if err != nil {
			return nil, err
		}
		length, err := fc.uvarint()
		if err != nil {
			return nil, err
		}
		if id >= numColumns {
			// Unknown trailing columns from a future writer are skippable.
			continue
		}
		if cl.present.has(int(id)) {
			return nil, corruptf("duplicate column %d in footer", id)
		}
		if int64(off) < headerEnd || int64(off)+int64(length) > blocksEnd || int64(off)+int64(length) < int64(off) {
			return nil, corruptf("column %d extent [%d,%d) outside blocks region [%d,%d)", id, off, off+length, headerEnd, blocksEnd)
		}
		cl.present |= 1 << id
		cl.offs[id] = int64(off)
		cl.lens[id] = int64(length)
	}
	if cl.present&maskCore != maskCore {
		return nil, corruptf("missing core columns (footer mask %09b)", cl.present)
	}
	// Each record costs at least one vertex-delta byte, so the record count
	// is bounded by the vertex block length — reject a lying header before
	// allocating records.
	if int64(cl.nrecords) > cl.lens[colVertex] {
		return nil, corruptf("record count %d exceeds vertex column of %d bytes", cl.nrecords, cl.lens[colVertex])
	}
	return cl, nil
}

func (cl *columnarLayer) readBlock(col int) (*bcursor, error) {
	if !cl.present.has(col) {
		return nil, corruptf("column %d absent from footer", col)
	}
	b := make([]byte, cl.lens[col])
	if _, err := cl.r.ReadAt(b, cl.offs[col]); err != nil {
		return nil, corruptf("short read of column %d: %v", col, err)
	}
	return &bcursor{b: b}, nil
}

// decodeInto materializes the core columns plus the optional columns
// selected by mask into l (which must be empty).
func (cl *columnarLayer) decodeInto(l *Layer, mask colMask) error {
	l.Superstep = cl.superstep
	n := cl.nrecords
	l.Records = make([]Record, n)

	vc, err := cl.readBlock(colVertex)
	if err != nil {
		return err
	}
	prev := int64(0)
	for i := 0; i < n; i++ {
		d, err := vc.zigzag()
		if err != nil {
			return err
		}
		prev += d
		l.Records[i].Vertex = VertexID(prev)
	}

	pc, err := cl.readBlock(colPrevActive)
	if err != nil {
		return err
	}
	base := int64(cl.superstep - 1)
	for i := 0; i < n; i++ {
		d, err := pc.zigzag()
		if err != nil {
			return err
		}
		pa := base - d
		if pa < -1 || pa > int64(math.MaxInt32) {
			return corruptf("prevActive %d out of range for record %d", pa, i)
		}
		l.Records[i].PrevActive = int32(pa)
	}

	fc, err := cl.readBlock(colFlags)
	if err != nil {
		return err
	}
	if len(fc.b) < (n+3)/4 {
		return corruptf("flags column holds %d bytes, need %d", len(fc.b), (n+3)/4)
	}
	for i := 0; i < n; i++ {
		fl := fc.b[i/4] >> ((i % 4) * 2)
		l.Records[i].HasValue = fl&1 != 0
		l.Records[i].SentAny = fl&2 != 0
	}

	if err := cl.decodePeers(l, colSendPeers); err != nil {
		return err
	}
	for col := colSendValues; col < numColumns; col++ {
		if !mask.has(col) {
			continue
		}
		if err := cl.decodeOptional(l, col); err != nil {
			return err
		}
	}
	return nil
}

// decodePeers decodes a peer-list column (send or receive topology).
func (cl *columnarLayer) decodePeers(l *Layer, col int) error {
	c, err := cl.readBlock(col)
	if err != nil {
		return err
	}
	for i := range l.Records {
		r := &l.Records[i]
		cnt, err := c.count(1)
		if err != nil {
			return err
		}
		if cnt == 0 {
			continue
		}
		ms := make([]MsgHalf, cnt)
		prev := int64(r.Vertex)
		for j := range ms {
			d, err := c.zigzag()
			if err != nil {
				return err
			}
			prev += d
			ms[j].Peer = VertexID(prev)
		}
		if col == colSendPeers {
			r.Sends = ms
		} else {
			r.Recvs = ms
		}
	}
	return nil
}

// decodeOptional decodes one non-core column into an already-materialized
// layer. Alignment invariants: sendValues needs Sends populated (core),
// recvValues needs Recvs (so colRecvPeers must decode first — callers
// iterate columns in ID order and LayerProjection.mask guarantees the
// peers bit accompanies the values bit).
func (cl *columnarLayer) decodeOptional(l *Layer, col int) error {
	switch col {
	case colRecvPeers:
		return cl.decodePeers(l, col)
	case colSendValues, colRecvValues:
		c, err := cl.readBlock(col)
		if err != nil {
			return err
		}
		for i := range l.Records {
			ms := l.Records[i].Sends
			if col == colRecvValues {
				ms = l.Records[i].Recvs
			}
			for j := range ms {
				if ms[j].Val, err = c.packedValue(); err != nil {
					return err
				}
			}
		}
		return nil
	case colValues:
		c, err := cl.readBlock(col)
		if err != nil {
			return err
		}
		for i := range l.Records {
			if !l.Records[i].HasValue {
				continue
			}
			var err error
			if l.Records[i].Value, err = c.packedValue(); err != nil {
				return err
			}
		}
		return nil
	case colEmitted:
		c, err := cl.readBlock(col)
		if err != nil {
			return err
		}
		ntables, err := c.count(1)
		if err != nil {
			return err
		}
		tables := make([]string, ntables)
		for i := range tables {
			tl, err := c.count(1)
			if err != nil {
				return err
			}
			raw, err := c.take(tl)
			if err != nil {
				return err
			}
			tables[i] = string(raw)
		}
		for i := range l.Records {
			nf, err := c.count(1)
			if err != nil {
				return err
			}
			if nf == 0 {
				continue
			}
			facts := make([]Fact, nf)
			for j := range facts {
				ti, err := c.uvarint()
				if err != nil {
					return err
				}
				if ti >= uint64(len(tables)) {
					return corruptf("fact table index %d out of dictionary range %d", ti, len(tables))
				}
				facts[j].Table = tables[ti]
				na, err := c.count(1)
				if err != nil {
					return err
				}
				if na > 0 {
					args := make([]value.Value, na)
					for k := range args {
						if args[k], err = c.packedValue(); err != nil {
							return err
						}
					}
					facts[j].Args = args
				}
			}
			l.Records[i].Emitted = facts
		}
		return nil
	default:
		return corruptf("column %d is not decodable", col)
	}
}

// mergeInto decodes the columns in add into a layer previously materialized
// from the same file with a narrower projection ("lazily decodable"
// columns). add must contain only optional columns; if it includes
// recvValues without the layer having receive topology yet, add must also
// include recvPeers (LayerProjection.mask maintains that invariant).
func (cl *columnarLayer) mergeInto(l *Layer, add colMask) error {
	if cl.nrecords != len(l.Records) || cl.superstep != l.Superstep {
		return corruptf("merge target mismatch: file holds %d records of superstep %d, layer %d of %d",
			cl.nrecords, cl.superstep, len(l.Records), l.Superstep)
	}
	for col := colSendValues; col < numColumns; col++ {
		if !add.has(col) {
			continue
		}
		if err := cl.decodeOptional(l, col); err != nil {
			return err
		}
	}
	return nil
}
