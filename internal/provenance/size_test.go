package provenance

import (
	"bufio"
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ariadne/internal/value"
)

// TestEncodedSizeMatchesEncoding checks that the analytic EncodedSize
// matches the actual byte length produced by the layer codec, record by
// record, within the per-record varint slack the estimate allows.
func TestEncodedSizeMatchesEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := &Layer{Superstep: r.Intn(100)}
		for i := 0; i < 1+r.Intn(20); i++ {
			rec := Record{
				Vertex:     VertexID(r.Intn(1 << 16)),
				PrevActive: int32(r.Intn(12) - 1),
				HasValue:   r.Intn(4) != 0,
				SentAny:    r.Intn(2) == 0,
			}
			switch r.Intn(4) {
			case 0:
				rec.Value = value.NewFloat(r.NormFloat64())
			case 1:
				rec.Value = value.NewInt(r.Int63n(1 << 40))
			case 2:
				rec.Value = value.NewString("label-1234")
			default:
				vec := make([]float64, 1+r.Intn(8))
				for j := range vec {
					vec[j] = r.Float64()
				}
				rec.Value = value.NewVector(vec)
			}
			for j := 0; j < r.Intn(6); j++ {
				rec.Sends = append(rec.Sends, MsgHalf{Peer: VertexID(r.Intn(1 << 16)), Val: value.NewFloat(r.Float64())})
			}
			for j := 0; j < r.Intn(6); j++ {
				rec.Recvs = append(rec.Recvs, MsgHalf{Peer: VertexID(r.Intn(1 << 16)), Val: value.NewFloat(r.Float64())})
			}
			if r.Intn(3) == 0 {
				rec.Emitted = append(rec.Emitted, Fact{
					Table: "prov_error",
					Args:  []value.Value{value.NewInt(int64(r.Intn(100))), value.NewFloat(r.Float64())},
				})
			}
			l.Records = append(l.Records, rec)
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := encodeLayer(w, l); err != nil {
			return false
		}
		w.Flush()
		actual := int64(buf.Len())
		est := l.EncodedSize()
		// The estimate over-allocates varint headroom (up to ~12 bytes per
		// record plus message-peer slack); it must never undercount and
		// never exceed 2x.
		if est < actual {
			t.Logf("seed %d: estimate %d < actual %d", seed, est, actual)
			return false
		}
		return est <= 2*actual+64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestValueEncodedSizeExact(t *testing.T) {
	vals := []value.Value{
		value.NullValue,
		value.NewBool(true),
		value.NewInt(-1),
		value.NewFloat(3.25),
		value.NewString(""),
		value.NewString("hello"),
		value.NewVector(nil),
		value.NewVector(make([]float64, 300)), // multi-byte uvarint length
	}
	for _, v := range vals {
		got := v.EncodedSize()
		actual := len(v.AppendBinary(nil))
		if got != actual {
			t.Errorf("%v (%v): EncodedSize %d, actual %d", v, v.Kind(), got, actual)
		}
	}
}
