package provenance

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"ariadne/internal/value"
)

// trickyLayer exercises every value representation the packed encoding
// distinguishes: negative ints, integral and fractional floats, -0.0, NaN,
// infinities, floats at the integral-encoding range boundary, empty and
// non-ASCII strings, integral and fractional vectors, repeated emitted
// table names, and records with no sends/recvs/value.
func trickyLayer(ss int) *Layer {
	vals := []value.Value{
		value.NullValue,
		value.NewBool(true),
		value.NewBool(false),
		value.NewInt(0),
		value.NewInt(-1),
		value.NewInt(math.MaxInt64),
		value.NewInt(math.MinInt64),
		value.NewFloat(0),
		value.NewFloat(math.Copysign(0, -1)), // -0.0 must not collapse to +0.0
		value.NewFloat(42),
		value.NewFloat(-1.5),
		value.NewFloat(math.NaN()),
		value.NewFloat(math.Inf(1)),
		value.NewFloat(math.Inf(-1)),
		value.NewFloat(1 << 62),
		value.NewFloat(-(1 << 62)),
		value.NewFloat(6755399441055744.5), // fractional, large
		value.NewString(""),
		value.NewString("héllo\x00world"),
		value.NewVector(nil),
		value.NewVector([]float64{1, -2, 3}),
		value.NewVector([]float64{0.5, -0.25, 1e300}),
	}
	l := &Layer{Superstep: ss}
	for i, v := range vals {
		r := Record{
			Vertex:     VertexID(i * 7),
			PrevActive: int32(ss - 1 - i%3),
			HasValue:   i%5 != 4,
			Value:      v,
			SentAny:    i%3 == 0,
		}
		if r.PrevActive < -1 {
			r.PrevActive = -1
		}
		if i%2 == 0 {
			// Peers deliberately out of order and below the vertex ID, so the
			// delta encoding sees negative deltas and order preservation is
			// observable.
			r.Sends = []MsgHalf{
				{Peer: VertexID(i + 9), Val: v},
				{Peer: VertexID(0), Val: value.NewInt(int64(i))},
				{Peer: VertexID(i + 1), Val: value.NullValue},
			}
		}
		if i%3 == 0 {
			r.Recvs = []MsgHalf{
				{Peer: VertexID(i + 2), Val: value.NewString("m")},
				{Peer: VertexID(1), Val: v},
			}
		}
		if i%4 == 0 {
			r.Emitted = []Fact{
				{Table: "prov_error", Args: []value.Value{value.NewInt(int64(i)), v}},
				{Table: "component_update", Args: nil},
				{Table: "prov_error", Args: []value.Value{value.NullValue}},
			}
		}
		l.Records = append(l.Records, r)
	}
	return l
}

// assertLayersIdentical is assertLayersEqual plus receive-message contents
// (the shared helper only checks counts there) — projection tests need to
// see exactly which columns materialized.
func assertLayersIdentical(t *testing.T, want, got *Layer) {
	t.Helper()
	assertLayersEqual(t, want, got)
	for i := range want.Records {
		ra, rb := &want.Records[i], &got.Records[i]
		for j := range ra.Recvs {
			if ra.Recvs[j].Peer != rb.Recvs[j].Peer || !ra.Recvs[j].Val.Equal(rb.Recvs[j].Val) {
				t.Fatalf("record %d recv %d differs: %+v vs %+v", i, j, ra.Recvs[j], rb.Recvs[j])
			}
		}
		if ra.HasValue && !ra.Value.Equal(rb.Value) {
			t.Fatalf("record %d value differs: %v vs %v", i, ra.Value, rb.Value)
		}
	}
}

func writeTempLayer(t *testing.T, l *Layer, format int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "layer.prov")
	if _, err := writeLayerFile(path, l, format, nil, nil); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestColumnarRoundTrip(t *testing.T) {
	for _, l := range []*Layer{trickyLayer(3), trickyLayer(0), {Superstep: 2}, sampleLayer(1, 50)} {
		path := writeTempLayer(t, l, FormatV2)
		got, err := readLayerFile(path)
		if err != nil {
			t.Fatal(err)
		}
		assertLayersIdentical(t, l, got)
	}
}

// TestColumnarFloatBitIdentity pins the packed float encoding to bit-exact
// round-trips: -0.0, NaN payload-default, and the int64-boundary values
// must come back with identical Float64bits.
func TestColumnarFloatBitIdentity(t *testing.T) {
	floats := []float64{0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1),
		1 << 62, -(1 << 62), 1<<63 - 1024, math.MaxFloat64, math.SmallestNonzeroFloat64, -1.5, 42}
	for _, f := range floats {
		buf := appendPackedValue(nil, value.NewFloat(f))
		c := bcursor{b: buf}
		got, err := c.packedValue()
		if err != nil {
			t.Fatalf("decode %v: %v", f, err)
		}
		if math.Float64bits(got.Float()) != math.Float64bits(f) {
			t.Errorf("float %v round-tripped to %v (bits %x vs %x)", f, got.Float(),
				math.Float64bits(f), math.Float64bits(got.Float()))
		}
	}
}

// TestColumnarVectorNaNBitIdentity covers NaN inside vectors, which
// value.Equal cannot compare (elementwise != is NaN-hostile): the packed
// encoding must still round-trip every element bit-exactly.
func TestColumnarVectorNaNBitIdentity(t *testing.T) {
	want := []float64{0.5, math.NaN(), math.Copysign(0, -1), math.Inf(-1)}
	buf := appendPackedValue(nil, value.NewVector(want))
	c := bcursor{b: buf}
	got, err := c.packedValue()
	if err != nil {
		t.Fatal(err)
	}
	vec := got.Vec()
	if len(vec) != len(want) {
		t.Fatalf("vector length %d, want %d", len(vec), len(want))
	}
	for i := range want {
		if math.Float64bits(vec[i]) != math.Float64bits(want[i]) {
			t.Errorf("element %d: %v round-tripped to %v", i, want[i], vec[i])
		}
	}
}

func TestIntegralFloat(t *testing.T) {
	if _, ok := integralFloat(math.Copysign(0, -1)); ok {
		t.Error("-0.0 must not encode as an integer (sign bit would be lost)")
	}
	if _, ok := integralFloat(math.NaN()); ok {
		t.Error("NaN must not encode as an integer")
	}
	if _, ok := integralFloat(1.5); ok {
		t.Error("fractional floats must not encode as integers")
	}
	if i, ok := integralFloat(42); !ok || i != 42 {
		t.Errorf("integralFloat(42) = %d, %v", i, ok)
	}
	if i, ok := integralFloat(-3); !ok || i != -3 {
		t.Errorf("integralFloat(-3) = %d, %v", i, ok)
	}
}

// TestColumnarProjection reads the same file under narrowing projections
// and checks exactly which columns materialize; then widens the partial
// layer with mergeLayerColumns back to full and checks identity.
func TestColumnarProjection(t *testing.T) {
	l := trickyLayer(4)
	path := writeTempLayer(t, l, FormatV2)

	// Core-only projection: topology present, payload columns absent.
	core, gotMask, err := readLayerFileProjected(path, (&LayerProjection{}).mask())
	if err != nil {
		t.Fatal(err)
	}
	if gotMask != maskCore {
		t.Fatalf("core projection materialized mask %09b, want %09b", gotMask, maskCore)
	}
	for i := range l.Records {
		ra, rb := &l.Records[i], &core.Records[i]
		if ra.Vertex != rb.Vertex || ra.PrevActive != rb.PrevActive ||
			ra.HasValue != rb.HasValue || ra.SentAny != rb.SentAny {
			t.Fatalf("core record %d differs: %+v vs %+v", i, ra, rb)
		}
		if len(ra.Sends) != len(rb.Sends) {
			t.Fatalf("core record %d send count %d, want %d", i, len(rb.Sends), len(ra.Sends))
		}
		for j := range ra.Sends {
			if ra.Sends[j].Peer != rb.Sends[j].Peer {
				t.Fatalf("core record %d send peer %d differs", i, j)
			}
			if !rb.Sends[j].Val.IsNull() {
				t.Fatalf("core record %d send %d has a value despite projection", i, j)
			}
		}
		if rb.Recvs != nil || rb.Emitted != nil || !rb.Value.IsNull() {
			t.Fatalf("core record %d materialized unprojected columns: %+v", i, rb)
		}
	}

	// RecvValues implies RecvPeers.
	rp, gotMask, err := readLayerFileProjected(path, (&LayerProjection{RecvValues: true}).mask())
	if err != nil {
		t.Fatal(err)
	}
	if !gotMask.has(colRecvPeers) || !gotMask.has(colRecvValues) {
		t.Fatalf("RecvValues projection mask %09b misses recv columns", gotMask)
	}
	for i := range l.Records {
		ra, rb := &l.Records[i], &rp.Records[i]
		if len(ra.Recvs) != len(rb.Recvs) {
			t.Fatalf("record %d recv count %d, want %d", i, len(rb.Recvs), len(ra.Recvs))
		}
		for j := range ra.Recvs {
			if ra.Recvs[j].Peer != rb.Recvs[j].Peer || !ra.Recvs[j].Val.Equal(rb.Recvs[j].Val) {
				t.Fatalf("record %d recv %d differs under projection", i, j)
			}
		}
	}

	// Widening the core layer column by column converges to the full layer.
	if err := mergeLayerColumns(path, core, maskAll&^maskCore); err != nil {
		t.Fatal(err)
	}
	assertLayersIdentical(t, l, core)
}

// TestProjectedLayerChargesLessMemory pins the satellite accounting
// contract: a partially materialized layer must have a strictly smaller
// MemSize than the full decode of the same file (decoded columns only).
func TestProjectedLayerChargesLessMemory(t *testing.T) {
	l := trickyLayer(4)
	path := writeTempLayer(t, l, FormatV2)
	full, _, err := readLayerFileProjected(path, maskAll)
	if err != nil {
		t.Fatal(err)
	}
	core, _, err := readLayerFileProjected(path, maskCore)
	if err != nil {
		t.Fatal(err)
	}
	if core.MemSize() >= full.MemSize() {
		t.Errorf("projected layer MemSize %d >= full %d", core.MemSize(), full.MemSize())
	}
}

// TestColumnarSmallerThanRowFormat is a sanity floor under the benchmark
// gate: on an int-valued message-heavy layer (the WCC shape), the columnar
// file must be at least 3x smaller than the v1 row file.
func TestColumnarSmallerThanRowFormat(t *testing.T) {
	l := wccLayer(3, 2000, 4)
	dir := t.TempDir()
	v1, err := writeLayerFile(filepath.Join(dir, "v1.prov"), l, FormatV1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := writeLayerFile(filepath.Join(dir, "v2.prov"), l, FormatV2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2*3 > v1 {
		t.Errorf("v2 file %d bytes vs v1 %d: reduction %.2fx < 3x", v2, v1, float64(v1)/float64(v2))
	}
}

// TestStoreFormatV1StillWritten pins the -store-format v1 escape hatch: a
// FormatV1 store produces files the v1 decoder reads directly.
func TestStoreFormatV1StillWritten(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(StoreConfig{SpillAll: true, SyncSpill: true, SpillDir: dir, Format: FormatV1})
	l := sampleLayer(0, 10)
	if err := s.AppendLayer(l); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, layerFileName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if raw[4] != layerVersion {
		t.Fatalf("FormatV1 store wrote version %d", raw[4])
	}
	got, err := s.Layer(0)
	if err != nil {
		t.Fatal(err)
	}
	assertLayersIdentical(t, l, got)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestV1FilesRemainReadable writes v1 layer files (an earlier build's spill
// output) and reattaches them with a default-format (v2) store — the
// checkpoint/resume compatibility path. Projected reads against v1 files
// must silently degrade to full materialization.
func TestV1FilesRemainReadable(t *testing.T) {
	dir := t.TempDir()
	old := NewStore(StoreConfig{SpillAll: true, SyncSpill: true, SpillDir: dir, Format: FormatV1})
	var want []*Layer
	for ss := 0; ss < 4; ss++ {
		l := sampleLayer(ss, 12)
		want = append(want, l)
		if err := old.AppendLayer(l); err != nil {
			t.Fatal(err)
		}
	}
	// Detach without deleting the files (Close would remove them): simulate
	// process death by dropping the store on the floor.

	s := NewStore(StoreConfig{SpillAll: true, SpillDir: dir}) // default FormatV2
	if err := s.Reattach(4); err != nil {
		t.Fatalf("reattaching v1 files under a v2 store: %v", err)
	}
	for ss := 0; ss < 4; ss++ {
		got, err := s.LayerProjected(ss, &LayerProjection{})
		if err != nil {
			t.Fatal(err)
		}
		// v1 files have no column blocks: the projected read returns the
		// full layer.
		assertLayersIdentical(t, want[ss], got)
	}
	// New layers appended by the resumed run spill as v2; both formats then
	// coexist in one store directory.
	if err := s.AppendLayer(sampleLayer(4, 12)); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, layerFileName(4)))
	if err != nil {
		t.Fatal(err)
	}
	if raw[4] != layerVersionColumnar {
		t.Fatalf("resumed store wrote version %d, want v2", raw[4])
	}
	got, err := s.Layer(4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Superstep != 4 || len(got.Records) != 12 {
		t.Fatalf("mixed-format store misread layer 4: ss %d, %d records", got.Superstep, len(got.Records))
	}
}

// wccLayer models a WCC-style custom capture: integer component labels,
// label messages to a few neighbors, and one emitted fact per converged
// record under a shared table name — the shape the paper's Table 3/4
// storage comparisons are about.
func wccLayer(ss, nrec, fanout int) *Layer {
	l := &Layer{Superstep: ss}
	for i := 0; i < nrec; i++ {
		label := int64(i % 97)
		r := Record{
			Vertex:     VertexID(i * 2),
			PrevActive: int32(ss - 1),
			HasValue:   true,
			Value:      value.NewInt(label),
			SentAny:    true,
		}
		for k := 0; k < fanout; k++ {
			r.Sends = append(r.Sends, MsgHalf{Peer: VertexID((i*2 + k + 1) % (nrec * 2)), Val: value.NewInt(label)})
			r.Recvs = append(r.Recvs, MsgHalf{Peer: VertexID((i*2 + 2*k + 3) % (nrec * 2)), Val: value.NewInt(label + 1)})
		}
		if i%4 == 0 {
			r.Emitted = []Fact{{Table: "component_update", Args: []value.Value{value.NewInt(label), value.NewInt(int64(ss))}}}
		}
		l.Records = append(l.Records, r)
	}
	return l
}

// TestColumnarBufferRoundTrip drives the encoder/decoder through an
// in-memory buffer (the fuzz target's transport) rather than a file.
func TestColumnarBufferRoundTrip(t *testing.T) {
	l := trickyLayer(2)
	var buf bytes.Buffer
	if err := encodeLayerColumnar(&buf, l); err != nil {
		t.Fatal(err)
	}
	cl, err := openColumnar(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	got := &Layer{}
	if err := cl.decodeInto(got, maskAll); err != nil {
		t.Fatal(err)
	}
	assertLayersIdentical(t, l, got)
}
