package provenance

import "testing"

// TestStoreCacheBytesProjected pins the reload LRU's byte accounting
// end to end, mirroring size_test.go's encoder/estimate contract at the
// store level: CacheBytes must charge each cached reload for its decoded
// columns only, so a projected read of a v2 layer costs a fraction of a
// full read of the same layer, widening a cached partial layer grows its
// charge in place, and eviction returns exactly what the evicted entry
// was charged.
func TestStoreCacheBytesProjected(t *testing.T) {
	s := NewStore(StoreConfig{
		SpillAll:    true,
		SyncSpill:   true,
		SpillDir:    t.TempDir(),
		ReloadCache: 2,
	})
	defer s.Close()
	for ss := 0; ss < 3; ss++ {
		if err := s.AppendLayer(wccLayer(ss, 500, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.CacheBytes(); got != 0 {
		t.Fatalf("CacheBytes before any reload = %d, want 0", got)
	}

	// Core-only projected reload: the cache is charged for the partial
	// layer's decoded columns, not the full layer it could widen into.
	l0, err := s.LayerProjected(0, &LayerProjection{})
	if err != nil {
		t.Fatal(err)
	}
	partial := s.CacheBytes()
	if partial != l0.MemSize() {
		t.Fatalf("CacheBytes after projected reload = %d, want layer MemSize %d", partial, l0.MemSize())
	}

	// Full reload of an identically shaped layer must cost strictly more
	// than the core-only reload — the payload columns are the bulk.
	l1, err := s.Layer(1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.CacheBytes(), partial+l1.MemSize(); got != want {
		t.Fatalf("CacheBytes after full reload = %d, want %d", got, want)
	}
	if partial >= l1.MemSize() {
		t.Fatalf("projected reload charged %d bytes, not less than full reload %d", partial, l1.MemSize())
	}

	// Asking for the full layer widens the cached partial entry in place
	// and re-charges it at its grown size.
	l0w, err := s.Layer(0)
	if err != nil {
		t.Fatal(err)
	}
	if l0w != l0 {
		t.Fatal("widening did not reuse the cached layer in place")
	}
	if got, want := s.CacheBytes(), l0.MemSize()+l1.MemSize(); got != want {
		t.Fatalf("CacheBytes after widening = %d, want %d", got, want)
	}
	if l0.MemSize() <= partial {
		t.Fatalf("widened layer MemSize %d did not grow past projected charge %d", l0.MemSize(), partial)
	}

	// The widening access made layer 0 most recently used, so reloading a
	// third layer evicts layer 1 and refunds exactly its charge.
	l2, err := s.Layer(2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.CacheBytes(), l0.MemSize()+l2.MemSize(); got != want {
		t.Fatalf("CacheBytes after eviction = %d, want %d", got, want)
	}
}
