package provenance

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzLayerV2Decode drives the layer-file readers with arbitrary bytes and
// an arbitrary projection mask, generalizing TestLayerTruncationNeverPanics
// from every-byte truncations to every mutation the fuzzer can find. The
// corpus is seeded with real encodings of both formats — the tricky-value
// layer (NaN, ±Inf, -0.0, extreme ints, non-ASCII strings, vectors), the
// WCC-shaped layer, and a small generic layer — so mutations start from
// structurally valid files and dig into the dictionary, delta, and varint
// decoders rather than bouncing off the magic check. The invariant under
// test: decode never panics and never over-allocates; it either returns a
// layer or a clean error, for the full read and for every projected read.
//
// CI runs this as a 30s smoke via `go test -fuzz FuzzLayerV2Decode`; the
// committed corpus under testdata/fuzz replays as an ordinary test case.
func FuzzLayerV2Decode(f *testing.F) {
	seedLayers := []*Layer{
		trickyLayer(2),
		wccLayer(1, 40, 3),
		sampleLayer(3, 8),
		{Superstep: 0}, // no records: header+footer only
	}
	for _, l := range seedLayers {
		var v2 bytes.Buffer
		if err := encodeLayerColumnar(&v2, l); err != nil {
			f.Fatal(err)
		}
		var v1 bytes.Buffer
		if err := encodeLayer(&v1, l); err != nil {
			f.Fatal(err)
		}
		for _, mask := range []uint16{uint16(maskAll), uint16(maskCore), 0} {
			f.Add(v2.Bytes(), mask)
			f.Add(v1.Bytes(), mask)
		}
		// A mid-file truncation seed steers mutations toward the footer
		// bounds checks (v2 reads the file back-to-front).
		f.Add(v2.Bytes()[:v2.Len()/2], uint16(maskAll))
	}
	f.Add([]byte{}, uint16(maskAll))

	f.Fuzz(func(t *testing.T, data []byte, mask uint16) {
		path := filepath.Join(t.TempDir(), "layer.prov")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		full, err := readLayerFile(path)
		if err == nil && full == nil {
			t.Fatal("readLayerFile returned neither layer nor error")
		}
		proj, got, err := readLayerFileProjected(path, colMask(mask))
		if err != nil {
			return
		}
		if proj == nil {
			t.Fatal("readLayerFileProjected returned neither layer nor error")
		}
		// A successful projected decode must honor the superset contract:
		// at least the requested columns plus the always-on core set.
		want := (colMask(mask) | maskCore) & maskAll
		if got&want != want {
			t.Fatalf("projected decode materialized mask %04x, missing bits of %04x", got, want)
		}
		// A projected decode may succeed where the full decode errors (a
		// corrupt byte in a skipped column is invisible to it), but when
		// both succeed they must agree on the layer shape.
		if full != nil && (len(proj.Records) != len(full.Records) || proj.Superstep != full.Superstep) {
			t.Fatalf("projected decode shape (%d records, ss %d) != full (%d records, ss %d)",
				len(proj.Records), proj.Superstep, len(full.Records), full.Superstep)
		}
	})
}
