package provenance

import (
	"testing"
)

// BenchmarkStoreFormat measures the on-disk footprint and write cost of the
// two layer file formats over the same WCC-shaped capture (integer labels,
// label messages, a shared emitted table — the workload behind the paper's
// Table 3/4 storage numbers). The headline metric is B/tuple = DiskBytes /
// TotalTuples; benchjson derives bytes_per_tuple_reduction from the v1/v2
// ratio and requires the columnar format to be at least 3x smaller.
func BenchmarkStoreFormat(b *testing.B) {
	const (
		layersPerRun = 8
		recsPerLayer = 4000
		fanout       = 4
	)
	layers := make([]*Layer, layersPerRun)
	for ss := range layers {
		layers[ss] = wccLayer(ss, recsPerLayer, fanout)
	}
	for _, fc := range formatCases {
		b.Run(fc.name, func(b *testing.B) {
			b.ReportAllocs()
			dir := b.TempDir()
			var bytesPerTuple float64
			for i := 0; i < b.N; i++ {
				s := NewStore(StoreConfig{
					SpillAll:  true,
					SyncSpill: true,
					SpillDir:  dir,
					Format:    fc.format,
				})
				for _, l := range layers {
					if err := s.AppendLayer(l); err != nil {
						b.Fatal(err)
					}
				}
				bytesPerTuple = float64(s.DiskBytes()) / float64(s.TotalTuples())
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(bytesPerTuple, "B/tuple")
		})
	}
}
