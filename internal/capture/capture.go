// Package capture turns the engine's transient provenance stream into a
// persisted provenance.Store according to a Policy — the paper's
// *customized capturing* (§3, §6.1). A Policy is either built directly or
// compiled from a declarative PQL capture query (Queries 2, 3, 11) via
// FromQuery.
package capture

import (
	"fmt"
	"sort"

	"ariadne/internal/engine"
	"ariadne/internal/graph"
	"ariadne/internal/obs"
	"ariadne/internal/pql"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/provenance"
	"ariadne/internal/value"
)

// Policy declares what goes into the captured provenance graph.
type Policy struct {
	// Values captures vertex-value tuples (value(x,d,i)).
	Values bool
	// Sends captures send-message edges with message values.
	Sends bool
	// Recvs captures receive-message edges with message values.
	Recvs bool
	// SendFlags captures only the fact that a vertex sent something
	// (prov_send(x,i), paper Query 11) without per-edge tuples.
	SendFlags bool
	// Emitted lists analytics-emitted tables to persist (e.g. prov_error);
	// nil persists none, ["*"] persists all.
	Emitted []string
	// TaintSource, when non-nil, restricts capture to the forward lineage
	// of the given vertex (paper Query 3): a vertex is captured only once
	// it is influenced — it is the source, or it received a message from an
	// already-tainted vertex.
	TaintSource *graph.VertexID
}

// FullPolicy captures the complete provenance graph (paper Query 2).
func FullPolicy() Policy {
	return Policy{Values: true, Sends: true, Recvs: true, Emitted: []string{"*"}}
}

// ForwardLineagePolicy captures the custom provenance sufficient for
// forward tracing from source (paper Query 3, Table 4): only the *values*
// of influenced vertices are persisted. The receive-message stream is
// consumed transiently to propagate the taint but never stored — that is
// what keeps the custom provenance below the input graph size in Table 4.
func ForwardLineagePolicy(source graph.VertexID) Policy {
	src := source
	return Policy{Values: true, TaintSource: &src}
}

// BackwardCustomPolicy captures the reduced provenance of paper Query 11:
// vertex values and send *flags*, relying on the static input edges instead
// of send-message edges (Query 12 then traces on prov_send + edge).
func BackwardCustomPolicy() Policy {
	return Policy{Values: true, SendFlags: true}
}

// NeedsRaw reports whether the policy requires per-message delivery.
func (p Policy) NeedsRaw() bool { return p.Recvs }

// Observer captures provenance layers into a Store while the analytic runs.
type Observer struct {
	policy Policy
	store  *provenance.Store

	emitAll bool
	emitSet map[string]bool
	tainted map[graph.VertexID]bool
	metrics *obs.Metrics
}

// NewObserver creates a capture observer writing into store.
func NewObserver(policy Policy, store *provenance.Store) *Observer {
	o := &Observer{policy: policy, store: store}
	o.emitSet = map[string]bool{}
	for _, t := range policy.Emitted {
		if t == "*" {
			o.emitAll = true
			continue
		}
		o.emitSet[t] = true
	}
	if policy.TaintSource != nil {
		o.tainted = map[graph.VertexID]bool{*policy.TaintSource: true}
	}
	return o
}

// Store returns the store being written.
func (o *Observer) Store() *provenance.Store { return o.store }

// SetMetrics attaches a metrics registry: each superstep's appended tuples
// are counted per table (the paper's capture-cost curves, §6.1, Tables
// 3-4). nil (the default) disables instrumentation.
func (o *Observer) SetMetrics(m *obs.Metrics) { o.metrics = m }

// NeedsRawMessages implements engine.Observer.
func (o *Observer) NeedsRawMessages() bool {
	return o.policy.NeedsRaw() || o.policy.TaintSource != nil
}

// ObserveSuperstep implements engine.Observer: converts the superstep's
// records into a compact provenance layer.
func (o *Observer) ObserveSuperstep(v *engine.SuperstepView) error {
	l := &provenance.Layer{Superstep: v.Superstep}
	newTaints := []graph.VertexID{}
	var nValues, nSends, nFlags, nRecvs int64
	var nEmitted map[string]int64
	for i := range v.Records {
		rec := &v.Records[i]
		if o.tainted != nil {
			if !o.taintedNow(rec, &newTaints) {
				continue
			}
		}
		pr := provenance.Record{
			Vertex:     rec.ID,
			PrevActive: int32(rec.PrevActive),
		}
		if o.policy.Values {
			pr.HasValue = true
			pr.Value = rec.NewValue
			nValues++
		}
		if o.policy.Sends {
			pr.Sends = make([]provenance.MsgHalf, len(rec.Sent))
			for j, m := range rec.Sent {
				pr.Sends[j] = provenance.MsgHalf{Peer: m.Dst, Val: m.Val}
			}
			nSends += int64(len(rec.Sent))
		}
		if o.policy.SendFlags {
			pr.SentAny = len(rec.Sent) > 0
			if pr.SentAny {
				nFlags++
			}
		}
		if o.policy.Recvs {
			pr.Recvs = make([]provenance.MsgHalf, len(rec.Received))
			for j, m := range rec.Received {
				pr.Recvs[j] = provenance.MsgHalf{Peer: m.Src, Val: m.Val}
			}
			nRecvs += int64(len(rec.Received))
		}
		if o.emitAll || len(o.emitSet) > 0 {
			for _, f := range rec.Emitted {
				if o.emitAll || o.emitSet[f.Table] {
					pr.Emitted = append(pr.Emitted, provenance.Fact{
						Table: f.Table,
						Args:  append([]value.Value(nil), f.Args...),
					})
					if o.metrics != nil {
						if nEmitted == nil {
							nEmitted = map[string]int64{}
						}
						nEmitted[f.Table]++
					}
				}
			}
		}
		l.Records = append(l.Records, pr)
	}
	if o.metrics != nil {
		o.metrics.AddCaptureTuples("value", nValues)
		o.metrics.AddCaptureTuples("send_message", nSends)
		o.metrics.AddCaptureTuples("prov_send", nFlags)
		o.metrics.AddCaptureTuples("receive_message", nRecvs)
		for t, n := range nEmitted {
			o.metrics.AddCaptureTuples(t, n)
		}
	}
	// Taints become visible after the full layer is processed so that
	// same-superstep message order cannot matter (BSP semantics: messages
	// received this superstep were sent last superstep).
	for _, t := range newTaints {
		o.tainted[t] = true
	}
	return o.store.AppendLayer(l)
}

// taintedNow decides whether rec belongs to the forward lineage: it is
// already tainted, or it received a message from a tainted sender this
// superstep (the sender was tainted when it sent, i.e. before this layer).
func (o *Observer) taintedNow(rec *engine.VertexRecord, newTaints *[]graph.VertexID) bool {
	if o.tainted[rec.ID] {
		return true
	}
	for _, m := range rec.Received {
		if o.tainted[m.Src] {
			*newTaints = append(*newTaints, rec.ID)
			return true
		}
	}
	return false
}

// Finish implements engine.Observer.
func (o *Observer) Finish(int) error { return nil }

// MarshalCheckpoint implements engine.Checkpointable: the observer's
// recoverable state is its provenance-store watermark (how many layers have
// been durably appended) plus the forward-lineage taint set. The layers
// themselves are not duplicated into the checkpoint — they either remain in
// the same process's store (in-process recovery) or on disk under SpillAll
// (cross-process recovery via Store.Reattach).
func (o *Observer) MarshalCheckpoint() ([]byte, error) {
	w := value.NewBlob()
	w.Uvarint(uint64(o.store.NumLayers()))
	w.Bool(o.tainted != nil)
	if o.tainted != nil {
		ids := make([]graph.VertexID, 0, len(o.tainted))
		for v := range o.tainted {
			ids = append(ids, v)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		w.Uvarint(uint64(len(ids)))
		for _, v := range ids {
			w.Uvarint(uint64(v))
		}
	}
	return w.Bytes(), nil
}

// UnmarshalCheckpoint implements engine.Checkpointable: it resets the taint
// set and aligns the store with the saved watermark — layers a crashed run
// appended past the checkpoint are discarded so the resumed run re-appends
// them, and an empty store recovering from a spilled run reattaches its
// on-disk layers.
func (o *Observer) UnmarshalCheckpoint(data []byte) error {
	r := value.NewBlobReader(data)
	watermark := r.Count()
	hasTaint := r.Bool()
	var ids []graph.VertexID
	if hasTaint {
		n := r.Count()
		for i := 0; i < n && r.Err() == nil; i++ {
			ids = append(ids, graph.VertexID(r.Uvarint()))
		}
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("capture: corrupt checkpoint state: %w", err)
	}
	if hasTaint {
		o.tainted = make(map[graph.VertexID]bool, len(ids))
		for _, v := range ids {
			o.tainted[v] = true
		}
	} else {
		o.tainted = nil
	}
	if o.store.NumLayers() >= watermark {
		return o.store.TruncateLayers(watermark)
	}
	if o.store.NumLayers() == 0 && watermark > 0 {
		if err := o.store.Reattach(watermark); err != nil {
			return fmt.Errorf("capture: store behind checkpoint watermark %d and reattach failed (capture recovery needs the crashed run's store or SpillAll files): %w", watermark, err)
		}
		return nil
	}
	return fmt.Errorf("capture: store has %d layers, checkpoint watermark is %d", o.store.NumLayers(), watermark)
}

// FromQuery compiles a PQL *capture query* into a Policy. Each rule's body
// names the provenance stream it draws from and the head schema decides how
// much of it to persist (the paper's customized capturing, §3):
//
//   - a rule over value(...) persists vertex values (Queries 2, 3, 11);
//   - a rule over send_message(...) with a 4-ary head persists full
//     send-message tuples (Query 2); a narrower head persists only the
//     send *flag* (Query 11's prov-send);
//   - a rule over receive_message(...) persists receive-message tuples;
//   - a recursive forward rule with a $source parameter adds
//     forward-lineage tainting (Query 3): only influenced vertices are
//     captured.
func FromQuery(q *analysis.Query, env *analysis.Env) (Policy, error) {
	var p Policy
	recognized := false
	for _, r := range q.Rules {
		// A stream is *persisted* only when its payload variable flows into
		// the rule head; a message predicate used purely as a guard (like
		// Query 3's receive_message, which only drives the lineage taint)
		// is consumed transiently and never stored.
		headVars := map[string]bool{}
		var hv []*pql.Var
		for _, a := range r.Head.Args {
			hv = pql.Vars(a, hv)
		}
		for _, v := range hv {
			headVars[v.Name] = true
		}
		payloadInHead := func(a *pql.Atom, payloadArg int) bool {
			if payloadArg >= len(a.Args) {
				return false
			}
			if v, ok := a.Args[payloadArg].(*pql.Var); ok && !v.Wildcard() {
				return headVars[v.Name]
			}
			return false
		}
		for _, lit := range r.Body {
			pl, ok := lit.(*pql.PredLit)
			if !ok || pl.Negated {
				continue
			}
			switch pl.Atom.Pred {
			case "value":
				if payloadInHead(pl.Atom, 1) { // value(X, D, I): payload D
					p.Values = true
				}
				recognized = true
			case "send_message":
				if payloadInHead(pl.Atom, 2) { // send_message(X, Y, M, I): payload M
					p.Sends = true
				} else {
					// The head records that (or to whom) a message was sent
					// without its value: the send *flag* suffices (Query 11).
					p.SendFlags = true
				}
				recognized = true
			case "receive_message":
				if payloadInHead(pl.Atom, 2) {
					p.Recvs = true
				}
				recognized = true
			}
		}
	}
	if q.Recursive && q.Class == analysis.Forward {
		src, ok := env.Params["source"]
		if !ok {
			return Policy{}, fmt.Errorf("capture: forward-lineage capture query needs a $source parameter")
		}
		if src.Kind() != value.Int {
			return Policy{}, fmt.Errorf("capture: $source must be a vertex id, got %s", src.Kind())
		}
		v := graph.VertexID(src.Int())
		p.TaintSource = &v
	}
	if !recognized {
		return Policy{}, fmt.Errorf("capture: query does not look like a capture query (no rule draws from a provenance stream)")
	}
	return p, nil
}
