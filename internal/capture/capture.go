// Package capture turns the engine's transient provenance stream into a
// persisted provenance.Store according to a Policy — the paper's
// *customized capturing* (§3, §6.1). A Policy is either built directly or
// compiled from a declarative PQL capture query (Queries 2, 3, 11) via
// FromQuery.
package capture

import (
	"fmt"
	"sort"

	"ariadne/internal/engine"
	"ariadne/internal/fault"
	"ariadne/internal/graph"
	"ariadne/internal/obs"
	"ariadne/internal/pql"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/provenance"
	"ariadne/internal/supervise"
	"ariadne/internal/value"
)

// Policy declares what goes into the captured provenance graph.
type Policy struct {
	// Values captures vertex-value tuples (value(x,d,i)).
	Values bool
	// Sends captures send-message edges with message values.
	Sends bool
	// Recvs captures receive-message edges with message values.
	Recvs bool
	// SendFlags captures only the fact that a vertex sent something
	// (prov_send(x,i), paper Query 11) without per-edge tuples.
	SendFlags bool
	// Emitted lists analytics-emitted tables to persist (e.g. prov_error);
	// nil persists none, ["*"] persists all.
	Emitted []string
	// TaintSource, when non-nil, restricts capture to the forward lineage
	// of the given vertex (paper Query 3): a vertex is captured only once
	// it is influenced — it is the source, or it received a message from an
	// already-tainted vertex.
	TaintSource *graph.VertexID
}

// FullPolicy captures the complete provenance graph (paper Query 2).
func FullPolicy() Policy {
	return Policy{Values: true, Sends: true, Recvs: true, Emitted: []string{"*"}}
}

// ForwardLineagePolicy captures the custom provenance sufficient for
// forward tracing from source (paper Query 3, Table 4): only the *values*
// of influenced vertices are persisted. The receive-message stream is
// consumed transiently to propagate the taint but never stored — that is
// what keeps the custom provenance below the input graph size in Table 4.
func ForwardLineagePolicy(source graph.VertexID) Policy {
	src := source
	return Policy{Values: true, TaintSource: &src}
}

// BackwardCustomPolicy captures the reduced provenance of paper Query 11:
// vertex values and send *flags*, relying on the static input edges instead
// of send-message edges (Query 12 then traces on prov_send + edge).
func BackwardCustomPolicy() Policy {
	return Policy{Values: true, SendFlags: true}
}

// NeedsRaw reports whether the policy requires per-message delivery.
func (p Policy) NeedsRaw() bool { return p.Recvs }

// Observer captures provenance layers into a Store while the analytic runs.
type Observer struct {
	policy Policy
	store  *provenance.Store

	emitAll bool
	emitSet map[string]bool
	tainted map[graph.VertexID]bool
	metrics *obs.Metrics

	// Degraded-mode capture (partition supervision): inj guards each
	// partition's capture at fault.SiteCapture; deg tracks which
	// partitions have been shed after repeated failures. With deg nil a
	// capture failure aborts the run (the pre-supervision behavior).
	inj *fault.Injector
	deg *supervise.DegradeState
}

// NewObserver creates a capture observer writing into store.
func NewObserver(policy Policy, store *provenance.Store) *Observer {
	o := &Observer{policy: policy, store: store}
	o.emitSet = map[string]bool{}
	for _, t := range policy.Emitted {
		if t == "*" {
			o.emitAll = true
			continue
		}
		o.emitSet[t] = true
	}
	if policy.TaintSource != nil {
		o.tainted = map[graph.VertexID]bool{*policy.TaintSource: true}
	}
	return o
}

// Store returns the store being written.
func (o *Observer) Store() *provenance.Store { return o.store }

// SetMetrics attaches a metrics registry: each superstep's appended tuples
// are counted per table (the paper's capture-cost curves, §6.1, Tables
// 3-4). nil (the default) disables instrumentation.
func (o *Observer) SetMetrics(m *obs.Metrics) { o.metrics = m }

// SetDegradation arms graceful degradation: inj is consulted per partition
// at fault.SiteCapture each superstep, and after repeated failures deg
// sheds the partition's capture — the analytic continues bit-identically
// (Theorem 5.4 non-interference) while the shed range is recorded as a
// capture gap. deg nil keeps failures fatal; inj may be nil (degradation
// then only triggers on real store failures such as spill errors or an
// exhausted memory budget).
func (o *Observer) SetDegradation(deg *supervise.DegradeState, inj *fault.Injector) {
	o.deg = deg
	o.inj = inj
}

// Degraded returns the degradation state (nil unless armed).
func (o *Observer) Degraded() *supervise.DegradeState { return o.deg }

// NeedsRawMessages implements engine.Observer.
func (o *Observer) NeedsRawMessages() bool {
	return o.policy.NeedsRaw() || o.policy.TaintSource != nil
}

// ObserveSuperstep implements engine.Observer: converts the superstep's
// records into a compact provenance layer. When degradation is armed,
// each partition's capture is health-checked first: records of failing or
// already-shed partitions are dropped from the layer and recorded as
// capture gaps, and whole-layer store failures (spill errors, exhausted
// memory budget) degrade to an empty placeholder layer instead of
// aborting the run.
func (o *Observer) ObserveSuperstep(v *engine.SuperstepView) error {
	skip, err := o.partitionHealth(v)
	if err != nil {
		return err
	}
	l := &provenance.Layer{Superstep: v.Superstep}
	newTaints := []graph.VertexID{}
	var nValues, nSends, nFlags, nRecvs int64
	var nEmitted map[string]int64
	for i := range v.Records {
		rec := &v.Records[i]
		if skip != nil && skip[v.Engine.PartitionOf(rec.ID)] {
			continue
		}
		if o.tainted != nil {
			if !o.taintedNow(rec, &newTaints) {
				continue
			}
		}
		pr := provenance.Record{
			Vertex:     rec.ID,
			PrevActive: int32(rec.PrevActive),
		}
		if o.policy.Values {
			pr.HasValue = true
			pr.Value = rec.NewValue
			nValues++
		}
		if o.policy.Sends {
			pr.Sends = make([]provenance.MsgHalf, len(rec.Sent))
			for j, m := range rec.Sent {
				pr.Sends[j] = provenance.MsgHalf{Peer: m.Dst, Val: m.Val}
			}
			nSends += int64(len(rec.Sent))
		}
		if o.policy.SendFlags {
			pr.SentAny = len(rec.Sent) > 0
			if pr.SentAny {
				nFlags++
			}
		}
		if o.policy.Recvs {
			pr.Recvs = make([]provenance.MsgHalf, len(rec.Received))
			for j, m := range rec.Received {
				pr.Recvs[j] = provenance.MsgHalf{Peer: m.Src, Val: m.Val}
			}
			nRecvs += int64(len(rec.Received))
		}
		if o.emitAll || len(o.emitSet) > 0 {
			for _, f := range rec.Emitted {
				if o.emitAll || o.emitSet[f.Table] {
					pr.Emitted = append(pr.Emitted, provenance.Fact{
						Table: f.Table,
						Args:  append([]value.Value(nil), f.Args...),
					})
					if o.metrics != nil {
						if nEmitted == nil {
							nEmitted = map[string]int64{}
						}
						nEmitted[f.Table]++
					}
				}
			}
		}
		l.Records = append(l.Records, pr)
	}
	if o.metrics != nil {
		o.metrics.AddCaptureTuples("value", nValues)
		o.metrics.AddCaptureTuples("send_message", nSends)
		o.metrics.AddCaptureTuples("prov_send", nFlags)
		o.metrics.AddCaptureTuples("receive_message", nRecvs)
		for t, n := range nEmitted {
			o.metrics.AddCaptureTuples(t, n)
		}
	}
	// Taints become visible after the full layer is processed so that
	// same-superstep message order cannot matter (BSP semantics: messages
	// received this superstep were sent last superstep).
	for _, t := range newTaints {
		o.tainted[t] = true
	}
	if err := o.store.AppendLayer(l); err != nil {
		return o.degradeLayer(v.Superstep, err)
	}
	return nil
}

// partitionHealth runs the per-partition capture health check and returns
// the set of partitions whose records must be dropped this superstep (nil
// when nothing is dropped). Already-shed partitions extend their gap; a
// fresh fault-site failure records a gap, counts toward the partition's
// consecutive-failure threshold, and — without degradation armed — aborts
// the run.
func (o *Observer) partitionHealth(v *engine.SuperstepView) (map[int]bool, error) {
	if o.inj == nil && o.deg == nil {
		return nil, nil
	}
	ss := v.Superstep
	seen := map[int]bool{}
	for i := range v.Records {
		seen[v.Engine.PartitionOf(v.Records[i].ID)] = true
	}
	parts := make([]int, 0, len(seen))
	for p := range seen {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	var skip map[int]bool
	drop := func(p int) {
		if skip == nil {
			skip = map[int]bool{}
		}
		skip[p] = true
		o.store.AddGap(ss, p, "capture shed")
		o.metrics.Counter(obs.MetricCaptureGaps).Add(1)
	}
	if o.deg.Shed(-1) {
		skip = make(map[int]bool, len(parts))
		for _, p := range parts {
			skip[p] = true
		}
		o.store.AddGap(ss, -1, "capture shed")
		o.metrics.Counter(obs.MetricCaptureGaps).Add(1)
		return skip, nil
	}
	for _, p := range parts {
		if o.deg.Shed(p) {
			drop(p)
			continue
		}
		err := o.inj.Hit(fault.SiteCapture, ss, p, -1)
		if err == nil {
			o.deg.NoteSuccess(p)
			continue
		}
		if o.deg == nil {
			return nil, fmt.Errorf("capture: partition %d capture failed at superstep %d: %w", p, ss, err)
		}
		drop(p)
		o.metrics.Tracef(obs.Warn, "capture", ss, "partition %d capture failed: %v", p, err)
		if o.deg.NoteFailure(p, ss) {
			o.metrics.Tracef(obs.Warn, "capture", ss,
				"partition %d capture shed after repeated failures (degraded mode)", p)
		}
	}
	if o.deg != nil {
		o.metrics.Gauge(obs.MetricCaptureShed).Set(int64(len(o.deg.ShedPartitions())))
	}
	return skip, nil
}

// degradeLayer handles a whole-layer store failure (spill error after its
// retries, exhausted memory budget): with degradation armed the partial
// layer is dropped, an empty placeholder keeps superstep indexing intact,
// and the failure counts toward shedding capture globally. Without
// degradation the error propagates and aborts the run, as before.
func (o *Observer) degradeLayer(ss int, err error) error {
	if o.deg == nil {
		return err
	}
	if o.store.NumLayers() == ss+1 {
		if terr := o.store.TruncateLayers(ss); terr != nil {
			return err
		}
	}
	if o.store.NumLayers() != ss {
		return err
	}
	if gerr := o.store.AppendGapLayer(ss, "layer append failed: "+err.Error()); gerr != nil {
		return gerr
	}
	o.metrics.Counter(obs.MetricCaptureGaps).Add(1)
	o.metrics.Tracef(obs.Warn, "capture", ss, "layer shed after store failure (degraded mode): %v", err)
	if o.deg.NoteFailure(-1, ss) {
		o.metrics.Tracef(obs.Warn, "capture", ss, "capture shed globally after repeated store failures")
	}
	o.metrics.Gauge(obs.MetricCaptureShed).Set(int64(len(o.deg.ShedPartitions())))
	return nil
}

// taintedNow decides whether rec belongs to the forward lineage: it is
// already tainted, or it received a message from a tainted sender this
// superstep (the sender was tainted when it sent, i.e. before this layer).
func (o *Observer) taintedNow(rec *engine.VertexRecord, newTaints *[]graph.VertexID) bool {
	if o.tainted[rec.ID] {
		return true
	}
	for _, m := range rec.Received {
		if o.tainted[m.Src] {
			*newTaints = append(*newTaints, rec.ID)
			return true
		}
	}
	return false
}

// Finish implements engine.Observer: the run is over, so drain the async
// spill pipeline. A write that exhausted its retries surfaces here (the
// last chance to report it in-band); the failed layer is resident again,
// so in-process querying still sees complete provenance.
func (o *Observer) Finish(int) error {
	if err := o.store.Sync(); err != nil {
		return fmt.Errorf("capture: draining spill pipeline at finish: %w", err)
	}
	return nil
}

// MarshalCheckpoint implements engine.Checkpointable: the observer's
// recoverable state is its provenance-store watermark (how many layers have
// been durably appended) plus the forward-lineage taint set, and — since
// checkpoint v3 — the capture-gap records and degradation state of a
// degraded run, so a resumed run stays degraded instead of re-attempting
// capture it already shed. The layers themselves are not duplicated into
// the checkpoint — they either remain in the same process's store
// (in-process recovery) or on disk under SpillAll (cross-process recovery
// via Store.Reattach).
func (o *Observer) MarshalCheckpoint() ([]byte, error) {
	// Quiesce the async spill pipeline first: the watermark below promises
	// that this many layers are durable, so every queued layer write must
	// have landed (and succeeded) before we count them.
	if err := o.store.Sync(); err != nil {
		return nil, fmt.Errorf("capture: syncing spill pipeline before checkpoint: %w", err)
	}
	w := value.NewBlob()
	w.Uvarint(uint64(o.store.NumLayers()))
	w.Bool(o.tainted != nil)
	if o.tainted != nil {
		ids := make([]graph.VertexID, 0, len(o.tainted))
		for v := range o.tainted {
			ids = append(ids, v)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		w.Uvarint(uint64(len(ids)))
		for _, v := range ids {
			w.Uvarint(uint64(v))
		}
	}
	gaps := o.store.Gaps()
	w.Uvarint(uint64(len(gaps)))
	for _, g := range gaps {
		w.Int(int64(g.Partition))
		w.Int(int64(g.From))
		w.Int(int64(g.To))
		w.String(g.Reason)
	}
	w.Bool(o.deg != nil)
	if o.deg != nil {
		shed, consec := o.deg.Snapshot()
		encodeIntMap(w, shed)
		encodeIntMap(w, consec)
	}
	return w.Bytes(), nil
}

func encodeIntMap(w *value.Blob, m map[int]int) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.Int(int64(k))
		w.Int(int64(m[k]))
	}
}

func decodeIntMap(r *value.BlobReader) map[int]int {
	n := r.Count()
	m := make(map[int]int, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := int(r.Int())
		m[k] = int(r.Int())
	}
	return m
}

// UnmarshalCheckpoint implements engine.Checkpointable: it resets the taint
// set and aligns the store with the saved watermark — layers a crashed run
// appended past the checkpoint are discarded so the resumed run re-appends
// them, and an empty store recovering from a spilled run reattaches its
// on-disk layers.
func (o *Observer) UnmarshalCheckpoint(data []byte) error {
	r := value.NewBlobReader(data)
	watermark := r.Count()
	hasTaint := r.Bool()
	var ids []graph.VertexID
	if hasTaint {
		n := r.Count()
		for i := 0; i < n && r.Err() == nil; i++ {
			ids = append(ids, graph.VertexID(r.Uvarint()))
		}
	}
	nGaps := r.Count()
	gaps := make([]provenance.CaptureGap, 0, nGaps)
	for i := 0; i < nGaps && r.Err() == nil; i++ {
		gaps = append(gaps, provenance.CaptureGap{
			Partition: int(r.Int()),
			From:      int(r.Int()),
			To:        int(r.Int()),
			Reason:    r.String(),
		})
	}
	var shed, consec map[int]int
	if r.Bool() {
		shed = decodeIntMap(r)
		consec = decodeIntMap(r)
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("capture: corrupt checkpoint state: %w", err)
	}
	// Gaps restore before the watermark truncation below so ranges past
	// the resume point are trimmed along with their layers; degradation
	// state is only restored when this run armed it.
	o.store.RestoreGaps(gaps)
	o.deg.Restore(shed, consec)
	if hasTaint {
		o.tainted = make(map[graph.VertexID]bool, len(ids))
		for _, v := range ids {
			o.tainted[v] = true
		}
	} else {
		o.tainted = nil
	}
	if o.store.NumLayers() >= watermark {
		return o.store.TruncateLayers(watermark)
	}
	if o.store.NumLayers() == 0 && watermark > 0 {
		if err := o.store.Reattach(watermark); err != nil {
			return fmt.Errorf("capture: store behind checkpoint watermark %d and reattach failed (capture recovery needs the crashed run's store or SpillAll files): %w", watermark, err)
		}
		return nil
	}
	return fmt.Errorf("capture: store has %d layers, checkpoint watermark is %d", o.store.NumLayers(), watermark)
}

// FromQuery compiles a PQL *capture query* into a Policy. Each rule's body
// names the provenance stream it draws from and the head schema decides how
// much of it to persist (the paper's customized capturing, §3):
//
//   - a rule over value(...) persists vertex values (Queries 2, 3, 11);
//   - a rule over send_message(...) with a 4-ary head persists full
//     send-message tuples (Query 2); a narrower head persists only the
//     send *flag* (Query 11's prov-send);
//   - a rule over receive_message(...) persists receive-message tuples;
//   - a recursive forward rule with a $source parameter adds
//     forward-lineage tainting (Query 3): only influenced vertices are
//     captured.
func FromQuery(q *analysis.Query, env *analysis.Env) (Policy, error) {
	var p Policy
	recognized := false
	for _, r := range q.Rules {
		// A stream is *persisted* only when its payload variable flows into
		// the rule head; a message predicate used purely as a guard (like
		// Query 3's receive_message, which only drives the lineage taint)
		// is consumed transiently and never stored.
		headVars := map[string]bool{}
		var hv []*pql.Var
		for _, a := range r.Head.Args {
			hv = pql.Vars(a, hv)
		}
		for _, v := range hv {
			headVars[v.Name] = true
		}
		payloadInHead := func(a *pql.Atom, payloadArg int) bool {
			if payloadArg >= len(a.Args) {
				return false
			}
			if v, ok := a.Args[payloadArg].(*pql.Var); ok && !v.Wildcard() {
				return headVars[v.Name]
			}
			return false
		}
		for _, lit := range r.Body {
			pl, ok := lit.(*pql.PredLit)
			if !ok || pl.Negated {
				continue
			}
			switch pl.Atom.Pred {
			case "value":
				if payloadInHead(pl.Atom, 1) { // value(X, D, I): payload D
					p.Values = true
				}
				recognized = true
			case "send_message":
				if payloadInHead(pl.Atom, 2) { // send_message(X, Y, M, I): payload M
					p.Sends = true
				} else {
					// The head records that (or to whom) a message was sent
					// without its value: the send *flag* suffices (Query 11).
					p.SendFlags = true
				}
				recognized = true
			case "receive_message":
				if payloadInHead(pl.Atom, 2) {
					p.Recvs = true
				}
				recognized = true
			}
		}
	}
	if q.Recursive && q.Class == analysis.Forward {
		src, ok := env.Params["source"]
		if !ok {
			return Policy{}, fmt.Errorf("capture: forward-lineage capture query needs a $source parameter")
		}
		if src.Kind() != value.Int {
			return Policy{}, fmt.Errorf("capture: $source must be a vertex id, got %s", src.Kind())
		}
		v := graph.VertexID(src.Int())
		p.TaintSource = &v
	}
	if !recognized {
		return Policy{}, fmt.Errorf("capture: query does not look like a capture query (no rule draws from a provenance stream)")
	}
	return p, nil
}
