package capture

import (
	"strings"
	"testing"

	"ariadne/internal/engine"
	"ariadne/internal/graph"
	"ariadne/internal/pql"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/provenance"
	"ariadne/internal/value"
)

func view(ss int, recs ...engine.VertexRecord) *engine.SuperstepView {
	return &engine.SuperstepView{Superstep: ss, Records: recs}
}

func rec(id graph.VertexID, prev int, val float64, sent []engine.SentMessage, recv []engine.IncomingMessage) engine.VertexRecord {
	return engine.VertexRecord{
		ID: id, PrevActive: prev,
		NewValue: value.NewFloat(val),
		Sent:     sent, Received: recv,
	}
}

func TestFullPolicyCapturesEverything(t *testing.T) {
	store := provenance.NewStore(provenance.StoreConfig{})
	o := NewObserver(FullPolicy(), store)
	if !o.NeedsRawMessages() {
		t.Error("full policy needs raw messages")
	}
	sent := []engine.SentMessage{{Dst: 2, Val: value.NewFloat(1)}}
	recv := []engine.IncomingMessage{{Src: 3, Val: value.NewFloat(2)}}
	r := rec(1, -1, 0.5, sent, recv)
	r.Emitted = []engine.ProvFact{{Table: "prov_error", Args: []value.Value{value.NewInt(3)}}}
	if err := o.ObserveSuperstep(view(0, r)); err != nil {
		t.Fatal(err)
	}
	l, err := store.Layer(0)
	if err != nil {
		t.Fatal(err)
	}
	got := l.Records[0]
	if !got.HasValue || got.Value.Float() != 0.5 {
		t.Errorf("value not captured: %+v", got)
	}
	if len(got.Sends) != 1 || got.Sends[0].Peer != 2 {
		t.Errorf("sends not captured: %+v", got.Sends)
	}
	if len(got.Recvs) != 1 || got.Recvs[0].Peer != 3 {
		t.Errorf("recvs not captured: %+v", got.Recvs)
	}
	if len(got.Emitted) != 1 || got.Emitted[0].Table != "prov_error" {
		t.Errorf("emitted facts not captured: %+v", got.Emitted)
	}
}

func TestBackwardCustomPolicyDropsMessageValues(t *testing.T) {
	store := provenance.NewStore(provenance.StoreConfig{})
	o := NewObserver(BackwardCustomPolicy(), store)
	if o.NeedsRawMessages() {
		t.Error("send-flag capture should not force raw delivery")
	}
	sent := []engine.SentMessage{{Dst: 2, Val: value.NewFloat(1)}}
	if err := o.ObserveSuperstep(view(0, rec(1, -1, 0.5, sent, nil))); err != nil {
		t.Fatal(err)
	}
	l, _ := store.Layer(0)
	got := l.Records[0]
	if len(got.Sends) != 0 {
		t.Error("send tuples must not be captured")
	}
	if !got.SentAny {
		t.Error("send flag must be captured")
	}
	if !got.HasValue {
		t.Error("values must be captured")
	}
}

func TestTaintPropagation(t *testing.T) {
	store := provenance.NewStore(provenance.StoreConfig{})
	o := NewObserver(ForwardLineagePolicy(0), store)

	// ss0: all three vertices compute; only source 0 is tainted.
	if err := o.ObserveSuperstep(view(0,
		rec(0, -1, 1, []engine.SentMessage{{Dst: 1, Val: value.NewFloat(1)}}, nil),
		rec(1, -1, 1, nil, nil),
		rec(2, -1, 1, nil, nil),
	)); err != nil {
		t.Fatal(err)
	}
	l0, _ := store.Layer(0)
	if len(l0.Records) != 1 || l0.Records[0].Vertex != 0 {
		t.Fatalf("layer 0 should contain only the source: %+v", l0.Records)
	}

	// ss1: vertex 1 receives from 0 (tainted), vertex 2 from 1 (1 was NOT
	// tainted when it sent, i.e. before this layer).
	if err := o.ObserveSuperstep(view(1,
		rec(1, 0, 2, nil, []engine.IncomingMessage{{Src: 0, Val: value.NewFloat(1)}}),
		rec(2, 0, 2, nil, []engine.IncomingMessage{{Src: 1, Val: value.NewFloat(1)}}),
	)); err != nil {
		t.Fatal(err)
	}
	l1, _ := store.Layer(1)
	if len(l1.Records) != 1 || l1.Records[0].Vertex != 1 {
		t.Fatalf("layer 1 should contain only vertex 1: %+v", l1.Records)
	}

	// ss2: now 1 is tainted, so 2 receiving from 1 joins the lineage.
	if err := o.ObserveSuperstep(view(2,
		rec(2, 0, 3, nil, []engine.IncomingMessage{{Src: 1, Val: value.NewFloat(2)}}),
	)); err != nil {
		t.Fatal(err)
	}
	l2, _ := store.Layer(2)
	if len(l2.Records) != 1 || l2.Records[0].Vertex != 2 {
		t.Fatalf("layer 2 should contain vertex 2: %+v", l2.Records)
	}
	if store.DistinctVertices() != 3 {
		t.Errorf("lineage covers %d vertices, want 3", store.DistinctVertices())
	}
}

func TestEmittedFilter(t *testing.T) {
	store := provenance.NewStore(provenance.StoreConfig{})
	o := NewObserver(Policy{Values: true, Emitted: []string{"keep"}}, store)
	r := rec(1, -1, 1, nil, nil)
	r.Emitted = []engine.ProvFact{
		{Table: "keep", Args: []value.Value{value.NewInt(1)}},
		{Table: "drop", Args: []value.Value{value.NewInt(2)}},
	}
	if err := o.ObserveSuperstep(view(0, r)); err != nil {
		t.Fatal(err)
	}
	l, _ := store.Layer(0)
	if len(l.Records[0].Emitted) != 1 || l.Records[0].Emitted[0].Table != "keep" {
		t.Errorf("emitted filter wrong: %+v", l.Records[0].Emitted)
	}
}

func mustQuery(t *testing.T, src string, env *analysis.Env) *analysis.Query {
	t.Helper()
	prog, err := pql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := analysis.Analyze(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestFromQueryShapes(t *testing.T) {
	env := analysis.NewEnv()

	// Query 2 shape: full capture.
	q2 := mustQuery(t, `
p_v(X, V, I) :- value(X, V, I), superstep(X, I).
p_s(X, Y, M, I) :- send_message(X, Y, M, I), superstep(X, I).
p_r(X, Y, M, I) :- receive_message(X, Y, M, I), superstep(X, I).`, env)
	pol, err := FromQuery(q2, env)
	if err != nil {
		t.Fatal(err)
	}
	if !pol.Values || !pol.Sends || !pol.Recvs || pol.SendFlags {
		t.Errorf("query 2 policy = %+v", pol)
	}

	// Query 11 shape: values + send flags only.
	q11 := mustQuery(t, `
prov_value(X, V, I) :- value(X, V, I), superstep(X, I).
flag(X, I) :- send_message(X, Y, M, I).`, env)
	pol, err = FromQuery(q11, env)
	if err != nil {
		t.Fatal(err)
	}
	if !pol.Values || pol.Sends || !pol.SendFlags {
		t.Errorf("query 11 policy = %+v", pol)
	}

	// Query 3 shape: recursive forward lineage with $source.
	env3 := analysis.NewEnv()
	env3.SetParam("alpha", value.NewInt(7))
	env3.SetParam("source", value.NewInt(7))
	q3 := mustQuery(t, `
fwd(X, V, I) :- value(X, V, I), superstep(X, I), X = $alpha, I = 0.
fwd(X, V, I) :- receive_message(X, Y, M, I), fwd(Y, W, J), value(X, V, I).`, env3)
	pol, err = FromQuery(q3, env3)
	if err != nil {
		t.Fatal(err)
	}
	if pol.TaintSource == nil || *pol.TaintSource != 7 {
		t.Errorf("query 3 policy missing taint source: %+v", pol)
	}
	// The receive_message literal is only the taint guard (its payload M
	// never reaches the head), so receive tuples are NOT persisted — this
	// is what keeps Table 4's custom provenance small.
	if !pol.Values || pol.Recvs {
		t.Errorf("query 3 policy = %+v", pol)
	}
}

func TestFromQueryErrors(t *testing.T) {
	env := analysis.NewEnv()
	// Not a capture query at all.
	q := mustQuery(t, `p(X, I) :- superstep(X, I).`, env)
	if _, err := FromQuery(q, env); err == nil || !strings.Contains(err.Error(), "capture query") {
		t.Errorf("want capture-shape error, got %v", err)
	}
	// Recursive forward rule without $source.
	env2 := analysis.NewEnv()
	env2.SetParam("alpha", value.NewInt(7))
	q3 := mustQuery(t, `
fwd(X, V, I) :- value(X, V, I), X = $alpha, I = 0.
fwd(X, V, I) :- receive_message(X, Y, M, I), fwd(Y, W, J), value(X, V, I).`, env2)
	if _, err := FromQuery(q3, env2); err == nil || !strings.Contains(err.Error(), "$source") {
		t.Errorf("want $source error, got %v", err)
	}
}
