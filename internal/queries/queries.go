// Package queries provides the paper's PQL queries (Queries 1-12, §4-§6)
// as parameterized, pre-analyzed definitions. Each constructor returns the
// PQL source and a matching environment; Build analyzes and classifies.
//
// Notational deviations from the paper, all documented in DESIGN.md:
//   - ASCII identifiers: udf-diff -> udf_diff, receive-msg ->
//     receive_message, ε -> $eps, α -> $alpha, σ -> $sigma.
//   - Query 4's "in-degree = 0" test uses negation (!has_in) instead of
//     joining an aggregate against a zero count, which set-semantics
//     aggregation cannot produce.
//   - Query 5 adds the negative-message rule, making the corrupted-input
//     scenario (§6.2.1) detectable under capture-on-change-free semantics.
//   - Query 12 uses the captured `value` tuples directly (our store's
//     prov-value) along with prov_send and the static edge relation.
package queries

import (
	"fmt"

	"ariadne/internal/graph"
	"ariadne/internal/pql"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/value"
)

// Definition pairs PQL source with its environment.
type Definition struct {
	// Name identifies the query (e.g. "apt", "q4-pagerank-check").
	Name string
	// Paper cites the paper query number.
	Paper string
	// Source is the PQL text.
	Source string
	// Env carries parameters, UDFs, and extra EDB declarations.
	Env *analysis.Env
	// ResultPreds are the IDB predicates that constitute the answer.
	ResultPreds []string
}

// Build parses, analyzes, and classifies the definition.
func (d Definition) Build() (*analysis.Query, error) {
	prog, err := pql.Parse(d.Source)
	if err != nil {
		return nil, fmt.Errorf("queries: %s: %w", d.Name, err)
	}
	q, err := analysis.Analyze(prog, d.Env)
	if err != nil {
		return nil, fmt.Errorf("queries: %s: %w", d.Name, err)
	}
	return q, nil
}

// MustBuild is Build that panics; the definitions below are statically
// known-good and covered by tests.
func (d Definition) MustBuild() *analysis.Query {
	q, err := d.Build()
	if err != nil {
		panic(err)
	}
	return q
}

// DiffFunc selects the vertex-value comparison for the apt query.
type DiffFunc func(a, b value.Value) (float64, error)

// Apt is the motivating approximate-optimization query (paper Query 1):
// which vertices could safely skip execution under threshold eps.
func Apt(eps float64, diff DiffFunc) Definition {
	env := analysis.NewEnv()
	env.SetParam("eps", value.NewFloat(eps))
	if diff != nil {
		env.SetDiffUDF(diff)
	}
	return Definition{
		Name:  "apt",
		Paper: "Query 1",
		Source: `
change(X, I) :- value(X, D1, I), value(X, D2, J),
                evolution(X, J, I), udf_diff(D1, D2, $eps).
neighbor_change(X, I) :- receive_message(X, Y, M, I),
                         !change(Y, J), J = I - 1.
% I > 0: a vertex with no history cannot be a skip candidate (at superstep
% 0 every vertex must run to initialize, so no-execute is meaningless there).
no_execute(X, I) :- !neighbor_change(X, I), superstep(X, I), I > 0.
safe(X, I) :- no_execute(X, I), change(X, I).
unsafe(X, I) :- no_execute(X, I), !change(X, I).
`,
		Env:         env,
		ResultPreds: []string{"safe", "unsafe", "no_execute"},
	}
}

// CaptureFull is the full-provenance capture query (paper Query 2). Its
// body references the value and message EDBs, which capture.FromQuery
// compiles into the full capture policy.
func CaptureFull() Definition {
	return Definition{
		Name:  "capture-full",
		Paper: "Query 2",
		Source: `
prov_value(X, V, I) :- value(X, V, I), superstep(X, I).
prov_sent(X, Y, M, I) :- send_message(X, Y, M, I), superstep(X, I).
prov_received(X, Y, M, I) :- receive_message(X, Y, M, I), superstep(X, I).
`,
		Env:         analysis.NewEnv(),
		ResultPreds: []string{"prov_value", "prov_sent", "prov_received"},
	}
}

// CaptureForwardLineage is the custom capture for forward tracing from
// source (paper Query 3): capture a vertex once it is influenced by source.
// The J < I guard (absent in the paper's listing) pins the recursion to
// causal influence: without it, pure-Datalog evaluation over the full
// provenance would also count retroactive influence (a sender that becomes
// influenced only at a later superstep), which online/layered evaluation
// can never observe.
func CaptureForwardLineage(source graph.VertexID) Definition {
	env := analysis.NewEnv()
	env.SetParam("alpha", value.NewInt(int64(source)))
	env.SetParam("source", value.NewInt(int64(source)))
	return Definition{
		Name:  "capture-fwd-lineage",
		Paper: "Query 3",
		Source: `
fwd_lineage(X, V, I) :- value(X, V, I), superstep(X, I), X = $alpha, I = 0.
fwd_lineage(X, V, I) :- receive_message(X, Y, M, I), fwd_lineage(Y, W, J),
                        J < I, value(X, V, I).
`,
		Env:         env,
		ResultPreds: []string{"fwd_lineage"},
	}
}

// PageRankCheck is the execution-monitoring query for PageRank (paper
// Query 4): flag messages arriving at vertices with no incoming edges.
func PageRankCheck() Definition {
	return Definition{
		Name:  "q4-pagerank-check",
		Paper: "Query 4",
		Source: `
has_in(X) :- edge(Y, X).
check_failed(X, Y, I) :- receive_message(X, Y, M, I), !has_in(X).
`,
		Env:         analysis.NewEnv(),
		ResultPreds: []string{"check_failed"},
	}
}

// MonotoneCheck is the SSSP/WCC monitoring query (paper Query 5): a vertex
// that received messages must not have *increased* its value, and messages
// must be non-negative (corrupted input detection, §6.2.1).
func MonotoneCheck() Definition {
	return Definition{
		Name:  "q5-monotone-check",
		Paper: "Query 5",
		Source: `
check_failed(X, I) :- value(X, D1, I), value(X, D2, J), evolution(X, J, I),
                      receive_message(X, Y, M, I), D1 > D2.
check_failed(X, I) :- receive_message(X, Y, M, I), M < 0.
`,
		Env:         analysis.NewEnv(),
		ResultPreds: []string{"check_failed"},
	}
}

// SilentChange is the SSSP/WCC monitoring query (paper Query 6): a vertex
// that received no messages must not change its value.
func SilentChange() Definition {
	return Definition{
		Name:  "q6-silent-change",
		Paper: "Query 6",
		Source: `
neighbor_change(X, I) :- receive_message(X, Y, M, I).
problem(X, I) :- value(X, D1, I), value(X, D2, J), evolution(X, J, I),
                 !neighbor_change(X, I), D1 != D2.
`,
		Env:         analysis.NewEnv(),
		ResultPreds: []string{"problem"},
	}
}

// ALSRangeCheck is the ALS monitoring query (paper Query 7): local errors
// and predictions must stay within the rating range [0, 5]; out-of-range
// ratings blame the input, out-of-range predictions blame the algorithm.
func ALSRangeCheck() Definition {
	env := analysis.NewEnv()
	env.DeclareEDB("prov_error", 4)
	env.DeclareEDB("prov_prediction", 4)
	return Definition{
		Name:  "q7-als-range",
		Paper: "Query 7",
		Source: `
% Edge values (ratings) are static in this engine, so edge_value tuples
% carry superstep 0 and the join leaves that position unconstrained.
input_failed(X, Y, I) :- prov_error(X, Y, E, I), edge_value(X, Y, W, _), W < 0.
input_failed(X, Y, I) :- prov_error(X, Y, E, I), edge_value(X, Y, W, _), W > 5.
algo_failed(X, Y, I) :- prov_error(X, Y, E, I), prov_prediction(X, Y, P, I), P < 0.
algo_failed(X, Y, I) :- prov_error(X, Y, E, I), prov_prediction(X, Y, P, I), P > 5.
`,
		Env:         env,
		ResultPreds: []string{"input_failed", "algo_failed"},
	}
}

// ALSErrorIncrease is the ALS monitoring query (paper Query 8): vertices
// whose average prediction error grows by more than eps between consecutive
// active supersteps.
func ALSErrorIncrease(eps float64) Definition {
	env := analysis.NewEnv()
	env.SetParam("eps", value.NewFloat(eps))
	env.DeclareEDB("prov_error", 4)
	return Definition{
		Name:  "q8-als-error-increase",
		Paper: "Query 8",
		Source: `
degree(X, COUNT(Y)) :- receive_message(X, Y, M, I).
sum_error(X, I, SUM(E)) :- prov_error(X, Y, E, I).
avg_error(X, I, S / D) :- sum_error(X, I, S), degree(X, D).
problem(X, E1, E2, I) :- avg_error(X, I, E1), avg_error(X, J, E2),
                         evolution(X, J, I), E1 > E2 + $eps.
`,
		Env:         env,
		ResultPreds: []string{"problem"},
	}
}

// BackwardTrace is the backward lineage query over full provenance (paper
// Query 10): from vertex alpha at superstep sigma, walk send-message edges
// back to superstep 0.
func BackwardTrace(alpha graph.VertexID, sigma int) Definition {
	env := analysis.NewEnv()
	env.SetParam("alpha", value.NewInt(int64(alpha)))
	env.SetParam("sigma", value.NewInt(int64(sigma)))
	return Definition{
		Name:  "q10-backward-trace",
		Paper: "Query 10",
		Source: `
back_trace(X, I) :- superstep(X, I), I = $sigma, X = $alpha.
back_trace(X, I) :- send_message(X, Y, M, I), back_trace(Y, J), J = I + 1.
back_lineage(X, D) :- back_trace(X, I), value(X, D, I), I = 0.
`,
		Env:         env,
		ResultPreds: []string{"back_lineage", "back_trace"},
	}
}

// CaptureBackwardCustom is the reduced capture for backward tracing (paper
// Query 11): vertex values, send flags, and static edges — no message
// values, no send-message edges.
func CaptureBackwardCustom() Definition {
	return Definition{
		Name:  "capture-backward-custom",
		Paper: "Query 11",
		Source: `
prov_value(X, V, I) :- value(X, V, I), superstep(X, I).
prov_send_flag(X, I) :- send_message(X, Y, M, I).
`,
		Env:         analysis.NewEnv(),
		ResultPreds: []string{"prov_value", "prov_send_flag"},
	}
}

// NetGap is the telemetry self-query (PR 7): the run explains itself by
// joining its own network profile with its capture metadata. A partition
// whose exchange RPCs needed retries (net_rpc, R > 0) that also had its
// provenance capture shed (capture_gap) is flagged in net_gap — "this
// partition's provenance is missing *because* the network to it was bad",
// answered in PQL over the same store as any provenance query. The profiled
// guard keeps only supersteps the run actually profiled (superstep_profile).
func NetGap() Definition {
	return Definition{
		Name:  "net-gap",
		Paper: "telemetry-as-EDB",
		Source: `
exchange_retry(P, S) :- net_rpc(S, P, _, R, _), R > 0.
profiled(S) :- superstep_profile(S, _, _, _, _).
net_gap(P, S) :- exchange_retry(P, S), capture_gap(P, F, T), profiled(S).
`,
		Env:         analysis.NewEnv(),
		ResultPreds: []string{"net_gap", "exchange_retry"},
	}
}

// BackwardTraceCustom is the backward lineage query over the custom
// provenance of Query 11 (paper Query 12): trace along static edges plus
// send flags instead of send-message edges.
func BackwardTraceCustom(alpha graph.VertexID, sigma int) Definition {
	env := analysis.NewEnv()
	env.SetParam("alpha", value.NewInt(int64(alpha)))
	env.SetParam("sigma", value.NewInt(int64(sigma)))
	return Definition{
		Name:  "q12-backward-trace-custom",
		Paper: "Query 12",
		Source: `
back_trace(X, I) :- value(X, D, I), I = $sigma, X = $alpha.
back_trace(X, I) :- edge(X, Y), prov_send(X, I), back_trace(Y, J), J = I + 1.
back_lineage(X, D) :- back_trace(X, I), value(X, D, I), I = 0.
`,
		Env:         env,
		ResultPreds: []string{"back_lineage", "back_trace"},
	}
}
