package queries

import (
	"strings"
	"testing"

	"ariadne/internal/pql/analysis"
	"ariadne/internal/value"
)

func TestAllPaperQueriesBuildAndClassify(t *testing.T) {
	cases := []struct {
		def       Definition
		wantClass analysis.Class
	}{
		{Apt(0.01, nil), analysis.Forward},
		{Apt(0.5, value.EuclideanDist), analysis.Forward},
		{CaptureFull(), analysis.Local},
		{CaptureForwardLineage(3), analysis.Forward},
		{PageRankCheck(), analysis.Local},
		{MonotoneCheck(), analysis.Local},
		{SilentChange(), analysis.Local},
		{ALSRangeCheck(), analysis.Local},
		{ALSErrorIncrease(0.5), analysis.Local},
		{BackwardTrace(5, 9), analysis.Backward},
		{CaptureBackwardCustom(), analysis.Local},
		{BackwardTraceCustom(5, 9), analysis.Backward},
	}
	for _, c := range cases {
		q, err := c.def.Build()
		if err != nil {
			t.Errorf("%s: %v", c.def.Name, err)
			continue
		}
		if q.Class != c.wantClass {
			t.Errorf("%s: class %v, want %v", c.def.Name, q.Class, c.wantClass)
		}
		if !q.VCCompatible {
			t.Errorf("%s must be VC-compatible", c.def.Name)
		}
		if c.def.Paper == "" || len(c.def.ResultPreds) == 0 {
			t.Errorf("%s: missing metadata", c.def.Name)
		}
	}
}

func TestParametersFlowIntoRules(t *testing.T) {
	q := BackwardTrace(42, 7).MustBuild()
	// The substituted constants appear in the analyzed rules.
	text := ""
	for _, r := range q.Rules {
		text += r.String()
	}
	if !strings.Contains(text, "42") || !strings.Contains(text, "7") {
		t.Errorf("parameters not substituted: %s", text)
	}
}

func TestAptUsesProvidedDiff(t *testing.T) {
	called := false
	def := Apt(0.5, func(a, b value.Value) (float64, error) {
		called = true
		return value.AbsDiff(a, b)
	})
	q := def.MustBuild()
	fn := q.Env().Funcs["udf_diff"]
	if _, err := fn.Fn([]value.Value{value.NewFloat(1), value.NewFloat(2), value.NewFloat(0.5)}); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("custom diff not wired into udf_diff")
	}
}

func TestBuildErrorsAreNamed(t *testing.T) {
	def := Definition{Name: "broken", Source: `p(X) :- nosuch(X).`, Env: analysis.NewEnv()}
	_, err := def.Build()
	if err == nil || !strings.Contains(err.Error(), "broken") {
		t.Errorf("build error should name the query: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on broken queries")
		}
	}()
	def.MustBuild()
}

func TestOnlineEligibility(t *testing.T) {
	for _, def := range []Definition{Apt(0.1, nil), PageRankCheck(), MonotoneCheck(), SilentChange(), ALSRangeCheck(), ALSErrorIncrease(0.1)} {
		q := def.MustBuild()
		if !q.Class.OnlineEvaluable() {
			t.Errorf("%s must be online-evaluable (paper runs it online)", def.Name)
		}
	}
	for _, def := range []Definition{BackwardTrace(0, 1), BackwardTraceCustom(0, 1)} {
		q := def.MustBuild()
		if q.Class.OnlineEvaluable() {
			t.Errorf("%s must not be online-evaluable", def.Name)
		}
		if !q.Class.LayeredEvaluable() {
			t.Errorf("%s must be layered-evaluable", def.Name)
		}
	}
}
