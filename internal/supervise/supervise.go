// Package supervise implements partition-level supervision for the BSP
// engine: the simulated worker (one hash partition per superstep) becomes
// the failure domain, instead of the whole run.
//
// A Supervisor wraps each partition's superstep execution in a supervised
// attempt loop with three mechanisms:
//
//   - Deadlines: each attempt runs under a per-partition deadline (fixed,
//     or adaptive as a multiple of the rolling median partition duration),
//     so a hung worker is detected and cancelled instead of stalling the
//     barrier forever.
//   - Bounded retry: transient failures (vertex-program panics, injected
//     I/O faults, deadline expiries) are retried up to MaxRetries times
//     with capped exponential backoff and deterministic jitter. The caller
//     supplies a reset hook that rolls the partition back to its state at
//     the superstep barrier, so recovery is partition-scoped — only the
//     failed partition re-executes; the other workers' results stand.
//   - Straggler detection: at each barrier the supervisor compares every
//     partition's duration against the superstep median and flags those
//     exceeding StragglerMultiple× it (with an absolute floor, so µs-scale
//     noise on a fast superstep is not misread as straggling).
//
// Degraded-mode capture is the fourth mechanism, carried by DegradeState:
// after DegradeCaptureAfter consecutive capture-side failures for a
// partition, provenance capture (and online-query piggybacking) for that
// partition is shed. The analytic result is unaffected — Ariadne's
// Theorem 5.4 non-interference guarantee is exactly what licenses dropping
// the provenance side-channel — and the shed range surfaces as capture-gap
// records queryable from PQL.
//
// Concurrency model: Run executes in the engine's per-partition worker
// goroutines, so everything it touches is either local or atomic.
// EndSuperstep, Deadline's history, and DegradeState use small mutexes;
// nothing in this package calls back into the engine.
package supervise

import (
	"context"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ariadne/internal/obs"
)

// Defaults applied by normalize for zero Config fields.
const (
	defaultStragglerMultiple = 4.0
	defaultMaxRetries        = 2
	defaultBackoff           = time.Millisecond
	maxBackoff               = 50 * time.Millisecond
	// stragglerFloor is the absolute minimum a partition must exceed the
	// median by policy AND in wall time before it is flagged: on a fast
	// superstep the median is microseconds and scheduler noise alone can
	// exceed any multiple of it.
	stragglerFloor = 5 * time.Millisecond
	// minAdaptiveDeadline floors the derived deadline so a fast run does
	// not cancel healthy partitions over scheduler jitter.
	minAdaptiveDeadline = 25 * time.Millisecond
	// historyWindow bounds the rolling duration history (in supersteps)
	// behind the adaptive deadline and straggler medians.
	historyWindow = 8
)

// Config controls partition supervision. The zero value is usable:
// normalize fills in the documented defaults.
type Config struct {
	// Deadline is a fixed per-partition superstep deadline; 0 defers to
	// the adaptive policy (when enabled) or no deadline at all.
	Deadline time.Duration
	// AdaptiveDeadline derives the deadline from StragglerMultiple × the
	// rolling median partition duration once enough history exists. Only
	// consulted when Deadline is 0.
	AdaptiveDeadline bool
	// StragglerMultiple flags a partition as straggling when its duration
	// exceeds this multiple of the superstep median; <=0 means 4.
	StragglerMultiple float64
	// MaxRetries bounds re-executions of a failed partition per superstep;
	// 0 means 2, negative means no retries.
	MaxRetries int
	// Backoff is the base backoff between retries (doubled per attempt,
	// jittered, capped at 50ms); 0 means 1ms.
	Backoff time.Duration
	// DegradeCaptureAfter sheds provenance capture for a partition after
	// this many consecutive capture-side failures; 0 disables degradation
	// (capture failures then abort the run, the pre-supervision behavior).
	DegradeCaptureAfter int
}

func (c Config) normalize() Config {
	if c.StragglerMultiple <= 0 {
		c.StragglerMultiple = defaultStragglerMultiple
	}
	switch {
	case c.MaxRetries == 0:
		c.MaxRetries = defaultMaxRetries
	case c.MaxRetries < 0:
		c.MaxRetries = 0
	}
	if c.Backoff <= 0 {
		c.Backoff = defaultBackoff
	}
	return c
}

// Summary reports one superstep's supervision outcome, flushed into the
// observability profile at the barrier.
type Summary struct {
	// Retries counts partition re-executions this superstep.
	Retries int64
	// DeadlineHits counts attempts cancelled by the partition deadline.
	DeadlineHits int64
	// Stragglers lists the partitions flagged by the multiple-of-median
	// policy, ascending.
	Stragglers []int
}

// Supervisor supervises the partitions of one engine run. Safe for
// concurrent use by the per-partition worker goroutines.
type Supervisor struct {
	cfg    Config
	nParts int
	m      *obs.Metrics

	// Per-superstep tallies, reset by EndSuperstep. Atomic: bumped from
	// worker goroutines, read on the engine goroutine at the barrier.
	ssRetries      atomic.Int64
	ssDeadlineHits atomic.Int64

	mu   sync.Mutex
	hist []time.Duration // rolling window of partition durations

	totalRetries      int64
	totalDeadlineHits int64
	totalStragglers   int64
}

// New creates a Supervisor for nParts partitions. m may be nil.
func New(cfg Config, nParts int, m *obs.Metrics) *Supervisor {
	return &Supervisor{cfg: cfg.normalize(), nParts: nParts, m: m}
}

// Config returns the normalized configuration.
func (s *Supervisor) Config() Config { return s.cfg }

// Deadline returns the per-partition deadline currently in force: the
// fixed configured deadline, else the adaptive multiple-of-median deadline
// once a full superstep of history exists, else 0 (none).
func (s *Supervisor) Deadline() time.Duration {
	if s.cfg.Deadline > 0 {
		return s.cfg.Deadline
	}
	if !s.cfg.AdaptiveDeadline {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.hist) < s.nParts {
		return 0
	}
	d := time.Duration(float64(median(s.hist)) * s.cfg.StragglerMultiple)
	if d < minAdaptiveDeadline {
		d = minAdaptiveDeadline
	}
	return d
}

// Run executes one partition's superstep under supervision. attempt runs
// the partition against a context carrying the current deadline and must
// be synchronous: injected hangs and delays block on the context, so an
// expired attempt returns before the next begins and retries never race an
// abandoned goroutine. reset rolls the partition back to its state at the
// superstep barrier before each re-execution. retryable classifies
// failures; non-retryable errors (and parent-context cancellation) return
// immediately. The returned error is the last attempt's.
func (s *Supervisor) Run(parent context.Context, p, ss int, attempt func(ctx context.Context) error,
	reset func(), retryable func(error) bool) error {
	if parent == nil {
		parent = context.Background()
	}
	for try := 0; ; try++ {
		actx, cancel := parent, func() {}
		if d := s.Deadline(); d > 0 {
			actx, cancel = context.WithTimeout(parent, d)
		}
		err := attempt(actx)
		expired := actx.Err() != nil && parent.Err() == nil
		cancel()
		if err == nil {
			return nil
		}
		if expired {
			s.ssDeadlineHits.Add(1)
			s.m.Tracef(obs.Warn, "supervise", ss,
				"partition %d attempt %d exceeded deadline %v", p, try+1, s.Deadline())
		}
		if parent.Err() != nil || try >= s.cfg.MaxRetries || !retryable(err) {
			if try > 0 || expired {
				s.m.Tracef(obs.Error, "supervise", ss,
					"partition %d failed after %d attempts: %v", p, try+1, err)
			}
			return err
		}
		s.ssRetries.Add(1)
		s.m.Tracef(obs.Warn, "supervise", ss,
			"partition %d attempt %d failed, retrying after backoff: %v", p, try+1, err)
		reset()
		sleepCtx(parent, s.backoff(p, ss, try))
		// A cancelled backoff sleep means the run is shutting down (SIGINT,
		// SIGTERM, parent timeout): return the attempt's error promptly
		// instead of burning another full re-execution the caller no longer
		// wants.
		if parent.Err() != nil {
			return err
		}
	}
}

// backoff returns the jittered, capped exponential backoff before retry
// number try. Jitter is deterministic — hashed from (partition, superstep,
// attempt) — so supervised recovery replays exactly, matching the fault
// injector's determinism contract.
func (s *Supervisor) backoff(p, ss, try int) time.Duration {
	return BackoffDuration(s.cfg.Backoff, maxBackoff, p, ss, try)
}

// BackoffDuration is the supervision backoff policy as a pure function:
// base<<try capped at cap, plus deterministic jitter in [0, d) hashed from
// (p, ss, try). Exported so the transport layer's retransmit/reconnect
// backoff follows the exact same deterministic policy as partition retry.
func BackoffDuration(base, cap time.Duration, p, ss, try int) time.Duration {
	if base <= 0 {
		base = defaultBackoff
	}
	if cap <= 0 {
		cap = maxBackoff
	}
	d := base << uint(try)
	if d > cap || d <= 0 {
		d = cap
	}
	// Jitter in [0, d): full backoff lands in [d, 2d).
	return d + time.Duration(float64(d)*jitterFrac(p, ss, try))
}

// SleepCtx sleeps for d or until ctx is cancelled, whichever comes first.
func SleepCtx(ctx context.Context, d time.Duration) { sleepCtx(ctx, d) }

func jitterFrac(p, ss, try int) float64 {
	h := fnv.New64a()
	var b [24]byte
	put64 := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			b[off+i] = byte(v >> (8 * i))
		}
	}
	put64(0, uint64(int64(p)))
	put64(8, uint64(int64(ss)))
	put64(16, uint64(int64(try)))
	h.Write(b[:])
	return float64(h.Sum64()%1024) / 1024
}

func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// EndSuperstep ingests the superstep's per-partition durations, flags
// stragglers against the multiple-of-median policy, and returns (and
// resets) the superstep's supervision summary. Called on the engine
// goroutine at the barrier, after every worker has returned.
func (s *Supervisor) EndSuperstep(ss int, durs []time.Duration) Summary {
	sum := Summary{
		Retries:      s.ssRetries.Swap(0),
		DeadlineHits: s.ssDeadlineHits.Swap(0),
	}
	med := median(durs)
	threshold := time.Duration(float64(med) * s.cfg.StragglerMultiple)
	if threshold < stragglerFloor {
		threshold = stragglerFloor
	}
	for p, d := range durs {
		if d > threshold {
			sum.Stragglers = append(sum.Stragglers, p)
			s.m.Tracef(obs.Warn, "supervise", ss,
				"partition %d straggling: %v vs superstep median %v", p, d, med)
		}
	}
	s.mu.Lock()
	s.hist = append(s.hist, durs...)
	if max := historyWindow * s.nParts; len(s.hist) > max {
		s.hist = s.hist[len(s.hist)-max:]
	}
	s.totalRetries += sum.Retries
	s.totalDeadlineHits += sum.DeadlineHits
	s.totalStragglers += int64(len(sum.Stragglers))
	s.mu.Unlock()
	return sum
}

// Totals returns run-cumulative supervision counts.
func (s *Supervisor) Totals() (retries, deadlineHits, stragglers int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalRetries, s.totalDeadlineHits, s.totalStragglers
}

func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// DegradeState tracks which partitions have had their provenance capture
// (and online-query piggybacking) shed. Partition -1 is the global domain:
// whole-layer failures (e.g. a spill that keeps failing) shed capture for
// every partition. A nil *DegradeState never sheds. Safe for concurrent
// use.
type DegradeState struct {
	mu     sync.Mutex
	after  int
	consec map[int]int // partition (-1 global) -> consecutive capture failures
	shed   map[int]int // partition -> superstep shedding began
}

// NewDegradeState creates degradation state that sheds a partition's
// capture after `after` consecutive failures; after <= 0 returns nil
// (degradation disabled).
func NewDegradeState(after int) *DegradeState {
	if after <= 0 {
		return nil
	}
	return &DegradeState{after: after, consec: map[int]int{}, shed: map[int]int{}}
}

// NoteFailure records a capture failure for partition p (or -1 for the
// whole layer) at superstep ss and reports whether this failure crossed
// the threshold and shed the partition now.
func (d *DegradeState) NoteFailure(p, ss int) (shedNow bool) {
	if d == nil {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, already := d.shed[p]; already {
		return false
	}
	d.consec[p]++
	if d.consec[p] >= d.after {
		d.shed[p] = ss
		return true
	}
	return false
}

// ShedNow sheds partition p's capture immediately from superstep ss,
// bypassing the consecutive-failure threshold. Used when the failure is
// already conclusive — a transport-unreachable partition that fell back to
// local execution — so its provenance gap starts at the superstep the
// partition was lost, not MaxRetries supersteps later. Idempotent: an
// already-shed partition keeps its original gap start.
func (d *DegradeState) ShedNow(p, ss int) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, already := d.shed[p]; !already {
		d.shed[p] = ss
	}
}

// NoteSuccess resets partition p's consecutive-failure count (a shed
// partition stays shed: capture is not re-attempted once degraded, so the
// gap is one contiguous range per partition).
func (d *DegradeState) NoteSuccess(p int) {
	if d == nil {
		return
	}
	d.mu.Lock()
	delete(d.consec, p)
	d.mu.Unlock()
}

// Shed reports whether capture for partition p is shed (directly or by the
// global domain).
func (d *DegradeState) Shed(p int) bool {
	if d == nil {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.shed[-1]; ok {
		return true
	}
	_, ok := d.shed[p]
	return ok
}

// AnyShed reports whether any partition is degraded.
func (d *DegradeState) AnyShed() bool {
	if d == nil {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.shed) > 0
}

// ShedPartitions returns the degraded partitions ascending (-1 first when
// globally degraded), with the superstep each was shed at.
func (d *DegradeState) ShedPartitions() map[int]int {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[int]int, len(d.shed))
	for p, ss := range d.shed {
		out[p] = ss
	}
	return out
}

// Restore reinstates degradation state from a checkpoint: shed maps
// partition -> superstep shedding began, consec the in-flight consecutive
// failure counts. Used by the capture observer's checkpoint restore so a
// resumed run stays degraded instead of re-attempting capture it already
// shed.
func (d *DegradeState) Restore(shed, consec map[int]int) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.shed = make(map[int]int, len(shed))
	for p, ss := range shed {
		d.shed[p] = ss
	}
	d.consec = make(map[int]int, len(consec))
	for p, n := range consec {
		d.consec[p] = n
	}
}

// Snapshot returns copies of the shed and consecutive-failure maps for
// checkpointing.
func (d *DegradeState) Snapshot() (shed, consec map[int]int) {
	if d == nil {
		return nil, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	shed = make(map[int]int, len(d.shed))
	for p, ss := range d.shed {
		shed[p] = ss
	}
	consec = make(map[int]int, len(d.consec))
	for p, n := range d.consec {
		consec[p] = n
	}
	return shed, consec
}
