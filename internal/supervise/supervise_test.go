package supervise

import (
	"context"
	"errors"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

func retryAll(error) bool { return true }

func TestRunRetriesUntilSuccess(t *testing.T) {
	s := New(Config{MaxRetries: 3, Backoff: time.Microsecond}, 2, nil)
	attempts, resets := 0, 0
	err := s.Run(context.Background(), 0, 1, func(context.Context) error {
		attempts++
		if attempts < 3 {
			return errBoom
		}
		return nil
	}, func() { resets++ }, retryAll)
	if err != nil {
		t.Fatalf("Run = %v, want nil", err)
	}
	if attempts != 3 || resets != 2 {
		t.Fatalf("attempts=%d resets=%d, want 3 and 2", attempts, resets)
	}
	sum := s.EndSuperstep(1, []time.Duration{time.Millisecond, time.Millisecond})
	if sum.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", sum.Retries)
	}
}

func TestRunExhaustsRetries(t *testing.T) {
	s := New(Config{MaxRetries: 2, Backoff: time.Microsecond}, 1, nil)
	attempts := 0
	err := s.Run(context.Background(), 0, 0, func(context.Context) error {
		attempts++
		return errBoom
	}, func() {}, retryAll)
	if !errors.Is(err, errBoom) {
		t.Fatalf("Run = %v, want errBoom", err)
	}
	if attempts != 3 { // initial + 2 retries
		t.Fatalf("attempts = %d, want 3", attempts)
	}
}

func TestRunNonRetryableFailsFast(t *testing.T) {
	s := New(Config{MaxRetries: 5, Backoff: time.Microsecond}, 1, nil)
	attempts := 0
	err := s.Run(context.Background(), 0, 0, func(context.Context) error {
		attempts++
		return errBoom
	}, func() { t.Fatal("reset called for a non-retryable failure") },
		func(error) bool { return false })
	if !errors.Is(err, errBoom) || attempts != 1 {
		t.Fatalf("err=%v attempts=%d, want errBoom after exactly 1 attempt", err, attempts)
	}
}

func TestRunNoRetriesWhenNegative(t *testing.T) {
	s := New(Config{MaxRetries: -1}, 1, nil)
	attempts := 0
	err := s.Run(context.Background(), 0, 0, func(context.Context) error {
		attempts++
		return errBoom
	}, func() {}, retryAll)
	if !errors.Is(err, errBoom) || attempts != 1 {
		t.Fatalf("err=%v attempts=%d, want errBoom after exactly 1 attempt", err, attempts)
	}
}

func TestRunDeadlineCancelsAttempt(t *testing.T) {
	s := New(Config{Deadline: 5 * time.Millisecond, MaxRetries: 1, Backoff: time.Microsecond}, 1, nil)
	attempts := 0
	err := s.Run(context.Background(), 0, 2, func(ctx context.Context) error {
		attempts++
		if attempts == 1 {
			<-ctx.Done() // simulated hang: blocks until the deadline fires
			return ctx.Err()
		}
		return nil
	}, func() {}, retryAll)
	if err != nil {
		t.Fatalf("Run = %v, want recovery on retry", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	sum := s.EndSuperstep(2, []time.Duration{time.Millisecond})
	if sum.DeadlineHits != 1 || sum.Retries != 1 {
		t.Fatalf("DeadlineHits=%d Retries=%d, want 1 and 1", sum.DeadlineHits, sum.Retries)
	}
}

func TestRunParentCancellationNotRetried(t *testing.T) {
	s := New(Config{MaxRetries: 5, Backoff: time.Microsecond}, 1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	err := s.Run(ctx, 0, 0, func(context.Context) error {
		attempts++
		cancel()
		return ctx.Err()
	}, func() {}, retryAll)
	if !errors.Is(err, context.Canceled) || attempts != 1 {
		t.Fatalf("err=%v attempts=%d, want context.Canceled after 1 attempt", err, attempts)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	s := New(Config{Backoff: time.Millisecond}, 4, nil)
	for try := 0; try < 10; try++ {
		d1 := s.backoff(1, 3, try)
		d2 := s.backoff(1, 3, try)
		if d1 != d2 {
			t.Fatalf("backoff(1,3,%d) not deterministic: %v vs %v", try, d1, d2)
		}
		if d1 <= 0 || d1 >= 2*maxBackoff {
			t.Fatalf("backoff(1,3,%d) = %v, want in (0, %v)", try, d1, 2*maxBackoff)
		}
	}
	// Different coordinates should (for this seed) produce different jitter.
	if s.backoff(0, 0, 0) == s.backoff(1, 0, 0) && s.backoff(0, 1, 0) == s.backoff(0, 2, 0) {
		t.Fatal("jitter appears constant across coordinates")
	}
}

func TestEndSuperstepFlagsStragglers(t *testing.T) {
	s := New(Config{StragglerMultiple: 4}, 4, nil)
	durs := []time.Duration{
		time.Millisecond, time.Millisecond, time.Millisecond,
		100 * time.Millisecond, // > 4× median and > absolute floor
	}
	sum := s.EndSuperstep(0, durs)
	if len(sum.Stragglers) != 1 || sum.Stragglers[0] != 3 {
		t.Fatalf("Stragglers = %v, want [3]", sum.Stragglers)
	}
	// Microsecond-scale skew must not flag anything (absolute floor).
	sum = s.EndSuperstep(1, []time.Duration{time.Microsecond, 40 * time.Microsecond, time.Microsecond, time.Microsecond})
	if len(sum.Stragglers) != 0 {
		t.Fatalf("Stragglers = %v on a µs-scale superstep, want none", sum.Stragglers)
	}
	r, d, st := s.Totals()
	if r != 0 || d != 0 || st != 1 {
		t.Fatalf("Totals = %d,%d,%d, want 0,0,1", r, d, st)
	}
}

func TestAdaptiveDeadline(t *testing.T) {
	s := New(Config{AdaptiveDeadline: true, StragglerMultiple: 4}, 2, nil)
	if d := s.Deadline(); d != 0 {
		t.Fatalf("Deadline with no history = %v, want 0", d)
	}
	s.EndSuperstep(0, []time.Duration{10 * time.Millisecond, 20 * time.Millisecond})
	want := 4 * 15 * time.Millisecond // multiple × median
	if d := s.Deadline(); d != want {
		t.Fatalf("adaptive Deadline = %v, want %v", d, want)
	}
	// The floor protects µs-scale runs.
	s2 := New(Config{AdaptiveDeadline: true}, 1, nil)
	s2.EndSuperstep(0, []time.Duration{time.Microsecond})
	if d := s2.Deadline(); d != minAdaptiveDeadline {
		t.Fatalf("floored adaptive Deadline = %v, want %v", d, minAdaptiveDeadline)
	}
}

func TestDeadlinePrefersFixed(t *testing.T) {
	s := New(Config{Deadline: 7 * time.Millisecond, AdaptiveDeadline: true}, 1, nil)
	s.EndSuperstep(0, []time.Duration{time.Second})
	if d := s.Deadline(); d != 7*time.Millisecond {
		t.Fatalf("Deadline = %v, want the fixed 7ms", d)
	}
}

func TestDegradeState(t *testing.T) {
	d := NewDegradeState(2)
	if d.NoteFailure(1, 3) {
		t.Fatal("first failure must not shed")
	}
	d.NoteSuccess(1) // resets the consecutive count
	if d.NoteFailure(1, 5) {
		t.Fatal("count must reset after a success")
	}
	if !d.NoteFailure(1, 6) {
		t.Fatal("second consecutive failure must shed")
	}
	if d.NoteFailure(1, 7) {
		t.Fatal("an already-shed partition must not re-shed")
	}
	if !d.Shed(1) || d.Shed(0) {
		t.Fatalf("Shed(1)=%v Shed(0)=%v, want true,false", d.Shed(1), d.Shed(0))
	}
	d.NoteSuccess(1)
	if !d.Shed(1) {
		t.Fatal("shedding must be permanent")
	}
	if got := d.ShedPartitions(); len(got) != 1 || got[1] != 6 {
		t.Fatalf("ShedPartitions = %v, want {1: 6}", got)
	}
	// The global domain sheds everything.
	d.NoteFailure(-1, 8)
	d.NoteFailure(-1, 9)
	if !d.Shed(0) || !d.AnyShed() {
		t.Fatal("global shed must cover every partition")
	}
}

func TestDegradeStateNilSafe(t *testing.T) {
	var d *DegradeState
	if NewDegradeState(0) != nil {
		t.Fatal("NewDegradeState(0) must disable degradation")
	}
	if d.NoteFailure(0, 0) || d.Shed(0) || d.AnyShed() {
		t.Fatal("nil DegradeState must never shed")
	}
	d.NoteSuccess(0)
	d.Restore(map[int]int{0: 1}, nil)
	if s, c := d.Snapshot(); s != nil || c != nil {
		t.Fatal("nil Snapshot must return nils")
	}
}

func TestDegradeStateSnapshotRestore(t *testing.T) {
	d := NewDegradeState(2)
	d.NoteFailure(0, 1)
	d.NoteFailure(0, 2) // sheds partition 0 at superstep 2
	d.NoteFailure(1, 2) // in-flight count for partition 1
	shed, consec := d.Snapshot()

	r := NewDegradeState(2)
	r.Restore(shed, consec)
	if !r.Shed(0) || r.Shed(1) {
		t.Fatalf("restored Shed(0)=%v Shed(1)=%v, want true,false", r.Shed(0), r.Shed(1))
	}
	// The restored in-flight count continues where it left off.
	if !r.NoteFailure(1, 3) {
		t.Fatal("restored consec count must shed partition 1 on its next failure")
	}
}

func TestMedian(t *testing.T) {
	if m := median(nil); m != 0 {
		t.Fatalf("median(nil) = %v, want 0", m)
	}
	if m := median([]time.Duration{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v, want 2", m)
	}
	if m := median([]time.Duration{1, 3}); m != 2 {
		t.Fatalf("even median = %v, want 2", m)
	}
}
