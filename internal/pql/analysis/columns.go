package analysis

import "ariadne/internal/pql"

// ColumnUse reports, for each EDB predicate the query references, which
// argument positions evaluation can actually observe. A position is unused
// only when every occurrence across every rule is a bare variable that the
// rule cannot see again: a wildcard, or a variable with a single occurrence
// (no join, no comparison, no head projection). Everything else — constants,
// expressions, repeated variables — marks the position used.
//
// This is the contract the layered driver's projection pushdown relies on:
// an unused position may be materialized as Null when the layer is read
// back, so it must be impossible for the query's answer to depend on the
// value at that position. Two blanket conservatisms keep that true in the
// presence of multiset-sensitive operators:
//
//   - A negated literal marks all its positions used: negation-as-failure
//     tests tuple existence against the concrete column values, and a
//     Null-ed column would collapse distinct tuples into one.
//   - A rule whose head carries an aggregate marks every EDB position in
//     that rule used: aggregates observe tuple multiplicity, and collapsing
//     a projected-away column can merge tuples that were distinct on disk
//     (COUNT over value(X, D, I) with D projected away would undercount).
//
// Positions of EDBs the query never mentions are simply absent from the map.
func (q *Query) ColumnUse() map[string][]bool {
	use := make(map[string][]bool, len(q.EDBs))
	for name, arity := range q.EDBs {
		use[name] = make([]bool, arity)
	}
	for _, r := range q.Rules {
		// Count variable occurrences across the whole rule (head, every
		// body literal, both comparison sides). pql.Vars yields one entry
		// per occurrence, so a self-join inside one atom counts twice.
		occ := map[string]int{}
		count := func(t pql.Term) {
			var vs []*pql.Var
			vs = pql.Vars(t, vs)
			for _, v := range vs {
				if !v.Wildcard() {
					occ[v.Name]++
				}
			}
		}
		agg := false
		for _, a := range r.Head.Args {
			count(a)
			if hasAggregate(a) {
				agg = true
			}
		}
		for _, lit := range r.Body {
			switch lit := lit.(type) {
			case *pql.PredLit:
				for _, a := range lit.Atom.Args {
					count(a)
				}
			case *pql.CmpLit:
				count(lit.L)
				count(lit.R)
			}
		}
		for _, lit := range r.Body {
			pl, ok := lit.(*pql.PredLit)
			if !ok {
				continue
			}
			u, isEDB := use[pl.Atom.Pred]
			if !isEDB {
				continue
			}
			for i, a := range pl.Atom.Args {
				if i >= len(u) {
					break
				}
				if pl.Negated || agg {
					u[i] = true
					continue
				}
				if v, bare := a.(*pql.Var); bare && (v.Wildcard() || occ[v.Name] <= 1) {
					continue
				}
				u[i] = true
			}
		}
	}
	return use
}

// hasAggregate reports whether an aggregate appears anywhere in the term.
func hasAggregate(t pql.Term) bool {
	switch t := t.(type) {
	case *pql.Aggregate:
		return true
	case *pql.BinExpr:
		return hasAggregate(t.L) || (t.R != nil && hasAggregate(t.R))
	case *pql.Call:
		for _, a := range t.Args {
			if hasAggregate(a) {
				return true
			}
		}
	}
	return false
}
