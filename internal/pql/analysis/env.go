// Package analysis implements PQL semantic analysis: parameter resolution,
// function resolution, arity and safety checking (range restriction),
// stratification of negation and aggregation, and the paper's location
// analysis — VC-compatibility (Def. 4.1) and directedness classification
// (Def. 5.2) — which decides whether a query can run online, layered, or
// only naively.
package analysis

import (
	"fmt"
	"math"

	"ariadne/internal/value"
)

// Func is a scalar or boolean user-defined function callable from PQL
// (paper §4.2: "a boolean function call f(v̄) with f built-in or
// user-defined").
type Func struct {
	// Arity is the required argument count; -1 accepts any.
	Arity int
	Fn    func(args []value.Value) (value.Value, error)
}

// Env supplies query parameters ($name) and function bindings to analysis
// and evaluation.
type Env struct {
	Params map[string]value.Value
	Funcs  map[string]Func
	// ExtraEDBs declares analytics-specific provenance tables beyond the
	// built-ins (e.g. prov_error/4 emitted by ALS), name -> arity.
	ExtraEDBs map[string]int
}

// NewEnv returns an Env with the built-in function library.
func NewEnv() *Env {
	e := &Env{
		Params:    map[string]value.Value{},
		Funcs:     map[string]Func{},
		ExtraEDBs: map[string]int{},
	}
	e.Funcs["abs"] = Func{Arity: 1, Fn: func(a []value.Value) (value.Value, error) {
		if !a[0].IsNumeric() {
			return value.NullValue, fmt.Errorf("abs: want number, got %s", a[0].Kind())
		}
		return value.NewFloat(math.Abs(a[0].Float())), nil
	}}
	e.Funcs["sqrt"] = Func{Arity: 1, Fn: func(a []value.Value) (value.Value, error) {
		if !a[0].IsNumeric() {
			return value.NullValue, fmt.Errorf("sqrt: want number, got %s", a[0].Kind())
		}
		return value.NewFloat(math.Sqrt(a[0].Float())), nil
	}}
	e.Funcs["absdiff"] = Func{Arity: 2, Fn: func(a []value.Value) (value.Value, error) {
		d, err := value.AbsDiff(a[0], a[1])
		if err != nil {
			return value.NullValue, err
		}
		return value.NewFloat(d), nil
	}}
	e.Funcs["eucdist"] = Func{Arity: 2, Fn: func(a []value.Value) (value.Value, error) {
		d, err := value.EuclideanDist(a[0], a[1])
		if err != nil {
			return value.NullValue, err
		}
		return value.NewFloat(d), nil
	}}
	// udf_diff(d1, d2, eps) defaults to |d1-d2| <= eps — the paper's vertex
	// value comparison for PageRank/SSSP/WCC. Callers override it (e.g.
	// with Euclidean distance for ALS) via SetDiffUDF.
	e.SetDiffUDF(value.AbsDiff)
	return e
}

// SetDiffUDF installs the vertex-value comparison behind udf_diff(d1,d2,eps):
// true when diff(d1,d2) <= eps. The paper parameterizes the apt query with
// exactly this function (§2.2).
func (e *Env) SetDiffUDF(diff func(a, b value.Value) (float64, error)) {
	e.Funcs["udf_diff"] = Func{Arity: 3, Fn: func(a []value.Value) (value.Value, error) {
		if !a[2].IsNumeric() {
			return value.NullValue, fmt.Errorf("udf_diff: epsilon must be numeric, got %s", a[2].Kind())
		}
		d, err := diff(a[0], a[1])
		if err != nil {
			return value.NullValue, err
		}
		return value.NewBool(d <= a[2].Float()), nil
	}}
}

// SetParam binds a $name query parameter.
func (e *Env) SetParam(name string, v value.Value) {
	if e.Params == nil {
		e.Params = map[string]value.Value{}
	}
	e.Params[name] = v
}

// DeclareEDB registers an analytics-specific provenance table.
func (e *Env) DeclareEDB(name string, arity int) {
	if e.ExtraEDBs == nil {
		e.ExtraEDBs = map[string]int{}
	}
	e.ExtraEDBs[name] = arity
}

// Clone returns a deep copy (maps copied, functions shared).
func (e *Env) Clone() *Env {
	c := &Env{
		Params:    make(map[string]value.Value, len(e.Params)),
		Funcs:     make(map[string]Func, len(e.Funcs)),
		ExtraEDBs: make(map[string]int, len(e.ExtraEDBs)),
	}
	for k, v := range e.Params {
		c.Params[k] = v
	}
	for k, v := range e.Funcs {
		c.Funcs[k] = v
	}
	for k, v := range e.ExtraEDBs {
		c.ExtraEDBs[k] = v
	}
	return c
}
