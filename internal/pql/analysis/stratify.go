package analysis

import (
	"sort"

	"ariadne/internal/pql"
	"ariadne/internal/value"
)

func boolConst(b bool) value.Value { return value.NewBool(b) }

// stratify computes evaluation strata. Dependencies: for each rule H :- B,
// every positive IDB in B contributes edge p -> H; negated IDBs and (when
// the head aggregates) all IDB body deps contribute *negative* edges. A
// negative edge inside a recursive component makes the program
// non-stratifiable (paper §4.2 supports stratified negation and stratified
// aggregation; truly monotonic aggregate recursion is out of scope and
// rejected with a clear error).
type depEdge struct {
	from string
	neg  bool
}

func (q *Query) stratify() error {
	// Predicates whose defining rules aggregate: both their inputs and
	// their consumers must live in strictly earlier/later strata, since an
	// aggregate value is only final once its stratum's fixpoint completes.
	aggPreds := map[string]bool{}
	for _, r := range q.Rules {
		if headHasAggregate(r.Head) {
			aggPreds[r.Head.Pred] = true
		}
	}
	deps := map[string][]depEdge{} // head -> body deps
	for _, r := range q.Rules {
		h := r.Head.Pred
		hasAgg := headHasAggregate(r.Head)
		for _, lit := range r.Body {
			pl, ok := lit.(*pql.PredLit)
			if !ok {
				continue
			}
			p := pl.Atom.Pred
			if _, isIDB := q.IDBs[p]; !isIDB {
				continue // EDBs are stratum 0 by definition
			}
			deps[h] = append(deps[h], depEdge{from: p, neg: pl.Negated || hasAgg || aggPreds[p]})
		}
	}

	// Longest-path stratification: stratum(h) >= stratum(p) (+1 if negative).
	// Iterate to fixpoint; a stratum exceeding the IDB count implies a cycle
	// through a negative edge.
	names := make([]string, 0, len(q.IDBs))
	for n := range q.IDBs {
		names = append(names, n)
	}
	sort.Strings(names)
	stratum := map[string]int{}
	for _, n := range names {
		stratum[n] = 0
	}
	limit := len(names) + 1
	for changed := true; changed; {
		changed = false
		for _, h := range names {
			for _, e := range deps[h] {
				want := stratum[e.from]
				if e.neg {
					want++
				}
				if stratum[h] < want {
					stratum[h] = want
					changed = true
					if stratum[h] > limit {
						return serrf(pql.Pos{Line: 1, Col: 1},
							"query is not stratifiable: predicate %s depends negatively on itself (through negation or aggregation)", h)
					}
				}
			}
		}
	}
	q.StratumOf = stratum

	// Detect recursion (positive cycles are fine, just noted).
	q.Recursive = hasPositiveCycle(names, deps)

	// Group rules by their head's stratum, preserving source order.
	maxS := 0
	for _, s := range stratum {
		if s > maxS {
			maxS = s
		}
	}
	q.Strata = make([][]*pql.Rule, maxS+1)
	for _, r := range q.Rules {
		s := stratum[r.Head.Pred]
		q.Strata[s] = append(q.Strata[s], r)
	}
	return nil
}

func headHasAggregate(h *pql.Atom) bool {
	for _, a := range h.Args {
		if containsAggregate(a) {
			return true
		}
	}
	return false
}

func containsAggregate(t pql.Term) bool {
	switch t := t.(type) {
	case *pql.Aggregate:
		return true
	case *pql.BinExpr:
		if containsAggregate(t.L) {
			return true
		}
		return t.R != nil && containsAggregate(t.R)
	case *pql.Call:
		for _, a := range t.Args {
			if containsAggregate(a) {
				return true
			}
		}
	}
	return false
}

func hasPositiveCycle(names []string, deps map[string][]depEdge) bool {
	// DFS cycle detection over all dependency edges.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(n string) bool
	visit = func(n string) bool {
		color[n] = gray
		for _, e := range deps[n] {
			switch color[e.from] {
			case gray:
				return true
			case white:
				if visit(e.from) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for _, n := range names {
		if color[n] == white && visit(n) {
			return true
		}
	}
	return false
}
