package analysis

import "testing"

func colUse(t *testing.T, src string) map[string][]bool {
	t.Helper()
	env := NewEnv()
	env.DeclareEDB("prov_error", 2)
	return MustAnalyze(src, env).ColumnUse()
}

func wantUse(t *testing.T, use map[string][]bool, pred string, want []bool) {
	t.Helper()
	got, ok := use[pred]
	if !ok {
		t.Fatalf("no column use recorded for %s (have %v)", pred, use)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d positions, want %d", pred, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s position %d: used=%v, want %v (full: %v)", pred, i, got[i], want[i], got)
		}
	}
}

func TestColumnUseWildcardAndSingleOccurrence(t *testing.T) {
	// M is a wildcard, Y occurs once: only the join/head positions of
	// receive_message are observable.
	use := colUse(t, `reached(X, I) :- superstep(X, I), receive_message(X, Y, _, I).`)
	wantUse(t, use, "receive_message", []bool{true, false, false, true})
	wantUse(t, use, "superstep", []bool{true, true})
}

func TestColumnUseJoinedVariable(t *testing.T) {
	// D occurs in the comparison, D2 in two atoms: both value columns used.
	use := colUse(t, `
		grew(X, I) :- value(X, D, I), evolution(X, J, I), value(X, D2, J), D > D2.`)
	wantUse(t, use, "value", []bool{true, true, true})
	wantUse(t, use, "evolution", []bool{true, true, true})
}

func TestColumnUseHeadProjection(t *testing.T) {
	// M reaches the head: used even though it occurs once in the body.
	use := colUse(t, `msg(X, M) :- receive_message(X, _, M, _).`)
	wantUse(t, use, "receive_message", []bool{true, false, true, false})
}

func TestColumnUseNegationForcesAll(t *testing.T) {
	// The negated literal must observe full tuples: even its wildcard
	// positions are marked used, since negation-as-failure tests existence
	// against concrete column values.
	use := colUse(t, `
		quiet(X, I) :- superstep(X, I), !send_message(X, _, _, I).`)
	wantUse(t, use, "send_message", []bool{true, true, true, true})
}

func TestColumnUseAggregateForcesRule(t *testing.T) {
	// COUNT observes multiplicity: every EDB position in the rule is used,
	// including the otherwise-wildcarded message payload.
	use := colUse(t, `fanin(X, COUNT(Y)) :- receive_message(X, Y, _, _).`)
	wantUse(t, use, "receive_message", []bool{true, true, true, true})
}

func TestColumnUseMergesAcrossRules(t *testing.T) {
	// Rule 1 ignores the payload, rule 2 projects it: the union is used.
	use := colUse(t, `
		touched(X, I) :- receive_message(X, _, _, I).
		payload(X, M) :- receive_message(X, _, M, I), I > 3.`)
	wantUse(t, use, "receive_message", []bool{true, false, true, true})
}

func TestColumnUseConstantsAndExprs(t *testing.T) {
	// A constant filters and an expression computes: both mark the position
	// used, even when the variable inside the expression occurs nowhere else
	// as a bare term.
	use := colUse(t, `spiked(X) :- value(X, D, 3), abs(D) > 0.5.`)
	wantUse(t, use, "value", []bool{true, true, true})
}

func TestColumnUseSelfJoinInOneAtom(t *testing.T) {
	// X repeats inside one atom: a self-join, both positions used.
	use := colUse(t, `selfmsg(X, I) :- send_message(X, X, _, I).`)
	wantUse(t, use, "send_message", []bool{true, true, false, true})
}

func TestColumnUseUnreferencedEDBAbsent(t *testing.T) {
	use := colUse(t, `on(X, I) :- superstep(X, I).`)
	if _, ok := use["value"]; ok {
		t.Error("value was never referenced but has a column-use entry")
	}
}
