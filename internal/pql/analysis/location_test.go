package analysis

import (
	"testing"

	"ariadne/internal/pql"
)

func analyzeLoc(t *testing.T, src string, env *Env) *Query {
	t.Helper()
	prog, err := pql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Analyze(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestLocationColsBasic(t *testing.T) {
	src := `
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
`
	q := analyzeLoc(t, src, NewEnv())
	loc := q.LocationCols()
	if loc["edge"] != 0 {
		t.Errorf("edge location = %d, want 0", loc["edge"])
	}
	if loc["reach"] != 0 {
		t.Errorf("reach location = %d, want 0 (head var X sits at edge's location column)", loc["reach"])
	}
	// Every built-in EDB the query mentions is located at 0.
	for name := range q.EDBs {
		if loc[name] != 0 {
			t.Errorf("EDB %s location = %d, want 0", name, loc[name])
		}
	}
}

func TestLocationColsDemotion(t *testing.T) {
	env := NewEnv()
	env.DeclareEDB("obs", 2)
	// swap's head location Y comes from obs's *second* column — not a
	// location position — so swap demotes to -1; chain inherits its first
	// argument from swap's location column, but swap is demoted, so chain
	// demotes too (propagation).
	src := `
swap(Y, X) :- obs(X, Y).
chain(Y) :- swap(Y, X).
good(X) :- obs(X, _).
`
	q := analyzeLoc(t, src, env)
	loc := q.LocationCols()
	if loc["swap"] != -1 {
		t.Errorf("swap location = %d, want -1", loc["swap"])
	}
	if loc["chain"] != -1 {
		t.Errorf("chain location = %d, want -1 (inherited from demoted swap)", loc["chain"])
	}
	if loc["good"] != 0 {
		t.Errorf("good location = %d, want 0", loc["good"])
	}
}

func TestLocationColsExpressionHead(t *testing.T) {
	env := NewEnv()
	env.DeclareEDB("obs", 2)
	src := `shift(S, D) :- obs(X, D), S = X + 1.`
	q := analyzeLoc(t, src, env)
	if loc := q.LocationCols(); loc["shift"] != -1 {
		t.Errorf("shift location = %d, want -1 (head var bound by expression, not a location column)", loc["shift"])
	}
}

func TestLocationColsConstHead(t *testing.T) {
	env := NewEnv()
	env.DeclareEDB("obs", 2)
	src := `pinned(0, D) :- obs(X, D).`
	q := analyzeLoc(t, src, env)
	if loc := q.LocationCols(); loc["pinned"] != 0 {
		t.Errorf("pinned location = %d, want 0 (constant head location)", loc["pinned"])
	}
}

func TestLocationColsAggregateHead(t *testing.T) {
	src := `deg(X, COUNT(Y)) :- receive_message(X, Y, M, I).`
	q := analyzeLoc(t, src, NewEnv())
	// Aggregate heads still have a plain location variable at arg 0.
	if loc := q.LocationCols(); loc["deg"] != 0 {
		t.Errorf("deg location = %d, want 0", loc["deg"])
	}
}

func TestParallelSafeStrata(t *testing.T) {
	src := `
deg(X, COUNT(Y)) :- receive_message(X, Y, M, I).
busy(X) :- deg(X, D), D > 3.
quiet(X) :- value(X, _, _), !busy(X).
`
	q := analyzeLoc(t, src, NewEnv())
	safe := q.ParallelSafeStrata()
	if len(safe) != len(q.Strata) {
		t.Fatalf("safety vector length %d != strata %d", len(safe), len(q.Strata))
	}
	aggStratum := q.StratumOf["deg"]
	if safe[aggStratum] {
		t.Error("aggregate stratum marked parallel-safe")
	}
	if !safe[q.StratumOf["busy"]] {
		t.Error("plain stratum (busy) not parallel-safe")
	}
	if !safe[q.StratumOf["quiet"]] {
		t.Error("negation stratum (quiet) must be parallel-safe — negated preds are frozen lower strata")
	}
}
