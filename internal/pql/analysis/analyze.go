package analysis

import (
	"fmt"

	"ariadne/internal/pql"
)

// Class is the paper's directedness classification (Def. 5.2) extended with
// Local (no remote predicates at all) and Mixed (both directions, like rule
// R1 in §5.1, which cannot be layered).
type Class uint8

// Query classes, ordered from most to least evaluation freedom.
const (
	// Local queries touch only tuples at the evaluating node. They are
	// evaluable online and layered in either direction.
	Local Class = iota
	// Forward queries guard every remote predicate with receive_message:
	// evaluable online (Theorem 5.4) and layered ascending.
	Forward
	// Backward queries guard every remote predicate with send_message:
	// evaluable layered descending, offline only.
	Backward
	// Mixed queries use both directions: only naive evaluation applies.
	Mixed
)

func (c Class) String() string {
	switch c {
	case Local:
		return "local"
	case Forward:
		return "forward"
	case Backward:
		return "backward"
	default:
		return "mixed"
	}
}

// OnlineEvaluable reports whether the class can run in lockstep with the
// analytic (paper §5.2).
func (c Class) OnlineEvaluable() bool { return c == Local || c == Forward }

// LayeredEvaluable reports whether the class supports layered offline
// evaluation (paper §5.1), in ascending or descending superstep order.
func (c Class) LayeredEvaluable() bool { return c != Mixed }

// Query is an analyzed, classified PQL query ready for evaluation.
type Query struct {
	// Rules are the analyzed rules: parameters substituted, boolean
	// function literals rewritten to comparisons.
	Rules []*pql.Rule
	// IDBs and EDBs map predicate names to arities.
	IDBs map[string]int
	EDBs map[string]int
	// Strata groups rules into evaluation strata; stratum i may negate or
	// aggregate only over predicates fully computed in strata < i.
	Strata [][]*pql.Rule
	// StratumOf gives each IDB predicate's stratum.
	StratumOf map[string]int
	// Class is the directedness classification.
	Class Class
	// VCCompatible reports whether every remote predicate is guarded by a
	// message predicate (Def. 4.1); false means even distributed evaluation
	// would need non-neighbor communication.
	VCCompatible bool
	// Recursive reports whether any IDB depends on itself.
	Recursive bool

	env *Env
}

// Env returns the environment the query was analyzed under.
func (q *Query) Env() *Env { return q.env }

// SemanticError reports an analysis failure.
type SemanticError struct {
	Pos pql.Pos
	Msg string
}

func (e *SemanticError) Error() string {
	return fmt.Sprintf("pql: %s: %s", e.Pos, e.Msg)
}

func serrf(pos pql.Pos, format string, args ...any) error {
	return &SemanticError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Analyze checks and classifies a parsed program under env. The input AST
// is not modified; returned rules are rewritten copies.
func Analyze(prog *pql.Program, env *Env) (*Query, error) {
	if env == nil {
		env = NewEnv()
	}
	q := &Query{
		IDBs:      map[string]int{},
		EDBs:      map[string]int{},
		StratumOf: map[string]int{},
		env:       env,
	}

	// Pass 1: rewrite rules (params, function literals) and collect IDBs.
	for _, r := range prog.Rules {
		rr, err := rewriteRule(r, env)
		if err != nil {
			return nil, err
		}
		name, arity := rr.Head.Pred, len(rr.Head.Args)
		if _, isEDB := env.EDBArity(name); isEDB {
			return nil, serrf(rr.Head.Pos, "rule head %s redefines a provenance EDB predicate", name)
		}
		if _, isFn := env.Funcs[name]; isFn {
			return nil, serrf(rr.Head.Pos, "rule head %s collides with a function name", name)
		}
		if prev, ok := q.IDBs[name]; ok && prev != arity {
			return nil, serrf(rr.Head.Pos, "predicate %s used with arity %d and %d", name, prev, arity)
		}
		q.IDBs[name] = arity
		q.Rules = append(q.Rules, rr)
	}

	// Pass 2: resolve body predicates, check arities and safety.
	for _, r := range q.Rules {
		if err := q.checkRule(r, env); err != nil {
			return nil, err
		}
	}

	// Pass 3: stratify.
	if err := q.stratify(); err != nil {
		return nil, err
	}

	// Pass 4: locate and classify.
	if err := q.classify(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustAnalyze is Analyze for statically known-good queries (tests, canned
// paper queries); it panics on error.
func MustAnalyze(src string, env *Env) *Query {
	prog, err := pql.Parse(src)
	if err != nil {
		panic(err)
	}
	q, err := Analyze(prog, env)
	if err != nil {
		panic(err)
	}
	return q
}

// checkRule validates arities and safety (range restriction) of one rule.
func (q *Query) checkRule(r *pql.Rule, env *Env) error {
	// Arity checks for body atoms.
	for _, lit := range r.Body {
		pl, ok := lit.(*pql.PredLit)
		if !ok {
			continue
		}
		name, arity := pl.Atom.Pred, len(pl.Atom.Args)
		if a, ok := env.EDBArity(name); ok {
			if a != arity {
				return serrf(pl.Atom.Pos, "EDB %s has arity %d, used with %d", name, a, arity)
			}
			q.EDBs[name] = a
			continue
		}
		if a, ok := q.IDBs[name]; ok {
			if a != arity {
				return serrf(pl.Atom.Pos, "predicate %s has arity %d, used with %d", name, a, arity)
			}
			continue
		}
		return serrf(pl.Atom.Pos, "unknown predicate %s/%d (not an EDB, rule head, or function)", name, arity)
	}

	// Safety: compute bound variables to a fixpoint.
	bound := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for _, lit := range r.Body {
			switch lit := lit.(type) {
			case *pql.PredLit:
				if lit.Negated {
					continue
				}
				var vs []*pql.Var
				for _, a := range lit.Atom.Args {
					vs = pql.Vars(a, vs)
				}
				for _, v := range vs {
					if !v.Wildcard() && !bound[v.Name] {
						bound[v.Name] = true
						changed = true
					}
				}
			case *pql.CmpLit:
				// X = expr binds X when expr is fully bound (and vice versa).
				if lit.Op != pql.CmpEq {
					continue
				}
				if v, ok := lit.L.(*pql.Var); ok && !v.Wildcard() && !bound[v.Name] && termBound(lit.R, bound) {
					bound[v.Name] = true
					changed = true
				}
				if v, ok := lit.R.(*pql.Var); ok && !v.Wildcard() && !bound[v.Name] && termBound(lit.L, bound) {
					bound[v.Name] = true
					changed = true
				}
			}
		}
	}

	// Every head variable must be bound.
	var headVars []*pql.Var
	for _, a := range r.Head.Args {
		headVars = pql.Vars(a, headVars)
	}
	for _, v := range headVars {
		if v.Wildcard() {
			return serrf(v.Pos, "wildcard not allowed in rule head")
		}
		if !bound[v.Name] {
			return serrf(v.Pos, "head variable %s is not bound by a positive body literal (unsafe rule)", v.Name)
		}
	}
	// Variables under negation and in comparisons must be bound.
	for _, lit := range r.Body {
		switch lit := lit.(type) {
		case *pql.PredLit:
			if !lit.Negated {
				continue
			}
			var vs []*pql.Var
			for _, a := range lit.Atom.Args {
				vs = pql.Vars(a, vs)
			}
			for _, v := range vs {
				if !v.Wildcard() && !bound[v.Name] {
					return serrf(v.Pos, "variable %s in negated literal is not bound (unsafe negation)", v.Name)
				}
			}
		case *pql.CmpLit:
			var vs []*pql.Var
			vs = pql.Vars(lit.L, vs)
			vs = pql.Vars(lit.R, vs)
			for _, v := range vs {
				if v.Wildcard() {
					return serrf(v.Pos, "wildcard not allowed in comparisons")
				}
				if !bound[v.Name] {
					return serrf(v.Pos, "variable %s in comparison is not bound", v.Name)
				}
			}
		}
	}
	return nil
}

func termBound(t pql.Term, bound map[string]bool) bool {
	var vs []*pql.Var
	vs = pql.Vars(t, vs)
	for _, v := range vs {
		if v.Wildcard() || !bound[v.Name] {
			return false
		}
	}
	return true
}

// rewriteRule substitutes $params and converts boolean-function literals
// f(args) / !f(args) into comparisons f(args) = true/false.
func rewriteRule(r *pql.Rule, env *Env) (*pql.Rule, error) {
	head, err := rewriteAtom(r.Head, env)
	if err != nil {
		return nil, err
	}
	out := &pql.Rule{Head: head, Pos: r.Pos}
	for _, lit := range r.Body {
		switch lit := lit.(type) {
		case *pql.PredLit:
			a, err := rewriteAtom(lit.Atom, env)
			if err != nil {
				return nil, err
			}
			if fn, ok := env.Funcs[a.Pred]; ok {
				if fn.Arity >= 0 && fn.Arity != len(a.Args) {
					return nil, serrf(a.Pos, "function %s takes %d arguments, got %d", a.Pred, fn.Arity, len(a.Args))
				}
				want := pql.Const{Val: boolConst(!lit.Negated)}
				out.Body = append(out.Body, &pql.CmpLit{
					Op:  pql.CmpEq,
					L:   &pql.Call{Name: a.Pred, Args: a.Args, Pos: a.Pos},
					R:   &want,
					Pos: a.Pos,
				})
				continue
			}
			out.Body = append(out.Body, &pql.PredLit{Atom: a, Negated: lit.Negated})
		case *pql.CmpLit:
			l, err := rewriteTerm(lit.L, env)
			if err != nil {
				return nil, err
			}
			rr, err := rewriteTerm(lit.R, env)
			if err != nil {
				return nil, err
			}
			out.Body = append(out.Body, &pql.CmpLit{Op: lit.Op, L: l, R: rr, Pos: lit.Pos})
		default:
			return nil, serrf(r.Pos, "unsupported literal %T", lit)
		}
	}
	return out, nil
}

func rewriteAtom(a *pql.Atom, env *Env) (*pql.Atom, error) {
	out := &pql.Atom{Pred: a.Pred, Pos: a.Pos, Args: make([]pql.Term, len(a.Args))}
	for i, t := range a.Args {
		rt, err := rewriteTerm(t, env)
		if err != nil {
			return nil, err
		}
		out.Args[i] = rt
	}
	return out, nil
}

func rewriteTerm(t pql.Term, env *Env) (pql.Term, error) {
	switch t := t.(type) {
	case *pql.Param:
		v, ok := env.Params[t.Name]
		if !ok {
			return nil, serrf(t.Pos, "unbound query parameter $%s", t.Name)
		}
		return &pql.Const{Val: v, Pos: t.Pos}, nil
	case *pql.BinExpr:
		l, err := rewriteTerm(t.L, env)
		if err != nil {
			return nil, err
		}
		var r pql.Term
		if t.R != nil {
			if r, err = rewriteTerm(t.R, env); err != nil {
				return nil, err
			}
		}
		return &pql.BinExpr{Op: t.Op, L: l, R: r, Pos: t.Pos}, nil
	case *pql.Call:
		if _, ok := env.Funcs[t.Name]; !ok {
			return nil, serrf(t.Pos, "unknown function %s in term position", t.Name)
		}
		out := &pql.Call{Name: t.Name, Pos: t.Pos, Args: make([]pql.Term, len(t.Args))}
		for i, a := range t.Args {
			ra, err := rewriteTerm(a, env)
			if err != nil {
				return nil, err
			}
			out.Args[i] = ra
		}
		return out, nil
	case *pql.Aggregate:
		arg, err := rewriteTerm(t.Arg, env)
		if err != nil {
			return nil, err
		}
		return &pql.Aggregate{Kind: t.Kind, Arg: arg, Pos: t.Pos}, nil
	default:
		return t, nil
	}
}
