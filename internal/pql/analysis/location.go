package analysis

import (
	"ariadne/internal/pql"
)

// Location-column inference for partition-parallel evaluation.
//
// Every PQL predicate's first argument is its location specifier (paper
// §4.2): the vertex — and therefore the partition — holding the tuple. The
// sharded evaluator exploits this to split delta batches across worker
// shards with the engine's partition hash. A predicate is *shardable* when
// its location column can be pinned statically: all EDBs qualify by
// construction, and an IDB qualifies when every defining rule places a
// constant or a location-positioned body variable in the head's first
// argument, so a derived tuple's home partition is computable from the
// tuple alone (the precondition for the per-round exchange being legal
// under VC-compatibility, Def. 4.1).

// LocationCols returns, for every predicate of the query, the column index
// of its location specifier: 0 for every shardable predicate, -1 for
// predicates whose location cannot be inferred statically (aggregate-headed
// rules, zero-arity heads, heads whose first argument is an expression or a
// variable that never appears in a body literal's location position).
// Tuples of -1 predicates are sharded by whole-tuple hash instead, which
// stays deterministic but loses locality.
func (q *Query) LocationCols() map[string]int {
	loc := make(map[string]int, len(q.EDBs)+len(q.IDBs))
	for name := range q.EDBs {
		loc[name] = 0
	}
	for name := range q.IDBs {
		loc[name] = 0
	}
	// Optimistic fixpoint: start with every predicate located at column 0
	// and demote heads whose rules cannot justify it. Demotions propagate —
	// a head variable inherited from a demoted body predicate's first
	// column no longer counts as located.
	for changed := true; changed; {
		changed = false
		for _, r := range q.Rules {
			name := r.Head.Pred
			if loc[name] < 0 {
				continue
			}
			if !headLocatable(r, loc) {
				loc[name] = -1
				changed = true
			}
		}
	}
	return loc
}

// headLocatable reports whether rule r pins its head tuple's location:
// the first head argument is a constant, or a variable occurring at the
// location column of a positive body literal that is itself located.
func headLocatable(r *pql.Rule, loc map[string]int) bool {
	if len(r.Head.Args) == 0 {
		return false
	}
	if _, ok := r.Head.Args[0].(*pql.Const); ok {
		return true
	}
	v, ok := asVarName(r.Head.Args[0])
	if !ok {
		return false
	}
	for _, lit := range r.Body {
		pl, ok := lit.(*pql.PredLit)
		if !ok || pl.Negated || len(pl.Atom.Args) == 0 {
			continue
		}
		if lc, known := loc[pl.Atom.Pred]; !known || lc != 0 {
			continue
		}
		if n, ok := asVarName(pl.Atom.Args[0]); ok && n == v {
			return true
		}
	}
	return false
}

// ParallelSafeStrata classifies each stratum for shard-parallel delta
// rounds. A stratum is parallel-safe when none of its rules aggregate:
// aggregate folds keep global per-group state whose update order is part of
// the result's bit-identity (SUM/AVG over floats), so aggregate strata stay
// on the sequential path. Negation is always safe — stratification
// guarantees negated predicates are fully computed in lower strata and
// therefore frozen during this stratum's rounds.
func (q *Query) ParallelSafeStrata() []bool {
	out := make([]bool, len(q.Strata))
	for i, stratum := range q.Strata {
		safe := true
		for _, r := range stratum {
			if headHasAggregate(r.Head) {
				safe = false
				break
			}
		}
		out[i] = safe
	}
	return out
}
