package analysis

// The built-in provenance EDB predicates (paper Table 1 plus the compact-
// graph extras of §3 and §6.3). By convention the first argument of every
// predicate is the location specifier.
//
//	superstep(X, I)             vertex X was active at superstep I
//	value(X, D, I)              vertex X had value D at superstep I
//	evolution(X, J, I)          X active at J and I, J the predecessor of I
//	send_message(X, Y, M, I)    X sent message M to Y at superstep I
//	receive_message(X, Y, M, I) X received message M from Y at superstep I
//	edge_value(X, Y, D, I)      value D of edge X->Y at superstep I
//	edge(Y, X)                  static input-graph edge Y->X
//	prov_send(X, I)             X sent at least one message at superstep I
//	                            (custom capture, paper Query 11)
//	capture_gap(P, F, T)        provenance capture for partition P was shed
//	                            for supersteps F..T (degraded-mode record;
//	                            P = -1 means all partitions)
//
// Telemetry-as-EDB (PR 7): the run's own execution profile is queryable
// alongside provenance, so "why was superstep 3 slow" joins with "what did
// vertex X do at superstep 3".
//
//	superstep_profile(S, Phase, Partition, Nanos, Tuples)
//	                            phase Phase ("compute", "barrier", "observe",
//	                            "spill", "checkpoint") of superstep S took
//	                            Nanos; Partition = -1 for whole-superstep
//	                            rows, >= 0 for per-partition compute rows
//	net_rpc(S, Partition, Bytes, Retries, Nanos)
//	                            the exchange RPC for Partition at superstep S
//	                            moved Bytes over the wire, needed Retries
//	                            retransmits, and took Nanos end to end
var builtinEDBs = map[string]int{
	"superstep":         2,
	"value":             3,
	"evolution":         3,
	"send_message":      4,
	"receive_message":   4,
	"edge_value":        4,
	"edge":              2,
	"prov_send":         2,
	"capture_gap":       3,
	"superstep_profile": 5,
	"net_rpc":           5,
}

// staticEDBs hold input-graph structure rather than per-vertex provenance.
// They are exempt from location analysis: real VC systems replicate or
// co-locate graph structure with vertices (e.g. Giraph keeps out-edges at
// the source and can precompute in-degrees), so joining on them requires no
// message exchange.
var staticEDBs = map[string]bool{
	"edge": true,
	// capture_gap records degraded-mode shed ranges; they are run-global
	// metadata (a handful of tuples), replicated everywhere for free.
	"capture_gap": true,
	// Telemetry tables are run-global: O(supersteps × phases) and
	// O(supersteps × partitions) tuples owned by the master, not located at
	// any vertex.
	"superstep_profile": true,
	"net_rpc":           true,
}

// EDBArity returns the arity of an EDB predicate and whether it exists,
// considering both built-ins and env-declared tables.
func (e *Env) EDBArity(name string) (int, bool) {
	if a, ok := builtinEDBs[name]; ok {
		return a, true
	}
	a, ok := e.ExtraEDBs[name]
	return a, ok
}

// IsStaticEDB reports whether the predicate is location-free static data.
func IsStaticEDB(name string) bool { return staticEDBs[name] }
