package analysis

import (
	"strings"
	"testing"

	"ariadne/internal/pql"
	"ariadne/internal/value"
)

func analyze(t *testing.T, src string, env *Env) *Query {
	t.Helper()
	prog, err := pql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Analyze(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func analyzeErr(t *testing.T, src string, env *Env, wantSub string) {
	t.Helper()
	prog, err := pql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(prog, env); err == nil {
		t.Errorf("Analyze(%q) should fail with %q", src, wantSub)
	} else if !strings.Contains(err.Error(), wantSub) {
		t.Errorf("Analyze(%q) error %q, want substring %q", src, err, wantSub)
	}
}

const aptSrc = `
change(X, I) :- value(X, D1, I), value(X, D2, J),
                evolution(X, J, I), udf_diff(D1, D2, $eps).
neighbor_change(X, I) :- receive_message(X, Y, M, I),
                         !change(Y, J), J = I - 1.
no_execute(X, I) :- !neighbor_change(X, I), superstep(X, I).
safe(X, I) :- no_execute(X, I), change(X, I).
unsafe(X, I) :- no_execute(X, I), !change(X, I).
`

func aptEnv() *Env {
	env := NewEnv()
	env.SetParam("eps", value.NewFloat(0.01))
	return env
}

func TestAnalyzeAptQuery(t *testing.T) {
	q := analyze(t, aptSrc, aptEnv())
	if q.Class != Forward {
		t.Errorf("apt query class = %v, want forward", q.Class)
	}
	if !q.VCCompatible {
		t.Error("apt query should be VC-compatible")
	}
	if !q.Class.OnlineEvaluable() {
		t.Error("forward queries must be online-evaluable")
	}
	// change must come before neighbor_change (negated) which must come
	// before no_execute, etc.
	if !(q.StratumOf["change"] < q.StratumOf["neighbor_change"]) {
		t.Errorf("strata: change=%d neighbor_change=%d", q.StratumOf["change"], q.StratumOf["neighbor_change"])
	}
	if !(q.StratumOf["neighbor_change"] < q.StratumOf["no_execute"]) {
		t.Error("no_execute must follow neighbor_change")
	}
	if !(q.StratumOf["change"] < q.StratumOf["unsafe"]) {
		t.Error("unsafe negates change, so it must live in a later stratum")
	}
	if q.StratumOf["unsafe"] < q.StratumOf["no_execute"] {
		t.Error("unsafe must not precede no_execute")
	}
	// udf_diff literal rewritten to a comparison.
	found := false
	for _, lit := range q.Rules[0].Body {
		if c, ok := lit.(*pql.CmpLit); ok {
			if call, ok := c.L.(*pql.Call); ok && call.Name == "udf_diff" {
				found = true
			}
		}
	}
	if !found {
		t.Error("udf_diff should be rewritten to a comparison literal")
	}
}

func TestClassifyBackward(t *testing.T) {
	// Paper Query 10.
	src := `
back_trace(X, I) :- superstep(X, I), I = $sigma, X = $alpha.
back_trace(X, I) :- send_message(X, Y, M, I), back_trace(Y, J), J = I + 1.
back_lineage(X, D) :- back_trace(X, I), value(X, D, I), I = 0.
`
	env := NewEnv()
	env.SetParam("sigma", value.NewInt(5))
	env.SetParam("alpha", value.NewInt(0))
	q := analyze(t, src, env)
	if q.Class != Backward {
		t.Errorf("class = %v, want backward", q.Class)
	}
	if q.Class.OnlineEvaluable() {
		t.Error("backward queries must not be online-evaluable")
	}
	if !q.Class.LayeredEvaluable() {
		t.Error("backward queries must be layered-evaluable")
	}
	if !q.Recursive {
		t.Error("back_trace is recursive")
	}
}

func TestClassifyLocal(t *testing.T) {
	// Paper Query 5: only local predicates.
	src := `
check_failed(X, I) :- value(X, D1, I), value(X, D2, J),
                      evolution(X, I, J), receive_message(X, Y, M, I),
                      D1 <= D2.
`
	q := analyze(t, src, NewEnv())
	if q.Class != Local {
		t.Errorf("class = %v, want local", q.Class)
	}
	if !q.Class.OnlineEvaluable() || !q.Class.LayeredEvaluable() {
		t.Error("local queries support every mode")
	}
}

func TestClassifyMixed(t *testing.T) {
	// Rule R1 from §5.1: remote tables via both send and receive guards.
	src := `
t(X, I) :- value(X, D, I).
s(X, I) :- value(X, D, I).
r1(X, I) :- t(Y, I), receive_message(X, Y, M, I),
            s(Z, I), send_message(X, Z, M, I).
`
	q := analyze(t, src, NewEnv())
	if q.Class != Mixed {
		t.Errorf("class = %v, want mixed", q.Class)
	}
	if !q.VCCompatible {
		t.Error("R1 is VC-compatible (guarded), just not directed")
	}
	if q.Class.LayeredEvaluable() {
		t.Error("mixed queries must not be layered-evaluable")
	}
}

func TestClassifyNotVCCompatible(t *testing.T) {
	// Remote table with no message guard at all.
	src := `
t(X, D) :- value(X, D, I).
bad(X, D) :- superstep(X, I), t(Y, D).
`
	q := analyze(t, src, NewEnv())
	if q.VCCompatible {
		t.Error("unguarded remote predicate must not be VC-compatible")
	}
	if q.Class != Mixed {
		t.Errorf("class = %v, want mixed", q.Class)
	}
}

func TestStaticEDBExempt(t *testing.T) {
	// Paper Query 4: edge(Y, X) is static graph structure, not remote.
	src := `
in_degree(X, COUNT(Y)) :- edge(Y, X).
check_failed(X, Y, I) :- in_degree(X, D), receive_message(X, Y, M, I), D = 0.
`
	q := analyze(t, src, NewEnv())
	if q.Class != Local {
		t.Errorf("class = %v, want local (edge is static)", q.Class)
	}
}

func TestAggregateStratification(t *testing.T) {
	// Paper Query 8 shape.
	src := `
degree(X, COUNT(Y)) :- receive_message(X, Y, M, I).
sum_error(X, I, SUM(E)) :- prov_error(X, Y, E, I).
avg_error(X, I, S / D) :- sum_error(X, I, S), degree(X, D).
problem(X, E1, E2, I) :- avg_error(X, I, E1), avg_error(X, J, E2),
                         evolution(X, J, I), E1 > E2 + $eps.
`
	env := NewEnv()
	env.SetParam("eps", value.NewFloat(0.5))
	env.DeclareEDB("prov_error", 4)
	q := analyze(t, src, env)
	if !(q.StratumOf["degree"] < q.StratumOf["avg_error"]) {
		t.Error("aggregate rule must precede its consumers")
	}
	if q.Class != Local {
		t.Errorf("class = %v, want local", q.Class)
	}
	if _, ok := q.EDBs["prov_error"]; !ok {
		t.Error("prov_error should be tracked as an EDB")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	env := NewEnv()
	env.SetParam("p", value.NewInt(1))
	cases := []struct{ src, want string }{
		{`value(X, D, I) :- superstep(X, I).`, "redefines a provenance EDB"},
		{`abs(X) :- superstep(X, I).`, "collides with a function"},
		{`p(X) :- superstep(X).`, "arity"},
		{`p(X) :- nosuch(X).`, "unknown predicate"},
		{`p(X, Y) :- superstep(X, I).`, "not bound"},
		{`p(X) :- superstep(X, I), !superstep(Y, I).`, "unsafe negation"},
		{`p(X) :- superstep(X, I), Y < I.`, "comparison is not bound"},
		{`p(X) :- superstep(X, I), udf_diff(I).`, "takes 3 arguments"},
		{`p(X) :- superstep(X, I), I = $nope.`, "unbound query parameter"},
		{`p(X, _) :- superstep(X, I).`, "wildcard not allowed in rule head"},
		{`p(X) :- superstep(X, I), q(X, 2).  q(X, I) :- superstep(X, I), !p(X).`, "not stratifiable"},
		{`p(X) :- superstep(X, I), nosuchfn(I) < 3.`, "unknown function"},
		{`p(X, I) :- superstep(X, I). p(X) :- superstep(X, I).`, "arity"},
	}
	for _, c := range cases {
		analyzeErr(t, c.src, env, c.want)
	}
}

func TestPositiveRecursionAllowed(t *testing.T) {
	// Paper Query 3 (fwd-lineage) is recursive but stratifiable.
	src := `
fwd_lineage(X, V, I) :- value(X, V, I), superstep(X, I), X = $alpha, I = 0.
fwd_lineage(X, V, I) :- receive_message(X, Y, M, I), fwd_lineage(Y, W, J),
                        value(X, V, I).
`
	env := NewEnv()
	env.SetParam("alpha", value.NewInt(7))
	q := analyze(t, src, env)
	if !q.Recursive {
		t.Error("fwd_lineage is recursive")
	}
	if q.Class != Forward {
		t.Errorf("class = %v, want forward", q.Class)
	}
}

func TestEnvHelpers(t *testing.T) {
	env := NewEnv()
	env.SetParam("x", value.NewInt(2))
	env.DeclareEDB("custom", 3)
	c := env.Clone()
	c.SetParam("x", value.NewInt(9))
	if env.Params["x"].Int() != 2 {
		t.Error("clone must not share params")
	}
	if a, ok := c.EDBArity("custom"); !ok || a != 3 {
		t.Error("clone must keep extra EDBs")
	}
	if a, ok := env.EDBArity("value"); !ok || a != 3 {
		t.Errorf("builtin value arity = %d %v", a, ok)
	}
	if _, ok := env.EDBArity("zzz"); ok {
		t.Error("unknown EDB should not resolve")
	}
}

func TestUDFDiffSemantics(t *testing.T) {
	env := NewEnv()
	fn := env.Funcs["udf_diff"]
	v, err := fn.Fn([]value.Value{value.NewFloat(1.0), value.NewFloat(1.005), value.NewFloat(0.01)})
	if err != nil || !v.Bool() {
		t.Errorf("small diff should be true: %v %v", v, err)
	}
	v, err = fn.Fn([]value.Value{value.NewFloat(1.0), value.NewFloat(2.0), value.NewFloat(0.01)})
	if err != nil || v.Bool() {
		t.Errorf("large diff should be false: %v %v", v, err)
	}
	// Euclidean override for ALS.
	env.SetDiffUDF(value.EuclideanDist)
	fn = env.Funcs["udf_diff"]
	v, err = fn.Fn([]value.Value{
		value.NewVector([]float64{0, 0}), value.NewVector([]float64{3, 4}), value.NewFloat(5),
	})
	if err != nil || !v.Bool() {
		t.Errorf("euclidean 5 <= 5 should be true: %v %v", v, err)
	}
}

func TestMustAnalyzePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAnalyze should panic on bad query")
		}
	}()
	MustAnalyze(`p(X) :- nosuch(X).`, nil)
}
