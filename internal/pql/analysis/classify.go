package analysis

import (
	"ariadne/internal/pql"
)

// classify performs the paper's location analysis. Every PQL predicate's
// first argument is its location specifier (§4.2). For a rule with head
// location X, a body predicate located at Y != X is *remote*; evaluating it
// requires Y to ship its partition to X. The rule is VC-compatible
// (Def. 4.1) iff each such Y is guarded by a message predicate connecting X
// and Y: receive_message(X, Y, _, _) — X heard from Y — or
// send_message(X, Y, _, _) — X messaged Y. The query is *forward* if only
// receive guards occur, *backward* if only send guards (Def. 5.2), *local*
// if no remote predicates exist, and *mixed* otherwise.
func (q *Query) classify() error {
	q.VCCompatible = true
	usesRecvGuards := false
	usesSendGuards := false

	for _, r := range q.Rules {
		headLoc, ok := locationVar(r.Head)
		if !ok {
			// Constant location (e.g. a fact): no remote access possible.
			continue
		}

		// Collect guard pairs available in this rule's body. Message
		// predicates guard their peer; static input edges guard too
		// (paper §6.3: "for analytics where vertices send messages to all
		// their outgoing neighbors ... the same information is encoded in
		// the edges of the input graph" — Query 12 traces along
		// edge + prov_send instead of send_message). edge(X, Y) lets X
		// reach its out-neighbor Y (send direction); edge(Y, X) lets X
		// hear from its in-neighbor Y (receive direction).
		recvGuarded := map[string]bool{} // var names Y with receive_message(X, Y, ...)
		sendGuarded := map[string]bool{}
		for _, lit := range r.Body {
			pl, ok := lit.(*pql.PredLit)
			if !ok || pl.Negated {
				continue
			}
			if len(pl.Atom.Args) < 2 {
				continue
			}
			switch pl.Atom.Pred {
			case "receive_message", "send_message":
				loc, lok := asVarName(pl.Atom.Args[0])
				peer, pok := asVarName(pl.Atom.Args[1])
				if !lok || !pok || loc != headLoc {
					continue
				}
				if pl.Atom.Pred == "receive_message" {
					recvGuarded[peer] = true
				} else {
					sendGuarded[peer] = true
				}
			case "edge":
				a0, ok0 := asVarName(pl.Atom.Args[0])
				a1, ok1 := asVarName(pl.Atom.Args[1])
				if ok0 && ok1 {
					if a0 == headLoc {
						sendGuarded[a1] = true
					}
					if a1 == headLoc {
						recvGuarded[a0] = true
					}
				}
			}
		}

		// Check every body predicate's location.
		for _, lit := range r.Body {
			pl, ok := lit.(*pql.PredLit)
			if !ok {
				continue
			}
			if IsStaticEDB(pl.Atom.Pred) {
				continue
			}
			loc, lok := asVarName(pl.Atom.Args[0])
			if !lok {
				continue // constant location: reachable without messages? No —
				// constant-located atoms select one node's partition; treat
				// as local since the tuple location is fixed, not shipped.
			}
			if loc == headLoc {
				continue
			}
			// Remote predicate at location `loc`.
			switch {
			case recvGuarded[loc] && !sendGuarded[loc]:
				usesRecvGuards = true
			case sendGuarded[loc] && !recvGuarded[loc]:
				usesSendGuards = true
			case recvGuarded[loc] && sendGuarded[loc]:
				// Guarded both ways: VC-compatible but direction-ambiguous.
				usesRecvGuards = true
				usesSendGuards = true
			default:
				q.VCCompatible = false
			}
		}
	}

	switch {
	case !q.VCCompatible:
		q.Class = Mixed
	case usesRecvGuards && usesSendGuards:
		q.Class = Mixed
	case usesRecvGuards:
		q.Class = Forward
	case usesSendGuards:
		q.Class = Backward
	default:
		q.Class = Local
	}
	return nil
}

// locationVar returns the head's location variable name, or ok=false when
// the location is a constant.
func locationVar(a *pql.Atom) (string, bool) {
	return asVarName(a.Args[0])
}

func asVarName(t pql.Term) (string, bool) {
	v, ok := t.(*pql.Var)
	if !ok || v.Wildcard() {
		return "", false
	}
	return v.Name, true
}
