package pql

import (
	"fmt"
	"strconv"
	"strings"

	"ariadne/internal/value"
)

// Program is a parsed PQL query: an ordered collection of rules.
type Program struct {
	Rules []*Rule
}

// Rule is one Datalog rule: Head :- Body.
type Rule struct {
	Head *Atom
	Body []Literal
	Pos  Pos
}

// Atom is a predicate applied to terms. By PQL convention the first
// argument is the location specifier (paper §4.2).
type Atom struct {
	Pred string
	Args []Term
	Pos  Pos
}

// Literal is one body conjunct.
type Literal interface {
	literal()
	fmt.Stringer
}

// PredLit is a (possibly negated) relational or boolean-function atom.
// Whether the name denotes a relation or a registered boolean function is
// resolved during analysis.
type PredLit struct {
	Atom    *Atom
	Negated bool
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNeq
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (o CmpOp) String() string {
	switch o {
	case CmpEq:
		return "="
	case CmpNeq:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return "?"
	}
}

// CmpLit is a comparison predicate t1 θ t2.
type CmpLit struct {
	Op   CmpOp
	L, R Term
	Pos  Pos
}

func (*PredLit) literal() {}
func (*CmpLit) literal()  {}

// Term is an argument expression.
type Term interface {
	term()
	fmt.Stringer
}

// Var is a variable; "_" is the anonymous wildcard.
type Var struct {
	Name string
	Pos  Pos
}

// Wildcard reports whether the variable is the anonymous `_`.
func (v *Var) Wildcard() bool { return v.Name == "_" }

// Const is a literal constant.
type Const struct {
	Val value.Value
	Pos Pos
}

// Param is a `$name` query parameter resolved at analysis time.
type Param struct {
	Name string
	Pos  Pos
}

// ArithOp is an arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg
)

func (o ArithOp) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "mod"
	case OpNeg:
		return "-"
	default:
		return "?"
	}
}

// BinExpr is an arithmetic expression L op R (or unary negation with R nil).
type BinExpr struct {
	Op   ArithOp
	L, R Term // R nil for OpNeg
	Pos  Pos
}

// Call is a scalar function application in term position.
type Call struct {
	Name string
	Args []Term
	Pos  Pos
}

// AggKind is an aggregation function in a rule head.
type AggKind uint8

// Aggregation kinds (paper §4.2: monotonic min, max, sum, count; AVG added
// for convenience, evaluated stratified).
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	default:
		return "?"
	}
}

// Aggregate is an aggregation term, legal only in rule heads.
type Aggregate struct {
	Kind AggKind
	Arg  Term
	Pos  Pos
}

func (*Var) term()       {}
func (*Const) term()     {}
func (*Param) term()     {}
func (*BinExpr) term()   {}
func (*Call) term()      {}
func (*Aggregate) term() {}

// --- Stringers (used in error messages and tests) ---

func (v *Var) String() string { return v.Name }

func (c *Const) String() string {
	// Quote strings so the rendering re-parses (round-trip stability).
	if c.Val.Kind() == value.String {
		return strconv.Quote(c.Val.Str())
	}
	return c.Val.String()
}

func (p *Param) String() string { return "$" + p.Name }

func (b *BinExpr) String() string {
	if b.Op == OpNeg {
		return fmt.Sprintf("-(%s)", b.L)
	}
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

func (c *Call) String() string {
	return c.Name + "(" + joinTerms(c.Args) + ")"
}

func (a *Aggregate) String() string {
	return fmt.Sprintf("%s(%s)", a.Kind, a.Arg)
}

func (a *Atom) String() string {
	return a.Pred + "(" + joinTerms(a.Args) + ")"
}

func (p *PredLit) String() string {
	if p.Negated {
		return "!" + p.Atom.String()
	}
	return p.Atom.String()
}

func (c *CmpLit) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

func (r *Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Head.String())
	if len(r.Body) > 0 {
		b.WriteString(" :- ")
		for i, l := range r.Body {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(l.String())
		}
	}
	b.WriteByte('.')
	return b.String()
}

func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func joinTerms(ts []Term) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, ", ")
}

// Vars appends the variables appearing in t to out (wildcards included).
func Vars(t Term, out []*Var) []*Var {
	switch t := t.(type) {
	case *Var:
		return append(out, t)
	case *BinExpr:
		out = Vars(t.L, out)
		if t.R != nil {
			out = Vars(t.R, out)
		}
		return out
	case *Call:
		for _, a := range t.Args {
			out = Vars(a, out)
		}
		return out
	case *Aggregate:
		return Vars(t.Arg, out)
	default:
		return out
	}
}
