// Package pql implements the front-end of Ariadne's Provenance Query
// Language (paper §4): a Datalog dialect with stratified negation,
// aggregation, comparison predicates, arithmetic, user-defined functions,
// and location-specified predicates. The package provides the lexer,
// parser, and AST; semantic analysis and classification live in
// pql/analysis, evaluation in pql/eval.
//
// Syntax summary (ASCII rendering of the paper's notation):
//
//	change(X, I) :- value(X, D1, I), value(X, D2, J),
//	                evolution(X, J, I), udf_diff(D1, D2, $eps).
//	neighbor_change(X, I) :- receive_message(X, Y, M, I),
//	                         !change(Y, J), J = I - 1.
//	in_degree(X, COUNT(Y)) :- edge(Y, X).
//
// Variables begin with an uppercase letter (or are the wildcard `_`),
// predicate and function names with a lowercase letter. `:-` and `<-` both
// separate head from body; rules end with `.`. `!p(...)` and `not p(...)`
// negate a body literal. `$name` is a query parameter bound at analysis
// time. Aggregates COUNT, SUM, MIN, MAX, AVG may appear in head arguments.
// Comments run from `%` or `//` to end of line.
package pql

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokVar
	TokParam
	TokNumber
	TokString
	TokLParen
	TokRParen
	TokComma
	TokDot
	TokImplies // :- or <-
	TokBang    // !
	TokNot     // not
	TokEq      // = or ==
	TokNeq     // !=
	TokLt      // <
	TokLe      // <=
	TokGt      // >
	TokGe      // >=
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercentOp // mod
	TokTrue
	TokFalse
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokVar:
		return "variable"
	case TokParam:
		return "parameter"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokComma:
		return "','"
	case TokDot:
		return "'.'"
	case TokImplies:
		return "':-'"
	case TokBang:
		return "'!'"
	case TokNot:
		return "'not'"
	case TokEq:
		return "'='"
	case TokNeq:
		return "'!='"
	case TokLt:
		return "'<'"
	case TokLe:
		return "'<='"
	case TokGt:
		return "'>'"
	case TokGe:
		return "'>='"
	case TokPlus:
		return "'+'"
	case TokMinus:
		return "'-'"
	case TokStar:
		return "'*'"
	case TokSlash:
		return "'/'"
	case TokPercentOp:
		return "'%%'"
	case TokTrue:
		return "'true'"
	case TokFalse:
		return "'false'"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

// SyntaxError reports a lexing or parsing failure with its position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("pql: %s: %s", e.Pos, e.Msg)
}

func errf(pos Pos, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
