package pql

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// lexer converts PQL source into tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peek() rune {
	if l.off >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

func (l *lexer) advance() rune {
	r, sz := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += sz
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '%':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && strings.HasPrefix(l.src[l.off:], "//"):
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	r := l.peek()
	switch {
	case r == '(':
		l.advance()
		return Token{Kind: TokLParen, Text: "(", Pos: pos}, nil
	case r == ')':
		l.advance()
		return Token{Kind: TokRParen, Text: ")", Pos: pos}, nil
	case r == ',':
		l.advance()
		return Token{Kind: TokComma, Text: ",", Pos: pos}, nil
	case r == '.':
		l.advance()
		return Token{Kind: TokDot, Text: ".", Pos: pos}, nil
	case r == ':':
		l.advance()
		if l.peek() != '-' {
			return Token{}, errf(pos, "expected ':-', found ':%c'", l.peek())
		}
		l.advance()
		return Token{Kind: TokImplies, Text: ":-", Pos: pos}, nil
	case r == '!':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: TokNeq, Text: "!=", Pos: pos}, nil
		}
		return Token{Kind: TokBang, Text: "!", Pos: pos}, nil
	case r == '=':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: TokEq, Text: "==", Pos: pos}, nil
		}
		return Token{Kind: TokEq, Text: "=", Pos: pos}, nil
	case r == '<':
		l.advance()
		switch l.peek() {
		case '=':
			l.advance()
			return Token{Kind: TokLe, Text: "<=", Pos: pos}, nil
		case '-':
			l.advance()
			return Token{Kind: TokImplies, Text: "<-", Pos: pos}, nil
		default:
			return Token{Kind: TokLt, Text: "<", Pos: pos}, nil
		}
	case r == '>':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: TokGe, Text: ">=", Pos: pos}, nil
		}
		return Token{Kind: TokGt, Text: ">", Pos: pos}, nil
	case r == '+':
		l.advance()
		return Token{Kind: TokPlus, Text: "+", Pos: pos}, nil
	case r == '-':
		l.advance()
		return Token{Kind: TokMinus, Text: "-", Pos: pos}, nil
	case r == '*':
		l.advance()
		return Token{Kind: TokStar, Text: "*", Pos: pos}, nil
	case r == '/':
		l.advance()
		return Token{Kind: TokSlash, Text: "/", Pos: pos}, nil
	case r == '$':
		l.advance()
		start := l.off
		for l.off < len(l.src) && isIdentRune(l.peek()) {
			l.advance()
		}
		if l.off == start {
			return Token{}, errf(pos, "expected parameter name after '$'")
		}
		return Token{Kind: TokParam, Text: l.src[start:l.off], Pos: pos}, nil
	case r == '"':
		return l.lexString(pos)
	case unicode.IsDigit(r):
		return l.lexNumber(pos)
	case isIdentStart(r):
		start := l.off
		for l.off < len(l.src) && isIdentRune(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		switch text {
		case "not":
			return Token{Kind: TokNot, Text: text, Pos: pos}, nil
		case "true":
			return Token{Kind: TokTrue, Text: text, Pos: pos}, nil
		case "false":
			return Token{Kind: TokFalse, Text: text, Pos: pos}, nil
		case "mod":
			return Token{Kind: TokPercentOp, Text: text, Pos: pos}, nil
		}
		if text == "_" || unicode.IsUpper(rune(text[0])) {
			return Token{Kind: TokVar, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
	default:
		return Token{}, errf(pos, "unexpected character %q", r)
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexString(pos Pos) (Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.off >= len(l.src) {
			return Token{}, errf(pos, "unterminated string literal")
		}
		r := l.advance()
		switch r {
		case '"':
			return Token{Kind: TokString, Text: b.String(), Pos: pos}, nil
		case '\\':
			if l.off >= len(l.src) {
				return Token{}, errf(pos, "unterminated escape in string literal")
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"', '\\':
				b.WriteRune(e)
			default:
				return Token{}, errf(pos, "unknown escape \\%c", e)
			}
		case '\n':
			return Token{}, errf(pos, "newline in string literal")
		default:
			b.WriteRune(r)
		}
	}
}

func (l *lexer) lexNumber(pos Pos) (Token, error) {
	start := l.off
	seenDot := false
	seenExp := false
	for l.off < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsDigit(r):
			l.advance()
		case r == '.' && !seenDot && !seenExp:
			// Lookahead: "1." followed by non-digit is the rule terminator.
			if l.off+1 >= len(l.src) || !unicode.IsDigit(rune(l.src[l.off+1])) {
				goto done
			}
			seenDot = true
			l.advance()
		case (r == 'e' || r == 'E') && !seenExp:
			// Exponent must be followed by digits or sign+digits.
			j := l.off + 1
			if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
				j++
			}
			if j >= len(l.src) || !unicode.IsDigit(rune(l.src[j])) {
				goto done
			}
			seenExp = true
			l.advance()
			if l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
		default:
			goto done
		}
	}
done:
	return Token{Kind: TokNumber, Text: l.src[start:l.off], Pos: pos}, nil
}
