package pql

import (
	"strings"
	"testing"

	"ariadne/internal/value"
)

func TestParseAptQuery(t *testing.T) {
	// The motivating apt query (paper Query 1), ASCII syntax.
	src := `
% approximate optimization query
change(X, I) :- value(X, D1, I), value(X, D2, J),
                evolution(X, J, I), udf_diff(D1, D2, $eps).
neighbor_change(X, I) :- receive_message(X, Y, M, I),
                         !change(Y, J), J = I - 1.
no_execute(X, I) :- !neighbor_change(X, I), superstep(X, I).
safe(X, I) :- no_execute(X, I), change(X, I).
unsafe(X, I) :- no_execute(X, I), !change(X, I).
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 5 {
		t.Fatalf("rules = %d, want 5", len(prog.Rules))
	}
	r0 := prog.Rules[0]
	if r0.Head.Pred != "change" || len(r0.Head.Args) != 2 {
		t.Errorf("head = %v", r0.Head)
	}
	if len(r0.Body) != 4 {
		t.Errorf("body literals = %d, want 4", len(r0.Body))
	}
	// Fourth literal is the udf call (a PredLit until analysis resolves it).
	if pl, ok := r0.Body[3].(*PredLit); !ok || pl.Atom.Pred != "udf_diff" {
		t.Errorf("literal 3 = %v", r0.Body[3])
	}
	// $eps parsed as Param.
	udf := r0.Body[3].(*PredLit).Atom
	if _, ok := udf.Args[2].(*Param); !ok {
		t.Errorf("third udf arg = %T, want Param", udf.Args[2])
	}
	// Negation recorded.
	if pl := prog.Rules[1].Body[1].(*PredLit); !pl.Negated {
		t.Error("!change should be negated")
	}
	// Comparison with arithmetic.
	cmp, ok := prog.Rules[1].Body[2].(*CmpLit)
	if !ok || cmp.Op != CmpEq {
		t.Fatalf("literal = %v", prog.Rules[1].Body[2])
	}
	if _, ok := cmp.R.(*BinExpr); !ok {
		t.Errorf("I - 1 should parse as BinExpr, got %T", cmp.R)
	}
}

func TestParseAggregateHead(t *testing.T) {
	prog, err := Parse(`in_degree(X, COUNT(Y)) :- edge(Y, X).
avg_error(X, I, S / D) :- sum_error(X, I, S), degree(X, D).`)
	if err != nil {
		t.Fatal(err)
	}
	agg, ok := prog.Rules[0].Head.Args[1].(*Aggregate)
	if !ok || agg.Kind != AggCount {
		t.Fatalf("head arg = %v", prog.Rules[0].Head.Args[1])
	}
	if _, ok := prog.Rules[1].Head.Args[2].(*BinExpr); !ok {
		t.Errorf("S / D head arg should be BinExpr")
	}
}

func TestParseBothArrows(t *testing.T) {
	a, err := Parse(`p(X) :- q(X).`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse(`p(X) <- q(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("arrow forms differ: %q vs %q", a.String(), b.String())
	}
}

func TestParseFact(t *testing.T) {
	prog, err := Parse(`source(5, 0).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules[0].Body) != 0 {
		t.Error("fact should have empty body")
	}
	c := prog.Rules[0].Head.Args[0].(*Const)
	if c.Val.Int() != 5 {
		t.Errorf("const = %v", c.Val)
	}
}

func TestParseConstants(t *testing.T) {
	prog, err := Parse(`p(X) :- q(X, 3.5, -2, "hi", true, 1e-3).`)
	if err != nil {
		t.Fatal(err)
	}
	args := prog.Rules[0].Body[0].(*PredLit).Atom.Args
	wants := []value.Value{
		value.NewFloat(3.5), value.NewInt(-2), value.NewString("hi"),
		value.NewBool(true), value.NewFloat(0.001),
	}
	for i, w := range wants {
		c, ok := args[i+1].(*Const)
		if !ok || !c.Val.Equal(w) {
			t.Errorf("arg %d = %v, want %v", i+1, args[i+1], w)
		}
	}
}

func TestParseNumberDotAmbiguity(t *testing.T) {
	// `i = 0.` must parse the 0 and then the rule terminator.
	prog, err := Parse(`p(X, I) :- q(X, I), I = 0.`)
	if err != nil {
		t.Fatal(err)
	}
	cmp := prog.Rules[0].Body[1].(*CmpLit)
	if c := cmp.R.(*Const); c.Val.Int() != 0 {
		t.Errorf("rhs = %v", cmp.R)
	}
}

func TestParseNotKeyword(t *testing.T) {
	prog, err := Parse(`p(X) :- q(X), not r(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if pl := prog.Rules[0].Body[1].(*PredLit); !pl.Negated {
		t.Error("'not r(X)' should be negated")
	}
}

func TestParseWildcard(t *testing.T) {
	prog, err := Parse(`p(X) :- q(X, _).`)
	if err != nil {
		t.Fatal(err)
	}
	v := prog.Rules[0].Body[0].(*PredLit).Atom.Args[1].(*Var)
	if !v.Wildcard() {
		t.Error("underscore should be a wildcard var")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{``, "empty query"},
		{`p(X)`, "expected '.'"},
		{`p() .`, "at least one argument"},
		{`p(X) :- q(X), .`, "unexpected"},
		{`p(X) :- X.`, "bare term"},
		{`p(X) :- q(X) r(X).`, "expected '.'"},
		{`p(X) :- q(COUNT(X)).`, "only allowed in rule heads"},
		{`p(X) :- "unterminated.`, "unterminated string"},
		{`p(lower) :- q(X).`, "bare identifier"},
		{`p(X) : q(X).`, "expected ':-'"},
		{`p(X) :- q(X), $.`, "parameter name"},
		{`p(X) @- q(X).`, "unexpected character"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestParseRuleHelper(t *testing.T) {
	r, err := ParseRule(`p(X) :- q(X).`)
	if err != nil || r.Head.Pred != "p" {
		t.Errorf("ParseRule: %v, %v", r, err)
	}
	if _, err := ParseRule(`p(X). q(X).`); err == nil {
		t.Error("two rules should fail ParseRule")
	}
}

func TestStringRoundTrip(t *testing.T) {
	src := `safe(X, I) :- no_execute(X, I), change(X, I), I >= 2 + 1, udf(X, $p).`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Parse(prog.String())
	if err != nil {
		t.Fatalf("reparse of %q: %v", prog.String(), err)
	}
	if re.String() != prog.String() {
		t.Errorf("not stable: %q vs %q", prog.String(), re.String())
	}
}

func TestVarsCollector(t *testing.T) {
	r, err := ParseRule(`p(X, SUM(Y + Z)) :- q(X, Y), r(X, Z, f(W)).`)
	if err != nil {
		t.Fatal(err)
	}
	var vs []*Var
	for _, a := range r.Head.Args {
		vs = Vars(a, vs)
	}
	names := map[string]bool{}
	for _, v := range vs {
		names[v.Name] = true
	}
	if !names["X"] || !names["Y"] || !names["Z"] {
		t.Errorf("head vars = %v", names)
	}
	var bodyVs []*Var
	for _, a := range r.Body[1].(*PredLit).Atom.Args {
		bodyVs = Vars(a, bodyVs)
	}
	found := false
	for _, v := range bodyVs {
		if v.Name == "W" {
			found = true
		}
	}
	if !found {
		t.Error("W inside call should be collected")
	}
}

func TestLexerPositions(t *testing.T) {
	_, err := Parse("p(X) :- q(X).\nbroken(")
	if err == nil {
		t.Fatal("should fail")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("want SyntaxError, got %T", err)
	}
	if se.Pos.Line != 2 {
		t.Errorf("error line = %d, want 2", se.Pos.Line)
	}
}
