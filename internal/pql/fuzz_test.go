package pql

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics throws structured garbage at the parser: any input
// must produce a rule set or an error, never a panic or a hang.
func TestParserNeverPanics(t *testing.T) {
	tokens := []string{
		"p", "q", "value", "X", "Y", "_", "COUNT", "SUM", "(", ")", ",", ".",
		":-", "<-", "!", "not", "=", "==", "!=", "<", "<=", ">", ">=",
		"+", "-", "*", "/", "mod", "$x", "1", "2.5", "1e9", `"s"`, "true",
		"false", "%c", "\n", " ",
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		var b strings.Builder
		n := rng.Intn(30)
		for j := 0; j < n; j++ {
			b.WriteString(tokens[rng.Intn(len(tokens))])
			b.WriteByte(' ')
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

// TestLexerNeverPanicsOnBytes feeds raw byte noise.
func TestLexerNeverPanicsOnBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		raw := make([]byte, rng.Intn(40))
		for j := range raw {
			raw[j] = byte(rng.Intn(256))
		}
		src := string(raw)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

// TestParseIdempotentOnCannedQueries: parse → String → parse is stable for
// every query shape we ship.
func TestParseIdempotentOnCannedQueries(t *testing.T) {
	srcs := []string{
		`p(X) :- q(X, Y), r(Y, Z), Z > 1 + 2 * 3.`,
		`agg(X, COUNT(Y)) :- e(X, Y).`,
		`s(X, SUM(V)) :- e(X, V), not t(X).`,
		`f(X) :- g(X), h(X, "str"), X != -4.5.`,
		`a(X, I) :- b(X, I), I = $p.`,
	}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		p2, err := Parse(p1.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", p1.String(), err)
		}
		if p1.String() != p2.String() {
			t.Errorf("not idempotent:\n%q\n%q", p1.String(), p2.String())
		}
	}
}
