package pql

import (
	"strconv"
	"strings"

	"ariadne/internal/value"
)

// Parse parses a complete PQL query (one or more rules).
func Parse(src string) (*Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.Kind != TokEOF {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	if len(prog.Rules) == 0 {
		return nil, errf(p.tok.Pos, "empty query")
	}
	return prog, nil
}

// ParseRule parses exactly one rule.
func ParseRule(src string) (*Rule, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Rules) != 1 {
		return nil, errf(Pos{1, 1}, "expected exactly one rule, found %d", len(prog.Rules))
	}
	return prog.Rules[0], nil
}

type parser struct {
	lex *lexer
	tok Token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k TokKind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, errf(p.tok.Pos, "expected %s, found %s %q", k, p.tok.Kind, p.tok.Text)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) parseRule() (*Rule, error) {
	pos := p.tok.Pos
	head, err := p.parseAtom(true)
	if err != nil {
		return nil, err
	}
	r := &Rule{Head: head, Pos: pos}
	if p.tok.Kind == TokImplies {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			r.Body = append(r.Body, lit)
			if p.tok.Kind != TokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(TokDot); err != nil {
		return nil, err
	}
	return r, nil
}

// parseAtom parses name(args...). Aggregates are allowed only when head.
func (p *parser) parseAtom(head bool) (*Atom, error) {
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	a := &Atom{Pred: name.Text, Pos: name.Pos}
	if p.tok.Kind == TokRParen {
		return nil, errf(p.tok.Pos, "predicate %s needs at least one argument (the location specifier)", name.Text)
	}
	for {
		t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !head {
			if ag := findAggregate(t); ag != nil {
				return nil, errf(ag.Pos, "aggregate %s only allowed in rule heads", ag.Kind)
			}
		}
		a.Args = append(a.Args, t)
		if p.tok.Kind == TokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return a, nil
}

func findAggregate(t Term) *Aggregate {
	switch t := t.(type) {
	case *Aggregate:
		return t
	case *BinExpr:
		if a := findAggregate(t.L); a != nil {
			return a
		}
		if t.R != nil {
			return findAggregate(t.R)
		}
	case *Call:
		for _, a := range t.Args {
			if ag := findAggregate(a); ag != nil {
				return ag
			}
		}
	}
	return nil
}

func (p *parser) parseLiteral() (Literal, error) {
	pos := p.tok.Pos
	// Negation prefix.
	if p.tok.Kind == TokBang || p.tok.Kind == TokNot {
		if err := p.advance(); err != nil {
			return nil, err
		}
		a, err := p.parseAtom(false)
		if err != nil {
			return nil, err
		}
		return &PredLit{Atom: a, Negated: true}, nil
	}
	// Otherwise parse an expression; a following comparison operator makes
	// this a comparison literal, else it must be a predicate atom.
	left, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpFor(p.tok.Kind); ok {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &CmpLit{Op: op, L: left, R: right, Pos: pos}, nil
	}
	if c, ok := left.(*Call); ok {
		for _, a := range c.Args {
			if ag := findAggregate(a); ag != nil {
				return nil, errf(ag.Pos, "aggregate %s only allowed in rule heads", ag.Kind)
			}
		}
		return &PredLit{Atom: &Atom{Pred: c.Name, Args: c.Args, Pos: c.Pos}}, nil
	}
	return nil, errf(pos, "expected predicate or comparison, found bare term %s", left)
}

func cmpFor(k TokKind) (CmpOp, bool) {
	switch k {
	case TokEq:
		return CmpEq, true
	case TokNeq:
		return CmpNeq, true
	case TokLt:
		return CmpLt, true
	case TokLe:
		return CmpLe, true
	case TokGt:
		return CmpGt, true
	case TokGe:
		return CmpGe, true
	default:
		return 0, false
	}
}

// --- expression parsing (precedence climbing) ---

func (p *parser) parseExpr() (Term, error) { return p.parseAdditive() }

func (p *parser) parseAdditive() (Term, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokPlus || p.tok.Kind == TokMinus {
		op := OpAdd
		if p.tok.Kind == TokMinus {
			op = OpSub
		}
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Term, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokStar || p.tok.Kind == TokSlash || p.tok.Kind == TokPercentOp {
		var op ArithOp
		switch p.tok.Kind {
		case TokStar:
			op = OpMul
		case TokSlash:
			op = OpDiv
		default:
			op = OpMod
		}
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) parseUnary() (Term, error) {
	if p.tok.Kind == TokMinus {
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation of numeric constants.
		if c, ok := t.(*Const); ok && c.Val.IsNumeric() {
			if c.Val.Kind() == value.Int {
				return &Const{Val: value.NewInt(-c.Val.Int()), Pos: pos}, nil
			}
			return &Const{Val: value.NewFloat(-c.Val.Float()), Pos: pos}, nil
		}
		return &BinExpr{Op: OpNeg, L: t, Pos: pos}, nil
	}
	return p.parsePrimary()
}

var aggNames = map[string]AggKind{
	"COUNT": AggCount,
	"SUM":   AggSum,
	"MIN":   AggMin,
	"MAX":   AggMax,
	"AVG":   AggAvg,
}

func (p *parser) parsePrimary() (Term, error) {
	tok := p.tok
	switch tok.Kind {
	case TokNumber:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !strings.ContainsAny(tok.Text, ".eE") {
			n, err := strconv.ParseInt(tok.Text, 10, 64)
			if err == nil {
				return &Const{Val: value.NewInt(n), Pos: tok.Pos}, nil
			}
		}
		f, err := strconv.ParseFloat(tok.Text, 64)
		if err != nil {
			return nil, errf(tok.Pos, "bad number %q: %v", tok.Text, err)
		}
		return &Const{Val: value.NewFloat(f), Pos: tok.Pos}, nil
	case TokString:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Const{Val: value.NewString(tok.Text), Pos: tok.Pos}, nil
	case TokTrue, TokFalse:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Const{Val: value.NewBool(tok.Kind == TokTrue), Pos: tok.Pos}, nil
	case TokParam:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Param{Name: tok.Text, Pos: tok.Pos}, nil
	case TokVar:
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Aggregate call? COUNT(...) lexes as a variable followed by '('.
		if kind, ok := aggNames[tok.Text]; ok && p.tok.Kind == TokLParen {
			if err := p.advance(); err != nil {
				return nil, err
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return &Aggregate{Kind: kind, Arg: arg, Pos: tok.Pos}, nil
		}
		return &Var{Name: tok.Text, Pos: tok.Pos}, nil
	case TokIdent:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokLParen {
			if err := p.advance(); err != nil {
				return nil, err
			}
			c := &Call{Name: tok.Text, Pos: tok.Pos}
			if p.tok.Kind != TokRParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					c.Args = append(c.Args, a)
					if p.tok.Kind != TokComma {
						break
					}
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return c, nil
		}
		return nil, errf(tok.Pos, "bare identifier %q: predicates need arguments, variables start uppercase", tok.Text)
	case TokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return t, nil
	default:
		return nil, errf(tok.Pos, "unexpected %s %q in expression", tok.Kind, tok.Text)
	}
}
