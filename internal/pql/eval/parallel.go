package eval

import (
	"math"
	"sync"

	"ariadne/internal/pql"
	"ariadne/internal/value"
)

// Shard-parallel delta rounds.
//
// A parallel round splits the round's delta into P shards by each
// predicate's location column, runs one worker goroutine per shard against
// the frozen relations, and merges the workers' emissions back on the round
// goroutine in canonical order: rule, then shard index, then emission order.
// Workers never mutate relations — lazy index construction is the only
// write they can trigger, and Relation serializes it — so the phase
// alternation (parallel read-only evaluation, sequential merge) needs no
// further locking. The canonical merge makes the final relations, their
// insertion order, and the next round's delta independent of goroutine
// scheduling: a parallel run is tuple-for-tuple identical to itself at any
// worker count. (Versus the sequential evaluator the relations are
// set-identical; insertion order may differ because workers see one
// frozen-relation snapshot per round rather than mid-round inserts, so
// reporting goes through Relation.Sorted either way.)

// locShard maps a location value to a shard, reusing the engine's
// non-negative partition hash for integral ids so shard assignment matches
// the partition that owned the tuple during capture. Ints and numerically
// equal Floats shard identically (mirroring Tuple.Key normalization).
func locShard(v value.Value, p int) int {
	switch v.Kind() {
	case value.Int:
		return int(uint64(v.Int()) % uint64(p))
	case value.Float:
		f := v.Float()
		if f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
			return int(uint64(int64(f)) % uint64(p))
		}
	}
	var buf [16]byte
	return int(fnvSum(appendNorm(buf[:0], v)) % uint64(p))
}

// keyShard shards a tuple of an unlocated predicate by whole-tuple hash
// over the canonical encoding.
func keyShard(t Tuple, p int) int {
	var buf [64]byte
	b := buf[:0]
	for _, v := range t {
		b = appendNorm(b, v)
	}
	return int(fnvSum(b) % uint64(p))
}

// fnvSum is FNV-1a over b.
func fnvSum(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// shardOf returns t's home shard under the predicate's location column.
func (e *Evaluator) shardOf(pred string, t Tuple, p int) int {
	if lc, ok := e.locCols[pred]; ok && lc >= 0 && lc < len(t) {
		return locShard(t[lc], p)
	}
	return keyShard(t, p)
}

// emitted is one worker emission: the tuple and its canonical key (computed
// once in the worker, reused by the merge).
type emitted struct {
	key string
	t   Tuple
}

// parallelRound fans one delta round out to e.workers shards.
func (e *Evaluator) parallelRound(stratum []*pql.Rule, delta map[string][]Tuple) (map[string][]Tuple, error) {
	p := e.workers
	shards := make([]map[string][]Tuple, p)
	counts := make([]int, p)
	for i := range shards {
		shards[i] = map[string][]Tuple{}
	}
	for name, ts := range delta {
		for _, t := range ts {
			s := e.shardOf(name, t, p)
			shards[s][name] = append(shards[s][name], t)
			counts[s]++
		}
	}
	for _, n := range counts {
		if int64(n) > e.stats.maxShardDelta.Load() {
			e.stats.maxShardDelta.Store(int64(n))
		}
	}

	bufs := make([][][]emitted, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			bufs[w], errs[w] = e.workerRound(w, stratum, shards[w])
		}(w)
	}
	wg.Wait()
	for w := 0; w < p; w++ {
		if errs[w] != nil {
			return nil, errs[w]
		}
	}

	// Canonical merge: rule order, then shard index, then emission order.
	// This is the exchange step — a derived tuple lands in the global
	// relation (and next round's delta) regardless of which shard derived
	// it; tuples whose home shard differs from the deriving worker are the
	// cross-shard exchange volume.
	derived := map[string][]Tuple{}
	for ri, r := range stratum {
		pred := r.Head.Pred
		head := e.db.Relation(pred, len(r.Head.Args))
		for w := 0; w < p; w++ {
			for _, em := range bufs[w][ri] {
				if head.InsertKeyed(em.key, em.t) {
					derived[pred] = append(derived[pred], em.t)
					e.stats.derivations.Add(1)
					if e.shardOf(pred, em.t, p) != w {
						e.stats.exchanged.Add(1)
					}
				}
			}
		}
	}
	return derived, nil
}

// workerRound evaluates every rule of the stratum against one shard of the
// delta, buffering emissions per rule. Relations are frozen: the worker
// filters against the head relation read-only and dedups its own emissions,
// leaving cross-worker dedup to the merge.
func (e *Evaluator) workerRound(w int, stratum []*pql.Rule, delta map[string][]Tuple) ([][]emitted, error) {
	bufs := make([][]emitted, len(stratum))
	seen := map[string]map[string]struct{}{}
	rn := &slotRun{db: e.db}
	for ri, r := range stratum {
		plan := e.plans[r]
		head := e.db.Get(r.Head.Pred)
		predSeen := seen[r.Head.Pred]
		if predSeen == nil {
			predSeen = map[string]struct{}{}
			seen[r.Head.Pred] = predSeen
		}
		emit := func(t Tuple) error {
			k := t.Key()
			if head != nil && head.ContainsKey(k) {
				return nil
			}
			if _, dup := predSeen[k]; dup {
				return nil
			}
			predSeen[k] = struct{}{}
			bufs[ri] = append(bufs[ri], emitted{key: k, t: t})
			return nil
		}

		if plan.factPlan != nil {
			// Fact rules have no delta literal; they fire on one worker so
			// the merge sees each unconditional derivation exactly once.
			if w != 0 {
				continue
			}
			if sv := e.slotFacts[r]; sv != nil {
				rn.prep(sv, nil, emit)
				if err := sv.run(rn, 0); err != nil {
					return nil, err
				}
			} else if err := e.joinFrom(plan.factPlan.steps, 0, binding{}, -1, nil, e.headEmit(r, emit)); err != nil {
				return nil, err
			}
			continue
		}
		svs := e.slots[r]
		for vi, v := range plan.variants {
			dts := delta[plan.positivePreds[vi]]
			if len(dts) == 0 {
				continue
			}
			if svs != nil && svs[vi] != nil {
				sv := svs[vi]
				rn.prep(sv, dts, emit)
				if err := sv.run(rn, 0); err != nil {
					return nil, err
				}
			} else if err := e.joinFrom(v.steps, 0, binding{}, v.deltaStep, dts, e.headEmit(r, emit)); err != nil {
				return nil, err
			}
		}
	}
	return bufs, nil
}
