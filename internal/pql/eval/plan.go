package eval

import (
	"fmt"

	"ariadne/internal/pql"
)

type stepKind uint8

const (
	stepPositive stepKind = iota
	stepNegated
	stepCompare
)

type planStep struct {
	kind stepKind
	atom *pql.Atom   // positive / negated
	cmp  *pql.CmpLit // compare
}

// planVariant is one execution order for a rule body. Semi-naive evaluation
// uses one variant per positive literal: that literal (the delta) is joined
// first, so each delta round costs O(|delta| × indexed lookups) instead of
// re-enumerating full relations.
type planVariant struct {
	steps []planStep
	// deltaStep is the index in steps of the delta literal, or -1.
	deltaStep int
}

// rulePlan is the prepared execution strategy for one rule.
type rulePlan struct {
	// variants[i] drives the delta through the i-th positive body literal.
	variants []*planVariant
	// positivePreds[i] is the predicate of the i-th positive literal.
	positivePreds []string
	// factPlan is the natural-order plan used when the body has no positive
	// literals (fact rules).
	factPlan *planVariant

	// Aggregate metadata (heads with COUNT/SUM/MIN/MAX/AVG).
	aggregates bool
	groupCols  []int
	aggCols    []int
	aggKinds   []pql.AggKind
	aggArgs    []pql.Term
	// bodyVars lists all body-bound variables, sorted, for SUM/AVG
	// valuation deduplication.
	bodyVars []string
}

func planRule(r *pql.Rule) (*rulePlan, error) {
	p := &rulePlan{}

	var positives []*pql.PredLit
	for _, lit := range r.Body {
		if pl, ok := lit.(*pql.PredLit); ok && !pl.Negated {
			positives = append(positives, pl)
			p.positivePreds = append(p.positivePreds, pl.Atom.Pred)
		}
	}

	if len(positives) == 0 {
		v, err := orderBody(r, nil)
		if err != nil {
			return nil, err
		}
		p.factPlan = v
	}
	for _, deltaLit := range positives {
		v, err := orderBody(r, deltaLit)
		if err != nil {
			return nil, err
		}
		p.variants = append(p.variants, v)
	}

	// Classify head columns.
	for i, a := range r.Head.Args {
		if agg, ok := a.(*pql.Aggregate); ok {
			p.aggregates = true
			p.aggCols = append(p.aggCols, i)
			p.aggKinds = append(p.aggKinds, agg.Kind)
			p.aggArgs = append(p.aggArgs, agg.Arg)
			continue
		}
		if containsAgg(a) {
			return nil, fmt.Errorf("pql: %s: aggregates must be top-level head arguments", r.Pos)
		}
		p.groupCols = append(p.groupCols, i)
	}
	if len(p.aggCols) > 1 {
		return nil, fmt.Errorf("pql: %s: at most one aggregate per rule head (split into multiple rules)", r.Pos)
	}

	seen := map[string]bool{}
	for _, lit := range r.Body {
		pl, ok := lit.(*pql.PredLit)
		if !ok || pl.Negated {
			continue
		}
		var vs []*pql.Var
		for _, a := range pl.Atom.Args {
			vs = pql.Vars(a, vs)
		}
		for _, v := range vs {
			if !v.Wildcard() && !seen[v.Name] {
				seen[v.Name] = true
				p.bodyVars = append(p.bodyVars, v.Name)
			}
		}
	}
	sortStrings(p.bodyVars)
	return p, nil
}

// orderBody orders the rule body with deltaLit (may be nil) first, then
// greedily: comparisons and negations as soon as their variables are bound,
// and among the remaining positive atoms the one sharing the most bound
// variables (so indexed lookups apply).
func orderBody(r *pql.Rule, deltaLit *pql.PredLit) (*planVariant, error) {
	v := &planVariant{deltaStep: -1}
	bound := map[string]bool{}

	bindAtomVars := func(a *pql.Atom) {
		var vs []*pql.Var
		for _, arg := range a.Args {
			vs = pql.Vars(arg, vs)
		}
		for _, vv := range vs {
			if !vv.Wildcard() {
				bound[vv.Name] = true
			}
		}
	}

	remaining := make([]pql.Literal, 0, len(r.Body))
	for _, lit := range r.Body {
		if pl, ok := lit.(*pql.PredLit); ok && pl == deltaLit {
			v.deltaStep = len(v.steps)
			v.steps = append(v.steps, planStep{kind: stepPositive, atom: pl.Atom})
			bindAtomVars(pl.Atom)
			continue
		}
		remaining = append(remaining, lit)
	}

	bindable := func(lit pql.Literal) bool {
		switch lit := lit.(type) {
		case *pql.CmpLit:
			lg := staticGround(lit.L, bound)
			rg := staticGround(lit.R, bound)
			if lg && rg {
				return true
			}
			if lit.Op != pql.CmpEq {
				return false
			}
			if vv, ok := lit.L.(*pql.Var); ok && !vv.Wildcard() && !bound[vv.Name] && rg {
				return true
			}
			if vv, ok := lit.R.(*pql.Var); ok && !vv.Wildcard() && !bound[vv.Name] && lg {
				return true
			}
			return false
		case *pql.PredLit:
			if !lit.Negated {
				return false
			}
			for _, a := range lit.Atom.Args {
				if !staticGround(a, bound) {
					return false
				}
			}
			return true
		}
		return false
	}

	take := func(i int) pql.Literal {
		lit := remaining[i]
		remaining = append(remaining[:i], remaining[i+1:]...)
		return lit
	}

	for len(remaining) > 0 {
		// 1. Schedule every currently bindable filter/binder/negation.
		progress := true
		for progress {
			progress = false
			for i := 0; i < len(remaining); i++ {
				lit := remaining[i]
				if !bindable(lit) {
					continue
				}
				switch lit := take(i).(type) {
				case *pql.CmpLit:
					v.steps = append(v.steps, planStep{kind: stepCompare, cmp: lit})
					if lit.Op == pql.CmpEq {
						if vv, ok := lit.L.(*pql.Var); ok && !vv.Wildcard() {
							bound[vv.Name] = true
						}
						if vv, ok := lit.R.(*pql.Var); ok && !vv.Wildcard() {
							bound[vv.Name] = true
						}
					}
				case *pql.PredLit:
					v.steps = append(v.steps, planStep{kind: stepNegated, atom: lit.Atom})
				}
				progress = true
				i--
			}
		}
		if len(remaining) == 0 {
			break
		}
		// 2. Pick the positive atom sharing the most bound variables.
		bestIdx, bestScore := -1, -1
		for i, lit := range remaining {
			pl, ok := lit.(*pql.PredLit)
			if !ok || pl.Negated {
				continue
			}
			score := 0
			var vs []*pql.Var
			for _, a := range pl.Atom.Args {
				vs = pql.Vars(a, vs)
			}
			for _, vv := range vs {
				if !vv.Wildcard() && bound[vv.Name] {
					score++
				}
			}
			if score > bestScore {
				bestIdx, bestScore = i, score
			}
		}
		if bestIdx < 0 {
			// Safety analysis should have rejected this.
			return nil, fmt.Errorf("pql: %s: cannot order rule body (unresolvable literals)", r.Pos)
		}
		pl := take(bestIdx).(*pql.PredLit)
		v.steps = append(v.steps, planStep{kind: stepPositive, atom: pl.Atom})
		bindAtomVars(pl.Atom)
	}
	return v, nil
}

func staticGround(t pql.Term, bound map[string]bool) bool {
	var vs []*pql.Var
	vs = pql.Vars(t, vs)
	for _, v := range vs {
		if v.Wildcard() || !bound[v.Name] {
			return false
		}
	}
	return true
}

func containsAgg(t pql.Term) bool {
	switch t := t.(type) {
	case *pql.Aggregate:
		return true
	case *pql.BinExpr:
		if containsAgg(t.L) {
			return true
		}
		return t.R != nil && containsAgg(t.R)
	case *pql.Call:
		for _, a := range t.Args {
			if containsAgg(a) {
				return true
			}
		}
	}
	return false
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
