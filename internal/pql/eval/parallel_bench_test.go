package eval

import (
	"fmt"
	"testing"

	"ariadne/internal/pql"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/value"
)

// benchEvalSrc is a forward-recursive reachability program shaped like the
// paper's lineage queries: a guarded recursive join over receive_message
// plus an arithmetic binder and a comparison filter. VC-compatible, so the
// parallel evaluator shards it by the location column.
const benchEvalSrc = `
reach(X, I) :- seed(X, I).
reach(X, I) :- receive_message(X, Y, M, I), reach(Y, J), I = J + 1.
hot(X, I) :- reach(X, I), X > 10.
pair(X, Y, S, I) :- reach(X, I), receive_message(X, Y, M, I), M > 0, S = X + Y.
tri(X, Z, I) :- reach(X, I), receive_message(X, Y, M, I),
                receive_message(Y, Z, M2, I), Z > X.
`

// benchEvalFacts builds a ring topology: at each superstep every vertex
// hears from its predecessor, so reach advances one full wavefront (n
// tuples, comfortably above the parallel cutoff) per delta round.
func benchEvalFacts(n, steps int) (seeds, recvs []Tuple) {
	msg := value.NewFloat(1.5)
	for v := 0; v < n; v++ {
		seeds = append(seeds, Tuple{value.NewInt(int64(v)), value.NewInt(0)})
	}
	for i := 1; i <= steps; i++ {
		ss := value.NewInt(int64(i))
		for v := 0; v < n; v++ {
			prev := value.NewInt(int64((v + 1) % n))
			recvs = append(recvs, Tuple{value.NewInt(int64(v)), prev, msg, ss})
		}
	}
	return seeds, recvs
}

// BenchmarkParallelEval times the evaluation phase only (fact ingestion and
// evaluator construction sit outside the timer): the sequential leg is the
// seed map-based interpreter, the parallel legs run shard-parallel delta
// rounds over the slot-compiled programs. benchjson derives
// eval_phase_speedup from the sequential/parallel8 ns/op ratio.
func BenchmarkParallelEval(b *testing.B) {
	const n, steps = 512, 16
	prog, err := pql.Parse(benchEvalSrc)
	if err != nil {
		b.Fatal(err)
	}
	seeds, recvs := benchEvalFacts(n, steps)
	run := func(b *testing.B, workers int) {
		var derived int64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			env := analysis.NewEnv()
			env.DeclareEDB("seed", 2)
			q, err := analysis.Analyze(prog, env)
			if err != nil {
				b.Fatal(err)
			}
			db := NewDatabase()
			ev, err := NewEvaluator(q, db)
			if err != nil {
				b.Fatal(err)
			}
			ev.SetWorkers(workers)
			for _, t := range seeds {
				ev.AddFact("seed", t)
			}
			for _, t := range recvs {
				ev.AddFact("receive_message", t)
			}
			b.StartTimer()
			if err := ev.Fixpoint(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			s := ev.Stats()
			derived = s.Derivations
			if workers > 1 && s.ParallelRounds == 0 {
				b.Fatal("parallel leg ran no parallel rounds")
			}
			b.StartTimer()
		}
		b.ReportMetric(float64(derived)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
	}
	b.Run("sequential", func(b *testing.B) { run(b, 1) })
	for _, w := range []int{2, 8} {
		b.Run(fmt.Sprintf("parallel%d", w), func(b *testing.B) { run(b, w) })
	}
}
