package eval

import (
	"errors"
	"fmt"

	"ariadne/internal/pql"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/value"
)

// This file implements the paper's query compiler (§4: "ARIADNE
// incorporates a compiler that maps query evaluation to vertex programs";
// §2.2: "ARIADNE compiles this query into a provenance query vertex
// program"). A compiled query evaluates its rules directly against each
// vertex's transient provenance record — value, previous value (evolution),
// messages, emitted facts, static edges — without materializing any EDB
// tuples in the Datalog database. Only derived (IDB) tuples are stored.
// This is what makes online evaluation cheap: the per-record work is a few
// closure calls instead of tuple construction, hashing, and join indexing.
//
// Not every PQL query compiles: aggregates, remote EDB access, and
// unrestricted cross-layer joins fall back to the interpretive evaluator
// (the drivers handle the fallback transparently).

// ErrNotCompilable reports that a query needs the interpretive evaluator.
var ErrNotCompilable = errors.New("pql: query is not compilable to a vertex program")

func notCompilable(pos pql.Pos, format string, args ...any) error {
	return fmt.Errorf("%w: %s: %s", ErrNotCompilable, pos, fmt.Sprintf(format, args...))
}

// MsgView is one message endpoint of a record under compiled evaluation.
type MsgView struct {
	Peer int64
	Val  value.Value
}

// FactView is one emitted analytic fact of a record.
type FactView struct {
	Table string
	Args  []value.Value
}

// RecordView is the compiled evaluator's view of one provenance record —
// the transient state a query vertex program reads.
type RecordView struct {
	Vertex    int64
	Superstep int64
	HasValue  bool
	Value     value.Value
	// PrevActive/PrevValue realize the evolution edge (retention).
	PrevActive   int64 // -1 if none
	PrevValue    value.Value
	HasPrevValue bool
	SentAny      bool
	Sends        []MsgView
	Recvs        []MsgView
	Emitted      []FactView

	// embIdx lazily indexes Emitted by (table, first-argument) so compiled
	// joins between emitted tables (e.g. Query 7's prov_error with
	// prov_prediction on the same neighbor) cost O(deg) instead of O(deg²).
	embIdx map[string]map[string][]int
}

// factsByFirstArg returns the indices of emitted facts of the given table
// keyed by their first argument, building the index on first use.
func (rv *RecordView) factsByFirstArg(table string) map[string][]int {
	if rv.embIdx == nil {
		rv.embIdx = map[string]map[string][]int{}
	}
	idx, ok := rv.embIdx[table]
	if !ok {
		idx = map[string][]int{}
		for i := range rv.Emitted {
			f := &rv.Emitted[i]
			if f.Table != table || len(f.Args) == 0 {
				continue
			}
			k := Tuple{f.Args[0]}.Key()
			idx[k] = append(idx[k], i)
		}
		rv.embIdx[table] = idx
	}
	return idx
}

// StaticGraph exposes the input graph to compiled edge/edge_value literals.
type StaticGraph interface {
	NumVertices() int
	// OutNeighbors returns destinations and weights of v's out-edges.
	OutNeighbors(v int64) ([]int64, []float64)
	// InNeighbors returns sources of v's in-edges (nil if unavailable).
	InNeighbors(v int64) []int64
	// EdgeWeight returns the weight of edge src->dst if present.
	EdgeWeight(src, dst int64) (float64, bool)
}

// Compiled is a query compiled to per-record vertex-program closures.
type Compiled struct {
	q  *analysis.Query
	db *Database
	sg StaticGraph

	// strata[i] holds the compiled rules of stratum i.
	strata [][]*crule

	staticDone bool
	derived    int64
	records    int64
}

// crule is one compiled rule.
type crule struct {
	src  *pql.Rule
	kind ruleKind
	// steps is the CPS chain; each step binds/filters and calls the next.
	steps []cstep
	// Global rules are driven by the new tuples of one IDB relation
	// (semi-naive): drivePred names it, driveMatch binds a driving tuple,
	// and driveCursor tracks the insertion-order position already consumed.
	drivePred   string
	driveMatch  []argMatcher
	driveCursor int
	// head builds and inserts the head tuple from the slot bindings.
	headPred  string
	headArity int
	headArgs  []termFn
	nslots    int

	// Reusable single-threaded evaluation scratch (see Compiled.scratch).
	scratchSlots *slots
	scratchEmit  func() error
}

type ruleKind uint8

const (
	ruleRecord ruleKind = iota // anchored at each record
	ruleGlobal                 // driven by a full scan of its first IDB
	ruleStatic                 // only static EDBs: evaluated once
)

// slots is the compiled binding environment: values plus a bound mask.
type slots struct {
	val   []value.Value
	bound []bool
}

// cstep executes one literal: it may bind slots, and calls k for each match
// (restoring bindings afterwards).
type cstep func(rv *RecordView, s *slots, k func() error) error

// termFn evaluates a term under slot bindings.
type termFn func(s *slots) (value.Value, error)

// Compile compiles an analyzed query. Returns ErrNotCompilable (wrapped)
// when the query requires the interpretive evaluator.
func Compile(q *analysis.Query, db *Database, sg StaticGraph) (*Compiled, error) {
	c := &Compiled{q: q, db: db, sg: sg, strata: make([][]*crule, len(q.Strata))}
	for name, arity := range q.IDBs {
		db.Relation(name, arity)
	}
	globalHeads := map[string]bool{}
	for si, stratum := range q.Strata {
		for _, r := range stratum {
			cr, err := compileRule(r, q, db, sg)
			if err != nil {
				return nil, err
			}
			if cr.kind == ruleGlobal {
				globalHeads[cr.headPred] = true
			}
			c.strata[si] = append(c.strata[si], cr)
		}
	}
	// Soundness guard: record rules re-evaluate per record, so they must
	// not consume predicates whose tuples may appear without a matching
	// record (global-rule heads complete only at FinishRun).
	for _, stratum := range c.strata {
		for _, cr := range stratum {
			if cr.kind != ruleRecord {
				continue
			}
			for _, lit := range cr.src.Body {
				if pl, ok := lit.(*pql.PredLit); ok && globalHeads[pl.Atom.Pred] {
					return nil, notCompilable(cr.src.Pos, "record rule consumes global predicate %s", pl.Atom.Pred)
				}
			}
		}
	}
	return c, nil
}

// DerivedTuples returns how many head tuples were inserted.
func (c *Compiled) DerivedTuples() int64 { return c.derived }

// Records returns how many records were processed.
func (c *Compiled) Records() int64 { return c.records }

// BeginRun evaluates the static rules (bodies over static EDBs only).
func (c *Compiled) BeginRun() error {
	if c.staticDone {
		return nil
	}
	c.staticDone = true
	for _, stratum := range c.strata {
		for _, r := range stratum {
			if r.kind != ruleStatic {
				continue
			}
			if err := c.evalRule(r, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// Layer evaluates one provenance layer's records: every stratum in order,
// iterating to an in-layer fixpoint (recursive rules).
func (c *Compiled) Layer(recs []RecordView) error {
	if err := c.BeginRun(); err != nil {
		return err
	}
	c.records += int64(len(recs))
	for _, stratum := range c.strata {
		for {
			before := c.derived
			for _, r := range stratum {
				switch r.kind {
				case ruleStatic:
					// done in BeginRun
				case ruleGlobal:
					if err := c.evalGlobal(r); err != nil {
						return err
					}
				default:
					for i := range recs {
						if err := c.evalRule(r, &recs[i]); err != nil {
							return err
						}
					}
				}
			}
			if c.derived == before {
				break
			}
		}
	}
	return nil
}

// FinishRun completes evaluation after the last layer: global rules rescan
// their driving relations in full once, catching any cross-layer
// compositions their incremental passes could not see.
func (c *Compiled) FinishRun() error {
	for _, stratum := range c.strata {
		for {
			before := c.derived
			for _, r := range stratum {
				if r.kind != ruleGlobal {
					continue
				}
				r.driveCursor = 0
				if err := c.evalGlobal(r); err != nil {
					return err
				}
			}
			if c.derived == before {
				break
			}
		}
	}
	return nil
}

// evalGlobal runs a global rule over the driving relation's tuples that
// arrived since the rule's last pass.
func (c *Compiled) evalGlobal(r *crule) error {
	rel := c.db.Get(r.drivePred)
	if rel == nil {
		return nil
	}
	all := rel.All()
	if r.driveCursor >= len(all) {
		return nil
	}
	s, emit := c.scratch(r)
	for i := range s.bound {
		s.bound[i] = false
	}
	start := r.driveCursor
	r.driveCursor = len(all)
	for _, t := range all[start:] {
		if err := matchAll(s, r.driveMatch, t, 0, func() error {
			return runSteps(r.steps, 0, nil, s, emit)
		}); err != nil {
			return err
		}
	}
	return nil
}

// scratch returns the rule's reusable evaluation state (evaluation is
// single-threaded: it runs at the superstep barrier).
func (c *Compiled) scratch(r *crule) (*slots, func() error) {
	if r.scratchSlots == nil {
		s := &slots{val: make([]value.Value, r.nslots), bound: make([]bool, r.nslots)}
		head := c.db.Relation(r.headPred, r.headArity)
		r.scratchSlots = s
		r.scratchEmit = func() error {
			t := make(Tuple, r.headArity)
			for i, fn := range r.headArgs {
				v, err := fn(s)
				if err != nil {
					return err
				}
				t[i] = v
			}
			if head.Insert(t) {
				c.derived++
			}
			return nil
		}
	}
	return r.scratchSlots, r.scratchEmit
}

// evalRule runs one compiled rule over one record (or globally when rv is
// nil for global/static rules).
func (c *Compiled) evalRule(r *crule, rv *RecordView) error {
	s, emit := c.scratch(r)
	for i := range s.bound {
		s.bound[i] = false
	}
	return runSteps(r.steps, 0, rv, s, emit)
}

func runSteps(steps []cstep, i int, rv *RecordView, s *slots, emit func() error) error {
	if i == len(steps) {
		return emit()
	}
	return steps[i](rv, s, func() error {
		return runSteps(steps, i+1, rv, s, emit)
	})
}
