package eval

import (
	"fmt"
	"math"

	"ariadne/internal/pql"
	"ariadne/internal/value"
)

// Aggregation semantics (paper §4.2 supports min, max, sum, count):
//
//   - COUNT(Y) counts *distinct values* of Y per group — the natural Datalog
//     set semantics, and what the paper's degree(x, COUNT(y)) intends
//     (number of distinct message partners).
//   - SUM/AVG fold over distinct *body valuations* per group, so two
//     different neighbors contributing the same error both count.
//   - MIN/MAX are monotone lattice folds; no deduplication is needed.
//
// Aggregate results live in a later stratum than both their inputs and
// their consumers (see analysis.stratify), and groups are *replaced* as
// their inputs grow across layers: during layered/online evaluation a group
// reflects the snapshot at the current layer, which matches the paper's
// always-on monitoring semantics.

type aggState struct {
	count   int64
	sum     float64
	min     float64
	max     float64
	seen    map[string]bool // dedup keys (per COUNT arg or per valuation)
	current Tuple           // head tuple currently in the relation, or nil
}

type aggTable struct {
	plan   *rulePlan
	groups map[string]*aggState
}

func newAggTable(plan *rulePlan) *aggTable {
	return &aggTable{plan: plan, groups: map[string]*aggState{}}
}

// evalAggRule fires an aggregate rule: enumerate new satisfying valuations
// (delta-driven), fold them into group states, and replace changed head
// tuples.
func (e *Evaluator) evalAggRule(r *pql.Rule, plan *rulePlan, delta map[string][]Tuple, derived map[string][]Tuple) error {
	table := e.aggs[r.Head.Pred]
	head := e.db.Relation(r.Head.Pred, len(r.Head.Args))
	touched := map[string]bool{}

	fold := func(b binding) error {
		// Group key from grouping head args.
		groupVals := make([]value.Value, len(plan.groupCols))
		for i, c := range plan.groupCols {
			v, err := evalTerm(r.Head.Args[c], b, e.env)
			if err != nil {
				return err
			}
			groupVals[i] = v
		}
		gk := Tuple(groupVals).Key()
		st, ok := table.groups[gk]
		if !ok {
			st = &aggState{min: math.Inf(1), max: math.Inf(-1), seen: map[string]bool{}}
			table.groups[gk] = st
		}
		// Fold each aggregate column.
		for ai, arg := range plan.aggArgs {
			v, err := evalTerm(arg, b, e.env)
			if err != nil {
				return err
			}
			kind := plan.aggKinds[ai]
			switch kind {
			case pql.AggCount:
				key := fmt.Sprintf("c%d|", ai) + Tuple{v}.Key()
				if st.seen[key] {
					continue
				}
				st.seen[key] = true
				st.count++
				touched[gk] = true
			case pql.AggSum, pql.AggAvg:
				// Dedup on the full body valuation.
				val := make(Tuple, 0, len(plan.bodyVars))
				for _, name := range plan.bodyVars {
					val = append(val, b[name])
				}
				key := fmt.Sprintf("s%d|", ai) + val.Key()
				if st.seen[key] {
					continue
				}
				st.seen[key] = true
				if !v.IsNumeric() {
					return fmt.Errorf("pql: %s: %s needs numeric input, got %s", r.Pos, kind, v.Kind())
				}
				st.sum += v.Float()
				st.count++
				touched[gk] = true
			case pql.AggMin:
				if !v.IsNumeric() {
					return fmt.Errorf("pql: %s: MIN needs numeric input, got %s", r.Pos, v.Kind())
				}
				if v.Float() < st.min {
					st.min = v.Float()
					touched[gk] = true
				}
			case pql.AggMax:
				if !v.IsNumeric() {
					return fmt.Errorf("pql: %s: MAX needs numeric input, got %s", r.Pos, v.Kind())
				}
				if v.Float() > st.max {
					st.max = v.Float()
					touched[gk] = true
				}
			}
		}
		// Remember the group values for tuple construction.
		if st.current == nil {
			st.current = make(Tuple, len(r.Head.Args))
			for i, c := range plan.groupCols {
				st.current[c] = groupVals[i]
			}
			for _, c := range plan.aggCols {
				st.current[c] = value.NullValue
			}
		}
		return nil
	}

	if len(plan.variants) == 0 {
		return fmt.Errorf("pql: %s: aggregate rule needs a body", r.Pos)
	}
	for vi, v := range plan.variants {
		dts := delta[plan.positivePreds[vi]]
		if len(dts) == 0 {
			continue
		}
		if err := e.joinFrom(v.steps, 0, binding{}, v.deltaStep, dts, fold); err != nil {
			return err
		}
	}

	// Replace head tuples for changed groups.
	for gk := range touched {
		st := table.groups[gk]
		old := append(Tuple(nil), st.current...)
		hadResult := false
		for _, c := range plan.aggCols {
			if !st.current[c].IsNull() {
				hadResult = true
			}
		}
		for i, c := range plan.aggCols {
			switch plan.aggKinds[i] {
			case pql.AggCount:
				st.current[c] = value.NewInt(st.count)
			case pql.AggSum:
				st.current[c] = value.NewFloat(st.sum)
			case pql.AggAvg:
				st.current[c] = value.NewFloat(st.sum / float64(st.count))
			case pql.AggMin:
				st.current[c] = value.NewFloat(st.min)
			case pql.AggMax:
				st.current[c] = value.NewFloat(st.max)
			}
		}
		if hadResult {
			head.Delete(old)
		}
		t := append(Tuple(nil), st.current...)
		if head.Insert(t) {
			derived[r.Head.Pred] = append(derived[r.Head.Pred], t)
			e.stats.derivations.Add(1)
		}
	}
	return nil
}
