package eval

import (
	"strings"
	"testing"

	"ariadne/internal/pql"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/value"
)

func mkEval(t *testing.T, src string, env *analysis.Env) (*Evaluator, *Database) {
	t.Helper()
	prog, err := pql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := analysis.Analyze(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	e, err := NewEvaluator(q, db)
	if err != nil {
		t.Fatal(err)
	}
	return e, db
}

func ints(vs ...int64) Tuple {
	t := make(Tuple, len(vs))
	for i, v := range vs {
		t[i] = value.NewInt(v)
	}
	return t
}

func TestRelationBasics(t *testing.T) {
	r := NewRelation(2)
	if !r.Insert(ints(1, 2)) || r.Insert(ints(1, 2)) {
		t.Error("insert/dedup wrong")
	}
	// Int/float numeric identity.
	if r.Insert(Tuple{value.NewFloat(1), value.NewFloat(2)}) {
		t.Error("1.0,2.0 should dedup against 1,2")
	}
	r.Insert(ints(1, 3))
	r.Insert(ints(2, 3))
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	got := r.Lookup([]int{0}, []value.Value{value.NewInt(1)})
	if len(got) != 2 {
		t.Errorf("lookup col0=1: %d tuples", len(got))
	}
	// Index maintained across later inserts.
	r.Insert(ints(1, 9))
	got = r.Lookup([]int{0}, []value.Value{value.NewInt(1)})
	if len(got) != 3 {
		t.Errorf("after insert, lookup col0=1: %d tuples", len(got))
	}
	if !r.Delete(ints(1, 9)) || r.Delete(ints(1, 9)) {
		t.Error("delete wrong")
	}
	got = r.Lookup([]int{0}, []value.Value{value.NewInt(1)})
	if len(got) != 2 {
		t.Errorf("after delete, lookup: %d tuples", len(got))
	}
	if len(r.Sorted()) != 3 {
		t.Error("sorted wrong")
	}
}

func TestSimpleJoin(t *testing.T) {
	// Transitive one-hop: reach(X, Z) via two superstep-ish tables.
	env := analysis.NewEnv()
	env.DeclareEDB("p", 2)
	env.DeclareEDB("q", 2)
	e, _ := mkEval(t, `r(X, Z) :- p(X, Y), q(Y, Z).`, env)
	e.AddFact("p", ints(1, 2))
	e.AddFact("p", ints(1, 3))
	e.AddFact("q", ints(2, 10))
	e.AddFact("q", ints(3, 30))
	e.AddFact("q", ints(4, 40))
	if err := e.Fixpoint(); err != nil {
		t.Fatal(err)
	}
	res := e.Result("r")
	if res.Len() != 2 {
		t.Fatalf("r has %d tuples: %v", res.Len(), res.All())
	}
	if !res.Contains(ints(1, 10)) || !res.Contains(ints(1, 30)) {
		t.Errorf("r = %v", res.All())
	}
}

func TestRecursionTransitiveClosure(t *testing.T) {
	env := analysis.NewEnv()
	e, _ := mkEval(t, `
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).`, env)
	for _, ed := range [][2]int64{{1, 2}, {2, 3}, {3, 4}, {5, 6}} {
		e.AddFact("edge", ints(ed[0], ed[1]))
	}
	if err := e.Fixpoint(); err != nil {
		t.Fatal(err)
	}
	res := e.Result("reach")
	want := [][2]int64{{1, 2}, {2, 3}, {3, 4}, {5, 6}, {1, 3}, {2, 4}, {1, 4}}
	if res.Len() != len(want) {
		t.Fatalf("reach has %d tuples, want %d: %v", res.Len(), len(want), res.All())
	}
	for _, w := range want {
		if !res.Contains(ints(w[0], w[1])) {
			t.Errorf("missing reach(%d,%d)", w[0], w[1])
		}
	}
}

func TestIncrementalFixpoint(t *testing.T) {
	// Layered-style: facts arrive in batches; results accumulate.
	env := analysis.NewEnv()
	e, _ := mkEval(t, `
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).`, env)
	e.AddFact("edge", ints(1, 2))
	if err := e.Fixpoint(); err != nil {
		t.Fatal(err)
	}
	if e.Result("reach").Len() != 1 {
		t.Fatalf("after batch 1: %v", e.Result("reach").All())
	}
	e.AddFact("edge", ints(2, 3))
	if err := e.Fixpoint(); err != nil {
		t.Fatal(err)
	}
	res := e.Result("reach")
	if res.Len() != 3 || !res.Contains(ints(1, 3)) {
		t.Fatalf("after batch 2: %v", res.All())
	}
	// Duplicate fact: no new derivations.
	before := e.Stats().Derivations
	e.AddFact("edge", ints(2, 3))
	if err := e.Fixpoint(); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Derivations != before {
		t.Error("duplicate facts must not rederive")
	}
}

func TestNegationStratified(t *testing.T) {
	env := analysis.NewEnv()
	env.DeclareEDB("node", 1)
	e, _ := mkEval(t, `
has_out(X) :- edge(X, Y).
sink(X) :- node(X), !has_out(X).`, env)
	e.AddFact("node", ints(1))
	e.AddFact("node", ints(2))
	e.AddFact("node", ints(3))
	e.AddFact("edge", ints(1, 2))
	e.AddFact("edge", ints(2, 3))
	if err := e.Fixpoint(); err != nil {
		t.Fatal(err)
	}
	res := e.Result("sink")
	if res.Len() != 1 || !res.Contains(ints(3)) {
		t.Errorf("sink = %v", res.All())
	}
}

func TestComparisonsAndArithmetic(t *testing.T) {
	env := analysis.NewEnv()
	env.DeclareEDB("n", 2)
	e, _ := mkEval(t, `
big(X, Y2) :- n(X, Y), Y > 10, Y2 = Y * 2 + 1.
mid(X) :- n(X, Y), Y >= 5, Y <= 10, Y != 7.`, env)
	e.AddFact("n", ints(1, 11))
	e.AddFact("n", ints(2, 5))
	e.AddFact("n", ints(3, 7))
	e.AddFact("n", ints(4, 10))
	if err := e.Fixpoint(); err != nil {
		t.Fatal(err)
	}
	if b := e.Result("big"); b.Len() != 1 || !b.Contains(ints(1, 23)) {
		t.Errorf("big = %v", b.All())
	}
	if m := e.Result("mid"); m.Len() != 2 || !m.Contains(ints(2)) || !m.Contains(ints(4)) {
		t.Errorf("mid = %v", m.All())
	}
}

func TestUDFInBody(t *testing.T) {
	env := analysis.NewEnv()
	env.DeclareEDB("pair", 3)
	env.SetParam("eps", value.NewFloat(0.5))
	e, _ := mkEval(t, `close(X) :- pair(X, A, B), udf_diff(A, B, $eps).`, env)
	add := func(x int64, a, b float64) {
		e.AddFact("pair", Tuple{value.NewInt(x), value.NewFloat(a), value.NewFloat(b)})
	}
	add(1, 1.0, 1.2)
	add(2, 1.0, 3.0)
	if err := e.Fixpoint(); err != nil {
		t.Fatal(err)
	}
	res := e.Result("close")
	if res.Len() != 1 || !res.Contains(ints(1)) {
		t.Errorf("close = %v", res.All())
	}
}

func TestCountDistinct(t *testing.T) {
	env := analysis.NewEnv()
	e, _ := mkEval(t, `in_degree(X, COUNT(Y)) :- edge(Y, X).`, env)
	e.AddFact("edge", ints(1, 9))
	e.AddFact("edge", ints(2, 9))
	e.AddFact("edge", ints(2, 9)) // duplicate fact
	e.AddFact("edge", ints(3, 8))
	if err := e.Fixpoint(); err != nil {
		t.Fatal(err)
	}
	res := e.Result("in_degree")
	if !res.Contains(ints(9, 2)) || !res.Contains(ints(8, 1)) {
		t.Errorf("in_degree = %v", res.All())
	}
	if res.Len() != 2 {
		t.Errorf("len = %d", res.Len())
	}
}

func TestAggregateReplacementAcrossBatches(t *testing.T) {
	env := analysis.NewEnv()
	e, _ := mkEval(t, `in_degree(X, COUNT(Y)) :- edge(Y, X).`, env)
	e.AddFact("edge", ints(1, 9))
	if err := e.Fixpoint(); err != nil {
		t.Fatal(err)
	}
	if !e.Result("in_degree").Contains(ints(9, 1)) {
		t.Fatalf("first batch: %v", e.Result("in_degree").All())
	}
	e.AddFact("edge", ints(2, 9))
	if err := e.Fixpoint(); err != nil {
		t.Fatal(err)
	}
	res := e.Result("in_degree")
	if res.Len() != 1 || !res.Contains(ints(9, 2)) {
		t.Errorf("after growth: %v (old tuple must be replaced)", res.All())
	}
}

func TestSumAvgMinMax(t *testing.T) {
	env := analysis.NewEnv()
	env.DeclareEDB("err", 3) // err(X, Y, E)
	e, _ := mkEval(t, `
sum_error(X, SUM(E)) :- err(X, Y, E).
avg_error(X, AVG(E)) :- err(X, Y, E).
min_error(X, MIN(E)) :- err(X, Y, E).
max_error(X, MAX(E)) :- err(X, Y, E).`, env)
	add := func(x, y int64, e2 float64) {
		e.AddFact("err", Tuple{value.NewInt(x), value.NewInt(y), value.NewFloat(e2)})
	}
	add(1, 1, 0.5)
	add(1, 2, 0.5) // same value, different neighbor: SUM must count both
	add(1, 3, 2.0)
	if err := e.Fixpoint(); err != nil {
		t.Fatal(err)
	}
	check := func(pred string, want float64) {
		t.Helper()
		res := e.Result(pred)
		if res.Len() != 1 {
			t.Fatalf("%s = %v", pred, res.All())
		}
		got := res.All()[0][1].Float()
		if got != want {
			t.Errorf("%s = %v, want %v", pred, got, want)
		}
	}
	check("sum_error", 3.0)
	check("avg_error", 1.0)
	check("min_error", 0.5)
	check("max_error", 2.0)
}

func TestAggregateConsumer(t *testing.T) {
	// Aggregate feeding arithmetic in a later stratum (paper Query 8 shape).
	env := analysis.NewEnv()
	env.DeclareEDB("e", 3)
	e, _ := mkEval(t, `
deg(X, COUNT(Y)) :- e(X, Y, V).
sum(X, SUM(V)) :- e(X, Y, V).
avg(X, S / D) :- sum(X, S), deg(X, D).`, env)
	add := func(x, y int64, v float64) {
		e.AddFact("e", Tuple{value.NewInt(x), value.NewInt(y), value.NewFloat(v)})
	}
	add(1, 1, 2)
	add(1, 2, 4)
	if err := e.Fixpoint(); err != nil {
		t.Fatal(err)
	}
	res := e.Result("avg")
	if res.Len() != 1 || res.All()[0][1].Float() != 3 {
		t.Errorf("avg = %v", res.All())
	}
}

func TestFactRule(t *testing.T) {
	env := analysis.NewEnv()
	env.DeclareEDB("q", 1)
	e, _ := mkEval(t, `
seed(7, 0).
hit(X) :- q(X), seed(X, S).`, env)
	e.AddFact("q", ints(7))
	e.AddFact("q", ints(8))
	if err := e.Fixpoint(); err != nil {
		t.Fatal(err)
	}
	if res := e.Result("hit"); res.Len() != 1 || !res.Contains(ints(7)) {
		t.Errorf("hit = %v", res.All())
	}
}

func TestWildcardMatch(t *testing.T) {
	env := analysis.NewEnv()
	env.DeclareEDB("m", 3)
	e, _ := mkEval(t, `got(X) :- m(X, _, _).`, env)
	e.AddFact("m", ints(1, 5, 6))
	e.AddFact("m", ints(1, 7, 8))
	if err := e.Fixpoint(); err != nil {
		t.Fatal(err)
	}
	if res := e.Result("got"); res.Len() != 1 || !res.Contains(ints(1)) {
		t.Errorf("got = %v", res.All())
	}
}

func TestRuntimeTypeError(t *testing.T) {
	env := analysis.NewEnv()
	env.DeclareEDB("s", 2)
	e, _ := mkEval(t, `bad(X, Y2) :- s(X, Y), Y2 = Y + 1.`, env)
	e.AddFact("s", Tuple{value.NewInt(1), value.NewString("oops")})
	if err := e.Fixpoint(); err == nil {
		t.Error("string + 1 should surface a runtime error")
	}
}

func TestApproxQueryEndToEnd(t *testing.T) {
	// The full apt query over hand-built provenance facts:
	// vertex 1 changes a lot at ss1; vertex 2 changes little; vertex 3
	// receives only from 2 (small updates) so it may skip ss2.
	env := analysis.NewEnv()
	env.SetParam("eps", value.NewFloat(0.1))
	src := `
change(X, I) :- value(X, D1, I), value(X, D2, J),
                evolution(X, J, I), udf_diff(D1, D2, $eps).
neighbor_change(X, I) :- receive_message(X, Y, M, I),
                         !change(Y, J), J = I - 1.
no_execute(X, I) :- !neighbor_change(X, I), superstep(X, I).
safe(X, I) :- no_execute(X, I), change(X, I).
unsafe(X, I) :- no_execute(X, I), !change(X, I).
`
	e, _ := mkEval(t, src, env)
	f := func(pred string, vals ...any) {
		tup := make(Tuple, len(vals))
		for i, v := range vals {
			switch v := v.(type) {
			case int:
				tup[i] = value.NewInt(int64(v))
			case float64:
				tup[i] = value.NewFloat(v)
			}
		}
		e.AddFact(pred, tup)
	}
	// Superstep 0: all three vertices active with initial values.
	f("superstep", 1, 0)
	f("superstep", 2, 0)
	f("superstep", 3, 0)
	f("value", 1, 1.0, 0)
	f("value", 2, 1.0, 0)
	f("value", 3, 1.0, 0)
	// Superstep 1: 1 changes a lot, 2 changes little; both message 3.
	f("superstep", 1, 1)
	f("superstep", 2, 1)
	f("value", 1, 5.0, 1)
	f("value", 2, 1.01, 1)
	f("evolution", 1, 0, 1)
	f("evolution", 2, 0, 1)
	// Superstep 2: vertex 3 receives from 2 only (small update).
	f("superstep", 3, 2)
	f("value", 3, 1.005, 2)
	f("evolution", 3, 0, 2)
	f("receive_message", 3, 2, 1.01, 2)
	if err := e.Fixpoint(); err != nil {
		t.Fatal(err)
	}
	// change(2,1) holds (small change); change(1,1) does not.
	if !e.Result("change").Contains(ints(2, 1)) {
		t.Errorf("change = %v", e.Result("change").All())
	}
	if e.Result("change").Contains(ints(1, 1)) {
		t.Error("vertex 1's large update must not be in change")
	}
	// Vertex 3 at ss2: no neighbor with large updates -> no_execute; its own
	// change was small -> safe.
	if !e.Result("no_execute").Contains(ints(3, 2)) {
		t.Errorf("no_execute = %v", e.Result("no_execute").All())
	}
	if !e.Result("safe").Contains(ints(3, 2)) {
		t.Errorf("safe = %v", e.Result("safe").All())
	}
	if e.Result("unsafe").Contains(ints(3, 2)) {
		t.Error("vertex 3 should not be unsafe")
	}
}

func TestPlanRejectsMultipleAggregates(t *testing.T) {
	prog, err := pql.Parse(`two(X, COUNT(Y), SUM(Y)) :- edge(X, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := analysis.Analyze(prog, analysis.NewEnv())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEvaluator(q, NewDatabase()); err == nil ||
		!strings.Contains(err.Error(), "at most one aggregate") {
		t.Errorf("want multi-aggregate rejection, got %v", err)
	}
}

func TestTupleKeyNumericIdentity(t *testing.T) {
	a := Tuple{value.NewInt(3), value.NewString("x")}
	b := Tuple{value.NewFloat(3), value.NewString("x")}
	if a.Key() != b.Key() {
		t.Error("3 and 3.0 must share a tuple key")
	}
	if a.String() != "(3, x)" {
		t.Errorf("String = %q", a.String())
	}
}
