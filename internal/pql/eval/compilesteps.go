package eval

import (
	"ariadne/internal/pql"
	"ariadne/internal/value"
)

// compilePositive compiles one positive relational literal into a step.
func (rc *ruleCompiler) compilePositive(a *pql.Atom, kind ruleKind) (cstep, error) {
	if _, isIDB := rc.q.IDBs[a.Pred]; isIDB {
		return rc.compileIDBLookup(a)
	}
	switch a.Pred {
	case "superstep":
		return rc.compileSuperstep(a)
	case "value":
		return rc.compileValue(a)
	case "evolution":
		return rc.compileEvolution(a)
	case "receive_message":
		return rc.compileMessages(a, false)
	case "send_message":
		return rc.compileMessages(a, true)
	case "prov_send":
		return rc.compileProvSend(a)
	case "edge":
		return rc.compileEdge(a, kind)
	case "edge_value":
		return rc.compileEdgeValue(a)
	default: // emitted analytic table
		return rc.compileEmitted(a)
	}
}

// ssMatcher validates the superstep argument of a record-local literal:
// it must be the current superstep variable (or a constant/bound term).
func (rc *ruleCompiler) ssMatcher(t pql.Term) (argMatcher, error) {
	if v, ok := asVar(t); ok && rc.prevSSVar != "" && v == rc.prevSSVar {
		return nil, notCompilable(rc.r.Pos, "only value literals may reference the evolution predecessor superstep")
	}
	if v, ok := asVar(t); ok && rc.curSSVar == "" {
		rc.curSSVar = v
	}
	if v, ok := asVar(t); ok && v != rc.curSSVar && !rc.bound[rc.slot(v)] {
		return nil, notCompilable(rc.r.Pos, "superstep variable %s does not match the rule's current superstep", v)
	}
	return rc.matcher(t)
}

func (rc *ruleCompiler) compileSuperstep(a *pql.Atom) (cstep, error) {
	mi, err := rc.ssMatcher(a.Args[1])
	if err != nil {
		return nil, err
	}
	return func(rv *RecordView, s *slots, k func() error) error {
		return mi(s, value.NewInt(rv.Superstep), k)
	}, nil
}

func (rc *ruleCompiler) compileValue(a *pql.Atom) (cstep, error) {
	// value(X, D, SS) where SS is the current or the predecessor superstep.
	prev := false
	if v, ok := asVar(a.Args[2]); ok && rc.prevSSVar != "" && v == rc.prevSSVar {
		prev = true
	}
	md, err := rc.matcher(a.Args[1])
	if err != nil {
		return nil, err
	}
	var mi argMatcher
	if prev {
		mi, err = rc.matcher(a.Args[2])
	} else {
		mi, err = rc.ssMatcher(a.Args[2])
	}
	if err != nil {
		return nil, err
	}
	if prev {
		return func(rv *RecordView, s *slots, k func() error) error {
			if !rv.HasPrevValue {
				return nil
			}
			return md(s, rv.PrevValue, func() error {
				return mi(s, value.NewInt(rv.PrevActive), k)
			})
		}, nil
	}
	return func(rv *RecordView, s *slots, k func() error) error {
		if !rv.HasValue {
			return nil
		}
		return md(s, rv.Value, func() error {
			return mi(s, value.NewInt(rv.Superstep), k)
		})
	}, nil
}

func (rc *ruleCompiler) compileEvolution(a *pql.Atom) (cstep, error) {
	mj, err := rc.matcher(a.Args[1])
	if err != nil {
		return nil, err
	}
	mi, err := rc.matcher(a.Args[2])
	if err != nil {
		return nil, err
	}
	return func(rv *RecordView, s *slots, k func() error) error {
		if rv.PrevActive < 0 {
			return nil
		}
		return mj(s, value.NewInt(rv.PrevActive), func() error {
			return mi(s, value.NewInt(rv.Superstep), k)
		})
	}, nil
}

func (rc *ruleCompiler) compileMessages(a *pql.Atom, sends bool) (cstep, error) {
	my, err := rc.matcher(a.Args[1])
	if err != nil {
		return nil, err
	}
	mm, err := rc.matcher(a.Args[2])
	if err != nil {
		return nil, err
	}
	mi, err := rc.ssMatcher(a.Args[3])
	if err != nil {
		return nil, err
	}
	return func(rv *RecordView, s *slots, k func() error) error {
		msgs := rv.Recvs
		if sends {
			msgs = rv.Sends
		}
		ssVal := value.NewInt(rv.Superstep)
		for idx := range msgs {
			m := &msgs[idx]
			if err := my(s, value.NewInt(m.Peer), func() error {
				return mm(s, m.Val, func() error {
					return mi(s, ssVal, k)
				})
			}); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func (rc *ruleCompiler) compileProvSend(a *pql.Atom) (cstep, error) {
	mi, err := rc.ssMatcher(a.Args[1])
	if err != nil {
		return nil, err
	}
	return func(rv *RecordView, s *slots, k func() error) error {
		if !rv.SentAny && len(rv.Sends) == 0 {
			return nil
		}
		return mi(s, value.NewInt(rv.Superstep), k)
	}, nil
}

func (rc *ruleCompiler) compileEmitted(a *pql.Atom) (cstep, error) {
	arity, _ := rc.q.Env().EDBArity(a.Pred)
	if len(a.Args) != arity {
		return nil, notCompilable(a.Pos, "emitted table %s arity mismatch", a.Pred)
	}
	// Layout: table(X, payload..., I).
	firstBound := len(a.Args) > 3 && rc.isBound(a.Args[1])
	var firstFn termFn
	if firstBound {
		fn, err := rc.compileTerm(a.Args[1])
		if err != nil {
			return nil, err
		}
		firstFn = fn
	}
	payload := make([]argMatcher, len(a.Args)-2)
	for i := 1; i < len(a.Args)-1; i++ {
		m, err := rc.matcher(a.Args[i])
		if err != nil {
			return nil, err
		}
		payload[i-1] = m
	}
	mi, err := rc.ssMatcher(a.Args[len(a.Args)-1])
	if err != nil {
		return nil, err
	}
	table := a.Pred
	if firstBound {
		// Joining on the first payload argument (e.g. the neighbor in
		// Query 7): use the per-record index instead of a scan.
		return func(rv *RecordView, s *slots, k func() error) error {
			want, err := firstFn(s)
			if err != nil {
				return err
			}
			ssVal := value.NewInt(rv.Superstep)
			idx := rv.factsByFirstArg(table)
			for _, fi := range idx[Tuple{want}.Key()] {
				f := &rv.Emitted[fi]
				if len(f.Args) != len(payload) {
					continue
				}
				if err := matchAll(s, payload, f.Args, 0, func() error {
					return mi(s, ssVal, k)
				}); err != nil {
					return err
				}
			}
			return nil
		}, nil
	}
	return func(rv *RecordView, s *slots, k func() error) error {
		ssVal := value.NewInt(rv.Superstep)
		for fi := range rv.Emitted {
			f := &rv.Emitted[fi]
			if f.Table != table || len(f.Args) != len(payload) {
				continue
			}
			if err := matchAll(s, payload, f.Args, 0, func() error {
				return mi(s, ssVal, k)
			}); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func matchAll(s *slots, ms []argMatcher, vals []value.Value, i int, k func() error) error {
	if i == len(ms) {
		return k()
	}
	return ms[i](s, vals[i], func() error {
		return matchAll(s, ms, vals, i+1, k)
	})
}

// compileEdge compiles the static edge(A, B) literal: membership test,
// out-neighbor enumeration, in-neighbor enumeration, or (for static rules)
// a full edge scan.
func (rc *ruleCompiler) compileEdge(a *pql.Atom, kind ruleKind) (cstep, error) {
	aBound := rc.isBound(a.Args[0])
	bBound := rc.isBound(a.Args[1])
	sg := rc.sg
	switch {
	case aBound && bBound:
		fa, err := rc.compileTerm(a.Args[0])
		if err != nil {
			return nil, err
		}
		fb, err := rc.compileTerm(a.Args[1])
		if err != nil {
			return nil, err
		}
		return func(rv *RecordView, s *slots, k func() error) error {
			av, err := fa(s)
			if err != nil {
				return err
			}
			bv, err := fb(s)
			if err != nil {
				return err
			}
			if _, ok := sg.EdgeWeight(av.Int(), bv.Int()); !ok {
				return nil
			}
			return k()
		}, nil
	case aBound:
		fa, err := rc.compileTerm(a.Args[0])
		if err != nil {
			return nil, err
		}
		mb, err := rc.matcher(a.Args[1])
		if err != nil {
			return nil, err
		}
		return func(rv *RecordView, s *slots, k func() error) error {
			av, err := fa(s)
			if err != nil {
				return err
			}
			dst, _ := sg.OutNeighbors(av.Int())
			for _, d := range dst {
				if err := mb(s, value.NewInt(d), k); err != nil {
					return err
				}
			}
			return nil
		}, nil
	case bBound:
		fb, err := rc.compileTerm(a.Args[1])
		if err != nil {
			return nil, err
		}
		ma, err := rc.matcher(a.Args[0])
		if err != nil {
			return nil, err
		}
		return func(rv *RecordView, s *slots, k func() error) error {
			bv, err := fb(s)
			if err != nil {
				return err
			}
			srcs := sg.InNeighbors(bv.Int())
			for _, d := range srcs {
				if err := ma(s, value.NewInt(d), k); err != nil {
					return err
				}
			}
			return nil
		}, nil
	default:
		if kind != ruleStatic {
			return nil, notCompilable(a.Pos, "unanchored edge scan outside a static rule")
		}
		ma, err := rc.matcher(a.Args[0])
		if err != nil {
			return nil, err
		}
		mb, err := rc.matcher(a.Args[1])
		if err != nil {
			return nil, err
		}
		return func(rv *RecordView, s *slots, k func() error) error {
			for v := 0; v < sg.NumVertices(); v++ {
				dst, _ := sg.OutNeighbors(int64(v))
				sv := value.NewInt(int64(v))
				for _, d := range dst {
					if err := ma(s, sv, func() error {
						return mb(s, value.NewInt(d), k)
					}); err != nil {
						return err
					}
				}
			}
			return nil
		}, nil
	}
}

// compileEdgeValue compiles edge_value(X, Y, W, SS): X is the anchor; the
// superstep position matches the feeder convention (static weights, I=0),
// so it accepts wildcards, the constant 0, or binds a fresh var to 0.
func (rc *ruleCompiler) compileEdgeValue(a *pql.Atom) (cstep, error) {
	yBound := rc.isBound(a.Args[1])
	mw, err := rc.matcher(a.Args[2])
	if err != nil {
		return nil, err
	}
	ms, err := rc.matcher(a.Args[3])
	if err != nil {
		return nil, err
	}
	sg := rc.sg
	zero := value.NewInt(0)
	if yBound {
		fy, err := rc.compileTerm(a.Args[1])
		if err != nil {
			return nil, err
		}
		return func(rv *RecordView, s *slots, k func() error) error {
			yv, err := fy(s)
			if err != nil {
				return err
			}
			w, ok := sg.EdgeWeight(rv.Vertex, yv.Int())
			if !ok {
				return nil
			}
			return mw(s, value.NewFloat(w), func() error {
				return ms(s, zero, k)
			})
		}, nil
	}
	my, err := rc.matcher(a.Args[1])
	if err != nil {
		return nil, err
	}
	return func(rv *RecordView, s *slots, k func() error) error {
		dst, ws := sg.OutNeighbors(rv.Vertex)
		for i, d := range dst {
			if err := my(s, value.NewInt(d), func() error {
				return mw(s, value.NewFloat(ws[i]), func() error {
					return ms(s, zero, k)
				})
			}); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// compileIDBLookup compiles a positive IDB literal into an indexed database
// lookup with the currently bound argument positions as the key.
func (rc *ruleCompiler) compileIDBLookup(a *pql.Atom) (cstep, error) {
	arity := rc.q.IDBs[a.Pred]
	if len(a.Args) != arity {
		return nil, notCompilable(a.Pos, "IDB %s arity mismatch", a.Pred)
	}
	var keyCols []int
	var keyFns []termFn
	var matchers []argMatcher
	matchCols := []int{}
	for i, arg := range a.Args {
		if rc.isBound(arg) {
			fn, err := rc.compileTerm(arg)
			if err != nil {
				return nil, err
			}
			keyCols = append(keyCols, i)
			keyFns = append(keyFns, fn)
			continue
		}
		m, err := rc.matcher(arg)
		if err != nil {
			return nil, err
		}
		matchers = append(matchers, m)
		matchCols = append(matchCols, i)
	}
	pred := a.Pred
	db := rc.dbRef
	return func(rv *RecordView, s *slots, k func() error) error {
		rel := db.Get(pred)
		if rel == nil {
			return nil
		}
		key := make([]value.Value, len(keyFns))
		for i, fn := range keyFns {
			v, err := fn(s)
			if err != nil {
				return err
			}
			key[i] = v
		}
		for _, t := range rel.Lookup(keyCols, key) {
			if err := matchTupleCols(s, matchers, matchCols, t, 0, k); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func matchTupleCols(s *slots, ms []argMatcher, cols []int, t Tuple, i int, k func() error) error {
	if i == len(ms) {
		return k()
	}
	return ms[i](s, t[cols[i]], func() error {
		return matchTupleCols(s, ms, cols, t, i+1, k)
	})
}

// compileNegated compiles !p(args...) with ground arguments: an IDB (or
// record-local message) membership test.
func (rc *ruleCompiler) compileNegated(a *pql.Atom) (cstep, error) {
	if _, isIDB := rc.q.IDBs[a.Pred]; isIDB {
		fns := make([]termFn, len(a.Args))
		for i, arg := range a.Args {
			fn, err := rc.compileTerm(arg)
			if err != nil {
				return nil, err
			}
			fns[i] = fn
		}
		pred := a.Pred
		db := rc.dbRef
		return func(rv *RecordView, s *slots, k func() error) error {
			rel := db.Get(pred)
			if rel != nil {
				t := make(Tuple, len(fns))
				for i, fn := range fns {
					v, err := fn(s)
					if err != nil {
						return err
					}
					t[i] = v
				}
				if rel.Contains(t) {
					return nil
				}
			}
			return k()
		}, nil
	}
	switch a.Pred {
	case "receive_message", "send_message":
		sends := a.Pred == "send_message"
		fns := make([]termFn, 3)
		for i := 1; i <= 3; i++ {
			fn, err := rc.compileTerm(a.Args[i])
			if err != nil {
				return nil, err
			}
			fns[i-1] = fn
		}
		return func(rv *RecordView, s *slots, k func() error) error {
			y, err := fns[0](s)
			if err != nil {
				return err
			}
			m, err := fns[1](s)
			if err != nil {
				return err
			}
			i, err := fns[2](s)
			if err != nil {
				return err
			}
			if i.Int() != rv.Superstep {
				return k() // other layers hold no current messages
			}
			msgs := rv.Recvs
			if sends {
				msgs = rv.Sends
			}
			for idx := range msgs {
				if msgs[idx].Peer == y.Int() && msgs[idx].Val.Equal(m) {
					return nil
				}
			}
			return k()
		}, nil
	default:
		return nil, notCompilable(a.Pos, "negated %s is not compilable", a.Pred)
	}
}
