package eval

import (
	"fmt"

	"ariadne/internal/pql"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/value"
)

// Slot-compiled rule programs: the shard workers' fast path.
//
// orderBody produces a static join order, which means the set of bound
// variables at each step is known at plan time. That lets us replace the
// interpreter's binding map (string-keyed, with backtracking deletes) with a
// flat slot array indexed by precomputed positions, and its per-step
// cols/key rebuilds with precompiled lookup encoders writing into a reused
// byte buffer. The compiled program matches every argument exactly the way
// unify does (first variable occurrence binds, later occurrences compare,
// constants and ground expressions compare by Equal), so a slot program and
// joinFrom produce identical tuples in identical order. Any rule shape the
// compiler doesn't cover — non-ground complex terms, unusual binder forms —
// makes compileVariant return ok=false and the variant runs interpretively
// inside the worker instead.

// slotFn evaluates a term against the slot array.
type slotFn func(slots []value.Value) (value.Value, error)

// slot sources: how a ground term is produced at runtime.
type srcKind uint8

const (
	srcConst srcKind = iota
	srcSlot
	srcFn
)

type slotSrc struct {
	kind srcKind
	slot int
	cval value.Value
	fn   slotFn
}

func (s *slotSrc) eval(slots []value.Value) (value.Value, error) {
	switch s.kind {
	case srcConst:
		return s.cval, nil
	case srcSlot:
		return slots[s.slot], nil
	default:
		return s.fn(slots)
	}
}

// match actions: how each argument of a positive atom is checked against a
// candidate tuple, mirroring unify argument by argument.
type matchKind uint8

const (
	matchSkip  matchKind = iota // wildcard
	matchBind                   // first occurrence: bind the slot
	matchSlot                   // bound variable: Equal against the slot
	matchConst                  // constant: Equal
	matchFn                     // ground complex term: evaluate, Equal
)

type slotMatch struct {
	kind matchKind
	slot int
	cval value.Value
	fn   slotFn
}

type slotStep struct {
	kind stepKind
	pred string
	pos  pql.Pos

	// stepPositive
	isDelta    bool
	lookupCols []int
	colsKey    string
	lookupSrc  []slotSrc
	match      []slotMatch

	// stepNegated
	negSrc []slotSrc

	// stepCompare: bindSlot >= 0 is the binder form (evaluate bindFn into
	// the slot), otherwise cmpFn filters.
	bindSlot int
	bindFn   slotFn
	cmpFn    func(slots []value.Value) (bool, error)
}

// slotVariant is one compiled plan variant: the step program, the head
// constructors, and the slot count.
type slotVariant struct {
	steps  []slotStep
	head   []slotSrc
	nSlots int
}

// slotRun is per-(worker, firing) scratch state: the slot array, a reused
// key buffer, the delta batch, and the emit sink.
type slotRun struct {
	db     *Database
	slots  []value.Value
	keyBuf []byte
	deltas []Tuple
	emit   func(Tuple) error
}

// prep sizes the scratch for sv and installs the delta batch and sink.
// Stale slot values from a previous firing are harmless: the static binding
// discipline guarantees every slot is written before it is read.
func (rn *slotRun) prep(sv *slotVariant, deltas []Tuple, emit func(Tuple) error) {
	if cap(rn.slots) < sv.nSlots {
		rn.slots = make([]value.Value, sv.nSlots)
	} else {
		rn.slots = rn.slots[:sv.nSlots]
	}
	rn.deltas = deltas
	rn.emit = emit
}

// appendNorm appends v's canonical binary encoding (Ints normalized to
// Floats, exactly as Tuple.Key and projKey do).
func appendNorm(b []byte, v value.Value) []byte {
	if v.Kind() == value.Int {
		v = value.NewFloat(v.Float())
	}
	return v.AppendBinary(b)
}

// run executes the program from step si.
func (sv *slotVariant) run(rn *slotRun, si int) error {
	if si == len(sv.steps) {
		t := make(Tuple, len(sv.head))
		for i := range sv.head {
			v, err := sv.head[i].eval(rn.slots)
			if err != nil {
				return err
			}
			t[i] = v
		}
		return rn.emit(t)
	}
	st := &sv.steps[si]
	switch st.kind {
	case stepCompare:
		if st.bindSlot >= 0 {
			v, err := st.bindFn(rn.slots)
			if err != nil {
				return err
			}
			rn.slots[st.bindSlot] = v
			return sv.run(rn, si+1)
		}
		ok, err := st.cmpFn(rn.slots)
		if err != nil || !ok {
			return err
		}
		return sv.run(rn, si+1)

	case stepNegated:
		// Evaluate the arguments before the nil-relation check so UDF and
		// arithmetic errors surface exactly as in the interpreter.
		kb := rn.keyBuf[:0]
		for i := range st.negSrc {
			v, err := st.negSrc[i].eval(rn.slots)
			if err != nil {
				return err
			}
			kb = appendNorm(kb, v)
		}
		rn.keyBuf = kb
		if rel := rn.db.Get(st.pred); rel != nil && rel.containsKeyBytes(kb) {
			return nil
		}
		return sv.run(rn, si+1)

	default: // stepPositive
		var cands []Tuple
		if st.isDelta {
			cands = rn.deltas
		} else {
			rel := rn.db.Get(st.pred)
			if rel == nil {
				return nil
			}
			if len(st.lookupCols) == 0 {
				cands = rel.All()
			} else {
				kb := rn.keyBuf[:0]
				for i := range st.lookupSrc {
					v, err := st.lookupSrc[i].eval(rn.slots)
					if err != nil {
						return err
					}
					kb = appendNorm(kb, v)
				}
				rn.keyBuf = kb
				cands = rel.LookupKey(st.lookupCols, st.colsKey, kb)
			}
		}
		nm := len(st.match)
	outer:
		for _, t := range cands {
			if len(t) != nm {
				return fmt.Errorf("pql: %s: arity mismatch binding %s", st.pos, st.pred)
			}
			for i := 0; i < nm; i++ {
				m := &st.match[i]
				switch m.kind {
				case matchSkip:
				case matchBind:
					rn.slots[m.slot] = t[i]
				case matchSlot:
					if !rn.slots[m.slot].Equal(t[i]) {
						continue outer
					}
				case matchConst:
					if !m.cval.Equal(t[i]) {
						continue outer
					}
				default: // matchFn
					v, err := m.fn(rn.slots)
					if err != nil {
						return err
					}
					if !v.Equal(t[i]) {
						continue outer
					}
				}
			}
			if err := sv.run(rn, si+1); err != nil {
				return err
			}
		}
		return nil
	}
}

// slotCompiler tracks the static binding state during compilation: which
// variables are bound, and at which slot.
type slotCompiler struct {
	env    *analysis.Env
	slotOf map[string]int
	n      int
}

func (sc *slotCompiler) bind(name string) int {
	if s, ok := sc.slotOf[name]; ok {
		return s
	}
	s := sc.n
	sc.n++
	sc.slotOf[name] = s
	return s
}

// slotFn compiles a term that must be ground at this point of the program.
// Returns ok=false for wildcards, unbound variables, and term shapes the
// compiler doesn't handle — the caller falls back to the interpreter, whose
// runtime groundness checks route those cases identically.
func (sc *slotCompiler) slotFn(t pql.Term) (slotFn, bool) {
	switch t := t.(type) {
	case *pql.Const:
		v := t.Val
		return func([]value.Value) (value.Value, error) { return v, nil }, true
	case *pql.Var:
		if t.Wildcard() {
			return nil, false
		}
		slot, ok := sc.slotOf[t.Name]
		if !ok {
			return nil, false
		}
		return func(s []value.Value) (value.Value, error) { return s[slot], nil }, true
	case *pql.BinExpr:
		lf, ok := sc.slotFn(t.L)
		if !ok {
			return nil, false
		}
		if t.Op == pql.OpNeg {
			return func(s []value.Value) (value.Value, error) {
				l, err := lf(s)
				if err != nil {
					return value.NullValue, err
				}
				return value.Neg(l)
			}, true
		}
		rf, ok := sc.slotFn(t.R)
		if !ok {
			return nil, false
		}
		var op func(a, b value.Value) (value.Value, error)
		switch t.Op {
		case pql.OpAdd:
			op = value.Add
		case pql.OpSub:
			op = value.Sub
		case pql.OpMul:
			op = value.Mul
		case pql.OpDiv:
			op = value.Div
		case pql.OpMod:
			op = value.Mod
		default:
			return nil, false
		}
		return func(s []value.Value) (value.Value, error) {
			l, err := lf(s)
			if err != nil {
				return value.NullValue, err
			}
			r, err := rf(s)
			if err != nil {
				return value.NullValue, err
			}
			return op(l, r)
		}, true
	case *pql.Call:
		fn, ok := sc.env.Funcs[t.Name]
		if !ok {
			return nil, false
		}
		argFns := make([]slotFn, len(t.Args))
		for i, a := range t.Args {
			af, ok := sc.slotFn(a)
			if !ok {
				return nil, false
			}
			argFns[i] = af
		}
		name, pos := t.Name, t.Pos
		return func(s []value.Value) (value.Value, error) {
			args := make([]value.Value, len(argFns))
			for i := range argFns {
				v, err := argFns[i](s)
				if err != nil {
					return value.NullValue, err
				}
				args[i] = v
			}
			out, err := fn.Fn(args)
			if err != nil {
				return value.NullValue, fmt.Errorf("pql: %s: %s: %w", pos, name, err)
			}
			return out, nil
		}, true
	default:
		return nil, false
	}
}

// src compiles a term into a slot source; the srcConst/srcSlot forms avoid
// a closure call for the common cases.
func (sc *slotCompiler) src(t pql.Term) (slotSrc, bool) {
	switch t := t.(type) {
	case *pql.Const:
		return slotSrc{kind: srcConst, cval: t.Val}, true
	case *pql.Var:
		if t.Wildcard() {
			return slotSrc{}, false
		}
		if slot, ok := sc.slotOf[t.Name]; ok {
			return slotSrc{kind: srcSlot, slot: slot}, true
		}
		return slotSrc{}, false
	default:
		fn, ok := sc.slotFn(t)
		if !ok {
			return slotSrc{}, false
		}
		return slotSrc{kind: srcFn, fn: fn}, true
	}
}

// cmpFn compiles a comparison filter (both sides ground).
func (sc *slotCompiler) cmpFn(c *pql.CmpLit) (func([]value.Value) (bool, error), bool) {
	lf, ok := sc.slotFn(c.L)
	if !ok {
		return nil, false
	}
	rf, ok := sc.slotFn(c.R)
	if !ok {
		return nil, false
	}
	op, pos := c.Op, c.Pos
	return func(s []value.Value) (bool, error) {
		l, err := lf(s)
		if err != nil {
			return false, err
		}
		r, err := rf(s)
		if err != nil {
			return false, err
		}
		switch op {
		case pql.CmpEq:
			return l.Equal(r), nil
		case pql.CmpNeq:
			return !l.Equal(r), nil
		}
		cmp := l.Compare(r)
		switch op {
		case pql.CmpLt:
			return cmp < 0, nil
		case pql.CmpLe:
			return cmp <= 0, nil
		case pql.CmpGt:
			return cmp > 0, nil
		case pql.CmpGe:
			return cmp >= 0, nil
		default:
			return false, fmt.Errorf("pql: %s: unknown comparison", pos)
		}
	}, true
}

// compileVariant compiles one plan variant into a slot program. ok=false
// means the variant has a shape the compiler doesn't support and must run
// interpretively.
func compileVariant(r *pql.Rule, v *planVariant, env *analysis.Env) (*slotVariant, bool) {
	sc := &slotCompiler{env: env, slotOf: map[string]int{}}
	sv := &slotVariant{}
	for si, st := range v.steps {
		switch st.kind {
		case stepPositive:
			s := slotStep{kind: stepPositive, pred: st.atom.Pred, pos: st.atom.Pos, isDelta: si == v.deltaStep}
			// Pass 1: build the lookup key from arguments ground *before*
			// this step (sc.slotOf is still the pre-step binding state).
			// The delta step scans its batch and never looks up.
			if !s.isDelta {
				for i, a := range st.atom.Args {
					if src, ok := sc.src(a); ok {
						s.lookupCols = append(s.lookupCols, i)
						s.lookupSrc = append(s.lookupSrc, src)
					}
				}
				s.colsKey = encodeCols(s.lookupCols)
			}
			// Pass 2: match actions in argument order, exactly as unify
			// walks them — a variable's first occurrence binds, a repeat
			// occurrence (even within this atom) compares.
			s.match = make([]slotMatch, len(st.atom.Args))
			for i, a := range st.atom.Args {
				switch a := a.(type) {
				case *pql.Var:
					if a.Wildcard() {
						s.match[i] = slotMatch{kind: matchSkip}
					} else if slot, ok := sc.slotOf[a.Name]; ok {
						s.match[i] = slotMatch{kind: matchSlot, slot: slot}
					} else {
						s.match[i] = slotMatch{kind: matchBind, slot: sc.bind(a.Name)}
					}
				case *pql.Const:
					s.match[i] = slotMatch{kind: matchConst, cval: a.Val}
				default:
					fn, ok := sc.slotFn(a)
					if !ok {
						return nil, false
					}
					s.match[i] = slotMatch{kind: matchFn, fn: fn}
				}
			}
			sv.steps = append(sv.steps, s)

		case stepNegated:
			s := slotStep{kind: stepNegated, pred: st.atom.Pred, pos: st.atom.Pos}
			for _, a := range st.atom.Args {
				src, ok := sc.src(a)
				if !ok {
					return nil, false
				}
				s.negSrc = append(s.negSrc, src)
			}
			sv.steps = append(sv.steps, s)

		case stepCompare:
			c := st.cmp
			// Static binder detection, mirroring joinFrom's dynamic checks
			// in the same order: boundness is static, so "unbound at this
			// step" is decidable at compile time.
			if c.Op == pql.CmpEq {
				if bs, ok := compileBinder(sc, c.L, c.R); ok {
					sv.steps = append(sv.steps, bs)
					continue
				}
				if bs, ok := compileBinder(sc, c.R, c.L); ok {
					sv.steps = append(sv.steps, bs)
					continue
				}
			}
			cf, ok := sc.cmpFn(c)
			if !ok {
				return nil, false
			}
			sv.steps = append(sv.steps, slotStep{kind: stepCompare, bindSlot: -1, cmpFn: cf})
		}
	}
	for _, a := range r.Head.Args {
		src, ok := sc.src(a)
		if !ok {
			return nil, false
		}
		sv.head = append(sv.head, src)
	}
	sv.nSlots = sc.n
	return sv, true
}

// compileBinder compiles `v = expr` when v is an unbound non-wildcard
// variable and expr is ground — the binder form of a comparison step.
func compileBinder(sc *slotCompiler, lhs, rhs pql.Term) (slotStep, bool) {
	v, ok := lhs.(*pql.Var)
	if !ok || v.Wildcard() {
		return slotStep{}, false
	}
	if _, bound := sc.slotOf[v.Name]; bound {
		return slotStep{}, false
	}
	fn, ok := sc.slotFn(rhs)
	if !ok {
		return slotStep{}, false
	}
	return slotStep{kind: stepCompare, bindSlot: sc.bind(v.Name), bindFn: fn}, true
}
