package eval

import (
	"fmt"
	"sort"

	"ariadne/internal/pql"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/value"
)

// Evaluator runs semi-naive stratified evaluation of an analyzed query over
// a Database. It is incremental: facts added between Fixpoint calls are
// treated as deltas, which is what makes layered (§5.1) and online (§5.2)
// evaluation possible — each provenance layer is one delta batch.
type Evaluator struct {
	q   *analysis.Query
	db  *Database
	env *analysis.Env

	plans   map[*pql.Rule]*rulePlan
	aggs    map[string]*aggTable // aggregate head pred -> state
	pending map[string][]Tuple

	stats Stats
}

// Stats counts evaluation work.
type Stats struct {
	Rounds      int
	Derivations int64
	FactsAdded  int64
}

// NewEvaluator prepares evaluation of q over db.
func NewEvaluator(q *analysis.Query, db *Database) (*Evaluator, error) {
	e := &Evaluator{
		q: q, db: db, env: q.Env(),
		plans:   map[*pql.Rule]*rulePlan{},
		aggs:    map[string]*aggTable{},
		pending: map[string][]Tuple{},
	}
	aggDef := map[string]bool{}
	for _, r := range q.Rules {
		plan, err := planRule(r)
		if err != nil {
			return nil, err
		}
		e.plans[r] = plan
		if plan.aggregates {
			if aggDef[r.Head.Pred] {
				return nil, fmt.Errorf("pql: %s: aggregate predicate %s has multiple defining rules", r.Pos, r.Head.Pred)
			}
			aggDef[r.Head.Pred] = true
			e.aggs[r.Head.Pred] = newAggTable(plan)
		}
	}
	// Pre-create IDB relations so negation over empty IDBs works.
	for name, arity := range q.IDBs {
		db.Relation(name, arity)
	}
	return e, nil
}

// Stats returns evaluation counters.
func (e *Evaluator) Stats() Stats { return e.stats }

// AddFact queues an EDB (or externally derived) fact for the next Fixpoint.
func (e *Evaluator) AddFact(pred string, t Tuple) {
	e.pending[pred] = append(e.pending[pred], t)
}

// Result returns the relation for pred (IDB or EDB), or nil.
func (e *Evaluator) Result(pred string) *Relation { return e.db.Get(pred) }

// Fixpoint runs all strata to fixpoint over the pending deltas.
func (e *Evaluator) Fixpoint() error {
	// Insert pending facts; the ones actually new seed the delta sets.
	newSince := map[string][]Tuple{}
	pendNames := make([]string, 0, len(e.pending))
	for name := range e.pending {
		pendNames = append(pendNames, name)
	}
	sort.Strings(pendNames)
	for _, name := range pendNames {
		ts := e.pending[name]
		arity := len(ts[0])
		rel := e.db.Relation(name, arity)
		for _, t := range ts {
			if rel.Insert(t) {
				newSince[name] = append(newSince[name], t)
				e.stats.FactsAdded++
			}
		}
	}
	e.pending = map[string][]Tuple{}

	for _, stratum := range e.q.Strata {
		// Round 0 consumes everything new since Fixpoint started (facts and
		// lower-strata derivations); later rounds consume this stratum's
		// own derivations (recursion).
		delta := newSince
		for {
			e.stats.Rounds++
			derived := map[string][]Tuple{}
			for _, r := range stratum {
				plan := e.plans[r]
				if plan.aggregates {
					if err := e.evalAggRule(r, plan, delta, derived); err != nil {
						return err
					}
					continue
				}
				if err := e.evalRule(r, plan, delta, derived); err != nil {
					return err
				}
			}
			if len(derived) == 0 {
				break
			}
			// Derivations feed both this stratum's next round and the
			// cumulative delta for later strata.
			for name, ts := range derived {
				newSince[name] = append(newSince[name], ts...)
			}
			delta = derived
		}
	}
	return nil
}

// evalRule fires one plain rule semi-naively: once per positive literal
// whose predicate has a delta, with that literal restricted to the delta.
// Rules with no positive body literals (facts) fire unconditionally.
func (e *Evaluator) evalRule(r *pql.Rule, plan *rulePlan, delta map[string][]Tuple, derived map[string][]Tuple) error {
	head := e.db.Relation(r.Head.Pred, len(r.Head.Args))
	emit := func(b binding) error {
		t := make(Tuple, len(r.Head.Args))
		for i, a := range r.Head.Args {
			v, err := evalTerm(a, b, e.env)
			if err != nil {
				return err
			}
			t[i] = v
		}
		if head.Insert(t) {
			derived[r.Head.Pred] = append(derived[r.Head.Pred], t)
			e.stats.Derivations++
		}
		return nil
	}

	if plan.factPlan != nil {
		// Fact rule: fires once per Fixpoint (idempotent via dedup).
		return e.joinFrom(plan.factPlan.steps, 0, binding{}, -1, nil, emit)
	}
	for vi, v := range plan.variants {
		dts := delta[plan.positivePreds[vi]]
		if len(dts) == 0 {
			continue
		}
		if err := e.joinFrom(v.steps, 0, binding{}, v.deltaStep, dts, emit); err != nil {
			return err
		}
	}
	return nil
}

// joinFrom recursively executes plan steps from index si under binding b.
// Step deltaStep (a step index) draws candidates from deltaTuples instead
// of the full relation.
func (e *Evaluator) joinFrom(steps []planStep, si int, b binding, deltaStep int, deltaTuples []Tuple, emit func(binding) error) error {
	if si == len(steps) {
		return emit(b)
	}
	st := steps[si]
	switch st.kind {
	case stepCompare:
		c := st.cmp
		// Binder form: Var = expr with the var still unbound.
		if c.Op == pql.CmpEq {
			if v, ok := c.L.(*pql.Var); ok && !v.Wildcard() {
				if _, bound := b[v.Name]; !bound && termGround(c.R, b) {
					val, err := evalTerm(c.R, b, e.env)
					if err != nil {
						return err
					}
					b[v.Name] = val
					err = e.joinFrom(steps, si+1, b, deltaStep, deltaTuples, emit)
					delete(b, v.Name)
					return err
				}
			}
			if v, ok := c.R.(*pql.Var); ok && !v.Wildcard() {
				if _, bound := b[v.Name]; !bound && termGround(c.L, b) {
					val, err := evalTerm(c.L, b, e.env)
					if err != nil {
						return err
					}
					b[v.Name] = val
					err = e.joinFrom(steps, si+1, b, deltaStep, deltaTuples, emit)
					delete(b, v.Name)
					return err
				}
			}
		}
		ok, err := evalCompare(c, b, e.env)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		return e.joinFrom(steps, si+1, b, deltaStep, deltaTuples, emit)

	case stepNegated:
		t := make(Tuple, len(st.atom.Args))
		for i, a := range st.atom.Args {
			v, err := evalTerm(a, b, e.env)
			if err != nil {
				return err
			}
			t[i] = v
		}
		rel := e.db.Get(st.atom.Pred)
		if rel != nil && rel.Contains(t) {
			return nil
		}
		return e.joinFrom(steps, si+1, b, deltaStep, deltaTuples, emit)

	default: // stepPositive
		var candidates []Tuple
		if si == deltaStep {
			candidates = deltaTuples
		} else {
			rel := e.db.Get(st.atom.Pred)
			if rel == nil {
				return nil
			}
			// Use an index over the argument positions that are already
			// ground (variables bound earlier, or constants).
			var cols []int
			var key []value.Value
			for i, a := range st.atom.Args {
				switch a := a.(type) {
				case *pql.Var:
					if a.Wildcard() {
						continue
					}
					if v, ok := b[a.Name]; ok {
						cols = append(cols, i)
						key = append(key, v)
					}
				case *pql.Const:
					cols = append(cols, i)
					key = append(key, a.Val)
				default:
					if termGround(a, b) {
						v, err := evalTerm(a, b, e.env)
						if err != nil {
							return err
						}
						cols = append(cols, i)
						key = append(key, v)
					}
				}
			}
			candidates = rel.Lookup(cols, key)
		}
		for _, t := range candidates {
			if len(t) != len(st.atom.Args) {
				return fmt.Errorf("pql: %s: arity mismatch binding %s", st.atom.Pos, st.atom.Pred)
			}
			newVars, ok, err := e.unify(st.atom, t, b)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			if err := e.joinFrom(steps, si+1, b, deltaStep, deltaTuples, emit); err != nil {
				return err
			}
			for _, n := range newVars {
				delete(b, n)
			}
		}
		return nil
	}
}

// unify matches tuple t against atom args under b, extending b with newly
// bound variables (returned so the caller can backtrack).
func (e *Evaluator) unify(a *pql.Atom, t Tuple, b binding) (newVars []string, ok bool, err error) {
	for i, arg := range a.Args {
		switch arg := arg.(type) {
		case *pql.Var:
			if arg.Wildcard() {
				continue
			}
			if v, bound := b[arg.Name]; bound {
				if !v.Equal(t[i]) {
					for _, n := range newVars {
						delete(b, n)
					}
					return nil, false, nil
				}
				continue
			}
			b[arg.Name] = t[i]
			newVars = append(newVars, arg.Name)
		case *pql.Const:
			if !arg.Val.Equal(t[i]) {
				for _, n := range newVars {
					delete(b, n)
				}
				return nil, false, nil
			}
		default:
			if !termGround(arg, b) {
				return nil, false, fmt.Errorf("pql: %s: argument %s of %s must be ground when matched", a.Pos, arg, a.Pred)
			}
			v, err := evalTerm(arg, b, e.env)
			if err != nil {
				return nil, false, err
			}
			if !v.Equal(t[i]) {
				for _, n := range newVars {
					delete(b, n)
				}
				return nil, false, nil
			}
		}
	}
	return newVars, true, nil
}
