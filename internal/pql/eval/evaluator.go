package eval

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ariadne/internal/pql"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/value"
)

// Evaluator runs semi-naive stratified evaluation of an analyzed query over
// a Database. It is incremental: facts added between Fixpoint calls are
// treated as deltas, which is what makes layered (§5.1) and online (§5.2)
// evaluation possible — each provenance layer is one delta batch.
//
// With SetWorkers(n > 1) and a VC-compatible query, parallel-safe strata run
// their delta rounds shard-parallel: the round's delta is split across n
// shards by each predicate's location column (the engine's partition hash),
// one worker goroutine evaluates each shard against the frozen relations,
// and derived tuples are merged back in a canonical order (rule, then shard,
// then emission order) so the final relations — and their insertion order —
// are independent of scheduling.
type Evaluator struct {
	q   *analysis.Query
	db  *Database
	env *analysis.Env

	plans   map[*pql.Rule]*rulePlan
	aggs    map[string]*aggTable // aggregate head pred -> state
	pending map[string][]Tuple

	workers   int            // shard count; <= 1 keeps the sequential path
	parSafe   []bool         // per-stratum shard-parallel safety
	locCols   map[string]int // per-predicate location column (-1: whole-tuple hash)
	slots     map[*pql.Rule][]*slotVariant
	slotFacts map[*pql.Rule]*slotVariant

	stats statCounters
}

// statCounters are the evaluator's internal work counters. They are atomics
// because shard workers increment derivation counts concurrently; Stats()
// snapshots them into the plain Stats struct.
type statCounters struct {
	rounds         atomic.Int64
	parallelRounds atomic.Int64
	derivations    atomic.Int64
	factsAdded     atomic.Int64
	exchanged      atomic.Int64
	maxShardDelta  atomic.Int64
	perStratum     []atomic.Int64
}

// Stats is a snapshot of evaluation work counters.
type Stats struct {
	Rounds      int
	Derivations int64
	FactsAdded  int64

	// ParallelRounds counts the delta rounds that ran shard-parallel
	// (always <= Rounds; zero on the sequential path).
	ParallelRounds int
	// ExchangeTuples counts derived tuples whose home shard differed from
	// the worker that derived them — the per-round exchange volume.
	ExchangeTuples int64
	// MaxShardDelta is the largest per-shard delta batch seen in any
	// parallel round, a skew indicator.
	MaxShardDelta int
	// RoundsPerStratum breaks Rounds down by stratum index.
	RoundsPerStratum []int
}

// NewEvaluator prepares evaluation of q over db.
func NewEvaluator(q *analysis.Query, db *Database) (*Evaluator, error) {
	e := &Evaluator{
		q: q, db: db, env: q.Env(),
		plans:   map[*pql.Rule]*rulePlan{},
		aggs:    map[string]*aggTable{},
		pending: map[string][]Tuple{},
		workers: 1,
	}
	e.stats.perStratum = make([]atomic.Int64, len(q.Strata))
	aggDef := map[string]bool{}
	for _, r := range q.Rules {
		plan, err := planRule(r)
		if err != nil {
			return nil, err
		}
		e.plans[r] = plan
		if plan.aggregates {
			if aggDef[r.Head.Pred] {
				return nil, fmt.Errorf("pql: %s: aggregate predicate %s has multiple defining rules", r.Pos, r.Head.Pred)
			}
			aggDef[r.Head.Pred] = true
			e.aggs[r.Head.Pred] = newAggTable(plan)
		}
	}
	// Pre-create IDB relations so negation over empty IDBs works — and so
	// shard workers never race on Database.Relation's map mutation.
	for name, arity := range q.IDBs {
		db.Relation(name, arity)
	}
	return e, nil
}

// Stats returns a snapshot of the evaluation counters.
func (e *Evaluator) Stats() Stats {
	s := Stats{
		Rounds:           int(e.stats.rounds.Load()),
		Derivations:      e.stats.derivations.Load(),
		FactsAdded:       e.stats.factsAdded.Load(),
		ParallelRounds:   int(e.stats.parallelRounds.Load()),
		ExchangeTuples:   e.stats.exchanged.Load(),
		MaxShardDelta:    int(e.stats.maxShardDelta.Load()),
		RoundsPerStratum: make([]int, len(e.stats.perStratum)),
	}
	for i := range e.stats.perStratum {
		s.RoundsPerStratum[i] = int(e.stats.perStratum[i].Load())
	}
	return s
}

// SetWorkers sets the shard-parallel worker count for subsequent Fixpoint
// calls. n <= 1 (the default) keeps the seed sequential path bit-for-bit.
// Parallel rounds require a VC-compatible query (Def. 4.1): remote access
// only follows message edges whose destination is computable from the tuple,
// which is what makes the per-round exchange legal. For incompatible queries
// the setting is ignored and evaluation stays sequential.
func (e *Evaluator) SetWorkers(n int) {
	if n < 1 || !e.q.VCCompatible {
		n = 1
	}
	e.workers = n
	if n > 1 && e.slots == nil {
		e.locCols = e.q.LocationCols()
		e.parSafe = e.q.ParallelSafeStrata()
		e.compileSlots()
	}
}

// Workers returns the configured shard-parallel worker count.
func (e *Evaluator) Workers() int { return e.workers }

// compileSlots builds slot programs for every rule variant that supports
// them; variants that don't (ground complex matches, unusual binder shapes)
// keep a nil entry and fall back to the interpretive joinFrom inside
// workers, which is equally thread-safe against frozen relations.
func (e *Evaluator) compileSlots() {
	e.slots = map[*pql.Rule][]*slotVariant{}
	e.slotFacts = map[*pql.Rule]*slotVariant{}
	for _, r := range e.q.Rules {
		plan := e.plans[r]
		if plan.aggregates {
			continue
		}
		if plan.factPlan != nil {
			if sv, ok := compileVariant(r, plan.factPlan, e.env); ok {
				e.slotFacts[r] = sv
			}
			continue
		}
		svs := make([]*slotVariant, len(plan.variants))
		any := false
		for i, v := range plan.variants {
			if sv, ok := compileVariant(r, v, e.env); ok {
				svs[i] = sv
				any = true
			}
		}
		if any {
			e.slots[r] = svs
		}
	}
}

// AddFact queues an EDB (or externally derived) fact for the next Fixpoint.
func (e *Evaluator) AddFact(pred string, t Tuple) {
	e.pending[pred] = append(e.pending[pred], t)
}

// Result returns the relation for pred (IDB or EDB), or nil.
func (e *Evaluator) Result(pred string) *Relation { return e.db.Get(pred) }

// parallelCutoff is the minimum round-delta size before a round fans out to
// shard workers; smaller deltas aren't worth the goroutine handoff.
const parallelCutoff = 64

// Fixpoint runs all strata to fixpoint over the pending deltas.
func (e *Evaluator) Fixpoint() error {
	newSince := e.drainPending()

	for si, stratum := range e.q.Strata {
		// Round 0 consumes everything new since Fixpoint started (facts and
		// lower-strata derivations); later rounds consume this stratum's
		// own derivations (recursion).
		delta := newSince
		for {
			e.stats.rounds.Add(1)
			e.stats.perStratum[si].Add(1)
			var derived map[string][]Tuple
			var err error
			if e.parallelOK(si, delta) {
				e.stats.parallelRounds.Add(1)
				derived, err = e.parallelRound(stratum, delta)
			} else {
				derived, err = e.sequentialRound(stratum, delta)
			}
			if err != nil {
				return err
			}
			if len(derived) == 0 {
				break
			}
			// Derivations feed both this stratum's next round and the
			// cumulative delta for later strata.
			for name, ts := range derived {
				newSince[name] = append(newSince[name], ts...)
			}
			delta = derived
		}
	}
	return nil
}

// drainPending inserts the queued facts; the ones actually new seed the
// delta sets. Predicates are drained in sorted name order so the seed delta
// — and everything derived from it — is deterministic. With workers
// configured, per-predicate ingest fans out (relations are disjoint, so the
// only shared state is the atomic counter); the per-predicate insertion
// order is preserved either way.
func (e *Evaluator) drainPending() map[string][]Tuple {
	newSince := map[string][]Tuple{}
	pendNames := make([]string, 0, len(e.pending))
	total := 0
	for name, ts := range e.pending {
		pendNames = append(pendNames, name)
		total += len(ts)
	}
	sort.Strings(pendNames)
	if e.workers > 1 && len(pendNames) > 1 && total >= parallelCutoff {
		rels := make([]*Relation, len(pendNames))
		for i, name := range pendNames {
			rels[i] = e.db.Relation(name, len(e.pending[name][0]))
		}
		news := make([][]Tuple, len(pendNames))
		var wg sync.WaitGroup
		sem := make(chan struct{}, e.workers)
		for i := range pendNames {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				rel := rels[i]
				for _, t := range e.pending[pendNames[i]] {
					if rel.Insert(t) {
						news[i] = append(news[i], t)
						e.stats.factsAdded.Add(1)
					}
				}
			}(i)
		}
		wg.Wait()
		for i, name := range pendNames {
			if len(news[i]) > 0 {
				newSince[name] = news[i]
			}
		}
	} else {
		for _, name := range pendNames {
			ts := e.pending[name]
			rel := e.db.Relation(name, len(ts[0]))
			for _, t := range ts {
				if rel.Insert(t) {
					newSince[name] = append(newSince[name], t)
					e.stats.factsAdded.Add(1)
				}
			}
		}
	}
	e.pending = map[string][]Tuple{}
	return newSince
}

// parallelOK reports whether this round should fan out to shard workers.
func (e *Evaluator) parallelOK(stratum int, delta map[string][]Tuple) bool {
	if e.workers <= 1 || !e.parSafe[stratum] {
		return false
	}
	n := 0
	for _, ts := range delta {
		n += len(ts)
	}
	return n >= parallelCutoff
}

// sequentialRound fires every rule of the stratum against the round delta on
// the calling goroutine — the seed evaluation path.
func (e *Evaluator) sequentialRound(stratum []*pql.Rule, delta map[string][]Tuple) (map[string][]Tuple, error) {
	derived := map[string][]Tuple{}
	for _, r := range stratum {
		plan := e.plans[r]
		if plan.aggregates {
			if err := e.evalAggRule(r, plan, delta, derived); err != nil {
				return nil, err
			}
			continue
		}
		if err := e.evalRule(r, plan, delta, derived); err != nil {
			return nil, err
		}
	}
	return derived, nil
}

// headEmit adapts a tuple-level emit to the binding-level emit joinFrom
// produces: it builds the head tuple from the rule's head terms under the
// final binding.
func (e *Evaluator) headEmit(r *pql.Rule, emit func(Tuple) error) func(binding) error {
	return func(b binding) error {
		t := make(Tuple, len(r.Head.Args))
		for i, a := range r.Head.Args {
			v, err := evalTerm(a, b, e.env)
			if err != nil {
				return err
			}
			t[i] = v
		}
		return emit(t)
	}
}

// evalRule fires one plain rule semi-naively: once per positive literal
// whose predicate has a delta, with that literal restricted to the delta.
// Rules with no positive body literals (facts) fire unconditionally.
func (e *Evaluator) evalRule(r *pql.Rule, plan *rulePlan, delta map[string][]Tuple, derived map[string][]Tuple) error {
	head := e.db.Relation(r.Head.Pred, len(r.Head.Args))
	emit := e.headEmit(r, func(t Tuple) error {
		if head.Insert(t) {
			derived[r.Head.Pred] = append(derived[r.Head.Pred], t)
			e.stats.derivations.Add(1)
		}
		return nil
	})

	if plan.factPlan != nil {
		// Fact rule: fires once per Fixpoint (idempotent via dedup).
		return e.joinFrom(plan.factPlan.steps, 0, binding{}, -1, nil, emit)
	}
	for vi, v := range plan.variants {
		dts := delta[plan.positivePreds[vi]]
		if len(dts) == 0 {
			continue
		}
		if err := e.joinFrom(v.steps, 0, binding{}, v.deltaStep, dts, emit); err != nil {
			return err
		}
	}
	return nil
}

// joinFrom recursively executes plan steps from index si under binding b.
// Step deltaStep (a step index) draws candidates from deltaTuples instead
// of the full relation.
func (e *Evaluator) joinFrom(steps []planStep, si int, b binding, deltaStep int, deltaTuples []Tuple, emit func(binding) error) error {
	if si == len(steps) {
		return emit(b)
	}
	st := steps[si]
	switch st.kind {
	case stepCompare:
		c := st.cmp
		// Binder form: Var = expr with the var still unbound.
		if c.Op == pql.CmpEq {
			if v, ok := c.L.(*pql.Var); ok && !v.Wildcard() {
				if _, bound := b[v.Name]; !bound && termGround(c.R, b) {
					val, err := evalTerm(c.R, b, e.env)
					if err != nil {
						return err
					}
					b[v.Name] = val
					err = e.joinFrom(steps, si+1, b, deltaStep, deltaTuples, emit)
					delete(b, v.Name)
					return err
				}
			}
			if v, ok := c.R.(*pql.Var); ok && !v.Wildcard() {
				if _, bound := b[v.Name]; !bound && termGround(c.L, b) {
					val, err := evalTerm(c.L, b, e.env)
					if err != nil {
						return err
					}
					b[v.Name] = val
					err = e.joinFrom(steps, si+1, b, deltaStep, deltaTuples, emit)
					delete(b, v.Name)
					return err
				}
			}
		}
		ok, err := evalCompare(c, b, e.env)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		return e.joinFrom(steps, si+1, b, deltaStep, deltaTuples, emit)

	case stepNegated:
		t := make(Tuple, len(st.atom.Args))
		for i, a := range st.atom.Args {
			v, err := evalTerm(a, b, e.env)
			if err != nil {
				return err
			}
			t[i] = v
		}
		rel := e.db.Get(st.atom.Pred)
		if rel != nil && rel.Contains(t) {
			return nil
		}
		return e.joinFrom(steps, si+1, b, deltaStep, deltaTuples, emit)

	default: // stepPositive
		var candidates []Tuple
		if si == deltaStep {
			candidates = deltaTuples
		} else {
			rel := e.db.Get(st.atom.Pred)
			if rel == nil {
				return nil
			}
			// Use an index over the argument positions that are already
			// ground (variables bound earlier, or constants).
			var cols []int
			var key []value.Value
			for i, a := range st.atom.Args {
				switch a := a.(type) {
				case *pql.Var:
					if a.Wildcard() {
						continue
					}
					if v, ok := b[a.Name]; ok {
						cols = append(cols, i)
						key = append(key, v)
					}
				case *pql.Const:
					cols = append(cols, i)
					key = append(key, a.Val)
				default:
					if termGround(a, b) {
						v, err := evalTerm(a, b, e.env)
						if err != nil {
							return err
						}
						cols = append(cols, i)
						key = append(key, v)
					}
				}
			}
			candidates = rel.Lookup(cols, key)
		}
		for _, t := range candidates {
			if len(t) != len(st.atom.Args) {
				return fmt.Errorf("pql: %s: arity mismatch binding %s", st.atom.Pos, st.atom.Pred)
			}
			newVars, ok, err := e.unify(st.atom, t, b)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			if err := e.joinFrom(steps, si+1, b, deltaStep, deltaTuples, emit); err != nil {
				return err
			}
			for _, n := range newVars {
				delete(b, n)
			}
		}
		return nil
	}
}

// unify matches tuple t against atom args under b, extending b with newly
// bound variables (returned so the caller can backtrack).
func (e *Evaluator) unify(a *pql.Atom, t Tuple, b binding) (newVars []string, ok bool, err error) {
	for i, arg := range a.Args {
		switch arg := arg.(type) {
		case *pql.Var:
			if arg.Wildcard() {
				continue
			}
			if v, bound := b[arg.Name]; bound {
				if !v.Equal(t[i]) {
					for _, n := range newVars {
						delete(b, n)
					}
					return nil, false, nil
				}
				continue
			}
			b[arg.Name] = t[i]
			newVars = append(newVars, arg.Name)
		case *pql.Const:
			if !arg.Val.Equal(t[i]) {
				for _, n := range newVars {
					delete(b, n)
				}
				return nil, false, nil
			}
		default:
			if !termGround(arg, b) {
				return nil, false, fmt.Errorf("pql: %s: argument %s of %s must be ground when matched", a.Pos, arg, a.Pred)
			}
			v, err := evalTerm(arg, b, e.env)
			if err != nil {
				return nil, false, err
			}
			if !v.Equal(t[i]) {
				for _, n := range newVars {
					delete(b, n)
				}
				return nil, false, nil
			}
		}
	}
	return newVars, true, nil
}
