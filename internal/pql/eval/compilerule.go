package eval

import (
	"ariadne/internal/pql"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/value"
)

// compileRule translates one rule into closure steps.
//
// Shape requirements (anything else is ErrNotCompilable):
//   - no aggregates in the head;
//   - every record-local EDB literal (superstep, value, evolution,
//     send/receive_message, prov_send, emitted tables, edge_value) is
//     located at the head's location variable;
//   - superstep positions use a single "current" variable, or — for value
//     literals — the predecessor variable introduced by an evolution
//     literal (satisfied from retention);
//   - remote access happens only through IDB predicates (database lookups)
//     or static edges, exactly the VC-compatible discipline of Def. 4.1.
func compileRule(r *pql.Rule, q *analysis.Query, db *Database, sg StaticGraph) (*crule, error) {
	for _, a := range r.Head.Args {
		if containsAgg(a) {
			return nil, notCompilable(r.Pos, "aggregates require the interpretive evaluator")
		}
	}
	rc := &ruleCompiler{
		r: r, q: q, sg: sg, dbRef: db,
		slotOf: map[string]int{},
	}
	return rc.compile()
}

type ruleCompiler struct {
	r     *pql.Rule
	q     *analysis.Query
	sg    StaticGraph
	dbRef *Database

	slotOf map[string]int
	nslots int
	bound  map[int]bool // compile-time bound slots

	anchorVar string // head location var ("" when head location is const)
	curSSVar  string // the current-superstep variable
	prevSSVar string // the evolution predecessor variable, if any

	steps []cstep
	// Global-rule driver (semi-naive over the first scheduled IDB).
	drivePred  string
	driveMatch []argMatcher
}

func (rc *ruleCompiler) slot(name string) int {
	if s, ok := rc.slotOf[name]; ok {
		return s
	}
	s := rc.nslots
	rc.slotOf[name] = s
	rc.nslots++
	return s
}

func (rc *ruleCompiler) isBound(t pql.Term) bool {
	var vs []*pql.Var
	vs = pql.Vars(t, vs)
	for _, v := range vs {
		if v.Wildcard() {
			return false
		}
		if !rc.bound[rc.slot(v.Name)] {
			return false
		}
	}
	return true
}

func (rc *ruleCompiler) markBound(t pql.Term) {
	var vs []*pql.Var
	vs = pql.Vars(t, vs)
	for _, v := range vs {
		if !v.Wildcard() {
			rc.bound[rc.slot(v.Name)] = true
		}
	}
}

// localEDBs are the predicates satisfiable from a RecordView.
func isRecordLocalEDB(q *analysis.Query, pred string) bool {
	switch pred {
	case "superstep", "value", "evolution", "send_message", "receive_message", "prov_send", "edge_value":
		return true
	}
	// Emitted analytic tables are extra EDBs.
	if _, ok := q.Env().ExtraEDBs[pred]; ok {
		return true
	}
	return false
}

func (rc *ruleCompiler) compile() (*crule, error) {
	r := rc.r
	rc.bound = map[int]bool{}

	// Identify the anchor (head location) and superstep variables.
	if v, ok := r.Head.Args[0].(*pql.Var); ok && !v.Wildcard() {
		rc.anchorVar = v.Name
	}
	hasRecordLocal := false
	hasStatic := false
	hasIDB := false
	for _, lit := range r.Body {
		pl, ok := lit.(*pql.PredLit)
		if !ok {
			continue
		}
		switch {
		case pl.Atom.Pred == "edge":
			hasStatic = true
		case isRecordLocalEDB(rc.q, pl.Atom.Pred):
			hasRecordLocal = true
			if pl.Negated && pl.Atom.Pred != "receive_message" && pl.Atom.Pred != "send_message" {
				return nil, notCompilable(pl.Atom.Pos, "negated %s", pl.Atom.Pred)
			}
			// Record-local literals must sit at the anchor.
			if v, ok := pl.Atom.Args[0].(*pql.Var); !ok || v.Name != rc.anchorVar {
				return nil, notCompilable(pl.Atom.Pos, "record predicate %s must be located at the head's location variable", pl.Atom.Pred)
			}
		case func() bool { _, isIDB := rc.q.IDBs[pl.Atom.Pred]; return isIDB }():
			hasIDB = true
		default:
			return nil, notCompilable(pl.Atom.Pos, "EDB %s is not record-local", pl.Atom.Pred)
		}
	}
	// Discover the evolution variables first (they type the ss positions).
	for _, lit := range r.Body {
		pl, ok := lit.(*pql.PredLit)
		if !ok || pl.Negated || pl.Atom.Pred != "evolution" {
			continue
		}
		if rc.prevSSVar != "" {
			return nil, notCompilable(pl.Atom.Pos, "multiple evolution literals")
		}
		j, ok1 := asVar(pl.Atom.Args[1])
		i, ok2 := asVar(pl.Atom.Args[2])
		if !ok1 || !ok2 {
			return nil, notCompilable(pl.Atom.Pos, "evolution needs variable superstep arguments")
		}
		rc.prevSSVar, rc.curSSVar = j, i
	}

	kind := ruleRecord
	if !hasRecordLocal {
		if hasIDB {
			kind = ruleGlobal
		} else if hasStatic {
			kind = ruleStatic
		} else if len(r.Body) == 0 {
			kind = ruleStatic // fact rule
		} else {
			kind = ruleGlobal
		}
	}

	// Anchor step: bind the location (and lazily the current superstep).
	if kind == ruleRecord && rc.anchorVar != "" {
		locSlot := rc.slot(rc.anchorVar)
		rc.steps = append(rc.steps, func(rv *RecordView, s *slots, k func() error) error {
			return bindInt(s, locSlot, rv.Vertex, k)
		})
		rc.bound[locSlot] = true
	}

	// Greedy scheduling, mirroring the interpretive planner.
	remaining := append([]pql.Literal(nil), r.Body...)
	for len(remaining) > 0 {
		progressed := false
		// 1. Bindable comparisons and ground negations first.
		for i := 0; i < len(remaining); i++ {
			switch lit := remaining[i].(type) {
			case *pql.CmpLit:
				st, ok, err := rc.compileCmp(lit)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				rc.steps = append(rc.steps, st)
				remaining = append(remaining[:i], remaining[i+1:]...)
				i--
				progressed = true
			case *pql.PredLit:
				if !lit.Negated {
					continue
				}
				ground := true
				for _, a := range lit.Atom.Args {
					if !rc.isBound(a) {
						ground = false
						break
					}
				}
				if !ground {
					continue
				}
				st, err := rc.compileNegated(lit.Atom)
				if err != nil {
					return nil, err
				}
				rc.steps = append(rc.steps, st)
				remaining = append(remaining[:i], remaining[i+1:]...)
				i--
				progressed = true
			}
		}
		// 2. Then the best positive literal: cheap record-locals before
		// enumerators before IDB lookups.
		bestIdx, bestCost := -1, 1<<30
		for i, lit := range remaining {
			pl, ok := lit.(*pql.PredLit)
			if !ok || pl.Negated {
				continue
			}
			cost := rc.literalCost(pl.Atom, kind)
			if cost < bestCost {
				bestIdx, bestCost = i, cost
			}
		}
		if bestIdx >= 0 {
			pl := remaining[bestIdx].(*pql.PredLit)
			_, isIDB := rc.q.IDBs[pl.Atom.Pred]
			if kind == ruleGlobal && rc.drivePred == "" && isIDB {
				// The first IDB drives the rule semi-naively: compile its
				// arguments as matchers over driving tuples, not a step.
				rc.drivePred = pl.Atom.Pred
				for _, arg := range pl.Atom.Args {
					m, err := rc.matcher(arg)
					if err != nil {
						return nil, err
					}
					rc.driveMatch = append(rc.driveMatch, m)
				}
			} else {
				st, err := rc.compilePositive(pl.Atom, kind)
				if err != nil {
					return nil, err
				}
				rc.steps = append(rc.steps, st)
			}
			remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
			progressed = true
		}
		if !progressed {
			return nil, notCompilable(r.Pos, "cannot schedule rule body for compilation")
		}
	}

	if kind == ruleGlobal && rc.drivePred == "" {
		return nil, notCompilable(r.Pos, "global rule without an IDB driver")
	}

	// Head argument evaluators.
	cr := &crule{
		src: r, kind: kind, steps: rc.steps,
		headPred: r.Head.Pred, headArity: len(r.Head.Args),
		drivePred: rc.drivePred, driveMatch: rc.driveMatch,
	}
	for _, a := range r.Head.Args {
		fn, err := rc.compileTerm(a)
		if err != nil {
			return nil, err
		}
		cr.headArgs = append(cr.headArgs, fn)
	}
	cr.nslots = rc.nslots
	return cr, nil
}

// literalCost orders positive literals for scheduling: lower is earlier.
func (rc *ruleCompiler) literalCost(a *pql.Atom, kind ruleKind) int {
	if _, isIDB := rc.q.IDBs[a.Pred]; isIDB {
		if kind == ruleGlobal {
			return 50 // the driving scan
		}
		return 100
	}
	switch a.Pred {
	case "superstep", "prov_send", "evolution":
		return 1
	case "value":
		return 2
	case "receive_message", "send_message":
		return 10
	case "edge":
		if rc.isBound(a.Args[0]) && rc.isBound(a.Args[1]) {
			return 5 // membership test
		}
		return 20
	case "edge_value":
		if rc.isBound(a.Args[1]) {
			return 6
		}
		return 20
	default: // emitted tables
		return 10
	}
}

func asVar(t pql.Term) (string, bool) {
	v, ok := t.(*pql.Var)
	if !ok || v.Wildcard() {
		return "", false
	}
	return v.Name, true
}

// --- slot binding helpers (runtime) ---

func bindInt(s *slots, slot int, v int64, k func() error) error {
	return bindVal(s, slot, value.NewInt(v), k)
}

func bindVal(s *slots, slot int, v value.Value, k func() error) error {
	if slot < 0 {
		return k()
	}
	if s.bound[slot] {
		if !s.val[slot].Equal(v) {
			return nil
		}
		return k()
	}
	s.val[slot] = v
	s.bound[slot] = true
	err := k()
	s.bound[slot] = false
	return err
}

// argMatcher compiles one atom argument into a match-or-bind closure
// operating on a produced value.
type argMatcher func(s *slots, got value.Value, k func() error) error

func (rc *ruleCompiler) matcher(t pql.Term) (argMatcher, error) {
	switch t := t.(type) {
	case *pql.Var:
		if t.Wildcard() {
			return func(s *slots, _ value.Value, k func() error) error { return k() }, nil
		}
		slot := rc.slot(t.Name)
		rc.bound[slot] = true // after this step the var is bound
		return func(s *slots, got value.Value, k func() error) error {
			return bindVal(s, slot, got, k)
		}, nil
	case *pql.Const:
		cv := t.Val
		return func(s *slots, got value.Value, k func() error) error {
			if !cv.Equal(got) {
				return nil
			}
			return k()
		}, nil
	default:
		if !rc.isBound(t) {
			return nil, notCompilable(rc.r.Pos, "argument expression %s has unbound variables", t)
		}
		fn, err := rc.compileTerm(t)
		if err != nil {
			return nil, err
		}
		return func(s *slots, got value.Value, k func() error) error {
			want, err := fn(s)
			if err != nil {
				return err
			}
			if !want.Equal(got) {
				return nil
			}
			return k()
		}, nil
	}
}

// compileTerm compiles a term into a slot-based evaluator.
func (rc *ruleCompiler) compileTerm(t pql.Term) (termFn, error) {
	switch t := t.(type) {
	case *pql.Const:
		v := t.Val
		return func(*slots) (value.Value, error) { return v, nil }, nil
	case *pql.Var:
		if t.Wildcard() {
			return nil, notCompilable(t.Pos, "wildcard in evaluated term")
		}
		slot := rc.slot(t.Name)
		name, pos := t.Name, t.Pos
		return func(s *slots) (value.Value, error) {
			if !s.bound[slot] {
				return value.NullValue, notCompilable(pos, "unbound variable %s at runtime", name)
			}
			return s.val[slot], nil
		}, nil
	case *pql.BinExpr:
		l, err := rc.compileTerm(t.L)
		if err != nil {
			return nil, err
		}
		if t.Op == pql.OpNeg {
			return func(s *slots) (value.Value, error) {
				lv, err := l(s)
				if err != nil {
					return value.NullValue, err
				}
				return value.Neg(lv)
			}, nil
		}
		rf, err := rc.compileTerm(t.R)
		if err != nil {
			return nil, err
		}
		op := t.Op
		return func(s *slots) (value.Value, error) {
			lv, err := l(s)
			if err != nil {
				return value.NullValue, err
			}
			rv, err := rf(s)
			if err != nil {
				return value.NullValue, err
			}
			switch op {
			case pql.OpAdd:
				return value.Add(lv, rv)
			case pql.OpSub:
				return value.Sub(lv, rv)
			case pql.OpMul:
				return value.Mul(lv, rv)
			case pql.OpDiv:
				return value.Div(lv, rv)
			default:
				return value.Mod(lv, rv)
			}
		}, nil
	case *pql.Call:
		fn, ok := rc.q.Env().Funcs[t.Name]
		if !ok {
			return nil, notCompilable(t.Pos, "unknown function %s", t.Name)
		}
		args := make([]termFn, len(t.Args))
		for i, a := range t.Args {
			af, err := rc.compileTerm(a)
			if err != nil {
				return nil, err
			}
			args[i] = af
		}
		return func(s *slots) (value.Value, error) {
			vals := make([]value.Value, len(args))
			for i, af := range args {
				v, err := af(s)
				if err != nil {
					return value.NullValue, err
				}
				vals[i] = v
			}
			return fn.Fn(vals)
		}, nil
	default:
		return nil, notCompilable(rc.r.Pos, "cannot compile term %s", t)
	}
}

// compileCmp compiles a comparison when its variables are bound (or it is a
// binder). ok=false means "not schedulable yet".
func (rc *ruleCompiler) compileCmp(c *pql.CmpLit) (cstep, bool, error) {
	lb, rb := rc.isBound(c.L), rc.isBound(c.R)
	// Binder: fresh var = ground expr.
	if c.Op == pql.CmpEq {
		if v, ok := asVar(c.L); ok && !rc.bound[rc.slot(v)] && rb {
			fn, err := rc.compileTerm(c.R)
			if err != nil {
				return nil, false, err
			}
			slot := rc.slot(v)
			rc.bound[slot] = true
			return func(rv *RecordView, s *slots, k func() error) error {
				val, err := fn(s)
				if err != nil {
					return err
				}
				return bindVal(s, slot, val, k)
			}, true, nil
		}
		if v, ok := asVar(c.R); ok && !rc.bound[rc.slot(v)] && lb {
			fn, err := rc.compileTerm(c.L)
			if err != nil {
				return nil, false, err
			}
			slot := rc.slot(v)
			rc.bound[slot] = true
			return func(rv *RecordView, s *slots, k func() error) error {
				val, err := fn(s)
				if err != nil {
					return err
				}
				return bindVal(s, slot, val, k)
			}, true, nil
		}
	}
	if !lb || !rb {
		return nil, false, nil
	}
	lf, err := rc.compileTerm(c.L)
	if err != nil {
		return nil, false, err
	}
	rf, err := rc.compileTerm(c.R)
	if err != nil {
		return nil, false, err
	}
	op := c.Op
	return func(rv *RecordView, s *slots, k func() error) error {
		lv, err := lf(s)
		if err != nil {
			return err
		}
		rvv, err := rf(s)
		if err != nil {
			return err
		}
		ok := false
		switch op {
		case pql.CmpEq:
			ok = lv.Equal(rvv)
		case pql.CmpNeq:
			ok = !lv.Equal(rvv)
		case pql.CmpLt:
			ok = lv.Compare(rvv) < 0
		case pql.CmpLe:
			ok = lv.Compare(rvv) <= 0
		case pql.CmpGt:
			ok = lv.Compare(rvv) > 0
		case pql.CmpGe:
			ok = lv.Compare(rvv) >= 0
		}
		if !ok {
			return nil
		}
		return k()
	}, true, nil
}
