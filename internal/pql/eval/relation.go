// Package eval implements PQL query evaluation: relations with hash
// indexes, semi-naive stratified Datalog with negation and aggregation, and
// the three evaluation drivers of the paper — Naive (full materialization,
// §6.2 "Naive"), Layered (§5.1), and Online (§5.2).
package eval

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ariadne/internal/value"
)

// Tuple is one relational row.
type Tuple []value.Value

// Key returns a canonical byte-string identity for the tuple, used for
// set-semantics deduplication. Numerically equal Ints and Floats encode
// identically (both as floats) so 3 and 3.0 are one tuple.
func (t Tuple) Key() string {
	var buf []byte
	for _, v := range t {
		if v.Kind() == value.Int {
			v = value.NewFloat(v.Float())
		}
		buf = v.AppendBinary(buf)
	}
	return string(buf)
}

// String renders the tuple for diagnostics.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Clone copies the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Relation is a set of same-arity tuples with lazily built, incrementally
// maintained hash indexes on column subsets.
//
// Concurrency contract: concurrent readers (Lookup/LookupKey/Contains/All)
// are safe with each other — lazy index construction is serialized behind
// mu, and everything else they touch is read-only. Mutations (Insert,
// Delete, Clear) must not overlap with readers or each other; the parallel
// evaluator guarantees this by alternating read-only worker phases with a
// single-goroutine merge phase.
type Relation struct {
	arity int
	rows  map[string]Tuple
	order []Tuple // insertion order, for deterministic iteration

	mu      sync.Mutex // guards indexes map + lazy index construction
	indexes map[string]*index
}

// index is a hash index over a column subset.
type index struct {
	cols []int
	m    map[string][]Tuple
}

// NewRelation creates an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	return &Relation{arity: arity, rows: map[string]Tuple{}}
}

// Arity returns the column count.
func (r *Relation) Arity() int { return r.arity }

// Len returns the tuple count.
func (r *Relation) Len() int { return len(r.rows) }

// Insert adds t, reporting whether it was new. The tuple is retained.
func (r *Relation) Insert(t Tuple) bool {
	return r.InsertKeyed(t.Key(), t)
}

// InsertKeyed is Insert with the tuple's canonical key already computed
// (the parallel merge phase reuses the key computed by shard workers).
func (r *Relation) InsertKeyed(k string, t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("eval: inserting arity-%d tuple into arity-%d relation", len(t), r.arity))
	}
	if _, ok := r.rows[k]; ok {
		return false
	}
	r.rows[k] = t
	r.order = append(r.order, t)
	r.mu.Lock()
	for _, idx := range r.indexes {
		pk := projKey(t, idx.cols)
		idx.m[pk] = append(idx.m[pk], t)
	}
	r.mu.Unlock()
	return true
}

// Delete removes t, reporting whether it was present. Deletion is used only
// by aggregate-group replacement.
func (r *Relation) Delete(t Tuple) bool {
	k := t.Key()
	old, ok := r.rows[k]
	if !ok {
		return false
	}
	delete(r.rows, k)
	for i, row := range r.order {
		if &row[0] == &old[0] || row.Key() == k {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.mu.Lock()
	for _, idx := range r.indexes {
		pk := projKey(old, idx.cols)
		lst := idx.m[pk]
		for i, row := range lst {
			if row.Key() == k {
				idx.m[pk] = append(lst[:i], lst[i+1:]...)
				break
			}
		}
	}
	r.mu.Unlock()
	return true
}

// Contains reports membership.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.rows[t.Key()]
	return ok
}

// ContainsKey reports membership by canonical tuple key (see Tuple.Key).
func (r *Relation) ContainsKey(k string) bool {
	_, ok := r.rows[k]
	return ok
}

// containsKeyBytes is ContainsKey without the string allocation: the
// conversion sits inside the map index expression, which the compiler
// optimizes to a zero-copy lookup.
func (r *Relation) containsKeyBytes(k []byte) bool {
	_, ok := r.rows[string(k)]
	return ok
}

// All returns the tuples in insertion order. The slice must not be modified.
func (r *Relation) All() []Tuple { return r.order }

// Lookup returns the tuples whose values at cols equal key, building (and
// thereafter maintaining) a hash index on cols. Safe for concurrent use by
// multiple readers.
func (r *Relation) Lookup(cols []int, key []value.Value) []Tuple {
	if len(cols) == 0 {
		return r.order
	}
	idx := r.index(encodeCols(cols), cols)
	return idx.m[keyOf(key)]
}

// LookupKey is Lookup with the column subset and projection key already
// encoded (colsKey via encodeCols, key via the projKey encoding) — the
// allocation-free fast path used by slot-compiled rule programs. Safe for
// concurrent use by multiple readers.
func (r *Relation) LookupKey(cols []int, colsKey string, key []byte) []Tuple {
	if len(cols) == 0 {
		return r.order
	}
	idx := r.index(colsKey, cols)
	return idx.m[string(key)]
}

// index returns the hash index on cols, building it under the lock on first
// use so concurrent lookups from shard workers race safely.
func (r *Relation) index(ck string, cols []int) *index {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx, ok := r.indexes[ck]
	if !ok {
		idx = &index{cols: append([]int(nil), cols...), m: make(map[string][]Tuple, len(r.rows))}
		for _, t := range r.order {
			pk := projKey(t, cols)
			idx.m[pk] = append(idx.m[pk], t)
		}
		if r.indexes == nil {
			r.indexes = map[string]*index{}
		}
		r.indexes[ck] = idx
	}
	return idx
}

func projKey(t Tuple, cols []int) string {
	var buf [64]byte
	b := buf[:0]
	for _, c := range cols {
		v := t[c]
		if v.Kind() == value.Int {
			v = value.NewFloat(v.Float())
		}
		b = v.AppendBinary(b)
	}
	return string(b)
}

// keyOf encodes the lookup key values (all columns of key, in order).
func keyOf(key []value.Value) string {
	var buf [64]byte
	b := buf[:0]
	for _, v := range key {
		if v.Kind() == value.Int {
			v = value.NewFloat(v.Float())
		}
		b = v.AppendBinary(b)
	}
	return string(b)
}

// encodeCols identifies a column subset compactly (columns are tiny ints).
func encodeCols(cols []int) string {
	var buf [16]byte
	b := buf[:0]
	for _, c := range cols {
		b = append(b, byte(c))
	}
	return string(b)
}

// Per-entry overhead constants for MemSize: a tuple costs its values plus a
// slice header; a hash-index bucket costs its key string (header + bytes),
// the bucket slice header, map bucket bookkeeping, and one pointer-sized
// slot per indexed tuple (the tuples themselves are shared with rows).
const (
	memTupleOverhead  = 24
	memBucketOverhead = 16 + 24 + 8 // string header + slice header + map slot
	memIndexOverhead  = 48          // index struct + cols slice
	memEntryPointer   = 8
)

// MemSize estimates the relation's footprint in bytes: tuple storage plus
// the overhead of every hash index built so far. Indexes share tuple
// storage with rows, but their buckets, key strings, and per-entry pointers
// are real memory the naive-mode budget must account for.
func (r *Relation) MemSize() int64 {
	var s int64
	for _, t := range r.order {
		s += memTupleOverhead
		for _, v := range t {
			s += int64(v.MemSize())
		}
	}
	r.mu.Lock()
	for _, idx := range r.indexes {
		s += memIndexOverhead
		for k, lst := range idx.m {
			s += memBucketOverhead + int64(len(k)) + memEntryPointer*int64(len(lst))
		}
	}
	r.mu.Unlock()
	return s
}

// Sorted returns the tuples sorted lexicographically, for deterministic
// result reporting.
func (r *Relation) Sorted() []Tuple {
	out := make([]Tuple, len(r.order))
	copy(out, r.order)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if c := a[k].Compare(b[k]); c != 0 {
				return c < 0
			}
		}
		return len(a) < len(b)
	})
	return out
}

// Database is a named collection of relations.
type Database struct {
	rels map[string]*Relation
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{rels: map[string]*Relation{}}
}

// Relation returns the named relation, creating it with the given arity on
// first use.
func (d *Database) Relation(name string, arity int) *Relation {
	r, ok := d.rels[name]
	if !ok {
		r = NewRelation(arity)
		d.rels[name] = r
	}
	return r
}

// Get returns the named relation or nil.
func (d *Database) Get(name string) *Relation { return d.rels[name] }

// Names returns the relation names, sorted.
func (d *Database) Names() []string {
	out := make([]string, 0, len(d.rels))
	for n := range d.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MemSize estimates the database footprint in bytes.
func (d *Database) MemSize() int64 {
	var s int64
	for _, r := range d.rels {
		s += r.MemSize()
	}
	return s
}
