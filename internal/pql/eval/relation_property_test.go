package eval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ariadne/internal/value"
)

// TestRelationIndexConsistency drives a relation with interleaved inserts,
// deletes, and lookups over random column subsets and checks every lookup
// against a naive reference set.
func TestRelationIndexConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel := NewRelation(3)
		ref := map[string]Tuple{}
		mk := func() Tuple {
			return Tuple{
				value.NewInt(int64(r.Intn(5))),
				value.NewInt(int64(r.Intn(5))),
				value.NewInt(int64(r.Intn(5))),
			}
		}
		for step := 0; step < 200; step++ {
			switch r.Intn(4) {
			case 0, 1: // insert
				tup := mk()
				_, existed := ref[tup.Key()]
				if rel.Insert(tup) == existed {
					return false
				}
				ref[tup.Key()] = tup
			case 2: // delete
				tup := mk()
				_, existed := ref[tup.Key()]
				if rel.Delete(tup) != existed {
					return false
				}
				delete(ref, tup.Key())
			default: // lookup on a random column subset
				var cols []int
				var key []value.Value
				probe := mk()
				for c := 0; c < 3; c++ {
					if r.Intn(2) == 0 {
						cols = append(cols, c)
						key = append(key, probe[c])
					}
				}
				got := rel.Lookup(cols, key)
				want := 0
				for _, tup := range ref {
					match := true
					for i, c := range cols {
						if !tup[c].Equal(key[i]) {
							match = false
							break
						}
					}
					if match {
						want++
					}
				}
				if len(got) != want {
					return false
				}
			}
			if rel.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestSortedIsTotalOrder verifies Sorted's comparator sanity on mixed kinds.
func TestSortedIsTotalOrder(t *testing.T) {
	rel := NewRelation(2)
	rel.Insert(Tuple{value.NewString("b"), value.NewInt(1)})
	rel.Insert(Tuple{value.NewInt(5), value.NewFloat(2)})
	rel.Insert(Tuple{value.NewString("a"), value.NewInt(9)})
	rel.Insert(Tuple{value.NewInt(5), value.NewFloat(1)})
	s := rel.Sorted()
	for i := 1; i < len(s); i++ {
		prev, cur := s[i-1], s[i]
		less := false
		for k := 0; k < 2; k++ {
			if c := prev[k].Compare(cur[k]); c != 0 {
				less = c < 0
				break
			}
		}
		if !less {
			t.Fatalf("sorted order violated at %d: %v !< %v", i, prev, cur)
		}
	}
}
