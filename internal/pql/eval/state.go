package eval

import (
	"fmt"
	"math"
	"sort"

	"ariadne/internal/value"
)

// State save/restore for crash recovery. Online query evaluation is an
// engine observer; at each checkpoint barrier the driver snapshots the
// evaluation state — the Datalog database (EDB and IDB relations, the
// "query-relation deltas" accumulated so far) plus the evaluator- or
// compiled-path cursors — so a resumed run derives exactly the tuples a
// failure-free run would. All encoding rides on value.Blob; decoding never
// panics on corrupt input (BlobReader is bounds-checked with a sticky
// error).

// Clear empties the relation in place, preserving its identity: compiled
// rules capture *Relation pointers in their emit closures, so restore must
// refill the same objects rather than swap them.
func (r *Relation) Clear() {
	r.rows = map[string]Tuple{}
	r.order = nil
	for _, idx := range r.indexes {
		idx.m = map[string][]Tuple{}
	}
}

// SaveState serializes every relation: name, arity, and tuples in insertion
// order (order matters — compiled global rules track insertion-order
// cursors into Relation.All()).
func (d *Database) SaveState(w *value.Blob) {
	names := d.Names()
	w.Uvarint(uint64(len(names)))
	for _, name := range names {
		rel := d.rels[name]
		w.String(name)
		w.Uvarint(uint64(rel.arity))
		w.Uvarint(uint64(len(rel.order)))
		for _, t := range rel.order {
			for _, v := range t {
				w.Value(v)
			}
		}
	}
}

// LoadState restores the database to a SaveState snapshot: existing
// relations are cleared in place (pointer identity preserved) and refilled;
// saved relations that do not exist yet are created.
func (d *Database) LoadState(r *value.BlobReader) error {
	for _, rel := range d.rels {
		rel.Clear()
	}
	n := r.Count()
	for i := 0; i < n && r.Err() == nil; i++ {
		name := r.String()
		arity := r.Count()
		rows := r.Count()
		if r.Err() != nil {
			break
		}
		rel := d.Relation(name, arity)
		if rel.arity != arity {
			return fmt.Errorf("eval: saved relation %s has arity %d, existing has %d", name, arity, rel.arity)
		}
		for j := 0; j < rows && r.Err() == nil; j++ {
			t := make(Tuple, arity)
			for k := range t {
				t[k] = r.Value()
			}
			rel.Insert(t)
		}
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("eval: corrupt database state: %w", err)
	}
	return nil
}

// SaveState serializes the compiled evaluator's mutable state beyond the
// database: counters, the static-rules-done flag, and each global rule's
// insertion-order drive cursor (in stratum/rule order, which is
// deterministic for a given query).
func (c *Compiled) SaveState(w *value.Blob) {
	w.Bool(c.staticDone)
	w.Uvarint(uint64(c.derived))
	w.Uvarint(uint64(c.records))
	var cursors []int
	for _, stratum := range c.strata {
		for _, r := range stratum {
			cursors = append(cursors, r.driveCursor)
		}
	}
	w.Uvarint(uint64(len(cursors)))
	for _, cur := range cursors {
		w.Uvarint(uint64(cur))
	}
}

// LoadState restores a SaveState snapshot taken from a Compiled built for
// the same query.
func (c *Compiled) LoadState(r *value.BlobReader) error {
	c.staticDone = r.Bool()
	c.derived = int64(r.Uvarint())
	c.records = int64(r.Uvarint())
	n := r.Count()
	var rules []*crule
	for _, stratum := range c.strata {
		rules = append(rules, stratum...)
	}
	if r.Err() == nil && n != len(rules) {
		return fmt.Errorf("eval: saved state has %d rule cursors, query has %d rules", n, len(rules))
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		rules[i].driveCursor = int(r.Uvarint())
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("eval: corrupt compiled state: %w", err)
	}
	return nil
}

// SaveState serializes the interpretive evaluator's state beyond the
// database: work counters and the aggregate group tables (incremental
// SUM/COUNT/AVG/MIN/MAX accumulators with their dedup sets).
func (e *Evaluator) SaveState(w *value.Blob) {
	w.Uvarint(uint64(e.stats.rounds.Load()))
	w.Uvarint(uint64(e.stats.derivations.Load()))
	w.Uvarint(uint64(e.stats.factsAdded.Load()))
	preds := make([]string, 0, len(e.aggs))
	for p := range e.aggs {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	w.Uvarint(uint64(len(preds)))
	for _, p := range preds {
		table := e.aggs[p]
		w.String(p)
		keys := make([]string, 0, len(table.groups))
		for k := range table.groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.Uvarint(uint64(len(keys)))
		for _, k := range keys {
			st := table.groups[k]
			w.String(k)
			w.Uvarint(uint64(st.count))
			w.Float(st.sum)
			w.Float(st.min)
			w.Float(st.max)
			seen := make([]string, 0, len(st.seen))
			for s := range st.seen {
				seen = append(seen, s)
			}
			sort.Strings(seen)
			w.Uvarint(uint64(len(seen)))
			for _, s := range seen {
				w.String(s)
			}
			w.Bool(st.current != nil)
			if st.current != nil {
				w.Uvarint(uint64(len(st.current)))
				for _, v := range st.current {
					w.Value(v)
				}
			}
		}
	}
}

// LoadState restores a SaveState snapshot taken from an Evaluator built for
// the same query.
func (e *Evaluator) LoadState(r *value.BlobReader) error {
	// The blob carries the three seed counters only; the parallel-round
	// breakdown (per-stratum rounds, exchange volume) restarts at zero on
	// resume.
	e.stats.rounds.Store(int64(r.Uvarint()))
	e.stats.derivations.Store(int64(r.Uvarint()))
	e.stats.factsAdded.Store(int64(r.Uvarint()))
	e.pending = map[string][]Tuple{}
	nPreds := r.Count()
	for i := 0; i < nPreds && r.Err() == nil; i++ {
		pred := r.String()
		table, ok := e.aggs[pred]
		if r.Err() == nil && !ok {
			return fmt.Errorf("eval: saved aggregate table %s unknown to this query", pred)
		}
		nGroups := r.Count()
		if r.Err() != nil {
			break
		}
		table.groups = map[string]*aggState{}
		for j := 0; j < nGroups && r.Err() == nil; j++ {
			k := r.String()
			st := &aggState{min: math.Inf(1), max: math.Inf(-1), seen: map[string]bool{}}
			st.count = int64(r.Uvarint())
			st.sum = r.Float()
			st.min = r.Float()
			st.max = r.Float()
			nSeen := r.Count()
			for s := 0; s < nSeen && r.Err() == nil; s++ {
				st.seen[r.String()] = true
			}
			if r.Bool() {
				arity := r.Count()
				if r.Err() != nil {
					break
				}
				st.current = make(Tuple, arity)
				for c := range st.current {
					st.current[c] = r.Value()
				}
			}
			table.groups[k] = st
		}
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("eval: corrupt evaluator state: %w", err)
	}
	return nil
}
