package eval

import (
	"errors"
	"math/rand"
	"testing"

	"ariadne/internal/pql"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/value"
)

// fakeGraph is a tiny StaticGraph for compiler tests.
type fakeGraph struct {
	n   int
	out map[int64][]int64
	w   map[[2]int64]float64
	in  map[int64][]int64
}

func newFakeGraph(n int, edges [][2]int64) *fakeGraph {
	f := &fakeGraph{n: n, out: map[int64][]int64{}, w: map[[2]int64]float64{}, in: map[int64][]int64{}}
	for _, e := range edges {
		f.out[e[0]] = append(f.out[e[0]], e[1])
		f.in[e[1]] = append(f.in[e[1]], e[0])
		f.w[e] = 1
	}
	return f
}

func (f *fakeGraph) NumVertices() int { return f.n }
func (f *fakeGraph) OutNeighbors(v int64) ([]int64, []float64) {
	dst := f.out[v]
	ws := make([]float64, len(dst))
	for i, d := range dst {
		ws[i] = f.w[[2]int64{v, d}]
	}
	return dst, ws
}
func (f *fakeGraph) InNeighbors(v int64) []int64 { return f.in[v] }
func (f *fakeGraph) EdgeWeight(src, dst int64) (float64, bool) {
	w, ok := f.w[[2]int64{src, dst}]
	return w, ok
}

// runBothPaths evaluates the query over the record stream on the compiled
// path and the interpretive path and asserts every IDB relation matches.
func runBothPaths(t *testing.T, src string, env *analysis.Env, sg StaticGraph, layers [][]RecordView) {
	t.Helper()
	build := func() *analysis.Query {
		prog, err := pql.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		q, err := analysis.Analyze(prog, env.Clone())
		if err != nil {
			t.Fatal(err)
		}
		return q
	}

	// Compiled path.
	qc := build()
	cdb := NewDatabase()
	comp, err := Compile(qc, cdb, sg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, l := range layers {
		if err := comp.Layer(l); err != nil {
			t.Fatal(err)
		}
	}
	if err := comp.FinishRun(); err != nil {
		t.Fatal(err)
	}

	// Interpretive path.
	qi := build()
	idb := NewDatabase()
	ev, err := NewEvaluator(qi, idb)
	if err != nil {
		t.Fatal(err)
	}
	// Static edges.
	for v := 0; v < sg.NumVertices(); v++ {
		dst, _ := sg.OutNeighbors(int64(v))
		for _, d := range dst {
			ev.AddFact("edge", Tuple{value.NewInt(int64(v)), value.NewInt(d)})
		}
	}
	for _, l := range layers {
		for i := range l {
			feedViewInterpretive(ev, sg, &l[i])
		}
		if err := ev.Fixpoint(); err != nil {
			t.Fatal(err)
		}
	}

	for name := range qc.IDBs {
		c, it := cdb.Get(name), idb.Get(name)
		cl, il := 0, 0
		if c != nil {
			cl = c.Len()
		}
		if it != nil {
			il = it.Len()
		}
		if cl != il {
			t.Errorf("%s: compiled %d tuples vs interpretive %d\ncompiled: %v\ninterp:  %v",
				name, cl, il, rows(c), rows(it))
			continue
		}
		if c == nil {
			continue
		}
		for _, tup := range c.All() {
			if !it.Contains(tup) {
				t.Errorf("%s: compiled tuple %v missing from interpretive result", name, tup)
			}
		}
	}
}

func rows(r *Relation) []Tuple {
	if r == nil {
		return nil
	}
	return r.Sorted()
}

// feedViewInterpretive mirrors the driver's feeder for RecordViews.
func feedViewInterpretive(ev *Evaluator, sg StaticGraph, rv *RecordView) {
	x := value.NewInt(rv.Vertex)
	i := value.NewInt(rv.Superstep)
	ev.AddFact("superstep", Tuple{x, i})
	if rv.HasValue {
		ev.AddFact("value", Tuple{x, rv.Value, i})
	}
	if rv.PrevActive >= 0 {
		j := value.NewInt(rv.PrevActive)
		ev.AddFact("evolution", Tuple{x, j, i})
		if rv.HasPrevValue {
			ev.AddFact("value", Tuple{x, rv.PrevValue, j})
		}
	}
	for _, m := range rv.Sends {
		ev.AddFact("send_message", Tuple{x, value.NewInt(m.Peer), m.Val, i})
	}
	for _, m := range rv.Recvs {
		ev.AddFact("receive_message", Tuple{x, value.NewInt(m.Peer), m.Val, i})
	}
	if rv.SentAny || len(rv.Sends) > 0 {
		ev.AddFact("prov_send", Tuple{x, i})
	}
	dst, ws := sg.OutNeighbors(rv.Vertex)
	for k, d := range dst {
		ev.AddFact("edge_value", Tuple{x, value.NewInt(d), value.NewFloat(ws[k]), value.NewInt(0)})
	}
	for _, f := range rv.Emitted {
		t := make(Tuple, 0, len(f.Args)+2)
		t = append(t, x)
		t = append(t, f.Args...)
		t = append(t, i)
		ev.AddFact(f.Table, t)
	}
}

// randomLayers generates a deterministic pseudo-random record stream over a
// small graph: values evolve, messages follow edges (plus a few strays).
func randomLayers(seed int64, sg *fakeGraph, nLayers int) [][]RecordView {
	rng := rand.New(rand.NewSource(seed))
	type vstate struct {
		lastSS  int64
		lastVal value.Value
	}
	states := map[int64]*vstate{}
	var layers [][]RecordView
	for ss := 0; ss < nLayers; ss++ {
		var recs []RecordView
		for v := int64(0); v < int64(sg.n); v++ {
			if ss > 0 && rng.Intn(2) == 0 {
				continue // inactive this superstep
			}
			val := value.NewFloat(float64(rng.Intn(8)) / 2)
			rv := RecordView{
				Vertex: v, Superstep: int64(ss),
				HasValue: true, Value: val,
				PrevActive: -1,
			}
			if st, ok := states[v]; ok {
				rv.PrevActive = st.lastSS
				rv.PrevValue = st.lastVal
				rv.HasPrevValue = true
			}
			for _, d := range sg.out[v] {
				if rng.Intn(2) == 0 {
					rv.Sends = append(rv.Sends, MsgView{Peer: d, Val: val})
				}
			}
			rv.SentAny = len(rv.Sends) > 0
			for _, s := range sg.in[v] {
				if rng.Intn(2) == 0 {
					rv.Recvs = append(rv.Recvs, MsgView{Peer: s, Val: value.NewFloat(rng.Float64())})
				}
			}
			rv.Emitted = []FactView{{Table: "prov_error", Args: []value.Value{value.NewInt(v % 3), value.NewFloat(rng.Float64()*8 - 1)}}}
			states[v] = &vstate{lastSS: int64(ss), lastVal: val}
			recs = append(recs, rv)
		}
		layers = append(layers, recs)
	}
	return layers
}

func testGraphAndLayers(seed int64) (*fakeGraph, [][]RecordView) {
	sg := newFakeGraph(8, [][2]int64{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 4}, {2, 6},
	})
	return sg, randomLayers(seed, sg, 6)
}

func TestCompiledMatchesInterpretiveApt(t *testing.T) {
	env := analysis.NewEnv()
	env.SetParam("eps", value.NewFloat(0.5))
	src := `
change(X, I) :- value(X, D1, I), value(X, D2, J),
                evolution(X, J, I), udf_diff(D1, D2, $eps).
neighbor_change(X, I) :- receive_message(X, Y, M, I),
                         !change(Y, J), J = I - 1.
no_execute(X, I) :- !neighbor_change(X, I), superstep(X, I).
safe(X, I) :- no_execute(X, I), change(X, I).
unsafe(X, I) :- no_execute(X, I), !change(X, I).
`
	for seed := int64(1); seed <= 5; seed++ {
		sg, layers := testGraphAndLayers(seed)
		runBothPaths(t, src, env, sg, layers)
	}
}

func TestCompiledMatchesInterpretiveMonitoring(t *testing.T) {
	env := analysis.NewEnv()
	src := `
check_failed(X, I) :- value(X, D1, I), value(X, D2, J), evolution(X, J, I),
                      receive_message(X, Y, M, I), D1 > D2.
check_failed(X, I) :- receive_message(X, Y, M, I), M < 0.
neighbor_got(X, I) :- receive_message(X, Y, M, I).
silent(X, I) :- value(X, D1, I), value(X, D2, J), evolution(X, J, I),
                !neighbor_got(X, I), D1 != D2.
`
	for seed := int64(1); seed <= 5; seed++ {
		sg, layers := testGraphAndLayers(seed)
		runBothPaths(t, src, env, sg, layers)
	}
}

func TestCompiledMatchesInterpretiveEdgeRules(t *testing.T) {
	env := analysis.NewEnv()
	env.DeclareEDB("prov_error", 4)
	src := `
has_in(X) :- edge(Y, X).
stray(X, Y, I) :- receive_message(X, Y, M, I), !has_in(X).
ranged(X, Y, I) :- prov_error(X, Y, E, I), edge_value(X, Y, W, _), E > 5.
sent_flag(X, I) :- prov_send(X, I).
`
	for seed := int64(1); seed <= 5; seed++ {
		sg, layers := testGraphAndLayers(seed)
		runBothPaths(t, src, env, sg, layers)
	}
}

func TestCompiledMatchesInterpretiveRecursive(t *testing.T) {
	env := analysis.NewEnv()
	env.SetParam("alpha", value.NewInt(0))
	// Recursive forward rules need the temporal guard J < I for the three
	// evaluation modes to agree: without it, pure Datalog over the full
	// provenance admits retroactive derivations (influence flowing
	// backwards in time) that online/layered evaluation — and any causal
	// reading of "influence" — cannot produce. The paper's Query 3 has the
	// same property; see the package documentation.
	src := `
fwd(X, I) :- superstep(X, I), X = $alpha, I = 0.
fwd(X, I) :- receive_message(X, Y, M, I), fwd(Y, J), J < I, superstep(X, I).
`
	for seed := int64(1); seed <= 5; seed++ {
		sg, layers := testGraphAndLayers(seed)
		runBothPaths(t, src, env, sg, layers)
	}
}

func TestCompileRejections(t *testing.T) {
	env := analysis.NewEnv()
	sg := newFakeGraph(2, [][2]int64{{0, 1}})
	cases := []string{
		// Aggregates need the interpretive path.
		`deg(X, COUNT(Y)) :- receive_message(X, Y, M, I).`,
		// Record rule consuming a global head.
		`g(X, I) :- q(X, I), q(X, J).
q(X, I) :- superstep(X, I).
bad(X, I) :- receive_message(X, Y, M, I), g(X, I).`,
	}
	for _, src := range cases {
		prog, err := pql.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		q, err := analysis.Analyze(prog, env.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Compile(q, NewDatabase(), sg); !errors.Is(err, ErrNotCompilable) {
			t.Errorf("Compile(%q) = %v, want ErrNotCompilable", src, err)
		}
	}
}

func TestCompiledFinishRunCatchesLateJoins(t *testing.T) {
	// A global rule joining tuples derived in different layers: the
	// incremental passes see only the driving delta; FinishRun must catch
	// pairs completed later.
	env := analysis.NewEnv()
	src := `
seen(X, I) :- superstep(X, I).
pair(X, I, J) :- seen(X, I), seen(X, J), I < J.
`
	sg := newFakeGraph(2, nil)
	layers := [][]RecordView{
		{{Vertex: 0, Superstep: 0, HasValue: true, Value: value.NewFloat(1), PrevActive: -1}},
		{{Vertex: 0, Superstep: 1, HasValue: true, Value: value.NewFloat(2), PrevActive: 0, PrevValue: value.NewFloat(1), HasPrevValue: true}},
		{{Vertex: 0, Superstep: 2, HasValue: true, Value: value.NewFloat(3), PrevActive: 1, PrevValue: value.NewFloat(2), HasPrevValue: true}},
	}
	runBothPaths(t, src, env, sg, layers)
}
