package eval

import (
	"fmt"
	"sync"
	"testing"

	"ariadne/internal/pql/analysis"
	"ariadne/internal/value"
)

// feedFn populates an evaluator in one or more Fixpoint batches (each call
// to the inner function is one AddFact; the outer slice index is the batch).
type feedBatch []struct {
	pred string
	t    Tuple
}

// runBatches evaluates src with the given worker count, feeding each batch
// before a Fixpoint call, and returns the database and final stats.
func runBatches(t *testing.T, src string, env *analysis.Env, workers int, batches []feedBatch) (*Database, Stats) {
	t.Helper()
	e, db := mkEval(t, src, env)
	e.SetWorkers(workers)
	for _, batch := range batches {
		for _, f := range batch {
			e.AddFact(f.pred, f.t)
		}
		if err := e.Fixpoint(); err != nil {
			t.Fatalf("fixpoint (workers=%d): %v", workers, err)
		}
	}
	return db, e.Stats()
}

// relSignature renders every relation as sorted canonical keys, the
// bit-identity the differential tests compare.
func relSignature(db *Database) map[string][]string {
	out := map[string][]string{}
	for _, name := range db.Names() {
		rel := db.Get(name)
		keys := make([]string, 0, rel.Len())
		for _, tu := range rel.Sorted() {
			keys = append(keys, tu.Key())
		}
		out[name] = keys
	}
	return out
}

func diffSignatures(t *testing.T, label string, want, got map[string][]string) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: relation count %d != %d", label, len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: relation %s missing", label, name)
			continue
		}
		if len(w) != len(g) {
			t.Errorf("%s: relation %s has %d tuples, want %d", label, name, len(g), len(w))
			continue
		}
		for i := range w {
			if w[i] != g[i] {
				t.Errorf("%s: relation %s tuple %d differs", label, name, i)
				break
			}
		}
	}
}

// Programs exercising every plan shape the slot compiler and the worker
// fallback must agree on: recursion, negation, compare binders and filters,
// fact rules, wildcards, constants, arithmetic, and UDF calls. Facts are
// sized so the round deltas clear parallelCutoff and the parallel path
// really runs.
func parallelPrograms() map[string]struct {
	src     string
	batches []feedBatch
} {
	const n = 160
	edge := func(mod int) feedBatch {
		var b feedBatch
		for i := 0; i < n; i++ {
			b = append(b, struct {
				pred string
				t    Tuple
			}{"edge", ints(int64(i), int64((i+1)%mod))})
		}
		return b
	}
	vals := func() feedBatch {
		var b feedBatch
		for i := 0; i < n; i++ {
			b = append(b, struct {
				pred string
				t    Tuple
			}{"obs", Tuple{value.NewInt(int64(i)), value.NewFloat(float64(i%7) - 3)}})
		}
		return b
	}
	return map[string]struct {
		src     string
		batches []feedBatch
	}{
		"transitive-closure": {
			src:     `reach(X, Y) :- edge(X, Y).` + "\n" + `reach(X, Z) :- reach(X, Y), edge(Y, Z).`,
			batches: []feedBatch{edge(40)},
		},
		"negation-and-filter": {
			src: `hot(X) :- obs(X, D), D > 1.` + "\n" +
				`cold(X) :- obs(X, D), D < 0 - 1.` + "\n" +
				`mild(X) :- obs(X, _), !hot(X), !cold(X).`,
			batches: []feedBatch{vals()},
		},
		"binder-and-arith": {
			src: `next(X, S) :- edge(X, Y), S = X + 1, S < 150.` + "\n" +
				`twice(X, D) :- next(X, S), D = S * 2.`,
			batches: []feedBatch{edge(n)},
		},
		"udf-and-const": {
			src: `mag(X, M) :- obs(X, D), M = abs(D).` + "\n" +
				`zero(X) :- obs(X, 0.0).` + "\n" +
				`close(X, Y) :- mag(X, M1), mag(Y, M2), edge(X, Y), absdiff(M1, M2) < 1.5.`,
			batches: []feedBatch{append(edge(n), vals()...)},
		},
		"incremental-layers": {
			src:     `reach(X, Y) :- edge(X, Y).` + "\n" + `reach(X, Z) :- reach(X, Y), edge(Y, Z).`,
			batches: []feedBatch{edge(80)[:n/2], edge(80)[n/2:]},
		},
		"wildcard-and-dup-var": {
			src: `seen(X) :- edge(X, _).` + "\n" +
				`selfish(X) :- edge(X, X).` + "\n" +
				`pair(X, Y) :- edge(X, Y), seen(Y), !selfish(X).`,
			batches: []feedBatch{append(edge(40), struct {
				pred string
				t    Tuple
			}{"edge", ints(7, 7)})},
		},
	}
}

// TestParallelFixpointMatchesSequential is the eval-level differential: for
// every program shape, the parallel evaluator at 2 and 8 workers produces
// relations bit-identical (canonical keys, sorted order) to the sequential
// evaluator.
// testEnv is NewEnv plus the synthetic EDBs the programs here feed.
func testEnv() *analysis.Env {
	env := analysis.NewEnv()
	env.DeclareEDB("link", 2)
	env.DeclareEDB("obs", 2)
	return env
}

func TestParallelFixpointMatchesSequential(t *testing.T) {
	for name, prog := range parallelPrograms() {
		t.Run(name, func(t *testing.T) {
			env := testEnv()
			refDB, refStats := runBatches(t, prog.src, env, 1, prog.batches)
			want := relSignature(refDB)
			for _, workers := range []int{2, 8} {
				db, stats := runBatches(t, prog.src, env, workers, prog.batches)
				diffSignatures(t, fmt.Sprintf("workers=%d", workers), want, relSignature(db))
				if stats.Derivations != refStats.Derivations {
					t.Errorf("workers=%d: derivations %d != sequential %d", workers, stats.Derivations, refStats.Derivations)
				}
				if stats.FactsAdded != refStats.FactsAdded {
					t.Errorf("workers=%d: facts added %d != sequential %d", workers, stats.FactsAdded, refStats.FactsAdded)
				}
				if stats.ParallelRounds == 0 {
					t.Errorf("workers=%d: no parallel rounds ran — cutoff or safety misclassified", workers)
				}
				if len(stats.RoundsPerStratum) == 0 {
					t.Error("missing per-stratum round counts")
				}
				total := 0
				for _, n := range stats.RoundsPerStratum {
					total += n
				}
				if total != stats.Rounds {
					t.Errorf("per-stratum rounds sum %d != rounds %d", total, stats.Rounds)
				}
			}
		})
	}
}

// TestParallelSelfDeterminism: a parallel run is tuple-for-tuple identical
// to another parallel run at the same and at different worker counts,
// including insertion order (the canonical merge order).
func TestParallelSelfDeterminism(t *testing.T) {
	prog := parallelPrograms()["transitive-closure"]
	insertionOrder := func(db *Database) []string {
		var out []string
		for _, name := range db.Names() {
			for _, tu := range db.Get(name).All() {
				out = append(out, name+":"+tu.Key())
			}
		}
		return out
	}
	env := testEnv()
	db1, _ := runBatches(t, prog.src, env, 4, prog.batches)
	db2, _ := runBatches(t, prog.src, env, 4, prog.batches)
	o1, o2 := insertionOrder(db1), insertionOrder(db2)
	if len(o1) != len(o2) {
		t.Fatalf("insertion order lengths differ: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("insertion order diverges at %d: %s vs %s", i, o1[i], o2[i])
		}
	}
}

// TestAggregateStrataStaySequential: aggregate queries keep their strata on
// the sequential path (ParallelSafeStrata gates them) yet still produce
// identical results when workers are configured.
func TestAggregateStrataStaySequential(t *testing.T) {
	src := `deg(X, COUNT(Y)) :- link(X, Y).` + "\n" + `big(X) :- deg(X, D), D >= 2.`
	var batch feedBatch
	for i := 0; i < 200; i++ {
		batch = append(batch, struct {
			pred string
			t    Tuple
		}{"link", ints(int64(i%50), int64(i))})
	}
	env := testEnv()
	refDB, _ := runBatches(t, src, env, 1, []feedBatch{batch})
	db, _ := runBatches(t, src, env, 8, []feedBatch{batch})
	diffSignatures(t, "aggregate", relSignature(refDB), relSignature(db))
}

// TestSetWorkersGates: non-VC-compatible queries must refuse parallelism.
func TestSetWorkersGates(t *testing.T) {
	src := `t(X, D) :- value(X, D, I).` + "\n" + `bad(X, D) :- superstep(X, I), t(Y, D).`
	e, _ := mkEval(t, src, testEnv())
	e.SetWorkers(8)
	if e.Workers() != 1 {
		t.Errorf("non-VC-compatible query got %d workers, want 1", e.Workers())
	}
	e2, _ := mkEval(t, `reach(X, Y) :- link(X, Y).`, testEnv())
	e2.SetWorkers(8)
	if e2.Workers() != 8 {
		t.Errorf("local query got %d workers, want 8", e2.Workers())
	}
}

// TestLocShardConsistency: Ints and numerically equal Floats land on the
// same shard (Tuple.Key treats them as one value, so shards must too), and
// shards are always in range.
func TestLocShardConsistency(t *testing.T) {
	for p := 1; p <= 9; p++ {
		for i := int64(-5); i < 100; i++ {
			si := locShard(value.NewInt(i), p)
			sf := locShard(value.NewFloat(float64(i)), p)
			if si != sf {
				t.Fatalf("p=%d v=%d: int shard %d != float shard %d", p, i, si, sf)
			}
			if si < 0 || si >= p {
				t.Fatalf("p=%d v=%d: shard %d out of range", p, i, si)
			}
		}
		s := locShard(value.NewString("vertex-7"), p)
		if s < 0 || s >= p {
			t.Fatalf("string shard %d out of range for p=%d", s, p)
		}
		ks := keyShard(ints(3, 4), p)
		kf := keyShard(Tuple{value.NewFloat(3), value.NewFloat(4)}, p)
		if ks != kf {
			t.Fatalf("p=%d: keyShard int/float diverge: %d vs %d", p, ks, kf)
		}
	}
}

// TestRelationMemSizePinned pins the MemSize estimate: tuples plus the
// overhead of every built index, computed by hand from the documented
// constants.
func TestRelationMemSizePinned(t *testing.T) {
	r := NewRelation(2)
	r.Insert(ints(1, 2))
	r.Insert(ints(1, 3))
	r.Insert(ints(2, 3))
	var tupleBytes int64
	for _, tu := range r.All() {
		tupleBytes += memTupleOverhead
		for _, v := range tu {
			tupleBytes += int64(v.MemSize())
		}
	}
	if got := r.MemSize(); got != tupleBytes {
		t.Fatalf("unindexed MemSize = %d, want %d", got, tupleBytes)
	}

	// Build an index on column 0: buckets {1} -> 2 tuples, {2} -> 1 tuple.
	r.Lookup([]int{0}, []value.Value{value.NewInt(1)})
	keyLen := int64(len(projKey(ints(1, 2), []int{0})))
	indexBytes := int64(memIndexOverhead) +
		(memBucketOverhead + keyLen + 2*memEntryPointer) + // bucket 1
		(memBucketOverhead + keyLen + 1*memEntryPointer) // bucket 2
	if got := r.MemSize(); got != tupleBytes+indexBytes {
		t.Fatalf("indexed MemSize = %d, want %d (tuples %d + index %d)", got, tupleBytes+indexBytes, tupleBytes, indexBytes)
	}

	// A second index adds its own overhead; inserts keep both maintained.
	r.Lookup([]int{1}, []value.Value{value.NewInt(3)})
	if got, prev := r.MemSize(), tupleBytes+indexBytes; got <= prev {
		t.Fatalf("second index did not grow MemSize: %d <= %d", got, prev)
	}
}

// TestRelationConcurrentLookup: concurrent readers may race on lazy index
// construction; run under -race this verifies the lock discipline.
func TestRelationConcurrentLookup(t *testing.T) {
	r := NewRelation(2)
	for i := 0; i < 500; i++ {
		r.Insert(ints(int64(i%50), int64(i)))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := int64((w*7 + i) % 50)
				if got := r.Lookup([]int{0}, []value.Value{value.NewInt(k)}); len(got) != 10 {
					t.Errorf("lookup %d: %d tuples, want 10", k, len(got))
					return
				}
				if !r.ContainsKey(ints(k, k).Key()) && k >= 50 {
					t.Errorf("unexpected membership for %d", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
