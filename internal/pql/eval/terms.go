package eval

import (
	"fmt"

	"ariadne/internal/pql"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/value"
)

// binding maps variable names to values during rule evaluation.
type binding map[string]value.Value

// evalTerm evaluates a ground term under b. Aggregates are handled by the
// aggregate machinery and are illegal here.
func evalTerm(t pql.Term, b binding, env *analysis.Env) (value.Value, error) {
	switch t := t.(type) {
	case *pql.Const:
		return t.Val, nil
	case *pql.Var:
		v, ok := b[t.Name]
		if !ok {
			return value.NullValue, fmt.Errorf("pql: %s: unbound variable %s", t.Pos, t.Name)
		}
		return v, nil
	case *pql.BinExpr:
		l, err := evalTerm(t.L, b, env)
		if err != nil {
			return value.NullValue, err
		}
		if t.Op == pql.OpNeg {
			return value.Neg(l)
		}
		r, err := evalTerm(t.R, b, env)
		if err != nil {
			return value.NullValue, err
		}
		switch t.Op {
		case pql.OpAdd:
			return value.Add(l, r)
		case pql.OpSub:
			return value.Sub(l, r)
		case pql.OpMul:
			return value.Mul(l, r)
		case pql.OpDiv:
			return value.Div(l, r)
		case pql.OpMod:
			return value.Mod(l, r)
		default:
			return value.NullValue, fmt.Errorf("pql: %s: unknown operator", t.Pos)
		}
	case *pql.Call:
		fn, ok := env.Funcs[t.Name]
		if !ok {
			return value.NullValue, fmt.Errorf("pql: %s: unknown function %s", t.Pos, t.Name)
		}
		args := make([]value.Value, len(t.Args))
		for i, a := range t.Args {
			v, err := evalTerm(a, b, env)
			if err != nil {
				return value.NullValue, err
			}
			args[i] = v
		}
		out, err := fn.Fn(args)
		if err != nil {
			return value.NullValue, fmt.Errorf("pql: %s: %s: %w", t.Pos, t.Name, err)
		}
		return out, nil
	default:
		return value.NullValue, fmt.Errorf("pql: %s: cannot evaluate %T here", pos(t), t)
	}
}

func pos(t pql.Term) pql.Pos {
	switch t := t.(type) {
	case *pql.Var:
		return t.Pos
	case *pql.Const:
		return t.Pos
	case *pql.Param:
		return t.Pos
	case *pql.BinExpr:
		return t.Pos
	case *pql.Call:
		return t.Pos
	case *pql.Aggregate:
		return t.Pos
	default:
		return pql.Pos{}
	}
}

// evalCompare evaluates a comparison literal under b.
func evalCompare(c *pql.CmpLit, b binding, env *analysis.Env) (bool, error) {
	l, err := evalTerm(c.L, b, env)
	if err != nil {
		return false, err
	}
	r, err := evalTerm(c.R, b, env)
	if err != nil {
		return false, err
	}
	switch c.Op {
	case pql.CmpEq:
		return l.Equal(r), nil
	case pql.CmpNeq:
		return !l.Equal(r), nil
	}
	// Ordered comparisons need comparable operands.
	cmp := l.Compare(r)
	switch c.Op {
	case pql.CmpLt:
		return cmp < 0, nil
	case pql.CmpLe:
		return cmp <= 0, nil
	case pql.CmpGt:
		return cmp > 0, nil
	case pql.CmpGe:
		return cmp >= 0, nil
	default:
		return false, fmt.Errorf("pql: %s: unknown comparison", c.Pos)
	}
}

// termGround reports whether all variables of t are bound in b.
func termGround(t pql.Term, b binding) bool {
	var vs []*pql.Var
	vs = pql.Vars(t, vs)
	for _, v := range vs {
		if v.Wildcard() {
			return false
		}
		if _, ok := b[v.Name]; !ok {
			return false
		}
	}
	return true
}
