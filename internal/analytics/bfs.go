package analytics

import (
	"math"

	"ariadne/internal/engine"
	"ariadne/internal/graph"
	"ariadne/internal/value"
)

// BFS computes hop distances from Source (unweighted shortest paths): the
// fourth classic VC analytic alongside PageRank, SSSP, and WCC. Its update
// rule is monotone-decreasing like SSSP's, so the same monitoring queries
// (paper Queries 5 and 6) apply unchanged.
type BFS struct {
	Source engine.VertexID
}

// InitialValue implements engine.Program: unreached vertices hold +inf.
func (b *BFS) InitialValue(_ *graph.Graph, _ engine.VertexID) value.Value {
	return value.NewFloat(math.Inf(1))
}

// Compute implements engine.Program.
func (b *BFS) Compute(ctx *engine.Context, msgs []engine.IncomingMessage) error {
	best := math.Inf(1)
	if ctx.ID() == b.Source {
		best = 0
	}
	for _, m := range msgs {
		if f := m.Val.Float(); f < best {
			best = f
		}
	}
	if best < ctx.Value().Float() {
		ctx.SetValue(value.NewFloat(best))
		ctx.SendToAllNeighbors(value.NewFloat(best + 1))
	}
	return nil
}
