package analytics

import (
	"fmt"

	"ariadne/internal/engine"
	"ariadne/internal/graph"
	"ariadne/internal/value"
)

// DiffFunc measures how much a vertex value changed — the paper's udf-diff
// parameter of the apt query (§2.2, §6.2.2). value.AbsDiff fits scalar
// analytics (PageRank, SSSP, WCC); value.EuclideanDist fits ALS.
type DiffFunc func(old, new value.Value) (float64, error)

// Approximate wraps a vertex program with the approximate optimization the
// apt query evaluates: after the inner Compute runs, if the vertex's value
// changed by less than Epsilon the queued outgoing messages are discarded,
// so downstream vertices may skip execution entirely. This trades accuracy
// for speed (paper §2.2: "only message neighbors on large updates").
type Approximate struct {
	Inner   engine.Program
	Diff    DiffFunc
	Epsilon float64
}

// NewApproximate wraps inner with the message-suppression optimization.
func NewApproximate(inner engine.Program, diff DiffFunc, epsilon float64) (*Approximate, error) {
	if inner == nil || diff == nil {
		return nil, fmt.Errorf("analytics: Approximate needs a program and a diff function")
	}
	if epsilon < 0 {
		return nil, fmt.Errorf("analytics: negative epsilon %v", epsilon)
	}
	return &Approximate{Inner: inner, Diff: diff, Epsilon: epsilon}, nil
}

// InitialValue implements engine.Program.
func (a *Approximate) InitialValue(g *graph.Graph, v engine.VertexID) value.Value {
	return a.Inner.InitialValue(g, v)
}

// Compute implements engine.Program.
func (a *Approximate) Compute(ctx *engine.Context, msgs []engine.IncomingMessage) error {
	old := ctx.Value()
	if err := a.Inner.Compute(ctx, msgs); err != nil {
		return err
	}
	// Superstep 0 always propagates: suppressing the seeding wave would
	// stall algorithms whose initial values haven't moved yet.
	if ctx.Superstep() == 0 {
		return nil
	}
	d, err := a.Diff(old, ctx.Value())
	if err != nil {
		// Incomparable transitions (e.g. infinity initial distances) count
		// as large updates: never suppress them.
		return nil
	}
	// "Differ less than a threshold" (paper §4.2) is inclusive here: with
	// WCC's ε=1, a label delta of exactly 1 counts as a small update, which
	// is what makes the paper's WCC optimization unsafe (§6.2.2, error 0.9).
	if d <= a.Epsilon {
		ctx.DiscardSentMessages()
	}
	return nil
}

// ShouldHalt forwards to the inner program's Halter, if any.
func (a *Approximate) ShouldHalt(agg engine.AggregatorReader, superstep int) bool {
	if h, ok := a.Inner.(engine.Halter); ok {
		return h.ShouldHalt(agg, superstep)
	}
	return false
}

// AbsDiff adapts value.AbsDiff to a DiffFunc.
func AbsDiff(old, new value.Value) (float64, error) { return value.AbsDiff(old, new) }

// EuclideanDiff adapts value.EuclideanDist to a DiffFunc.
func EuclideanDiff(old, new value.Value) (float64, error) {
	return value.EuclideanDist(old, new)
}
