package analytics

import (
	"ariadne/internal/engine"
	"ariadne/internal/graph"
	"ariadne/internal/value"
)

// DeltaPageRank is the optimized PageRank variant the apt query recommends
// (paper §6.2.2: "The optimization is already part of some PageRank
// implementations"): ranks accumulate increments and a vertex only messages
// its neighbors when its increment exceeds Epsilon, so converged vertices
// stop executing. It reaches the same un-normalized fixed point
// r = (1-d) + d·Σ r(y)/deg(y) as PageRank, truncated once all residual
// increments fall below Epsilon.
//
// Message suppression is sound here (unlike wrapping the recompute-from-
// scratch PageRank in Approximate) because messages carry rank *deltas*
// that receivers fold in incrementally — dropping a small delta loses at
// most that delta, not the sender's whole contribution.
type DeltaPageRank struct {
	// Damping is the damping factor d; 0 means 0.85.
	Damping float64
	// Epsilon is the minimum increment worth propagating (paper: 0.01).
	Epsilon float64
}

func (p *DeltaPageRank) damping() float64 {
	if p.Damping == 0 {
		return 0.85
	}
	return p.Damping
}

// InitialValue implements engine.Program: rank starts at the teleport mass.
func (p *DeltaPageRank) InitialValue(_ *graph.Graph, _ engine.VertexID) value.Value {
	return value.NewFloat(1 - p.damping())
}

// Compute implements engine.Program.
func (p *DeltaPageRank) Compute(ctx *engine.Context, msgs []engine.IncomingMessage) error {
	var delta float64
	if ctx.Superstep() == 0 {
		delta = 1 - p.damping()
	} else {
		for _, m := range msgs {
			delta += m.Val.Float()
		}
		ctx.SetValue(value.NewFloat(ctx.Value().Float() + delta))
	}
	if delta > p.Epsilon {
		if d := ctx.OutDegree(); d > 0 {
			ctx.SendToAllNeighbors(value.NewFloat(p.damping() * delta / float64(d)))
		}
	}
	return nil
}
