package analytics

import (
	"ariadne/internal/engine"
	"ariadne/internal/graph"
	"ariadne/internal/value"
)

// WCC computes weakly connected components by minimum-label propagation,
// like Giraph's ConnectedComponentsComputation. Each vertex adopts the
// smallest vertex ID it has heard of and forwards improvements.
//
// WCC treats the graph as undirected: run it on g.Undirected(), which the
// top-level API does automatically.
type WCC struct{}

// InitialValue implements engine.Program: each vertex starts in its own
// component, labeled by its ID.
func (WCC) InitialValue(_ *graph.Graph, v engine.VertexID) value.Value {
	return value.NewInt(int64(v))
}

// Compute implements engine.Program.
func (WCC) Compute(ctx *engine.Context, msgs []engine.IncomingMessage) error {
	best := ctx.Value().Int()
	changed := false
	if ctx.Superstep() == 0 {
		// Seed: adopt the smallest neighbor ID if smaller than our own.
		dst, _ := ctx.OutNeighbors()
		for _, d := range dst {
			if int64(d) < best {
				best = int64(d)
				changed = true
			}
		}
	}
	for _, m := range msgs {
		if l := m.Val.Int(); l < best {
			best = l
			changed = true
		}
	}
	if changed || ctx.Superstep() == 0 {
		if changed {
			ctx.SetValue(value.NewInt(best))
		}
		// At superstep 0 every vertex announces its label so sinks learn
		// about their component even without improving locally.
		ctx.SendToAllNeighbors(value.NewInt(best))
	}
	return nil
}
