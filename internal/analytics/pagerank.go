// Package analytics implements the four graph analytics of the paper's
// evaluation (§6) as vertex programs for the BSP engine: PageRank, SSSP,
// WCC, and ALS, plus the Approximate wrapper realizing the motivating
// optimization (§2.2): suppress messages on small value updates.
package analytics

import (
	"fmt"

	"ariadne/internal/engine"
	"ariadne/internal/graph"
	"ariadne/internal/value"
)

// PageRank is the classic damped PageRank vertex program (Giraph's
// SimplePageRankComputation): rank = (1-d)/N + d * Σ incoming, with each
// vertex spreading rank/outdegree to its out-neighbors for a fixed number
// of supersteps.
type PageRank struct {
	// Damping is the damping factor d; 0 means the default 0.85.
	Damping float64
	// Iterations is the number of rank-update supersteps; 0 means 20
	// (the paper's PageRank runs ~20 supersteps, §6.2.2).
	Iterations int
}

func (p *PageRank) damping() float64 {
	if p.Damping == 0 {
		return 0.85
	}
	return p.Damping
}

func (p *PageRank) iterations() int {
	if p.Iterations == 0 {
		return 20
	}
	return p.Iterations
}

// InitialValue implements engine.Program. Ranks use the un-normalized
// Giraph convention (rank starts at 1, fixed point of a regular graph is 1):
// the paper's Table 5 reports median ranks around 0.2, which only arises
// under this convention, and its ε=0.01 threshold is calibrated to it.
func (p *PageRank) InitialValue(_ *graph.Graph, _ engine.VertexID) value.Value {
	return value.NewFloat(1)
}

// Compute implements engine.Program.
func (p *PageRank) Compute(ctx *engine.Context, msgs []engine.IncomingMessage) error {
	if ctx.Superstep() > 0 {
		var sum float64
		for _, m := range msgs {
			sum += m.Val.Float()
		}
		rank := (1 - p.damping()) + p.damping()*sum
		ctx.SetValue(value.NewFloat(rank))
	}
	if ctx.Superstep() < p.iterations() {
		if d := ctx.OutDegree(); d > 0 {
			ctx.SendToAllNeighbors(value.NewFloat(ctx.Value().Float() / float64(d)))
		}
	}
	return nil
}

// SumCombiner merges PageRank messages addressed to the same vertex.
func SumCombiner(a, b value.Value) value.Value {
	return value.NewFloat(a.Float() + b.Float())
}

// Validate checks the configuration.
func (p *PageRank) Validate() error {
	if p.Damping < 0 || p.Damping >= 1 {
		return fmt.Errorf("analytics: damping %v out of [0,1)", p.Damping)
	}
	if p.Iterations < 0 {
		return fmt.Errorf("analytics: negative iterations")
	}
	return nil
}
