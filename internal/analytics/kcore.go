package analytics

import (
	"sort"

	"ariadne/internal/engine"
	"ariadne/internal/graph"
	"ariadne/internal/value"
)

// KCore computes the coreness of every vertex by distributed h-index
// iteration (Montresor et al., "Distributed k-core decomposition"): each
// vertex holds an upper bound on its coreness, initialized to its degree,
// and repeatedly lowers it to the h-index of its neighbors' latest bounds.
// Bounds decrease monotonically to the true coreness, so — like SSSP and
// WCC — the paper's monotone monitoring queries apply, and the apt query
// (Query 1) can probe whether small-update suppression would be safe.
//
// Run KCore on an undirected view (g.Undirected()): coreness is defined on
// undirected graphs. The vertex value is a vector
// [ownBound, neighborBound_0, ..., neighborBound_{deg-1}] in out-edge
// order; Coreness extracts the scalar result.
type KCore struct{}

const kcoreUnknown = 1 << 40 // neighbor bound not yet heard

// InitialValue implements engine.Program.
func (KCore) InitialValue(g *graph.Graph, v engine.VertexID) value.Value {
	deg := g.OutDegree(v)
	vec := make([]float64, 1+deg)
	vec[0] = float64(deg)
	for i := 1; i <= deg; i++ {
		vec[i] = kcoreUnknown
	}
	return value.NewVector(vec)
}

// Compute implements engine.Program.
func (KCore) Compute(ctx *engine.Context, msgs []engine.IncomingMessage) error {
	state := ctx.Value().Vec()
	if ctx.Superstep() == 0 {
		ctx.SendToAllNeighbors(value.NewFloat(state[0]))
		return nil
	}
	if len(msgs) == 0 {
		return nil
	}
	// Fold the newly announced neighbor bounds into the stored table.
	dst, _ := ctx.OutNeighbors()
	next := append([]float64(nil), state...)
	for _, m := range msgs {
		i := sort.Search(len(dst), func(i int) bool { return dst[i] >= m.Src })
		for ; i < len(dst) && dst[i] == m.Src; i++ { // parallel edges share the bound
			if b := m.Val.Float(); b < next[1+i] {
				next[1+i] = b
			}
		}
	}
	// h-index of the neighbor bounds, capped by the degree bound.
	h := hIndex(next[1:])
	if h > next[0] {
		h = next[0]
	}
	changed := h < next[0]
	next[0] = h
	ctx.SetValue(value.NewVector(next))
	if changed {
		ctx.SendToAllNeighbors(value.NewFloat(h))
	}
	return nil
}

// hIndex returns the largest k such that at least k entries are >= k.
func hIndex(bounds []float64) float64 {
	sorted := append([]float64(nil), bounds...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var h float64
	for i, b := range sorted {
		k := float64(i + 1)
		if b >= k {
			h = k
		} else {
			break
		}
	}
	return h
}

// Coreness extracts the per-vertex coreness from a finished KCore run.
func Coreness(values []value.Value) []int64 {
	out := make([]int64, len(values))
	for i, v := range values {
		vec := v.Vec()
		if len(vec) > 0 {
			out[i] = int64(vec[0])
		}
	}
	return out
}
