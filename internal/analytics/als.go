package analytics

import (
	"fmt"
	"math"

	"ariadne/internal/engine"
	"ariadne/internal/graph"
	"ariadne/internal/linalg"
	"ariadne/internal/value"
)

// ALS implements the Alternating Least Squares recommender on a bipartite
// ratings graph (paper §6: ML-20 with 5-15 features). Vertices hold feature
// vectors; an edge weight is the observed rating. At every superstep only
// one side of the bipartite graph computes (§6, "the algorithm optimizes
// the error function by fixing one set of variables and solving for the
// other"): items broadcast their vectors at superstep 0, users solve and
// broadcast at superstep 1, items at superstep 2, and so on. The
// alternation emerges from message-driven activation.
//
// While computing, each vertex publishes the per-edge prediction and error
// as auxiliary provenance facts (tables prov_prediction(x,y,p,i) and
// prov_error(x,y,e,i)), which paper Queries 7 and 8 consume.
type ALS struct {
	// NumUsers splits the vertex space: IDs < NumUsers are users.
	NumUsers int
	// Features is the latent factor count k (paper: 5, 10, 15).
	Features int
	// Lambda is the ridge regularization weight; 0 means 0.05.
	Lambda float64
	// Tol stops the run when the RMSE improves by less than this between
	// item rounds; 0 means 1e-3 ("ALS converges when the error reaches an
	// acceptable threshold").
	Tol float64
	// Seed perturbs the deterministic vector initialization.
	Seed int64

	prevRMSE float64 // mutated only at the superstep barrier (ShouldHalt)
}

func (a *ALS) lambda() float64 {
	if a.Lambda == 0 {
		return 0.05
	}
	return a.Lambda
}

func (a *ALS) tol() float64 {
	if a.Tol == 0 {
		return 1e-3
	}
	return a.Tol
}

// Validate checks the configuration.
func (a *ALS) Validate() error {
	if a.Features <= 0 {
		return fmt.Errorf("analytics: ALS needs Features > 0")
	}
	if a.NumUsers <= 0 {
		return fmt.Errorf("analytics: ALS needs NumUsers > 0")
	}
	return nil
}

func (a *ALS) isUser(v engine.VertexID) bool { return int(v) < a.NumUsers }

// InitialValue implements engine.Program: a deterministic pseudo-random
// vector in [0.1, 1.1)^k seeded by the vertex ID.
func (a *ALS) InitialValue(_ *graph.Graph, v engine.VertexID) value.Value {
	vec := make([]float64, a.Features)
	state := uint64(v)*2654435761 + uint64(a.Seed) + 1
	for i := range vec {
		state = state*6364136223846793005 + 1442695040888963407
		vec[i] = 0.1 + float64(state>>11)/float64(1<<53)
	}
	return value.NewVector(vec)
}

// Compute implements engine.Program.
func (a *ALS) Compute(ctx *engine.Context, msgs []engine.IncomingMessage) error {
	if ctx.Superstep() == 0 {
		// Items broadcast; users wait for item vectors.
		if !a.isUser(ctx.ID()) {
			ctx.SendToAllNeighbors(ctx.Value())
		}
		return nil
	}
	if len(msgs) == 0 {
		return nil
	}
	k := a.Features
	// Solve the ridge normal equations (Σ q qᵀ + λ n I) x = Σ r q over the
	// neighbor vectors received, with r the edge-weight rating.
	A := linalg.NewSym(k)
	b := make([]float64, k)
	g := ctx.Graph()
	n := 0
	for _, m := range msgs {
		q := m.Val.Vec()
		if len(q) != k {
			return fmt.Errorf("ALS: message vector length %d, want %d", len(q), k)
		}
		r, ok := g.EdgeWeight(ctx.ID(), m.Src)
		if !ok {
			return fmt.Errorf("ALS: message from non-neighbor %d", m.Src)
		}
		A.AddOuter(q, 1)
		linalg.AXPY(r, q, b)
		n++
	}
	A.AddRidge(a.lambda() * float64(n))
	x, err := A.SolveSPD(b)
	if err != nil {
		return fmt.Errorf("ALS: solving normal equations at vertex %d: %w", ctx.ID(), err)
	}
	ctx.SetValue(value.NewVector(x))

	// Publish per-edge prediction/error provenance and aggregate the global
	// squared error for convergence.
	for _, m := range msgs {
		q := m.Val.Vec()
		r, _ := g.EdgeWeight(ctx.ID(), m.Src)
		p := linalg.Dot(x, q)
		e := r - p
		ctx.AggregateFloat("als_sq_error", engine.AggSum, e*e)
		ctx.AggregateFloat("als_ratings", engine.AggCount, 1)
		if ctx.Observing() {
			ctx.EmitProv("prov_prediction", value.NewInt(int64(m.Src)), value.NewFloat(p))
			ctx.EmitProv("prov_error", value.NewInt(int64(m.Src)), value.NewFloat(e))
		}
	}
	ctx.SendToAllNeighbors(ctx.Value())
	return nil
}

// ShouldHalt implements engine.Halter: stop when the RMSE improvement
// between rounds drops below Tol.
func (a *ALS) ShouldHalt(agg engine.AggregatorReader, superstep int) bool {
	if superstep < 2 {
		return false
	}
	sq, ok1 := agg.Float("als_sq_error")
	cnt, ok2 := agg.Float("als_ratings")
	if !ok1 || !ok2 || cnt == 0 {
		return false
	}
	rmse := math.Sqrt(sq / cnt)
	defer func() { a.prevRMSE = rmse }()
	return a.prevRMSE != 0 && math.Abs(a.prevRMSE-rmse) < a.tol()
}

// RMSE returns the root-mean-square rating error from the last superstep's
// aggregators, or NaN if unavailable.
func RMSE(agg engine.AggregatorReader) float64 {
	sq, ok1 := agg.Float("als_sq_error")
	cnt, ok2 := agg.Float("als_ratings")
	if !ok1 || !ok2 || cnt == 0 {
		return math.NaN()
	}
	return math.Sqrt(sq / cnt)
}
