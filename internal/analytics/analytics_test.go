package analytics

import (
	"errors"
	"math"
	"testing"

	"ariadne/internal/engine"
	"ariadne/internal/gen"
	"ariadne/internal/graph"
	"ariadne/internal/value"
)

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.NewFromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func run(t *testing.T, g *graph.Graph, prog engine.Program, cfg engine.Config) *engine.Engine {
	t.Helper()
	e, err := engine.New(g, prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e
}

// --- PageRank ---

func TestPageRankRankConservation(t *testing.T) {
	// Strongly connected triangle + chord; no dangling vertices, so total
	// un-normalized rank is conserved at N.
	g := mustGraph(t, 3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 0, Dst: 2}})
	e := run(t, g, &PageRank{Iterations: 40}, engine.Config{MaxSupersteps: 41})
	var sum float64
	for _, v := range e.Values() {
		sum += v.Float()
	}
	if math.Abs(sum-3) > 1e-6 {
		t.Errorf("rank sum = %v, want 3", sum)
	}
}

func TestPageRankCycleUniform(t *testing.T) {
	// On a directed cycle every vertex converges to rank 1.
	n := 5
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{Src: engine.VertexID(i), Dst: engine.VertexID((i + 1) % n)}
	}
	g := mustGraph(t, n, edges)
	e := run(t, g, &PageRank{Iterations: 25}, engine.Config{MaxSupersteps: 26})
	for v, val := range e.Values() {
		if math.Abs(val.Float()-1) > 1e-9 {
			t.Errorf("rank[%d] = %v, want 1", v, val)
		}
	}
}

func TestPageRankHubGetsMoreRank(t *testing.T) {
	// Cycle 1->2->3->1 with all three also pointing at hub 0 (and 0->1 so
	// every vertex keeps receiving). Hub collects three streams of rank.
	g := mustGraph(t, 4, []graph.Edge{
		{Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 1},
		{Src: 1, Dst: 0}, {Src: 2, Dst: 0}, {Src: 3, Dst: 0},
		{Src: 0, Dst: 1},
	})
	e := run(t, g, &PageRank{}, engine.Config{MaxSupersteps: 21})
	vals := e.Values()
	if vals[0].Float() <= vals[2].Float() {
		t.Errorf("hub rank %v should exceed spoke rank %v", vals[0], vals[2])
	}
}

func TestPageRankValidate(t *testing.T) {
	if err := (&PageRank{Damping: 1.5}).Validate(); err == nil {
		t.Error("damping > 1 should fail")
	}
	if err := (&PageRank{Iterations: -1}).Validate(); err == nil {
		t.Error("negative iterations should fail")
	}
	if err := (&PageRank{}).Validate(); err != nil {
		t.Error(err)
	}
}

// --- SSSP ---

func TestSSSPWeightedPaths(t *testing.T) {
	//     0 --1.0--> 1 --1.0--> 2
	//      \---------2.5-------/     plus 2 --1--> 3
	g := mustGraph(t, 4, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1.0},
		{Src: 1, Dst: 2, Weight: 1.0},
		{Src: 0, Dst: 2, Weight: 2.5},
		{Src: 2, Dst: 3, Weight: 1.0},
	})
	e := run(t, g, &SSSP{Source: 0}, engine.Config{})
	want := []float64{0, 1, 2, 3}
	for v, w := range want {
		if got := e.Values()[v].Float(); math.Abs(got-w) > 1e-12 {
			t.Errorf("dist[%d] = %v, want %v", v, got, w)
		}
	}
}

func TestSSSPUnreachable(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}})
	e := run(t, g, &SSSP{Source: 0}, engine.Config{})
	if !math.IsInf(e.Values()[2].Float(), 1) {
		t.Errorf("unreachable vertex should stay at +inf, got %v", e.Values()[2])
	}
}

func TestSSSPWithMinCombiner(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 6, 13))
	if err != nil {
		t.Fatal(err)
	}
	plain := run(t, g, &SSSP{Source: 0}, engine.Config{})
	comb := run(t, g, &SSSP{Source: 0}, engine.Config{Combiner: MinCombiner})
	for v := range plain.Values() {
		if !plain.Values()[v].Equal(comb.Values()[v]) {
			t.Fatalf("combiner changed SSSP result at %d: %v vs %v",
				v, plain.Values()[v], comb.Values()[v])
		}
	}
}

func TestSSSPNegativeWeightCrash(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: -0.5}})
	e, err := engine.New(g, &SSSP{Source: 0, ValidateWeights: true}, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run()
	var ce *engine.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want crash-culprit error, got %v", err)
	}
	if ce.Vertex != 1 {
		t.Errorf("culprit = %d, want 1", ce.Vertex)
	}
}

// --- WCC ---

func TestWCCTwoComponents(t *testing.T) {
	// Component {0,1,2} and {3,4}; run on the undirected view.
	g := mustGraph(t, 5, []graph.Edge{
		{Src: 1, Dst: 0}, {Src: 1, Dst: 2}, {Src: 4, Dst: 3},
	}).Undirected()
	e := run(t, g, WCC{}, engine.Config{})
	vals := e.Values()
	for _, v := range []int{0, 1, 2} {
		if vals[v].Int() != 0 {
			t.Errorf("label[%d] = %v, want 0", v, vals[v])
		}
	}
	for _, v := range []int{3, 4} {
		if vals[v].Int() != 3 {
			t.Errorf("label[%d] = %v, want 3", v, vals[v])
		}
	}
}

func TestWCCSingletons(t *testing.T) {
	g := mustGraph(t, 3, nil)
	e := run(t, g, WCC{}, engine.Config{})
	for v, val := range e.Values() {
		if val.Int() != int64(v) {
			t.Errorf("isolated vertex %d: label %v", v, val)
		}
	}
}

func TestWCCAgreesWithUnionFind(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{
		Scale: 8, EdgesPer: 1.2, A: 0.57, B: 0.19, C: 0.19,
		Seed: 5, MinWeight: 1, MaxWeight: 1, Connect: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	u := g.Undirected()
	e := run(t, u, WCC{}, engine.Config{})

	// Union-find ground truth.
	parent := make([]int, u.NumVertices())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for v := 0; v < u.NumVertices(); v++ {
		dst, _ := u.OutNeighbors(engine.VertexID(v))
		for _, d := range dst {
			parent[find(v)] = find(int(d))
		}
	}
	// Same component in ground truth <=> same WCC label.
	vals := e.Values()
	byRoot := map[int]int64{}
	for v := 0; v < u.NumVertices(); v++ {
		r := find(v)
		if lbl, ok := byRoot[r]; ok {
			if lbl != vals[v].Int() {
				t.Fatalf("vertex %d: label %v, component expects %v", v, vals[v].Int(), lbl)
			}
		} else {
			byRoot[r] = vals[v].Int()
		}
	}
	// Distinct roots must have distinct labels.
	seen := map[int64]int{}
	for r, lbl := range byRoot {
		if other, ok := seen[lbl]; ok {
			t.Fatalf("roots %d and %d share label %d", r, other, lbl)
		}
		seen[lbl] = r
	}
}

// --- ALS ---

func TestALSConvergesOnPlantedFactors(t *testing.T) {
	r, err := gen.Bipartite(gen.DefaultBipartite(120, 30, 8, 21))
	if err != nil {
		t.Fatal(err)
	}
	prog := &ALS{NumUsers: r.NumUsers, Features: 5, Seed: 3}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(r.Graph, prog, engine.Config{MaxSupersteps: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rmse := RMSE(e.Aggregated())
	if math.IsNaN(rmse) || rmse > 1.0 {
		t.Errorf("ALS RMSE = %v, want < 1.0 on planted factors", rmse)
	}
	// Feature vectors must have the right arity everywhere.
	for v, val := range e.Values() {
		if len(val.Vec()) != 5 {
			t.Fatalf("vertex %d: vector arity %d", v, len(val.Vec()))
		}
	}
}

func TestALSAlternatesSides(t *testing.T) {
	r, err := gen.Bipartite(gen.DefaultBipartite(40, 10, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	prog := &ALS{NumUsers: r.NumUsers, Features: 3, Seed: 1}
	obs := &sideObserver{numUsers: r.NumUsers}
	e, err := engine.New(r.Graph, prog, engine.Config{MaxSupersteps: 6, Observers: []engine.Observer{obs}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// After superstep 0, each superstep's *computing* side alternates:
	// ss1 = users, ss2 = items, ...
	for ss, sides := range obs.sides {
		if ss == 0 {
			continue
		}
		if sides.users > 0 && sides.items > 0 {
			t.Errorf("superstep %d: both sides computed (users=%d items=%d)", ss, sides.users, sides.items)
		}
		wantUsers := ss%2 == 1
		if wantUsers && sides.users == 0 || !wantUsers && sides.items == 0 {
			t.Errorf("superstep %d: wrong side computed (users=%d items=%d)", ss, sides.users, sides.items)
		}
	}
	if !obs.sawErrFacts {
		t.Error("ALS should emit prov_error facts while observed")
	}
}

type sideCount struct{ users, items int }

type sideObserver struct {
	numUsers    int
	sides       map[int]sideCount
	sawErrFacts bool
}

func (o *sideObserver) NeedsRawMessages() bool { return false }
func (o *sideObserver) ObserveSuperstep(v *engine.SuperstepView) error {
	if o.sides == nil {
		o.sides = map[int]sideCount{}
	}
	sc := o.sides[v.Superstep]
	for _, r := range v.Records {
		// Count only vertices that actually recomputed their value.
		if len(r.Received) == 0 && v.Superstep > 0 {
			continue
		}
		if int(r.ID) < o.numUsers {
			sc.users++
		} else {
			sc.items++
		}
		for _, f := range r.Emitted {
			if f.Table == "prov_error" {
				o.sawErrFacts = true
			}
		}
	}
	o.sides[v.Superstep] = sc
	return nil
}
func (o *sideObserver) Finish(int) error { return nil }

func TestALSValidate(t *testing.T) {
	if err := (&ALS{Features: 0, NumUsers: 1}).Validate(); err == nil {
		t.Error("zero features should fail")
	}
	if err := (&ALS{Features: 2, NumUsers: 0}).Validate(); err == nil {
		t.Error("zero users should fail")
	}
}

// --- Approximate wrapper ---

func TestDeltaPageRankCloseToExact(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 17))
	if err != nil {
		t.Fatal(err)
	}
	exact := run(t, g, &PageRank{Iterations: 30}, engine.Config{MaxSupersteps: 31})
	relError := func(eps float64) (float64, int64) {
		approx := run(t, g, &DeltaPageRank{Epsilon: eps}, engine.Config{MaxSupersteps: 31})
		var num, den float64
		for v := range exact.Values() {
			d := exact.Values()[v].Float() - approx.Values()[v].Float()
			num += d * d
			den += exact.Values()[v].Float() * exact.Values()[v].Float()
		}
		return math.Sqrt(num) / math.Sqrt(den), approx.Stats().MessagesSent
	}

	// The optimization must cut messages and keep the error modest; the
	// absolute error is scale-dependent (the paper's 1e-3..1e-5 relies on
	// web-scale hub ranks dominating the L2 norm), so assert the mechanism:
	// error grows monotonically with ε and stays small at the paper's 0.01.
	errSmall, msgsSmall := relError(0.001)
	errPaper, msgsPaper := relError(0.01)
	errBig, msgsBig := relError(0.05)
	if msgsPaper >= exact.Stats().MessagesSent {
		t.Errorf("approximate sent %d messages, exact %d — no savings", msgsPaper, exact.Stats().MessagesSent)
	}
	if !(msgsBig < msgsPaper && msgsPaper < msgsSmall) {
		t.Errorf("message savings not monotone in ε: %d, %d, %d", msgsSmall, msgsPaper, msgsBig)
	}
	if !(errSmall <= errPaper && errPaper <= errBig) {
		t.Errorf("error not monotone in ε: %v, %v, %v", errSmall, errPaper, errBig)
	}
	if errPaper > 0.25 {
		t.Errorf("relative L2 error %v too large at ε=0.01", errPaper)
	}
	approx := run(t, g, &DeltaPageRank{Epsilon: 0.01}, engine.Config{MaxSupersteps: 31})
	// Truncation only loses rank mass: optimized medians sit slightly below
	// the originals, as in Table 5 (Median B < Median A).
	var sumA, sumB float64
	for v := range exact.Values() {
		sumA += exact.Values()[v].Float()
		sumB += approx.Values()[v].Float()
	}
	if sumB > sumA {
		t.Errorf("optimized total rank %v exceeds exact %v", sumB, sumA)
	}
}

func TestDeltaPageRankMatchesExactAtZeroEpsilon(t *testing.T) {
	// With ε=0 and enough supersteps both formulations converge to the same
	// fixed point.
	g := mustGraph(t, 3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}})
	exact := run(t, g, &PageRank{Iterations: 60}, engine.Config{MaxSupersteps: 61})
	approx := run(t, g, &DeltaPageRank{}, engine.Config{MaxSupersteps: 200})
	for v := range exact.Values() {
		if math.Abs(exact.Values()[v].Float()-approx.Values()[v].Float()) > 1e-4 {
			t.Errorf("vertex %d: exact %v vs delta %v", v, exact.Values()[v], approx.Values()[v])
		}
	}
}

func TestApproximateSSSPExactWhenEpsilonZero(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 6, 23))
	if err != nil {
		t.Fatal(err)
	}
	exact := run(t, g, &SSSP{Source: 0}, engine.Config{})
	apt, _ := NewApproximate(&SSSP{Source: 0}, AbsDiff, 0)
	approx := run(t, g, apt, engine.Config{})
	for v := range exact.Values() {
		if !exact.Values()[v].Equal(approx.Values()[v]) {
			t.Fatalf("epsilon=0 changed SSSP at %d: %v vs %v", v, exact.Values()[v], approx.Values()[v])
		}
	}
}

func TestApproximateWCCUnsafe(t *testing.T) {
	// The paper's negative result (§6.2.2): suppressing label updates with
	// ε=1 breaks WCC badly. On a chain, every label improvement is exactly
	// 1, so all propagation is suppressed and labels stay wrong.
	n := 32
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{Src: engine.VertexID(i), Dst: engine.VertexID(i + 1), Weight: 1})
	}
	u := mustGraph(t, n, edges).Undirected()
	exact := run(t, u, WCC{}, engine.Config{})
	apt, _ := NewApproximate(WCC{}, AbsDiff, 1)
	approx := run(t, u, apt, engine.Config{})
	diffs := 0
	for v := range exact.Values() {
		if !exact.Values()[v].Equal(approx.Values()[v]) {
			diffs++
		}
	}
	if diffs == 0 {
		t.Error("WCC with ε=1 should corrupt labels (the paper's unsafe case)")
	}
}

func TestNewApproximateValidation(t *testing.T) {
	if _, err := NewApproximate(nil, AbsDiff, 0.1); err == nil {
		t.Error("nil program should fail")
	}
	if _, err := NewApproximate(WCC{}, nil, 0.1); err == nil {
		t.Error("nil diff should fail")
	}
	if _, err := NewApproximate(WCC{}, AbsDiff, -1); err == nil {
		t.Error("negative epsilon should fail")
	}
}

func TestValueKindsStableAcrossAnalytics(t *testing.T) {
	g := mustGraph(t, 2, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}})
	e := run(t, g, &SSSP{Source: 0}, engine.Config{})
	for _, v := range e.Values() {
		if v.Kind() != value.Float {
			t.Errorf("SSSP values must stay floats, got %v", v.Kind())
		}
	}
}
