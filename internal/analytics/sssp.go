package analytics

import (
	"fmt"
	"math"

	"ariadne/internal/engine"
	"ariadne/internal/graph"
	"ariadne/internal/value"
)

// SSSP is single-source shortest paths, transcribed from the paper's
// Algorithm 2: a vertex keeps its best-known distance and, on improvement,
// sends distance+edge-weight along each out-edge.
//
// ValidateWeights, if set, makes Compute fail on a negative edge weight —
// the crash-culprit behaviour; with it unset the algorithm silently computes
// wrong results on corrupted inputs, which is what paper Query 5 detects.
type SSSP struct {
	Source          engine.VertexID
	ValidateWeights bool
}

// InitialValue implements engine.Program: MAX.DOUBLE in the paper.
func (s *SSSP) InitialValue(_ *graph.Graph, _ engine.VertexID) value.Value {
	return value.NewFloat(math.Inf(1))
}

// Compute implements engine.Program.
func (s *SSSP) Compute(ctx *engine.Context, msgs []engine.IncomingMessage) error {
	minDist := math.Inf(1)
	if ctx.ID() == s.Source {
		minDist = 0
	}
	for _, m := range msgs {
		if f := m.Val.Float(); f < minDist {
			minDist = f
		}
	}
	if minDist < ctx.Value().Float() {
		ctx.SetValue(value.NewFloat(minDist))
		dst, w := ctx.OutNeighbors()
		for i, d := range dst {
			if s.ValidateWeights && w[i] < 0 {
				return fmt.Errorf("negative edge weight %v on edge %d->%d", w[i], ctx.ID(), d)
			}
			ctx.SendMessage(d, value.NewFloat(minDist+w[i]))
		}
	}
	return nil
}

// MinCombiner keeps the minimum of messages addressed to the same vertex
// (valid for SSSP and WCC).
func MinCombiner(a, b value.Value) value.Value {
	if b.Float() < a.Float() {
		return b
	}
	return a
}
