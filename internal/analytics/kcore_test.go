package analytics

import (
	"math"
	"testing"

	"ariadne/internal/engine"
	"ariadne/internal/gen"
	"ariadne/internal/graph"
)

func TestBFSChainAndShortcut(t *testing.T) {
	// 0->1->2->3 with shortcut 0->3: hop distances 0,1,2,1.
	g := mustGraph(t, 4, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 9}, {Src: 1, Dst: 2, Weight: 9},
		{Src: 2, Dst: 3, Weight: 9}, {Src: 0, Dst: 3, Weight: 9},
	})
	e := run(t, g, &BFS{Source: 0}, engine.Config{})
	want := []float64{0, 1, 2, 1}
	for v, w := range want {
		if got := e.Values()[v].Float(); got != w {
			t.Errorf("hops[%d] = %v, want %v", v, got, w)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}})
	e := run(t, g, &BFS{Source: 0}, engine.Config{})
	if !math.IsInf(e.Values()[2].Float(), 1) {
		t.Error("unreachable vertex should stay at +inf")
	}
}

func TestBFSMatchesSSSPOnUnitWeights(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{
		Scale: 8, EdgesPer: 5, A: 0.57, B: 0.19, C: 0.19,
		Seed: 9, MinWeight: 1, MaxWeight: 1, Connect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	bfs := run(t, g, &BFS{Source: 0}, engine.Config{})
	sssp := run(t, g, &SSSP{Source: 0}, engine.Config{})
	for v := range bfs.Values() {
		if !bfs.Values()[v].Equal(sssp.Values()[v]) {
			t.Fatalf("vertex %d: BFS %v vs unit SSSP %v", v, bfs.Values()[v], sssp.Values()[v])
		}
	}
}

// bruteCoreness peels the graph: repeatedly remove vertices of degree < k.
func bruteCoreness(g *graph.Graph) []int64 {
	n := g.NumVertices()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(graph.VertexID(v))
	}
	core := make([]int64, n)
	removed := make([]bool, n)
	for k := 0; ; k++ {
		// Remove everything with degree <= k, cascading.
		for {
			changed := false
			for v := 0; v < n; v++ {
				if removed[v] || deg[v] > k {
					continue
				}
				removed[v] = true
				core[v] = int64(k)
				changed = true
				dst, _ := g.OutNeighbors(graph.VertexID(v))
				for _, d := range dst {
					if !removed[d] {
						deg[d]--
					}
				}
			}
			if !changed {
				break
			}
		}
		done := true
		for v := 0; v < n; v++ {
			if !removed[v] {
				done = false
				break
			}
		}
		if done {
			return core
		}
	}
}

func TestKCoreTriangleWithTail(t *testing.T) {
	// Triangle 0-1-2 (coreness 2) with tail 2-3 (vertex 3 coreness 1).
	g := mustGraph(t, 4, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1},
		{Src: 0, Dst: 2, Weight: 1}, {Src: 2, Dst: 3, Weight: 1},
	}).Undirected()
	e := run(t, g, KCore{}, engine.Config{})
	got := Coreness(e.Values())
	want := []int64{2, 2, 2, 1}
	for v := range want {
		if got[v] != want[v] {
			t.Errorf("coreness[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestKCoreMatchesPeeling(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{
		Scale: 7, EdgesPer: 4, A: 0.57, B: 0.19, C: 0.19,
		Seed: 13, MinWeight: 1, MaxWeight: 1, Connect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	u := g.Undirected()
	e := run(t, u, KCore{}, engine.Config{MaxSupersteps: 200})
	got := Coreness(e.Values())
	want := bruteCoreness(u)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("coreness[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestKCoreIsolatedVertices(t *testing.T) {
	g := mustGraph(t, 3, nil)
	e := run(t, g, KCore{}, engine.Config{})
	for v, c := range Coreness(e.Values()) {
		if c != 0 {
			t.Errorf("isolated vertex %d coreness %d", v, c)
		}
	}
}

func TestHIndex(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{0}, 0},
		{[]float64{5}, 1},
		{[]float64{1, 1, 1}, 1},
		{[]float64{3, 3, 3}, 3},
		{[]float64{5, 4, 3, 2, 1}, 3},
		{[]float64{kcoreUnknown, kcoreUnknown}, 2},
	}
	for _, c := range cases {
		if got := hIndex(c.in); got != c.want {
			t.Errorf("hIndex(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestKCoreMonitorableOnline(t *testing.T) {
	// KCore's bounds only decrease: the monotone invariant of Query 5
	// should hold (no vertex's bound increases while receiving messages).
	g, err := gen.RMAT(gen.RMATConfig{
		Scale: 6, EdgesPer: 4, A: 0.57, B: 0.19, C: 0.19,
		Seed: 21, MinWeight: 1, MaxWeight: 1, Connect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	u := g.Undirected()
	obs := &boundObserver{last: map[engine.VertexID]float64{}}
	e, err := engine.New(u, KCore{}, engine.Config{Observers: []engine.Observer{obs}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if obs.violations != 0 {
		t.Errorf("%d bound increases observed", obs.violations)
	}
}

type boundObserver struct {
	last       map[engine.VertexID]float64
	violations int
}

func (o *boundObserver) NeedsRawMessages() bool { return false }
func (o *boundObserver) ObserveSuperstep(v *engine.SuperstepView) error {
	for _, r := range v.Records {
		b := r.NewValue.Vec()[0]
		if prev, ok := o.last[r.ID]; ok && b > prev {
			o.violations++
		}
		o.last[r.ID] = b
	}
	return nil
}
func (o *boundObserver) Finish(int) error { return nil }
