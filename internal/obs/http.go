package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
)

// Live introspection endpoint: a long analytic can be inspected mid-run.
//
//	/metrics                  Prometheus text exposition (counters, gauges, histograms)
//	/debug/vars               expvar JSON (process vars plus the "ariadne" snapshot)
//	/debug/pprof/             the standard net/http/pprof profiles
//	/trace                    the structured trace ring buffer as JSON
//	/supersteps               the completed per-superstep profiles as JSON
//	/debug/ariadne/trace.json the merged distributed span timeline as Chrome
//	                          trace_event JSON (load in chrome://tracing or
//	                          ui.perfetto.dev)
//
// Everything reads through the registry's race-safe paths, so scraping
// during an active run is supported (and exercised under -race).

// expvar publication is process-global and panics on duplicate names, so
// the "ariadne" var is published once and re-pointed at the newest
// registry to serve.
var (
	expvarMu      sync.Mutex
	expvarCurrent *Metrics
	expvarOnce    sync.Once
)

func publishExpvar(m *Metrics) {
	expvarMu.Lock()
	expvarCurrent = m
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("ariadne", expvar.Func(func() any {
			expvarMu.Lock()
			cur := expvarCurrent
			expvarMu.Unlock()
			return cur.Snapshot()
		}))
	})
}

// Handler returns the introspection mux for m.
func Handler(m *Metrics) http.Handler {
	publishExpvar(m)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(m.PrometheusText()))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		events, dropped := m.TraceEvents()
		if events == nil {
			events = []Event{} // JSON [] rather than null for an empty ring
		}
		writeJSON(w, map[string]any{"dropped": dropped, "events": events})
	})
	mux.HandleFunc("/supersteps", func(w http.ResponseWriter, r *http.Request) {
		profiles := m.Profiles()
		if profiles == nil {
			profiles = []SuperstepProfile{}
		}
		writeJSON(w, profiles)
	})
	mux.HandleFunc("/debug/ariadne/trace.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(m.ChromeTrace())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "ariadne introspection: /metrics /debug/vars /debug/pprof/ /trace /supersteps /debug/ariadne/trace.json")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Serve listens on addr (":0" picks a free port) and serves Handler(m) in
// a background goroutine. The caller owns the returned server and should
// Close it when the run ends; the returned address is the bound one.
func Serve(addr string, m *Metrics) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(m)}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}

// PrometheusText renders every registered series in the Prometheus text
// exposition format, sorted for deterministic output. Nil-safe.
func (m *Metrics) PrometheusText() string {
	if m == nil {
		return ""
	}
	var b strings.Builder
	m.mu.RLock()
	counters := make(map[string]int64, len(m.counters))
	for k, c := range m.counters {
		counters[k] = c.Value()
	}
	gauges := make(map[string]int64, len(m.gauges))
	for k, g := range m.gauges {
		gauges[k] = g.Value()
	}
	histNames := make([]string, 0, len(m.hists))
	hists := make(map[string]*Histogram, len(m.hists))
	for k, h := range m.hists {
		histNames = append(histNames, k)
		hists[k] = h
	}
	m.mu.RUnlock()

	typed := map[string]bool{}
	writeScalars := func(vals map[string]int64, typ string) {
		keys := sortedKeys(vals)
		for _, k := range keys {
			name, _ := seriesKey(k)
			if !typed[name] {
				typed[name] = true
				fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
			}
			fmt.Fprintf(&b, "%s %d\n", k, vals[k])
		}
	}
	writeScalars(counters, "counter")
	writeScalars(gauges, "gauge")

	sort.Strings(histNames)
	for _, k := range histNames {
		h := hists[k]
		name, labels := seriesKey(k)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		cum := int64(0)
		for i, ub := range histBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(&b, "%s_bucket%s %d\n", name, mergeLabels(labels, fmt.Sprintf(`le="%g"`, ub)), cum)
		}
		cum += h.counts[len(histBuckets)].Load()
		fmt.Fprintf(&b, "%s_bucket%s %d\n", name, mergeLabels(labels, `le="+Inf"`), cum)
		fmt.Fprintf(&b, "%s_sum%s %g\n", name, labels, float64(h.SumNS())/1e9)
		fmt.Fprintf(&b, "%s_count%s %d\n", name, labels, h.Count())
	}
	return b.String()
}

// mergeLabels combines an existing {a="b"} block with an extra label pair.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}
