package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ariadne/internal/value"
)

// Distributed run tracing: hierarchical spans covering every phase of every
// superstep, across processes. The master opens superstep/phase/partition
// spans; trace context (trace ID + parent span ID) rides inside the
// transport wire frames so worker processes open child spans for
// decode/compute/encode and ship them back piggybacked on ExecResult. The
// merged timeline exports as Chrome trace_event JSON (chrome://tracing /
// Perfetto) and persists through checkpoint/resume alongside the profiles.
//
// The collector lives behind an atomic pointer exactly like the trace ring:
// when span tracing is disabled the pointer is nil and every hook is one
// atomic load and zero allocations, preserving the PR 2 hot-path invariant.

// Span process names. Worker processes use "worker:<listen-addr>".
const ProcMaster = "master"

// Span phase/operation names.
const (
	SpanSuperstep     = "superstep"      // umbrella: one whole superstep (master)
	SpanCompute       = "compute"        // compute phase (Partition=-1) or one partition (Partition>=0)
	SpanBarrier       = "barrier"        // message delivery phase (master)
	SpanObserve       = "observe"        // capture/online-query phase (master)
	SpanSpill         = "spill"          // async provenance layer write (master)
	SpanCheckpoint    = "checkpoint"     // checkpoint file write (master)
	SpanExchange      = "exchange"       // one partition's full transport exchange (master)
	SpanSerialize     = "serialize"      // ExecRequest encoding (master)
	SpanRPC           = "rpc"            // one request/reply attempt on the wire (master)
	SpanBackoff       = "backoff"        // retransmit backoff sleep (master)
	SpanDecode        = "decode"         // ExecRequest decoding (worker)
	SpanWorkerCompute = "worker_compute" // partition compute on the worker
	SpanEncode        = "encode"         // ExecResult body encoding (worker)
	SpanFailover      = "failover"       // partition reassigned to a surviving worker (master)
	SpanDeliver       = "deliver"        // one worker's delivery-barrier exchange (master)
	SpanPeerWire      = "peer_wire"      // worker→worker fragment routing on the mesh (worker)
)

// Span is one timed operation in the distributed trace. Start is absolute
// unix nanoseconds so spans recorded on different processes of the same
// host merge onto one timeline; Dur/Bytes/Retries/Tuples are the per-span
// accounting that decomposes transport_overhead into named buckets.
type Span struct {
	TraceID   uint64 `json:"trace_id"`
	SpanID    uint64 `json:"span_id"`
	Parent    uint64 `json:"parent,omitempty"`
	Proc      string `json:"proc"`
	Name      string `json:"name"`
	Superstep int    `json:"superstep"`
	Partition int    `json:"partition"` // -1 when not partition-scoped
	Start     int64  `json:"start_ns"`  // unix nanoseconds
	Dur       int64  `json:"dur_ns"`
	Bytes     int64  `json:"bytes,omitempty"`
	Retries   int64  `json:"retries,omitempty"`
	Tuples    int64  `json:"tuples,omitempty"`
}

// maxSpans bounds the collector so a pathological run cannot grow it
// without limit; spans beyond it are counted in droppedSpans.
const maxSpans = 1 << 20

// spanSink collects completed spans. It sits behind Metrics.spans as an
// atomic pointer: nil means span tracing is disabled and every recording
// site is a single atomic load.
type spanSink struct {
	traceID uint64
	nextID  atomic.Uint64

	mu      sync.Mutex
	spans   []Span
	dropped int64
	ssStart int64 // unix ns when the current superstep opened
}

// EnableSpans turns on distributed span tracing. The trace ID is derived
// from the wall clock at enable time so independent runs get distinct IDs.
// Nil-safe; idempotent.
func (m *Metrics) EnableSpans() {
	if m == nil || m.spans.Load() != nil {
		return
	}
	s := &spanSink{traceID: uint64(time.Now().UnixNano())}
	if s.traceID == 0 {
		s.traceID = 1
	}
	m.spans.Store(s)
}

// SpansEnabled reports whether span tracing is on. Nil-safe; this is the
// zero-alloc guard instrumented hot paths check before calling time.Now.
func (m *Metrics) SpansEnabled() bool {
	return m != nil && m.spans.Load() != nil
}

// SpanTraceID returns the run's trace ID (0 when disabled). Nil-safe.
func (m *Metrics) SpanTraceID() uint64 {
	if m == nil {
		return 0
	}
	if s := m.spans.Load(); s != nil {
		return s.traceID
	}
	return 0
}

// NewSpanID allocates a fresh span ID (0 when disabled). Nil-safe.
func (m *Metrics) NewSpanID() uint64 {
	if m == nil {
		return 0
	}
	if s := m.spans.Load(); s != nil {
		return s.nextID.Add(1)
	}
	return 0
}

// RecordSpan stores one completed span, stamping TraceID/SpanID if the
// caller left them zero. No-op (and alloc-free) when tracing is disabled.
// Nil-safe; safe from any goroutine.
func (m *Metrics) RecordSpan(sp Span) {
	if m == nil {
		return
	}
	s := m.spans.Load()
	if s == nil {
		return
	}
	if sp.TraceID == 0 {
		sp.TraceID = s.traceID
	}
	if sp.SpanID == 0 {
		sp.SpanID = s.nextID.Add(1)
	}
	s.mu.Lock()
	if len(s.spans) >= maxSpans {
		s.dropped++
	} else {
		s.spans = append(s.spans, sp)
	}
	s.mu.Unlock()
}

// AddRemoteSpans merges spans shipped back from a worker process into the
// master timeline, allocating local span IDs for any the worker left zero
// (worker processes have no ID allocator of their own). Nil-safe.
func (m *Metrics) AddRemoteSpans(sps []Span) {
	if m == nil || len(sps) == 0 {
		return
	}
	s := m.spans.Load()
	if s == nil {
		return
	}
	s.mu.Lock()
	for _, sp := range sps {
		if sp.TraceID == 0 {
			sp.TraceID = s.traceID
		}
		if sp.SpanID == 0 {
			sp.SpanID = s.nextID.Add(1)
		}
		if len(s.spans) >= maxSpans {
			s.dropped++
			continue
		}
		s.spans = append(s.spans, sp)
	}
	s.mu.Unlock()
}

// Spans returns a copy of every recorded span. Nil-safe.
func (m *Metrics) Spans() []Span {
	if m == nil {
		return nil
	}
	s := m.spans.Load()
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Span(nil), s.spans...)
}

// SpansDropped returns how many spans the bounded collector discarded.
// Nil-safe.
func (m *Metrics) SpansDropped() int64 {
	if m == nil {
		return 0
	}
	s := m.spans.Load()
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// RestoreSpans rebuilds the span collector from a checkpoint so a resumed
// run's trace covers the pre-crash supersteps too. Enables tracing if the
// checkpoint carried spans; continues the restored trace ID and allocates
// new span IDs above the restored maximum. Nil-safe.
func (m *Metrics) RestoreSpans(sps []Span) {
	if m == nil || len(sps) == 0 {
		return
	}
	s := &spanSink{traceID: sps[0].TraceID}
	if s.traceID == 0 {
		s.traceID = uint64(time.Now().UnixNano())
	}
	var maxID uint64
	for _, sp := range sps {
		if sp.SpanID > maxID {
			maxID = sp.SpanID
		}
		if sp.Parent > maxID {
			maxID = sp.Parent
		}
	}
	s.nextID.Store(maxID)
	s.spans = append([]Span(nil), sps...)
	m.spans.Store(s)
}

// beginSpanSuperstep stamps the superstep start time used to anchor the
// synthesized phase spans. Called from BeginSuperstep.
func (m *Metrics) beginSpanSuperstep() {
	s := m.spans.Load()
	if s == nil {
		return
	}
	now := time.Now().UnixNano()
	s.mu.Lock()
	s.ssStart = now
	s.mu.Unlock()
}

// spanSuperstepStart returns the stamp set by beginSpanSuperstep.
func (m *Metrics) spanSuperstepStart() int64 {
	s := m.spans.Load()
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ssStart
}

// TransportBuckets decomposes the run's transport time into named buckets
// from the recorded spans: serialize (master request encoding + worker
// decode/encode), wire (RPC round-trip time not accounted to the worker,
// including worker→worker fragment routing on the peer mesh), worker_compute
// (partition compute on the worker), and retry (retransmit backoff sleeps).
// Worker-side SpanPeerWire spans ride back on the same ExecResult piggyback
// as decode/compute/encode, so peer-mesh wire time is subtracted from the
// master's RPC window and re-attributed to `wire` rather than silently
// inflating the residual — and never lands in worker_compute. Returns nil
// when no transport spans were recorded. Nil-safe.
func (m *Metrics) TransportBuckets() map[string]int64 {
	spans := m.Spans()
	var ser, rpc, dec, enc, wc, back, pw int64
	for i := range spans {
		switch spans[i].Name {
		case SpanSerialize:
			ser += spans[i].Dur
		case SpanRPC:
			rpc += spans[i].Dur
		case SpanDecode:
			dec += spans[i].Dur
		case SpanEncode:
			enc += spans[i].Dur
		case SpanWorkerCompute:
			wc += spans[i].Dur
		case SpanBackoff:
			back += spans[i].Dur
		case SpanPeerWire:
			pw += spans[i].Dur
		}
	}
	if ser+rpc+dec+enc+wc+back+pw == 0 {
		return nil
	}
	wire := rpc - dec - enc - wc - pw
	if wire < 0 {
		wire = 0
	}
	return map[string]int64{
		"serialize":      ser + dec + enc,
		"wire":           wire + pw,
		"worker_compute": wc,
		"retry":          back,
	}
}

// NetStats snapshots every ariadne_net_* and ariadne_failover_* counter
// plus the trace-drop total as a plain name→value map, so headless bench
// runs (-stats-json) see the same transport accounting Prometheus scrapes
// do. Nil-safe; returns nil when no such counters exist.
func (m *Metrics) NetStats() map[string]int64 {
	if m == nil {
		return nil
	}
	var out map[string]int64
	m.mu.RLock()
	for name, c := range m.counters {
		if strings.HasPrefix(name, "ariadne_net_") || strings.HasPrefix(name, "ariadne_failover_") ||
			name == MetricTraceDropped {
			if out == nil {
				out = map[string]int64{}
			}
			out[name] = c.Value()
		}
	}
	m.mu.RUnlock()
	return out
}

// counterValue reads a counter without creating the series (so reading
// net deltas at EndSuperstep does not mint zero-valued ariadne_net_*
// series in runs that never touched the transport).
func (m *Metrics) counterValue(name string) int64 {
	m.mu.RLock()
	c := m.counters[name]
	m.mu.RUnlock()
	return c.Value()
}

// RPCStat aggregates the wire accounting of one (superstep, partition)
// exchange: total frame bytes both ways, retransmit attempts, and wall
// time spent in round-trips. This is the row type behind the net_rpc
// PQL EDB.
type RPCStat struct {
	Superstep int   `json:"superstep"`
	Partition int   `json:"partition"`
	Bytes     int64 `json:"bytes"`
	Retries   int64 `json:"retries"`
	Nanos     int64 `json:"nanos"`
}

// AddRPC accumulates one transport Exec's wire accounting into the
// (superstep, partition) aggregate. Called by the TCP transport on every
// exchange whenever a registry is attached — independent of span tracing,
// so net_rpc rows exist for any instrumented distributed run. Nil-safe.
func (m *Metrics) AddRPC(ss, part int, bytes, retries int64, d time.Duration) {
	if m == nil {
		return
	}
	m.rmu.Lock()
	for i := len(m.rpcs) - 1; i >= 0 && m.rpcs[i].Superstep == ss; i-- {
		if m.rpcs[i].Partition == part {
			m.rpcs[i].Bytes += bytes
			m.rpcs[i].Retries += retries
			m.rpcs[i].Nanos += int64(d)
			m.rmu.Unlock()
			return
		}
	}
	m.rpcs = append(m.rpcs, RPCStat{
		Superstep: ss, Partition: part,
		Bytes: bytes, Retries: retries, Nanos: int64(d),
	})
	m.rmu.Unlock()
}

// RPCStats returns a copy of the per-(superstep, partition) exchange
// aggregates in recording order. Nil-safe.
func (m *Metrics) RPCStats() []RPCStat {
	if m == nil {
		return nil
	}
	m.rmu.Lock()
	defer m.rmu.Unlock()
	return append([]RPCStat(nil), m.rpcs...)
}

// RestoreRPCStats replaces the exchange aggregates from a checkpoint.
// Nil-safe.
func (m *Metrics) RestoreRPCStats(rs []RPCStat) {
	if m == nil {
		return
	}
	m.rmu.Lock()
	m.rpcs = append([]RPCStat(nil), rs...)
	m.rmu.Unlock()
}

// EncodeSpans appends a span list to a blob — the section format shared by
// the transport wire (ExecResult piggyback) and checkpoint v5.
func EncodeSpans(w *value.Blob, sps []Span) {
	w.Uvarint(uint64(len(sps)))
	for i := range sps {
		sp := &sps[i]
		w.Uvarint(sp.TraceID)
		w.Uvarint(sp.SpanID)
		w.Uvarint(sp.Parent)
		w.String(sp.Proc)
		w.String(sp.Name)
		w.Int(int64(sp.Superstep))
		w.Int(int64(sp.Partition))
		w.Int(sp.Start)
		w.Uvarint(uint64(sp.Dur))
		w.Uvarint(uint64(sp.Bytes))
		w.Uvarint(uint64(sp.Retries))
		w.Uvarint(uint64(sp.Tuples))
	}
}

// DecodeSpans reads an EncodeSpans section.
func DecodeSpans(r *value.BlobReader) ([]Span, error) {
	n := r.Count()
	var sps []Span
	for i := 0; i < n && r.Err() == nil; i++ {
		var sp Span
		sp.TraceID = r.Uvarint()
		sp.SpanID = r.Uvarint()
		sp.Parent = r.Uvarint()
		sp.Proc = r.String()
		sp.Name = r.String()
		sp.Superstep = int(r.Int())
		sp.Partition = int(r.Int())
		sp.Start = r.Int()
		sp.Dur = int64(r.Uvarint())
		sp.Bytes = int64(r.Uvarint())
		sp.Retries = int64(r.Uvarint())
		sp.Tuples = int64(r.Uvarint())
		sps = append(sps, sp)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("obs: corrupt span blob: %w", err)
	}
	return sps, nil
}

// EncodeRPCStats appends the exchange aggregates to a checkpoint blob.
func EncodeRPCStats(w *value.Blob, rs []RPCStat) {
	w.Uvarint(uint64(len(rs)))
	for i := range rs {
		w.Int(int64(rs[i].Superstep))
		w.Int(int64(rs[i].Partition))
		w.Uvarint(uint64(rs[i].Bytes))
		w.Uvarint(uint64(rs[i].Retries))
		w.Uvarint(uint64(rs[i].Nanos))
	}
}

// DecodeRPCStats reads an EncodeRPCStats blob.
func DecodeRPCStats(r *value.BlobReader) ([]RPCStat, error) {
	n := r.Count()
	var rs []RPCStat
	for i := 0; i < n && r.Err() == nil; i++ {
		var st RPCStat
		st.Superstep = int(r.Int())
		st.Partition = int(r.Int())
		st.Bytes = int64(r.Uvarint())
		st.Retries = int64(r.Uvarint())
		st.Nanos = int64(r.Uvarint())
		rs = append(rs, st)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("obs: corrupt rpc-stat blob: %w", err)
	}
	return rs, nil
}
