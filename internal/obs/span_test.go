package obs

import (
	"encoding/json"
	"testing"
	"time"

	"ariadne/internal/value"
)

func TestSpanDisabledZeroAlloc(t *testing.T) {
	m := New() // metrics on, spans off — the default instrumented run
	allocs := testing.AllocsPerRun(1000, func() {
		if m.SpansEnabled() {
			t.Fatal("spans unexpectedly enabled")
		}
		m.RecordSpan(Span{Proc: ProcMaster, Name: SpanCompute})
		m.AddRemoteSpans(nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocated %.1f per op, want 0", allocs)
	}
	var nilM *Metrics
	allocs = testing.AllocsPerRun(1000, func() {
		nilM.RecordSpan(Span{})
		if nilM.SpansEnabled() {
			t.Fatal("nil metrics enabled")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil-registry span path allocated %.1f per op, want 0", allocs)
	}
}

// BenchmarkSpanDisabled is the zero-alloc gate for the disabled span path:
// benchjson fails the bench run if allocs/op is nonzero. This is the cost
// every un-traced superstep pays at each instrumentation point.
func BenchmarkSpanDisabled(b *testing.B) {
	m := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if m.SpansEnabled() {
			b.Fatal("spans unexpectedly enabled")
		}
		m.RecordSpan(Span{Proc: ProcMaster, Name: SpanCompute, Superstep: i, Partition: 0})
	}
}

func TestSpanRecordAndIDs(t *testing.T) {
	m := New()
	m.EnableSpans()
	if !m.SpansEnabled() {
		t.Fatal("EnableSpans did not enable")
	}
	tid := m.SpanTraceID()
	if tid == 0 {
		t.Fatal("zero trace ID")
	}
	m.EnableSpans() // idempotent: same sink, same trace ID
	if m.SpanTraceID() != tid {
		t.Fatal("EnableSpans reset the trace ID")
	}
	m.RecordSpan(Span{Proc: ProcMaster, Name: SpanCompute, Superstep: 1, Partition: 0, Dur: 5})
	m.RecordSpan(Span{Proc: ProcMaster, Name: SpanBarrier, Superstep: 1, Partition: -1, Dur: 7})
	sps := m.Spans()
	if len(sps) != 2 {
		t.Fatalf("got %d spans, want 2", len(sps))
	}
	if sps[0].TraceID != tid || sps[1].TraceID != tid {
		t.Fatal("recorded spans missing the trace ID stamp")
	}
	if sps[0].SpanID == 0 || sps[0].SpanID == sps[1].SpanID {
		t.Fatalf("span IDs not unique: %d, %d", sps[0].SpanID, sps[1].SpanID)
	}
}

func TestAddRemoteSpansAllocatesIDs(t *testing.T) {
	m := New()
	m.EnableSpans()
	remote := []Span{
		{TraceID: 42, Parent: 9, Proc: "worker:x", Name: SpanDecode, Dur: 1},
		{Proc: "worker:x", Name: SpanEncode, Dur: 2}, // zero trace/span ID
	}
	m.AddRemoteSpans(remote)
	sps := m.Spans()
	if len(sps) != 2 {
		t.Fatalf("got %d spans, want 2", len(sps))
	}
	if sps[0].TraceID != 42 {
		t.Fatal("explicit remote trace ID overwritten")
	}
	if sps[1].TraceID != m.SpanTraceID() {
		t.Fatal("zero remote trace ID not stamped with the local one")
	}
	if sps[0].SpanID == 0 || sps[1].SpanID == 0 {
		t.Fatal("remote spans did not get local span IDs")
	}
}

func TestRestoreSpansContinuesTrace(t *testing.T) {
	m := New()
	saved := []Span{
		{TraceID: 7, SpanID: 3, Proc: ProcMaster, Name: SpanSuperstep, Superstep: 0, Dur: 10},
		{TraceID: 7, SpanID: 5, Parent: 11, Proc: ProcMaster, Name: SpanCompute, Superstep: 0, Dur: 4},
	}
	m.RestoreSpans(saved)
	if !m.SpansEnabled() {
		t.Fatal("RestoreSpans did not re-enable tracing")
	}
	if m.SpanTraceID() != 7 {
		t.Fatalf("trace ID %d, want restored 7", m.SpanTraceID())
	}
	if id := m.NewSpanID(); id <= 11 {
		t.Fatalf("new span ID %d collides with restored IDs (max was 11)", id)
	}
	if len(m.Spans()) != 2 {
		t.Fatal("restored spans missing")
	}
}

func TestSpanCodecRoundTrip(t *testing.T) {
	in := []Span{
		{TraceID: 1, SpanID: 2, Parent: 3, Proc: "worker:127.0.0.1:9", Name: SpanDecode,
			Superstep: 4, Partition: -1, Start: -50, Dur: 6, Bytes: 7, Retries: 8, Tuples: 9},
		{TraceID: 10, SpanID: 11, Proc: ProcMaster, Name: SpanRPC,
			Superstep: 0, Partition: 3, Start: time.Now().UnixNano(), Dur: 12},
	}
	b := value.NewBlob()
	EncodeSpans(b, in)
	out, err := DecodeSpans(value.NewBlobReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("span %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
	// Empty section: zero count, no error.
	b2 := value.NewBlob()
	EncodeSpans(b2, nil)
	out2, err := DecodeSpans(value.NewBlobReader(b2.Bytes()))
	if err != nil || len(out2) != 0 {
		t.Fatalf("empty section: spans=%v err=%v", out2, err)
	}
}

func TestRPCStatCodecAndAggregation(t *testing.T) {
	m := New()
	m.AddRPC(0, 1, 100, 0, 3*time.Millisecond)
	m.AddRPC(0, 1, 50, 2, 1*time.Millisecond) // same (ss, part): merge
	m.AddRPC(1, 0, 10, 0, 1*time.Millisecond)
	rs := m.RPCStats()
	if len(rs) != 2 {
		t.Fatalf("got %d rpc stats, want 2 (merged)", len(rs))
	}
	if rs[0].Bytes != 150 || rs[0].Retries != 2 || rs[0].Nanos != int64(4*time.Millisecond) {
		t.Fatalf("merge wrong: %+v", rs[0])
	}
	b := value.NewBlob()
	EncodeRPCStats(b, rs)
	out, err := DecodeRPCStats(value.NewBlobReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if rs[i] != out[i] {
			t.Fatalf("rpc stat %d: got %+v, want %+v", i, out[i], rs[i])
		}
	}
}

func TestTransportBuckets(t *testing.T) {
	m := New()
	m.EnableSpans()
	if m.TransportBuckets() != nil {
		t.Fatal("buckets from a run with no transport spans")
	}
	m.RecordSpan(Span{Name: SpanSerialize, Dur: 10})
	m.RecordSpan(Span{Name: SpanRPC, Dur: 100})
	m.RecordSpan(Span{Name: SpanDecode, Dur: 5})
	m.RecordSpan(Span{Name: SpanWorkerCompute, Dur: 60})
	m.RecordSpan(Span{Name: SpanEncode, Dur: 5})
	m.RecordSpan(Span{Name: SpanBackoff, Dur: 7})
	bk := m.TransportBuckets()
	if bk["serialize"] != 20 || bk["wire"] != 30 || bk["worker_compute"] != 60 || bk["retry"] != 7 {
		t.Fatalf("buckets wrong: %v", bk)
	}
}

func TestTraceRingDropCounter(t *testing.T) {
	m := New()
	m.EnableTrace(4)
	for i := 0; i < 10; i++ {
		m.Tracef(Info, "test", i, "event %d", i)
	}
	if got := m.Counter(MetricTraceDropped).Value(); got != 6 {
		t.Fatalf("%s = %d, want 6 (10 events into a 4-slot ring)", MetricTraceDropped, got)
	}
	ns := m.NetStats()
	if ns[MetricTraceDropped] != 6 {
		t.Fatalf("NetStats missing the drop counter: %v", ns)
	}
}

func TestChromeTraceExport(t *testing.T) {
	m := New()
	m.EnableSpans()
	base := time.Now().UnixNano()
	m.RecordSpan(Span{Proc: ProcMaster, Name: SpanSuperstep, Superstep: 0, Partition: -1,
		Start: base, Dur: int64(2 * time.Millisecond)})
	m.RecordSpan(Span{Proc: "worker:127.0.0.1:1", Name: SpanWorkerCompute, Superstep: 0,
		Partition: 1, Start: base + 100, Dur: int64(time.Millisecond), Tuples: 5})
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(m.ChromeTrace(), &out); err != nil {
		t.Fatalf("ChromeTrace is not valid JSON: %v", err)
	}
	var meta, complete int
	pids := map[int]bool{}
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
			pids[e.PID] = true
			if e.TS < 0 {
				t.Fatalf("negative normalized timestamp: %v", e.TS)
			}
		}
	}
	if meta != 2 || complete != 2 {
		t.Fatalf("got %d metadata + %d complete events, want 2 + 2", meta, complete)
	}
	if len(pids) != 2 {
		t.Fatalf("master and worker share a pid: %v", pids)
	}
}
