package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

// Repro: AddRetry after EndSuperstep mutates the published profile's
// Retries map, which Profiles() callers share by reference.
func TestReviewRetryMapRace(t *testing.T) {
	m := New()
	m.BeginSuperstep(0, 1)
	m.EndSuperstep()
	m.AddRetry("checkpoint") // map now exists in profiles[0]

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			m.AddRetry("checkpoint")
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			ps := m.Profiles()
			json.Marshal(ps)
		}
	}()
	wg.Wait()
}
