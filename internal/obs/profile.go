package obs

import (
	"fmt"
	"time"

	"ariadne/internal/value"
)

// Canonical series names. Callers thread these through the registry so the
// /metrics endpoint exposes one coherent namespace.
const (
	MetricSuperstep         = "ariadne_superstep"                   // gauge: current superstep
	MetricActiveVertices    = "ariadne_active_vertices"             // gauge: active vertices this superstep
	MetricSupersteps        = "ariadne_supersteps_total"            // counter
	MetricMessagesSent      = "ariadne_messages_sent_total"         // counter
	MetricMessagesDelivered = "ariadne_messages_delivered_total"    // counter (post-combining)
	MetricMessagesCombined  = "ariadne_messages_combined_total"     // counter (merged away)
	MetricCaptureTuples     = "ariadne_capture_tuples_total"        // counter, label table
	MetricCaptureBytes      = "ariadne_capture_bytes_total"         // counter (encoded layer bytes)
	MetricPiggybackTuples   = "ariadne_piggyback_tuples_total"      // counter, label query
	MetricSpillBytes        = "ariadne_spill_bytes_total"           // counter
	MetricSpillSeconds      = "ariadne_spill_duration_seconds"      // histogram
	MetricCheckpointBytes   = "ariadne_checkpoint_bytes_total"      // counter
	MetricCheckpointSeconds = "ariadne_checkpoint_duration_seconds" // histogram
	MetricComputeSeconds    = "ariadne_compute_duration_seconds"    // histogram per superstep
	MetricBarrierSeconds    = "ariadne_barrier_duration_seconds"    // histogram per superstep
	MetricObserveSeconds    = "ariadne_observe_duration_seconds"    // histogram per superstep
	MetricRetries           = "ariadne_io_retries_total"            // counter, label site
	// Partition-supervision series (PR 3).
	MetricPartitionRetries = "ariadne_partition_retries_total"         // counter: supervised re-executions
	MetricDeadlineHits     = "ariadne_partition_deadline_hits_total"   // counter: deadline-cancelled attempts
	MetricStragglers       = "ariadne_partition_straggler_flags_total" // counter: multiple-of-median flags
	MetricCaptureShed      = "ariadne_capture_shed_partitions"         // gauge: partitions currently degraded
	MetricCaptureGaps      = "ariadne_capture_gap_supersteps_total"    // counter: (partition, superstep) capture gaps
	MetricFaultsInjected   = "ariadne_faults_injected_total"           // counter
	// Parallel-barrier + async-spill series (PR 4).
	MetricCombinedSender      = "ariadne_messages_combined_sender_total" // counter: merged inside the sending partition
	MetricDeliveryMaxShard    = "ariadne_delivery_max_shard_messages"    // gauge: busiest delivery shard this superstep
	MetricSpillQueueDepth     = "ariadne_spill_queue_depth"              // gauge: async spill writes in flight
	MetricSpillQueueHighWater = "ariadne_spill_queue_high_water"         // gauge: max in-flight spill writes observed
	// Transport series (PR 6): the master's view of the wire to its workers.
	MetricNetMessagesSent   = "ariadne_net_messages_sent_total"    // counter: frames sent (label peer)
	MetricNetBytesSent      = "ariadne_net_bytes_sent_total"       // counter: frame payload bytes sent
	MetricNetMessagesRecv   = "ariadne_net_messages_recv_total"    // counter: frames received
	MetricNetBytesRecv      = "ariadne_net_bytes_recv_total"       // counter: frame payload bytes received
	MetricNetRetransmits    = "ariadne_net_retransmits_total"      // counter: requests re-sent after deadline/error
	MetricNetHeartbeatMiss  = "ariadne_net_heartbeat_misses_total" // counter: pings that got no pong in time
	MetricNetReconnects     = "ariadne_net_reconnects_total"       // counter: connections re-established
	MetricNetLocalFallbacks = "ariadne_net_local_fallbacks_total"  // counter: partitions pinned local after unreachable
	// Worker-resident state series (PR 9): delta exchanges and the peer mesh.
	MetricNetStateReseeds = "ariadne_net_state_reseeds_total" // counter: full-state seeds after a worker state miss
	MetricNetPeerFrags    = "ariadne_net_peer_frags_total"    // counter: worker→worker fragment frames sent
	MetricNetPeerBytes    = "ariadne_net_peer_bytes_total"    // counter: worker→worker fragment payload bytes
	MetricNetSnapFrames   = "ariadne_net_snap_frames_total"   // counter: frames sent block-compressed
	MetricNetSnapSavedB   = "ariadne_net_snap_saved_bytes"    // counter: payload bytes saved by compression
	// Tracing series (PR 7).
	MetricTraceDropped = "ariadne_trace_dropped_total" // counter: ring-evicted trace events
	// Failover series (PR 8): the worker pool's health machine. Deaths count
	// transitions into the dead state (budget-exhausted exchanges or missed
	// heartbeats), reassignments count partition->worker table rewrites,
	// rejoins count dead or draining workers re-admitted by a fresh
	// handshake, and drains count workers that deregistered gracefully.
	MetricFailoverDeaths        = "ariadne_failover_worker_deaths_total" // counter: workers declared dead
	MetricFailoverReassignments = "ariadne_failover_reassignments_total" // counter: partitions rerouted to a survivor
	MetricFailoverRejoins       = "ariadne_failover_rejoins_total"       // counter: workers re-admitted mid-run
	MetricFailoverDrains        = "ariadne_failover_drains_total"        // counter: workers drained gracefully
)

// SuperstepProfile is the per-superstep metrics record — one entry per
// completed superstep, the unit the -stats-json trajectories and the
// differential recovery tests consume. Durations are nanoseconds so the
// JSON form is integer-exact.
type SuperstepProfile struct {
	Superstep      int   `json:"superstep"`
	ActiveVertices int   `json:"active_vertices"`
	MessagesSent   int64 `json:"messages_sent"`
	// MessagesDelivered counts inbox entries after sender-side combining.
	MessagesDelivered int64 `json:"messages_delivered"`
	// MessagesCombined counts messages merged away by the combiner.
	MessagesCombined int64 `json:"messages_combined"`
	// MessagesCombinedSender is the subset of MessagesCombined merged
	// inside the sending partition before the barrier (zero when the
	// sequential reference barrier is selected).
	MessagesCombinedSender int64 `json:"messages_combined_sender,omitempty"`
	// DeliveryMaxShard is the message count of the busiest delivery shard
	// this superstep — maxShard*nParts/delivered gauges shard imbalance.
	DeliveryMaxShard int64 `json:"delivery_max_shard,omitempty"`
	ComputeNS        int64 `json:"compute_ns"`
	BarrierNS        int64 `json:"barrier_ns"`
	ObserveNS        int64 `json:"observe_ns"`
	// CaptureTuples counts provenance tuples appended this superstep,
	// keyed by table (value, send_message, receive_message, prov_send,
	// and any analytics-emitted tables).
	CaptureTuples map[string]int64 `json:"capture_tuples,omitempty"`
	CaptureBytes  int64            `json:"capture_bytes,omitempty"`
	// PiggybackTuples counts tuples derived by each online query this
	// superstep — the payload that would ride along analytic messages in a
	// distributed deployment (DESIGN.md decision 4).
	PiggybackTuples map[string]int64 `json:"piggyback_tuples,omitempty"`
	SpillBytes      int64            `json:"spill_bytes,omitempty"`
	SpillNS         int64            `json:"spill_ns,omitempty"`
	CheckpointBytes int64            `json:"checkpoint_bytes,omitempty"`
	CheckpointNS    int64            `json:"checkpoint_ns,omitempty"`
	// Retries counts transient-I/O retry events by site (spill,
	// checkpoint) — nonzero only under injected or real faults.
	Retries map[string]int64 `json:"retries,omitempty"`
	// PartitionRetries counts supervised partition re-executions this
	// superstep; DeadlineHits counts attempts cancelled by the partition
	// deadline; Stragglers lists partitions flagged by the
	// multiple-of-median policy. All zero when supervision is off.
	PartitionRetries int64 `json:"partition_retries,omitempty"`
	DeadlineHits     int64 `json:"deadline_hits,omitempty"`
	Stragglers       []int `json:"stragglers,omitempty"`
	// Per-superstep transport deltas (PR 7): bytes this superstep put on
	// and took off the wire, and requests retransmitted — the
	// ariadne_net_* counters sliced per superstep so headless runs see
	// them in Result.Profile / -stats-json. All zero in-process.
	NetBytesSent   int64 `json:"net_bytes_sent,omitempty"`
	NetBytesRecv   int64 `json:"net_bytes_recv,omitempty"`
	NetRetransmits int64 `json:"net_retransmits,omitempty"`
}

// BeginSuperstep opens the profile for superstep ss. Called by the engine
// run goroutine; the profile under construction is pmu-guarded because the
// async spill writer attributes its I/O (AddSpill/AddRetry) to whatever
// superstep is current when the write completes. Nil-safe.
func (m *Metrics) BeginSuperstep(ss, active int) {
	if m == nil {
		return
	}
	m.pmu.Lock()
	m.cur = SuperstepProfile{Superstep: ss, ActiveVertices: active}
	m.curOpen = true
	m.pmu.Unlock()
	m.beginSpanSuperstep()
	m.Gauge(MetricSuperstep).Set(int64(ss))
	m.Gauge(MetricActiveVertices).Set(int64(active))
}

// SuperstepMessages records the barrier's message accounting. Nil-safe.
func (m *Metrics) SuperstepMessages(sent, delivered, combined int64) {
	if m == nil {
		return
	}
	m.pmu.Lock()
	m.cur.MessagesSent = sent
	m.cur.MessagesDelivered = delivered
	m.cur.MessagesCombined = combined
	m.pmu.Unlock()
	m.Counter(MetricMessagesSent).Add(sent)
	m.Counter(MetricMessagesDelivered).Add(delivered)
	m.Counter(MetricMessagesCombined).Add(combined)
}

// SuperstepDelivery records the parallel barrier's shape: how many
// messages the sender-side combiner merged away before the barrier, and
// the busiest delivery shard's message count (imbalance diagnostics).
// Nil-safe.
func (m *Metrics) SuperstepDelivery(senderHits, maxShard int64, nParts int) {
	if m == nil {
		return
	}
	m.pmu.Lock()
	m.cur.MessagesCombinedSender = senderHits
	m.cur.DeliveryMaxShard = maxShard
	m.pmu.Unlock()
	m.Counter(MetricCombinedSender).Add(senderHits)
	m.Gauge(MetricDeliveryMaxShard).Set(maxShard)
}

// SuperstepTimings records the phase wall times of the current superstep.
// Nil-safe.
func (m *Metrics) SuperstepTimings(compute, barrier, observe time.Duration) {
	if m == nil {
		return
	}
	m.pmu.Lock()
	m.cur.ComputeNS = int64(compute)
	m.cur.BarrierNS = int64(barrier)
	m.cur.ObserveNS = int64(observe)
	ss := m.cur.Superstep
	m.pmu.Unlock()
	if m.SpansEnabled() {
		// Synthesize the master phase spans from the measured wall times:
		// observe just ended, barrier ran immediately before it, and
		// compute started when the superstep opened.
		now := time.Now().UnixNano()
		m.RecordSpan(Span{Proc: ProcMaster, Name: SpanCompute, Superstep: ss, Partition: -1,
			Start: m.spanSuperstepStart(), Dur: int64(compute)})
		m.RecordSpan(Span{Proc: ProcMaster, Name: SpanBarrier, Superstep: ss, Partition: -1,
			Start: now - int64(observe) - int64(barrier), Dur: int64(barrier)})
		m.RecordSpan(Span{Proc: ProcMaster, Name: SpanObserve, Superstep: ss, Partition: -1,
			Start: now - int64(observe), Dur: int64(observe)})
	}
	m.Histogram(MetricComputeSeconds).Observe(compute)
	m.Histogram(MetricBarrierSeconds).Observe(barrier)
	m.Histogram(MetricObserveSeconds).Observe(observe)
}

// AddCaptureTuples counts provenance tuples appended for a table this
// superstep. Nil-safe.
func (m *Metrics) AddCaptureTuples(table string, n int64) {
	if m == nil || n == 0 {
		return
	}
	m.pmu.Lock()
	if m.cur.CaptureTuples == nil {
		m.cur.CaptureTuples = map[string]int64{}
	}
	m.cur.CaptureTuples[table] += n
	m.pmu.Unlock()
	m.Counter(L(MetricCaptureTuples, "table", table)).Add(n)
}

// AddCaptureBytes counts encoded provenance bytes appended to the store.
// Nil-safe.
func (m *Metrics) AddCaptureBytes(n int64) {
	if m == nil || n == 0 {
		return
	}
	m.pmu.Lock()
	m.cur.CaptureBytes += n
	m.pmu.Unlock()
	m.Counter(MetricCaptureBytes).Add(n)
}

// AddPiggyback counts tuples derived by an online query this superstep.
// Nil-safe.
func (m *Metrics) AddPiggyback(query string, n int64) {
	if m == nil || n == 0 {
		return
	}
	m.pmu.Lock()
	if m.cur.PiggybackTuples == nil {
		m.cur.PiggybackTuples = map[string]int64{}
	}
	m.cur.PiggybackTuples[query] += n
	m.pmu.Unlock()
	m.Counter(L(MetricPiggybackTuples, "query", query)).Add(n)
}

// AddSpill records one provenance layer-file write, attributed to the
// profile of superstep ss — the superstep whose append *triggered* the
// spill, not the one current when the asynchronous write happens to
// complete. Deterministic attribution keeps per-superstep profiles
// comparable across a run and its recovered re-execution. Safe to call
// from the async spill writer goroutine. Nil-safe.
func (m *Metrics) AddSpill(ss int, bytes int64, d time.Duration) {
	if m == nil {
		return
	}
	m.pmu.Lock()
	if m.curOpen && m.cur.Superstep == ss {
		m.cur.SpillBytes += bytes
		m.cur.SpillNS += int64(d)
	} else {
		for i := len(m.profiles) - 1; i >= 0; i-- {
			if m.profiles[i].Superstep == ss {
				m.profiles[i].SpillBytes += bytes
				m.profiles[i].SpillNS += int64(d)
				break
			}
		}
	}
	m.pmu.Unlock()
	if m.SpansEnabled() {
		m.RecordSpan(Span{Proc: ProcMaster, Name: SpanSpill, Superstep: ss, Partition: -1,
			Start: time.Now().UnixNano() - int64(d), Dur: int64(d), Bytes: bytes})
	}
	m.Counter(MetricSpillBytes).Add(bytes)
	m.Histogram(MetricSpillSeconds).Observe(d)
}

// AddCheckpoint records one checkpoint-file write. When the current
// superstep's profile is already closed (checkpoints are written after
// EndSuperstep so the snapshot carries the full profile), the cost is
// attributed to the newest completed profile. Nil-safe.
func (m *Metrics) AddCheckpoint(bytes int64, d time.Duration) {
	if m == nil {
		return
	}
	m.pmu.Lock()
	ss := m.cur.Superstep
	if m.curOpen {
		m.cur.CheckpointBytes += bytes
		m.cur.CheckpointNS += int64(d)
	} else if n := len(m.profiles); n > 0 {
		m.profiles[n-1].CheckpointBytes += bytes
		m.profiles[n-1].CheckpointNS += int64(d)
		ss = m.profiles[n-1].Superstep
	}
	m.pmu.Unlock()
	if m.SpansEnabled() {
		m.RecordSpan(Span{Proc: ProcMaster, Name: SpanCheckpoint, Superstep: ss, Partition: -1,
			Start: time.Now().UnixNano() - int64(d), Dur: int64(d), Bytes: bytes})
	}
	m.Counter(MetricCheckpointBytes).Add(bytes)
	m.Histogram(MetricCheckpointSeconds).Observe(d)
}

// AddRetry counts a transient-I/O retry at the named site (spill,
// checkpoint). Safe from the async spill writer goroutine. Nil-safe.
func (m *Metrics) AddRetry(site string) {
	if m == nil {
		return
	}
	m.pmu.Lock()
	if m.curOpen {
		if m.cur.Retries == nil {
			m.cur.Retries = map[string]int64{}
		}
		m.cur.Retries[site]++
	} else if n := len(m.profiles); n > 0 {
		// Copy-on-write: the closed profile's map may already be shared
		// with Profiles() callers, so never mutate it in place.
		next := make(map[string]int64, len(m.profiles[n-1].Retries)+1)
		for k, v := range m.profiles[n-1].Retries {
			next[k] = v
		}
		next[site]++
		m.profiles[n-1].Retries = next
	}
	m.pmu.Unlock()
	m.Counter(L(MetricRetries, "site", site)).Add(1)
}

// SuperstepSupervision records the superstep's partition-supervision
// summary: re-executions, deadline-cancelled attempts, and flagged
// stragglers. Called by the engine run goroutine at the barrier (the
// supervisor tallies from worker goroutines atomically and flushes here).
// Nil-safe.
func (m *Metrics) SuperstepSupervision(retries, deadlineHits int64, stragglers []int) {
	if m == nil {
		return
	}
	m.pmu.Lock()
	m.cur.PartitionRetries = retries
	m.cur.DeadlineHits = deadlineHits
	if len(stragglers) > 0 {
		m.cur.Stragglers = append([]int(nil), stragglers...)
	}
	m.pmu.Unlock()
	m.Counter(MetricPartitionRetries).Add(retries)
	m.Counter(MetricDeadlineHits).Add(deadlineHits)
	m.Counter(MetricStragglers).Add(int64(len(stragglers)))
}

// SpillQueue publishes the async spill pipeline's in-flight depth and its
// observed high-water mark. Called from the store on enqueue/completion.
// Nil-safe.
func (m *Metrics) SpillQueue(depth, highWater int64) {
	if m == nil {
		return
	}
	m.Gauge(MetricSpillQueueDepth).Set(depth)
	m.Gauge(MetricSpillQueueHighWater).Set(highWater)
}

// EndSuperstep closes the current profile and publishes it, slicing the
// cumulative ariadne_net_* counters into per-superstep deltas on the way
// out. Nil-safe.
func (m *Metrics) EndSuperstep() {
	if m == nil {
		return
	}
	sent := m.counterValue(MetricNetBytesSent)
	recv := m.counterValue(MetricNetBytesRecv)
	rtx := m.counterValue(MetricNetRetransmits)
	m.pmu.Lock()
	if !m.curOpen {
		m.pmu.Unlock()
		return
	}
	m.curOpen = false
	m.cur.NetBytesSent = sent - m.netPrevSent
	m.cur.NetBytesRecv = recv - m.netPrevRecv
	m.cur.NetRetransmits = rtx - m.netPrevRetrans
	m.netPrevSent, m.netPrevRecv, m.netPrevRetrans = sent, recv, rtx
	ss := m.cur.Superstep
	m.profiles = append(m.profiles, m.cur)
	m.cur = SuperstepProfile{}
	m.pmu.Unlock()
	if m.SpansEnabled() {
		start := m.spanSuperstepStart()
		m.RecordSpan(Span{Proc: ProcMaster, Name: SpanSuperstep, Superstep: ss, Partition: -1,
			Start: start, Dur: time.Now().UnixNano() - start})
	}
	m.Counter(MetricSupersteps).Add(1)
}

// AbortSuperstep discards the profile under construction (the superstep
// crashed before its barrier completed; a resumed run re-executes it).
// Nil-safe.
func (m *Metrics) AbortSuperstep() {
	if m == nil {
		return
	}
	m.pmu.Lock()
	m.curOpen = false
	m.cur = SuperstepProfile{}
	m.pmu.Unlock()
}

// Profiles returns a copy of the completed per-superstep profiles.
// Nil-safe. The maps inside are shared with the registry and must be
// treated as read-only by callers.
func (m *Metrics) Profiles() []SuperstepProfile {
	if m == nil {
		return nil
	}
	m.pmu.Lock()
	defer m.pmu.Unlock()
	return append([]SuperstepProfile(nil), m.profiles...)
}

// RestoreProfiles resets the registry to the state a run that produced ps
// would have: the profiles become the completed history and every
// profile-derived counter/histogram is rebuilt from them, so a resumed run
// reports cumulative — not truncated — metrics. Counters without a profile
// column (e.g. injected-fault totals from the crashed attempt) restart at
// zero. Nil-safe.
func (m *Metrics) RestoreProfiles(ps []SuperstepProfile) {
	if m == nil {
		return
	}
	m.reset()
	m.pmu.Lock()
	m.profiles = append([]SuperstepProfile(nil), ps...)
	m.curOpen = false
	m.cur = SuperstepProfile{}
	m.pmu.Unlock()
	for i := range ps {
		p := &ps[i]
		m.Counter(MetricSupersteps).Add(1)
		m.Counter(MetricMessagesSent).Add(p.MessagesSent)
		m.Counter(MetricMessagesDelivered).Add(p.MessagesDelivered)
		m.Counter(MetricMessagesCombined).Add(p.MessagesCombined)
		m.Counter(MetricCaptureBytes).Add(p.CaptureBytes)
		m.Counter(MetricSpillBytes).Add(p.SpillBytes)
		m.Counter(MetricCheckpointBytes).Add(p.CheckpointBytes)
		for t, n := range p.CaptureTuples {
			m.Counter(L(MetricCaptureTuples, "table", t)).Add(n)
		}
		for q, n := range p.PiggybackTuples {
			m.Counter(L(MetricPiggybackTuples, "query", q)).Add(n)
		}
		for s, n := range p.Retries {
			m.Counter(L(MetricRetries, "site", s)).Add(n)
		}
		m.Counter(MetricPartitionRetries).Add(p.PartitionRetries)
		m.Counter(MetricDeadlineHits).Add(p.DeadlineHits)
		m.Counter(MetricStragglers).Add(int64(len(p.Stragglers)))
		m.Counter(MetricCombinedSender).Add(p.MessagesCombinedSender)
		if p.NetBytesSent > 0 || p.NetBytesRecv > 0 || p.NetRetransmits > 0 {
			m.Counter(MetricNetBytesSent).Add(p.NetBytesSent)
			m.Counter(MetricNetBytesRecv).Add(p.NetBytesRecv)
			m.Counter(MetricNetRetransmits).Add(p.NetRetransmits)
		}
		m.Gauge(MetricDeliveryMaxShard).Set(p.DeliveryMaxShard)
		m.Histogram(MetricComputeSeconds).Observe(time.Duration(p.ComputeNS))
		m.Histogram(MetricBarrierSeconds).Observe(time.Duration(p.BarrierNS))
		m.Histogram(MetricObserveSeconds).Observe(time.Duration(p.ObserveNS))
		if p.SpillNS > 0 || p.SpillBytes > 0 {
			m.Histogram(MetricSpillSeconds).Observe(time.Duration(p.SpillNS))
		}
		if p.CheckpointNS > 0 || p.CheckpointBytes > 0 {
			m.Histogram(MetricCheckpointSeconds).Observe(time.Duration(p.CheckpointNS))
		}
		m.Gauge(MetricSuperstep).Set(int64(p.Superstep))
		m.Gauge(MetricActiveVertices).Set(int64(p.ActiveVertices))
	}
	m.pmu.Lock()
	m.netPrevSent = m.counterValue(MetricNetBytesSent)
	m.netPrevRecv = m.counterValue(MetricNetBytesRecv)
	m.netPrevRetrans = m.counterValue(MetricNetRetransmits)
	m.pmu.Unlock()
}

// EncodeProfiles appends the profiles to a checkpoint blob — the format
// that lets a recovered run report cumulative metrics.
func EncodeProfiles(w *value.Blob, ps []SuperstepProfile) {
	w.Uvarint(uint64(len(ps)))
	for i := range ps {
		p := &ps[i]
		w.Uvarint(uint64(p.Superstep))
		w.Uvarint(uint64(p.ActiveVertices))
		w.Uvarint(uint64(p.MessagesSent))
		w.Uvarint(uint64(p.MessagesDelivered))
		w.Uvarint(uint64(p.MessagesCombined))
		w.Uvarint(uint64(p.ComputeNS))
		w.Uvarint(uint64(p.BarrierNS))
		w.Uvarint(uint64(p.ObserveNS))
		w.Uvarint(uint64(p.CaptureBytes))
		w.Uvarint(uint64(p.SpillBytes))
		w.Uvarint(uint64(p.SpillNS))
		w.Uvarint(uint64(p.CheckpointBytes))
		w.Uvarint(uint64(p.CheckpointNS))
		encodeCountMap(w, p.CaptureTuples)
		encodeCountMap(w, p.PiggybackTuples)
		encodeCountMap(w, p.Retries)
		// Checkpoint v3: supervision columns.
		w.Uvarint(uint64(p.PartitionRetries))
		w.Uvarint(uint64(p.DeadlineHits))
		w.Uvarint(uint64(len(p.Stragglers)))
		for _, s := range p.Stragglers {
			w.Uvarint(uint64(s))
		}
		// Checkpoint v4: parallel-barrier columns.
		w.Uvarint(uint64(p.MessagesCombinedSender))
		w.Uvarint(uint64(p.DeliveryMaxShard))
		// Checkpoint v5: per-superstep transport deltas.
		w.Uvarint(uint64(p.NetBytesSent))
		w.Uvarint(uint64(p.NetBytesRecv))
		w.Uvarint(uint64(p.NetRetransmits))
	}
}

// DecodeProfiles reads an EncodeProfiles blob.
func DecodeProfiles(r *value.BlobReader) ([]SuperstepProfile, error) {
	n := r.Count()
	var ps []SuperstepProfile
	for i := 0; i < n && r.Err() == nil; i++ {
		var p SuperstepProfile
		p.Superstep = int(r.Uvarint())
		p.ActiveVertices = int(r.Uvarint())
		p.MessagesSent = int64(r.Uvarint())
		p.MessagesDelivered = int64(r.Uvarint())
		p.MessagesCombined = int64(r.Uvarint())
		p.ComputeNS = int64(r.Uvarint())
		p.BarrierNS = int64(r.Uvarint())
		p.ObserveNS = int64(r.Uvarint())
		p.CaptureBytes = int64(r.Uvarint())
		p.SpillBytes = int64(r.Uvarint())
		p.SpillNS = int64(r.Uvarint())
		p.CheckpointBytes = int64(r.Uvarint())
		p.CheckpointNS = int64(r.Uvarint())
		p.CaptureTuples = decodeCountMap(r)
		p.PiggybackTuples = decodeCountMap(r)
		p.Retries = decodeCountMap(r)
		p.PartitionRetries = int64(r.Uvarint())
		p.DeadlineHits = int64(r.Uvarint())
		nStrag := r.Count()
		for j := 0; j < nStrag && r.Err() == nil; j++ {
			p.Stragglers = append(p.Stragglers, int(r.Uvarint()))
		}
		p.MessagesCombinedSender = int64(r.Uvarint())
		p.DeliveryMaxShard = int64(r.Uvarint())
		p.NetBytesSent = int64(r.Uvarint())
		p.NetBytesRecv = int64(r.Uvarint())
		p.NetRetransmits = int64(r.Uvarint())
		ps = append(ps, p)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("obs: corrupt profile blob: %w", err)
	}
	return ps, nil
}

func encodeCountMap(w *value.Blob, m map[string]int64) {
	w.Uvarint(uint64(len(m)))
	for _, k := range sortedKeys(m) {
		w.String(k)
		w.Uvarint(uint64(m[k]))
	}
}

func decodeCountMap(r *value.BlobReader) map[string]int64 {
	n := r.Count()
	if n == 0 {
		return nil
	}
	m := make(map[string]int64, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.String()
		m[k] = int64(r.Uvarint())
	}
	return m
}
