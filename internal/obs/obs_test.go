package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ariadne/internal/value"
)

func TestCounterGaugeHistogram(t *testing.T) {
	m := New()
	m.Counter("c").Add(3)
	m.Counter("c").Add(4)
	if got := m.Counter("c").Value(); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	m.Gauge("g").Set(9)
	m.Gauge("g").Set(5)
	if got := m.Gauge("g").Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	h := m.Histogram("h")
	h.Observe(2 * time.Millisecond)
	h.Observe(30 * time.Second)
	if h.Count() != 2 {
		t.Errorf("hist count = %d, want 2", h.Count())
	}
	if want := int64(2*time.Millisecond + 30*time.Second); h.SumNS() != want {
		t.Errorf("hist sum = %d, want %d", h.SumNS(), want)
	}
	// Same name returns the same instance.
	if m.Counter("c") != m.Counter("c") {
		t.Error("Counter not idempotent per name")
	}

	snap := m.Snapshot()
	if snap["c"] != int64(7) || snap["g"] != int64(5) || snap["h_count"] != int64(2) {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestLabeledSeriesName(t *testing.T) {
	key := L("capture_tuples_total", "table", "value")
	if key != `capture_tuples_total{table="value"}` {
		t.Fatalf("L = %q", key)
	}
	name, labels := seriesKey(key)
	if name != "capture_tuples_total" || labels != `{table="value"}` {
		t.Fatalf("seriesKey = %q, %q", name, labels)
	}
}

// TestNilSafety calls every exported method on a nil registry (and nil
// series) — the disabled-instrumentation path every call site relies on.
func TestNilSafety(t *testing.T) {
	var m *Metrics
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(1)
	g.Set(1)
	h.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.SumNS() != 0 {
		t.Error("nil series should read zero")
	}
	m.EnableTrace(16)
	m.BeginSuperstep(0, 10)
	m.SuperstepMessages(1, 2, 3)
	m.SuperstepTimings(1, 2, 3)
	m.AddCaptureTuples("value", 5)
	m.AddCaptureBytes(10)
	m.AddPiggyback("q", 2)
	m.AddSpill(0, 1, time.Millisecond)
	m.AddCheckpoint(1, time.Millisecond)
	m.AddRetry("spill")
	m.EndSuperstep()
	m.AbortSuperstep()
	m.Tracef(Warn, "site", 0, "message")
	if m.Counter("x") != nil || m.Gauge("x") != nil || m.Histogram("x") != nil {
		t.Error("nil registry should hand out nil series")
	}
	if m.Profiles() != nil || m.Snapshot() != nil {
		t.Error("nil registry should read empty")
	}
	if m.TraceEnabled() {
		t.Error("nil registry cannot have tracing enabled")
	}
	if ev, dropped := m.TraceEvents(); ev != nil || dropped != 0 {
		t.Error("nil registry should have no trace")
	}
	if m.PrometheusText() != "" {
		t.Error("nil registry renders empty exposition")
	}
}

// TestNilMetricsZeroAlloc pins the acceptance criterion: the per-superstep
// instrumentation sequence allocates nothing when metrics are disabled.
func TestNilMetricsZeroAlloc(t *testing.T) {
	var m *Metrics
	allocs := testing.AllocsPerRun(100, func() {
		m.BeginSuperstep(3, 100)
		m.SuperstepMessages(10, 8, 2)
		m.AddCaptureTuples("value", 7)
		m.AddCaptureBytes(128)
		m.AddPiggyback("q4", 3)
		m.AddSpill(3, 64, time.Millisecond)
		m.SuperstepTimings(time.Millisecond, time.Microsecond, time.Microsecond)
		m.EndSuperstep()
		m.Tracef(Warn, "engine", 3, "no formatting happens when disabled")
	})
	if allocs != 0 {
		t.Errorf("disabled instrumentation allocates %v per superstep, want 0", allocs)
	}
}

// TestDisabledTraceZeroAlloc: tracing off on a live registry must skip the
// event formatting entirely.
func TestDisabledTraceZeroAlloc(t *testing.T) {
	m := New()
	allocs := testing.AllocsPerRun(100, func() {
		m.Tracef(Info, "engine", 1, "not formatted")
	})
	if allocs != 0 {
		t.Errorf("disabled trace allocates %v per event, want 0", allocs)
	}
}

func TestTraceRing(t *testing.T) {
	m := New()
	if m.TraceEnabled() {
		t.Fatal("trace enabled before EnableTrace")
	}
	m.EnableTrace(4)
	if !m.TraceEnabled() {
		t.Fatal("trace not enabled")
	}
	for i := 0; i < 7; i++ {
		m.Tracef(Level(i%3), "site", i, "event %d", i)
	}
	events, dropped := m.TraceEvents()
	if len(events) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(events))
	}
	if dropped != 3 {
		t.Errorf("dropped = %d, want 3", dropped)
	}
	// Oldest-first, consecutive sequence numbers.
	for i, e := range events {
		if e.Superstep != 3+i {
			t.Errorf("event %d superstep = %d, want %d", i, e.Superstep, 3+i)
		}
		if e.Msg != "event "+string(rune('3'+i)) {
			t.Errorf("event %d msg = %q", i, e.Msg)
		}
		if i > 0 && e.Seq != events[i-1].Seq+1 {
			t.Errorf("seq not consecutive at %d: %d after %d", i, e.Seq, events[i-1].Seq)
		}
	}
}

func TestTraceLevelJSON(t *testing.T) {
	b, err := json.Marshal(Event{Level: Warn, Site: "spill", Superstep: 2, Msg: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"level":"warn"`) {
		t.Errorf("level not rendered by name: %s", b)
	}
}

func TestProfileLifecycle(t *testing.T) {
	m := New()
	m.BeginSuperstep(0, 50)
	m.SuperstepMessages(100, 90, 10)
	m.AddCaptureTuples("value", 50)
	m.AddCaptureTuples("value", 10)
	m.AddPiggyback("q4", 7)
	m.SuperstepTimings(time.Millisecond, time.Microsecond, 2*time.Microsecond)
	m.EndSuperstep()
	// A checkpoint written after the superstep closed lands on its profile.
	m.AddCheckpoint(1234, time.Millisecond)
	m.AddRetry("checkpoint")

	ps := m.Profiles()
	if len(ps) != 1 {
		t.Fatalf("profiles = %d, want 1", len(ps))
	}
	p := ps[0]
	if p.Superstep != 0 || p.ActiveVertices != 50 {
		t.Errorf("superstep/active = %d/%d", p.Superstep, p.ActiveVertices)
	}
	if p.MessagesSent != 100 || p.MessagesDelivered != 90 || p.MessagesCombined != 10 {
		t.Errorf("messages = %d/%d/%d", p.MessagesSent, p.MessagesDelivered, p.MessagesCombined)
	}
	if p.CaptureTuples["value"] != 60 {
		t.Errorf("capture tuples = %v", p.CaptureTuples)
	}
	if p.PiggybackTuples["q4"] != 7 {
		t.Errorf("piggyback = %v", p.PiggybackTuples)
	}
	if p.CheckpointBytes != 1234 || p.CheckpointNS != int64(time.Millisecond) {
		t.Errorf("checkpoint attribution = %d bytes / %d ns", p.CheckpointBytes, p.CheckpointNS)
	}
	if p.Retries["checkpoint"] != 1 {
		t.Errorf("retries = %v", p.Retries)
	}
	if got := m.Counter(MetricSupersteps).Value(); got != 1 {
		t.Errorf("supersteps counter = %d", got)
	}
	if got := m.Counter(L(MetricCaptureTuples, "table", "value")).Value(); got != 60 {
		t.Errorf("capture counter = %d", got)
	}

	// An aborted superstep leaves no profile behind.
	m.BeginSuperstep(1, 40)
	m.SuperstepMessages(5, 5, 0)
	m.AbortSuperstep()
	if got := len(m.Profiles()); got != 1 {
		t.Errorf("profiles after abort = %d, want 1", got)
	}
}

func sampleProfiles() []SuperstepProfile {
	return []SuperstepProfile{
		{
			Superstep: 0, ActiveVertices: 256,
			MessagesSent: 1000, MessagesDelivered: 800, MessagesCombined: 200,
			ComputeNS: 12345, BarrierNS: 678, ObserveNS: 91011,
			CaptureTuples: map[string]int64{"value": 256, "send_message": 1000},
			CaptureBytes:  4096,
			SpillBytes:    4096, SpillNS: 2222,
		},
		{
			Superstep: 1, ActiveVertices: 200,
			MessagesSent: 900, MessagesDelivered: 900,
			ComputeNS: 111, BarrierNS: 222, ObserveNS: 333,
			PiggybackTuples: map[string]int64{"q4-pagerank-check": 17},
			CheckpointBytes: 8192, CheckpointNS: 5555,
			Retries: map[string]int64{"spill": 2},
		},
	}
}

func TestEncodeDecodeProfiles(t *testing.T) {
	want := sampleProfiles()
	w := value.NewBlob()
	EncodeProfiles(w, want)
	got, err := DecodeProfiles(value.NewBlobReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if string(gb) != string(wb) {
		t.Errorf("roundtrip mismatch:\n got %s\nwant %s", gb, wb)
	}

	// Truncation at any byte errors instead of returning bogus profiles.
	raw := w.Bytes()
	for cut := 1; cut < len(raw); cut += 7 {
		if _, err := DecodeProfiles(value.NewBlobReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d decoded cleanly", cut, len(raw))
		}
	}
}

func TestRestoreProfiles(t *testing.T) {
	ps := sampleProfiles()
	m := New()
	m.Counter("leftover").Add(99)
	m.RestoreProfiles(ps)
	if got := m.Counter("leftover").Value(); got != 0 {
		t.Errorf("pre-restore series survived reset: %d", got)
	}
	if got := m.Counter(MetricSupersteps).Value(); got != 2 {
		t.Errorf("supersteps = %d, want 2", got)
	}
	if got := m.Counter(MetricMessagesSent).Value(); got != 1900 {
		t.Errorf("messages sent = %d, want 1900", got)
	}
	if got := m.Counter(L(MetricCaptureTuples, "table", "value")).Value(); got != 256 {
		t.Errorf("capture tuples = %d, want 256", got)
	}
	if got := m.Counter(L(MetricRetries, "site", "spill")).Value(); got != 2 {
		t.Errorf("spill retries = %d, want 2", got)
	}
	if got := len(m.Profiles()); got != 2 {
		t.Errorf("profiles = %d, want 2", got)
	}
	// Restoration continues cleanly: the next superstep appends.
	m.BeginSuperstep(2, 100)
	m.SuperstepMessages(10, 10, 0)
	m.EndSuperstep()
	if got := m.Counter(MetricSupersteps).Value(); got != 3 {
		t.Errorf("supersteps after continue = %d, want 3", got)
	}
}

func TestPrometheusText(t *testing.T) {
	m := New()
	m.Counter(L("ariadne_capture_tuples_total", "table", "value")).Add(5)
	m.Counter(L("ariadne_capture_tuples_total", "table", "send_message")).Add(9)
	m.Gauge("ariadne_superstep").Set(3)
	m.Histogram("ariadne_compute_duration_seconds").Observe(2 * time.Millisecond)
	m.Histogram("ariadne_compute_duration_seconds").Observe(3 * time.Second)

	text := m.PrometheusText()
	for _, want := range []string{
		"# TYPE ariadne_capture_tuples_total counter\n",
		`ariadne_capture_tuples_total{table="value"} 5` + "\n",
		`ariadne_capture_tuples_total{table="send_message"} 9` + "\n",
		"# TYPE ariadne_superstep gauge\nariadne_superstep 3\n",
		"# TYPE ariadne_compute_duration_seconds histogram\n",
		`ariadne_compute_duration_seconds_bucket{le="0.001"} 0` + "\n",
		`ariadne_compute_duration_seconds_bucket{le="0.01"} 1` + "\n",
		`ariadne_compute_duration_seconds_bucket{le="10"} 2` + "\n",
		`ariadne_compute_duration_seconds_bucket{le="+Inf"} 2` + "\n",
		"ariadne_compute_duration_seconds_count 2\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if n := strings.Count(text, "# TYPE ariadne_capture_tuples_total"); n != 1 {
		t.Errorf("family typed %d times, want once", n)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	m := New()
	m.EnableTrace(8)
	m.BeginSuperstep(0, 10)
	m.SuperstepMessages(42, 42, 0)
	m.EndSuperstep()
	m.Tracef(Warn, "spill", 0, "retrying")

	srv := httptest.NewServer(Handler(m))
	defer srv.Close()
	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}

	if body := get("/metrics"); !strings.Contains(body, "ariadne_messages_sent_total 42") {
		t.Errorf("/metrics: %s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, `"ariadne"`) {
		t.Errorf("/debug/vars missing ariadne var: %s", body)
	}
	var traceOut struct {
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(get("/trace")), &traceOut); err != nil {
		t.Fatalf("/trace: %v", err)
	}
	if len(traceOut.Events) != 1 || traceOut.Events[0].Site != "spill" {
		t.Errorf("/trace events = %+v", traceOut.Events)
	}
	var profs []SuperstepProfile
	if err := json.Unmarshal([]byte(get("/supersteps")), &profs); err != nil {
		t.Fatalf("/supersteps: %v", err)
	}
	if len(profs) != 1 || profs[0].MessagesSent != 42 {
		t.Errorf("/supersteps = %+v", profs)
	}
	if body := get("/"); !strings.Contains(body, "/metrics") {
		t.Errorf("index = %s", body)
	}
}

func TestServe(t *testing.T) {
	m := New()
	srv, addr, err := Serve("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if addr.String() == "" {
		t.Fatal("no bound address")
	}
}
