package obs

import (
	"encoding/json"
	"sort"
	"strconv"
)

// chromeEvent is one Chrome trace_event entry ("X" complete events plus
// "M" metadata naming the processes), the format chrome://tracing and
// Perfetto load directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders the merged span timeline as Chrome trace_event JSON.
// Each process (master, worker:<addr>) becomes a pid; within a process,
// tid 0 carries the superstep/phase lanes and tid p+1 carries partition p.
// Timestamps are normalized to the earliest span so the numbers stay
// microsecond-exact in float64. Nil-safe (returns an empty trace).
func (m *Metrics) ChromeTrace() []byte {
	spans := m.Spans()
	// Stable process ordering: master first, then workers sorted by name.
	procs := map[string]int{}
	var names []string
	for i := range spans {
		if _, ok := procs[spans[i].Proc]; !ok {
			procs[spans[i].Proc] = 0
			names = append(names, spans[i].Proc)
		}
	}
	sort.Slice(names, func(i, j int) bool {
		if (names[i] == ProcMaster) != (names[j] == ProcMaster) {
			return names[i] == ProcMaster
		}
		return names[i] < names[j]
	})
	for i, n := range names {
		procs[n] = i
	}
	var t0 int64
	for i := range spans {
		if t0 == 0 || (spans[i].Start > 0 && spans[i].Start < t0) {
			t0 = spans[i].Start
		}
	}
	evs := make([]chromeEvent, 0, len(spans)+len(names))
	for i, n := range names {
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", PID: i,
			Args: map[string]any{"name": n},
		})
	}
	for i := range spans {
		sp := &spans[i]
		args := map[string]any{
			"superstep": sp.Superstep,
			"trace_id":  strconv.FormatUint(sp.TraceID, 16),
			"span_id":   strconv.FormatUint(sp.SpanID, 16),
		}
		if sp.Parent != 0 {
			args["parent"] = strconv.FormatUint(sp.Parent, 16)
		}
		if sp.Partition >= 0 {
			args["partition"] = sp.Partition
		}
		if sp.Bytes > 0 {
			args["bytes"] = sp.Bytes
		}
		if sp.Retries > 0 {
			args["retries"] = sp.Retries
		}
		if sp.Tuples > 0 {
			args["tuples"] = sp.Tuples
		}
		evs = append(evs, chromeEvent{
			Name: sp.Name,
			Cat:  "ariadne",
			Ph:   "X",
			TS:   float64(sp.Start-t0) / 1e3,
			Dur:  float64(sp.Dur) / 1e3,
			PID:  procs[sp.Proc],
			TID:  sp.Partition + 1,
			Args: args,
		})
	}
	out, err := json.Marshal(chromeTraceFile{TraceEvents: evs, DisplayTimeUnit: "ms"})
	if err != nil {
		// Everything marshaled is plain scalars; this cannot fail.
		return []byte(`{"traceEvents":[]}`)
	}
	return out
}
