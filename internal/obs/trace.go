package obs

import (
	"fmt"
	"sync"
	"time"
)

// Level classifies a trace event.
type Level uint8

// Trace levels.
const (
	Info Level = iota
	Warn
	Error
)

func (l Level) String() string {
	switch l {
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// MarshalText renders the level as its lowercase name in JSON/text output.
func (l Level) MarshalText() ([]byte, error) { return []byte(l.String()), nil }

// UnmarshalText parses the lowercase level name, so /trace JSON consumers
// can decode back into Event.
func (l *Level) UnmarshalText(b []byte) error {
	switch string(b) {
	case "info":
		*l = Info
	case "warn":
		*l = Warn
	case "error":
		*l = Error
	default:
		return fmt.Errorf("obs: unknown trace level %q", b)
	}
	return nil
}

// Event is one structured trace entry: what happened, where in the
// pipeline (site), and at which superstep (-1 when not tied to one).
type Event struct {
	Seq       uint64    `json:"seq"`
	Time      time.Time `json:"time"`
	Level     Level     `json:"level"`
	Site      string    `json:"site"`
	Superstep int       `json:"superstep"`
	Msg       string    `json:"msg"`
}

// Trace is a fixed-capacity ring buffer of events. Appends evict the
// oldest entry once full; Dropped counts evictions so a post-mortem reader
// knows whether the window is complete.
type Trace struct {
	mu      sync.Mutex
	buf     []Event
	next    int // index of the slot the next event goes to
	full    bool
	seq     uint64
	dropped uint64
}

func newTrace(capacity int) *Trace {
	return &Trace{buf: make([]Event, capacity)}
}

// add appends one event and reports whether it evicted the oldest entry.
func (t *Trace) add(e Event) (evicted bool) {
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	if t.full {
		t.dropped++
		evicted = true
	}
	t.buf[t.next] = e
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
	return evicted
}

// events returns the buffered events oldest-first plus the eviction count.
func (t *Trace) events() ([]Event, uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Event
	if t.full {
		out = make([]Event, 0, len(t.buf))
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append([]Event(nil), t.buf[:t.next]...)
	}
	return out, t.dropped
}

// TraceEnabled reports whether the trace ring is active, so call sites can
// skip formatting work when it is not. Nil-safe.
func (m *Metrics) TraceEnabled() bool {
	return m != nil && m.trace.Load() != nil
}

// Tracef appends a formatted trace event. A no-op (without formatting)
// when m is nil or tracing is disabled. Safe from any goroutine.
func (m *Metrics) Tracef(level Level, site string, superstep int, format string, args ...any) {
	if m == nil {
		return
	}
	t := m.trace.Load()
	if t == nil {
		return
	}
	if t.add(Event{
		Time:      time.Now(),
		Level:     level,
		Site:      site,
		Superstep: superstep,
		Msg:       fmt.Sprintf(format, args...),
	}) {
		// The ring silently overwrote its oldest event; make the loss
		// visible as a counter (-stats-json and /metrics surface it).
		m.Counter(MetricTraceDropped).Add(1)
	}
}

// TraceEvents returns the buffered trace oldest-first and how many older
// events were evicted from the ring. Nil-safe.
func (m *Metrics) TraceEvents() (events []Event, dropped uint64) {
	if m == nil {
		return nil, 0
	}
	t := m.trace.Load()
	if t == nil {
		return nil, 0
	}
	return t.events()
}
