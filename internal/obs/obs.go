// Package obs is the observability layer for the BSP/provenance pipeline:
// a low-overhead, race-safe metrics registry (counters, gauges, duration
// histograms), a structured trace-event ring buffer, and per-superstep
// profiles — the instrumentation behind the paper's overhead claims
// (capture cost per superstep, piggybacked query tuples, provenance-store
// growth; §6, Tables 3–5).
//
// Everything is nil-safe: a nil *Metrics no-ops on every method, so
// instrumented call sites in the engine, capture, store, and drivers need
// no guards and the uninstrumented hot path pays one nil check and zero
// allocations per superstep.
//
// Concurrency model: counter/gauge/histogram mutation is atomic (safe from
// any goroutine, including concurrent /metrics scrapes mid-run). The
// superstep profile under construction is mutated under the profile lock
// (pmu): the engine's run goroutine writes most fields at the barrier, but
// the async spill writer attributes spill bytes to a profile after the
// fact, and /supersteps readers snapshot mid-run, so every profile mutator
// and reader takes pmu.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count. Nil-safe.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. Nil-safe.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value returns the gauge value. Nil-safe.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets are the upper bounds (in seconds) of the duration histogram,
// decade-spaced from 10µs to 100s — wide enough for both a combiner merge
// and a full-graph spill.
var histBuckets = [numHistBuckets]float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100}

const numHistBuckets = 8

// Histogram is a fixed-bucket duration histogram with atomic hot paths,
// rendered in Prometheus histogram exposition format.
type Histogram struct {
	counts [numHistBuckets + 1]atomic.Int64 // +1 for +Inf
	sumNS  atomic.Int64
	n      atomic.Int64
}

// Observe records one duration. Nil-safe.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	s := d.Seconds()
	i := 0
	for i < len(histBuckets) && s > histBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.n.Add(1)
}

// Count returns how many observations were recorded. Nil-safe.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// SumNS returns the summed observed nanoseconds. Nil-safe.
func (h *Histogram) SumNS() int64 {
	if h == nil {
		return 0
	}
	return h.sumNS.Load()
}

// Metrics is the per-run observability hub: the named-series registry, the
// trace ring buffer, and the per-superstep profiles. Create one with New,
// attach it via engine.Config.Metrics / provenance.StoreConfig.Metrics (or
// ariadne.WithMetrics at the public API), and serve it with Handler.
type Metrics struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	pmu      sync.Mutex
	profiles []SuperstepProfile
	cur      SuperstepProfile
	curOpen  bool
	// Last-seen ariadne_net_* counter values, for per-superstep deltas
	// attributed to the closing profile. Guarded by pmu.
	netPrevSent    int64
	netPrevRecv    int64
	netPrevRetrans int64

	trace atomic.Pointer[Trace]
	spans atomic.Pointer[spanSink]

	rmu  sync.Mutex
	rpcs []RPCStat

	start time.Time
}

// New creates an empty metrics registry (tracing disabled until
// EnableTrace).
func New() *Metrics {
	return &Metrics{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		start:    time.Now(),
	}
}

// EnableTrace turns on the structured trace ring buffer with the given
// capacity (events beyond it evict the oldest). Nil-safe; capacity <= 0
// leaves tracing off.
func (m *Metrics) EnableTrace(capacity int) {
	if m == nil || capacity <= 0 {
		return
	}
	m.trace.Store(newTrace(capacity))
}

// L builds a labeled series name in Prometheus notation, e.g.
// L("capture_tuples_total", "table", "value") →
// `capture_tuples_total{table="value"}`.
func L(name, label, val string) string {
	var b strings.Builder
	b.Grow(len(name) + len(label) + len(val) + 5)
	b.WriteString(name)
	b.WriteByte('{')
	b.WriteString(label)
	b.WriteString(`="`)
	b.WriteString(val)
	b.WriteString(`"}`)
	return b.String()
}

// Counter returns the named counter, creating it on first use. Nil-safe
// (returns a nil *Counter whose methods no-op).
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	c := m.counters[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.counters[name]; c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	g := m.gauges[name]
	m.mu.RUnlock()
	if g != nil {
		return g
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if g = m.gauges[name]; g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Nil-safe.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	h := m.hists[name]
	m.mu.RUnlock()
	if h != nil {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h = m.hists[name]; h == nil {
		h = &Histogram{}
		m.hists[name] = h
	}
	return h
}

// Snapshot returns every scalar series as a name→value map (histograms
// contribute _count and _sum_seconds entries) — the /debug/vars payload.
func (m *Metrics) Snapshot() map[string]any {
	if m == nil {
		return nil
	}
	out := map[string]any{}
	m.mu.RLock()
	for name, c := range m.counters {
		out[name] = c.Value()
	}
	for name, g := range m.gauges {
		out[name] = g.Value()
	}
	for name, h := range m.hists {
		out[name+"_count"] = h.Count()
		out[name+"_sum_seconds"] = float64(h.SumNS()) / 1e9
	}
	m.mu.RUnlock()
	out["uptime_seconds"] = time.Since(m.start).Seconds()
	return out
}

// reset drops every registered series (RestoreProfiles rebuilds the
// counters a restored run would have accumulated).
func (m *Metrics) reset() {
	m.mu.Lock()
	m.counters = map[string]*Counter{}
	m.gauges = map[string]*Gauge{}
	m.hists = map[string]*Histogram{}
	m.mu.Unlock()
}

// seriesKey splits a registry key into metric name and the optional
// label block, so rendering can group typed families.
func seriesKey(key string) (name, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i], key[i:]
	}
	return key, ""
}

// sortedKeys returns map keys in deterministic order.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
