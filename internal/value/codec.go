package value

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary codec for Values, used by the provenance store's disk spill format
// (the stand-in for the paper's HDFS offload, §6.1). The encoding is:
//
//	kind:1 | payload
//
// where payload is empty (Null), 1 byte (Bool), 8 bytes little-endian (Int,
// Float), uvarint length + bytes (String), or uvarint count + 8*count bytes
// (Vector).

// AppendBinary appends the binary encoding of v to buf and returns it.
func (v Value) AppendBinary(buf []byte) []byte {
	buf = append(buf, byte(v.kind))
	switch v.kind {
	case Null:
	case Bool:
		buf = append(buf, byte(v.num))
	case Int, Float:
		buf = binary.LittleEndian.AppendUint64(buf, v.num)
	case String:
		buf = binary.AppendUvarint(buf, uint64(len(v.str)))
		buf = append(buf, v.str...)
	case Vector:
		buf = binary.AppendUvarint(buf, uint64(len(v.vec)))
		for _, f := range v.vec {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
	}
	return buf
}

// DecodeValue decodes one Value from buf, returning the value and the number
// of bytes consumed.
func DecodeValue(buf []byte) (Value, int, error) {
	if len(buf) == 0 {
		return NullValue, 0, io.ErrUnexpectedEOF
	}
	k := Kind(buf[0])
	rest := buf[1:]
	switch k {
	case Null:
		return NullValue, 1, nil
	case Bool:
		if len(rest) < 1 {
			return NullValue, 0, io.ErrUnexpectedEOF
		}
		return NewBool(rest[0] == 1), 2, nil
	case Int, Float:
		if len(rest) < 8 {
			return NullValue, 0, io.ErrUnexpectedEOF
		}
		return Value{kind: k, num: binary.LittleEndian.Uint64(rest)}, 9, nil
	case String:
		n, sz := binary.Uvarint(rest)
		if sz <= 0 || uint64(len(rest)-sz) < n {
			return NullValue, 0, io.ErrUnexpectedEOF
		}
		s := string(rest[sz : sz+int(n)])
		return NewString(s), 1 + sz + int(n), nil
	case Vector:
		n, sz := binary.Uvarint(rest)
		// Divide rather than multiply: 8*n overflows for corrupt lengths and
		// would slip past the bounds check into a huge allocation.
		if sz <= 0 || n > uint64(len(rest)-sz)/8 {
			return NullValue, 0, io.ErrUnexpectedEOF
		}
		vec := make([]float64, n)
		off := sz
		for i := range vec {
			vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[off:]))
			off += 8
		}
		return NewVector(vec), 1 + off, nil
	default:
		return NullValue, 0, fmt.Errorf("value: corrupt encoding: kind byte %d", buf[0])
	}
}
