// Package value defines the tagged datum type shared by the vertex-centric
// engine, the provenance store, and the PQL evaluator.
//
// Ariadne's provenance representation is independent of the native language
// of the graph analytic (paper §1): vertex values, edge values, and messages
// are all modeled as Values, so provenance tables and Datalog tuples use a
// single runtime representation.
package value

import (
	"fmt"
	"hash/maphash"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// The supported kinds. Null sorts before everything else; Vector values
// (used by ALS feature vectors) compare lexicographically.
const (
	Null Kind = iota
	Bool
	Int
	Float
	String
	Vector
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case Bool:
		return "bool"
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	case Vector:
		return "vector"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a compact tagged union. The zero Value is Null.
type Value struct {
	kind Kind
	// num holds the integer value, the float bits, or the bool (0/1).
	num uint64
	str string
	vec []float64
}

// NullValue is the canonical null.
var NullValue = Value{}

// NewBool returns a boolean Value.
func NewBool(b bool) Value {
	var n uint64
	if b {
		n = 1
	}
	return Value{kind: Bool, num: n}
}

// NewInt returns an integer Value.
func NewInt(i int64) Value { return Value{kind: Int, num: uint64(i)} }

// NewFloat returns a floating-point Value.
func NewFloat(f float64) Value { return Value{kind: Float, num: math.Float64bits(f)} }

// NewString returns a string Value.
func NewString(s string) Value { return Value{kind: String, str: s} }

// NewVector returns a vector Value. The slice is retained, not copied.
func NewVector(v []float64) Value { return Value{kind: Vector, vec: v} }

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == Null }

// Bool returns the boolean payload; false for non-bool Values.
func (v Value) Bool() bool { return v.kind == Bool && v.num == 1 }

// Int returns the integer payload; 0 for non-int Values.
func (v Value) Int() int64 {
	if v.kind != Int {
		return 0
	}
	return int64(v.num)
}

// Float returns the numeric payload as float64, converting ints.
// It returns NaN for non-numeric Values.
func (v Value) Float() float64 {
	switch v.kind {
	case Float:
		return math.Float64frombits(v.num)
	case Int:
		return float64(int64(v.num))
	default:
		return math.NaN()
	}
}

// Str returns the string payload; "" for non-string Values.
func (v Value) Str() string {
	if v.kind != String {
		return ""
	}
	return v.str
}

// Vec returns the vector payload; nil for non-vector Values.
func (v Value) Vec() []float64 {
	if v.kind != Vector {
		return nil
	}
	return v.vec
}

// IsNumeric reports whether v is an Int or Float.
func (v Value) IsNumeric() bool { return v.kind == Int || v.kind == Float }

// String renders v for display and text encodings.
func (v Value) String() string {
	switch v.kind {
	case Null:
		return "null"
	case Bool:
		if v.num == 1 {
			return "true"
		}
		return "false"
	case Int:
		return strconv.FormatInt(int64(v.num), 10)
	case Float:
		return strconv.FormatFloat(math.Float64frombits(v.num), 'g', -1, 64)
	case String:
		return v.str
	case Vector:
		var b strings.Builder
		b.WriteByte('[')
		for i, f := range v.vec {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
		}
		b.WriteByte(']')
		return b.String()
	default:
		return "?"
	}
}

// Equal reports deep equality. Int and Float compare numerically, so
// NewInt(3).Equal(NewFloat(3)) is true, matching PQL's "=" semantics.
func (v Value) Equal(w Value) bool {
	if v.kind == w.kind {
		switch v.kind {
		case Null:
			return true
		case String:
			return v.str == w.str
		case Vector:
			if len(v.vec) != len(w.vec) {
				return false
			}
			for i := range v.vec {
				if v.vec[i] != w.vec[i] {
					return false
				}
			}
			return true
		default:
			return v.num == w.num
		}
	}
	if v.IsNumeric() && w.IsNumeric() {
		return v.Float() == w.Float()
	}
	return false
}

// Compare orders Values: by kind class first (null < bool < numeric <
// string < vector), then by payload. Numeric kinds compare as float64.
// It returns -1, 0, or +1.
func (v Value) Compare(w Value) int {
	vc, wc := v.class(), w.class()
	if vc != wc {
		if vc < wc {
			return -1
		}
		return 1
	}
	switch vc {
	case classNull:
		return 0
	case classBool:
		return cmpUint(v.num, w.num)
	case classNum:
		a, b := v.Float(), w.Float()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	case classString:
		return strings.Compare(v.str, w.str)
	default: // classVector
		n := min(len(v.vec), len(w.vec))
		for i := 0; i < n; i++ {
			if v.vec[i] < w.vec[i] {
				return -1
			}
			if v.vec[i] > w.vec[i] {
				return 1
			}
		}
		return cmpInt(len(v.vec), len(w.vec))
	}
}

type class uint8

const (
	classNull class = iota
	classBool
	classNum
	classString
	classVector
)

func (v Value) class() class {
	switch v.kind {
	case Null:
		return classNull
	case Bool:
		return classBool
	case Int, Float:
		return classNum
	case String:
		return classString
	default:
		return classVector
	}
}

func cmpUint(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

var hashSeed = maphash.MakeSeed()

// Hash returns a hash of v consistent with Equal: numerically equal Int and
// Float values hash identically.
func (v Value) Hash() uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	switch v.kind {
	case Null:
		h.WriteByte(0)
	case Bool:
		h.WriteByte(1)
		h.WriteByte(byte(v.num))
	case Int, Float:
		h.WriteByte(2)
		// Hash by float bits of the numeric value so 3 and 3.0 collide.
		f := v.Float()
		if f == 0 {
			f = 0 // normalize -0
		}
		writeUint64(&h, math.Float64bits(f))
	case String:
		h.WriteByte(3)
		h.WriteString(v.str)
	case Vector:
		h.WriteByte(4)
		for _, f := range v.vec {
			writeUint64(&h, math.Float64bits(f))
		}
	}
	return h.Sum64()
}

func writeUint64(h *maphash.Hash, u uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
}

// EncodedSize returns the exact length of AppendBinary's encoding of v,
// used for serialized-size accounting without encoding.
func (v Value) EncodedSize() int {
	switch v.kind {
	case Null:
		return 1
	case Bool:
		return 2
	case Int, Float:
		return 9
	case String:
		return 1 + uvarintLen(uint64(len(v.str))) + len(v.str)
	case Vector:
		return 1 + uvarintLen(uint64(len(v.vec))) + 8*len(v.vec)
	default:
		return 1
	}
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// MemSize returns the approximate in-memory footprint of v in bytes,
// used by the provenance store's size accounting.
func (v Value) MemSize() int {
	const base = 8 + 8 + 16 + 24 // kind+pad, num, string header, slice header
	switch v.kind {
	case String:
		return base + len(v.str)
	case Vector:
		return base + 8*len(v.vec)
	default:
		return base
	}
}
