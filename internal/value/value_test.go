package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{NullValue, Null, "null"},
		{NewBool(true), Bool, "true"},
		{NewBool(false), Bool, "false"},
		{NewInt(-42), Int, "-42"},
		{NewFloat(1.5), Float, "1.5"},
		{NewString("hi"), String, "hi"},
		{NewVector([]float64{1, 2.5}), Vector, "[1,2.5]"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
}

func TestAccessorsOnWrongKind(t *testing.T) {
	s := NewString("x")
	if s.Int() != 0 || s.Bool() || s.Vec() != nil {
		t.Errorf("wrong-kind accessors should return zero values")
	}
	if !math.IsNaN(s.Float()) {
		t.Errorf("Float() on string should be NaN, got %v", s.Float())
	}
	if NewInt(7).Str() != "" {
		t.Errorf("Str() on int should be empty")
	}
}

func TestNumericEquality(t *testing.T) {
	if !NewInt(3).Equal(NewFloat(3)) {
		t.Error("3 (int) should equal 3.0 (float)")
	}
	if NewInt(3).Equal(NewFloat(3.5)) {
		t.Error("3 should not equal 3.5")
	}
	if NewInt(3).Hash() != NewFloat(3).Hash() {
		t.Error("numerically equal values must hash equally")
	}
	if NewString("3").Equal(NewInt(3)) {
		t.Error("string should not equal int")
	}
}

func TestCompareOrdering(t *testing.T) {
	ordered := []Value{
		NullValue,
		NewBool(false),
		NewBool(true),
		NewInt(-1),
		NewFloat(0.5),
		NewInt(2),
		NewString("a"),
		NewString("b"),
		NewVector([]float64{1}),
		NewVector([]float64{1, 0}),
		NewVector([]float64{2}),
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestVectorEquality(t *testing.T) {
	a := NewVector([]float64{1, 2})
	b := NewVector([]float64{1, 2})
	c := NewVector([]float64{1, 3})
	d := NewVector([]float64{1})
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Error("vector equality wrong")
	}
}

func TestArithmetic(t *testing.T) {
	mustAdd := func(a, b Value) Value {
		t.Helper()
		v, err := Add(a, b)
		if err != nil {
			t.Fatalf("Add(%v,%v): %v", a, b, err)
		}
		return v
	}
	if got := mustAdd(NewInt(2), NewInt(3)); got.Kind() != Int || got.Int() != 5 {
		t.Errorf("2+3 = %v", got)
	}
	if got := mustAdd(NewInt(2), NewFloat(0.5)); got.Kind() != Float || got.Float() != 2.5 {
		t.Errorf("2+0.5 = %v", got)
	}
	if got := mustAdd(NewString("a"), NewString("b")); got.Str() != "ab" {
		t.Errorf("string add = %v", got)
	}
	if v, err := Div(NewInt(7), NewInt(2)); err != nil || v.Float() != 3.5 {
		t.Errorf("7/2 = %v, %v (division always float)", v, err)
	}
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Error("int division by zero should error")
	}
	if v, err := Mod(NewInt(7), NewInt(3)); err != nil || v.Int() != 1 {
		t.Errorf("7%%3 = %v, %v", v, err)
	}
	if _, err := Add(NewInt(1), NewString("x")); err == nil {
		t.Error("int+string should error")
	}
	if v, err := Neg(NewInt(4)); err != nil || v.Int() != -4 {
		t.Errorf("neg = %v, %v", v, err)
	}
	if v, err := Add(NewVector([]float64{1, 2}), NewVector([]float64{3, 4})); err != nil || v.String() != "[4,6]" {
		t.Errorf("vector add = %v, %v", v, err)
	}
	if _, err := Add(NewVector([]float64{1}), NewVector([]float64{1, 2})); err == nil {
		t.Error("mismatched vector add should error")
	}
	if v, err := Mul(NewVector([]float64{1, 2}), NewFloat(2)); err != nil || v.String() != "[2,4]" {
		t.Errorf("vector scale = %v, %v", v, err)
	}
}

func TestAbsDiffAndEuclidean(t *testing.T) {
	d, err := AbsDiff(NewFloat(1.5), NewInt(3))
	if err != nil || d != 1.5 {
		t.Errorf("AbsDiff = %v, %v", d, err)
	}
	if _, err := AbsDiff(NewString("a"), NewInt(1)); err == nil {
		t.Error("AbsDiff on string should error")
	}
	e, err := EuclideanDist(NewVector([]float64{0, 0}), NewVector([]float64{3, 4}))
	if err != nil || e != 5 {
		t.Errorf("EuclideanDist = %v, %v", e, err)
	}
	if _, err := EuclideanDist(NewVector([]float64{1}), NewInt(2)); err == nil {
		t.Error("EuclideanDist on non-vector should error")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	vals := []Value{
		NullValue,
		NewBool(true),
		NewBool(false),
		NewInt(0),
		NewInt(-1 << 62),
		NewFloat(math.Pi),
		NewFloat(math.Inf(-1)),
		NewString(""),
		NewString("hello world"),
		NewVector(nil),
		NewVector([]float64{1, -2, 3.25}),
	}
	var buf []byte
	for _, v := range vals {
		buf = v.AppendBinary(buf)
	}
	off := 0
	for _, want := range vals {
		got, n, err := DecodeValue(buf[off:])
		if err != nil {
			t.Fatalf("decode %v: %v", want, err)
		}
		// NewVector(nil) round-trips to an empty vector; compare via Equal.
		if !got.Equal(want) || got.Kind() != want.Kind() {
			t.Errorf("round trip: got %v (%v), want %v (%v)", got, got.Kind(), want, want.Kind())
		}
		off += n
	}
	if off != len(buf) {
		t.Errorf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestCodecErrors(t *testing.T) {
	if _, _, err := DecodeValue(nil); err == nil {
		t.Error("empty buffer should error")
	}
	if _, _, err := DecodeValue([]byte{byte(Int), 1, 2}); err == nil {
		t.Error("truncated int should error")
	}
	if _, _, err := DecodeValue([]byte{99}); err == nil {
		t.Error("bad kind byte should error")
	}
}

func TestCodecQuick(t *testing.T) {
	f := func(i int64, fl float64, s string, vec []float64) bool {
		for _, v := range []Value{NewInt(i), NewFloat(fl), NewString(s), NewVector(vec)} {
			buf := v.AppendBinary(nil)
			got, n, err := DecodeValue(buf)
			if err != nil || n != len(buf) {
				return false
			}
			// NaN != NaN under Equal via float compare; handle separately.
			if v.Kind() == Float && math.IsNaN(fl) {
				if got.Kind() != Float || !math.IsNaN(got.Float()) {
					return false
				}
				continue
			}
			if v.Kind() == Vector {
				for _, x := range vec {
					if math.IsNaN(x) {
						return true // skip NaN vectors
					}
				}
			}
			if !got.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		if va.Equal(vb) && va.Hash() != vb.Hash() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if NewFloat(0).Hash() != NewFloat(math.Copysign(0, -1)).Hash() {
		t.Error("+0 and -0 must hash equally")
	}
}

func TestMemSize(t *testing.T) {
	if NewString("abcd").MemSize() <= NewString("").MemSize() {
		t.Error("longer string should report larger size")
	}
	if NewVector(make([]float64, 10)).MemSize() <= NewVector(nil).MemSize() {
		t.Error("longer vector should report larger size")
	}
}
