package value

import (
	"fmt"
	"math"
)

// Arithmetic over Values implements PQL's term expressions (paper §4.2:
// "monotonic arithmetic (+, *, ...) and boolean functions").
//
// Rules: Int op Int yields Int (except Div, which yields Float); any Float
// operand promotes the result to Float; Add on strings concatenates;
// element-wise ops apply to Vectors of equal length. Mismatches error.

// Add returns v + w.
func Add(v, w Value) (Value, error) { return binop("add", v, w) }

// Sub returns v - w.
func Sub(v, w Value) (Value, error) { return binop("sub", v, w) }

// Mul returns v * w.
func Mul(v, w Value) (Value, error) { return binop("mul", v, w) }

// Div returns v / w. Division by zero on floats follows IEEE-754; on ints it
// is an error.
func Div(v, w Value) (Value, error) { return binop("div", v, w) }

// Mod returns v % w for integers.
func Mod(v, w Value) (Value, error) {
	if v.kind == Int && w.kind == Int {
		if w.Int() == 0 {
			return NullValue, fmt.Errorf("value: integer modulo by zero")
		}
		return NewInt(v.Int() % w.Int()), nil
	}
	return NullValue, typeErr("mod", v, w)
}

// Neg returns -v for numeric and vector values.
func Neg(v Value) (Value, error) {
	switch v.kind {
	case Int:
		return NewInt(-v.Int()), nil
	case Float:
		return NewFloat(-v.Float()), nil
	case Vector:
		out := make([]float64, len(v.vec))
		for i, f := range v.vec {
			out[i] = -f
		}
		return NewVector(out), nil
	default:
		return NullValue, fmt.Errorf("value: cannot negate %s", v.kind)
	}
}

func binop(op string, v, w Value) (Value, error) {
	// String concatenation.
	if op == "add" && v.kind == String && w.kind == String {
		return NewString(v.str + w.str), nil
	}
	// Vector element-wise.
	if v.kind == Vector && w.kind == Vector {
		if len(v.vec) != len(w.vec) {
			return NullValue, fmt.Errorf("value: vector length mismatch %d vs %d", len(v.vec), len(w.vec))
		}
		out := make([]float64, len(v.vec))
		for i := range v.vec {
			out[i] = applyFloat(op, v.vec[i], w.vec[i])
		}
		return NewVector(out), nil
	}
	// Vector scaled by scalar.
	if v.kind == Vector && w.IsNumeric() && (op == "mul" || op == "div") {
		s := w.Float()
		out := make([]float64, len(v.vec))
		for i := range v.vec {
			out[i] = applyFloat(op, v.vec[i], s)
		}
		return NewVector(out), nil
	}
	if !v.IsNumeric() || !w.IsNumeric() {
		return NullValue, typeErr(op, v, w)
	}
	if v.kind == Int && w.kind == Int && op != "div" {
		a, b := v.Int(), w.Int()
		switch op {
		case "add":
			return NewInt(a + b), nil
		case "sub":
			return NewInt(a - b), nil
		case "mul":
			return NewInt(a * b), nil
		}
	}
	if op == "div" && v.kind == Int && w.kind == Int && w.Int() == 0 {
		return NullValue, fmt.Errorf("value: integer division by zero")
	}
	return NewFloat(applyFloat(op, v.Float(), w.Float())), nil
}

func applyFloat(op string, a, b float64) float64 {
	switch op {
	case "add":
		return a + b
	case "sub":
		return a - b
	case "mul":
		return a * b
	case "div":
		return a / b
	default:
		return math.NaN()
	}
}

func typeErr(op string, v, w Value) error {
	return fmt.Errorf("value: cannot %s %s and %s", op, v.kind, w.kind)
}

// AbsDiff returns |v - w| for numeric values, the paper's default udf-diff
// comparison for PageRank, SSSP, and WCC (§6.2.2).
func AbsDiff(v, w Value) (float64, error) {
	if !v.IsNumeric() || !w.IsNumeric() {
		return 0, fmt.Errorf("value: absdiff needs numerics, got %s, %s", v.Kind(), w.Kind())
	}
	return math.Abs(v.Float() - w.Float()), nil
}

// EuclideanDist returns the L2 distance between two vectors, the paper's
// udf-diff for ALS (§6.2.2).
func EuclideanDist(v, w Value) (float64, error) {
	a, b := v.Vec(), w.Vec()
	if a == nil || b == nil || len(a) != len(b) {
		return 0, fmt.Errorf("value: euclidean distance needs equal-length vectors")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s), nil
}
