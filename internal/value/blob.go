package value

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Blob is a small append-only binary encoder shared by the checkpoint and
// observer-state formats. It composes the Value codec with length-prefixed
// primitives so every consumer serializes state the same way.
type Blob struct {
	b []byte
}

// NewBlob creates an empty blob encoder.
func NewBlob() *Blob { return &Blob{} }

// Bytes returns the encoded bytes.
func (w *Blob) Bytes() []byte { return w.b }

// Uvarint appends an unsigned varint.
func (w *Blob) Uvarint(u uint64) { w.b = binary.AppendUvarint(w.b, u) }

// Int appends a signed integer (zig-zag varint).
func (w *Blob) Int(i int64) { w.b = binary.AppendVarint(w.b, i) }

// Bool appends a boolean byte.
func (w *Blob) Bool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}

// Float appends a float64 bit pattern (exact roundtrip).
func (w *Blob) Float(f float64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, math.Float64bits(f))
}

// Bytes8 appends length-prefixed raw bytes.
func (w *Blob) Bytes8(p []byte) {
	w.Uvarint(uint64(len(p)))
	w.b = append(w.b, p...)
}

// String appends a length-prefixed string.
func (w *Blob) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}

// Value appends a Value in the binary codec.
func (w *Blob) Value(v Value) { w.b = v.AppendBinary(w.b) }

// maxBlobAlloc caps single allocations driven by decoded lengths so a
// corrupt or truncated blob produces an error instead of an OOM panic.
const maxBlobAlloc = 1 << 26 // 64 MiB

// BlobReader decodes a Blob with a sticky error: after the first decode
// failure every subsequent read returns a zero value, so callers can decode
// a whole structure and check Err once. It never panics on corrupt input.
type BlobReader struct {
	b   []byte
	off int
	err error
}

// NewBlobReader creates a reader over data.
func NewBlobReader(data []byte) *BlobReader { return &BlobReader{b: data} }

// Err returns the first decode error, if any.
func (r *BlobReader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *BlobReader) Len() int { return len(r.b) - r.off }

func (r *BlobReader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uvarint reads an unsigned varint.
func (r *BlobReader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	u, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail(fmt.Errorf("value: blob truncated at offset %d: %w", r.off, io.ErrUnexpectedEOF))
		return 0
	}
	r.off += n
	return u
}

// Count reads an unsigned varint meant to size an allocation, rejecting
// values a sane blob cannot contain.
func (r *BlobReader) Count() int {
	u := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if u > maxBlobAlloc {
		r.fail(fmt.Errorf("value: blob count %d exceeds sanity cap", u))
		return 0
	}
	return int(u)
}

// Int reads a signed (zig-zag) varint.
func (r *BlobReader) Int() int64 {
	if r.err != nil {
		return 0
	}
	i, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail(fmt.Errorf("value: blob truncated at offset %d: %w", r.off, io.ErrUnexpectedEOF))
		return 0
	}
	r.off += n
	return i
}

// Bool reads a boolean byte.
func (r *BlobReader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.b) {
		r.fail(io.ErrUnexpectedEOF)
		return false
	}
	v := r.b[r.off] == 1
	r.off++
	return v
}

// Float reads a float64 bit pattern.
func (r *BlobReader) Float() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail(io.ErrUnexpectedEOF)
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return f
}

// Bytes8 reads length-prefixed raw bytes (copied).
func (r *BlobReader) Bytes8() []byte {
	n := r.Count()
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.fail(io.ErrUnexpectedEOF)
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:])
	r.off += n
	return out
}

// String reads a length-prefixed string.
func (r *BlobReader) String() string {
	n := r.Count()
	if r.err != nil {
		return ""
	}
	if r.off+n > len(r.b) {
		r.fail(io.ErrUnexpectedEOF)
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// Value reads a Value in the binary codec.
func (r *BlobReader) Value() Value {
	if r.err != nil {
		return NullValue
	}
	v, n, err := DecodeValue(r.b[r.off:])
	if err != nil {
		r.fail(err)
		return NullValue
	}
	r.off += n
	return v
}
