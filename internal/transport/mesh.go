// Worker-to-worker fragment routing (PR 9). After a resident-mode exec, the
// worker routes each outbox column straight to the worker that owns the
// destination partition — the master sees only aggregates, records, and
// counts. The receiving side parks columns in a fragStore keyed by
// (emit superstep, destination partition, source partition) until its
// delivery round folds them; the sending side keeps one persistent framed
// connection per peer, handshaked with the same fingerprint + capability
// exchange the master uses, and waits for a synchronous ack before the exec
// reply goes back to the master (so an acked column is durable at its
// destination before the master advances the barrier). A failed or dropped
// send is tolerated, not fatal: the column stays in the exec reply, the
// master forwards it inside the deliver round, and only if that also fails
// does the partition fall back to checkpoint + replay re-hydration.
package transport

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ariadne/internal/engine"
	"ariadne/internal/fault"
	"ariadne/internal/obs"
)

// fragKey addresses one parked outbox column.
type fragKey struct {
	ss, dp, sp int
}

// fragStore parks peer-routed (and self-routed) outbox columns between exec
// and the delivery round. Keep-first per key: a duplicate exec of the same
// superstep (lost reply, failover re-route) re-sends an identical column,
// and first-wins keeps the fold input stable.
type fragStore struct {
	mu    sync.Mutex
	frags map[fragKey][]engine.OutMessage
}

func (s *fragStore) put(ss, dp, sp int, msgs []engine.OutMessage) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frags == nil {
		s.frags = make(map[fragKey][]engine.OutMessage)
	}
	k := fragKey{ss: ss, dp: dp, sp: sp}
	if _, ok := s.frags[k]; ok {
		return
	}
	s.frags[k] = msgs
}

func (s *fragStore) get(ss, dp, sp int) []engine.OutMessage {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frags[fragKey{ss: ss, dp: dp, sp: sp}]
}

// prune drops columns from supersteps before ss — consumed (or abandoned)
// at least one delivery round ago.
func (s *fragStore) prune(ss int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.frags {
		if k.ss < ss {
			delete(s.frags, k)
		}
	}
}

// meshDeadline bounds one frag send + ack exchange. Generous relative to
// the master's message deadline: a slow ack just delays one exec reply, and
// a genuinely dead peer fails the dial long before this.
const meshDeadline = 5 * time.Second

// mesh is a worker's client side of the peer fabric: one lazily-dialed
// connection per peer address, shared by all exec handlers.
type mesh struct {
	w   *Worker
	seq atomic.Uint64

	mu    sync.Mutex
	peers map[string]*meshPeer
}

func newMesh(w *Worker) *mesh {
	return &mesh{w: w, peers: map[string]*meshPeer{}}
}

func (m *mesh) peer(addr string) *meshPeer {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[addr]
	if !ok {
		p = &meshPeer{m: m, addr: addr, pending: map[uint64]chan struct{}{}}
		m.peers[addr] = p
	}
	return p
}

// close tears down every peer connection (worker shutdown).
func (m *mesh) close() {
	m.mu.Lock()
	peers := make([]*meshPeer, 0, len(m.peers))
	for _, p := range m.peers {
		peers = append(peers, p)
	}
	m.mu.Unlock()
	for _, p := range peers {
		p.teardownAny()
	}
}

// sendFrag ships one outbox column to the peer worker at addr and waits for
// its ack, consulting the peer.send fault site first. Returns the wire
// bytes written. An error means the column was not (provably) stored — the
// caller keeps it in the exec reply so the master's deliver round can
// forward it.
func (m *mesh) sendFrag(ctx context.Context, addr string, f *peerFrag) (int64, error) {
	seq := m.seq.Add(1)
	inj := m.w.x.Fault()
	act, ferr := inj.NetHit(ctx, fault.SitePeerSend, f.ss, f.dp, int64(seq))
	if ferr != nil {
		return 0, ferr
	}
	p := m.peer(addr)
	switch act {
	case fault.NetDrop:
		return 0, fmt.Errorf("transport: peer frag to %s dropped by injected fault", addr)
	case fault.NetReset:
		p.teardownAny()
		return 0, fmt.Errorf("transport: peer connection to %s reset by injected fault", addr)
	}
	payload := encodePeerFrag(f)
	var n int64
	send := func() error {
		k, err := p.send(framePeerFrag, seq, payload)
		n += int64(k)
		return err
	}
	ch := p.register(seq)
	defer p.unregister(seq)
	if act == fault.NetDup {
		if err := send(); err != nil {
			return n, err
		}
	}
	if err := send(); err != nil {
		return n, err
	}
	mtr := m.w.m
	mtr.Counter(obs.MetricNetPeerFrags).Add(1)
	mtr.Counter(obs.MetricNetPeerBytes).Add(n)
	timer := time.NewTimer(meshDeadline)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return n, fmt.Errorf("transport: peer frag to %s canceled: %w", addr, ctx.Err())
	case <-timer.C:
		return n, fmt.Errorf("transport: no frag ack from %s within %v", addr, meshDeadline)
	case _, ok := <-ch:
		if !ok {
			return n, fmt.Errorf("transport: peer connection to %s lost awaiting frag ack", addr)
		}
		return n, nil
	}
}

// meshPeer is one worker->worker connection: dial + fingerprint handshake
// on first use, a write mutex for frame interleaving, and an ack demux.
type meshPeer struct {
	m    *mesh
	addr string

	mu      sync.Mutex
	conn    net.Conn
	wr      *bufio.Writer
	gen     int
	snappy  bool
	pending map[uint64]chan struct{}
}

// ensure dials and handshakes if the peer is not connected.
func (p *meshPeer) ensure() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		return nil
	}
	w := p.m.w
	conn, err := net.DialTimeout("tcp", p.addr, meshDeadline)
	if err != nil {
		return fmt.Errorf("transport: mesh dial %s: %v", p.addr, err)
	}
	conn.SetDeadline(time.Now().Add(meshDeadline))
	fp := Fingerprint{
		Partitions:  w.x.Partitions(),
		NumVertices: w.x.Graph().NumVertices(),
		NumEdges:    w.x.Graph().NumEdges(),
	}
	if _, err := writeFrame(conn, frameHello, 0, encodeHello(fp, w.caps)); err != nil {
		conn.Close()
		return fmt.Errorf("transport: mesh handshake send to %s: %v", p.addr, err)
	}
	typ, _, payload, _, err := readFrame(bufio.NewReader(conn))
	if err != nil || typ != frameWelcome {
		conn.Close()
		return fmt.Errorf("transport: mesh handshake with %s failed (frame %d): %v", p.addr, typ, err)
	}
	peerFP, peerCaps, err := decodeHello(payload)
	if err != nil || peerFP != fp {
		conn.Close()
		return fmt.Errorf("transport: mesh fingerprint mismatch with %s: %v", p.addr, err)
	}
	conn.SetDeadline(time.Time{})
	p.gen++
	p.conn = conn
	p.wr = bufio.NewWriter(conn)
	p.snappy = w.caps&peerCaps&capSnappy != 0
	go p.readLoop(conn, p.gen)
	return nil
}

func (p *meshPeer) send(typ byte, seq uint64, payload []byte) (int, error) {
	if err := p.ensure(); err != nil {
		return 0, err
	}
	p.mu.Lock()
	conn, gen, wr := p.conn, p.gen, p.wr
	if conn == nil {
		p.mu.Unlock()
		return 0, fmt.Errorf("transport: mesh connection to %s lost", p.addr)
	}
	wtyp, wpay, scratch := frameForSend(typ, payload, p.snappy, p.m.w.m)
	n, err := writeFrame(wr, wtyp, seq, wpay)
	if err == nil {
		err = wr.Flush()
	}
	if scratch != nil {
		putFrameBuf(scratch)
	}
	p.mu.Unlock()
	if err != nil {
		p.teardown(conn, gen)
		return n, fmt.Errorf("transport: mesh send to %s: %v", p.addr, err)
	}
	m := p.m.w.m
	m.Counter(obs.MetricNetMessagesSent).Add(1)
	m.Counter(obs.MetricNetBytesSent).Add(int64(n))
	return n, nil
}

func (p *meshPeer) register(seq uint64) chan struct{} {
	ch := make(chan struct{}, 2)
	p.mu.Lock()
	p.pending[seq] = ch
	p.mu.Unlock()
	return ch
}

func (p *meshPeer) unregister(seq uint64) {
	p.mu.Lock()
	delete(p.pending, seq)
	p.mu.Unlock()
}

func (p *meshPeer) readLoop(conn net.Conn, gen int) {
	r := bufio.NewReader(conn)
	for {
		typ, seq, payload, n, err := readFrame(r)
		if err != nil {
			p.teardown(conn, gen)
			return
		}
		m := p.m.w.m
		m.Counter(obs.MetricNetMessagesRecv).Add(1)
		m.Counter(obs.MetricNetBytesRecv).Add(int64(n))
		switch typ {
		case framePeerAck:
			p.mu.Lock()
			ch := p.pending[seq]
			p.mu.Unlock()
			if ch != nil {
				select {
				case ch <- struct{}{}:
				default:
				}
			}
		case frameError:
			m.Tracef(obs.Error, "transport", -1, "mesh peer %s reported: %s", p.addr, payload)
		}
	}
}

func (p *meshPeer) teardown(conn net.Conn, gen int) {
	p.mu.Lock()
	if p.gen != gen || p.conn != conn {
		p.mu.Unlock()
		conn.Close()
		return
	}
	p.conn = nil
	p.wr = nil
	for seq, ch := range p.pending {
		close(ch)
		delete(p.pending, seq)
	}
	p.mu.Unlock()
	conn.Close()
}

func (p *meshPeer) teardownAny() {
	p.mu.Lock()
	conn, gen := p.conn, p.gen
	p.mu.Unlock()
	if conn != nil {
		p.teardown(conn, gen)
	}
}
