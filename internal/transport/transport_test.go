package transport

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"ariadne/internal/analytics"
	"ariadne/internal/engine"
	"ariadne/internal/fault"
	"ariadne/internal/gen"
	"ariadne/internal/graph"
	"ariadne/internal/obs"
	"ariadne/internal/supervise"
	"ariadne/internal/value"
)

const (
	testParts = 4
	testSteps = 11
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(7, 6, 42))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testProg() engine.Program { return &analytics.PageRank{Iterations: testSteps - 1} }

// recObserver fingerprints every observed record so legs can be compared
// for identical provenance streams without a capture store in the loop.
type recObserver struct{ sigs []string }

func (o *recObserver) NeedsRawMessages() bool { return true }
func (o *recObserver) Finish(int) error       { return nil }
func (o *recObserver) ObserveSuperstep(v *engine.SuperstepView) error {
	for i := range v.Records {
		r := &v.Records[i]
		sig := fmt.Sprintf("%d/%d/%d:%x:%x:", r.ID, r.Superstep, r.PrevActive,
			r.OldValue.AppendBinary(nil), r.NewValue.AppendBinary(nil))
		for _, m := range r.Received {
			sig += fmt.Sprintf("r%d:%x,", m.Src, m.Val.AppendBinary(nil))
		}
		for _, m := range r.Sent {
			sig += fmt.Sprintf("s%d:%x,", m.Dst, m.Val.AppendBinary(nil))
		}
		o.sigs = append(o.sigs, sig)
	}
	return nil
}

// startWorkers launches n in-process TCP workers over their own executors
// (same graph, same program — separate state, as separate processes would
// have) and returns their addresses.
func startWorkers(t *testing.T, g *graph.Graph, n int, wcfg func(i int) engine.Config) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		cfg := engine.Config{Partitions: testParts, Combiner: analytics.SumCombiner}
		if wcfg != nil {
			cfg = wcfg(i)
		}
		x, err := engine.NewExecutor(g, testProg(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWorker(x, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve()
		t.Cleanup(func() { w.Close() })
		addrs[i] = w.Addr()
	}
	return addrs
}

func runLeg(t *testing.T, g *graph.Graph, cfg engine.Config) (*engine.Engine, engine.RunStats, *recObserver, error) {
	t.Helper()
	o := &recObserver{}
	cfg.MaxSupersteps = testSteps
	cfg.Partitions = testParts
	cfg.Combiner = analytics.SumCombiner
	cfg.Observers = append(cfg.Observers, o)
	e, err := engine.New(g, testProg(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Run()
	return e, stats, o, err
}

func assertIdentical(t *testing.T, leg string, ref, got *engine.Engine, refStats, gotStats engine.RunStats, refObs, gotObs *recObserver) {
	t.Helper()
	if refStats.Supersteps != gotStats.Supersteps {
		t.Errorf("%s: supersteps %d != %d", leg, gotStats.Supersteps, refStats.Supersteps)
	}
	if refStats.MessagesSent != gotStats.MessagesSent ||
		refStats.MessagesDelivered != gotStats.MessagesDelivered ||
		refStats.MessagesCombinedSender != gotStats.MessagesCombinedSender {
		t.Errorf("%s: message accounting (%d/%d/%d) != (%d/%d/%d)", leg,
			gotStats.MessagesSent, gotStats.MessagesDelivered, gotStats.MessagesCombinedSender,
			refStats.MessagesSent, refStats.MessagesDelivered, refStats.MessagesCombinedSender)
	}
	rv, gv := ref.Values(), got.Values()
	for v := range rv {
		if !reflect.DeepEqual(rv[v].AppendBinary(nil), gv[v].AppendBinary(nil)) {
			t.Fatalf("%s: vertex %d value %v != %v (must be bit-identical)", leg, v, gv[v], rv[v])
		}
	}
	if !reflect.DeepEqual(refObs.sigs, gotObs.sigs) {
		t.Errorf("%s: observer record streams differ (%d vs %d records)", leg, len(gotObs.sigs), len(refObs.sigs))
	}
}

func TestWireExecRequestRoundTrip(t *testing.T) {
	req := &engine.ExecRequest{
		Superstep: 3, Partition: 1, Observing: true, Combine: true,
		Active:     []engine.VertexID{1, 5, 9},
		Values:     []value.Value{value.NewFloat(0.25), value.NewVector([]float64{1, -2.5}), value.NewString("x")},
		PrevActive: []int32{-1, 0, 2},
		Inbox: [][]engine.IncomingMessage{
			nil,
			{{Src: 2, Val: value.NewFloat(0.125)}, {Src: 3, Val: value.NewInt(-7)}},
			{{Src: 1, Val: value.NewBool(true)}},
		},
		Agg: map[string]float64{"err": 0.5, "mass": 1.0},
	}
	rt, err := decodeExecRequest(encodeExecRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, rt) {
		t.Fatalf("roundtrip mismatch:\n  in  %+v\n  out %+v", req, rt)
	}
}

func TestWireExecResultRoundTrip(t *testing.T) {
	res := &engine.ExecResult{
		Partition: 2,
		Computed:  []engine.VertexID{4, 8},
		NewValues: []value.Value{value.NewFloat(0.5), value.NullValue},
		Outbox: [][]engine.OutMessage{
			{{Src: 4, Dst: 0, Val: value.NewFloat(1.5)}},
			nil,
			{{Src: 8, Dst: 6, Val: value.NewInt(3)}, {Src: 4, Dst: 2, Val: value.NewString("m")}},
		},
		Records: []engine.VertexRecord{{
			ID: 4, Superstep: 3, PrevActive: -1,
			OldValue: value.NewFloat(1), NewValue: value.NewFloat(0.5),
			Received: []engine.IncomingMessage{{Src: 0, Val: value.NewFloat(2)}},
			Sent:     []engine.SentMessage{{Dst: 0, Val: value.NewFloat(1.5)}},
			Emitted:  []engine.ProvFact{{Table: "tp", Args: []value.Value{value.NewInt(4)}}},
		}},
		Sent: 3, CombinedSender: 1,
		Agg: []engine.AggUpdate{{Name: "mass", Op: engine.AggSum, Val: 2, N: 5}},
	}
	rt, err := decodeExecResult(encodeExecResult(res))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, rt) {
		t.Fatalf("roundtrip mismatch:\n  in  %+v\n  out %+v", res, rt)
	}

	crash := &engine.ExecResult{Partition: 1, Crash: &engine.RemoteCrash{
		Vertex: 9, Superstep: 2, Message: "boom", Panic: true, Injected: true,
	}}
	rt, err = decodeExecResult(encodeExecResult(crash))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(crash, rt) {
		t.Fatalf("crash roundtrip mismatch: %+v vs %+v", rt, crash)
	}
}

// TestTransportDifferential pins every transport leg against the in-process
// reference: same values bit for bit, same message accounting, same
// observer record stream — for the local executor leg, the codec-roundtrip
// leg, and TCP-loopback with 1 and 2 workers.
func TestTransportDifferential(t *testing.T) {
	g := testGraph(t)
	refE, refStats, refObs, err := runLeg(t, g, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}

	newExec := func() *engine.Executor {
		x, err := engine.NewExecutor(g, testProg(), engine.Config{Partitions: testParts, Combiner: analytics.SumCombiner})
		if err != nil {
			t.Fatal(err)
		}
		return x
	}
	legs := map[string]func() engine.Transport{
		"local":       func() engine.Transport { return NewLocal(newExec()) },
		"local-codec": func() engine.Transport { return NewLocalCodec(newExec()) },
		"tcp-1": func() engine.Transport {
			return dialWorkers(t, g, startWorkers(t, g, 1, nil))
		},
		"tcp-2": func() engine.Transport {
			return dialWorkers(t, g, startWorkers(t, g, 2, nil))
		},
	}
	for name, mk := range legs {
		t.Run(name, func(t *testing.T) {
			tr := mk()
			defer tr.Close()
			e, stats, o, err := runLeg(t, g, engine.Config{Transport: tr})
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, name, refE, e, refStats, stats, refObs, o)
		})
	}
}

func dialWorkers(t *testing.T, g *graph.Graph, addrs []string, opts ...func(*TCPConfig)) *TCP {
	t.Helper()
	cfg := TCPConfig{
		Addrs:       addrs,
		Fingerprint: Fingerprint{Partitions: testParts, NumVertices: g.NumVertices(), NumEdges: g.NumEdges()},
	}
	for _, o := range opts {
		o(&cfg)
	}
	tr, err := DialTCP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestRemoteCrashCulprit checks that a vertex-program failure on a worker
// comes back as the same CrashError a local run raises: culprit vertex,
// superstep, and an errors.Is-reachable ErrComputePanic cause.
func TestRemoteCrashCulprit(t *testing.T) {
	g := testGraph(t)
	addrs := startWorkers(t, g, 1, func(int) engine.Config {
		return engine.Config{
			Partitions: testParts,
			Combiner:   analytics.SumCombiner,
			Fault:      fault.NewInjector(fault.PanicAt(2, 6)),
		}
	})
	tr := dialWorkers(t, g, addrs)
	defer tr.Close()
	_, _, _, err := runLeg(t, g, engine.Config{Transport: tr})
	if err == nil {
		t.Fatal("want remote crash, got success")
	}
	var ce *engine.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want CrashError, got %v", err)
	}
	if ce.Vertex != 6 || ce.Superstep != 2 {
		t.Errorf("culprit = vertex %d superstep %d, want 6/2", ce.Vertex, ce.Superstep)
	}
	if !errors.Is(err, engine.ErrComputePanic) {
		t.Errorf("cause chain lost ErrComputePanic: %v", err)
	}
}

// TestNetFaultMatrix drives every canonical network fault scenario through
// a real TCP exchange: recoverable faults (drop, slow link, duplicate,
// reset, one-way partition) must finish bit-identically via retransmit or
// reconnect; the unreachable scenario must finish bit-identically via the
// engine's local fallback, with the partition's capture shed.
func TestNetFaultMatrix(t *testing.T) {
	g := testGraph(t)
	refE, refStats, refObs, err := runLeg(t, g, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const faultPart = 1
	for name, rules := range fault.NetMatrix(faultPart, 1, 2*time.Millisecond) {
		t.Run(name, func(t *testing.T) {
			m := obs.New()
			inj := fault.NewInjector(rules...)
			addrs := startWorkers(t, g, 2, nil)
			tr := dialWorkers(t, g, addrs, func(c *TCPConfig) {
				c.MessageDeadline = 100 * time.Millisecond
				c.MaxRetries = 2
				c.Backoff = time.Millisecond
				c.Fault = inj
				c.Metrics = m
			})
			defer tr.Close()
			deg := supervise.NewDegradeState(1)
			e, stats, o, err := runLeg(t, g, engine.Config{
				Transport: tr,
				Supervise: &supervise.Config{MaxRetries: 2, Backoff: time.Millisecond},
				Degrade:   deg,
				Metrics:   m,
			})
			if err != nil {
				t.Fatalf("%s: run failed: %v", name, err)
			}
			assertIdentical(t, name, refE, e, refStats, stats, refObs, o)
			if inj.Fired() == 0 {
				t.Errorf("%s: no fault fired", name)
			}
			fellBack := m.Counter(obs.MetricNetLocalFallbacks).Value() > 0
			if name == "unreachable" {
				if !fellBack {
					t.Error("unreachable peer should pin the partition local")
				}
				if !deg.Shed(faultPart) {
					t.Error("unreachable partition's capture should be shed")
				}
			} else {
				if !deg.AnyShed() == fellBack {
					t.Errorf("%s: fallback %v inconsistent with shed state", name, fellBack)
				}
				switch name {
				case "drop", "oneway":
					if m.Counter(obs.MetricNetRetransmits).Value() == 0 {
						t.Errorf("%s: expected retransmits", name)
					}
				case "reset":
					if m.Counter(obs.MetricNetReconnects).Value() == 0 {
						t.Errorf("%s: expected a reconnect", name)
					}
				}
			}
		})
	}
}

// newTestWorker starts one in-process worker over its own executor and
// returns it for direct lifecycle control (kill, drain, restart).
func newTestWorker(t *testing.T, g *graph.Graph, addr string) *Worker {
	t.Helper()
	x, err := engine.NewExecutor(g, testProg(), engine.Config{Partitions: testParts, Combiner: analytics.SumCombiner})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorker(x, addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve()
	t.Cleanup(func() { w.Close() })
	return w
}

// TestWorkerKilledMidRun kills one of two workers abruptly mid-run (no
// reply, connections severed). With failover on, the dead worker's
// partitions reassign to the survivor — same request, same seq, executed
// bit-identically — so the run completes with NO local fallback and NO
// capture shed: provenance is fully preserved.
func TestWorkerKilledMidRun(t *testing.T) {
	g := testGraph(t)
	refE, refStats, refObs, err := runLeg(t, g, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := obs.New()
	w0 := newTestWorker(t, g, "127.0.0.1:0")
	w1 := newTestWorker(t, g, "127.0.0.1:0")
	w1.KillAfter(5) // dies during the third superstep of its partitions

	tr := dialWorkers(t, g, []string{w0.Addr(), w1.Addr()}, func(c *TCPConfig) {
		c.MessageDeadline = 100 * time.Millisecond
		c.MaxRetries = 1
		c.Backoff = time.Millisecond
		c.Metrics = m
	})
	defer tr.Close()
	deg := supervise.NewDegradeState(1)
	e, stats, o, err := runLeg(t, g, engine.Config{
		Transport: tr,
		Supervise: &supervise.Config{MaxRetries: 1, Backoff: time.Millisecond},
		Degrade:   deg,
		Metrics:   m,
	})
	if err != nil {
		t.Fatalf("run with killed worker failed: %v", err)
	}
	assertIdentical(t, "killed-worker", refE, e, refStats, stats, refObs, o)
	if m.Counter(obs.MetricFailoverDeaths).Value() == 0 {
		t.Error("expected the killed worker to be declared dead")
	}
	if m.Counter(obs.MetricFailoverReassignments).Value() == 0 {
		t.Error("expected the dead worker's partitions to be reassigned")
	}
	if n := m.Counter(obs.MetricNetLocalFallbacks).Value(); n != 0 {
		t.Errorf("failover should preempt local fallback, got %d fallbacks", n)
	}
	if deg.AnyShed() {
		t.Error("failover preserves capture; nothing should be shed")
	}
}

// TestWorkerKilledNoFailover pins the pre-failover contract behind the
// NoFailover switch: the dead worker's partitions pin local and shed
// capture instead of rerouting.
func TestWorkerKilledNoFailover(t *testing.T) {
	g := testGraph(t)
	refE, refStats, refObs, err := runLeg(t, g, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := obs.New()
	w0 := newTestWorker(t, g, "127.0.0.1:0")
	w1 := newTestWorker(t, g, "127.0.0.1:0")
	w1.KillAfter(5)

	tr := dialWorkers(t, g, []string{w0.Addr(), w1.Addr()}, func(c *TCPConfig) {
		c.MessageDeadline = 100 * time.Millisecond
		c.MaxRetries = 1
		c.Backoff = time.Millisecond
		c.NoFailover = true
		c.Metrics = m
	})
	defer tr.Close()
	deg := supervise.NewDegradeState(1)
	e, stats, o, err := runLeg(t, g, engine.Config{
		Transport: tr,
		Supervise: &supervise.Config{MaxRetries: 1, Backoff: time.Millisecond},
		Degrade:   deg,
		Metrics:   m,
	})
	if err != nil {
		t.Fatalf("run with killed worker failed: %v", err)
	}
	assertIdentical(t, "killed-no-failover", refE, e, refStats, stats, refObs, o)
	if m.Counter(obs.MetricNetLocalFallbacks).Value() == 0 {
		t.Error("expected local fallback after worker death with failover off")
	}
	if !deg.AnyShed() {
		t.Error("dead worker's partitions should have capture shed with failover off")
	}
}

// TestAllWorkersKilled kills the whole pool mid-run: with nowhere to fail
// over, the engine's pin-local fallback is the last rung — the run still
// finishes bit-identically, with the lost partitions' capture shed and
// accounted.
func TestAllWorkersKilled(t *testing.T) {
	g := testGraph(t)
	refE, refStats, refObs, err := runLeg(t, g, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := obs.New()
	w0 := newTestWorker(t, g, "127.0.0.1:0")
	w1 := newTestWorker(t, g, "127.0.0.1:0")
	w0.KillAfter(5)
	w1.KillAfter(5)

	tr := dialWorkers(t, g, []string{w0.Addr(), w1.Addr()}, func(c *TCPConfig) {
		c.MessageDeadline = 100 * time.Millisecond
		c.MaxRetries = 1
		c.Backoff = time.Millisecond
		c.Metrics = m
	})
	defer tr.Close()
	deg := supervise.NewDegradeState(1)
	e, stats, o, err := runLeg(t, g, engine.Config{
		Transport: tr,
		Supervise: &supervise.Config{MaxRetries: 1, Backoff: time.Millisecond},
		Degrade:   deg,
		Metrics:   m,
	})
	if err != nil {
		t.Fatalf("run with all workers killed failed: %v", err)
	}
	assertIdentical(t, "all-killed", refE, e, refStats, stats, refObs, o)
	if m.Counter(obs.MetricNetLocalFallbacks).Value() == 0 {
		t.Error("expected local fallback once the whole pool is dead")
	}
	if !deg.AnyShed() {
		t.Error("pin-local partitions should have capture shed")
	}
}

// waitCounter polls a metric until it is at least want or the deadline
// passes.
func waitCounter(t *testing.T, m *obs.Metrics, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for m.Counter(name).Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s never reached %d (at %d)", name, want, m.Counter(name).Value())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestWorkerDrainRejoin walks the graceful path end to end at the protocol
// level: a worker drains (finishing in-flight work, sending frameDrain),
// its partitions reroute without a death being charged, then a restarted
// worker on the same address passes a fresh handshake and rejoins the pool.
func TestWorkerDrainRejoin(t *testing.T) {
	g := testGraph(t)
	m := obs.New()
	w0 := newTestWorker(t, g, "127.0.0.1:0")
	w1 := newTestWorker(t, g, "127.0.0.1:0")
	addr1 := w1.Addr()
	tr := dialWorkers(t, g, []string{w0.Addr(), addr1}, func(c *TCPConfig) {
		c.MessageDeadline = 200 * time.Millisecond
		c.MaxRetries = 1
		c.Backoff = time.Millisecond
		c.Metrics = m
	})
	defer tr.Close()

	// Partition 1 is statically assigned to worker 1; prove the route works.
	if _, err := tr.Exec(context.Background(), &engine.ExecRequest{Superstep: 0, Partition: 1}); err != nil {
		t.Fatalf("warm-up exec: %v", err)
	}
	if err := w1.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitCounter(t, m, obs.MetricFailoverDrains, 1)

	// The drained worker's partition reroutes to the survivor, gracefully:
	// a reassignment, not a death.
	if _, err := tr.Exec(context.Background(), &engine.ExecRequest{Superstep: 1, Partition: 1}); err != nil {
		t.Fatalf("exec after drain: %v", err)
	}
	if m.Counter(obs.MetricFailoverReassignments).Value() == 0 {
		t.Error("expected a reassignment off the drained worker")
	}
	if n := m.Counter(obs.MetricFailoverDeaths).Value(); n != 0 {
		t.Errorf("a graceful drain must not be charged as a death, got %d", n)
	}

	// Restart on the same address: the revival probe re-runs the fingerprint
	// handshake and re-admits the worker mid-run (its empty dedup cache is
	// fine — the seq protocol just recomputes).
	newTestWorker(t, g, addr1)
	// Partition 3 still points at the restarted worker's slot, so routing it
	// probes and rejoins.
	if _, err := tr.Exec(context.Background(), &engine.ExecRequest{Superstep: 2, Partition: 3}); err != nil {
		t.Fatalf("exec after rejoin: %v", err)
	}
	waitCounter(t, m, obs.MetricFailoverRejoins, 1)
	if !tr.peers[1].routable() {
		t.Error("rejoined worker should be routable again")
	}
}

// TestPoolStateMachine drives the circuit breaker's transitions directly:
// failures suspect, success clears, budget kills exactly once, drains are
// sticky against deaths, and only live-ish states route.
func TestPoolStateMachine(t *testing.T) {
	m := obs.New()
	tr := &TCP{cfg: TCPConfig{Metrics: m}.normalize(), assign: map[int]int{}}
	p := &peer{t: tr, addr: "test:0", probedSS: -1}
	tr.peers = []*peer{p}

	if !p.routable() || p.state.String() != "healthy" {
		t.Fatalf("fresh peer should be routable and healthy, got %v", p.state)
	}
	p.noteFailure()
	if !p.routable() || p.state != stateSuspect {
		t.Fatalf("one failure should suspect, not unroute: %v", p.state)
	}
	p.noteSuccess()
	if p.state != stateHealthy || p.fails != 0 {
		t.Fatalf("success should clear the breaker: %v fails=%d", p.state, p.fails)
	}
	p.markDead("test")
	p.markDead("test again")
	if p.routable() {
		t.Error("dead peer must not route")
	}
	if n := m.Counter(obs.MetricFailoverDeaths).Value(); n != 1 {
		t.Errorf("death counted %d times, want once", n)
	}
	p.noteSuccess() // stale verdict raced a recovery
	if !p.routable() {
		t.Error("a successful exchange should restore a written-off peer")
	}
	p.markDraining()
	p.markDead("should not stick")
	if p.state != stateDraining {
		t.Errorf("a draining peer must not be re-declared dead: %v", p.state)
	}
	if n := m.Counter(obs.MetricFailoverDeaths).Value(); n != 1 {
		t.Errorf("drain-then-dead counted a death: %d", n)
	}
}

// TestReplyCacheFIFO pins the dedup cache contract: strict FIFO eviction,
// no double-insert, and a retransmit arriving after eviction simply misses
// (the worker recomputes — same bits, just slower).
func TestReplyCacheFIFO(t *testing.T) {
	c := newReplyCache(3)
	c.put(1, []byte("a"))
	c.put(2, []byte("b"))
	c.put(3, []byte("c"))
	// Duplicate put must not reorder or duplicate the eviction queue.
	c.put(1, []byte("a2"))
	if r, ok := c.get(1); !ok || string(r) != "a" {
		t.Fatalf("dup put overwrote: %q %v", r, ok)
	}
	c.put(4, []byte("d")) // evicts 1, the oldest
	if _, ok := c.get(1); ok {
		t.Error("seq 1 should have been evicted first (FIFO)")
	}
	for seq, want := range map[uint64]string{2: "b", 3: "c", 4: "d"} {
		if r, ok := c.get(seq); !ok || string(r) != want {
			t.Errorf("seq %d: got %q %v, want %q", seq, r, ok, want)
		}
	}
	c.put(5, []byte("e")) // evicts 2
	if _, ok := c.get(2); ok {
		t.Error("seq 2 should have been evicted second (FIFO)")
	}
	if len(c.replies) != 3 || len(c.order) != 3 {
		t.Errorf("cache exceeded its bound: %d replies, %d order", len(c.replies), len(c.order))
	}
}

// TestReplyDedupAfterEviction exercises the worker path: a retransmit whose
// cached reply was evicted is recomputed, and — the request being a pure
// function — the recomputed reply is byte-identical to the original.
func TestReplyDedupAfterEviction(t *testing.T) {
	g := testGraph(t)
	w := newTestWorker(t, g, "127.0.0.1:0")
	tr := dialWorkers(t, g, []string{w.Addr()})
	defer tr.Close()
	p := tr.peers[0]
	req := &engine.ExecRequest{Superstep: 0, Partition: 0}
	payload := encodeExecRequest(req)

	first, _, err := p.roundTrip(context.Background(), req, 1, payload)
	if err != nil {
		t.Fatal(err)
	}
	// Push the seq-1 reply out of the worker's FIFO cache.
	for seq := uint64(2); seq < 2+replyCacheSize; seq++ {
		if _, _, err := p.roundTrip(context.Background(), req, seq, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Retransmit seq 1: a cache miss now, so the worker recomputes.
	again, _, err := p.roundTrip(context.Background(), req, 1, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("post-eviction recompute diverged:\n  first %+v\n  again %+v", first, again)
	}
}

// TestHeartbeatDeclaresDead closes a worker under an armed heartbeat and
// checks the client notices within the miss budget.
func TestHeartbeatDeclaresDead(t *testing.T) {
	g := testGraph(t)
	m := obs.New()
	x, err := engine.NewExecutor(g, testProg(), engine.Config{Partitions: testParts, Combiner: analytics.SumCombiner})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorker(x, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve()
	tr := dialWorkers(t, g, []string{w.Addr()}, func(c *TCPConfig) {
		c.HeartbeatInterval = 10 * time.Millisecond
		c.HeartbeatMisses = 2
		c.Metrics = m
	})
	defer tr.Close()
	w.Close()
	deadline := time.Now().Add(2 * time.Second)
	for m.Counter(obs.MetricNetHeartbeatMiss).Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if m.Counter(obs.MetricNetHeartbeatMiss).Value() == 0 {
		t.Error("heartbeat never noticed the dead peer")
	}
}

// TestHandshakeRejectsMismatch checks version-fingerprint agreement is
// enforced at dial time, not discovered mid-run.
func TestHandshakeRejectsMismatch(t *testing.T) {
	g := testGraph(t)
	addrs := startWorkers(t, g, 1, nil)
	cfg := TCPConfig{
		Addrs:       addrs,
		Fingerprint: Fingerprint{Partitions: testParts + 1, NumVertices: g.NumVertices(), NumEdges: g.NumEdges()},
	}
	tr, err := DialTCP(cfg)
	if err == nil {
		tr.Close()
		t.Fatal("want fingerprint mismatch error, got success")
	}
	if !errors.Is(err, engine.ErrTransport) {
		t.Errorf("mismatch error should wrap ErrTransport: %v", err)
	}
}

// TestExecCanceled checks a canceled context fails the exchange promptly
// with an error that supervision will not retry forever.
func TestExecCanceled(t *testing.T) {
	g := testGraph(t)
	addrs := startWorkers(t, g, 1, nil)
	tr := dialWorkers(t, g, addrs)
	defer tr.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := tr.Exec(ctx, &engine.ExecRequest{Superstep: 0, Partition: 0})
	if err == nil {
		t.Fatal("want error on canceled context")
	}
	if !errors.Is(err, engine.ErrTransport) || !errors.Is(err, context.Canceled) {
		t.Errorf("error should wrap ErrTransport and context.Canceled: %v", err)
	}
}
