package transport

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"ariadne/internal/analytics"
	"ariadne/internal/engine"
	"ariadne/internal/fault"
	"ariadne/internal/gen"
	"ariadne/internal/graph"
	"ariadne/internal/obs"
	"ariadne/internal/supervise"
	"ariadne/internal/value"
)

const (
	testParts = 4
	testSteps = 11
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(7, 6, 42))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testProg() engine.Program { return &analytics.PageRank{Iterations: testSteps - 1} }

// recObserver fingerprints every observed record so legs can be compared
// for identical provenance streams without a capture store in the loop.
type recObserver struct{ sigs []string }

func (o *recObserver) NeedsRawMessages() bool { return true }
func (o *recObserver) Finish(int) error       { return nil }
func (o *recObserver) ObserveSuperstep(v *engine.SuperstepView) error {
	for i := range v.Records {
		r := &v.Records[i]
		sig := fmt.Sprintf("%d/%d/%d:%x:%x:", r.ID, r.Superstep, r.PrevActive,
			r.OldValue.AppendBinary(nil), r.NewValue.AppendBinary(nil))
		for _, m := range r.Received {
			sig += fmt.Sprintf("r%d:%x,", m.Src, m.Val.AppendBinary(nil))
		}
		for _, m := range r.Sent {
			sig += fmt.Sprintf("s%d:%x,", m.Dst, m.Val.AppendBinary(nil))
		}
		o.sigs = append(o.sigs, sig)
	}
	return nil
}

// startWorkers launches n in-process TCP workers over their own executors
// (same graph, same program — separate state, as separate processes would
// have) and returns their addresses.
func startWorkers(t *testing.T, g *graph.Graph, n int, wcfg func(i int) engine.Config) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		cfg := engine.Config{Partitions: testParts, Combiner: analytics.SumCombiner}
		if wcfg != nil {
			cfg = wcfg(i)
		}
		x, err := engine.NewExecutor(g, testProg(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWorker(x, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve()
		t.Cleanup(func() { w.Close() })
		addrs[i] = w.Addr()
	}
	return addrs
}

func runLeg(t *testing.T, g *graph.Graph, cfg engine.Config) (*engine.Engine, engine.RunStats, *recObserver, error) {
	t.Helper()
	o := &recObserver{}
	cfg.MaxSupersteps = testSteps
	cfg.Partitions = testParts
	cfg.Combiner = analytics.SumCombiner
	cfg.Observers = append(cfg.Observers, o)
	e, err := engine.New(g, testProg(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Run()
	return e, stats, o, err
}

func assertIdentical(t *testing.T, leg string, ref, got *engine.Engine, refStats, gotStats engine.RunStats, refObs, gotObs *recObserver) {
	t.Helper()
	if refStats.Supersteps != gotStats.Supersteps {
		t.Errorf("%s: supersteps %d != %d", leg, gotStats.Supersteps, refStats.Supersteps)
	}
	if refStats.MessagesSent != gotStats.MessagesSent ||
		refStats.MessagesDelivered != gotStats.MessagesDelivered ||
		refStats.MessagesCombinedSender != gotStats.MessagesCombinedSender {
		t.Errorf("%s: message accounting (%d/%d/%d) != (%d/%d/%d)", leg,
			gotStats.MessagesSent, gotStats.MessagesDelivered, gotStats.MessagesCombinedSender,
			refStats.MessagesSent, refStats.MessagesDelivered, refStats.MessagesCombinedSender)
	}
	rv, gv := ref.Values(), got.Values()
	for v := range rv {
		if !reflect.DeepEqual(rv[v].AppendBinary(nil), gv[v].AppendBinary(nil)) {
			t.Fatalf("%s: vertex %d value %v != %v (must be bit-identical)", leg, v, gv[v], rv[v])
		}
	}
	if !reflect.DeepEqual(refObs.sigs, gotObs.sigs) {
		t.Errorf("%s: observer record streams differ (%d vs %d records)", leg, len(gotObs.sigs), len(refObs.sigs))
	}
}

func TestWireExecRequestRoundTrip(t *testing.T) {
	req := &engine.ExecRequest{
		Superstep: 3, Partition: 1, Observing: true, Combine: true,
		Active:     []engine.VertexID{1, 5, 9},
		Values:     []value.Value{value.NewFloat(0.25), value.NewVector([]float64{1, -2.5}), value.NewString("x")},
		PrevActive: []int32{-1, 0, 2},
		Inbox: [][]engine.IncomingMessage{
			nil,
			{{Src: 2, Val: value.NewFloat(0.125)}, {Src: 3, Val: value.NewInt(-7)}},
			{{Src: 1, Val: value.NewBool(true)}},
		},
		Agg: map[string]float64{"err": 0.5, "mass": 1.0},
	}
	rt, err := decodeExecRequest(encodeExecRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, rt) {
		t.Fatalf("roundtrip mismatch:\n  in  %+v\n  out %+v", req, rt)
	}
}

func TestWireExecResultRoundTrip(t *testing.T) {
	res := &engine.ExecResult{
		Partition: 2,
		Computed:  []engine.VertexID{4, 8},
		NewValues: []value.Value{value.NewFloat(0.5), value.NullValue},
		Outbox: [][]engine.OutMessage{
			{{Src: 4, Dst: 0, Val: value.NewFloat(1.5)}},
			nil,
			{{Src: 8, Dst: 6, Val: value.NewInt(3)}, {Src: 4, Dst: 2, Val: value.NewString("m")}},
		},
		Records: []engine.VertexRecord{{
			ID: 4, Superstep: 3, PrevActive: -1,
			OldValue: value.NewFloat(1), NewValue: value.NewFloat(0.5),
			Received: []engine.IncomingMessage{{Src: 0, Val: value.NewFloat(2)}},
			Sent:     []engine.SentMessage{{Dst: 0, Val: value.NewFloat(1.5)}},
			Emitted:  []engine.ProvFact{{Table: "tp", Args: []value.Value{value.NewInt(4)}}},
		}},
		Sent: 3, CombinedSender: 1,
		Agg: []engine.AggUpdate{{Name: "mass", Op: engine.AggSum, Val: 2, N: 5}},
	}
	rt, err := decodeExecResult(encodeExecResult(res))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, rt) {
		t.Fatalf("roundtrip mismatch:\n  in  %+v\n  out %+v", res, rt)
	}

	crash := &engine.ExecResult{Partition: 1, Crash: &engine.RemoteCrash{
		Vertex: 9, Superstep: 2, Message: "boom", Panic: true, Injected: true,
	}}
	rt, err = decodeExecResult(encodeExecResult(crash))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(crash, rt) {
		t.Fatalf("crash roundtrip mismatch: %+v vs %+v", rt, crash)
	}
}

// TestTransportDifferential pins every transport leg against the in-process
// reference: same values bit for bit, same message accounting, same
// observer record stream — for the local executor leg, the codec-roundtrip
// leg, and TCP-loopback with 1 and 2 workers.
func TestTransportDifferential(t *testing.T) {
	g := testGraph(t)
	refE, refStats, refObs, err := runLeg(t, g, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}

	newExec := func() *engine.Executor {
		x, err := engine.NewExecutor(g, testProg(), engine.Config{Partitions: testParts, Combiner: analytics.SumCombiner})
		if err != nil {
			t.Fatal(err)
		}
		return x
	}
	legs := map[string]func() engine.Transport{
		"local":       func() engine.Transport { return NewLocal(newExec()) },
		"local-codec": func() engine.Transport { return NewLocalCodec(newExec()) },
		"tcp-1": func() engine.Transport {
			return dialWorkers(t, g, startWorkers(t, g, 1, nil))
		},
		"tcp-2": func() engine.Transport {
			return dialWorkers(t, g, startWorkers(t, g, 2, nil))
		},
	}
	for name, mk := range legs {
		t.Run(name, func(t *testing.T) {
			tr := mk()
			defer tr.Close()
			e, stats, o, err := runLeg(t, g, engine.Config{Transport: tr})
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, name, refE, e, refStats, stats, refObs, o)
		})
	}
}

func dialWorkers(t *testing.T, g *graph.Graph, addrs []string, opts ...func(*TCPConfig)) *TCP {
	t.Helper()
	cfg := TCPConfig{
		Addrs:       addrs,
		Fingerprint: Fingerprint{Partitions: testParts, NumVertices: g.NumVertices(), NumEdges: g.NumEdges()},
	}
	for _, o := range opts {
		o(&cfg)
	}
	tr, err := DialTCP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestRemoteCrashCulprit checks that a vertex-program failure on a worker
// comes back as the same CrashError a local run raises: culprit vertex,
// superstep, and an errors.Is-reachable ErrComputePanic cause.
func TestRemoteCrashCulprit(t *testing.T) {
	g := testGraph(t)
	addrs := startWorkers(t, g, 1, func(int) engine.Config {
		return engine.Config{
			Partitions: testParts,
			Combiner:   analytics.SumCombiner,
			Fault:      fault.NewInjector(fault.PanicAt(2, 6)),
		}
	})
	tr := dialWorkers(t, g, addrs)
	defer tr.Close()
	_, _, _, err := runLeg(t, g, engine.Config{Transport: tr})
	if err == nil {
		t.Fatal("want remote crash, got success")
	}
	var ce *engine.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want CrashError, got %v", err)
	}
	if ce.Vertex != 6 || ce.Superstep != 2 {
		t.Errorf("culprit = vertex %d superstep %d, want 6/2", ce.Vertex, ce.Superstep)
	}
	if !errors.Is(err, engine.ErrComputePanic) {
		t.Errorf("cause chain lost ErrComputePanic: %v", err)
	}
}

// TestNetFaultMatrix drives every canonical network fault scenario through
// a real TCP exchange: recoverable faults (drop, slow link, duplicate,
// reset, one-way partition) must finish bit-identically via retransmit or
// reconnect; the unreachable scenario must finish bit-identically via the
// engine's local fallback, with the partition's capture shed.
func TestNetFaultMatrix(t *testing.T) {
	g := testGraph(t)
	refE, refStats, refObs, err := runLeg(t, g, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const faultPart = 1
	for name, rules := range fault.NetMatrix(faultPart, 1, 2*time.Millisecond) {
		t.Run(name, func(t *testing.T) {
			m := obs.New()
			inj := fault.NewInjector(rules...)
			addrs := startWorkers(t, g, 2, nil)
			tr := dialWorkers(t, g, addrs, func(c *TCPConfig) {
				c.MessageDeadline = 100 * time.Millisecond
				c.MaxRetries = 2
				c.Backoff = time.Millisecond
				c.Fault = inj
				c.Metrics = m
			})
			defer tr.Close()
			deg := supervise.NewDegradeState(1)
			e, stats, o, err := runLeg(t, g, engine.Config{
				Transport: tr,
				Supervise: &supervise.Config{MaxRetries: 2, Backoff: time.Millisecond},
				Degrade:   deg,
				Metrics:   m,
			})
			if err != nil {
				t.Fatalf("%s: run failed: %v", name, err)
			}
			assertIdentical(t, name, refE, e, refStats, stats, refObs, o)
			if inj.Fired() == 0 {
				t.Errorf("%s: no fault fired", name)
			}
			fellBack := m.Counter(obs.MetricNetLocalFallbacks).Value() > 0
			if name == "unreachable" {
				if !fellBack {
					t.Error("unreachable peer should pin the partition local")
				}
				if !deg.Shed(faultPart) {
					t.Error("unreachable partition's capture should be shed")
				}
			} else {
				if !deg.AnyShed() == fellBack {
					t.Errorf("%s: fallback %v inconsistent with shed state", name, fellBack)
				}
				switch name {
				case "drop", "oneway":
					if m.Counter(obs.MetricNetRetransmits).Value() == 0 {
						t.Errorf("%s: expected retransmits", name)
					}
				case "reset":
					if m.Counter(obs.MetricNetReconnects).Value() == 0 {
						t.Errorf("%s: expected a reconnect", name)
					}
				}
			}
		})
	}
}

// TestWorkerKilledMidRun kills one of two workers abruptly mid-run (no
// reply, connections severed). The run must complete with bit-identical
// values: the dead worker's partitions fail over to local execution, and
// their capture is shed from the superstep of the loss.
func TestWorkerKilledMidRun(t *testing.T) {
	g := testGraph(t)
	refE, refStats, refObs, err := runLeg(t, g, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := obs.New()
	cfg := engine.Config{Partitions: testParts, Combiner: analytics.SumCombiner}
	x0, err := engine.NewExecutor(g, testProg(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	w0, err := NewWorker(x0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	go w0.Serve()
	t.Cleanup(func() { w0.Close() })
	x1, err := engine.NewExecutor(g, testProg(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := NewWorker(x1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	w1.KillAfter(5) // dies during the third superstep of its partitions
	go w1.Serve()
	t.Cleanup(func() { w1.Close() })

	tr := dialWorkers(t, g, []string{w0.Addr(), w1.Addr()}, func(c *TCPConfig) {
		c.MessageDeadline = 100 * time.Millisecond
		c.MaxRetries = 1
		c.Backoff = time.Millisecond
		c.Metrics = m
	})
	defer tr.Close()
	deg := supervise.NewDegradeState(1)
	e, stats, o, err := runLeg(t, g, engine.Config{
		Transport: tr,
		Supervise: &supervise.Config{MaxRetries: 1, Backoff: time.Millisecond},
		Degrade:   deg,
		Metrics:   m,
	})
	if err != nil {
		t.Fatalf("run with killed worker failed: %v", err)
	}
	assertIdentical(t, "killed-worker", refE, e, refStats, stats, refObs, o)
	if m.Counter(obs.MetricNetLocalFallbacks).Value() == 0 {
		t.Error("expected local fallback after worker death")
	}
	if !deg.AnyShed() {
		t.Error("dead worker's partitions should have capture shed")
	}
}

// TestHeartbeatDeclaresDead closes a worker under an armed heartbeat and
// checks the client notices within the miss budget.
func TestHeartbeatDeclaresDead(t *testing.T) {
	g := testGraph(t)
	m := obs.New()
	x, err := engine.NewExecutor(g, testProg(), engine.Config{Partitions: testParts, Combiner: analytics.SumCombiner})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorker(x, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve()
	tr := dialWorkers(t, g, []string{w.Addr()}, func(c *TCPConfig) {
		c.HeartbeatInterval = 10 * time.Millisecond
		c.HeartbeatMisses = 2
		c.Metrics = m
	})
	defer tr.Close()
	w.Close()
	deadline := time.Now().Add(2 * time.Second)
	for m.Counter(obs.MetricNetHeartbeatMiss).Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if m.Counter(obs.MetricNetHeartbeatMiss).Value() == 0 {
		t.Error("heartbeat never noticed the dead peer")
	}
}

// TestHandshakeRejectsMismatch checks version-fingerprint agreement is
// enforced at dial time, not discovered mid-run.
func TestHandshakeRejectsMismatch(t *testing.T) {
	g := testGraph(t)
	addrs := startWorkers(t, g, 1, nil)
	cfg := TCPConfig{
		Addrs:       addrs,
		Fingerprint: Fingerprint{Partitions: testParts + 1, NumVertices: g.NumVertices(), NumEdges: g.NumEdges()},
	}
	tr, err := DialTCP(cfg)
	if err == nil {
		tr.Close()
		t.Fatal("want fingerprint mismatch error, got success")
	}
	if !errors.Is(err, engine.ErrTransport) {
		t.Errorf("mismatch error should wrap ErrTransport: %v", err)
	}
}

// TestExecCanceled checks a canceled context fails the exchange promptly
// with an error that supervision will not retry forever.
func TestExecCanceled(t *testing.T) {
	g := testGraph(t)
	addrs := startWorkers(t, g, 1, nil)
	tr := dialWorkers(t, g, addrs)
	defer tr.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := tr.Exec(ctx, &engine.ExecRequest{Superstep: 0, Partition: 0})
	if err == nil {
		t.Fatal("want error on canceled context")
	}
	if !errors.Is(err, engine.ErrTransport) || !errors.Is(err, context.Canceled) {
		t.Errorf("error should wrap ErrTransport and context.Canceled: %v", err)
	}
}
