package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Snappy-style LZ77 block compression for wire-v3 frames (DESIGN.md §15).
// The format is deliberately tiny and self-contained — no external codec
// dependency — and is only ever spoken between two processes built from the
// same tree, negotiated by the capSnappy handshake bit, so there is no
// cross-version compatibility surface beyond the wire version itself.
//
// Block layout: uvarint(decoded length), then a tag stream:
//
//	tag&1 == 0 — literal run of (tag>>1)+1 bytes (1..128), bytes follow
//	tag&1 == 1 — copy of (tag>>1)+4 bytes (4..131) from uvarint(offset)
//	             bytes back in the decoded output (offset >= 1; offsets
//	             shorter than the copy length replicate, RLE-style)
//
// Compression is greedy with a 4-byte rolling hash table, like snappy's
// fast path. Encoding is fully deterministic: identical input yields an
// identical block on every run, which the retransmit dedup relies on
// (a re-sent compressed frame must be byte-identical to the original).

const (
	snapMaxLit    = 128 // longest literal run one tag can carry
	snapMaxCopy   = 131 // longest copy one tag can carry
	snapMinMatch  = 4   // shortest match worth a copy tag
	snapTableBits = 12
	snapTableSize = 1 << snapTableBits
)

var errSnapCorrupt = errors.New("transport: corrupt compressed block")

// snapMaxEncodedLen bounds the encoder output for sizing scratch buffers:
// worst case is all literals — one tag byte per 128 input bytes — plus the
// length header.
func snapMaxEncodedLen(srcLen int) int {
	return srcLen + srcLen/snapMaxLit + 1 + binary.MaxVarintLen64
}

func snapHash(v uint32) uint32 {
	return (v * 0x1e35a7bd) >> (32 - snapTableBits)
}

// snapCompress appends the compressed form of src to dst and returns the
// extended slice. An empty src encodes to just the zero length header.
func snapCompress(dst, src []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	var table [snapTableSize]int32 // position+1 of the last occurrence per bucket
	litStart := 0                  // start of the pending literal run
	i := 0
	for i+snapMinMatch <= len(src) {
		cur := binary.LittleEndian.Uint32(src[i:])
		h := snapHash(cur)
		cand := int(table[h]) - 1
		table[h] = int32(i) + 1
		if cand < 0 || binary.LittleEndian.Uint32(src[cand:]) != cur {
			i++
			continue
		}
		length := snapMinMatch
		for i+length < len(src) && src[cand+length] == src[i+length] {
			length++
		}
		dst = snapEmitLiterals(dst, src[litStart:i])
		offset := i - cand
		// Split matches longer than one tag can carry; the offset stays
		// constant because source and destination advance in lockstep.
		rem := length
		for rem > 0 {
			n := rem
			if n > snapMaxCopy {
				n = snapMaxCopy
				if rem-n > 0 && rem-n < snapMinMatch {
					n = rem - snapMinMatch
				}
			}
			dst = append(dst, byte((n-snapMinMatch)<<1|1))
			dst = binary.AppendUvarint(dst, uint64(offset))
			rem -= n
		}
		i += length
		litStart = i
		if i+snapMinMatch <= len(src) {
			table[snapHash(binary.LittleEndian.Uint32(src[i-1:]))] = int32(i-1) + 1
		}
	}
	return snapEmitLiterals(dst, src[litStart:])
}

// snapEmitLiterals appends literal-run tags covering lit.
func snapEmitLiterals(dst, lit []byte) []byte {
	for len(lit) > 0 {
		n := len(lit)
		if n > snapMaxLit {
			n = snapMaxLit
		}
		dst = append(dst, byte((n-1)<<1))
		dst = append(dst, lit[:n]...)
		lit = lit[n:]
	}
	return dst
}

// snapDecode appends the decompressed form of block to dst and returns the
// extended slice. The block must be exactly one snapCompress output;
// truncated runs, bad offsets, and length mismatches all error.
func snapDecode(dst, block []byte) ([]byte, error) {
	want, n := binary.Uvarint(block)
	if n <= 0 {
		return dst, errSnapCorrupt
	}
	block = block[n:]
	base := len(dst)
	for len(block) > 0 {
		tag := block[0]
		block = block[1:]
		if tag&1 == 0 {
			runLen := int(tag>>1) + 1
			if runLen > len(block) {
				return dst, fmt.Errorf("%w: literal run past end", errSnapCorrupt)
			}
			dst = append(dst, block[:runLen]...)
			block = block[runLen:]
			continue
		}
		cpLen := int(tag>>1) + snapMinMatch
		off, n := binary.Uvarint(block)
		if n <= 0 || off == 0 || int(off) > len(dst)-base {
			return dst, fmt.Errorf("%w: bad copy offset", errSnapCorrupt)
		}
		block = block[n:]
		// Byte-at-a-time so overlapping offsets replicate like the
		// encoder assumed.
		pos := len(dst) - int(off)
		for j := 0; j < cpLen; j++ {
			dst = append(dst, dst[pos+j])
		}
	}
	if len(dst)-base != int(want) {
		return dst, fmt.Errorf("%w: decoded %d bytes, header said %d", errSnapCorrupt, len(dst)-base, want)
	}
	return dst, nil
}
