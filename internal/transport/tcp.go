package transport

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ariadne/internal/engine"
	"ariadne/internal/fault"
	"ariadne/internal/obs"
	"ariadne/internal/supervise"
)

// Default TCP timings, chosen so a dead worker is detected and retried
// within a couple of supersteps' wall time on a LAN without making tests
// slow. All are overridable per run.
const (
	defaultDialTimeout     = 5 * time.Second
	defaultMessageDeadline = 5 * time.Second
	defaultNetMaxRetries   = 3
	defaultNetBackoff      = time.Millisecond
	maxNetBackoff          = 100 * time.Millisecond
	defaultHBMisses        = 3
	handshakeDeadline      = 10 * time.Second
)

// TCPConfig configures the master-side TCP leg.
type TCPConfig struct {
	// Addrs lists worker addresses. Partition p is served by
	// Addrs[p % len(Addrs)], the same modulo rule the engine uses to assign
	// vertices to partitions.
	Addrs []string
	// Fingerprint must match every worker's loaded graph and partition
	// count; the handshake rejects a peer that disagrees.
	Fingerprint Fingerprint
	// DialTimeout bounds connection establishment plus handshake.
	DialTimeout time.Duration
	// MessageDeadline bounds one request/reply exchange (send through
	// receive). An expired exchange is retransmitted.
	MessageDeadline time.Duration
	// MaxRetries bounds retransmissions of one Exec beyond the first
	// attempt; negative disables retransmit entirely.
	MaxRetries int
	// Backoff is the base retransmit backoff, growing and jittering by the
	// supervision policy (supervise.BackoffDuration).
	Backoff time.Duration
	// HeartbeatInterval enables per-peer ping/pong liveness probing; 0
	// disables it. A peer missing HeartbeatMisses consecutive pongs is
	// declared dead and its connection torn down, so in-flight exchanges
	// fail within one deadline instead of waiting out TCP timeouts.
	HeartbeatInterval time.Duration
	HeartbeatMisses   int
	// NoFailover disables the worker pool's partition failover: a failed
	// partition is never rerouted to a surviving worker, so exhausting the
	// retransmit budget on the assigned peer surfaces ErrTransport
	// immediately (the PR 6 behavior — the engine then pins the partition
	// local and sheds its capture). Default off: failover on.
	NoFailover bool
	// ForceFullState disables worker-resident state: Resident() reports
	// false, so the engine ships full frontiers every superstep and relays
	// all messages through the master (the pre-PR 9 exchange). The
	// before/after leg of the distributed bench.
	ForceFullState bool
	// NoCompress stops offering the snap-compression capability in the
	// handshake, so every master<->worker frame travels raw. Worker-to-
	// worker mesh links negotiate independently and are unaffected.
	NoCompress bool
	// Fault injects deterministic network faults at the net.send/net.recv
	// sites (drop, delay, duplicate, reset).
	Fault *fault.Injector
	// Metrics receives transport counters; nil disables them.
	Metrics *obs.Metrics
}

func (c TCPConfig) normalize() TCPConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = defaultDialTimeout
	}
	if c.MessageDeadline <= 0 {
		c.MessageDeadline = defaultMessageDeadline
	}
	switch {
	case c.MaxRetries == 0:
		c.MaxRetries = defaultNetMaxRetries
	case c.MaxRetries < 0:
		c.MaxRetries = 0
	}
	if c.Backoff <= 0 {
		c.Backoff = defaultNetBackoff
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = defaultHBMisses
	}
	return c
}

// TCP is the master-side client of the TCP leg: one connection per worker,
// request/reply exchanges matched by sequence number, at-least-once
// delivery (deadline + retransmit with deterministic jittered backoff,
// same-seq so the worker's dedup absorbs re-execution), heartbeat-based
// liveness, and partition failover over the worker pool (pool.go). Exec is
// safe for concurrent use by the engine's per-partition goroutines. All
// failures it returns wrap engine.ErrTransport, which is what routes them
// into supervised retry and, past the budget, the engine's local fallback.
type TCP struct {
	cfg    TCPConfig
	seq    atomic.Uint64
	peers  []*peer
	closed atomic.Bool
	stop   chan struct{}
	wg     sync.WaitGroup

	// assign is the partition -> peer-index table (pool.go); absent entries
	// mean the static partition % len(peers) rule still holds. lastExec
	// records which peer actually executed each partition's latest resident
	// superstep — that's where its state (and parked fragments) live, so
	// the delivery barrier routes there rather than to the nominal
	// assignment.
	amu      sync.Mutex
	assign   map[int]int
	lastExec map[int]int
}

// DialTCP connects to every worker, performs the versioned handshake, and
// starts heartbeating. A handshake failure (version or graph fingerprint
// mismatch) fails fast here rather than mid-run.
func DialTCP(cfg TCPConfig) (*TCP, error) {
	cfg = cfg.normalize()
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("%w: no worker addresses", engine.ErrTransport)
	}
	seen := make(map[string]bool, len(cfg.Addrs))
	for _, addr := range cfg.Addrs {
		if seen[addr] {
			return nil, fmt.Errorf("%w: duplicate worker address %s", engine.ErrTransport, addr)
		}
		seen[addr] = true
	}
	t := &TCP{cfg: cfg, stop: make(chan struct{}), assign: map[int]int{}, lastExec: map[int]int{}}
	for _, addr := range cfg.Addrs {
		t.peers = append(t.peers, &peer{t: t, addr: addr, pending: map[uint64]chan []byte{}, probedSS: -1})
	}
	for _, p := range t.peers {
		if err := p.ensure(); err != nil {
			t.Close()
			return nil, err
		}
	}
	if cfg.HeartbeatInterval > 0 {
		for _, p := range t.peers {
			t.wg.Add(1)
			go p.heartbeatLoop()
		}
	}
	return t, nil
}

// Exec implements engine.Transport: encode once, route to the partition's
// assigned worker, and attempt the exchange up to 1+MaxRetries times under
// per-message deadlines. Retransmits reuse the sequence number, so a worker
// that already executed the request replays its cached reply instead of
// recomputing (recomputing would be harmless — the request is a pure
// function — but the cache keeps retry storms cheap). When a peer exhausts
// its budget it is declared dead and the partition fails over: the same
// encoded request (same seq) is re-sent to the next surviving worker, each
// peer tried at most once per call. Only when no worker can take the
// request does Exec fail with ErrTransport — the engine's cue to pin the
// partition local.
func (t *TCP) Exec(ctx context.Context, req *engine.ExecRequest) (*engine.ExecResult, error) {
	if t.closed.Load() {
		return nil, fmt.Errorf("%w: client closed", engine.ErrTransport)
	}
	m := t.cfg.Metrics
	traced := req.TraceID != 0 && m.SpansEnabled()
	encode := func() []byte {
		var encStart time.Time
		if traced {
			encStart = time.Now()
		}
		p := encodeExecRequest(req)
		if traced {
			m.RecordSpan(obs.Span{
				Parent: req.ParentSpan, Proc: obs.ProcMaster, Name: obs.SpanSerialize,
				Superstep: req.Superstep, Partition: req.Partition,
				Start: encStart.UnixNano(), Dur: int64(time.Since(encStart)),
				Bytes: int64(len(p)),
			})
		}
		return p
	}
	classic := req.Mode == engine.ModeClassic
	var payload []byte
	if classic {
		payload = encode()
	}
	execStart := time.Now()
	seq := t.seq.Add(1)
	tried := make([]bool, len(t.peers))
	retries := 0
	var lastErr error
	for {
		pi := t.route(req, tried)
		if pi < 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("%w: partition %d superstep %d: no live workers",
					engine.ErrTransport, req.Partition, req.Superstep)
			}
			m.AddRPC(req.Superstep, req.Partition,
				int64(len(payload)), int64(retries), time.Since(execStart))
			return nil, lastErr
		}
		tried[pi] = true
		p := t.peers[pi]
		if !classic {
			// The mesh route depends on which peer executes the request (its
			// own partitions route "." into the local frag store), so resident
			// requests re-encode per attempt.
			req.Route = t.routesFor(req, pi)
			payload = encode()
		}
		res, replyLen, attempts, err := t.exchange(ctx, p, req, seq, payload, traced, retries)
		retries += attempts
		if err == nil {
			p.noteSuccess()
			// Per-(superstep, partition) exchange accounting behind the
			// net_rpc EDB — recorded whenever a registry is attached,
			// independent of span tracing.
			m.AddRPC(req.Superstep, req.Partition,
				int64(len(payload)+replyLen), int64(retries), time.Since(execStart))
			if res.StateMiss {
				// The worker (usually a failover target) lacks resident state
				// for this superstep. Not a transport failure — the peer is
				// healthy — the engine reseeds and retries.
				return nil, fmt.Errorf("partition %d superstep %d: worker %s: %w",
					req.Partition, req.Superstep, p.addr, engine.ErrStateMiss)
			}
			if !classic {
				t.amu.Lock()
				t.lastExec[req.Partition] = pi
				t.amu.Unlock()
			}
			return res, nil
		}
		lastErr = err
		if t.cfg.NoFailover || ctx.Err() != nil || t.closed.Load() {
			m.AddRPC(req.Superstep, req.Partition,
				int64(len(payload)), int64(retries), time.Since(execStart))
			return nil, lastErr
		}
		p.markDead("exchange budget exhausted")
	}
}

// exchange drives the retransmit loop of one request against one peer:
// 1+MaxRetries attempts under per-message deadlines with deterministic
// jittered backoff between them. It returns how many attempts beyond the
// first were burned, for cumulative retry accounting across failovers.
func (t *TCP) exchange(ctx context.Context, p *peer, req *engine.ExecRequest, seq uint64,
	payload []byte, traced bool, prior int) (*engine.ExecResult, int, int, error) {
	m := t.cfg.Metrics
	attempts := 0
	var lastErr error
	for try := 0; try <= t.cfg.MaxRetries; try++ {
		if try > 0 {
			m.Counter(obs.MetricNetRetransmits).Add(1)
			attempts++
			backStart := time.Now()
			supervise.SleepCtx(ctx, supervise.BackoffDuration(t.cfg.Backoff, maxNetBackoff,
				req.Partition, req.Superstep, try-1))
			if traced {
				m.RecordSpan(obs.Span{
					Parent: req.ParentSpan, Proc: obs.ProcMaster, Name: obs.SpanBackoff,
					Superstep: req.Superstep, Partition: req.Partition,
					Start: backStart.UnixNano(), Dur: int64(time.Since(backStart)),
					Retries: int64(prior + attempts),
				})
			}
			// A peer declared dead or draining mid-exchange (heartbeat miss
			// budget, drain frame) will not answer; stop burning the budget
			// here and let the caller fail over.
			if !t.cfg.NoFailover && !p.routable() {
				break
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, 0, attempts, fmt.Errorf("%w: partition %d superstep %d: %w",
				engine.ErrTransport, req.Partition, req.Superstep, err)
		}
		tryStart := time.Now()
		res, replyLen, err := p.roundTrip(ctx, req, seq, payload)
		tryDur := time.Since(tryStart)
		if traced {
			m.RecordSpan(obs.Span{
				Parent: req.ParentSpan, Proc: obs.ProcMaster, Name: obs.SpanRPC,
				Superstep: req.Superstep, Partition: req.Partition,
				Start: tryStart.UnixNano(), Dur: int64(tryDur),
				Bytes: int64(len(payload) + replyLen), Retries: int64(prior + attempts),
			})
		}
		if err == nil {
			return res, replyLen, attempts, nil
		}
		p.noteFailure()
		lastErr = err
		m.Tracef(obs.Warn, "transport", req.Superstep,
			"partition %d exchange attempt %d with %s failed: %v", req.Partition, try+1, p.addr, err)
	}
	return nil, 0, attempts, lastErr
}

// Close tears down every connection and stops the heartbeats. In-flight
// exchanges fail with ErrTransport.
func (t *TCP) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	close(t.stop)
	for _, p := range t.peers {
		p.teardownAny()
	}
	t.wg.Wait()
	return nil
}

// Resident implements engine.StatefulTransport: the TCP leg keeps partition
// state worker-resident unless the run forces the classic full-state
// exchange.
func (t *TCP) Resident() bool { return !t.cfg.ForceFullState }

// routesFor builds the peer-mesh routing table for a resident request about
// to be sent to peer pi: master-resident partitions stay "", the executing
// peer's own partitions route "." into its local frag store, everything
// else routes to the owning peer's address. Ownership is the current
// assignment — if a partition fails over later in the same superstep, its
// fragments land on the old owner, the deliver round comes up short there,
// and the engine replays (exactness is never at stake, only efficiency).
func (t *TCP) routesFor(req *engine.ExecRequest, pi int) []string {
	n := t.cfg.Fingerprint.Partitions
	route := make([]string, n)
	for dp := 0; dp < n; dp++ {
		if dp < len(req.LocalParts) && req.LocalParts[dp] {
			continue
		}
		if ai := t.assigned(dp); ai == pi {
			route[dp] = "."
		} else {
			route[dp] = t.peers[ai].addr
		}
	}
	return route
}

// lastExecPeer returns the peer holding partition p's resident state: the
// peer that executed its latest resident superstep, falling back to the
// nominal assignment before any exec happened.
func (t *TCP) lastExecPeer(p int) int {
	t.amu.Lock()
	pi, ok := t.lastExec[p]
	t.amu.Unlock()
	if !ok {
		return t.assigned(p)
	}
	return pi
}

// Deliver implements engine.StatefulTransport: it fans the delivery-barrier
// (or collect) round out to the workers holding the listed partitions, one
// concurrent exchange per worker, and merges the per-partition outcomes.
// A worker that cannot be reached within the retransmit budget leaves its
// partitions OK=false — the engine's cue to re-hydrate them from
// checkpoint + replay — so Deliver itself never fails the run.
func (t *TCP) Deliver(ctx context.Context, req *engine.DeliverRequest) (*engine.DeliverResult, error) {
	if t.closed.Load() {
		return nil, fmt.Errorf("%w: client closed", engine.ErrTransport)
	}
	out := &engine.DeliverResult{Parts: make([]engine.DeliverPart, len(req.Parts))}
	groups := map[int][]int{}
	for i, p := range req.Parts {
		out.Parts[i].Partition = p
		pi := t.lastExecPeer(p)
		groups[pi] = append(groups[pi], i)
	}
	var wg sync.WaitGroup
	for pi, idxs := range groups {
		wg.Add(1)
		go func(pi int, idxs []int) {
			defer wg.Done()
			sub := &engine.DeliverRequest{
				Superstep:   req.Superstep,
				CollectOnly: req.CollectOnly,
				Combine:     req.Combine,
				Parts:       make([]int, len(idxs)),
				TraceID:     req.TraceID,
				ParentSpan:  req.ParentSpan,
			}
			if !req.CollectOnly {
				sub.Expected = make([][]int64, len(idxs))
				sub.MasterFrags = make([][][]engine.OutMessage, len(idxs))
			}
			for j, k := range idxs {
				sub.Parts[j] = req.Parts[k]
				if !req.CollectOnly {
					sub.Expected[j] = req.Expected[k]
					sub.MasterFrags[j] = req.MasterFrags[k]
				}
			}
			res := t.deliverPeer(ctx, pi, sub)
			if res == nil {
				return
			}
			for j, k := range idxs {
				if j < len(res.Parts) && res.Parts[j].Partition == req.Parts[k] {
					out.Parts[k] = res.Parts[j]
				}
			}
		}(pi, idxs)
	}
	wg.Wait()
	return out, nil
}

// deliverPeer runs one worker's slice of a deliver round under the same
// retransmit budget as exec exchanges (the worker memoizes per-partition
// outcomes and dedups by seq, so retries never double-fold). Returns nil on
// failure; the caller's parts stay OK=false.
func (t *TCP) deliverPeer(ctx context.Context, pi int, sub *engine.DeliverRequest) *engine.DeliverResult {
	m := t.cfg.Metrics
	p := t.peers[pi]
	traced := sub.TraceID != 0 && m.SpansEnabled()
	payload := encodeDeliverRequest(sub)
	seq := t.seq.Add(1)
	start := time.Now()
	var reply []byte
	for try := 0; try <= t.cfg.MaxRetries; try++ {
		if try > 0 {
			m.Counter(obs.MetricNetRetransmits).Add(1)
			supervise.SleepCtx(ctx, supervise.BackoffDuration(t.cfg.Backoff, maxNetBackoff,
				sub.Parts[0], sub.Superstep, try-1))
			if !p.routable() {
				break
			}
		}
		if ctx.Err() != nil {
			return nil
		}
		r, _, err := p.call(ctx, frameDeliver, sub.Superstep, -1, seq, payload)
		if err == nil {
			reply = r
			break
		}
		p.noteFailure()
		m.Tracef(obs.Warn, "transport", sub.Superstep,
			"deliver round with %s attempt %d failed: %v", p.addr, try+1, err)
	}
	if traced {
		m.RecordSpan(obs.Span{
			Parent: sub.ParentSpan, Proc: obs.ProcMaster, Name: obs.SpanDeliver,
			Superstep: sub.Superstep, Partition: -1,
			Start: start.UnixNano(), Dur: int64(time.Since(start)),
			Bytes: int64(len(payload) + len(reply)),
		})
	}
	m.AddRPC(sub.Superstep, -1, int64(len(payload)+len(reply)), 0, time.Since(start))
	if reply == nil {
		return nil
	}
	p.noteSuccess()
	res, err := decodeDeliverResult(reply)
	if err != nil {
		m.Tracef(obs.Error, "transport", sub.Superstep, "deliver reply from %s: %v", p.addr, err)
		return nil
	}
	return res
}

// peer is one worker connection with its demux and pool-health state.
type peer struct {
	t    *TCP
	addr string

	mu      sync.Mutex
	conn    net.Conn
	w       *bufio.Writer
	gen     int // bumped per established connection; reader goroutines check it
	snappy  bool
	pending map[uint64]chan []byte
	hbMiss  int
	// Failover state machine (pool.go): healthy/suspect/dead/draining,
	// consecutive-failure count, and the superstep of the last revival
	// probe (dead peers are probed at most once per superstep).
	state    workerState
	fails    int
	probedSS int
}

func (p *peer) wrapErr(format string, args ...any) error {
	return fmt.Errorf("%w: peer %s: %s", engine.ErrTransport, p.addr, fmt.Sprintf(format, args...))
}

// ensure dials and handshakes if the peer is not connected. The reader
// goroutine it starts owns the receive side of the connection until it
// dies, at which point every pending exchange fails over to retransmit.
func (p *peer) ensure() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		return nil
	}
	if p.t.closed.Load() {
		return p.wrapErr("client closed")
	}
	conn, err := net.DialTimeout("tcp", p.addr, p.t.cfg.DialTimeout)
	if err != nil {
		return p.wrapErr("dial: %v", err)
	}
	snappy, err := p.handshake(conn)
	if err != nil {
		conn.Close()
		return err
	}
	p.snappy = snappy
	p.gen++
	m := p.t.cfg.Metrics
	if p.gen > 1 {
		m.Counter(obs.MetricNetReconnects).Add(1)
	}
	if p.state == stateDead || p.state == stateDraining {
		// A previously written-off worker passed a fresh fingerprint
		// handshake: re-admit it. Its reply-dedup cache is empty, which the
		// seq protocol tolerates — a retransmitted request recomputes and
		// returns the same bits.
		m.Counter(obs.MetricFailoverRejoins).Add(1)
		m.Tracef(obs.Info, "transport", -1, "peer %s rejoined the pool", p.addr)
	}
	p.state = stateHealthy
	p.fails = 0
	p.conn = conn
	p.w = bufio.NewWriter(conn)
	p.hbMiss = 0
	go p.readLoop(conn, p.gen)
	return nil
}

// handshake runs the versioned hello/welcome exchange on a fresh conn and
// returns whether both sides negotiated snap compression.
func (p *peer) handshake(conn net.Conn) (bool, error) {
	conn.SetDeadline(time.Now().Add(p.t.cfg.DialTimeout))
	defer conn.SetDeadline(time.Time{})
	caps := capSnappy
	if p.t.cfg.NoCompress {
		caps = 0
	}
	if _, err := writeFrame(conn, frameHello, 0, encodeHello(p.t.cfg.Fingerprint, caps)); err != nil {
		return false, p.wrapErr("handshake send: %v", err)
	}
	typ, _, payload, _, err := readFrame(bufio.NewReader(conn))
	if err != nil {
		return false, p.wrapErr("handshake recv: %v", err)
	}
	switch typ {
	case frameWelcome:
	case frameError:
		return false, p.wrapErr("handshake rejected: %s", payload)
	default:
		return false, p.wrapErr("handshake: unexpected frame type %d", typ)
	}
	fp, peerCaps, err := decodeHello(payload)
	if err != nil {
		return false, p.wrapErr("%v", err)
	}
	if fp != p.t.cfg.Fingerprint {
		return false, p.wrapErr("graph fingerprint mismatch: worker %+v, master %+v", fp, p.t.cfg.Fingerprint)
	}
	return caps&peerCaps&capSnappy != 0, nil
}

// readLoop owns conn's receive side: it dispatches result and pong frames
// to the exchange that registered their sequence number. On any read error
// it tears the connection down, failing every pending exchange promptly.
func (p *peer) readLoop(conn net.Conn, gen int) {
	r := bufio.NewReader(conn)
	for {
		typ, seq, payload, n, err := readFrame(r)
		if err != nil {
			p.teardown(conn, gen)
			return
		}
		m := p.t.cfg.Metrics
		m.Counter(obs.MetricNetMessagesRecv).Add(1)
		m.Counter(obs.MetricNetBytesRecv).Add(int64(n))
		if typ == frameSnap {
			ityp, dec, derr := unsnapOwned(payload)
			if derr != nil {
				m.Tracef(obs.Error, "transport", -1, "peer %s: %v", p.addr, derr)
				continue
			}
			typ, payload = ityp, dec
		}
		switch typ {
		case frameResult, framePong, frameDeliverRes:
			p.mu.Lock()
			ch := p.pending[seq]
			p.mu.Unlock()
			if ch != nil {
				select {
				case ch <- payload:
				default: // duplicate reply beyond the buffer: drop
				}
			}
		case frameDrain:
			// Graceful worker shutdown: it finished its in-flight request
			// and is deregistering. Stop routing to it; anything still
			// pending on this connection fails over when the close lands.
			p.markDraining()
		case frameError:
			m.Tracef(obs.Error, "transport", -1, "peer %s reported: %s", p.addr, payload)
		}
	}
}

// teardown closes conn and fails pending exchanges, but only if conn is
// still the peer's current connection of generation gen (a stale reader
// must not tear down its successor).
func (p *peer) teardown(conn net.Conn, gen int) {
	p.mu.Lock()
	if p.gen != gen || p.conn != conn {
		p.mu.Unlock()
		conn.Close()
		return
	}
	p.conn = nil
	p.w = nil
	for seq, ch := range p.pending {
		close(ch)
		delete(p.pending, seq)
	}
	p.mu.Unlock()
	conn.Close()
}

// teardownAny tears down whatever connection is current.
func (p *peer) teardownAny() {
	p.mu.Lock()
	conn, gen := p.conn, p.gen
	p.mu.Unlock()
	if conn != nil {
		p.teardown(conn, gen)
	}
}

// register creates the reply slot for seq. The channel is buffered so the
// read loop never blocks on a slow exchange (extra duplicates are dropped).
func (p *peer) register(seq uint64) chan []byte {
	ch := make(chan []byte, 2)
	p.mu.Lock()
	p.pending[seq] = ch
	p.mu.Unlock()
	return ch
}

func (p *peer) unregister(seq uint64) {
	p.mu.Lock()
	delete(p.pending, seq)
	p.mu.Unlock()
}

// send writes one frame on the current connection (establishing it first if
// needed) under the write lock.
func (p *peer) send(typ byte, seq uint64, payload []byte) error {
	if err := p.ensure(); err != nil {
		return err
	}
	p.mu.Lock()
	conn, gen, w := p.conn, p.gen, p.w
	if conn == nil {
		p.mu.Unlock()
		return p.wrapErr("connection lost")
	}
	wtyp, wpay, scratch := frameForSend(typ, payload, p.snappy, p.t.cfg.Metrics)
	n, err := writeFrame(w, wtyp, seq, wpay)
	if err == nil {
		err = w.Flush()
	}
	if scratch != nil {
		putFrameBuf(scratch)
	}
	p.mu.Unlock()
	if err != nil {
		p.teardown(conn, gen)
		return p.wrapErr("send: %v", err)
	}
	m := p.t.cfg.Metrics
	m.Counter(obs.MetricNetMessagesSent).Add(1)
	m.Counter(obs.MetricNetBytesSent).Add(int64(n))
	return nil
}

// roundTrip performs one request/reply exchange attempt under the message
// deadline, consulting the fault injector on both directions. Returns the
// reply payload length alongside the result for per-exchange wire-byte
// accounting.
func (p *peer) roundTrip(ctx context.Context, req *engine.ExecRequest, seq uint64, payload []byte) (*engine.ExecResult, int, error) {
	reply, n, err := p.call(ctx, frameExec, req.Superstep, req.Partition, seq, payload)
	if err != nil {
		return nil, 0, err
	}
	res, err := decodeExecResult(reply)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %w", engine.ErrTransport, err)
	}
	return res, n, nil
}

// call performs one request/reply frame exchange attempt of any type under
// the message deadline, consulting the fault injector on both directions.
// Returns the raw reply payload and its length.
func (p *peer) call(ctx context.Context, typ byte, ss, part int, seq uint64, payload []byte) ([]byte, int, error) {
	ch := p.register(seq)
	defer p.unregister(seq)

	inj := p.t.cfg.Fault
	act, ferr := inj.NetHit(ctx, fault.SiteNetSend, ss, part, int64(seq))
	if ferr != nil {
		return nil, 0, fmt.Errorf("%w: %w", engine.ErrTransport, ferr)
	}
	switch act {
	case fault.NetDrop:
		// Frame lost on the wire: send nothing, let the deadline fire.
	case fault.NetReset:
		p.teardownAny()
		return nil, 0, p.wrapErr("connection reset by injected fault")
	case fault.NetDup:
		if err := p.send(typ, seq, payload); err != nil {
			return nil, 0, err
		}
		fallthrough
	default:
		if err := p.send(typ, seq, payload); err != nil {
			return nil, 0, err
		}
	}

	timer := time.NewTimer(p.t.cfg.MessageDeadline)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, 0, p.wrapErr("exchange canceled: %v", ctx.Err())
		case <-timer.C:
			return nil, 0, p.wrapErr("no reply for seq %d within %v", seq, p.t.cfg.MessageDeadline)
		case reply, ok := <-ch:
			if !ok {
				return nil, 0, p.wrapErr("connection lost awaiting seq %d", seq)
			}
			act, ferr := inj.NetHit(ctx, fault.SiteNetRecv, ss, part, int64(seq))
			if ferr != nil {
				return nil, 0, fmt.Errorf("%w: %w", engine.ErrTransport, ferr)
			}
			switch act {
			case fault.NetDrop:
				// Reply lost on the wire: keep waiting for the deadline (a
				// duplicate may still land, exactly like a real lossy link).
				ch = p.register(seq)
				continue
			case fault.NetReset:
				p.teardownAny()
				return nil, 0, p.wrapErr("connection reset by injected fault")
			}
			return reply, len(reply), nil
		}
	}
}

// heartbeatLoop probes the peer at the configured interval. A pong must
// arrive within one interval; HeartbeatMisses consecutive misses declare
// the peer dead and tear down the connection so waiting exchanges fail into
// their retransmit path immediately.
func (p *peer) heartbeatLoop() {
	defer p.t.wg.Done()
	interval := p.t.cfg.HeartbeatInterval
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-p.t.stop:
			return
		case <-tick.C:
		}
		// send redials a torn-down peer, so a dead peer shows up here as a
		// failed dial and counts as a miss like an unanswered ping does.
		seq := p.t.seq.Add(1)
		ch := p.register(seq)
		missed := false
		if err := p.send(framePing, seq, nil); err != nil {
			missed = true
		} else {
			wait := time.NewTimer(interval)
			select {
			case _, ok := <-ch:
				missed = !ok
			case <-wait.C:
				missed = true
			case <-p.t.stop:
				wait.Stop()
				p.unregister(seq)
				return
			}
			wait.Stop()
		}
		p.unregister(seq)
		p.mu.Lock()
		if missed && len(p.pending) > 0 {
			// Exchanges are in flight on this connection: the worker may just
			// be busy computing (requests are served serially, so the pong is
			// queued behind them). Liveness of a loaded worker is arbitrated
			// by the message deadline, not the ping; heartbeats only declare
			// idle peers dead.
			p.mu.Unlock()
			continue
		}
		if missed {
			p.hbMiss++
		} else {
			p.hbMiss = 0
		}
		dead := p.hbMiss >= p.t.cfg.HeartbeatMisses
		if dead {
			p.hbMiss = 0
		}
		p.mu.Unlock()
		if missed {
			p.t.cfg.Metrics.Counter(obs.MetricNetHeartbeatMiss).Add(1)
		}
		if dead {
			// markDead tears the connection down, so waiting exchanges fail
			// into failover immediately instead of waiting out the deadline.
			p.markDead(fmt.Sprintf("missed %d heartbeats", p.t.cfg.HeartbeatMisses))
		}
	}
}
