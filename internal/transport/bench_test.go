package transport

import (
	"testing"

	"ariadne/internal/analytics"
	"ariadne/internal/engine"
	"ariadne/internal/gen"
	"ariadne/internal/obs"
)

// BenchmarkTransportRun compares a full PageRank run with partitions
// executing over TCP-loopback workers against the plain in-process run.
// The absolute numbers are loopback numbers, not cluster numbers; the
// benchjson transport_overhead ratio (tcp/inproc) is the gated,
// hardware-independent quantity — it bounds the serialization plus framing
// cost the transport seam adds per run.
func BenchmarkTransportRun(b *testing.B) {
	g, err := gen.RMAT(gen.DefaultRMAT(7, 6, 42))
	if err != nil {
		b.Fatal(err)
	}
	const parts = 4
	prog := func() engine.Program { return &analytics.PageRank{Iterations: 10} }
	run := func(b *testing.B, tr engine.Transport) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, err := engine.New(g, prog(), engine.Config{
				MaxSupersteps: 11,
				Partitions:    parts,
				Combiner:      analytics.SumCombiner,
				Transport:     tr,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("inproc", func(b *testing.B) { run(b, nil) })

	b.Run("tcp", func(b *testing.B) {
		x, err := engine.NewExecutor(g, prog(), engine.Config{Partitions: parts, Combiner: analytics.SumCombiner})
		if err != nil {
			b.Fatal(err)
		}
		w, err := NewWorker(x, "127.0.0.1:0", nil)
		if err != nil {
			b.Fatal(err)
		}
		go w.Serve()
		defer w.Close()
		tr, err := DialTCP(TCPConfig{
			Addrs: []string{w.Addr()},
			Fingerprint: Fingerprint{
				Partitions:  parts,
				NumVertices: g.NumVertices(),
				NumEdges:    g.NumEdges(),
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer tr.Close()
		run(b, tr)
	})
}

// BenchmarkTraceRun measures what distributed span tracing costs on top of
// an instrumented TCP-loopback run. Both legs carry a metrics registry (the
// honest baseline: anyone who would enable tracing already has metrics on);
// only the traced leg enables spans. The benchjson trace_overhead ratio
// (traced/untraced) is the gated quantity — tracing must stay within 5% of
// the untraced run. The graph is larger than BenchmarkTransportRun's
// because span cost is O(supersteps × partitions), independent of graph
// size — the gate bounds overhead at a realistic compute-to-exchange
// ratio, not on a toy graph where fixed costs dominate.
func BenchmarkTraceRun(b *testing.B) {
	g, err := gen.RMAT(gen.DefaultRMAT(11, 8, 42))
	if err != nil {
		b.Fatal(err)
	}
	const parts = 4
	prog := func() engine.Program { return &analytics.PageRank{Iterations: 10} }
	run := func(b *testing.B, spans bool) {
		b.Helper()
		m := obs.New()
		x, err := engine.NewExecutor(g, prog(), engine.Config{Partitions: parts, Combiner: analytics.SumCombiner})
		if err != nil {
			b.Fatal(err)
		}
		w, err := NewWorker(x, "127.0.0.1:0", nil)
		if err != nil {
			b.Fatal(err)
		}
		go w.Serve()
		defer w.Close()
		tr, err := DialTCP(TCPConfig{
			Addrs: []string{w.Addr()},
			Fingerprint: Fingerprint{
				Partitions:  parts,
				NumVertices: g.NumVertices(),
				NumEdges:    g.NumEdges(),
			},
			Metrics: m,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer tr.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh registry per iteration keeps the span collector from
			// accumulating across runs; the transport keeps the shared one
			// for its counters only.
			rm := obs.New()
			if spans {
				rm.EnableSpans()
			}
			e, err := engine.New(g, prog(), engine.Config{
				MaxSupersteps: 11,
				Partitions:    parts,
				Combiner:      analytics.SumCombiner,
				Transport:     tr,
				Metrics:       rm,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("untraced", func(b *testing.B) { run(b, false) })
	b.Run("traced", func(b *testing.B) { run(b, true) })
}
