package transport

import (
	"bytes"
	"io"

	"testing"

	"ariadne/internal/analytics"
	"ariadne/internal/engine"
	"ariadne/internal/gen"
	"ariadne/internal/obs"
)

// BenchmarkTransportRun compares a full PageRank run with partitions
// executing over TCP-loopback workers against the plain in-process run.
// The absolute numbers are loopback numbers, not cluster numbers; the
// benchjson ratios are the gated, hardware-independent quantities:
// transport_overhead (tcp/inproc run time — bounds what the seam adds with
// worker-resident state) and bytes_per_superstep_reduction (tcp-full/tcp
// wire bytes — how much the delta exchanges shrink the per-superstep
// traffic versus shipping full frontiers). The tcp3 leg exercises the
// 3-worker pool with worker-to-worker fragment routing; its wire-B/ss
// includes the mesh bytes.
func BenchmarkTransportRun(b *testing.B) {
	g, err := gen.RMAT(gen.DefaultRMAT(11, 8, 42))
	if err != nil {
		b.Fatal(err)
	}
	const (
		parts = 4
		steps = 11
	)
	prog := func() engine.Program { return &analytics.PageRank{Iterations: 10} }
	run := func(b *testing.B, tr engine.Transport, wire func() int64) {
		b.Helper()
		b.ReportAllocs()
		var start int64
		if wire != nil {
			start = wire()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, err := engine.New(g, prog(), engine.Config{
				MaxSupersteps: steps,
				Partitions:    parts,
				Combiner:      analytics.SumCombiner,
				Transport:     tr,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if wire != nil {
			b.ReportMetric(float64(wire()-start)/float64(b.N*steps), "wire-B/ss")
		}
	}
	tcpLeg := func(b *testing.B, nWorkers int, full bool) {
		b.Helper()
		m := obs.New()  // master-side wire counters
		wm := obs.New() // worker-side counters (mesh frag bytes land here)
		addrs := make([]string, nWorkers)
		for i := range addrs {
			x, err := engine.NewExecutor(g, prog(), engine.Config{Partitions: parts, Combiner: analytics.SumCombiner})
			if err != nil {
				b.Fatal(err)
			}
			w, err := NewWorker(x, "127.0.0.1:0", wm)
			if err != nil {
				b.Fatal(err)
			}
			go w.Serve()
			defer w.Close()
			addrs[i] = w.Addr()
		}
		tr, err := DialTCP(TCPConfig{
			Addrs: addrs,
			Fingerprint: Fingerprint{
				Partitions:  parts,
				NumVertices: g.NumVertices(),
				NumEdges:    g.NumEdges(),
			},
			ForceFullState: full,
			Metrics:        m,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer tr.Close()
		// Wire traffic = the master link (counted once, master-side) plus
		// the worker-to-worker mesh fragments (counted where they are sent;
		// wm's own sent/recv mirror the master link, so only its peer-bytes
		// counter contributes).
		run(b, tr, func() int64 {
			return m.Counter(obs.MetricNetBytesSent).Value() +
				m.Counter(obs.MetricNetBytesRecv).Value() +
				wm.Counter(obs.MetricNetPeerBytes).Value()
		})
	}

	b.Run("inproc", func(b *testing.B) { run(b, nil, nil) })
	b.Run("tcp", func(b *testing.B) { tcpLeg(b, 1, false) })
	b.Run("tcp-full", func(b *testing.B) { tcpLeg(b, 1, true) })
	b.Run("tcp3", func(b *testing.B) { tcpLeg(b, 3, false) })
}

// BenchmarkWireFrame pins the framing fast path. The write leg is the
// allocs/op gate (benchjson wire_frame_allocs): assembling and writing a
// frame must not allocate — the pooled single-buffer encode is the whole
// point of the sync.Pool in wire.go. The roundtrip leg adds the pooled read
// path (its release closure costs one small allocation per frame, accepted
// for the lifetime safety it buys).
func BenchmarkWireFrame(b *testing.B) {
	payload := make([]byte, 2048)
	for i := range payload {
		payload[i] = byte(i * 31)
	}

	b.Run("write", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			if _, err := writeFrame(io.Discard, frameExec, uint64(i), payload); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("roundtrip", func(b *testing.B) {
		var buf bytes.Buffer
		if _, err := writeFrame(&buf, frameExec, 7, payload); err != nil {
			b.Fatal(err)
		}
		frame := append([]byte(nil), buf.Bytes()...)
		rd := bytes.NewReader(frame)
		b.ReportAllocs()
		b.SetBytes(int64(len(frame)))
		for i := 0; i < b.N; i++ {
			rd.Reset(frame)
			_, _, _, _, release, err := readFramePooled(rd)
			if err != nil {
				b.Fatal(err)
			}
			release()
		}
	})
}

// BenchmarkTraceRun measures what distributed span tracing costs on top of
// an instrumented TCP-loopback run. Both legs carry a metrics registry (the
// honest baseline: anyone who would enable tracing already has metrics on);
// only the traced leg enables spans. The benchjson trace_overhead ratio
// (traced/untraced) is the gated quantity — tracing must stay within 5% of
// the untraced run. The graph is larger than BenchmarkTransportRun's
// because span cost is O(supersteps × partitions), independent of graph
// size — the gate bounds overhead at a realistic compute-to-exchange
// ratio, not on a toy graph where fixed costs dominate.
func BenchmarkTraceRun(b *testing.B) {
	g, err := gen.RMAT(gen.DefaultRMAT(11, 8, 42))
	if err != nil {
		b.Fatal(err)
	}
	const parts = 4
	prog := func() engine.Program { return &analytics.PageRank{Iterations: 10} }
	run := func(b *testing.B, spans bool) {
		b.Helper()
		m := obs.New()
		x, err := engine.NewExecutor(g, prog(), engine.Config{Partitions: parts, Combiner: analytics.SumCombiner})
		if err != nil {
			b.Fatal(err)
		}
		w, err := NewWorker(x, "127.0.0.1:0", nil)
		if err != nil {
			b.Fatal(err)
		}
		go w.Serve()
		defer w.Close()
		tr, err := DialTCP(TCPConfig{
			Addrs: []string{w.Addr()},
			Fingerprint: Fingerprint{
				Partitions:  parts,
				NumVertices: g.NumVertices(),
				NumEdges:    g.NumEdges(),
			},
			Metrics: m,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer tr.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh registry per iteration keeps the span collector from
			// accumulating across runs; the transport keeps the shared one
			// for its counters only.
			rm := obs.New()
			if spans {
				rm.EnableSpans()
			}
			e, err := engine.New(g, prog(), engine.Config{
				MaxSupersteps: 11,
				Partitions:    parts,
				Combiner:      analytics.SumCombiner,
				Transport:     tr,
				Metrics:       rm,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("untraced", func(b *testing.B) { run(b, false) })
	b.Run("traced", func(b *testing.B) { run(b, true) })
}
