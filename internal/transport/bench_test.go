package transport

import (
	"testing"

	"ariadne/internal/analytics"
	"ariadne/internal/engine"
	"ariadne/internal/gen"
)

// BenchmarkTransportRun compares a full PageRank run with partitions
// executing over TCP-loopback workers against the plain in-process run.
// The absolute numbers are loopback numbers, not cluster numbers; the
// benchjson transport_overhead ratio (tcp/inproc) is the gated,
// hardware-independent quantity — it bounds the serialization plus framing
// cost the transport seam adds per run.
func BenchmarkTransportRun(b *testing.B) {
	g, err := gen.RMAT(gen.DefaultRMAT(7, 6, 42))
	if err != nil {
		b.Fatal(err)
	}
	const parts = 4
	prog := func() engine.Program { return &analytics.PageRank{Iterations: 10} }
	run := func(b *testing.B, tr engine.Transport) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, err := engine.New(g, prog(), engine.Config{
				MaxSupersteps: 11,
				Partitions:    parts,
				Combiner:      analytics.SumCombiner,
				Transport:     tr,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("inproc", func(b *testing.B) { run(b, nil) })

	b.Run("tcp", func(b *testing.B) {
		x, err := engine.NewExecutor(g, prog(), engine.Config{Partitions: parts, Combiner: analytics.SumCombiner})
		if err != nil {
			b.Fatal(err)
		}
		w, err := NewWorker(x, "127.0.0.1:0", nil)
		if err != nil {
			b.Fatal(err)
		}
		go w.Serve()
		defer w.Close()
		tr, err := DialTCP(TCPConfig{
			Addrs: []string{w.Addr()},
			Fingerprint: Fingerprint{
				Partitions:  parts,
				NumVertices: g.NumVertices(),
				NumEdges:    g.NumEdges(),
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer tr.Close()
		run(b, tr)
	})
}
