// Worker-pool failover: per-peer health state and the partition->worker
// assignment table the master rewrites mid-run.
//
// Every peer carries a circuit-breaker state machine fed by exchange
// outcomes, heartbeat liveness, and drain notifications:
//
//	healthy --failed attempt--> suspect --budget exhausted / missed
//	heartbeats--> dead --fresh handshake--> healthy (a "rejoin")
//
// plus draining, entered when the worker announces a graceful shutdown
// (frameDrain) — not routable, but not an error either. healthy and suspect
// peers are routable; dead and draining peers are skipped by routing and
// re-probed at most once per superstep (and by the heartbeat redial), so a
// restarted worker is re-admitted within a superstep of coming back.
//
// Exec routes a partition to its assigned peer; when that peer is not
// routable — or exhausts its retransmit budget — the partition *fails over*:
// the assignment table is rewritten to a surviving peer and the same encoded
// request (same seq) is re-sent there. Because an ExecRequest is a pure
// function of its payload and the master owns all state, any worker computes
// it bit-identically, so failover loses neither results nor provenance
// capture. Only when every peer has been tried does Exec return ErrTransport,
// which is what routes the engine into its pin-local + capture-shed ladder.
package transport

import (
	"time"

	"ariadne/internal/engine"
	"ariadne/internal/obs"
)

// workerState is the health of one peer in the pool.
type workerState int

const (
	stateHealthy workerState = iota
	stateSuspect
	stateDead
	stateDraining
)

func (s workerState) String() string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateSuspect:
		return "suspect"
	case stateDead:
		return "dead"
	case stateDraining:
		return "draining"
	}
	return "unknown"
}

// routable reports whether the peer should receive new exchanges: healthy or
// suspect (a suspect peer is still the fastest path if its next attempt
// lands — failover waits for the budget, not the first hiccup).
func (p *peer) routable() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state == stateHealthy || p.state == stateSuspect
}

// noteFailure records one failed exchange attempt: healthy -> suspect.
// Escalation to dead happens only when the whole retransmit budget is gone
// (markDead), so a single lost frame never triggers a failover.
func (p *peer) noteFailure() {
	p.mu.Lock()
	if p.state == stateHealthy {
		p.state = stateSuspect
	}
	p.fails++
	p.mu.Unlock()
}

// noteSuccess clears the breaker: any state -> healthy. A success on a peer
// the pool had written off (possible when a stale "dead" verdict raced a
// recovery) restores it without ceremony.
func (p *peer) noteSuccess() {
	p.mu.Lock()
	p.state = stateHealthy
	p.fails = 0
	p.mu.Unlock()
}

// markDead declares the peer dead (reason is for the trace). Only healthy
// and suspect peers transition — a draining peer already deregistered
// voluntarily and a dead one is dead — so each death is counted once. The
// connection is torn down with the verdict: pending exchanges fail fast
// into their failover path, and the only way back into the pool is a fresh
// dial and fingerprint handshake (ensure), which is what counts a rejoin.
func (p *peer) markDead(reason string) {
	p.mu.Lock()
	if p.state == stateDead || p.state == stateDraining {
		p.mu.Unlock()
		return
	}
	p.state = stateDead
	p.mu.Unlock()
	m := p.t.cfg.Metrics
	m.Counter(obs.MetricFailoverDeaths).Add(1)
	m.Tracef(obs.Warn, "transport", -1, "peer %s declared dead: %s", p.addr, reason)
	p.teardownAny()
}

// markDraining handles a drain notification: the worker finished its
// in-flight work and is deregistering, so stop routing to it without
// charging a failure.
func (p *peer) markDraining() {
	p.mu.Lock()
	if p.state == stateDraining {
		p.mu.Unlock()
		return
	}
	p.state = stateDraining
	p.mu.Unlock()
	m := p.t.cfg.Metrics
	m.Counter(obs.MetricFailoverDrains).Add(1)
	m.Tracef(obs.Info, "transport", -1, "peer %s draining; routing its partitions elsewhere", p.addr)
}

// assigned returns the peer index currently serving partition part. The
// table starts at the static part % len(peers) rule and is rewritten by
// reassign on failover.
func (t *TCP) assigned(part int) int {
	t.amu.Lock()
	pi, ok := t.assign[part]
	t.amu.Unlock()
	if !ok {
		pi = part % len(t.peers)
	}
	return pi
}

// reassign rewrites the assignment table after a failover and records it:
// counter, trace line, and (when the request is traced) a failover marker
// span under the partition's exchange span.
func (t *TCP) reassign(req *engine.ExecRequest, from, to int) {
	t.amu.Lock()
	t.assign[req.Partition] = to
	t.amu.Unlock()
	m := t.cfg.Metrics
	m.Counter(obs.MetricFailoverReassignments).Add(1)
	m.Tracef(obs.Warn, "transport", req.Superstep, "partition %d failing over: %s -> %s",
		req.Partition, t.peers[from].addr, t.peers[to].addr)
	if req.TraceID != 0 && m.SpansEnabled() {
		m.RecordSpan(obs.Span{
			Parent: req.ParentSpan, Proc: obs.ProcMaster, Name: obs.SpanFailover,
			Superstep: req.Superstep, Partition: req.Partition,
			Start: time.Now().UnixNano(),
		})
	}
}

// route picks the peer for this exchange, skipping peers already tried by
// this Exec call. Preference order: the assigned peer, then the remaining
// peers scanning upward from it (deterministic, so concurrent partitions
// spread over survivors the same way the static rule spread them over the
// full pool). A non-routable candidate gets one revival probe per superstep
// (see usable). Returns -1 when no peer can take the request — the signal
// for the engine's pin-local fallback.
func (t *TCP) route(req *engine.ExecRequest, tried []bool) int {
	pi := t.assigned(req.Partition)
	if t.cfg.NoFailover {
		if tried[pi] {
			return -1
		}
		return pi
	}
	if !tried[pi] && t.usable(pi, req.Superstep) {
		return pi
	}
	for k := 1; k <= len(t.peers); k++ {
		j := (pi + k) % len(t.peers)
		if tried[j] || !t.usable(j, req.Superstep) {
			continue
		}
		t.reassign(req, pi, j)
		return j
	}
	return -1
}

// usable reports whether peer i can take an exchange now: routable, or a
// dead/draining peer revived by a rejoin probe. Probes are rate-limited to
// one per peer per superstep — a dial attempt against a still-down address
// costs up to DialTimeout, and the engine's supervised retries would
// otherwise pay it repeatedly within one superstep. A probe that lands runs
// the full fingerprint handshake (ensure), so a restarted worker re-enters
// the pool exactly as strictly vetted as it first joined.
func (t *TCP) usable(i, ss int) bool {
	p := t.peers[i]
	if p.routable() {
		return true
	}
	p.mu.Lock()
	if p.probedSS == ss {
		p.mu.Unlock()
		return false
	}
	p.probedSS = ss
	p.mu.Unlock()
	if p.ensure() != nil {
		return false
	}
	return p.routable()
}
