package transport

import (
	"reflect"
	"testing"

	"ariadne/internal/engine"
	"ariadne/internal/obs"
	"ariadne/internal/value"
)

// Wire v2: trace context rides in every ExecRequest, and worker-side spans
// piggyback on every ExecResult — including crash results, whose span
// section is simply empty.

func TestWireTraceContextRoundTrip(t *testing.T) {
	req := &engine.ExecRequest{
		Superstep: 2, Partition: 0,
		Active:     []engine.VertexID{3},
		Values:     []value.Value{value.NewFloat(1)},
		PrevActive: []int32{-1},
		Inbox:      [][]engine.IncomingMessage{nil},
		TraceID:    0xdeadbeef, ParentSpan: 77,
	}
	rt, err := decodeExecRequest(encodeExecRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if rt.TraceID != req.TraceID || rt.ParentSpan != req.ParentSpan {
		t.Fatalf("trace context lost: got (%#x, %d), want (%#x, %d)",
			rt.TraceID, rt.ParentSpan, req.TraceID, req.ParentSpan)
	}
	if !reflect.DeepEqual(req, rt) {
		t.Fatalf("roundtrip mismatch:\n  in  %+v\n  out %+v", req, rt)
	}
}

func TestWireResultSpanRoundTrip(t *testing.T) {
	res := &engine.ExecResult{
		Partition: 1,
		Computed:  []engine.VertexID{4},
		NewValues: []value.Value{value.NewFloat(0.5)},
		Outbox:    [][]engine.OutMessage{nil},
		Spans: []obs.Span{
			{TraceID: 9, Parent: 4, Proc: "worker:a", Name: obs.SpanDecode,
				Superstep: 2, Partition: 1, Start: 12345, Dur: 10, Bytes: 99},
			{TraceID: 9, Parent: 4, Proc: "worker:a", Name: obs.SpanWorkerCompute,
				Superstep: 2, Partition: 1, Start: 12355, Dur: 20, Tuples: 1},
		},
	}
	rt, err := decodeExecResult(encodeExecResult(res))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, rt) {
		t.Fatalf("roundtrip mismatch:\n  in  %+v\n  out %+v", res, rt)
	}

	// Crash results carry an (empty) span section too — the decoder must not
	// trip over it.
	crash := &engine.ExecResult{Partition: 0, Crash: &engine.RemoteCrash{
		Vertex: 1, Superstep: 3, Message: "boom",
	}}
	rt, err = decodeExecResult(encodeExecResult(crash))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(crash, rt) {
		t.Fatalf("crash roundtrip mismatch:\n  in  %+v\n  out %+v", crash, rt)
	}

	// Untraced results must encode a zero-length span section, not omit it.
	plain := &engine.ExecResult{Partition: 0, Computed: []engine.VertexID{}, NewValues: []value.Value{}, Outbox: [][]engine.OutMessage{}}
	rt, err = decodeExecResult(encodeExecResult(plain))
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Spans) != 0 {
		t.Fatalf("untraced result grew spans: %+v", rt.Spans)
	}
}
