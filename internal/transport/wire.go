// Package transport moves partition superstep execution across a wire. It
// ships the two legs behind the engine's Transport seam: Local, which calls
// an in-process Executor directly (the seed topology), and TCP, a
// master-side client that sends each partition's ExecRequest to a worker
// process over a length-prefixed, CRC-framed, versioned protocol and
// survives a faulty network — per-message deadlines, bounded retransmit
// with the supervision backoff policy, heartbeat liveness, reconnects, and
// receiver-side dedup of at-least-once deliveries.
//
// The wire format reuses the repo's binary conventions: frames are
//
//	u32 length | u32 CRC-32 (IEEE) | body
//
// like the checkpoint format's record framing, and bodies are value.Blob
// encodings, so every Value crosses the wire through the same bit-exact
// codec the spill and checkpoint files use — which is what keeps a TCP run
// bit-identical to an in-process one.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"ariadne/internal/engine"
	"ariadne/internal/obs"
	"ariadne/internal/value"
)

// Version is the protocol version exchanged in the handshake. A master and
// worker must agree exactly; there is no cross-version negotiation.
// Version 2 adds the trace context (trace ID + parent span ID) trailing
// every ExecRequest and a span section trailing every ExecResult, so
// distributed tracing needs no side channel.
const Version = 2

// maxFrame bounds a frame body so a corrupt length prefix fails fast
// instead of provoking a giant allocation.
const maxFrame = 1 << 30

// Frame types.
const (
	frameHello   byte = 1 // master -> worker: version + graph fingerprint
	frameWelcome byte = 2 // worker -> master: handshake accepted (echoes fingerprint)
	frameExec    byte = 3 // master -> worker: ExecRequest
	frameResult  byte = 4 // worker -> master: ExecResult
	framePing    byte = 5 // master -> worker: liveness probe
	framePong    byte = 6 // worker -> master: liveness ack
	frameError   byte = 7 // worker -> master: protocol-level failure (text)
	frameDrain   byte = 8 // worker -> master: draining; route new work elsewhere
)

var errBadFrame = errors.New("transport: corrupt frame")

// writeFrame writes one frame: header (length + CRC over the body), then
// body = type byte, uvarint seq, payload.
func writeFrame(w io.Writer, typ byte, seq uint64, payload []byte) (int, error) {
	head := make([]byte, 1, 11)
	head[0] = typ
	head = binary.AppendUvarint(head, seq)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(head)+len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(head)
	crc.Write(payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc.Sum32())
	n := 0
	for _, b := range [][]byte{hdr[:], head, payload} {
		k, err := w.Write(b)
		n += k
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// readFrame reads and verifies one frame, returning its type, sequence
// number, and payload.
func readFrame(r io.Reader) (typ byte, seq uint64, payload []byte, n int, err error) {
	var hdr [8]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, 0, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > maxFrame {
		return 0, 0, nil, 0, fmt.Errorf("%w: body length %d", errBadFrame, length)
	}
	body := make([]byte, length)
	if _, err = io.ReadFull(r, body); err != nil {
		return 0, 0, nil, 0, err
	}
	if got := crc32.ChecksumIEEE(body); got != want {
		return 0, 0, nil, 0, fmt.Errorf("%w: CRC mismatch (got %08x want %08x)", errBadFrame, got, want)
	}
	typ = body[0]
	seq, k := binary.Uvarint(body[1:])
	if k <= 0 {
		return 0, 0, nil, 0, fmt.Errorf("%w: truncated seq", errBadFrame)
	}
	return typ, seq, body[1+k:], 8 + int(length), nil
}

// Fingerprint identifies the run a connection belongs to: protocol version,
// partition count, and graph shape. Master and worker must have loaded the
// same graph with the same partitioning or results would silently diverge —
// the handshake turns that into an immediate, explicit error.
type Fingerprint struct {
	Partitions  int
	NumVertices int
	NumEdges    int
}

func (f Fingerprint) encode() []byte {
	b := value.NewBlob()
	b.Uvarint(Version)
	b.Uvarint(uint64(f.Partitions))
	b.Uvarint(uint64(f.NumVertices))
	b.Uvarint(uint64(f.NumEdges))
	return b.Bytes()
}

func decodeFingerprint(p []byte) (Fingerprint, error) {
	r := value.NewBlobReader(p)
	v := r.Uvarint()
	f := Fingerprint{
		Partitions:  int(r.Uvarint()),
		NumVertices: int(r.Uvarint()),
		NumEdges:    int(r.Uvarint()),
	}
	if r.Err() != nil {
		return f, fmt.Errorf("transport: corrupt handshake: %w", r.Err())
	}
	if v != Version {
		return f, fmt.Errorf("transport: protocol version mismatch: peer %d, ours %d", v, Version)
	}
	return f, nil
}

// encodeExecRequest serializes a partition superstep request.
func encodeExecRequest(req *engine.ExecRequest) []byte {
	b := value.NewBlob()
	b.Uvarint(uint64(req.Superstep))
	b.Uvarint(uint64(req.Partition))
	b.Bool(req.Observing)
	b.Bool(req.Combine)
	b.Uvarint(uint64(len(req.Active)))
	for i, v := range req.Active {
		b.Uvarint(uint64(v))
		b.Value(req.Values[i])
		b.Int(int64(req.PrevActive[i]))
	}
	for _, msgs := range req.Inbox {
		b.Uvarint(uint64(len(msgs)))
		for _, m := range msgs {
			b.Uvarint(uint64(m.Src))
			b.Value(m.Val)
		}
	}
	// Aggregators in sorted-name order for a canonical encoding.
	names := make([]string, 0, len(req.Agg))
	for name := range req.Agg {
		names = append(names, name)
	}
	sortStrings(names)
	b.Uvarint(uint64(len(names)))
	for _, name := range names {
		b.String(name)
		b.Float(req.Agg[name])
	}
	// v2: trace context (both zero when span tracing is off).
	b.Uvarint(req.TraceID)
	b.Uvarint(req.ParentSpan)
	return b.Bytes()
}

func decodeExecRequest(p []byte) (*engine.ExecRequest, error) {
	r := value.NewBlobReader(p)
	req := &engine.ExecRequest{
		Superstep: int(r.Uvarint()),
		Partition: int(r.Uvarint()),
		Observing: r.Bool(),
		Combine:   r.Bool(),
	}
	n := r.Count()
	req.Active = make([]engine.VertexID, n)
	req.Values = make([]value.Value, n)
	req.PrevActive = make([]int32, n)
	for i := 0; i < n; i++ {
		req.Active[i] = engine.VertexID(r.Uvarint())
		req.Values[i] = r.Value()
		req.PrevActive[i] = int32(r.Int())
	}
	req.Inbox = make([][]engine.IncomingMessage, n)
	for i := 0; i < n; i++ {
		k := r.Count()
		if k == 0 {
			continue
		}
		msgs := make([]engine.IncomingMessage, k)
		for j := 0; j < k; j++ {
			msgs[j] = engine.IncomingMessage{Src: engine.VertexID(r.Uvarint()), Val: r.Value()}
		}
		req.Inbox[i] = msgs
	}
	if k := r.Count(); k > 0 {
		req.Agg = make(map[string]float64, k)
		for j := 0; j < k; j++ {
			name := r.String()
			req.Agg[name] = r.Float()
		}
	}
	req.TraceID = r.Uvarint()
	req.ParentSpan = r.Uvarint()
	if r.Err() != nil {
		return nil, fmt.Errorf("transport: corrupt exec request: %w", r.Err())
	}
	return req, nil
}

// encodeExecResult serializes a completed partition superstep: the result
// body followed by the v2 span section (always present, count 0 when the
// run is untraced).
func encodeExecResult(res *engine.ExecResult) []byte {
	return appendSpanSection(encodeExecResultBody(res), res.Spans)
}

// appendSpanSection appends the piggybacked worker spans after an encoded
// result body. Split from the body encoder so the worker can time the body
// encode and then attach the span that measured it.
func appendSpanSection(body []byte, spans []obs.Span) []byte {
	b := value.NewBlob()
	obs.EncodeSpans(b, spans)
	return append(body, b.Bytes()...)
}

// encodeExecResultBody serializes a completed partition superstep without
// the trailing span section.
func encodeExecResultBody(res *engine.ExecResult) []byte {
	b := value.NewBlob()
	b.Uvarint(uint64(res.Partition))
	b.Bool(res.Crash != nil)
	if c := res.Crash; c != nil {
		b.Uvarint(uint64(c.Vertex))
		b.Uvarint(uint64(c.Superstep))
		b.String(c.Message)
		b.Bool(c.Panic)
		b.Bool(c.Injected)
		b.Bool(c.Deadline)
		b.Bool(c.Canceled)
		return b.Bytes()
	}
	b.Uvarint(uint64(len(res.Computed)))
	for i, v := range res.Computed {
		b.Uvarint(uint64(v))
		b.Value(res.NewValues[i])
	}
	b.Uvarint(uint64(len(res.Outbox)))
	for _, msgs := range res.Outbox {
		b.Uvarint(uint64(len(msgs)))
		for _, m := range msgs {
			b.Uvarint(uint64(m.Src))
			b.Uvarint(uint64(m.Dst))
			b.Value(m.Val)
		}
	}
	b.Uvarint(uint64(len(res.Records)))
	for i := range res.Records {
		rec := &res.Records[i]
		b.Uvarint(uint64(rec.ID))
		b.Uvarint(uint64(rec.Superstep))
		b.Int(int64(rec.PrevActive))
		b.Value(rec.OldValue)
		b.Value(rec.NewValue)
		b.Uvarint(uint64(len(rec.Received)))
		for _, m := range rec.Received {
			b.Uvarint(uint64(m.Src))
			b.Value(m.Val)
		}
		b.Uvarint(uint64(len(rec.Sent)))
		for _, m := range rec.Sent {
			b.Uvarint(uint64(m.Dst))
			b.Value(m.Val)
		}
		b.Uvarint(uint64(len(rec.Emitted)))
		for _, f := range rec.Emitted {
			b.String(f.Table)
			b.Uvarint(uint64(len(f.Args)))
			for _, a := range f.Args {
				b.Value(a)
			}
		}
	}
	b.Int(res.Sent)
	b.Int(res.CombinedSender)
	b.Uvarint(uint64(len(res.Agg)))
	for _, u := range res.Agg {
		b.String(u.Name)
		b.Uvarint(uint64(u.Op))
		b.Float(u.Val)
		b.Int(u.N)
	}
	return b.Bytes()
}

func decodeExecResult(p []byte) (*engine.ExecResult, error) {
	r := value.NewBlobReader(p)
	res := &engine.ExecResult{Partition: int(r.Uvarint())}
	if r.Bool() {
		res.Crash = &engine.RemoteCrash{
			Vertex:    engine.VertexID(r.Uvarint()),
			Superstep: int(r.Uvarint()),
			Message:   r.String(),
			Panic:     r.Bool(),
			Injected:  r.Bool(),
			Deadline:  r.Bool(),
			Canceled:  r.Bool(),
		}
		res.Spans, _ = obs.DecodeSpans(r)
		if r.Err() != nil {
			return nil, fmt.Errorf("transport: corrupt exec result: %w", r.Err())
		}
		return res, nil
	}
	n := r.Count()
	res.Computed = make([]engine.VertexID, n)
	res.NewValues = make([]value.Value, n)
	for i := 0; i < n; i++ {
		res.Computed[i] = engine.VertexID(r.Uvarint())
		res.NewValues[i] = r.Value()
	}
	nParts := r.Count()
	res.Outbox = make([][]engine.OutMessage, nParts)
	for dp := 0; dp < nParts; dp++ {
		k := r.Count()
		if k == 0 {
			continue
		}
		msgs := make([]engine.OutMessage, k)
		for j := 0; j < k; j++ {
			msgs[j] = engine.OutMessage{
				Src: engine.VertexID(r.Uvarint()),
				Dst: engine.VertexID(r.Uvarint()),
				Val: r.Value(),
			}
		}
		res.Outbox[dp] = msgs
	}
	if nRecs := r.Count(); nRecs > 0 {
		res.Records = make([]engine.VertexRecord, nRecs)
		for i := 0; i < nRecs; i++ {
			rec := &res.Records[i]
			rec.ID = engine.VertexID(r.Uvarint())
			rec.Superstep = int(r.Uvarint())
			rec.PrevActive = int(r.Int())
			rec.OldValue = r.Value()
			rec.NewValue = r.Value()
			if k := r.Count(); k > 0 {
				rec.Received = make([]engine.IncomingMessage, k)
				for j := 0; j < k; j++ {
					rec.Received[j] = engine.IncomingMessage{Src: engine.VertexID(r.Uvarint()), Val: r.Value()}
				}
			}
			if k := r.Count(); k > 0 {
				rec.Sent = make([]engine.SentMessage, k)
				for j := 0; j < k; j++ {
					rec.Sent[j] = engine.SentMessage{Dst: engine.VertexID(r.Uvarint()), Val: r.Value()}
				}
			}
			if k := r.Count(); k > 0 {
				rec.Emitted = make([]engine.ProvFact, k)
				for j := 0; j < k; j++ {
					rec.Emitted[j].Table = r.String()
					if na := r.Count(); na > 0 {
						rec.Emitted[j].Args = make([]value.Value, na)
						for a := 0; a < na; a++ {
							rec.Emitted[j].Args[a] = r.Value()
						}
					}
				}
			}
		}
	}
	res.Sent = r.Int()
	res.CombinedSender = r.Int()
	if k := r.Count(); k > 0 {
		res.Agg = make([]engine.AggUpdate, k)
		for j := 0; j < k; j++ {
			res.Agg[j] = engine.AggUpdate{
				Name: r.String(),
				Op:   engine.AggOp(r.Uvarint()),
				Val:  r.Float(),
				N:    r.Int(),
			}
		}
	}
	res.Spans, _ = obs.DecodeSpans(r)
	if r.Err() != nil {
		return nil, fmt.Errorf("transport: corrupt exec result: %w", r.Err())
	}
	return res, nil
}

// sortStrings is an insertion sort — aggregator maps hold a handful of
// names, not worth pulling in sort for an interface allocation per call.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
