// Package transport moves partition superstep execution across a wire. It
// ships the two legs behind the engine's Transport seam: Local, which calls
// an in-process Executor directly (the seed topology), and TCP, a
// master-side client that sends each partition's ExecRequest to a worker
// process over a length-prefixed, CRC-framed, versioned protocol and
// survives a faulty network — per-message deadlines, bounded retransmit
// with the supervision backoff policy, heartbeat liveness, reconnects, and
// receiver-side dedup of at-least-once deliveries.
//
// The wire format reuses the repo's binary conventions: frames are
//
//	u32 length | u32 CRC-32 (IEEE) | body
//
// like the checkpoint format's record framing, and bodies are value.Blob
// encodings, so every Value crosses the wire through the same bit-exact
// codec the spill and checkpoint files use — which is what keeps a TCP run
// bit-identical to an in-process one.
//
// Version 3 (PR 9) makes workers stateful: exec requests carry a mode
// (classic full-state, delta, or seed), a peer-mesh route, deliver rounds
// move the barrier to the workers, peer frag frames carry worker-to-worker
// outbox columns, and any large frame may travel snap-compressed inside a
// frameSnap envelope when both sides negotiated the capability at
// handshake.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"ariadne/internal/engine"
	"ariadne/internal/obs"
	"ariadne/internal/value"
)

// Version is the protocol version exchanged in the handshake. A master and
// worker must agree exactly; there is no cross-version negotiation.
// Version 2 added the trace context trailing every ExecRequest and a span
// section trailing every ExecResult. Version 3 adds exec modes (delta/seed
// exchanges for worker-resident state), deliver and peer-frag frames, the
// handshake capability mask, and snap-compressed frames.
const Version = 3

// maxFrame bounds a frame body so a corrupt length prefix fails fast
// instead of provoking a giant allocation.
const maxFrame = 1 << 30

// Frame types.
const (
	frameHello      byte = 1  // master -> worker: version + graph fingerprint + caps
	frameWelcome    byte = 2  // worker -> master: handshake accepted (echoes fingerprint + caps)
	frameExec       byte = 3  // master -> worker: ExecRequest
	frameResult     byte = 4  // worker -> master: ExecResult
	framePing       byte = 5  // master -> worker: liveness probe
	framePong       byte = 6  // worker -> master: liveness ack
	frameError      byte = 7  // worker -> master: protocol-level failure (text)
	frameDrain      byte = 8  // worker -> master: draining; route new work elsewhere
	frameDeliver    byte = 9  // master -> worker: DeliverRequest (barrier / collect round)
	frameDeliverRes byte = 10 // worker -> master: DeliverResult
	framePeerFrag   byte = 11 // worker -> worker: one outbox column over the mesh
	framePeerAck    byte = 12 // worker -> worker: frag stored
	frameSnap       byte = 13 // either direction: [inner type | snap block] envelope
)

// Handshake capability bits. The effective capability set of a connection
// is the AND of what both sides offered; unknown bits are ignored, so new
// capabilities stay backward-compatible within a version.
const capSnappy uint64 = 1 << 0

// snapMinCompress is the smallest payload worth compressing: below this the
// tag overhead and the extra copy cost more than the bytes saved.
const snapMinCompress = 1024

var errBadFrame = errors.New("transport: corrupt frame")

// frameBufs pools frame scratch buffers: writeFrame's single-write encode
// buffer, the pooled read path's body buffers, and the compressor's
// envelope scratch. Steady-state framing allocates nothing (the
// BenchmarkWireFrame allocs/op pin).
var frameBufs = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func getFrameBuf() *[]byte  { return frameBufs.Get().(*[]byte) }
func putFrameBuf(b *[]byte) { frameBufs.Put(b) }

// writeFrame writes one frame: header (length + CRC over the body), then
// body = type byte, uvarint seq, payload. The frame is assembled in one
// pooled buffer and written with a single Write, so a concurrent writer
// under an external mutex never interleaves partial frames and the fast
// path allocates nothing.
func writeFrame(w io.Writer, typ byte, seq uint64, payload []byte) (int, error) {
	bp := getFrameBuf()
	buf := (*bp)[:0]
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = append(buf, typ)
	buf = binary.AppendUvarint(buf, seq)
	buf = append(buf, payload...)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(buf)-8))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(buf[8:]))
	n, err := w.Write(buf)
	*bp = buf
	putFrameBuf(bp)
	return n, err
}

// readFrame reads and verifies one frame, returning its type, sequence
// number, and payload. The payload is freshly allocated and owned by the
// caller — use readFramePooled where the payload's lifetime ends at decode.
func readFrame(r io.Reader) (typ byte, seq uint64, payload []byte, n int, err error) {
	var hdr [8]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, 0, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > maxFrame {
		return 0, 0, nil, 0, fmt.Errorf("%w: body length %d", errBadFrame, length)
	}
	body := make([]byte, length)
	if _, err = io.ReadFull(r, body); err != nil {
		return 0, 0, nil, 0, err
	}
	if got := crc32.ChecksumIEEE(body); got != want {
		return 0, 0, nil, 0, fmt.Errorf("%w: CRC mismatch (got %08x want %08x)", errBadFrame, got, want)
	}
	typ = body[0]
	seq, k := binary.Uvarint(body[1:])
	if k <= 0 {
		return 0, 0, nil, 0, fmt.Errorf("%w: truncated seq", errBadFrame)
	}
	return typ, seq, body[1+k:], 8 + int(length), nil
}

// readFramePooled is readFrame with a pooled body buffer: the returned
// payload is only valid until release is called, which the caller must do
// exactly once after decoding (the blob codec copies everything out, so
// nothing aliases the buffer afterwards). release is non-nil iff err is
// nil.
func readFramePooled(r io.Reader) (typ byte, seq uint64, payload []byte, n int, release func(), err error) {
	var hdr [8]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, 0, nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > maxFrame {
		return 0, 0, nil, 0, nil, fmt.Errorf("%w: body length %d", errBadFrame, length)
	}
	bp := getFrameBuf()
	body := *bp
	if cap(body) < int(length) {
		body = make([]byte, length)
	} else {
		body = body[:length]
	}
	*bp = body
	release = func() { putFrameBuf(bp) }
	if _, err = io.ReadFull(r, body); err != nil {
		release()
		return 0, 0, nil, 0, nil, err
	}
	if got := crc32.ChecksumIEEE(body); got != want {
		release()
		return 0, 0, nil, 0, nil, fmt.Errorf("%w: CRC mismatch (got %08x want %08x)", errBadFrame, got, want)
	}
	typ = body[0]
	seq, k := binary.Uvarint(body[1:])
	if k <= 0 {
		release()
		return 0, 0, nil, 0, nil, fmt.Errorf("%w: truncated seq", errBadFrame)
	}
	return typ, seq, body[1+k:], 8 + int(length), release, nil
}

// frameForSend wraps (typ, payload) in a frameSnap envelope when the
// connection negotiated compression, the payload is big enough to matter,
// and the frame type carries bulk data. Returns the type and payload to put
// on the wire plus a pooled scratch buffer the caller must return via
// putFrameBuf after writing (nil when the frame goes out uncompressed).
// Incompressible payloads are sent as-is — the envelope is only used when
// it actually shrinks the frame.
func frameForSend(typ byte, payload []byte, snappy bool, m *obs.Metrics) (byte, []byte, *[]byte) {
	if !snappy || len(payload) < snapMinCompress {
		return typ, payload, nil
	}
	switch typ {
	case frameExec, frameResult, frameDeliver, frameDeliverRes, framePeerFrag:
	default:
		return typ, payload, nil
	}
	bp := getFrameBuf()
	buf := (*bp)[:0]
	buf = append(buf, typ)
	buf = snapCompress(buf, payload)
	*bp = buf
	if len(buf) >= len(payload) {
		putFrameBuf(bp)
		return typ, payload, nil
	}
	m.Counter(obs.MetricNetSnapFrames).Add(1)
	m.Counter(obs.MetricNetSnapSavedB).Add(int64(len(payload) - len(buf)))
	return frameSnap, buf, bp
}

// unsnapPooled unwraps a frameSnap envelope read through the pooled path:
// the input buffer is released and the decoded payload comes back in a
// fresh pooled buffer with its own release.
func unsnapPooled(payload []byte, release func()) (byte, []byte, func(), error) {
	if len(payload) == 0 {
		release()
		return 0, nil, nil, fmt.Errorf("%w: empty snap envelope", errBadFrame)
	}
	inner := payload[0]
	bp := getFrameBuf()
	dec, err := snapDecode((*bp)[:0], payload[1:])
	*bp = dec
	release()
	if err != nil {
		putFrameBuf(bp)
		return 0, nil, nil, err
	}
	return inner, dec, func() { putFrameBuf(bp) }, nil
}

// unsnapOwned unwraps a frameSnap envelope into a caller-owned buffer (for
// the master's read loop, where payloads cross a channel to the waiting
// exchange).
func unsnapOwned(payload []byte) (byte, []byte, error) {
	if len(payload) == 0 {
		return 0, nil, fmt.Errorf("%w: empty snap envelope", errBadFrame)
	}
	dec, err := snapDecode(nil, payload[1:])
	return payload[0], dec, err
}

// Fingerprint identifies the run a connection belongs to: protocol version,
// partition count, and graph shape. Master and worker must have loaded the
// same graph with the same partitioning or results would silently diverge —
// the handshake turns that into an immediate, explicit error.
type Fingerprint struct {
	Partitions  int
	NumVertices int
	NumEdges    int
}

// encodeHello builds a hello/welcome payload: the fingerprint plus the
// sender's capability mask.
func encodeHello(f Fingerprint, caps uint64) []byte {
	b := value.NewBlob()
	b.Uvarint(Version)
	b.Uvarint(uint64(f.Partitions))
	b.Uvarint(uint64(f.NumVertices))
	b.Uvarint(uint64(f.NumEdges))
	b.Uvarint(caps)
	return b.Bytes()
}

func decodeHello(p []byte) (Fingerprint, uint64, error) {
	r := value.NewBlobReader(p)
	v := r.Uvarint()
	f := Fingerprint{
		Partitions:  int(r.Uvarint()),
		NumVertices: int(r.Uvarint()),
		NumEdges:    int(r.Uvarint()),
	}
	caps := r.Uvarint()
	if r.Err() != nil {
		return f, 0, fmt.Errorf("transport: corrupt handshake: %w", r.Err())
	}
	if v != Version {
		return f, 0, fmt.Errorf("transport: protocol version mismatch: peer %d, ours %d", v, Version)
	}
	return f, caps, nil
}

// appendRoute / readRoute carry the peer-mesh routing table of a resident
// exec request: Route[dp] is the owning worker's address, "." for the
// executing worker itself, "" for master-resident partitions.
func appendRoute(b *value.Blob, route []string) {
	b.Uvarint(uint64(len(route)))
	for _, addr := range route {
		b.String(addr)
	}
}

func readRoute(r *value.BlobReader) []string {
	n := r.Count()
	if n == 0 {
		return nil
	}
	route := make([]string, n)
	for i := range route {
		route[i] = r.String()
	}
	return route
}

func appendOutMsgs(b *value.Blob, msgs []engine.OutMessage) {
	b.Uvarint(uint64(len(msgs)))
	for _, m := range msgs {
		b.Uvarint(uint64(m.Src))
		b.Uvarint(uint64(m.Dst))
		b.Value(m.Val)
	}
}

func readOutMsgs(r *value.BlobReader) []engine.OutMessage {
	k := r.Count()
	if k == 0 {
		return nil
	}
	msgs := make([]engine.OutMessage, k)
	for j := range msgs {
		msgs[j] = engine.OutMessage{
			Src: engine.VertexID(r.Uvarint()),
			Dst: engine.VertexID(r.Uvarint()),
			Val: r.Value(),
		}
	}
	return msgs
}

// encodeExecRequest serializes a partition superstep request. The layout
// branches on the exchange mode: classic requests carry the full
// (id, value, last-active, inbox) state exactly as in v2; delta requests
// carry only the active ids and the mesh route; seed requests add the full
// stride state install.
func encodeExecRequest(req *engine.ExecRequest) []byte {
	b := value.NewBlob()
	b.Uvarint(uint64(req.Superstep))
	b.Uvarint(uint64(req.Partition))
	b.Uvarint(uint64(req.Mode))
	b.Bool(req.Observing)
	b.Bool(req.Combine)
	switch req.Mode {
	case engine.ModeDelta:
		b.Uvarint(uint64(len(req.Active)))
		for _, v := range req.Active {
			b.Uvarint(uint64(v))
		}
		appendRoute(b, req.Route)
	case engine.ModeSeed:
		b.Uvarint(uint64(len(req.Active)))
		for _, v := range req.Active {
			b.Uvarint(uint64(v))
		}
		appendRoute(b, req.Route)
		b.Uvarint(uint64(len(req.AllValues)))
		for i, v := range req.AllValues {
			b.Value(v)
			b.Int(int64(req.AllActive[i]))
		}
		for _, msgs := range req.Inbox {
			b.Uvarint(uint64(len(msgs)))
			for _, m := range msgs {
				b.Uvarint(uint64(m.Src))
				b.Value(m.Val)
			}
		}
	default: // ModeClassic — the stateless v2 layout
		b.Uvarint(uint64(len(req.Active)))
		for i, v := range req.Active {
			b.Uvarint(uint64(v))
			b.Value(req.Values[i])
			b.Int(int64(req.PrevActive[i]))
		}
		for _, msgs := range req.Inbox {
			b.Uvarint(uint64(len(msgs)))
			for _, m := range msgs {
				b.Uvarint(uint64(m.Src))
				b.Value(m.Val)
			}
		}
	}
	// Aggregators in sorted-name order for a canonical encoding.
	names := make([]string, 0, len(req.Agg))
	for name := range req.Agg {
		names = append(names, name)
	}
	sortStrings(names)
	b.Uvarint(uint64(len(names)))
	for _, name := range names {
		b.String(name)
		b.Float(req.Agg[name])
	}
	// Trace context (both zero when span tracing is off).
	b.Uvarint(req.TraceID)
	b.Uvarint(req.ParentSpan)
	return b.Bytes()
}

func decodeExecRequest(p []byte) (*engine.ExecRequest, error) {
	r := value.NewBlobReader(p)
	req := &engine.ExecRequest{
		Superstep: int(r.Uvarint()),
		Partition: int(r.Uvarint()),
		Mode:      engine.ExecMode(r.Uvarint()),
		Observing: r.Bool(),
		Combine:   r.Bool(),
	}
	switch req.Mode {
	case engine.ModeDelta:
		n := r.Count()
		req.Active = make([]engine.VertexID, n)
		for i := 0; i < n; i++ {
			req.Active[i] = engine.VertexID(r.Uvarint())
		}
		req.Route = readRoute(r)
	case engine.ModeSeed:
		n := r.Count()
		req.Active = make([]engine.VertexID, n)
		for i := 0; i < n; i++ {
			req.Active[i] = engine.VertexID(r.Uvarint())
		}
		req.Route = readRoute(r)
		k := r.Count()
		req.AllValues = make([]value.Value, k)
		req.AllActive = make([]int32, k)
		for i := 0; i < k; i++ {
			req.AllValues[i] = r.Value()
			req.AllActive[i] = int32(r.Int())
		}
		req.Inbox = make([][]engine.IncomingMessage, n)
		for i := 0; i < n; i++ {
			if k := r.Count(); k > 0 {
				msgs := make([]engine.IncomingMessage, k)
				for j := 0; j < k; j++ {
					msgs[j] = engine.IncomingMessage{Src: engine.VertexID(r.Uvarint()), Val: r.Value()}
				}
				req.Inbox[i] = msgs
			}
		}
	default:
		n := r.Count()
		req.Active = make([]engine.VertexID, n)
		req.Values = make([]value.Value, n)
		req.PrevActive = make([]int32, n)
		for i := 0; i < n; i++ {
			req.Active[i] = engine.VertexID(r.Uvarint())
			req.Values[i] = r.Value()
			req.PrevActive[i] = int32(r.Int())
		}
		req.Inbox = make([][]engine.IncomingMessage, n)
		for i := 0; i < n; i++ {
			k := r.Count()
			if k == 0 {
				continue
			}
			msgs := make([]engine.IncomingMessage, k)
			for j := 0; j < k; j++ {
				msgs[j] = engine.IncomingMessage{Src: engine.VertexID(r.Uvarint()), Val: r.Value()}
			}
			req.Inbox[i] = msgs
		}
	}
	if k := r.Count(); k > 0 {
		req.Agg = make(map[string]float64, k)
		for j := 0; j < k; j++ {
			name := r.String()
			req.Agg[name] = r.Float()
		}
	}
	req.TraceID = r.Uvarint()
	req.ParentSpan = r.Uvarint()
	if r.Err() != nil {
		return nil, fmt.Errorf("transport: corrupt exec request: %w", r.Err())
	}
	return req, nil
}

// encodeExecResult serializes a completed partition superstep: the result
// body followed by the span section (always present, count 0 when the run
// is untraced).
func encodeExecResult(res *engine.ExecResult) []byte {
	return appendSpanSection(encodeExecResultBody(res), res.Spans)
}

// appendSpanSection appends the piggybacked worker spans after an encoded
// result body. Split from the body encoder so the worker can time the body
// encode and then attach the span that measured it.
func appendSpanSection(body []byte, spans []obs.Span) []byte {
	b := value.NewBlob()
	obs.EncodeSpans(b, spans)
	return append(body, b.Bytes()...)
}

// encodeExecResultBody serializes a completed partition superstep without
// the trailing span section.
func encodeExecResultBody(res *engine.ExecResult) []byte {
	b := value.NewBlob()
	b.Uvarint(uint64(res.Partition))
	b.Bool(res.Crash != nil)
	if c := res.Crash; c != nil {
		b.Uvarint(uint64(c.Vertex))
		b.Uvarint(uint64(c.Superstep))
		b.String(c.Message)
		b.Bool(c.Panic)
		b.Bool(c.Injected)
		b.Bool(c.Deadline)
		b.Bool(c.Canceled)
		return b.Bytes()
	}
	b.Bool(res.StateMiss)
	if res.StateMiss {
		return b.Bytes()
	}
	b.Uvarint(uint64(len(res.Computed)))
	for i, v := range res.Computed {
		b.Uvarint(uint64(v))
		b.Value(res.NewValues[i])
	}
	b.Uvarint(uint64(len(res.Outbox)))
	for _, msgs := range res.Outbox {
		b.Uvarint(uint64(len(msgs)))
		for _, m := range msgs {
			b.Uvarint(uint64(m.Src))
			b.Uvarint(uint64(m.Dst))
			b.Value(m.Val)
		}
	}
	b.Uvarint(uint64(len(res.Records)))
	for i := range res.Records {
		rec := &res.Records[i]
		b.Uvarint(uint64(rec.ID))
		b.Uvarint(uint64(rec.Superstep))
		b.Int(int64(rec.PrevActive))
		b.Value(rec.OldValue)
		b.Value(rec.NewValue)
		b.Uvarint(uint64(len(rec.Received)))
		for _, m := range rec.Received {
			b.Uvarint(uint64(m.Src))
			b.Value(m.Val)
		}
		b.Uvarint(uint64(len(rec.Sent)))
		for _, m := range rec.Sent {
			b.Uvarint(uint64(m.Dst))
			b.Value(m.Val)
		}
		b.Uvarint(uint64(len(rec.Emitted)))
		for _, f := range rec.Emitted {
			b.String(f.Table)
			b.Uvarint(uint64(len(f.Args)))
			for _, a := range f.Args {
				b.Value(a)
			}
		}
	}
	b.Int(res.Sent)
	b.Int(res.CombinedSender)
	b.Uvarint(uint64(len(res.Agg)))
	for _, u := range res.Agg {
		b.String(u.Name)
		b.Uvarint(uint64(u.Op))
		b.Float(u.Val)
		b.Int(u.N)
	}
	b.Uvarint(uint64(len(res.DstCounts)))
	for _, c := range res.DstCounts {
		b.Int(c)
	}
	return b.Bytes()
}

func decodeExecResult(p []byte) (*engine.ExecResult, error) {
	r := value.NewBlobReader(p)
	res := &engine.ExecResult{Partition: int(r.Uvarint())}
	if r.Bool() {
		res.Crash = &engine.RemoteCrash{
			Vertex:    engine.VertexID(r.Uvarint()),
			Superstep: int(r.Uvarint()),
			Message:   r.String(),
			Panic:     r.Bool(),
			Injected:  r.Bool(),
			Deadline:  r.Bool(),
			Canceled:  r.Bool(),
		}
		res.Spans, _ = obs.DecodeSpans(r)
		if r.Err() != nil {
			return nil, fmt.Errorf("transport: corrupt exec result: %w", r.Err())
		}
		return res, nil
	}
	if r.Bool() {
		res.StateMiss = true
		res.Spans, _ = obs.DecodeSpans(r)
		if r.Err() != nil {
			return nil, fmt.Errorf("transport: corrupt exec result: %w", r.Err())
		}
		return res, nil
	}
	n := r.Count()
	res.Computed = make([]engine.VertexID, n)
	res.NewValues = make([]value.Value, n)
	for i := 0; i < n; i++ {
		res.Computed[i] = engine.VertexID(r.Uvarint())
		res.NewValues[i] = r.Value()
	}
	nParts := r.Count()
	res.Outbox = make([][]engine.OutMessage, nParts)
	for dp := 0; dp < nParts; dp++ {
		k := r.Count()
		if k == 0 {
			continue
		}
		msgs := make([]engine.OutMessage, k)
		for j := 0; j < k; j++ {
			msgs[j] = engine.OutMessage{
				Src: engine.VertexID(r.Uvarint()),
				Dst: engine.VertexID(r.Uvarint()),
				Val: r.Value(),
			}
		}
		res.Outbox[dp] = msgs
	}
	if nRecs := r.Count(); nRecs > 0 {
		res.Records = make([]engine.VertexRecord, nRecs)
		for i := 0; i < nRecs; i++ {
			rec := &res.Records[i]
			rec.ID = engine.VertexID(r.Uvarint())
			rec.Superstep = int(r.Uvarint())
			rec.PrevActive = int(r.Int())
			rec.OldValue = r.Value()
			rec.NewValue = r.Value()
			if k := r.Count(); k > 0 {
				rec.Received = make([]engine.IncomingMessage, k)
				for j := 0; j < k; j++ {
					rec.Received[j] = engine.IncomingMessage{Src: engine.VertexID(r.Uvarint()), Val: r.Value()}
				}
			}
			if k := r.Count(); k > 0 {
				rec.Sent = make([]engine.SentMessage, k)
				for j := 0; j < k; j++ {
					rec.Sent[j] = engine.SentMessage{Dst: engine.VertexID(r.Uvarint()), Val: r.Value()}
				}
			}
			if k := r.Count(); k > 0 {
				rec.Emitted = make([]engine.ProvFact, k)
				for j := 0; j < k; j++ {
					rec.Emitted[j].Table = r.String()
					if na := r.Count(); na > 0 {
						rec.Emitted[j].Args = make([]value.Value, na)
						for a := 0; a < na; a++ {
							rec.Emitted[j].Args[a] = r.Value()
						}
					}
				}
			}
		}
	}
	res.Sent = r.Int()
	res.CombinedSender = r.Int()
	if k := r.Count(); k > 0 {
		res.Agg = make([]engine.AggUpdate, k)
		for j := 0; j < k; j++ {
			res.Agg[j] = engine.AggUpdate{
				Name: r.String(),
				Op:   engine.AggOp(r.Uvarint()),
				Val:  r.Float(),
				N:    r.Int(),
			}
		}
	}
	if k := r.Count(); k > 0 {
		res.DstCounts = make([]int64, k)
		for j := 0; j < k; j++ {
			res.DstCounts[j] = r.Int()
		}
	}
	res.Spans, _ = obs.DecodeSpans(r)
	if r.Err() != nil {
		return nil, fmt.Errorf("transport: corrupt exec result: %w", r.Err())
	}
	return res, nil
}

// encodeDeliverRequest serializes one worker's slice of the delivery
// barrier (or collect) round.
func encodeDeliverRequest(req *engine.DeliverRequest) []byte {
	b := value.NewBlob()
	b.Uvarint(uint64(req.Superstep))
	b.Bool(req.CollectOnly)
	b.Bool(req.Combine)
	b.Uvarint(uint64(len(req.Parts)))
	for _, p := range req.Parts {
		b.Uvarint(uint64(p))
	}
	if !req.CollectOnly {
		for i := range req.Parts {
			exp := req.Expected[i]
			b.Uvarint(uint64(len(exp)))
			for _, c := range exp {
				b.Uvarint(uint64(c))
			}
			mf := req.MasterFrags[i]
			b.Uvarint(uint64(len(mf)))
			for _, msgs := range mf {
				appendOutMsgs(b, msgs)
			}
		}
	}
	b.Uvarint(req.TraceID)
	b.Uvarint(req.ParentSpan)
	return b.Bytes()
}

func decodeDeliverRequest(p []byte) (*engine.DeliverRequest, error) {
	r := value.NewBlobReader(p)
	req := &engine.DeliverRequest{
		Superstep:   int(r.Uvarint()),
		CollectOnly: r.Bool(),
		Combine:     r.Bool(),
	}
	n := r.Count()
	req.Parts = make([]int, n)
	for i := 0; i < n; i++ {
		req.Parts[i] = int(r.Uvarint())
	}
	if !req.CollectOnly {
		req.Expected = make([][]int64, n)
		req.MasterFrags = make([][][]engine.OutMessage, n)
		for i := 0; i < n; i++ {
			k := r.Count()
			exp := make([]int64, k)
			for j := 0; j < k; j++ {
				exp[j] = int64(r.Uvarint())
			}
			req.Expected[i] = exp
			k = r.Count()
			mf := make([][]engine.OutMessage, k)
			for j := 0; j < k; j++ {
				mf[j] = readOutMsgs(r)
			}
			req.MasterFrags[i] = mf
		}
	}
	req.TraceID = r.Uvarint()
	req.ParentSpan = r.Uvarint()
	if r.Err() != nil {
		return nil, fmt.Errorf("transport: corrupt deliver request: %w", r.Err())
	}
	return req, nil
}

// encodeDeliverResult serializes the per-partition outcomes of one deliver
// round.
func encodeDeliverResult(res *engine.DeliverResult) []byte {
	b := value.NewBlob()
	b.Uvarint(uint64(len(res.Parts)))
	for i := range res.Parts {
		dp := &res.Parts[i]
		b.Uvarint(uint64(dp.Partition))
		b.Bool(dp.OK)
		if !dp.OK {
			continue
		}
		b.Uvarint(uint64(dp.Delivered))
		b.Uvarint(uint64(dp.Combined))
		b.Uvarint(uint64(len(dp.Dsts)))
		for _, v := range dp.Dsts {
			b.Uvarint(uint64(v))
		}
		b.Uvarint(uint64(len(dp.Values)))
		for _, v := range dp.Values {
			b.Value(v)
		}
		b.Uvarint(uint64(len(dp.Inbox)))
		for _, en := range dp.Inbox {
			b.Uvarint(uint64(en.Dst))
			b.Uvarint(uint64(len(en.Msgs)))
			for _, m := range en.Msgs {
				b.Uvarint(uint64(m.Src))
				b.Value(m.Val)
			}
		}
	}
	return b.Bytes()
}

func decodeDeliverResult(p []byte) (*engine.DeliverResult, error) {
	r := value.NewBlobReader(p)
	n := r.Count()
	res := &engine.DeliverResult{Parts: make([]engine.DeliverPart, n)}
	for i := 0; i < n; i++ {
		dp := &res.Parts[i]
		dp.Partition = int(r.Uvarint())
		dp.OK = r.Bool()
		if !dp.OK {
			continue
		}
		dp.Delivered = int64(r.Uvarint())
		dp.Combined = int64(r.Uvarint())
		k := r.Count()
		dp.Dsts = make([]engine.VertexID, k)
		for j := 0; j < k; j++ {
			dp.Dsts[j] = engine.VertexID(r.Uvarint())
		}
		if k := r.Count(); k > 0 {
			dp.Values = make([]value.Value, k)
			for j := 0; j < k; j++ {
				dp.Values[j] = r.Value()
			}
		}
		if k := r.Count(); k > 0 {
			dp.Inbox = make([]engine.InboxChunk, k)
			for j := 0; j < k; j++ {
				dp.Inbox[j].Dst = engine.VertexID(r.Uvarint())
				if km := r.Count(); km > 0 {
					msgs := make([]engine.IncomingMessage, km)
					for a := 0; a < km; a++ {
						msgs[a] = engine.IncomingMessage{Src: engine.VertexID(r.Uvarint()), Val: r.Value()}
					}
					dp.Inbox[j].Msgs = msgs
				}
			}
		}
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("transport: corrupt deliver result: %w", r.Err())
	}
	return res, nil
}

// peerFrag is one outbox column crossing the worker mesh: source partition
// sp's messages for destination partition dp, emitted at superstep ss.
type peerFrag struct {
	ss, sp, dp int
	msgs       []engine.OutMessage
}

func encodePeerFrag(f *peerFrag) []byte {
	b := value.NewBlob()
	b.Uvarint(uint64(f.ss))
	b.Uvarint(uint64(f.sp))
	b.Uvarint(uint64(f.dp))
	appendOutMsgs(b, f.msgs)
	return b.Bytes()
}

func decodePeerFrag(p []byte) (*peerFrag, error) {
	r := value.NewBlobReader(p)
	f := &peerFrag{
		ss: int(r.Uvarint()),
		sp: int(r.Uvarint()),
		dp: int(r.Uvarint()),
	}
	f.msgs = readOutMsgs(r)
	if r.Err() != nil {
		return nil, fmt.Errorf("transport: corrupt peer frag: %w", r.Err())
	}
	return f, nil
}

// sortStrings is an insertion sort — aggregator maps hold a handful of
// names, not worth pulling in sort for an interface allocation per call.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
