package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ariadne/internal/engine"
	"ariadne/internal/fault"
	"ariadne/internal/obs"
)

// replyCacheSize bounds the per-connection dedup cache. The master has at
// most a few exchanges in flight per superstep per worker, so a retransmit
// always finds its cached reply long before eviction.
const replyCacheSize = 128

// Worker is the worker-process side of the TCP leg: it serves partition
// ExecRequests, delivery-barrier rounds, and peer fragments over framed
// connections. Connections are pipelined (PR 9): the reader goroutine keeps
// draining frames while exec and deliver handlers run concurrently — so the
// worker can decode superstep S+1's deltas while still encoding S's records
// — with a per-connection write mutex keeping reply frames whole. Requests
// are deduplicated by sequence number: a retransmitted exec replays the
// cached reply instead of recomputing, and an exec that is still in flight
// parks the duplicate until the original finishes.
type Worker struct {
	x  *engine.Executor
	ln net.Listener
	m  *obs.Metrics

	// caps is the capability mask offered in handshakes (snap compression).
	caps uint64
	// frags parks peer- and self-routed outbox columns between exec and the
	// delivery round; mesh owns the worker->worker connections.
	frags fragStore
	mesh  *mesh

	// killAfter, when positive, makes the worker die abruptly — listener
	// and connections closed, no reply sent — after that many exec requests
	// have been received. Deterministic stand-in for kill -9 in the fault
	// matrix tests.
	killAfter int64
	execs     atomic.Int64

	// connWG tracks live serveConn goroutines so Drain can wait for
	// in-flight requests to finish.
	connWG sync.WaitGroup

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	closed   bool
	draining bool
}

// NewWorker listens on addr (e.g. "127.0.0.1:0") and serves x. Call Serve
// to start accepting.
func NewWorker(x *engine.Executor, addr string, m *obs.Metrics) (*Worker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	w := &Worker{x: x, ln: ln, m: m, caps: capSnappy, conns: map[net.Conn]struct{}{}}
	w.mesh = newMesh(w)
	return w, nil
}

// Addr returns the bound listen address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// KillAfter arms the abrupt-death knob: the worker closes everything,
// mid-exchange, after n exec requests. For fault testing only.
func (w *Worker) KillAfter(n int) { w.killAfter = int64(n) }

// Execs returns how many exec requests this worker has received, for tests
// that time kills against the request stream.
func (w *Worker) Execs() int64 { return w.execs.Load() }

// Serve accepts and serves connections until Close or Drain. It returns nil
// on a clean shutdown, the accept error otherwise.
func (w *Worker) Serve() error {
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			w.mu.Lock()
			done := w.closed || w.draining
			w.mu.Unlock()
			if done {
				return nil
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		w.mu.Lock()
		if w.closed || w.draining {
			w.mu.Unlock()
			conn.Close()
			return nil
		}
		w.conns[conn] = struct{}{}
		w.connWG.Add(1)
		w.mu.Unlock()
		go w.serveConn(conn)
	}
}

// Close shuts the worker down: stops accepting and severs every
// connection, including the peer mesh.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	err := w.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	w.mesh.close()
	return err
}

// Drain shuts the worker down gracefully: it stops accepting, lets each
// connection finish the requests it is serving (replying normally), then
// sends the master a drain frame — the deregistration notice that makes the
// pool reroute this worker's partitions without charging a failure — and
// closes. Drain returns once every connection has wound down, so a worker
// process can exit 0 immediately after. Requests the master had pipelined
// but the worker had not yet read are abandoned; at-least-once delivery
// re-routes them to a surviving worker.
func (w *Worker) Drain() error {
	w.mu.Lock()
	if w.closed || w.draining {
		w.mu.Unlock()
		return nil
	}
	w.draining = true
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	err := w.ln.Close()
	// Wake readers blocked between requests; a serveConn with requests in
	// flight waits for its handlers to reply before deregistering, which is
	// exactly the finish-in-flight-then-deregister contract.
	for _, c := range conns {
		c.SetReadDeadline(time.Now())
	}
	w.connWG.Wait()
	w.mesh.close()
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	return err
}

func (w *Worker) drop(conn net.Conn) {
	w.mu.Lock()
	delete(w.conns, conn)
	w.mu.Unlock()
	conn.Close()
}

func (w *Worker) isDraining() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.draining
}

// connState is one served connection's shared state: the write mutex that
// keeps pipelined reply frames whole, the negotiated capability set, the
// seq dedup cache, and the in-flight handler count the drain path waits on.
type connState struct {
	conn   net.Conn
	wmu    sync.Mutex
	snappy bool
	cache  *replyCache
	wg     sync.WaitGroup
}

// serveConn handshakes, then serves frames until the connection dies or the
// worker drains. Exec and deliver frames are handled in goroutines so the
// reader keeps pipelining; pings, peer frags, and the kill knob stay inline.
func (w *Worker) serveConn(conn net.Conn) {
	defer w.connWG.Done()
	defer w.drop(conn)
	fp := Fingerprint{
		Partitions:  w.x.Partitions(),
		NumVertices: w.x.Graph().NumVertices(),
		NumEdges:    w.x.Graph().NumEdges(),
	}
	typ, _, payload, _, err := readFrame(conn)
	if err != nil || typ != frameHello {
		writeFrame(conn, frameError, 0, []byte("expected hello frame"))
		return
	}
	peerFP, peerCaps, err := decodeHello(payload)
	if err != nil {
		writeFrame(conn, frameError, 0, []byte(err.Error()))
		return
	}
	if peerFP != fp {
		writeFrame(conn, frameError, 0,
			[]byte(fmt.Sprintf("graph fingerprint mismatch: master %+v, worker %+v", peerFP, fp)))
		return
	}
	if _, err := writeFrame(conn, frameWelcome, 0, encodeHello(fp, w.caps)); err != nil {
		return
	}

	cs := &connState{conn: conn, snappy: w.caps&peerCaps&capSnappy != 0, cache: newReplyCache(replyCacheSize)}
	for {
		typ, seq, payload, n, release, err := readFramePooled(conn)
		if err != nil {
			if w.isDraining() {
				// Wait out in-flight handlers (their replies were written
				// under the conn's write mutex), then deregister gracefully
				// so the master reroutes without counting a failure.
				cs.wg.Wait()
				conn.SetWriteDeadline(time.Now().Add(time.Second))
				writeFrame(conn, frameDrain, 0, nil)
				return
			}
			cs.wg.Wait()
			if !errors.Is(err, net.ErrClosed) {
				w.m.Tracef(obs.Info, "transport", -1, "worker connection ended: %v", err)
			}
			return
		}
		w.m.Counter(obs.MetricNetMessagesRecv).Add(1)
		w.m.Counter(obs.MetricNetBytesRecv).Add(int64(n))
		if typ == frameSnap {
			typ, payload, release, err = unsnapPooled(payload, release)
			if err != nil {
				writeFrame(conn, frameError, seq, []byte(err.Error()))
				return
			}
		}
		switch typ {
		case framePing:
			release()
			if err := w.reply(cs, framePong, seq, nil); err != nil {
				return
			}
		case frameExec:
			if w.killAfter > 0 && w.execs.Add(1) >= w.killAfter {
				release()
				w.Close()
				return
			}
			cs.wg.Add(1)
			go w.handleExec(cs, seq, payload, release)
		case frameDeliver:
			cs.wg.Add(1)
			go w.handleDeliver(cs, seq, payload, release)
		case framePeerFrag:
			w.handlePeerFrag(cs, seq, payload, release)
		default:
			release()
			writeFrame(conn, frameError, seq, []byte(fmt.Sprintf("unexpected frame type %d", typ)))
			return
		}
	}
}

// handleExec decodes, executes, peer-routes, and replies to one exec frame.
// Runs on its own goroutine; duplicates of an in-flight seq park on the
// dedup cache until the original finishes, then replay its reply.
func (w *Worker) handleExec(cs *connState, seq uint64, payload []byte, release func()) {
	defer cs.wg.Done()
	if cached, ok := cs.cache.claim(seq); ok {
		release()
		w.reply(cs, frameResult, seq, cached)
		return
	}
	t0 := time.Now()
	req, err := decodeExecRequest(payload)
	release()
	if err != nil {
		cs.cache.finish(seq, nil)
		w.replyErr(cs, seq, err.Error())
		return
	}
	t1 := time.Now()
	res := w.x.Exec(context.Background(), req)
	t2 := time.Now()
	var peerBytes int64
	var peerDur time.Duration
	if req.Mode != engine.ModeClassic && res.Crash == nil && !res.StateMiss {
		peerBytes = w.routeOutbox(req, res)
		peerDur = time.Since(t2)
	}
	t2b := time.Now()
	out := encodeExecResultBody(res)
	// When the master sent trace context, time decode/compute/route/encode
	// as child spans of its exchange span and piggyback them on the result —
	// measured first, appended after, so the encode span covers exactly the
	// body it rode behind.
	var spans []obs.Span
	if req.TraceID != 0 && res.Crash == nil {
		t3 := time.Now()
		proc := "worker:" + w.Addr()
		spans = []obs.Span{
			{TraceID: req.TraceID, Parent: req.ParentSpan, Proc: proc, Name: obs.SpanDecode,
				Superstep: req.Superstep, Partition: req.Partition,
				Start: t0.UnixNano(), Dur: int64(t1.Sub(t0)), Bytes: int64(len(payload))},
			{TraceID: req.TraceID, Parent: req.ParentSpan, Proc: proc, Name: obs.SpanWorkerCompute,
				Superstep: req.Superstep, Partition: req.Partition,
				Start: t1.UnixNano(), Dur: int64(t2.Sub(t1)), Tuples: int64(len(req.Active))},
			{TraceID: req.TraceID, Parent: req.ParentSpan, Proc: proc, Name: obs.SpanEncode,
				Superstep: req.Superstep, Partition: req.Partition,
				Start: t2b.UnixNano(), Dur: int64(t3.Sub(t2b)), Bytes: int64(len(out))},
		}
		if peerDur > 0 {
			spans = append(spans, obs.Span{
				TraceID: req.TraceID, Parent: req.ParentSpan, Proc: proc, Name: obs.SpanPeerWire,
				Superstep: req.Superstep, Partition: req.Partition,
				Start: t2.UnixNano(), Dur: int64(peerDur), Bytes: peerBytes,
			})
		}
	}
	out = appendSpanSection(out, spans)
	cs.cache.finish(seq, out)
	w.reply(cs, frameResult, seq, out)
}

// routeOutbox sends a resident-mode result's outbox columns to the workers
// that own their destination partitions, per the request's route: "." parks
// the column in this worker's own frag store, a peer address ships it over
// the mesh, and "" (master-resident) leaves it in the reply. A failed peer
// send also leaves the column in the reply — the master forwards it inside
// the deliver round, so one lost mesh link degrades to master relay for
// that column instead of a replay. Returns the mesh bytes written.
func (w *Worker) routeOutbox(req *engine.ExecRequest, res *engine.ExecResult) int64 {
	var bytes int64
	ctx := context.Background()
	for dp := range res.Outbox {
		col := res.Outbox[dp]
		if len(col) == 0 {
			continue
		}
		var route string
		if dp < len(req.Route) {
			route = req.Route[dp]
		}
		switch route {
		case "":
		case ".":
			w.frags.put(req.Superstep, dp, req.Partition, col)
			res.Outbox[dp] = nil
		default:
			n, err := w.mesh.sendFrag(ctx, route, &peerFrag{ss: req.Superstep, sp: req.Partition, dp: dp, msgs: col})
			bytes += n
			if err != nil {
				w.m.Tracef(obs.Warn, "transport", req.Superstep,
					"peer frag %d->%d via %s failed: %v (column falls back to master relay)",
					req.Partition, dp, route, err)
				continue
			}
			res.Outbox[dp] = nil
		}
	}
	return bytes
}

// handleDeliver runs one delivery-barrier (or collect) round for the
// partitions this worker owns, folding parked peer fragments and any
// master-supplied columns.
func (w *Worker) handleDeliver(cs *connState, seq uint64, payload []byte, release func()) {
	defer cs.wg.Done()
	if cached, ok := cs.cache.claim(seq); ok {
		release()
		w.reply(cs, frameDeliverRes, seq, cached)
		return
	}
	req, err := decodeDeliverRequest(payload)
	release()
	if err != nil {
		cs.cache.finish(seq, nil)
		w.replyErr(cs, seq, err.Error())
		return
	}
	nParts := w.x.Partitions()
	res := &engine.DeliverResult{Parts: make([]engine.DeliverPart, len(req.Parts))}
	for i, p := range req.Parts {
		var dp *engine.DeliverPart
		if req.CollectOnly {
			dp = w.x.Collect(req.Superstep, p)
		} else {
			frags := make([][]engine.OutMessage, nParts)
			for sp := 0; sp < nParts; sp++ {
				if sp < len(req.MasterFrags[i]) && len(req.MasterFrags[i][sp]) > 0 {
					frags[sp] = req.MasterFrags[i][sp]
				} else {
					frags[sp] = w.frags.get(req.Superstep, p, sp)
				}
			}
			dp = w.x.Assemble(req.Superstep, p, req.Combine, req.Expected[i], frags)
		}
		res.Parts[i] = *dp
	}
	w.frags.prune(req.Superstep)
	out := encodeDeliverResult(res)
	cs.cache.finish(seq, out)
	w.reply(cs, frameDeliverRes, seq, out)
}

// handlePeerFrag parks one mesh fragment, consulting the peer.recv fault
// site: a recv-drop skips the store but still acks (application-level loss
// — the deliver round then comes up short and the master replays), a reset
// kills the connection unacked.
func (w *Worker) handlePeerFrag(cs *connState, seq uint64, payload []byte, release func()) {
	f, err := decodePeerFrag(payload)
	release()
	if err != nil {
		w.replyErr(cs, seq, err.Error())
		return
	}
	act, ferr := w.x.Fault().NetHit(context.Background(), fault.SitePeerRecv, f.ss, f.dp, int64(seq))
	if ferr == nil && act != fault.NetDrop {
		w.frags.put(f.ss, f.dp, f.sp, f.msgs)
	}
	if act == fault.NetReset {
		cs.conn.Close()
		return
	}
	w.reply(cs, framePeerAck, seq, nil)
}

// reply writes one reply frame under the connection's write mutex,
// compressing when the connection negotiated it.
func (w *Worker) reply(cs *connState, typ byte, seq uint64, payload []byte) error {
	wtyp, wpay, scratch := frameForSend(typ, payload, cs.snappy, w.m)
	cs.wmu.Lock()
	n, err := writeFrame(cs.conn, wtyp, seq, wpay)
	cs.wmu.Unlock()
	if scratch != nil {
		putFrameBuf(scratch)
	}
	if err != nil {
		return err
	}
	w.m.Counter(obs.MetricNetMessagesSent).Add(1)
	w.m.Counter(obs.MetricNetBytesSent).Add(int64(n))
	return nil
}

func (w *Worker) replyErr(cs *connState, seq uint64, msg string) {
	cs.wmu.Lock()
	writeFrame(cs.conn, frameError, seq, []byte(msg))
	cs.wmu.Unlock()
}

// replyCache is a bounded FIFO map of encoded replies keyed by sequence
// number — the dedup half of the at-least-once contract — extended for
// pipelining with in-flight claims: the first handler of a seq claims it
// and computes, duplicates park until the claim finishes and then replay
// the cached reply (or re-claim if the original aborted).
type replyCache struct {
	mu       sync.Mutex
	cap      int
	order    []uint64
	replies  map[uint64][]byte
	inflight map[uint64]chan struct{}
}

func newReplyCache(cap int) *replyCache {
	return &replyCache{cap: cap, replies: make(map[uint64][]byte, cap), inflight: map[uint64]chan struct{}{}}
}

// claim returns the cached reply for seq, or claims the seq for this caller
// (second return false): the caller must call finish exactly once. A
// duplicate of an in-flight seq blocks until the original finishes.
func (c *replyCache) claim(seq uint64) ([]byte, bool) {
	for {
		c.mu.Lock()
		if r, ok := c.replies[seq]; ok {
			c.mu.Unlock()
			return r, true
		}
		ch, ok := c.inflight[seq]
		if !ok {
			c.inflight[seq] = make(chan struct{})
			c.mu.Unlock()
			return nil, false
		}
		c.mu.Unlock()
		<-ch
	}
}

// finish resolves a claim: caches the reply (nil on abort — a parked
// duplicate then re-claims and recomputes) and wakes waiters.
func (c *replyCache) finish(seq uint64, reply []byte) {
	c.mu.Lock()
	if ch, ok := c.inflight[seq]; ok {
		delete(c.inflight, seq)
		close(ch)
	}
	if reply != nil {
		if _, ok := c.replies[seq]; !ok {
			if len(c.order) >= c.cap {
				delete(c.replies, c.order[0])
				c.order = c.order[1:]
			}
			c.order = append(c.order, seq)
			c.replies[seq] = reply
		}
	}
	c.mu.Unlock()
}

// get and put keep the pre-pipelining surface for tests.
func (c *replyCache) get(seq uint64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.replies[seq]
	return r, ok
}

func (c *replyCache) put(seq uint64, reply []byte) {
	c.finish(seq, reply)
}
