package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ariadne/internal/engine"
	"ariadne/internal/obs"
)

// replyCacheSize bounds the per-connection dedup cache. The master has at
// most a few exchanges in flight per superstep per worker, so a retransmit
// always finds its cached reply long before eviction.
const replyCacheSize = 128

// Worker is the worker-process side of the TCP leg: it serves partition
// ExecRequests from a master over framed connections. Each connection is
// handled by one goroutine, serially — ordering within a connection is the
// arrival order — and requests are deduplicated by sequence number: a
// retransmitted exec replays the cached reply instead of recomputing (the
// request is a pure function, so recomputing would also be correct; the
// cache just makes at-least-once delivery cheap).
type Worker struct {
	x  *engine.Executor
	ln net.Listener
	m  *obs.Metrics

	// killAfter, when positive, makes the worker die abruptly — listener
	// and connections closed, no reply sent — after that many exec requests
	// have been received. Deterministic stand-in for kill -9 in the fault
	// matrix tests.
	killAfter int64
	execs     atomic.Int64

	// connWG tracks live serveConn goroutines so Drain can wait for
	// in-flight requests to finish.
	connWG sync.WaitGroup

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	closed   bool
	draining bool
}

// NewWorker listens on addr (e.g. "127.0.0.1:0") and serves x. Call Serve
// to start accepting.
func NewWorker(x *engine.Executor, addr string, m *obs.Metrics) (*Worker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Worker{x: x, ln: ln, m: m, conns: map[net.Conn]struct{}{}}, nil
}

// Addr returns the bound listen address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// KillAfter arms the abrupt-death knob: the worker closes everything,
// mid-exchange, after n exec requests. For fault testing only.
func (w *Worker) KillAfter(n int) { w.killAfter = int64(n) }

// Serve accepts and serves connections until Close or Drain. It returns nil
// on a clean shutdown, the accept error otherwise.
func (w *Worker) Serve() error {
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			w.mu.Lock()
			done := w.closed || w.draining
			w.mu.Unlock()
			if done {
				return nil
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		w.mu.Lock()
		if w.closed || w.draining {
			w.mu.Unlock()
			conn.Close()
			return nil
		}
		w.conns[conn] = struct{}{}
		w.connWG.Add(1)
		w.mu.Unlock()
		go w.serveConn(conn)
	}
}

// Close shuts the worker down: stops accepting and severs every
// connection.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	err := w.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

// Drain shuts the worker down gracefully: it stops accepting, lets each
// connection finish the request it is serving (replying normally), then
// sends the master a drain frame — the deregistration notice that makes the
// pool reroute this worker's partitions without charging a failure — and
// closes. Drain returns once every connection has wound down, so a worker
// process can exit 0 immediately after. Requests the master had pipelined
// but the worker had not yet read are abandoned; at-least-once delivery
// re-routes them to a surviving worker.
func (w *Worker) Drain() error {
	w.mu.Lock()
	if w.closed || w.draining {
		w.mu.Unlock()
		return nil
	}
	w.draining = true
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	err := w.ln.Close()
	// Wake readers blocked between requests; a serveConn mid-request sees
	// the expired deadline only after writing its reply, which is exactly
	// the finish-in-flight-then-deregister contract.
	for _, c := range conns {
		c.SetReadDeadline(time.Now())
	}
	w.connWG.Wait()
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	return err
}

func (w *Worker) drop(conn net.Conn) {
	w.mu.Lock()
	delete(w.conns, conn)
	w.mu.Unlock()
	conn.Close()
}

func (w *Worker) isDraining() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.draining
}

// serveConn handshakes, then serves exec and ping frames until the
// connection dies or the worker drains.
func (w *Worker) serveConn(conn net.Conn) {
	defer w.connWG.Done()
	defer w.drop(conn)
	fp := Fingerprint{
		Partitions:  w.x.Partitions(),
		NumVertices: w.x.Graph().NumVertices(),
		NumEdges:    w.x.Graph().NumEdges(),
	}
	typ, _, payload, _, err := readFrame(conn)
	if err != nil || typ != frameHello {
		writeFrame(conn, frameError, 0, []byte("expected hello frame"))
		return
	}
	peerFP, err := decodeFingerprint(payload)
	if err != nil {
		writeFrame(conn, frameError, 0, []byte(err.Error()))
		return
	}
	if peerFP != fp {
		writeFrame(conn, frameError, 0,
			[]byte(fmt.Sprintf("graph fingerprint mismatch: master %+v, worker %+v", peerFP, fp)))
		return
	}
	if _, err := writeFrame(conn, frameWelcome, 0, fp.encode()); err != nil {
		return
	}

	cache := newReplyCache(replyCacheSize)
	for {
		typ, seq, payload, n, err := readFrame(conn)
		if err != nil {
			if w.isDraining() {
				// In-flight work is done (its reply was written before this
				// read); deregister gracefully so the master reroutes
				// without counting a failure, then close.
				conn.SetWriteDeadline(time.Now().Add(time.Second))
				writeFrame(conn, frameDrain, 0, nil)
				return
			}
			if !errors.Is(err, net.ErrClosed) {
				w.m.Tracef(obs.Info, "transport", -1, "worker connection ended: %v", err)
			}
			return
		}
		w.m.Counter(obs.MetricNetMessagesRecv).Add(1)
		w.m.Counter(obs.MetricNetBytesRecv).Add(int64(n))
		switch typ {
		case framePing:
			if err := w.reply(conn, framePong, seq, nil); err != nil {
				return
			}
		case frameExec:
			if w.killAfter > 0 && w.execs.Add(1) >= w.killAfter {
				w.Close()
				return
			}
			if cached, ok := cache.get(seq); ok {
				if err := w.reply(conn, frameResult, seq, cached); err != nil {
					return
				}
				continue
			}
			t0 := time.Now()
			req, err := decodeExecRequest(payload)
			if err != nil {
				writeFrame(conn, frameError, seq, []byte(err.Error()))
				return
			}
			t1 := time.Now()
			res := w.x.Exec(context.Background(), req)
			t2 := time.Now()
			out := encodeExecResultBody(res)
			// When the master sent trace context, time decode/compute/encode
			// as child spans of its exchange span and piggyback them on the
			// result — measured first, appended after, so the encode span
			// covers exactly the body it rode behind.
			var spans []obs.Span
			if req.TraceID != 0 && res.Crash == nil {
				t3 := time.Now()
				proc := "worker:" + w.Addr()
				spans = []obs.Span{
					{TraceID: req.TraceID, Parent: req.ParentSpan, Proc: proc, Name: obs.SpanDecode,
						Superstep: req.Superstep, Partition: req.Partition,
						Start: t0.UnixNano(), Dur: int64(t1.Sub(t0)), Bytes: int64(len(payload))},
					{TraceID: req.TraceID, Parent: req.ParentSpan, Proc: proc, Name: obs.SpanWorkerCompute,
						Superstep: req.Superstep, Partition: req.Partition,
						Start: t1.UnixNano(), Dur: int64(t2.Sub(t1)), Tuples: int64(len(req.Active))},
					{TraceID: req.TraceID, Parent: req.ParentSpan, Proc: proc, Name: obs.SpanEncode,
						Superstep: req.Superstep, Partition: req.Partition,
						Start: t2.UnixNano(), Dur: int64(t3.Sub(t2)), Bytes: int64(len(out))},
				}
			}
			out = appendSpanSection(out, spans)
			cache.put(seq, out)
			if err := w.reply(conn, frameResult, seq, out); err != nil {
				return
			}
		default:
			writeFrame(conn, frameError, seq, []byte(fmt.Sprintf("unexpected frame type %d", typ)))
			return
		}
	}
}

func (w *Worker) reply(conn net.Conn, typ byte, seq uint64, payload []byte) error {
	n, err := writeFrame(conn, typ, seq, payload)
	if err != nil {
		return err
	}
	w.m.Counter(obs.MetricNetMessagesSent).Add(1)
	w.m.Counter(obs.MetricNetBytesSent).Add(int64(n))
	return nil
}

// replyCache is a bounded FIFO map of encoded replies keyed by sequence
// number, the dedup half of the at-least-once contract.
type replyCache struct {
	cap     int
	order   []uint64
	replies map[uint64][]byte
}

func newReplyCache(cap int) *replyCache {
	return &replyCache{cap: cap, replies: make(map[uint64][]byte, cap)}
}

func (c *replyCache) get(seq uint64) ([]byte, bool) {
	r, ok := c.replies[seq]
	return r, ok
}

func (c *replyCache) put(seq uint64, reply []byte) {
	if _, ok := c.replies[seq]; ok {
		return
	}
	if len(c.order) >= c.cap {
		delete(c.replies, c.order[0])
		c.order = c.order[1:]
	}
	c.order = append(c.order, seq)
	c.replies[seq] = reply
}
