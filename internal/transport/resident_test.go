package transport

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"ariadne/internal/analytics"
	"ariadne/internal/engine"
	"ariadne/internal/fault"
	"ariadne/internal/graph"
	"ariadne/internal/obs"
	"ariadne/internal/supervise"
	"ariadne/internal/value"
)

// TestSnapRoundTrip pins the in-repo block codec: every input decodes back
// bit-identically, and the compressor actually wins on the payloads it is
// there for (runs, repeated structure).
func TestSnapRoundTrip(t *testing.T) {
	rng := uint64(0x9e3779b97f4a7c15)
	random := make([]byte, 4096)
	for i := range random {
		rng = rng*6364136223846793005 + 1442695040888963407
		random[i] = byte(rng >> 56)
	}
	runs := bytes.Repeat([]byte{0xab}, 8192)
	structured := bytes.Repeat([]byte("superstep:frontier:delta;"), 300)
	cases := map[string][]byte{
		"empty":      {},
		"one":        {42},
		"short":      []byte("hi"),
		"random":     random,
		"runs":       runs,
		"structured": structured,
	}
	for name, src := range cases {
		block := snapCompress(nil, src)
		got, err := snapDecode(nil, block)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !bytes.Equal(src, got) {
			t.Fatalf("%s: roundtrip mismatch (%d in, %d out)", name, len(src), len(got))
		}
		if (name == "runs" || name == "structured") && len(block) >= len(src)/4 {
			t.Errorf("%s: block %dB barely compresses %dB input", name, len(block), len(src))
		}
	}

	// Corruption must surface as an error, never a silent wrong decode.
	block := snapCompress(nil, structured)
	for name, bad := range map[string][]byte{
		"truncated":  block[:len(block)/2],
		"bad-offset": append(append([]byte{}, block[:2]...), 0xff, 0xff, 0xff),
		"short-hdr":  {0x80},
	} {
		if _, err := snapDecode(nil, bad); err == nil {
			t.Errorf("%s: corrupt block decoded without error", name)
		}
	}
}

// TestWireDeltaSeedRoundTrip pins the v3 resident-mode request layouts:
// a delta request (active ids + route only) and a seed request (full stride
// state) must both decode back field-identical.
func TestWireDeltaSeedRoundTrip(t *testing.T) {
	delta := &engine.ExecRequest{
		Superstep: 4, Partition: 2, Mode: engine.ModeDelta,
		Observing: true, Combine: true,
		Active:  []engine.VertexID{2, 6, 14},
		Route:   []string{"", ".", "10.0.0.2:9", "."},
		Agg:     map[string]float64{"mass": 0.75},
		TraceID: 7, ParentSpan: 9,
	}
	rt, err := decodeExecRequest(encodeExecRequest(delta))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(delta, rt) {
		t.Fatalf("delta roundtrip mismatch:\n  in  %+v\n  out %+v", delta, rt)
	}

	seed := &engine.ExecRequest{
		Superstep: 5, Partition: 1, Mode: engine.ModeSeed,
		Active: []engine.VertexID{1, 9},
		Route:  []string{".", "", ".", "host:1"},
		AllValues: []value.Value{
			value.NewFloat(0.5), value.NewVector([]float64{1, 2}), value.NewString("s"),
		},
		AllActive: []int32{-1, 4, 0},
		Inbox: [][]engine.IncomingMessage{
			{{Src: 3, Val: value.NewFloat(0.25)}},
			nil,
		},
	}
	rt, err = decodeExecRequest(encodeExecRequest(seed))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seed, rt) {
		t.Fatalf("seed roundtrip mismatch:\n  in  %+v\n  out %+v", seed, rt)
	}
}

// TestWireResidentResultRoundTrip pins the v3 result extensions: the
// StateMiss short-circuit and the per-destination fan-out counts a resident
// result carries in place of its peer-routed columns.
func TestWireResidentResultRoundTrip(t *testing.T) {
	miss := &engine.ExecResult{Partition: 3, StateMiss: true}
	rt, err := decodeExecResult(encodeExecResult(miss))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(miss, rt) {
		t.Fatalf("state-miss roundtrip mismatch: %+v vs %+v", rt, miss)
	}

	res := &engine.ExecResult{
		Partition: 1,
		Computed:  []engine.VertexID{5},
		NewValues: []value.Value{value.NewFloat(2.5)},
		Outbox:    [][]engine.OutMessage{nil, {{Src: 5, Dst: 2, Val: value.NewInt(1)}}},
		Sent:      4, CombinedSender: 1,
		DstCounts: []int64{0, 1, 3, 0},
	}
	rt, err = decodeExecResult(encodeExecResult(res))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, rt) {
		t.Fatalf("dst-counts roundtrip mismatch:\n  in  %+v\n  out %+v", res, rt)
	}
}

// TestWireDeliverRoundTrip pins the deliver-round frames: the request with
// expected counts and master-relayed fragments (plus the collect-only
// variant) and the per-partition result.
func TestWireDeliverRoundTrip(t *testing.T) {
	req := &engine.DeliverRequest{
		Superstep: 6, Combine: true,
		Parts:    []int{1, 3},
		Expected: [][]int64{{2, 0, 1, 0}, {0, 0, 0, 4}},
		MasterFrags: [][][]engine.OutMessage{
			{{{Src: 0, Dst: 1, Val: value.NewFloat(0.5)}, {Src: 4, Dst: 9, Val: value.NewInt(2)}}, nil, nil, nil},
			{nil, nil, nil, {{Src: 2, Dst: 3, Val: value.NewString("x")}}},
		},
		TraceID: 11, ParentSpan: 13,
	}
	rt, err := decodeDeliverRequest(encodeDeliverRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, rt) {
		t.Fatalf("deliver request roundtrip mismatch:\n  in  %+v\n  out %+v", req, rt)
	}

	collect := &engine.DeliverRequest{Superstep: 9, CollectOnly: true, Parts: []int{0, 2}}
	rt, err = decodeDeliverRequest(encodeDeliverRequest(collect))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(collect, rt) {
		t.Fatalf("collect request roundtrip mismatch:\n  in  %+v\n  out %+v", collect, rt)
	}

	res := &engine.DeliverResult{Parts: []engine.DeliverPart{
		{Partition: 1, OK: true, Delivered: 3, Combined: 1, Dsts: []engine.VertexID{1, 5}},
		{Partition: 3}, // not OK: no body follows
		{Partition: 0, OK: true, Dsts: []engine.VertexID{},
			Values: []value.Value{value.NewFloat(1), value.NullValue},
			Inbox: []engine.InboxChunk{{Dst: 4, Msgs: []engine.IncomingMessage{
				{Src: 2, Val: value.NewFloat(0.125)},
			}}}},
	}}
	rtr, err := decodeDeliverResult(encodeDeliverResult(res))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, rtr) {
		t.Fatalf("deliver result roundtrip mismatch:\n  in  %+v\n  out %+v", res, rtr)
	}
}

// TestWirePeerFragRoundTrip pins the worker-to-worker fragment frame.
func TestWirePeerFragRoundTrip(t *testing.T) {
	f := &peerFrag{ss: 3, sp: 1, dp: 2, msgs: []engine.OutMessage{
		{Src: 5, Dst: 6, Val: value.NewFloat(0.5)},
		{Src: 9, Dst: 6, Val: value.NewVector([]float64{1, -1})},
	}}
	rt, err := decodePeerFrag(encodePeerFrag(f))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, rt) {
		t.Fatalf("peer frag roundtrip mismatch:\n  in  %+v\n  out %+v", f, rt)
	}
}

// TestNetPeerFaultMatrix drives every canonical worker-mesh fault through a
// real resident-state run: dropped, delayed, duplicated, and reset peer
// sends, plus a receiver that drops stored fragments after acking. Every
// scenario must finish bit-identically — via the master-relay fallback, the
// frag store's keep-first dedup, or checkpoint-free replay — with no
// partition pinned local and no capture shed.
func TestNetPeerFaultMatrix(t *testing.T) {
	g := testGraph(t)
	refE, refStats, refObs, err := runLeg(t, g, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const faultPart = 1
	for name, rules := range fault.NetMatrixPeer(faultPart, 1, 2*time.Millisecond) {
		t.Run(name, func(t *testing.T) {
			m := obs.New()
			wm := obs.New() // worker-side registry: mesh traffic counts here
			inj := fault.NewInjector(rules...)
			// The injector rides on the workers: peer.send and peer.recv are
			// worker-side sites, consulted on the mesh, not the master link.
			addrs := startMeshWorkers(t, g, 2, wm, func(int) engine.Config {
				return engine.Config{Partitions: testParts, Combiner: analytics.SumCombiner, Fault: inj}
			})
			tr := dialWorkers(t, g, addrs, func(c *TCPConfig) {
				c.MessageDeadline = 200 * time.Millisecond
				c.MaxRetries = 2
				c.Backoff = time.Millisecond
				c.Metrics = m
			})
			defer tr.Close()
			deg := supervise.NewDegradeState(1)
			e, stats, o, err := runLeg(t, g, engine.Config{
				Transport: tr,
				Supervise: &supervise.Config{MaxRetries: 2, Backoff: time.Millisecond},
				Degrade:   deg,
				Metrics:   m,
			})
			if err != nil {
				t.Fatalf("%s: run failed: %v", name, err)
			}
			assertIdentical(t, name, refE, e, refStats, stats, refObs, o)
			if inj.Fired() == 0 {
				t.Errorf("%s: no fault fired", name)
			}
			if wm.Counter(obs.MetricNetPeerFrags).Value() == 0 {
				t.Errorf("%s: no fragment crossed the worker mesh", name)
			}
			if n := m.Counter(obs.MetricNetLocalFallbacks).Value(); n != 0 {
				t.Errorf("%s: %d local fallbacks; peer faults must be absorbed in the pool", name, n)
			}
			if deg.AnyShed() {
				t.Errorf("%s: capture shed; peer faults must not degrade capture", name)
			}
		})
	}
}

// startMeshWorkers is startWorkers with a worker-side metrics registry, so
// tests can assert on mesh traffic (peer frags are counted where they are
// sent — on the workers, not the master).
func startMeshWorkers(t *testing.T, g *graph.Graph, n int, wm *obs.Metrics, wcfg func(i int) engine.Config) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		cfg := engine.Config{Partitions: testParts, Combiner: analytics.SumCombiner}
		if wcfg != nil {
			cfg = wcfg(i)
		}
		x, err := engine.NewExecutor(g, testProg(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWorker(x, "127.0.0.1:0", wm)
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve()
		t.Cleanup(func() { w.Close() })
		addrs[i] = w.Addr()
	}
	return addrs
}

// TestChaosKillMidDeltaStream is the directed seed of the chaos soak: a
// worker holding resident state is killed mid-superstep — after it has
// received delta requests and shipped fragments to its peer, before the
// barrier — with checkpoints on. The survivor re-hydrates the lost
// partitions from the last checkpoint blob plus replayed supersteps, and
// the run must stay bit-identical: values, observer records, message
// accounting, zero capture gaps, zero local fallbacks.
func TestChaosKillMidDeltaStream(t *testing.T) {
	g := testGraph(t)
	refE, refStats, refObs, err := runLeg(t, g, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := obs.New()
	w0 := newTestWorker(t, g, "127.0.0.1:0")
	w1 := newTestWorker(t, g, "127.0.0.1:0")
	w1.KillAfter(5) // dies mid-stream during the third superstep of its partitions

	tr := dialWorkers(t, g, []string{w0.Addr(), w1.Addr()}, func(c *TCPConfig) {
		c.MessageDeadline = 200 * time.Millisecond
		c.MaxRetries = 1
		c.Backoff = time.Millisecond
		c.Metrics = m
	})
	defer tr.Close()
	deg := supervise.NewDegradeState(1)
	e, stats, o, err := runLeg(t, g, engine.Config{
		Transport:  tr,
		Supervise:  &supervise.Config{MaxRetries: 1, Backoff: time.Millisecond},
		Degrade:    deg,
		Metrics:    m,
		Checkpoint: &engine.CheckpointConfig{Dir: t.TempDir(), Interval: 2},
	})
	if err != nil {
		t.Fatalf("run with mid-stream kill failed: %v", err)
	}
	assertIdentical(t, "kill-mid-delta", refE, e, refStats, stats, refObs, o)
	if m.Counter(obs.MetricFailoverDeaths).Value() == 0 {
		t.Error("expected the killed worker to be declared dead")
	}
	if m.Counter(obs.MetricNetStateReseeds).Value() == 0 {
		t.Error("expected the survivor to be re-seeded with the lost partitions' state")
	}
	if n := m.Counter(obs.MetricNetLocalFallbacks).Value(); n != 0 {
		t.Errorf("failover + re-hydration should preempt local fallback, got %d", n)
	}
	if deg.AnyShed() {
		t.Error("re-hydration preserves capture; nothing should be shed")
	}
}

// TestForceFullStateDifferential pins the classic stateless exchange behind
// the ForceFullState switch: same bits, no worker mesh traffic, no resident
// deliver rounds.
func TestForceFullStateDifferential(t *testing.T) {
	g := testGraph(t)
	refE, refStats, refObs, err := runLeg(t, g, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := obs.New()
	addrs := startWorkers(t, g, 2, nil)
	tr := dialWorkers(t, g, addrs, func(c *TCPConfig) {
		c.ForceFullState = true
		c.Metrics = m
	})
	defer tr.Close()
	e, stats, o, err := runLeg(t, g, engine.Config{Transport: tr, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "full-state", refE, e, refStats, stats, refObs, o)
	if n := m.Counter(obs.MetricNetPeerFrags).Value(); n != 0 {
		t.Errorf("classic mode must not touch the worker mesh, saw %d frags", n)
	}
}

// TestNetCompressionNegotiation pins the capability handshake: with
// compression on (the default) big frames ride as snappy blocks and the
// run is bit-identical; with NoCompress the master offers no capability,
// nothing is compressed, and the run is still bit-identical.
func TestNetCompressionNegotiation(t *testing.T) {
	g := testGraph(t)
	refE, refStats, refObs, err := runLeg(t, g, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name       string
		noCompress bool
	}{{"snappy", false}, {"plain", true}} {
		t.Run(tc.name, func(t *testing.T) {
			m := obs.New()
			// ForceFullState makes the master ship full frontiers — frames big
			// enough that the compression path must engage on the snappy leg.
			addrs := startWorkers(t, g, 2, nil)
			tr := dialWorkers(t, g, addrs, func(c *TCPConfig) {
				c.ForceFullState = true
				c.NoCompress = tc.noCompress
				c.Metrics = m
			})
			defer tr.Close()
			e, stats, o, err := runLeg(t, g, engine.Config{Transport: tr, Metrics: m})
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, tc.name, refE, e, refStats, stats, refObs, o)
			frames := m.Counter(obs.MetricNetSnapFrames).Value()
			saved := m.Counter(obs.MetricNetSnapSavedB).Value()
			if tc.noCompress {
				if frames != 0 {
					t.Errorf("NoCompress leg compressed %d frames", frames)
				}
			} else {
				if frames == 0 {
					t.Error("snappy leg compressed nothing; negotiation or threshold broken")
				}
				if saved <= 0 {
					t.Errorf("compression saved %dB; blocks that do not shrink must ride raw", saved)
				}
			}
		})
	}
}
