package transport

import (
	"context"

	"ariadne/internal/engine"
)

// Local is the in-process transport leg: partition supersteps execute on an
// Executor in the master's own process, the topology every run before the
// transport seam used. With codec roundtripping enabled it additionally
// pushes every request and result through the wire encoding, so the codec
// is exercised (and differentially testable) without a socket in the path.
type Local struct {
	x     *engine.Executor
	codec bool
}

// NewLocal creates the direct in-process leg over x.
func NewLocal(x *engine.Executor) *Local { return &Local{x: x} }

// NewLocalCodec creates an in-process leg that roundtrips every request and
// result through the wire codec — the TCP leg's serialization with none of
// its sockets, for bit-identity tests of the encoding alone.
func NewLocalCodec(x *engine.Executor) *Local { return &Local{x: x, codec: true} }

// Exec implements engine.Transport.
func (l *Local) Exec(ctx context.Context, req *engine.ExecRequest) (*engine.ExecResult, error) {
	if !l.codec {
		return l.x.Exec(ctx, req), nil
	}
	rt, err := decodeExecRequest(encodeExecRequest(req))
	if err != nil {
		return nil, err
	}
	return decodeExecResult(encodeExecResult(l.x.Exec(ctx, rt)))
}

// Close implements engine.Transport; the executor has nothing to release.
func (l *Local) Close() error { return nil }
