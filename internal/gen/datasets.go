package gen

import (
	"fmt"
	"sort"

	"ariadne/internal/graph"
)

// Dataset names a scaled-down stand-in for one of the paper's inputs
// (Table 2). Scale factors keep the *relative* sizes and average degrees of
// the originals while fitting a laptop: IN-04 < UK-02 < AR-05 < UK-05.
type Dataset struct {
	Name      string
	PaperName string
	Scale     int     // vertices = 2^Scale
	AvgDeg    float64 // matches the paper's Table 2 average degree
	Seed      int64
}

// WebDatasets mirrors the paper's four web graphs, smallest to largest.
// At SizeFactor=0 (default benchmark size) they span 2^12..2^15 vertices;
// each +1 of sizeFactor doubles every dataset.
func WebDatasets(sizeFactor int) []Dataset {
	return []Dataset{
		{Name: "IN-04", PaperName: "indochina-2004", Scale: 12 + sizeFactor, AvgDeg: 26.17, Seed: 1},
		{Name: "UK-02", PaperName: "uk-2002", Scale: 13 + sizeFactor, AvgDeg: 16.01, Seed: 2},
		{Name: "AR-05", PaperName: "arabic-2005", Scale: 14 + sizeFactor, AvgDeg: 28.14, Seed: 3},
		{Name: "UK-05", PaperName: "uk-2005", Scale: 15 + sizeFactor, AvgDeg: 23.73, Seed: 4},
	}
}

// Build generates the dataset's graph.
func (d Dataset) Build() (*graph.Graph, error) {
	return RMAT(DefaultRMAT(d.Scale, d.AvgDeg, d.Seed))
}

// FindDataset returns the web dataset with the given name.
func FindDataset(name string, sizeFactor int) (Dataset, error) {
	for _, d := range WebDatasets(sizeFactor) {
		if d.Name == name {
			return d, nil
		}
	}
	var names []string
	for _, d := range WebDatasets(sizeFactor) {
		names = append(names, d.Name)
	}
	sort.Strings(names)
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q (have %v)", name, names)
}

// MLDataset builds the MovieLens-20M stand-in at the benchmark scale:
// a bipartite ratings graph (users ≈ 5×items, Zipf item popularity).
// Negative size factors halve the dataset per step; the user and item
// counts are floored at 50 and 10.
func MLDataset(sizeFactor int) (*Ratings, error) {
	users, items := 2000, 400
	for f := sizeFactor; f > 0; f-- {
		users *= 2
		items *= 2
	}
	for f := sizeFactor; f < 0; f++ {
		users /= 2
		items /= 2
	}
	if users < 50 {
		users = 50
	}
	if items < 10 {
		items = 10
	}
	return Bipartite(DefaultBipartite(users, items, 10, 20))
}

// CorruptWeights returns a copy of g where every k-th edge weight is negated,
// simulating the corrupted-input scenario of paper Query 5 (§6.2.1:
// "if there is an edge with negative weight, the query will highlight it").
func CorruptWeights(g *graph.Graph, k int) (*graph.Graph, error) {
	if k <= 0 {
		return nil, fmt.Errorf("gen: corruption interval must be positive")
	}
	var edges []graph.Edge
	idx := 0
	for v := 0; v < g.NumVertices(); v++ {
		dst, w := g.OutNeighbors(graph.VertexID(v))
		for i, d := range dst {
			wt := w[i]
			if idx%k == k-1 {
				wt = -wt
			}
			idx++
			edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: d, Weight: wt})
		}
	}
	return graph.NewFromEdges(g.NumVertices(), edges)
}
