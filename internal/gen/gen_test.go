package gen

import (
	"math"
	"testing"

	"ariadne/internal/graph"
)

func TestRMATDeterministic(t *testing.T) {
	cfg := DefaultRMAT(8, 8, 42)
	g1, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() || g1.NumVertices() != g2.NumVertices() {
		t.Fatal("same seed must give same graph size")
	}
	for v := 0; v < g1.NumVertices(); v++ {
		d1, _ := g1.OutNeighbors(graph.VertexID(v))
		d2, _ := g2.OutNeighbors(graph.VertexID(v))
		if len(d1) != len(d2) {
			t.Fatalf("vertex %d degree differs", v)
		}
		for i := range d1 {
			if d1[i] != d2[i] {
				t.Fatalf("vertex %d edges differ", v)
			}
		}
	}
}

func TestRMATShape(t *testing.T) {
	g, err := RMAT(DefaultRMAT(10, 16, 7))
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << 10
	if g.NumVertices() != n {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// edges = avgdeg*n + (n-1) connectivity path
	want := 16*n + n - 1
	if g.NumEdges() != want {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), want)
	}
	// Power-law: max degree should be far above average.
	st := graph.ComputeStats(g, 0, 0)
	if st.MaxOutDeg < 4*int(st.AvgDegree) {
		t.Errorf("expected skewed degrees: max=%d avg=%.1f", st.MaxOutDeg, st.AvgDegree)
	}
	// No self-loops, weights in range.
	for v := 0; v < n; v++ {
		dst, w := g.OutNeighbors(graph.VertexID(v))
		for i, d := range dst {
			if d == graph.VertexID(v) {
				t.Fatalf("self loop at %d", v)
			}
			if w[i] <= 0 || w[i] > 1 {
				t.Fatalf("weight %v out of (0,1]", w[i])
			}
		}
	}
}

func TestRMATConnected(t *testing.T) {
	g, err := RMAT(DefaultRMAT(9, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Weak connectivity: union-find over undirected view.
	u := g.Undirected()
	parent := make([]int, u.NumVertices())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for v := 0; v < u.NumVertices(); v++ {
		dst, _ := u.OutNeighbors(graph.VertexID(v))
		for _, d := range dst {
			parent[find(v)] = find(int(d))
		}
	}
	root := find(0)
	for v := range parent {
		if find(v) != root {
			t.Fatalf("graph not weakly connected at vertex %d", v)
		}
	}
}

func TestRMATValidation(t *testing.T) {
	if _, err := RMAT(RMATConfig{Scale: 0}); err == nil {
		t.Error("scale 0 should fail")
	}
	bad := DefaultRMAT(5, 2, 1)
	bad.A = 0
	if _, err := RMAT(bad); err == nil {
		t.Error("a=0 should fail")
	}
	bad2 := DefaultRMAT(5, 2, 1)
	bad2.MaxWeight = bad2.MinWeight - 1
	if _, err := RMAT(bad2); err == nil {
		t.Error("max<min weight should fail")
	}
}

func TestBipartite(t *testing.T) {
	r, err := Bipartite(DefaultBipartite(100, 20, 5, 11))
	if err != nil {
		t.Fatal(err)
	}
	if r.Graph.NumVertices() != 120 {
		t.Fatalf("vertices = %d", r.Graph.NumVertices())
	}
	if !r.IsUser(0) || !r.IsUser(99) || r.IsUser(100) {
		t.Error("IsUser boundary wrong")
	}
	// Every user edge points to the item side and carries a rating in [0.5,5];
	// each edge has its mirror.
	for u := 0; u < 100; u++ {
		dst, w := r.Graph.OutNeighbors(graph.VertexID(u))
		if len(dst) != 5 {
			t.Fatalf("user %d has %d ratings, want 5", u, len(dst))
		}
		for i, d := range dst {
			if r.IsUser(d) {
				t.Fatalf("user->user edge %d->%d", u, d)
			}
			if w[i] < 0.5 || w[i] > 5 {
				t.Fatalf("rating %v out of range", w[i])
			}
			if rw, ok := r.Graph.EdgeWeight(d, graph.VertexID(u)); !ok || rw != w[i] {
				t.Fatalf("missing mirror edge %d->%d", d, u)
			}
			if math.Mod(w[i]*2, 1) != 0 {
				t.Fatalf("rating %v not half-star", w[i])
			}
		}
	}
}

func TestBipartiteValidation(t *testing.T) {
	if _, err := Bipartite(BipartiteConfig{NumUsers: 0, NumItems: 1, RatingsPerUser: 1, Rank: 1}); err == nil {
		t.Error("zero users should fail")
	}
	if _, err := Bipartite(BipartiteConfig{NumUsers: 1, NumItems: 1, RatingsPerUser: 1, Rank: 0}); err == nil {
		t.Error("zero rank should fail")
	}
}

func TestDatasets(t *testing.T) {
	ds := WebDatasets(0)
	if len(ds) != 4 {
		t.Fatalf("want 4 datasets, got %d", len(ds))
	}
	for i := 1; i < len(ds); i++ {
		if ds[i].Scale <= ds[i-1].Scale {
			t.Error("datasets must grow in size like the paper's")
		}
	}
	d, err := FindDataset("IN-04", 0)
	if err != nil || d.PaperName != "indochina-2004" {
		t.Errorf("FindDataset: %v %v", d, err)
	}
	if _, err := FindDataset("nope", 0); err == nil {
		t.Error("unknown dataset should fail")
	}
	g, err := ds[0].Build()
	if err != nil {
		t.Fatal(err)
	}
	st := graph.ComputeStats(g, 0, 0)
	if math.Abs(st.AvgDegree-ds[0].AvgDeg) > 2 {
		t.Errorf("avg degree %.1f should approximate paper's %.1f", st.AvgDegree, ds[0].AvgDeg)
	}
}

func TestMLDataset(t *testing.T) {
	r, err := MLDataset(0)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumUsers != 2000 || r.NumItems != 400 {
		t.Errorf("ML sizes: %d users %d items", r.NumUsers, r.NumItems)
	}
}

func TestCorruptWeights(t *testing.T) {
	g, err := RMAT(DefaultRMAT(6, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	c, err := CorruptWeights(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	neg := 0
	for v := 0; v < c.NumVertices(); v++ {
		_, w := c.OutNeighbors(graph.VertexID(v))
		for _, x := range w {
			if x < 0 {
				neg++
			}
		}
	}
	want := g.NumEdges() / 10
	if neg < want-1 || neg > want+1 {
		t.Errorf("corrupted %d edges, want ~%d", neg, want)
	}
	if _, err := CorruptWeights(g, 0); err == nil {
		t.Error("k=0 should fail")
	}
}
