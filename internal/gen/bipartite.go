package gen

import (
	"fmt"
	"math/rand"

	"ariadne/internal/graph"
)

// Ratings is a synthetic user-item rating graph standing in for the paper's
// MovieLens-20M dataset (§6: 138 493 users, 26 744 movies, 20M ratings,
// ratings in [0,5]). Ratings are produced by a planted low-rank model:
// rating(u,i) = clamp(<p_u, q_i> + noise, 0.5, 5) so ALS has signal to fit.
type Ratings struct {
	// Graph is bipartite: vertices [0,NumUsers) are users,
	// [NumUsers, NumUsers+NumItems) are items. Edges run user->item AND
	// item->user (both directions carry the rating as weight) because ALS
	// alternates message flow between the two sides.
	Graph    *graph.Graph
	NumUsers int
	NumItems int
	Rank     int // rank of the planted factor model
}

// IsUser reports whether vertex v is on the user side.
func (r *Ratings) IsUser(v graph.VertexID) bool { return int(v) < r.NumUsers }

// BipartiteConfig parameterizes the ratings generator.
type BipartiteConfig struct {
	NumUsers, NumItems int
	RatingsPerUser     int
	Rank               int     // planted factor rank
	Noise              float64 // gaussian noise stddev added to ratings
	Seed               int64
}

// DefaultBipartite returns a config shaped like a scaled-down ML-20
// (users ≈ 5×items, ~dozens of ratings per user).
func DefaultBipartite(users, items, perUser int, seed int64) BipartiteConfig {
	return BipartiteConfig{
		NumUsers: users, NumItems: items, RatingsPerUser: perUser,
		Rank: 4, Noise: 0.3, Seed: seed,
	}
}

// Bipartite generates a synthetic ratings graph.
func Bipartite(cfg BipartiteConfig) (*Ratings, error) {
	if cfg.NumUsers <= 0 || cfg.NumItems <= 0 || cfg.RatingsPerUser <= 0 {
		return nil, fmt.Errorf("gen: bipartite sizes must be positive")
	}
	if cfg.Rank <= 0 {
		return nil, fmt.Errorf("gen: rank must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	userF := randomFactors(rng, cfg.NumUsers, cfg.Rank)
	itemF := randomFactors(rng, cfg.NumItems, cfg.Rank)
	n := cfg.NumUsers + cfg.NumItems
	edges := make([]graph.Edge, 0, 2*cfg.NumUsers*cfg.RatingsPerUser)
	for u := 0; u < cfg.NumUsers; u++ {
		seen := make(map[int]bool, cfg.RatingsPerUser)
		for len(seen) < cfg.RatingsPerUser && len(seen) < cfg.NumItems {
			// Zipf-ish popularity: square the uniform sample toward item 0.
			it := int(float64(cfg.NumItems) * rng.Float64() * rng.Float64())
			if it >= cfg.NumItems {
				it = cfg.NumItems - 1
			}
			if seen[it] {
				continue
			}
			seen[it] = true
			r := dot(userF[u], itemF[it]) + rng.NormFloat64()*cfg.Noise
			if r < 0.5 {
				r = 0.5
			}
			if r > 5 {
				r = 5
			}
			// Round to half-star like real rating data.
			r = float64(int(r*2+0.5)) / 2
			uid := uint32(u)
			iid := uint32(cfg.NumUsers + it)
			edges = append(edges,
				graph.Edge{Src: uid, Dst: iid, Weight: r},
				graph.Edge{Src: iid, Dst: uid, Weight: r},
			)
		}
	}
	g, err := graph.NewFromEdges(n, edges)
	if err != nil {
		return nil, err
	}
	return &Ratings{Graph: g, NumUsers: cfg.NumUsers, NumItems: cfg.NumItems, Rank: cfg.Rank}, nil
}

// randomFactors draws factors whose inner products land mostly in [1,5].
func randomFactors(rng *rand.Rand, n, k int) [][]float64 {
	f := make([][]float64, n)
	scale := 1.7 / float64(k) // E[<p,q>] ≈ k * scale^2 * E[u^2] tuned to ~3
	_ = scale
	for i := range f {
		row := make([]float64, k)
		for j := range row {
			row[j] = 0.5 + rng.Float64()*1.5/float64(k)*4
		}
		f[i] = row
	}
	return f
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
