// Package gen produces the synthetic datasets that stand in for the paper's
// evaluation inputs (DESIGN.md §2): R-MAT power-law digraphs replace the
// indochina/uk/arabic web crawls, and a planted-factor bipartite graph
// replaces MovieLens-20M. All generators are deterministic given a seed.
package gen

import (
	"fmt"
	"math/rand"

	"ariadne/internal/graph"
)

// RMATConfig parameterizes the recursive-matrix (R-MAT) generator.
// The defaults (a=0.57,b=0.19,c=0.19,d=0.05) produce the skewed degree
// distributions characteristic of web crawls like the paper's datasets.
type RMATConfig struct {
	Scale    int     // number of vertices = 2^Scale
	EdgesPer float64 // average out-degree; edges = EdgesPer * 2^Scale
	A, B, C  float64 // R-MAT quadrant probabilities (D = 1-A-B-C)
	Seed     int64

	// MinWeight/MaxWeight give edge weights uniform in [MinWeight, MaxWeight).
	// The paper assigns random weights in (0,1] to SSSP inputs (§6).
	MinWeight, MaxWeight float64

	// Connect ensures weak connectivity by threading the consecutive-ID
	// path 0->1->...->n-1 through all vertices (one extra edge per vertex).
	// This keeps SSSP and WCC traces from dying in tiny components, and it
	// reproduces the *crawl-order ID locality* of the paper's web datasets:
	// real crawls assign adjacent IDs to neighboring pages, which is what
	// makes WCC label updates of exactly 1 common (and the ε=1 approximate
	// WCC of §6.2.2 unsafe).
	Connect bool
}

// DefaultRMAT returns a config matched to the paper's web graphs:
// power-law degrees, average degree ~16-28, connected.
func DefaultRMAT(scale int, avgDeg float64, seed int64) RMATConfig {
	return RMATConfig{
		Scale: scale, EdgesPer: avgDeg,
		A: 0.57, B: 0.19, C: 0.19,
		Seed: seed, MinWeight: 0.001, MaxWeight: 1.0,
		Connect: true,
	}
}

// RMAT generates a power-law digraph.
func RMAT(cfg RMATConfig) (*graph.Graph, error) {
	if cfg.Scale < 1 || cfg.Scale > 30 {
		return nil, fmt.Errorf("gen: scale %d out of range [1,30]", cfg.Scale)
	}
	if cfg.A <= 0 || cfg.B < 0 || cfg.C < 0 || cfg.A+cfg.B+cfg.C >= 1 {
		return nil, fmt.Errorf("gen: bad R-MAT probabilities a=%v b=%v c=%v", cfg.A, cfg.B, cfg.C)
	}
	if cfg.MaxWeight < cfg.MinWeight {
		return nil, fmt.Errorf("gen: MaxWeight < MinWeight")
	}
	n := 1 << cfg.Scale
	m := int(cfg.EdgesPer * float64(n))
	rng := rand.New(rand.NewSource(cfg.Seed))
	edges := make([]graph.Edge, 0, m+n)
	weight := func() float64 {
		if cfg.MaxWeight == cfg.MinWeight {
			return cfg.MinWeight
		}
		return cfg.MinWeight + rng.Float64()*(cfg.MaxWeight-cfg.MinWeight)
	}
	for i := 0; i < m; i++ {
		src, dst := rmatEdge(rng, cfg, cfg.Scale)
		if src == dst {
			dst = (dst + 1) % uint32(n) // avoid self loops
		}
		edges = append(edges, graph.Edge{Src: src, Dst: dst, Weight: weight()})
	}
	if cfg.Connect {
		for i := 1; i < n; i++ {
			edges = append(edges, graph.Edge{
				Src: uint32(i - 1), Dst: uint32(i), Weight: weight(),
			})
		}
	}
	return graph.NewFromEdges(n, edges)
}

func rmatEdge(rng *rand.Rand, cfg RMATConfig, scale int) (uint32, uint32) {
	var src, dst uint32
	for bit := 0; bit < scale; bit++ {
		r := rng.Float64()
		switch {
		case r < cfg.A:
			// top-left: neither bit set
		case r < cfg.A+cfg.B:
			dst |= 1 << bit
		case r < cfg.A+cfg.B+cfg.C:
			src |= 1 << bit
		default:
			src |= 1 << bit
			dst |= 1 << bit
		}
	}
	return src, dst
}
