package cliutil

import (
	"errors"
	"fmt"
)

// RunFlags captures the cmd/ariadne run flags whose combinations can
// contradict each other. Validation lives here, not in main, so the rules
// are unit-testable without spawning the binary.
type RunFlags struct {
	Transport   string // "", "inproc", or "tcp"
	Workers     int    // worker processes to spawn (tcp only)
	WorkerAddrs string // comma-separated addresses of already-running workers (tcp only)
	SeqBarrier  bool
	Resume      bool
	Checkpoint  string
}

// ValidateRunFlags rejects contradictory flag combinations with an error
// naming both flags, instead of letting the run fail later with a message
// about internals the user never asked for.
func ValidateRunFlags(f RunFlags) error {
	switch f.Transport {
	case "", "inproc", "tcp":
	default:
		return fmt.Errorf("-transport %q: want inproc or tcp", f.Transport)
	}
	tcp := f.Transport == "tcp"
	if f.SeqBarrier && tcp {
		return errors.New("-seq-barrier is the reference in-process barrier; it cannot drive remote workers (-transport tcp)")
	}
	if f.Resume && f.Checkpoint == "" {
		return errors.New("-resume needs -checkpoint to locate checkpoints")
	}
	if !tcp && f.Workers > 0 {
		return errors.New("-workers only applies with -transport tcp")
	}
	if !tcp && f.WorkerAddrs != "" {
		return errors.New("-worker-addrs only applies with -transport tcp")
	}
	if f.Workers > 0 && f.WorkerAddrs != "" {
		return errors.New("-workers spawns workers and -worker-addrs connects to running ones; pass one or the other")
	}
	if f.Workers < 0 {
		return fmt.Errorf("-workers %d: want a positive count", f.Workers)
	}
	return nil
}
