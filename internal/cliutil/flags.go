package cliutil

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// RunFlags captures the cmd/ariadne run flags whose combinations can
// contradict each other. Validation lives here, not in main, so the rules
// are unit-testable without spawning the binary.
type RunFlags struct {
	Transport       string // "", "inproc", or "tcp"
	Workers         int    // worker processes to spawn (tcp only)
	WorkerAddrs     string // comma-separated addresses of already-running workers (tcp only)
	Heartbeat       time.Duration
	HeartbeatMisses int
	SeqBarrier      bool
	Resume          bool
	Checkpoint      string
}

// ValidateRunFlags rejects contradictory flag combinations with an error
// naming both flags, instead of letting the run fail later with a message
// about internals the user never asked for.
func ValidateRunFlags(f RunFlags) error {
	switch f.Transport {
	case "", "inproc", "tcp":
	default:
		return fmt.Errorf("-transport %q: want inproc or tcp", f.Transport)
	}
	tcp := f.Transport == "tcp"
	if f.SeqBarrier && tcp {
		return errors.New("-seq-barrier is the reference in-process barrier; it cannot drive remote workers (-transport tcp)")
	}
	if f.Resume && f.Checkpoint == "" {
		return errors.New("-resume needs -checkpoint to locate checkpoints")
	}
	if !tcp && f.Workers > 0 {
		return errors.New("-workers only applies with -transport tcp")
	}
	if !tcp && f.WorkerAddrs != "" {
		return errors.New("-worker-addrs only applies with -transport tcp")
	}
	if f.Workers > 0 && f.WorkerAddrs != "" {
		return errors.New("-workers spawns workers and -worker-addrs connects to running ones; pass one or the other")
	}
	if f.Workers < 0 {
		return fmt.Errorf("-workers %d: want a positive count", f.Workers)
	}
	if f.WorkerAddrs != "" {
		// A duplicated address would make two pool slots share one worker:
		// its death would be counted twice, failover would "reroute" onto
		// the same dead process, and the capacity the user thinks they have
		// is a lie. Reject it up front.
		seen := map[string]bool{}
		for _, addr := range strings.Split(f.WorkerAddrs, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				return errors.New("-worker-addrs: empty address in list")
			}
			if seen[addr] {
				return fmt.Errorf("-worker-addrs: duplicate address %s", addr)
			}
			seen[addr] = true
		}
	}
	if f.Heartbeat < 0 {
		return fmt.Errorf("-net-heartbeat %v: want a non-negative interval (0 disables probing)", f.Heartbeat)
	}
	if f.HeartbeatMisses < 0 {
		return fmt.Errorf("-net-heartbeat-misses %d: want a positive miss budget", f.HeartbeatMisses)
	}
	if f.Heartbeat == 0 && f.HeartbeatMisses > 0 && tcp {
		return errors.New("-net-heartbeat-misses needs -net-heartbeat to enable probing")
	}
	return nil
}
