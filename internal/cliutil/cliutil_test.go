package cliutil

import (
	"testing"

	"ariadne/internal/pql/analysis"
	"ariadne/internal/value"
)

func TestParseScalar(t *testing.T) {
	cases := []struct {
		in   string
		want value.Value
	}{
		{"42", value.NewInt(42)},
		{"-7", value.NewInt(-7)},
		{"0.5", value.NewFloat(0.5)},
		{"1e-3", value.NewFloat(0.001)},
		{"true", value.NewBool(true)},
		{"false", value.NewBool(false)},
		{"hello", value.NewString("hello")},
		{"", value.NewString("")},
	}
	for _, c := range cases {
		got := ParseScalar(c.in)
		if !got.Equal(c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("ParseScalar(%q) = %v (%v), want %v (%v)", c.in, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestParamsApply(t *testing.T) {
	var p Params
	if err := p.Set("eps=0.01"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("alpha=5"); err != nil {
		t.Fatal(err)
	}
	if p.String() != "eps=0.01,alpha=5" {
		t.Errorf("String = %q", p.String())
	}
	env := analysis.NewEnv()
	if err := p.Apply(env); err != nil {
		t.Fatal(err)
	}
	if env.Params["eps"].Float() != 0.01 || env.Params["alpha"].Int() != 5 {
		t.Errorf("params = %v", env.Params)
	}
	bad := Params{"noequals"}
	if err := bad.Apply(env); err == nil {
		t.Error("missing '=' should fail")
	}
	bad2 := Params{"=v"}
	if err := bad2.Apply(env); err == nil {
		t.Error("empty name should fail")
	}
}

func TestApplyEDBs(t *testing.T) {
	env := analysis.NewEnv()
	if err := ApplyEDBs(env, "prov_error:4,prov_prediction:4"); err != nil {
		t.Fatal(err)
	}
	if a, ok := env.EDBArity("prov_error"); !ok || a != 4 {
		t.Errorf("prov_error arity = %d %v", a, ok)
	}
	if err := ApplyEDBs(env, ""); err != nil {
		t.Error("empty spec should be a no-op")
	}
	for _, bad := range []string{"noarity", "x:abc", "x:0", ":4"} {
		if err := ApplyEDBs(analysis.NewEnv(), bad); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}
