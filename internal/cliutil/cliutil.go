// Package cliutil holds small flag-parsing helpers shared by the command
// line tools (cmd/ariadne, cmd/pqlc).
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"ariadne/internal/pql/analysis"
	"ariadne/internal/value"
)

// Params collects repeatable -param name=value flags.
type Params []string

// String implements flag.Value.
func (p *Params) String() string { return strings.Join(*p, ",") }

// Set implements flag.Value.
func (p *Params) Set(s string) error {
	*p = append(*p, s)
	return nil
}

// Apply parses each name=value pair into env parameters.
func (p Params) Apply(env *analysis.Env) error {
	for _, raw := range p {
		name, val, ok := strings.Cut(raw, "=")
		if !ok || name == "" {
			return fmt.Errorf("bad -param %q, want name=value", raw)
		}
		env.SetParam(name, ParseScalar(val))
	}
	return nil
}

// ParseScalar interprets a flag value as the most specific PQL constant:
// int, then float, then bool, then string.
func ParseScalar(raw string) value.Value {
	if n, err := strconv.ParseInt(raw, 10, 64); err == nil {
		return value.NewInt(n)
	}
	if f, err := strconv.ParseFloat(raw, 64); err == nil {
		return value.NewFloat(f)
	}
	if raw == "true" || raw == "false" {
		return value.NewBool(raw == "true")
	}
	return value.NewString(raw)
}

// ApplyEDBs parses a comma-separated list of name:arity declarations
// (e.g. "prov_error:4,prov_prediction:4") into env EDB declarations.
func ApplyEDBs(env *analysis.Env, spec string) error {
	if spec == "" {
		return nil
	}
	for _, decl := range strings.Split(spec, ",") {
		name, arityStr, ok := strings.Cut(decl, ":")
		if !ok || name == "" {
			return fmt.Errorf("bad EDB declaration %q, want name:arity", decl)
		}
		arity, err := strconv.Atoi(arityStr)
		if err != nil || arity <= 0 {
			return fmt.Errorf("bad EDB arity in %q", decl)
		}
		env.DeclareEDB(name, arity)
	}
	return nil
}
