package cliutil

import (
	"strings"
	"testing"
	"time"
)

func TestValidateRunFlags(t *testing.T) {
	cases := []struct {
		name    string
		f       RunFlags
		wantErr string // substring, "" = valid
	}{
		{"default", RunFlags{}, ""},
		{"inproc", RunFlags{Transport: "inproc"}, ""},
		{"tcp spawn", RunFlags{Transport: "tcp", Workers: 2}, ""},
		{"tcp attach", RunFlags{Transport: "tcp", WorkerAddrs: "127.0.0.1:7100"}, ""},
		{"resume with checkpoint", RunFlags{Resume: true, Checkpoint: "ck"}, ""},
		{"seq barrier local", RunFlags{SeqBarrier: true}, ""},
		{"tcp attach multi", RunFlags{Transport: "tcp", WorkerAddrs: "127.0.0.1:7100,127.0.0.1:7101"}, ""},
		{"heartbeat configured", RunFlags{Transport: "tcp", Workers: 2, Heartbeat: 250 * time.Millisecond, HeartbeatMisses: 2}, ""},
		{"heartbeat disabled", RunFlags{Transport: "tcp", Workers: 2}, ""},

		{"unknown transport", RunFlags{Transport: "udp"}, `-transport "udp"`},
		{"seq barrier over tcp", RunFlags{Transport: "tcp", SeqBarrier: true}, "-seq-barrier"},
		{"resume without checkpoint", RunFlags{Resume: true}, "-resume needs -checkpoint"},
		{"workers without tcp", RunFlags{Workers: 2}, "-workers only applies"},
		{"addrs without tcp", RunFlags{WorkerAddrs: "127.0.0.1:7100"}, "-worker-addrs only applies"},
		{"workers and addrs", RunFlags{Transport: "tcp", Workers: 2, WorkerAddrs: "127.0.0.1:7100"}, "one or the other"},
		{"negative workers", RunFlags{Transport: "tcp", Workers: -1}, "positive count"},
		{"duplicate addrs", RunFlags{Transport: "tcp", WorkerAddrs: "127.0.0.1:7100,127.0.0.1:7100"},
			"duplicate address 127.0.0.1:7100"},
		{"duplicate addrs spaced", RunFlags{Transport: "tcp", WorkerAddrs: "127.0.0.1:7100, 127.0.0.1:7100"},
			"duplicate address"},
		{"empty addr entry", RunFlags{Transport: "tcp", WorkerAddrs: "127.0.0.1:7100,,127.0.0.1:7101"},
			"empty address"},
		{"negative heartbeat", RunFlags{Transport: "tcp", Workers: 1, Heartbeat: -time.Second}, "-net-heartbeat"},
		{"negative misses", RunFlags{Transport: "tcp", Workers: 1, Heartbeat: time.Second, HeartbeatMisses: -1},
			"-net-heartbeat-misses"},
		{"misses without probing", RunFlags{Transport: "tcp", Workers: 1, HeartbeatMisses: 3},
			"needs -net-heartbeat"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateRunFlags(tc.f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
