package cliutil

import (
	"strings"
	"testing"
)

func TestValidateRunFlags(t *testing.T) {
	cases := []struct {
		name    string
		f       RunFlags
		wantErr string // substring, "" = valid
	}{
		{"default", RunFlags{}, ""},
		{"inproc", RunFlags{Transport: "inproc"}, ""},
		{"tcp spawn", RunFlags{Transport: "tcp", Workers: 2}, ""},
		{"tcp attach", RunFlags{Transport: "tcp", WorkerAddrs: "127.0.0.1:7100"}, ""},
		{"resume with checkpoint", RunFlags{Resume: true, Checkpoint: "ck"}, ""},
		{"seq barrier local", RunFlags{SeqBarrier: true}, ""},

		{"unknown transport", RunFlags{Transport: "udp"}, `-transport "udp"`},
		{"seq barrier over tcp", RunFlags{Transport: "tcp", SeqBarrier: true}, "-seq-barrier"},
		{"resume without checkpoint", RunFlags{Resume: true}, "-resume needs -checkpoint"},
		{"workers without tcp", RunFlags{Workers: 2}, "-workers only applies"},
		{"addrs without tcp", RunFlags{WorkerAddrs: "127.0.0.1:7100"}, "-worker-addrs only applies"},
		{"workers and addrs", RunFlags{Transport: "tcp", Workers: 2, WorkerAddrs: "127.0.0.1:7100"}, "one or the other"},
		{"negative workers", RunFlags{Transport: "tcp", Workers: -1}, "positive count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateRunFlags(tc.f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
