package driver

import (
	"errors"

	"ariadne/internal/engine"
	"ariadne/internal/graph"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/pql/eval"
	"ariadne/internal/provenance"
	"ariadne/internal/value"
)

// staticGraph adapts graph.Graph to the compiled evaluator's StaticGraph.
type staticGraph struct {
	g *graph.Graph
	// cached int64 views of the CSR (the compiled evaluator uses int64 ids).
	out  [][]int64
	outW [][]float64
	in   [][]int64
}

func newStaticGraph(g *graph.Graph) *staticGraph {
	sg := &staticGraph{g: g}
	n := g.NumVertices()
	sg.out = make([][]int64, n)
	sg.outW = make([][]float64, n)
	for v := 0; v < n; v++ {
		dst, w := g.OutNeighbors(graph.VertexID(v))
		o := make([]int64, len(dst))
		for i, d := range dst {
			o[i] = int64(d)
		}
		sg.out[v] = o
		sg.outW[v] = w
	}
	if g.HasInEdges() {
		sg.in = make([][]int64, n)
		for v := 0; v < n; v++ {
			src, _ := g.InNeighbors(graph.VertexID(v))
			s := make([]int64, len(src))
			for i, d := range src {
				s[i] = int64(d)
			}
			sg.in[v] = s
		}
	}
	return sg
}

func (s *staticGraph) NumVertices() int { return s.g.NumVertices() }

func (s *staticGraph) OutNeighbors(v int64) ([]int64, []float64) {
	if v < 0 || int(v) >= len(s.out) {
		return nil, nil
	}
	return s.out[v], s.outW[v]
}

func (s *staticGraph) InNeighbors(v int64) []int64 {
	if s.in == nil || v < 0 || int(v) >= len(s.in) {
		return nil
	}
	return s.in[v]
}

func (s *staticGraph) EdgeWeight(src, dst int64) (float64, bool) {
	if src < 0 || int(src) >= s.g.NumVertices() || dst < 0 || int(dst) >= s.g.NumVertices() {
		return 0, false
	}
	return s.g.EdgeWeight(graph.VertexID(src), graph.VertexID(dst))
}

// tryCompile attempts the compiled (vertex-program) evaluation path,
// falling back to the interpretive evaluator when the query's shape needs
// it (aggregates, non-local EDB joins).
func tryCompile(q *analysis.Query, db *eval.Database, g *graph.Graph) (*eval.Compiled, bool) {
	if _, usesEdges := q.EDBs["edge"]; usesEdges {
		g.BuildInEdges() // idempotent; compiled edge(Y, X) steps enumerate in-neighbors
	}
	c, err := eval.Compile(q, db, newStaticGraph(g))
	if err != nil {
		if !errors.Is(err, eval.ErrNotCompilable) {
			return nil, false
		}
		return nil, false
	}
	return c, true
}

// recordViews converts provenance records to compiled-evaluator views,
// maintaining the per-vertex retention needed for evolution joins.
type viewBuilder struct {
	ret map[graph.VertexID]value.Value
}

func newViewBuilder() *viewBuilder {
	return &viewBuilder{ret: map[graph.VertexID]value.Value{}}
}

func (vb *viewBuilder) fromProv(l *provenance.Layer) []eval.RecordView {
	out := make([]eval.RecordView, len(l.Records))
	for i := range l.Records {
		r := &l.Records[i]
		rv := eval.RecordView{
			Vertex:     int64(r.Vertex),
			Superstep:  int64(l.Superstep),
			HasValue:   r.HasValue,
			Value:      r.Value,
			PrevActive: int64(r.PrevActive),
			SentAny:    r.SentAny || len(r.Sends) > 0,
		}
		if r.PrevActive >= 0 {
			if pv, ok := vb.ret[r.Vertex]; ok {
				rv.PrevValue = pv
				rv.HasPrevValue = true
			}
		}
		if len(r.Sends) > 0 {
			rv.Sends = make([]eval.MsgView, len(r.Sends))
			for j, m := range r.Sends {
				rv.Sends[j] = eval.MsgView{Peer: int64(m.Peer), Val: m.Val}
			}
		}
		if len(r.Recvs) > 0 {
			rv.Recvs = make([]eval.MsgView, len(r.Recvs))
			for j, m := range r.Recvs {
				rv.Recvs[j] = eval.MsgView{Peer: int64(m.Peer), Val: m.Val}
			}
		}
		if len(r.Emitted) > 0 {
			rv.Emitted = make([]eval.FactView, len(r.Emitted))
			for j, f := range r.Emitted {
				rv.Emitted[j] = eval.FactView{Table: f.Table, Args: f.Args}
			}
		}
		if r.HasValue {
			vb.ret[r.Vertex] = r.Value
		}
		out[i] = rv
	}
	return out
}

func (vb *viewBuilder) fromEngine(recs []engine.VertexRecord) []eval.RecordView {
	out := make([]eval.RecordView, len(recs))
	for i := range recs {
		r := &recs[i]
		rv := eval.RecordView{
			Vertex:     int64(r.ID),
			Superstep:  int64(r.Superstep),
			HasValue:   true,
			Value:      r.NewValue,
			PrevActive: int64(r.PrevActive),
			SentAny:    len(r.Sent) > 0,
		}
		if r.PrevActive >= 0 {
			// The engine's OldValue is the value after the previous compute,
			// i.e. exactly the value at PrevActive.
			rv.PrevValue = r.OldValue
			rv.HasPrevValue = true
		}
		if len(r.Sent) > 0 {
			rv.Sends = make([]eval.MsgView, len(r.Sent))
			for j, m := range r.Sent {
				rv.Sends[j] = eval.MsgView{Peer: int64(m.Dst), Val: m.Val}
			}
		}
		if len(r.Received) > 0 {
			rv.Recvs = make([]eval.MsgView, len(r.Received))
			for j, m := range r.Received {
				rv.Recvs[j] = eval.MsgView{Peer: int64(m.Src), Val: m.Val}
			}
		}
		if len(r.Emitted) > 0 {
			rv.Emitted = make([]eval.FactView, len(r.Emitted))
			for j, f := range r.Emitted {
				rv.Emitted[j] = eval.FactView{Table: f.Table, Args: f.Args}
			}
		}
		vb.ret[r.ID] = r.NewValue
		out[i] = rv
	}
	return out
}
