package driver

import (
	"testing"

	"ariadne/internal/queries"
)

func TestProjectionForPageRankCheck(t *testing.T) {
	// Query 4 reads receive_message and edge only: no values, no sends, no
	// emitted tables, in either path. The compiled refinement additionally
	// drops the message payload (M occurs once).
	q := queries.PageRankCheck().MustBuild()

	p := projectionFor(q, false)
	if p.Values || p.SendValues || p.Emitted {
		t.Errorf("interpretive projection reads unreferenced tables: %+v", p)
	}
	if !p.RecvPeers || !p.RecvValues {
		t.Errorf("interpretive projection must keep whole receive tuples: %+v", p)
	}

	p = projectionFor(q, true)
	if !p.RecvPeers {
		t.Errorf("compiled projection dropped receive peers (Y is in the head): %+v", p)
	}
	if p.RecvValues {
		t.Errorf("compiled projection kept the receive payload; M occurs once: %+v", p)
	}
}

func TestProjectionForMonotoneCheck(t *testing.T) {
	// Query 5 compares the message payload (M < 0): the receive payload
	// column survives even column-level refinement.
	q := queries.MonotoneCheck().MustBuild()
	p := projectionFor(q, true)
	if !p.RecvValues || !p.Values {
		t.Errorf("monotone check reads payloads and values: %+v", p)
	}
	if p.SendValues || p.Emitted {
		t.Errorf("monotone check reads no sends or emitted tables: %+v", p)
	}
}

func TestProjectionForBackwardTrace(t *testing.T) {
	// Query 10 walks send_message edges; the payload M occurs once, so the
	// compiled leg drops it while the interpretive leg keeps the table whole.
	q := queries.BackwardTrace(0, 2).MustBuild()
	pi := projectionFor(q, false)
	if !pi.SendValues {
		t.Errorf("interpretive projection must keep send payloads: %+v", pi)
	}
	pc := projectionFor(q, true)
	if pc.SendValues {
		t.Errorf("compiled projection kept the send payload; M occurs once: %+v", pc)
	}
	if !pi.Values || !pc.Values {
		t.Error("back_lineage projects value payloads; both legs must read them")
	}
	if pi.RecvPeers || pc.RecvPeers {
		t.Error("backward trace reads no receive_message tuples")
	}
}

func TestProjectionForEmittedTables(t *testing.T) {
	// Query 7 joins two analytic-emitted tables: the emitted column is
	// needed, the built-in payload columns are not.
	q := queries.ALSRangeCheck().MustBuild()
	p := projectionFor(q, true)
	if !p.Emitted {
		t.Errorf("ALS range check reads emitted tables: %+v", p)
	}
	if p.Values || p.SendValues || p.RecvPeers || p.RecvValues {
		t.Errorf("ALS range check reads no built-in payload columns: %+v", p)
	}
}

func TestProjectionRecvValuesImplyPeers(t *testing.T) {
	// The store-level mask invariant: requesting receive payloads always
	// materializes the peers column they align to.
	q := queries.MonotoneCheck().MustBuild()
	p := projectionFor(q, true)
	if p.RecvValues && !p.RecvPeers {
		t.Fatalf("RecvValues without RecvPeers: %+v", p)
	}
}
