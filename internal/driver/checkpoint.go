package driver

import (
	"fmt"
	"sort"

	"ariadne/internal/graph"
	"ariadne/internal/value"
)

// Checkpoint support for online query evaluation (engine.Checkpointable).
// The online driver is a deterministic function of the superstep record
// stream, so its recoverable state is exactly: the Datalog database (the
// query-relation deltas derived so far) plus the path-specific cursors —
// compiled-rule drive cursors and the evolution-retention view for the
// compiled path, or the evaluator's aggregate tables and the feeder's
// retention/dedup maps for the interpretive path. Restoring this state and
// replaying supersteps from the checkpoint barrier reproduces the
// failure-free query result bit for bit.

// MarshalCheckpoint implements engine.Checkpointable.
func (o *Online) MarshalCheckpoint() ([]byte, error) {
	w := value.NewBlob()
	o.db.SaveState(w)
	w.Uvarint(uint64(o.PiggybackTuples))
	w.Uvarint(uint64(len(o.perSS)))
	for _, n := range o.perSS {
		w.Uvarint(uint64(n))
	}
	w.Bool(o.compiled != nil)
	if o.compiled != nil {
		o.compiled.SaveState(w)
		saveVertexValues(w, o.vb.ret)
		return w.Bytes(), nil
	}
	o.ev.SaveState(w)
	w.Uvarint(uint64(o.f.FactCount))
	w.Bool(o.f.edgesFed)
	w.Bool(o.f.edgeValueFed != nil)
	if o.f.edgeValueFed != nil {
		ids := sortedVertices(o.f.edgeValueFed)
		w.Uvarint(uint64(len(ids)))
		for _, v := range ids {
			w.Uvarint(uint64(v))
		}
	}
	w.Bool(o.f.ret != nil)
	if o.f.ret != nil {
		saveVertexValues(w, o.f.ret.lastVal)
		ids := make([]graph.VertexID, 0, len(o.f.ret.lastSS))
		for v := range o.f.ret.lastSS {
			ids = append(ids, v)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		w.Uvarint(uint64(len(ids)))
		for _, v := range ids {
			w.Uvarint(uint64(v))
			w.Uvarint(uint64(o.f.ret.lastSS[v]))
		}
	}
	return w.Bytes(), nil
}

// UnmarshalCheckpoint implements engine.Checkpointable. The receiver must be
// a fresh Online built for the same query and graph (NewOnline picks the same
// evaluation path deterministically; a path mismatch means the checkpoint
// came from a different query and is rejected).
func (o *Online) UnmarshalCheckpoint(data []byte) error {
	r := value.NewBlobReader(data)
	if err := o.db.LoadState(r); err != nil {
		return err
	}
	o.PiggybackTuples = int64(r.Uvarint())
	nSS := r.Count()
	o.perSS = make([]int64, 0, nSS)
	for i := 0; i < nSS && r.Err() == nil; i++ {
		o.perSS = append(o.perSS, int64(r.Uvarint()))
	}
	wasCompiled := r.Bool()
	if err := r.Err(); err != nil {
		return fmt.Errorf("driver: corrupt online checkpoint state: %w", err)
	}
	if wasCompiled != (o.compiled != nil) {
		return fmt.Errorf("driver: online checkpoint path mismatch (saved compiled=%v, this query compiled=%v)", wasCompiled, o.compiled != nil)
	}
	if o.compiled != nil {
		if err := o.compiled.LoadState(r); err != nil {
			return err
		}
		if err := loadVertexValues(r, o.vb.ret); err != nil {
			return err
		}
		return errCtx(r.Err())
	}
	if err := o.ev.LoadState(r); err != nil {
		return err
	}
	o.f.FactCount = int64(r.Uvarint())
	o.f.edgesFed = r.Bool()
	if r.Bool() {
		n := r.Count()
		o.f.edgeValueFed = make(map[graph.VertexID]bool, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			o.f.edgeValueFed[graph.VertexID(r.Uvarint())] = true
		}
	} else if r.Err() == nil {
		o.f.edgeValueFed = nil
	}
	hadRet := r.Bool()
	if err := r.Err(); err != nil {
		return errCtx(err)
	}
	if hadRet != (o.f.ret != nil) {
		return fmt.Errorf("driver: online checkpoint retention mismatch (saved=%v, this query=%v)", hadRet, o.f.ret != nil)
	}
	if o.f.ret != nil {
		o.f.ret.lastVal = map[graph.VertexID]value.Value{}
		if err := loadVertexValues(r, o.f.ret.lastVal); err != nil {
			return err
		}
		n := r.Count()
		o.f.ret.lastSS = make(map[graph.VertexID]int, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			v := graph.VertexID(r.Uvarint())
			o.f.ret.lastSS[v] = int(r.Uvarint())
		}
	}
	return errCtx(r.Err())
}

func errCtx(err error) error {
	if err != nil {
		return fmt.Errorf("driver: corrupt online checkpoint state: %w", err)
	}
	return nil
}

// saveVertexValues writes a vertex→value map in sorted vertex order.
func saveVertexValues(w *value.Blob, m map[graph.VertexID]value.Value) {
	ids := sortedVertices2(m)
	w.Uvarint(uint64(len(ids)))
	for _, v := range ids {
		w.Uvarint(uint64(v))
		w.Value(m[v])
	}
}

// loadVertexValues fills dst (which must be non-nil and is cleared first)
// from a saveVertexValues blob.
func loadVertexValues(r *value.BlobReader, dst map[graph.VertexID]value.Value) error {
	for v := range dst {
		delete(dst, v)
	}
	n := r.Count()
	for i := 0; i < n && r.Err() == nil; i++ {
		v := graph.VertexID(r.Uvarint())
		dst[v] = r.Value()
	}
	return errCtx(r.Err())
}

func sortedVertices(m map[graph.VertexID]bool) []graph.VertexID {
	ids := make([]graph.VertexID, 0, len(m))
	for v := range m {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sortedVertices2(m map[graph.VertexID]value.Value) []graph.VertexID {
	ids := make([]graph.VertexID, 0, len(m))
	for v := range m {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
