package driver

import (
	"testing"

	"ariadne/internal/capture"
	"ariadne/internal/engine"
	"ariadne/internal/gen"
	"ariadne/internal/provenance"
	"ariadne/internal/queries"
)

// BenchmarkLayeredApt measures the layered driver on a representative
// workload: the apt query over full SSSP provenance.
func BenchmarkLayeredApt(b *testing.B) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 3))
	if err != nil {
		b.Fatal(err)
	}
	store := provenance.NewStore(provenance.StoreConfig{})
	obs := capture.NewObserver(capture.FullPolicy(), store)
	e, err := engine.New(g, ssspProg{}, engine.Config{Observers: []engine.Observer{obs}})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.Logf("layers=%d tuples=%d", store.NumLayers(), store.TotalTuples())
	def := queries.Apt(0.1, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := def.Build()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Layered(q, store, g); err != nil {
			b.Fatal(err)
		}
	}
}
