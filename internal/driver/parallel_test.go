package driver

import (
	"fmt"
	"sort"
	"testing"

	"ariadne/internal/capture"
	"ariadne/internal/engine"
	"ariadne/internal/gen"
	"ariadne/internal/graph"
	"ariadne/internal/provenance"
	"ariadne/internal/queries"
	"ariadne/internal/value"
)

// emitProg is SSSP plus per-message analytics facts, so the ALS monitoring
// queries (prov_error / prov_prediction) have data to chew on.
type emitProg struct{ ssspProg }

func (p emitProg) Compute(ctx *engine.Context, msgs []engine.IncomingMessage) error {
	for _, m := range msgs {
		peer := value.NewInt(int64(m.Src))
		e := m.Val.Float()
		ctx.EmitProv("prov_error", peer, value.NewFloat(e))
		ctx.EmitProv("prov_prediction", peer, value.NewFloat(e+4))
	}
	return p.ssspProg.Compute(ctx, msgs)
}

// captureEmitting runs the emitting SSSP under full capture.
func captureEmitting(t *testing.T, scale int) (*graph.Graph, *provenance.Store) {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(scale, 4, 23))
	if err != nil {
		t.Fatal(err)
	}
	store := provenance.NewStore(provenance.StoreConfig{})
	obs := capture.NewObserver(capture.FullPolicy(), store)
	e, err := engine.New(g, emitProg{}, engine.Config{Observers: []engine.Observer{obs}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return g, store
}

// resultSig maps each IDB relation to its sorted canonical tuple keys.
func resultSig(res *Result) map[string][]string {
	sig := map[string][]string{}
	for name := range res.q.IDBs {
		rel := res.Relation(name)
		if rel == nil {
			sig[name] = nil
			continue
		}
		keys := make([]string, 0, rel.Len())
		for _, t := range rel.All() {
			keys = append(keys, t.Key())
		}
		sort.Strings(keys)
		sig[name] = keys
	}
	return sig
}

func requireSameSig(t *testing.T, label string, want, got map[string][]string) {
	t.Helper()
	for name, w := range want {
		g := got[name]
		if len(w) != len(g) {
			t.Errorf("%s: %s: %d tuples vs reference %d", label, name, len(g), len(w))
			continue
		}
		for i := range w {
			if w[i] != g[i] {
				t.Errorf("%s: %s: tuple %d differs: %q vs %q", label, name, i, g[i], w[i])
				break
			}
		}
	}
}

// differentialQueries are the paper queries the shard-parallel evaluator
// must reproduce exactly.
func differentialQueries() []queries.Definition {
	return []queries.Definition{
		queries.CaptureForwardLineage(0),
		queries.BackwardTrace(0, 2),
		queries.PageRankCheck(),
		queries.SilentChange(),
		queries.MonotoneCheck(),
		queries.ALSRangeCheck(),
		queries.ALSErrorIncrease(0.01),
	}
}

// TestParallelEvalDifferential pins parallel evaluation (1, 2, and 8
// workers) against the sequential reference leg for the paper queries, in
// both layered and online mode, on the interpretive path the parallel
// rounds apply to. Every derived relation must be tuple-identical.
func TestParallelEvalDifferential(t *testing.T) {
	g, store := captureEmitting(t, 7)
	workerCounts := []int{1, 2, 8}
	var sawParallel bool

	for _, def := range differentialQueries() {
		def := def
		t.Run("layered/"+def.Name, func(t *testing.T) {
			q, err := def.Build()
			if err != nil {
				t.Fatal(err)
			}
			if !q.Class.LayeredEvaluable() {
				t.Skipf("%s is %v, not layered-evaluable", def.Name, q.Class)
			}
			ref, err := Layered(q, store, g, SequentialEval(), Interpretive())
			if err != nil {
				t.Fatal(err)
			}
			refSig := resultSig(ref)
			for _, w := range workerCounts {
				q2, err := def.Build()
				if err != nil {
					t.Fatal(err)
				}
				res, err := Layered(q2, store, g, EvalWorkers(w), Interpretive())
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				requireSameSig(t, fmt.Sprintf("workers=%d", w), refSig, resultSig(res))
				if res.Facts != ref.Facts {
					t.Errorf("workers=%d: fed %d facts vs reference %d", w, res.Facts, ref.Facts)
				}
				if s := res.EvalStats(); s.ParallelRounds > 0 {
					sawParallel = true
				}
			}
			// The default leg (compiled when possible, prefetch on) must
			// agree on the answer predicates.
			q3, err := def.Build()
			if err != nil {
				t.Fatal(err)
			}
			res, err := Layered(q3, store, g)
			if err != nil {
				t.Fatal(err)
			}
			defSig := resultSig(res)
			for _, pred := range def.ResultPreds {
				requireSameSig(t, "default-leg", map[string][]string{pred: refSig[pred]}, defSig)
			}
		})

		t.Run("online/"+def.Name, func(t *testing.T) {
			q, err := def.Build()
			if err != nil {
				t.Fatal(err)
			}
			if !q.Class.OnlineEvaluable() {
				t.Skipf("%s is %v, not online-evaluable", def.Name, q.Class)
			}
			runOnline := func(opts ...EvalOpt) *Result {
				t.Helper()
				oq, err := def.Build()
				if err != nil {
					t.Fatal(err)
				}
				o, err := NewOnline(oq, g, opts...)
				if err != nil {
					t.Fatal(err)
				}
				e, err := engine.New(g, emitProg{}, engine.Config{Observers: []engine.Observer{o}})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := e.Run(); err != nil {
					t.Fatal(err)
				}
				return o.Result()
			}
			refSig := resultSig(runOnline(SequentialEval(), Interpretive()))
			for _, w := range workerCounts {
				res := runOnline(EvalWorkers(w), Interpretive())
				requireSameSig(t, fmt.Sprintf("workers=%d", w), refSig, resultSig(res))
				if s := res.EvalStats(); s.ParallelRounds > 0 {
					sawParallel = true
				}
			}
		})
	}

	if !sawParallel {
		t.Error("no query ran any parallel rounds — the differential never exercised the parallel path")
	}
}

// TestParallelSelfDeterminismLayered pins the canonical-merge guarantee at
// the driver level: two identical parallel layered runs produce relations
// in identical insertion order, not just identical sets.
func TestParallelSelfDeterminismLayered(t *testing.T) {
	g, store := captureEmitting(t, 6)
	run := func() *Result {
		q, err := queries.CaptureForwardLineage(0).Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Layered(q, store, g, EvalWorkers(4), Interpretive())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for name := range a.q.IDBs {
		ra, rb := a.Relation(name), b.Relation(name)
		ta, tb := ra.All(), rb.All()
		if len(ta) != len(tb) {
			t.Fatalf("%s: %d vs %d tuples", name, len(ta), len(tb))
		}
		for i := range ta {
			if ta[i].Key() != tb[i].Key() {
				t.Errorf("%s: insertion order diverges at %d: %q vs %q", name, i, ta[i].Key(), tb[i].Key())
				break
			}
		}
	}
}

// TestPrefetchDisabledMatches pins NoPrefetch (synchronous layer loading)
// against the pipelined default.
func TestPrefetchDisabledMatches(t *testing.T) {
	g, store := captureEmitting(t, 6)
	build := func() *Result {
		q, err := queries.MonotoneCheck().Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Layered(q, store, g, Interpretive())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	q2, err := queries.MonotoneCheck().Build()
	if err != nil {
		t.Fatal(err)
	}
	noPre, err := Layered(q2, store, g, Interpretive(), NoPrefetch())
	if err != nil {
		t.Fatal(err)
	}
	requireSameSig(t, "no-prefetch", resultSig(build()), resultSig(noPre))
}
