// Package driver implements the paper's three PQL evaluation modes over a
// common fact feeder:
//
//   - Naive (§6.2 "Naive"): materialize the entire provenance graph into
//     the Datalog database, then evaluate. Memory-bound; the paper's Naive
//     "was not able to scale beyond the two smallest datasets".
//   - Layered (§5.1): materialize one layer (superstep) at a time, in
//     ascending order for forward/local queries or descending order for
//     backward queries, reusing working memory.
//   - Online (§5.2): evaluate in lockstep with the analytic as an engine
//     Observer, consuming the transient provenance; no capture step at all.
package driver

import (
	"ariadne/internal/engine"
	"ariadne/internal/graph"
	"ariadne/internal/obs"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/pql/eval"
	"ariadne/internal/provenance"
	"ariadne/internal/value"
)

// needs records which provenance EDB tables a query actually references, so
// the feeder only materializes facts the query can use — the evaluation-side
// counterpart of customized capture.
type needs struct {
	superstep  bool
	value      bool
	evolution  bool
	send       bool
	recv       bool
	provSend   bool
	edgeValue  bool
	edge       bool
	captureGap bool
	// Telemetry-as-EDB tables (PR 7), fed from the store's attached run
	// telemetry rather than from provenance layers.
	superstepProfile bool
	netRPC           bool
	emitted          map[string]bool
}

func needsOf(q *analysis.Query) needs {
	n := needs{emitted: map[string]bool{}}
	for name := range q.EDBs {
		switch name {
		case "superstep":
			n.superstep = true
		case "value":
			n.value = true
		case "evolution":
			n.evolution = true
		case "send_message":
			n.send = true
		case "receive_message":
			n.recv = true
		case "prov_send":
			n.provSend = true
		case "edge_value":
			n.edgeValue = true
		case "edge":
			n.edge = true
		case "capture_gap":
			n.captureGap = true
		case "superstep_profile":
			n.superstepProfile = true
		case "net_rpc":
			n.netRPC = true
		default:
			n.emitted[name] = true
		}
	}
	return n
}

// retention keeps, per vertex, the last captured value and superstep so
// evolution joins (value at the *previous active* superstep) work in
// layered and online modes without materializing older layers — DESIGN.md
// decision 3. Memory is O(active vertices), not O(supersteps).
type retention struct {
	lastVal map[graph.VertexID]value.Value
	lastSS  map[graph.VertexID]int
}

func newRetention() *retention {
	return &retention{
		lastVal: map[graph.VertexID]value.Value{},
		lastSS:  map[graph.VertexID]int{},
	}
}

// feeder converts provenance records into EDB facts for an evaluator.
type feeder struct {
	ev   *eval.Evaluator
	g    *graph.Graph
	n    needs
	ret  *retention
	prov *provenance.Store // set when feeding from a store (layered/naive)

	edgesFed     bool
	gapsFed      bool
	telemetryFed bool
	// edgeValueFed tracks vertices whose (static) edge values were already
	// emitted: edge weights never change in this engine, so one
	// edge_value(x, y, w, 0) tuple per edge suffices (queries match the
	// superstep position with a wildcard).
	edgeValueFed map[graph.VertexID]bool
	// Facts and bytes fed, for the piggyback/size metrics.
	FactCount int64

	// sink, when set, diverts facts away from the evaluator (the layered
	// prefetcher uses it to stage a layer's facts off the engine thread,
	// ingesting them later). Retention state still advances, so the sink
	// must be driven in replay-step order by a single goroutine.
	sink func(pred string, t eval.Tuple)
}

func newFeeder(ev *eval.Evaluator, g *graph.Graph, q *analysis.Query, forward bool) *feeder {
	f := &feeder{ev: ev, g: g, n: needsOf(q)}
	if forward && (f.n.evolution || f.n.value) {
		f.ret = newRetention()
	}
	if f.n.edgeValue {
		f.edgeValueFed = map[graph.VertexID]bool{}
	}
	return f
}

func (f *feeder) add(pred string, t eval.Tuple) {
	f.FactCount++
	if f.sink != nil {
		f.sink(pred, t)
		return
	}
	f.ev.AddFact(pred, t)
}

// feedStatic loads static facts once: input-graph edges and, when feeding
// from a captured store, the capture-gap ranges recorded under degraded
// mode.
func (f *feeder) feedStatic() {
	if f.n.edge && !f.edgesFed {
		f.edgesFed = true
		for v := 0; v < f.g.NumVertices(); v++ {
			dst, _ := f.g.OutNeighbors(graph.VertexID(v))
			for _, d := range dst {
				f.add("edge", eval.Tuple{value.NewInt(int64(v)), value.NewInt(int64(d))})
			}
		}
	}
	if f.n.captureGap && !f.gapsFed && f.prov != nil {
		f.gapsFed = true
		for _, g := range f.prov.Gaps() {
			f.add("capture_gap", eval.Tuple{
				value.NewInt(int64(g.Partition)),
				value.NewInt(int64(g.From)),
				value.NewInt(int64(g.To)),
			})
		}
	}
	if (f.n.superstepProfile || f.n.netRPC) && !f.telemetryFed && f.prov != nil {
		f.telemetryFed = true
		f.feedTelemetry(f.prov.Telemetry())
	}
}

// feedTelemetry emits the telemetry EDBs from the run profile attached to
// the store (PR 7).
//
//	superstep_profile(S, Phase, Partition, Nanos, Tuples)
//	net_rpc(S, Partition, Bytes, Retries, Nanos)
//
// Whole-superstep phase rows carry Partition = -1; per-partition compute
// rows (from the span timeline, when tracing was on) carry the partition
// index. The Tuples column is phase-appropriate work volume: active
// vertices for compute, delivered messages for barrier, captured +
// piggybacked tuples for observe, bytes for spill/checkpoint.
func (f *feeder) feedTelemetry(t provenance.Telemetry) {
	all := value.NewInt(-1)
	if f.n.superstepProfile {
		for _, p := range t.Profiles {
			s := value.NewInt(int64(p.Superstep))
			var observed int64
			for _, c := range p.CaptureTuples {
				observed += c
			}
			for _, c := range p.PiggybackTuples {
				observed += c
			}
			f.add("superstep_profile", eval.Tuple{s, value.NewString("compute"), all,
				value.NewInt(p.ComputeNS), value.NewInt(int64(p.ActiveVertices))})
			f.add("superstep_profile", eval.Tuple{s, value.NewString("barrier"), all,
				value.NewInt(p.BarrierNS), value.NewInt(p.MessagesDelivered)})
			f.add("superstep_profile", eval.Tuple{s, value.NewString("observe"), all,
				value.NewInt(p.ObserveNS), value.NewInt(observed)})
			if p.SpillNS > 0 || p.SpillBytes > 0 {
				f.add("superstep_profile", eval.Tuple{s, value.NewString("spill"), all,
					value.NewInt(p.SpillNS), value.NewInt(p.SpillBytes)})
			}
			if p.CheckpointNS > 0 || p.CheckpointBytes > 0 {
				f.add("superstep_profile", eval.Tuple{s, value.NewString("checkpoint"), all,
					value.NewInt(p.CheckpointNS), value.NewInt(p.CheckpointBytes)})
			}
		}
		for _, sp := range t.Spans {
			if sp.Name != obs.SpanCompute || sp.Partition < 0 || sp.Proc != obs.ProcMaster {
				continue
			}
			f.add("superstep_profile", eval.Tuple{value.NewInt(int64(sp.Superstep)),
				value.NewString("compute"), value.NewInt(int64(sp.Partition)),
				value.NewInt(sp.Dur), value.NewInt(sp.Tuples)})
		}
	}
	if f.n.netRPC {
		for _, r := range t.RPCs {
			f.add("net_rpc", eval.Tuple{value.NewInt(int64(r.Superstep)),
				value.NewInt(int64(r.Partition)), value.NewInt(r.Bytes),
				value.NewInt(r.Retries), value.NewInt(r.Nanos)})
		}
	}
}

// record is the mode-independent shape of one provenance record.
type record struct {
	vertex     graph.VertexID
	superstep  int
	prevActive int
	hasValue   bool
	value      value.Value
	sends      []provenance.MsgHalf
	recvs      []provenance.MsgHalf
	sentAny    bool
	emitted    []provenance.Fact
}

// feedRecord emits the EDB facts for one record.
func (f *feeder) feedRecord(r *record) {
	x := value.NewInt(int64(r.vertex))
	i := value.NewInt(int64(r.superstep))
	if f.n.superstep {
		f.add("superstep", eval.Tuple{x, i})
	}
	if f.n.value && r.hasValue {
		f.add("value", eval.Tuple{x, r.value, i})
	}
	if f.n.evolution && r.prevActive >= 0 {
		j := value.NewInt(int64(r.prevActive))
		f.add("evolution", eval.Tuple{x, j, i})
		// Re-inject the retained previous value so value(X, D2, J) joins
		// resolve without the J-th layer resident (idempotent under naive
		// mode, where the fact is already present).
		if f.n.value && f.ret != nil {
			if pv, ok := f.ret.lastVal[r.vertex]; ok && f.ret.lastSS[r.vertex] == r.prevActive {
				f.add("value", eval.Tuple{x, pv, j})
			}
		}
	}
	if f.n.send {
		for _, m := range r.sends {
			f.add("send_message", eval.Tuple{x, value.NewInt(int64(m.Peer)), m.Val, i})
		}
	}
	if f.n.recv {
		for _, m := range r.recvs {
			f.add("receive_message", eval.Tuple{x, value.NewInt(int64(m.Peer)), m.Val, i})
		}
	}
	if f.n.provSend && (r.sentAny || len(r.sends) > 0) {
		f.add("prov_send", eval.Tuple{x, i})
	}
	if f.n.edgeValue && !f.edgeValueFed[r.vertex] {
		f.edgeValueFed[r.vertex] = true
		dst, w := f.g.OutNeighbors(r.vertex)
		zero := value.NewInt(0)
		for k, d := range dst {
			f.add("edge_value", eval.Tuple{x, value.NewInt(int64(d)), value.NewFloat(w[k]), zero})
		}
	}
	for _, fact := range r.emitted {
		if !f.n.emitted[fact.Table] {
			continue
		}
		t := make(eval.Tuple, 0, len(fact.Args)+2)
		t = append(t, x)
		t = append(t, fact.Args...)
		t = append(t, i)
		f.add(fact.Table, t)
	}
	if f.ret != nil && r.hasValue {
		f.ret.lastVal[r.vertex] = r.value
		f.ret.lastSS[r.vertex] = r.superstep
	}
}

// feedProvRecord adapts a stored provenance record.
func (f *feeder) feedProvRecord(rec *provenance.Record, superstep int) {
	f.feedRecord(&record{
		vertex:     rec.Vertex,
		superstep:  superstep,
		prevActive: int(rec.PrevActive),
		hasValue:   rec.HasValue,
		value:      rec.Value,
		sends:      rec.Sends,
		recvs:      rec.Recvs,
		sentAny:    rec.SentAny,
		emitted:    rec.Emitted,
	})
}

// feedEngineRecord adapts a live engine record (online mode).
func (f *feeder) feedEngineRecord(rec *engine.VertexRecord) {
	r := record{
		vertex:     rec.ID,
		superstep:  rec.Superstep,
		prevActive: rec.PrevActive,
		hasValue:   true,
		value:      rec.NewValue,
		sentAny:    len(rec.Sent) > 0,
	}
	if len(rec.Sent) > 0 {
		r.sends = make([]provenance.MsgHalf, len(rec.Sent))
		for i, m := range rec.Sent {
			r.sends[i] = provenance.MsgHalf{Peer: m.Dst, Val: m.Val}
		}
	}
	if len(rec.Received) > 0 {
		r.recvs = make([]provenance.MsgHalf, len(rec.Received))
		for i, m := range rec.Received {
			r.recvs[i] = provenance.MsgHalf{Peer: m.Src, Val: m.Val}
		}
	}
	if len(rec.Emitted) > 0 {
		r.emitted = make([]provenance.Fact, len(rec.Emitted))
		for i, e := range rec.Emitted {
			r.emitted[i] = provenance.Fact{Table: e.Table, Args: e.Args}
		}
	}
	f.feedRecord(&r)
}
