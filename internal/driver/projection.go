package driver

import (
	"ariadne/internal/pql/analysis"
	"ariadne/internal/provenance"
)

// projectionFor derives the layer column projection the layered replay
// pushes down into the provenance store (v2 columnar files decode only the
// selected columns; v1 files ignore the projection and materialize fully).
//
// Two granularities, matching what each evaluation path can safely skip:
//
//   - The interpretive (Datalog) path projects at table granularity: a
//     payload column is read iff its EDB appears in the query at all. The
//     feeder materializes whole tuples, and the evaluator's aggregates
//     observe tuple distinctness, so a column of a *referenced* table can
//     never be dropped — but tables the query never mentions contribute no
//     facts (feedRecord gates on needs), so their columns need not leave
//     disk.
//
//   - The compiled (vertex-program) path refines to column granularity
//     using ColumnUse: a position every rule ignores (wildcard or
//     single-occurrence variable) may come back Null. This is safe
//     precisely because the compiler rejects aggregates (ErrNotCompilable)
//     and compiled steps only inspect the positions the rules constrain.
//     Existence stays exact under dropped value columns: HasValue and
//     HasPrevValue derive from the flags column and retention presence,
//     both independent of the values column's content.
//
// Columns the projection never covers (vertex, activation lineage, flags,
// send topology) are core: replay itself needs them to re-activate the
// layer's vertices and regenerate its message structure.
func projectionFor(q *analysis.Query, compiled bool) *provenance.LayerProjection {
	n := needsOf(q)
	p := &provenance.LayerProjection{
		Values:     n.value,
		SendValues: n.send,
		RecvPeers:  n.recv,
		RecvValues: n.recv,
		Emitted:    len(n.emitted) > 0,
	}
	if !compiled {
		return p
	}
	use := q.ColumnUse()
	// EDB argument positions per catalog.go: value(X, D, I) payload at 1;
	// send_message(X, Y, M, I) and receive_message(X, Y, M, I) payload at 2.
	// Receive *peers* stay table-level even when Y is ignored: the compiled
	// message steps iterate the Recvs slice, so its length (one entry per
	// received message) must be exact.
	if p.Values {
		p.Values = colUsed(use, "value", 1)
	}
	if p.SendValues {
		p.SendValues = colUsed(use, "send_message", 2)
	}
	if p.RecvValues {
		p.RecvValues = colUsed(use, "receive_message", 2)
	}
	return p
}

// colUsed reports whether the position is observable, defaulting to true
// (conservative: read the column) when the analysis has no entry.
func colUsed(use map[string][]bool, pred string, pos int) bool {
	u, ok := use[pred]
	if !ok || pos >= len(u) {
		return true
	}
	return u[pos]
}
