package driver

import (
	"strings"
	"testing"

	"ariadne/internal/capture"
	"ariadne/internal/engine"
	"ariadne/internal/gen"
	"ariadne/internal/graph"
	"ariadne/internal/pql"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/provenance"
	"ariadne/internal/queries"
	"ariadne/internal/value"
)

// captureSSSP runs a tiny SSSP under full capture and returns the store.
func captureSSSP(t *testing.T, scale int) (*graph.Graph, *provenance.Store) {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(scale, 4, 11))
	if err != nil {
		t.Fatal(err)
	}
	store := provenance.NewStore(provenance.StoreConfig{})
	obs := capture.NewObserver(capture.FullPolicy(), store)
	e, err := engine.New(g, ssspProg{}, engine.Config{Observers: []engine.Observer{obs}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return g, store
}

func TestNaiveEqualsLayered(t *testing.T) {
	g, store := captureSSSP(t, 6)
	def := queries.Apt(0.1, nil)
	q1, err := def.Build()
	if err != nil {
		t.Fatal(err)
	}
	layered, err := Layered(q1, store, g)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := queries.Apt(0.1, nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Naive(q2, store, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range []string{"change", "neighbor_change", "no_execute", "safe", "unsafe"} {
		l, n := layered.Relation(pred), naive.Relation(pred)
		if l.Len() != n.Len() {
			t.Errorf("%s: layered %d vs naive %d", pred, l.Len(), n.Len())
		}
	}
	if layered.Facts <= 0 || naive.Facts <= 0 {
		t.Error("fact accounting missing")
	}
	if naive.DBBytes() <= 0 {
		t.Error("db size accounting missing")
	}
	// DerivedRelations lists only IDBs.
	rels := naive.DerivedRelations()
	names := map[string]bool{}
	for _, ri := range rels {
		names[ri.Name] = true
	}
	if !names["safe"] || names["receive_message"] {
		t.Errorf("derived relations wrong: %v", rels)
	}
}

func TestLayeredRejectsMixed(t *testing.T) {
	g, store := captureSSSP(t, 5)
	env := analysis.NewEnv()
	prog, err := pql.Parse(`
t(X, I) :- value(X, D, I).
m(X, I) :- t(Y, I), receive_message(X, Y, M, I),
           t(Z, I), send_message(X, Z, M2, I).`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := analysis.Analyze(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Layered(q, store, g); err == nil || !strings.Contains(err.Error(), "mixed") {
		t.Errorf("want mixed rejection, got %v", err)
	}
	// Naive handles it.
	if _, err := Naive(q, store, g, 0); err != nil {
		t.Errorf("naive should evaluate mixed queries: %v", err)
	}
}

func TestOnlineRejectsBackward(t *testing.T) {
	g, _ := captureSSSP(t, 5)
	q, err := queries.BackwardTrace(0, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOnline(q, g); err == nil {
		t.Error("backward query must not run online")
	}
}

func TestOnlinePiggybackCounting(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(6, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	q, err := queries.Apt(0.1, nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOnline(q, g)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(g, ssspProg{}, engine.Config{Observers: []engine.Observer{o}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if o.PiggybackTuples <= 0 {
		t.Error("piggyback tuple accounting missing")
	}
	if !o.NeedsRawMessages() {
		t.Error("apt references receive_message, needs raw delivery")
	}
}

func TestNeedsOf(t *testing.T) {
	env := analysis.NewEnv()
	env.DeclareEDB("prov_error", 4)
	prog, err := pql.Parse(`
p(X, I) :- superstep(X, I), value(X, D, I), prov_error(X, Y, E, I),
           edge(Y, X), edge_value(X, Y, W, I), prov_send(X, I),
           evolution(X, J, I).`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := analysis.Analyze(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	n := needsOf(q)
	if !n.superstep || !n.value || !n.evolution || !n.edge || !n.edgeValue || !n.provSend || !n.emitted["prov_error"] {
		t.Errorf("needs = %+v", n)
	}
	if n.recv || n.send {
		t.Errorf("query does not reference messages: %+v", n)
	}
}

func TestFeederSkipsUnneededFacts(t *testing.T) {
	g, store := captureSSSP(t, 5)
	// Query referencing only superstep feeds far fewer facts than one
	// referencing messages too — the evaluation-side benefit of customized
	// capture.
	narrowDef := queries.Definition{
		Name:   "narrow",
		Source: `active(X, I) :- superstep(X, I).`,
		Env:    analysis.NewEnv(),
	}
	// Naive always takes the interpretive feeder path, where the filtering
	// is observable in the fact counts.
	narrowQ, err := narrowDef.Build()
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := Naive(narrowQ, store, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	wideQ, err := queries.MonotoneCheck().Build()
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Naive(wideQ, store, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Facts >= wide.Facts {
		t.Errorf("narrow query fed %d facts, wide %d — feeder not filtering", narrow.Facts, wide.Facts)
	}
}

func TestLayeredOnSpilledStore(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(6, 4, 17))
	if err != nil {
		t.Fatal(err)
	}
	store := provenance.NewStore(provenance.StoreConfig{SpillDir: t.TempDir(), SpillAll: true})
	defer store.Close()
	obs := capture.NewObserver(capture.FullPolicy(), store)
	e, err := engine.New(g, ssspProg{}, engine.Config{Observers: []engine.Observer{obs}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if store.SpilledLayers() != store.NumLayers() {
		t.Fatalf("SpillAll should spill every layer: %d of %d", store.SpilledLayers(), store.NumLayers())
	}
	if store.ResidentBytes() != 0 {
		t.Errorf("resident bytes = %d, want 0", store.ResidentBytes())
	}
	q, err := queries.MonotoneCheck().Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Layered(q, store, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Facts == 0 {
		t.Error("no facts read back from spilled layers")
	}
}

func TestRetentionSuppliesEvolutionValues(t *testing.T) {
	// Hand-build a store where a vertex is active at supersteps 0 and 5 —
	// layered evaluation must still join value(x, d2, 0) via retention at
	// layer 5 even though layer 0 is long gone.
	g, err := graph.NewFromEdges(2, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	store := provenance.NewStore(provenance.StoreConfig{})
	mk := func(ss int, recs ...provenance.Record) {
		if err := store.AppendLayer(&provenance.Layer{Superstep: ss, Records: recs}); err != nil {
			t.Fatal(err)
		}
	}
	mk(0, provenance.Record{Vertex: 1, PrevActive: -1, HasValue: true, Value: value.NewFloat(10)})
	mk(1)
	mk(2)
	mk(3)
	mk(4)
	mk(5, provenance.Record{
		Vertex: 1, PrevActive: 0, HasValue: true, Value: value.NewFloat(3),
		Recvs: []provenance.MsgHalf{{Peer: 0, Val: value.NewFloat(3)}},
	})
	env := analysis.NewEnv()
	def := queries.Definition{
		Name: "drop",
		Source: `
dropped(X, D1, D2, I) :- value(X, D1, I), value(X, D2, J),
                         evolution(X, J, I), D1 < D2.`,
		Env: env,
	}
	q, err := def.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Layered(q, store, g)
	if err != nil {
		t.Fatal(err)
	}
	rel := res.Relation("dropped")
	if rel.Len() != 1 {
		t.Fatalf("dropped = %v", rel.All())
	}
	row := rel.All()[0]
	if row[1].Float() != 3 || row[2].Float() != 10 || row[3].Int() != 5 {
		t.Errorf("row = %v", row)
	}
}
