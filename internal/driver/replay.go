package driver

import (
	"fmt"
	"sync"

	"ariadne/internal/engine"
	"ariadne/internal/graph"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/pql/eval"
	"ariadne/internal/provenance"
	"ariadne/internal/value"
)

// Offline layered evaluation runs as a VC computation over the captured
// provenance graph, exactly as in the paper (§5.1: "ARIADNE translates
// provenance query evaluation to ordinary vertex programs", §6.2: "the VC
// system only evaluates ARIADNE's query vertex program"). The replay
// program below re-materializes one provenance layer per superstep on the
// BSP engine — activating the layer's nodes and regenerating its message
// structure — while the query evaluator consumes the layer's facts at the
// superstep barrier. This is what makes offline layered evaluation cost a
// full engine pass over the provenance graph on top of reading it back
// from storage, the overhead the paper's Online mode short-circuits.

// layerCursor shares the currently materialized layer between the replay
// program (which runs inside parallel workers) and the evaluation observer.
type layerCursor struct {
	store *provenance.Store
	n     int
	// order maps the replay superstep to a store layer index: identity for
	// forward/local queries, reversed for backward queries (descending
	// layer order, §5.1).
	order func(step int) int

	mu    sync.Mutex
	step  int
	layer *provenance.Layer
	index map[graph.VertexID]*provenance.Record
	err   error
}

func newLayerCursor(store *provenance.Store, ascending bool) *layerCursor {
	n := store.NumLayers()
	order := func(step int) int { return step }
	if !ascending {
		order = func(step int) int { return n - 1 - step }
	}
	return &layerCursor{store: store, n: n, order: order, step: -1}
}

// at returns the layer materialized for the given replay step, loading (and
// indexing) it on first use. Past layers are dropped — the working memory
// holds one layer, the point of layered evaluation.
func (c *layerCursor) at(step int) (*provenance.Layer, map[graph.VertexID]*provenance.Record, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, nil, c.err
	}
	if step != c.step {
		idx := c.order(step)
		l, err := c.store.Layer(idx)
		if err != nil {
			c.err = err
			return nil, nil, err
		}
		c.step = step
		c.layer = l
		c.index = make(map[graph.VertexID]*provenance.Record, len(l.Records))
		for i := range l.Records {
			c.index[l.Records[i].Vertex] = &l.Records[i]
		}
	}
	return c.layer, c.index, nil
}

// active returns the vertices of the layer replayed at the given step.
// Empty layers (possible under selective capture policies) still force a
// single no-op keepalive so the replay proceeds to later layers.
func (c *layerCursor) active(step int) []graph.VertexID {
	if step >= c.n {
		return nil
	}
	l, _, err := c.at(step)
	if err != nil {
		return nil
	}
	if len(l.Records) == 0 {
		return []graph.VertexID{0}
	}
	out := make([]graph.VertexID, len(l.Records))
	for i := range l.Records {
		out[i] = l.Records[i].Vertex
	}
	return out
}

// replayProg is the "query vertex program": at each superstep, a vertex
// that appears in the current provenance layer regenerates its captured
// message structure (token payloads — the values live in the evaluator).
type replayProg struct {
	cursor *layerCursor
}

func (p *replayProg) InitialValue(*graph.Graph, engine.VertexID) value.Value {
	return value.NullValue
}

func (p *replayProg) Compute(ctx *engine.Context, _ []engine.IncomingMessage) error {
	if ctx.Superstep() >= p.cursor.n {
		return nil
	}
	_, index, err := p.cursor.at(ctx.Superstep())
	if err != nil {
		return err
	}
	rec := index[ctx.ID()]
	if rec == nil {
		return nil
	}
	switch {
	case len(rec.Sends) > 0:
		for _, m := range rec.Sends {
			ctx.SendMessage(m.Peer, value.NullValue)
		}
	case rec.SentAny:
		// Send flags without per-edge tuples (Query 11 capture): the
		// message structure is the static out-edges (paper §6.3).
		ctx.SendToAllNeighbors(value.NullValue)
	}
	return nil
}

// replayEvalObserver evaluates each replayed layer at the superstep
// barrier: on the compiled path rules run directly over the layer's
// records; on the interpretive path the layer's facts feed the evaluator
// followed by a per-layer fixpoint.
type replayEvalObserver struct {
	cursor *layerCursor

	compiled *eval.Compiled
	vb       *viewBuilder

	f  *feeder
	ev *eval.Evaluator

	facts int64
}

func (o *replayEvalObserver) NeedsRawMessages() bool { return false }

func (o *replayEvalObserver) ObserveSuperstep(v *engine.SuperstepView) error {
	if v.Superstep >= o.cursor.n {
		return nil
	}
	l, _, err := o.cursor.at(v.Superstep)
	if err != nil {
		return err
	}
	if o.compiled != nil {
		views := o.vb.fromProv(l)
		o.facts += int64(len(views))
		return o.compiled.Layer(views)
	}
	for ri := range l.Records {
		o.f.feedProvRecord(&l.Records[ri], l.Superstep)
	}
	o.facts = o.f.FactCount
	return o.ev.Fixpoint()
}

func (o *replayEvalObserver) Finish(int) error { return nil }

// Layered evaluates q one provenance layer at a time (paper §5.1), in
// ascending superstep order for forward/local queries and descending order
// for backward queries, as a VC computation over the provenance graph.
// Mixed queries are rejected (Def. 5.2).
func Layered(q *analysis.Query, store *provenance.Store, g *graph.Graph) (*Result, error) {
	if !q.Class.LayeredEvaluable() {
		return nil, fmt.Errorf("driver: %v queries cannot be evaluated layered; use naive mode", q.Class)
	}
	db := eval.NewDatabase()
	ascending := q.Class != analysis.Backward
	cursor := newLayerCursor(store, ascending)
	obs := &replayEvalObserver{cursor: cursor}
	res := &Result{q: q, db: db}
	if c, ok := tryCompile(q, db, g); ok {
		obs.compiled = c
		obs.vb = newViewBuilder()
	} else {
		ev, err := eval.NewEvaluator(q, db)
		if err != nil {
			return nil, err
		}
		obs.ev = ev
		obs.f = newFeeder(ev, g, q, ascending)
		obs.f.prov = store
		obs.f.feedStatic()
		res.ev = ev
	}
	if cursor.n == 0 {
		return res, nil
	}
	e, err := engine.New(g, &replayProg{cursor: cursor}, engine.Config{
		MaxSupersteps: cursor.n,
		ActiveAt:      cursor.active,
		Observers:     []engine.Observer{obs},
	})
	if err != nil {
		return nil, err
	}
	if _, err := e.Run(); err != nil {
		return nil, err
	}
	if obs.compiled != nil {
		if err := obs.compiled.FinishRun(); err != nil {
			return nil, err
		}
	}
	res.Facts = obs.facts
	return res, nil
}
