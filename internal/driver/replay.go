package driver

import (
	"fmt"
	"sync"

	"ariadne/internal/engine"
	"ariadne/internal/graph"
	"ariadne/internal/obs"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/pql/eval"
	"ariadne/internal/provenance"
	"ariadne/internal/value"
)

// Offline layered evaluation runs as a VC computation over the captured
// provenance graph, exactly as in the paper (§5.1: "ARIADNE translates
// provenance query evaluation to ordinary vertex programs", §6.2: "the VC
// system only evaluates ARIADNE's query vertex program"). The replay
// program below re-materializes one provenance layer per superstep on the
// BSP engine — activating the layer's nodes and regenerating its message
// structure — while the query evaluator consumes the layer's facts at the
// superstep barrier. This is what makes offline layered evaluation cost a
// full engine pass over the provenance graph on top of reading it back
// from storage, the overhead the paper's Online mode short-circuits.
//
// The layered driver is pipelined: a prefetcher goroutine decodes the
// *next* layer from the store and pre-builds its record views (compiled
// path) or EDB fact batch (interpretive path) while the engine replays and
// evaluates the current one. Decode and view/fact construction overlap
// evaluation; only the evaluator's fixpoint stays on the barrier.

// factBatch is one staged EDB fact (interpretive path).
type factBatch struct {
	pred string
	t    eval.Tuple
}

// layerStage is one fully prepared provenance layer: decoded, indexed by
// vertex for the replay program, and pre-converted into whatever the
// evaluation path consumes (record views or EDB facts).
type layerStage struct {
	step  int
	layer *provenance.Layer
	index map[graph.VertexID]*provenance.Record

	views     []eval.RecordView // compiled path
	facts     []factBatch       // interpretive path
	factCount int64             // cumulative feeder count after this layer

	err error
}

// stageBuilder converts a decoded layer into its evaluation-ready form.
// Both the view builder (value retention) and the feeder (retention +
// dedup state) are stateful, so build must be called in replay-step order
// by a single goroutine — the prefetch producer, or the engine thread
// under the cursor lock on the unpipelined path.
type stageBuilder struct {
	vb *viewBuilder
	f  *feeder
}

func (b *stageBuilder) build(st *layerStage) {
	if b.vb != nil {
		st.views = b.vb.fromProv(st.layer)
		return
	}
	if b.f == nil {
		return
	}
	b.f.sink = func(pred string, t eval.Tuple) {
		st.facts = append(st.facts, factBatch{pred: pred, t: t})
	}
	for ri := range st.layer.Records {
		b.f.feedProvRecord(&st.layer.Records[ri], st.layer.Superstep)
	}
	b.f.sink = nil
	st.factCount = b.f.FactCount
}

// layerSource yields prepared layer stages to the replay program and the
// evaluation observer. Implementations: layerCursor (synchronous, stage
// built on first access) and prefetchCursor (pipelined).
type layerSource interface {
	numLayers() int
	stageAt(step int) (*layerStage, error)
	active(step int) []graph.VertexID
	close()
}

// loadStage decodes and indexes one layer (no evaluation-side prep). The
// projection bounds which payload columns the store materializes; nil means
// all columns.
func loadStage(store *provenance.Store, step, layerIdx int, proj *provenance.LayerProjection) *layerStage {
	l, err := store.LayerProjected(layerIdx, proj)
	if err != nil {
		return &layerStage{step: step, err: err}
	}
	st := &layerStage{step: step, layer: l}
	st.index = make(map[graph.VertexID]*provenance.Record, len(l.Records))
	for i := range l.Records {
		st.index[l.Records[i].Vertex] = &l.Records[i]
	}
	return st
}

// stageActive returns the vertices of the stage's layer. Empty layers
// (possible under selective capture policies) still force a single no-op
// keepalive so the replay proceeds to later layers.
func stageActive(st *layerStage) []graph.VertexID {
	if len(st.layer.Records) == 0 {
		return []graph.VertexID{0}
	}
	out := make([]graph.VertexID, len(st.layer.Records))
	for i := range st.layer.Records {
		out[i] = st.layer.Records[i].Vertex
	}
	return out
}

// replayOrder maps the replay superstep to a store layer index: identity
// for forward/local queries, reversed for backward queries (descending
// layer order, §5.1).
func replayOrder(n int, ascending bool) func(int) int {
	if ascending {
		return func(step int) int { return step }
	}
	return func(step int) int { return n - 1 - step }
}

// layerCursor is the unpipelined layer source: the stage for a step is
// built on first access, under the lock, on the calling goroutine. Past
// layers are dropped — the working memory holds one layer, the point of
// layered evaluation.
type layerCursor struct {
	store   *provenance.Store
	n       int
	order   func(step int) int
	builder *stageBuilder
	proj    *provenance.LayerProjection

	mu  sync.Mutex
	cur *layerStage
	err error
}

func newLayerCursor(store *provenance.Store, ascending bool, b *stageBuilder, proj *provenance.LayerProjection) *layerCursor {
	n := store.NumLayers()
	return &layerCursor{store: store, n: n, order: replayOrder(n, ascending), builder: b, proj: proj}
}

func (c *layerCursor) numLayers() int { return c.n }

func (c *layerCursor) stageAt(step int) (*layerStage, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, c.err
	}
	if c.cur == nil || c.cur.step != step {
		st := loadStage(c.store, step, c.order(step), c.proj)
		if st.err == nil {
			c.builder.build(st)
		}
		if st.err != nil {
			c.err = st.err
			return nil, c.err
		}
		c.cur = st
	}
	return c.cur, nil
}

func (c *layerCursor) active(step int) []graph.VertexID {
	if step >= c.n {
		return nil
	}
	st, err := c.stageAt(step)
	if err != nil {
		return nil
	}
	return stageActive(st)
}

func (c *layerCursor) close() {}

// prefetchCursor pipelines layer preparation: a single producer goroutine
// — the only caller of store.Layer and the sole owner of the stage
// builder's retention state — decodes layers in replay order and sends
// prepared stages down a buffered channel. With capacity 1 the producer
// keeps roughly two layers in flight (one buffered, one being built)
// while the engine consumes the current one: bounded lookahead, bounded
// memory.
type prefetchCursor struct {
	n       int
	stages  chan *layerStage
	done    chan struct{}
	stop    sync.Once
	metrics *obs.Metrics

	mu  sync.Mutex
	cur *layerStage
	err error
}

func newPrefetchCursor(store *provenance.Store, ascending bool, b *stageBuilder, m *obs.Metrics, proj *provenance.LayerProjection) *prefetchCursor {
	n := store.NumLayers()
	pc := &prefetchCursor{
		n:       n,
		stages:  make(chan *layerStage, 1),
		done:    make(chan struct{}),
		metrics: m,
	}
	order := replayOrder(n, ascending)
	go func() {
		defer close(pc.stages)
		for step := 0; step < n; step++ {
			st := loadStage(store, step, order(step), proj)
			if st.err == nil {
				b.build(st)
			}
			select {
			case pc.stages <- st:
			case <-pc.done:
				return
			}
			if st.err != nil {
				return
			}
		}
	}()
	return pc
}

func (c *prefetchCursor) numLayers() int { return c.n }

func (c *prefetchCursor) stageAt(step int) (*layerStage, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, c.err
	}
	if c.cur != nil && c.cur.step == step {
		return c.cur, nil
	}
	for {
		var st *layerStage
		var ok bool
		select {
		case st, ok = <-c.stages:
			if ok {
				c.metrics.Counter("eval_prefetch_hits_total").Add(1)
			}
		default:
			c.metrics.Counter("eval_prefetch_misses_total").Add(1)
			st, ok = <-c.stages
		}
		if !ok {
			c.err = fmt.Errorf("driver: layer prefetcher exhausted before step %d", step)
			return nil, c.err
		}
		if st.err != nil {
			c.err = st.err
			return nil, c.err
		}
		if st.step == step {
			c.cur = st
			return st, nil
		}
		if st.step > step {
			c.err = fmt.Errorf("driver: layer prefetch out of order: got step %d, want %d", st.step, step)
			return nil, c.err
		}
		// st.step < step: the consumer skipped a stage (cannot happen with
		// the engine driving steps monotonically, but draining is safe).
	}
}

func (c *prefetchCursor) active(step int) []graph.VertexID {
	if step >= c.n {
		return nil
	}
	st, err := c.stageAt(step)
	if err != nil {
		return nil
	}
	return stageActive(st)
}

func (c *prefetchCursor) close() {
	c.stop.Do(func() { close(c.done) })
	// Drain so the producer's pending send never leaks the goroutine.
	for range c.stages {
	}
}

// replayProg is the "query vertex program": at each superstep, a vertex
// that appears in the current provenance layer regenerates its captured
// message structure (token payloads — the values live in the evaluator).
type replayProg struct {
	src layerSource
}

func (p *replayProg) InitialValue(*graph.Graph, engine.VertexID) value.Value {
	return value.NullValue
}

func (p *replayProg) Compute(ctx *engine.Context, _ []engine.IncomingMessage) error {
	if ctx.Superstep() >= p.src.numLayers() {
		return nil
	}
	st, err := p.src.stageAt(ctx.Superstep())
	if err != nil {
		return err
	}
	rec := st.index[ctx.ID()]
	if rec == nil {
		return nil
	}
	switch {
	case len(rec.Sends) > 0:
		for _, m := range rec.Sends {
			ctx.SendMessage(m.Peer, value.NullValue)
		}
	case rec.SentAny:
		// Send flags without per-edge tuples (Query 11 capture): the
		// message structure is the static out-edges (paper §6.3).
		ctx.SendToAllNeighbors(value.NullValue)
	}
	return nil
}

// replayEvalObserver evaluates each replayed layer at the superstep
// barrier. The stage arrives pre-built (views or fact batch); the barrier
// only ingests and runs the fixpoint.
type replayEvalObserver struct {
	src layerSource

	compiled *eval.Compiled
	ev       *eval.Evaluator

	facts int64
}

func (o *replayEvalObserver) NeedsRawMessages() bool { return false }

func (o *replayEvalObserver) ObserveSuperstep(v *engine.SuperstepView) error {
	if v.Superstep >= o.src.numLayers() {
		return nil
	}
	st, err := o.src.stageAt(v.Superstep)
	if err != nil {
		return err
	}
	if o.compiled != nil {
		o.facts += int64(len(st.views))
		return o.compiled.Layer(st.views)
	}
	for i := range st.facts {
		o.ev.AddFact(st.facts[i].pred, st.facts[i].t)
	}
	o.facts = st.factCount
	return o.ev.Fixpoint()
}

func (o *replayEvalObserver) Finish(int) error { return nil }

// Layered evaluates q one provenance layer at a time (paper §5.1), in
// ascending superstep order for forward/local queries and descending order
// for backward queries, as a VC computation over the provenance graph.
// Mixed queries are rejected (Def. 5.2). Options tune the evaluation
// pipeline: EvalWorkers enables shard-parallel delta rounds on the
// interpretive path, NoPrefetch disables the layer prefetcher, and
// SequentialEval selects the unpipelined single-worker reference leg.
func Layered(q *analysis.Query, store *provenance.Store, g *graph.Graph, opts ...EvalOpt) (*Result, error) {
	if !q.Class.LayeredEvaluable() {
		return nil, fmt.Errorf("driver: %v queries cannot be evaluated layered; use naive mode", q.Class)
	}
	cfg := resolveEvalConfig(opts)
	db := eval.NewDatabase()
	ascending := q.Class != analysis.Backward
	obs := &replayEvalObserver{}
	res := &Result{q: q, db: db}
	builder := &stageBuilder{}
	if c, ok := tryCompileOpt(q, db, g, cfg); ok {
		obs.compiled = c
		builder.vb = newViewBuilder()
	} else {
		ev, err := eval.NewEvaluator(q, db)
		if err != nil {
			return nil, err
		}
		ev.SetWorkers(cfg.workers)
		obs.ev = ev
		f := newFeeder(ev, g, q, ascending)
		f.prov = store
		f.feedStatic() // sink unset: static facts go straight to the evaluator
		builder.f = f
		res.ev = ev
	}
	if store.NumLayers() == 0 {
		return res, nil
	}
	// Projection pushdown: ask the store for only the payload columns this
	// query's evaluation path can observe (v2 columnar layers skip the rest
	// on disk). NoProjection pins the full-width reference leg.
	var proj *provenance.LayerProjection
	if !cfg.noProjection {
		proj = projectionFor(q, obs.compiled != nil)
	}
	var src layerSource
	if cfg.noPrefetch {
		src = newLayerCursor(store, ascending, builder, proj)
	} else {
		src = newPrefetchCursor(store, ascending, builder, cfg.metrics, proj)
	}
	defer src.close()
	obs.src = src
	e, err := engine.New(g, &replayProg{src: src}, engine.Config{
		MaxSupersteps: src.numLayers(),
		ActiveAt:      src.active,
		Observers:     []engine.Observer{obs},
	})
	if err != nil {
		return nil, err
	}
	if _, err := e.Run(); err != nil {
		return nil, err
	}
	if obs.compiled != nil {
		if err := obs.compiled.FinishRun(); err != nil {
			return nil, err
		}
	}
	res.Facts = obs.facts
	mirrorEvalStats(cfg.metrics, "layered", res.EvalStats())
	return res, nil
}

// tryCompileOpt is tryCompile gated by the Interpretive option.
func tryCompileOpt(q *analysis.Query, db *eval.Database, g *graph.Graph, cfg evalConfig) (*eval.Compiled, bool) {
	if cfg.interpretive {
		return nil, false
	}
	return tryCompile(q, db, g)
}
