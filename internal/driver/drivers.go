package driver

import (
	"errors"
	"fmt"

	"ariadne/internal/engine"
	"ariadne/internal/graph"
	"ariadne/internal/obs"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/pql/eval"
	"ariadne/internal/provenance"
	"ariadne/internal/supervise"
	"ariadne/internal/value"
)

// Result exposes the outcome of a query evaluation.
type Result struct {
	q     *analysis.Query
	db    *eval.Database
	ev    *eval.Evaluator
	Facts int64 // EDB facts fed
}

// Relation returns the result relation for an IDB (or EDB) predicate.
func (r *Result) Relation(pred string) *eval.Relation { return r.db.Get(pred) }

// RelationInfo names a derived relation and its tuple count.
type RelationInfo struct {
	Name  string
	Count int
}

// DerivedRelations lists the query's IDB relations with tuple counts,
// sorted by name.
func (r *Result) DerivedRelations() []RelationInfo {
	var out []RelationInfo
	for _, name := range r.db.Names() {
		if _, isIDB := r.q.IDBs[name]; !isIDB {
			continue
		}
		out = append(out, RelationInfo{Name: name, Count: r.db.Get(name).Len()})
	}
	return out
}

// EvalStats returns Datalog work counters (zero when the query ran on the
// compiled vertex-program path, which does no interpretive work).
func (r *Result) EvalStats() eval.Stats {
	if r.ev == nil {
		return eval.Stats{}
	}
	return r.ev.Stats()
}

// DBBytes estimates the evaluation database size, the memory the naive mode
// must hold at once.
func (r *Result) DBBytes() int64 { return r.db.MemSize() }

// ErrNaiveBudget reports that naive evaluation would exceed its memory
// budget — reproducing the paper's "Naive was not able to scale beyond the
// two smallest datasets" outcome deterministically.
var ErrNaiveBudget = errors.New("driver: naive evaluation exceeds the memory budget (use layered or online mode)")

// unfoldedNode is one node of the *unfolded* provenance graph (paper §3):
// a (vertex, superstep) instantiation object with its message edges and an
// evolution pointer. Naive evaluation materializes all of them at once —
// the memory-hungry representation the compact store avoids.
type unfoldedNode struct {
	vertex    graph.VertexID
	superstep int
	val       value.Value
	sends     []provenance.MsgHalf
	recvs     []provenance.MsgHalf
	evolution *unfoldedNode
}

func (n *unfoldedNode) memSize() int64 {
	s := int64(4 + 8 + 8 + 48 + 8) // fields, slice headers, pointer
	s += int64(n.val.MemSize())
	for _, m := range n.sends {
		s += 4 + int64(m.Val.MemSize())
	}
	for _, m := range n.recvs {
		s += 4 + int64(m.Val.MemSize())
	}
	return s
}

// Naive evaluates q the traditional way (paper §6.2 "Naive"): materialize
// the *entire unfolded provenance graph* in memory, then evaluate the query
// over it in one pass. memoryBudget, when positive, bounds the materialized
// bytes (unfolded graph plus evaluation database); exceeding it returns
// ErrNaiveBudget — the paper's "Naive was not able to scale beyond the two
// smallest datasets".
func Naive(q *analysis.Query, store *provenance.Store, g *graph.Graph, memoryBudget int64, opts ...EvalOpt) (*Result, error) {
	cfg := resolveEvalConfig(opts)
	// Phase 1: full materialization of the unfolded provenance graph.
	nodes := make(map[uint64]*unfoldedNode)
	key := func(v graph.VertexID, ss int) uint64 { return uint64(v)<<32 | uint64(uint32(ss)) }
	var unfoldedBytes int64
	for i := 0; i < store.NumLayers(); i++ {
		l, err := store.Layer(i)
		if err != nil {
			return nil, err
		}
		for ri := range l.Records {
			r := &l.Records[ri]
			n := &unfoldedNode{
				vertex: r.Vertex, superstep: l.Superstep, val: r.Value,
				sends: r.Sends, recvs: r.Recvs,
			}
			if r.PrevActive >= 0 {
				n.evolution = nodes[key(r.Vertex, int(r.PrevActive))]
			}
			nodes[key(r.Vertex, l.Superstep)] = n
			unfoldedBytes += n.memSize()
		}
		if memoryBudget > 0 && unfoldedBytes > memoryBudget {
			return nil, fmt.Errorf("%w: unfolded provenance graph needs %d bytes > budget %d", ErrNaiveBudget, unfoldedBytes, memoryBudget)
		}
	}

	// Phase 2: one bulk evaluation pass over everything.
	db := eval.NewDatabase()
	ev, err := eval.NewEvaluator(q, db)
	if err != nil {
		return nil, err
	}
	ev.SetWorkers(cfg.workers)
	f := newFeeder(ev, g, q, false)
	f.prov = store
	f.feedStatic()
	for _, n := range nodes {
		rec := record{
			vertex:     n.vertex,
			superstep:  n.superstep,
			prevActive: -1,
			hasValue:   !n.val.IsNull(),
			value:      n.val,
			sends:      n.sends,
			recvs:      n.recvs,
			sentAny:    len(n.sends) > 0,
		}
		if n.evolution != nil {
			rec.prevActive = n.evolution.superstep
		}
		f.feedRecord(&rec)
	}
	// Emitted analytics facts are not part of the unfolded node shape; feed
	// them from the layers directly.
	if len(needsOf(q).emitted) > 0 {
		for i := 0; i < store.NumLayers(); i++ {
			l, err := store.Layer(i)
			if err != nil {
				return nil, err
			}
			for ri := range l.Records {
				r := &l.Records[ri]
				if len(r.Emitted) == 0 {
					continue
				}
				rec := record{vertex: r.Vertex, superstep: l.Superstep, prevActive: -1, emitted: r.Emitted}
				f.feedRecord(&rec)
			}
		}
	}
	if err := ev.Fixpoint(); err != nil {
		return nil, err
	}
	if memoryBudget > 0 && unfoldedBytes+db.MemSize() > memoryBudget {
		return nil, fmt.Errorf("%w: %d bytes > %d", ErrNaiveBudget, unfoldedBytes+db.MemSize(), memoryBudget)
	}
	// The unfolded graph must stay resident throughout evaluation; keep it
	// alive until here.
	_ = nodes
	mirrorEvalStats(cfg.metrics, "naive", ev.Stats())
	return &Result{q: q, db: db, ev: ev, Facts: f.FactCount}, nil
}

// Online is an engine.Observer that evaluates a forward or local query in
// lockstep with the analytic (paper §5.2, Theorem 5.4): each superstep's
// transient provenance is fed as a delta batch and the query fixpoint runs
// before the next superstep. At the end of the analytic both its result and
// the query result exist; nothing is captured.
type Online struct {
	q  *analysis.Query
	db *eval.Database

	// Compiled path (the paper's "query vertex program"): rules evaluate
	// directly against the transient records, no EDB materialization.
	compiled *eval.Compiled
	vb       *viewBuilder

	// Interpretive fallback (aggregates, non-local EDB joins).
	ev *eval.Evaluator
	f  *feeder

	// PiggybackTuples counts derived tuples, the payload that rides along
	// analytic messages in a distributed deployment (DESIGN.md decision 4).
	PiggybackTuples int64

	// perSS holds the per-superstep piggyback deltas (index = superstep) —
	// the paper's per-superstep query-overhead curve rather than a single
	// running total. Checkpointed, so a resumed run stays cumulative.
	perSS []int64

	// metrics/name feed the per-superstep deltas into the shared
	// observability registry under the query's name.
	metrics *obs.Metrics
	name    string

	// deg, when set, sheds online-query piggybacking for degraded
	// partitions: records owned by a shed partition are not fed (their
	// provenance capture was shed too), keeping the online view consistent
	// with what offline evaluation of the degraded store would derive.
	deg *supervise.DegradeState
}

// NewOnline prepares online evaluation of q over graph g. Only forward and
// local queries qualify (Theorem 5.4 covers exactly these). Options tune
// the interpretive path: EvalWorkers enables shard-parallel delta rounds on
// each superstep's fixpoint, Interpretive forces the Datalog evaluator.
func NewOnline(q *analysis.Query, g *graph.Graph, opts ...EvalOpt) (*Online, error) {
	if !q.Class.OnlineEvaluable() {
		return nil, fmt.Errorf("driver: %v queries cannot run online; capture provenance and query offline", q.Class)
	}
	cfg := resolveEvalConfig(opts)
	db := eval.NewDatabase()
	o := &Online{q: q, db: db}
	if c, ok := tryCompileOpt(q, db, g, cfg); ok {
		o.compiled = c
		o.vb = newViewBuilder()
		return o, nil
	}
	ev, err := eval.NewEvaluator(q, db)
	if err != nil {
		return nil, err
	}
	ev.SetWorkers(cfg.workers)
	o.ev = ev
	o.f = newFeeder(ev, g, q, true)
	o.f.feedStatic()
	return o, nil
}

// UsesCompiledPath reports whether the query runs as a compiled vertex
// program (vs the interpretive Datalog fallback).
func (o *Online) UsesCompiledPath() bool { return o.compiled != nil }

// SetMetrics attaches a metrics registry and the query name used to label
// its piggyback-tuple series. nil disables instrumentation.
func (o *Online) SetMetrics(m *obs.Metrics, name string) {
	o.metrics = m
	o.name = name
}

// SetDegrade attaches the degradation state shared with the supervisor so
// online evaluation sheds piggybacking alongside capture. nil keeps all
// records flowing.
func (o *Online) SetDegrade(d *supervise.DegradeState) { o.deg = d }

// shedRecords returns v's records with those of shed partitions removed.
// The common case (no degradation) returns the original slice untouched.
func (o *Online) shedRecords(v *engine.SuperstepView) []engine.VertexRecord {
	if o.deg == nil || !o.deg.AnyShed() {
		return v.Records
	}
	if o.deg.Shed(-1) {
		return nil
	}
	out := make([]engine.VertexRecord, 0, len(v.Records))
	for i := range v.Records {
		if o.deg.Shed(v.Engine.PartitionOf(v.Records[i].ID)) {
			continue
		}
		out = append(out, v.Records[i])
	}
	return out
}

// PiggybackBySuperstep returns the tuples derived at each superstep
// (index = superstep) — the per-superstep view of PiggybackTuples.
func (o *Online) PiggybackBySuperstep() []int64 {
	return append([]int64(nil), o.perSS...)
}

// notePiggyback accounts the tuples derived while observing superstep ss.
func (o *Online) notePiggyback(ss int, delta int64) {
	for len(o.perSS) <= ss {
		o.perSS = append(o.perSS, 0)
	}
	o.perSS[ss] += delta
	o.PiggybackTuples += delta
	o.metrics.AddPiggyback(o.name, delta)
}

// NeedsRawMessages implements engine.Observer: online evaluation needs
// per-message receive tuples whenever the query mentions them.
func (o *Online) NeedsRawMessages() bool {
	n := needsOf(o.q)
	return n.recv || n.send
}

// ObserveSuperstep implements engine.Observer.
func (o *Online) ObserveSuperstep(v *engine.SuperstepView) error {
	recs := o.shedRecords(v)
	if o.compiled != nil {
		before := o.compiled.DerivedTuples()
		if err := o.compiled.Layer(o.vb.fromEngine(recs)); err != nil {
			return err
		}
		o.notePiggyback(v.Superstep, o.compiled.DerivedTuples()-before)
		return nil
	}
	for i := range recs {
		o.f.feedEngineRecord(&recs[i])
	}
	before := o.ev.Stats().Derivations
	if err := o.ev.Fixpoint(); err != nil {
		return err
	}
	o.notePiggyback(v.Superstep, o.ev.Stats().Derivations-before)
	return nil
}

// Finish implements engine.Observer: the compiled path completes its
// global rules over the final relations; the interpretive path publishes
// its parallel-round counters.
func (o *Online) Finish(int) error {
	if o.compiled != nil {
		return o.compiled.FinishRun()
	}
	mirrorEvalStats(o.metrics, o.name, o.ev.Stats())
	return nil
}

// Result returns the query results accumulated so far.
func (o *Online) Result() *Result {
	if o.compiled != nil {
		return &Result{q: o.q, db: o.db, Facts: o.compiled.Records()}
	}
	return &Result{q: o.q, db: o.db, ev: o.ev, Facts: o.f.FactCount}
}
