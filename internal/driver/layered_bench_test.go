package driver

import (
	"testing"

	"ariadne/internal/capture"
	"ariadne/internal/engine"
	"ariadne/internal/gen"
	"ariadne/internal/graph"
	"ariadne/internal/provenance"
	"ariadne/internal/queries"
)

// benchCapture runs SSSP under full capture on a spilling store, so the
// layered legs pay the real decode cost the prefetcher hides.
func benchCapture(b *testing.B, scale int) (*graph.Graph, *provenance.Store) {
	b.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(scale, 6, 7))
	if err != nil {
		b.Fatal(err)
	}
	store := provenance.NewStore(provenance.StoreConfig{SpillDir: b.TempDir(), SpillAll: true})
	obs := capture.NewObserver(capture.FullPolicy(), store)
	e, err := engine.New(g, ssspProg{}, engine.Config{Observers: []engine.Observer{obs}})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
	return g, store
}

// BenchmarkLayeredEval compares the layered driver's full run (decode +
// replay + evaluation) between the seed sequential path and the pipelined
// shard-parallel path, on the interpretive evaluator. benchjson derives
// layered_run_speedup from the sequential/pipelined ns/op ratio.
func BenchmarkLayeredEval(b *testing.B) {
	g, store := benchCapture(b, 9)
	defer store.Close()
	def := queries.MonotoneCheck()
	run := func(b *testing.B, opts ...EvalOpt) {
		b.ReportAllocs()
		var facts int64
		for i := 0; i < b.N; i++ {
			q, err := def.Build()
			if err != nil {
				b.Fatal(err)
			}
			res, err := Layered(q, store, g, opts...)
			if err != nil {
				b.Fatal(err)
			}
			facts = res.Facts
		}
		b.ReportMetric(float64(facts)*float64(b.N)/b.Elapsed().Seconds(), "facts/s")
	}
	b.Run("sequential", func(b *testing.B) { run(b, SequentialEval(), Interpretive()) })
	b.Run("pipelined", func(b *testing.B) { run(b, EvalWorkers(8), Interpretive()) })
}
