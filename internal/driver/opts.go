package driver

import (
	"runtime"

	"ariadne/internal/obs"
	"ariadne/internal/pql/eval"
)

// evalConfig carries the per-run evaluation tuning shared by the three
// drivers: shard-parallel worker count, the sequential reference leg, the
// layered prefetch pipeline, and the choice of evaluation machinery.
type evalConfig struct {
	workers      int // 0: auto (min(8, GOMAXPROCS))
	sequential   bool
	noPrefetch   bool
	noProjection bool
	interpretive bool
	metrics      *obs.Metrics
}

// EvalOpt tunes query evaluation (layered, naive, and online drivers).
type EvalOpt func(*evalConfig)

// EvalWorkers sets the shard-parallel evaluation worker count. n <= 0
// selects the default (min(8, GOMAXPROCS)); 1 disables parallel rounds but
// keeps the prefetch pipeline.
func EvalWorkers(n int) EvalOpt {
	return func(c *evalConfig) { c.workers = n }
}

// SequentialEval forces the seed sequential evaluation path: one worker and
// no layer prefetch. This is the reference leg for differential testing and
// benchmarking, mirroring the engine's WithSequentialBarrier.
func SequentialEval() EvalOpt {
	return func(c *evalConfig) { c.sequential = true }
}

// NoPrefetch disables the layered driver's pipelined layer prefetch while
// keeping parallel evaluation (isolates the two optimizations).
func NoPrefetch() EvalOpt {
	return func(c *evalConfig) { c.noPrefetch = true }
}

// NoProjection disables the layered driver's column projection pushdown:
// every layer is materialized full-width regardless of what the query
// reads. This is the reference leg for differential tests and the
// projected-replay benchmark.
func NoProjection() EvalOpt {
	return func(c *evalConfig) { c.noProjection = true }
}

// Interpretive forces the interpretive (Datalog) evaluator even when the
// query compiles to a vertex program — the path shard-parallel rounds apply
// to; the differential tests and benches use it to pin the machinery under
// measurement.
func Interpretive() EvalOpt {
	return func(c *evalConfig) { c.interpretive = true }
}

// WithEvalObs attaches a metrics registry for eval-phase counters (parallel
// rounds, exchange tuples, shard skew, prefetch hit/miss).
func WithEvalObs(m *obs.Metrics) EvalOpt {
	return func(c *evalConfig) { c.metrics = m }
}

// resolveEvalConfig folds the options into a concrete configuration.
func resolveEvalConfig(opts []EvalOpt) evalConfig {
	var c evalConfig
	for _, o := range opts {
		o(&c)
	}
	if c.sequential {
		c.workers = 1
		c.noPrefetch = true
	}
	if c.workers <= 0 {
		c.workers = runtime.GOMAXPROCS(0)
		if c.workers > 8 {
			c.workers = 8
		}
	}
	return c
}

// mirrorEvalStats publishes the evaluator's parallel-round counters to the
// shared registry after a run.
func mirrorEvalStats(m *obs.Metrics, name string, s eval.Stats) {
	if m == nil {
		return
	}
	m.Counter(obs.L("eval_parallel_rounds_total", "query", name)).Add(int64(s.ParallelRounds))
	m.Counter(obs.L("eval_exchange_tuples_total", "query", name)).Add(s.ExchangeTuples)
	m.Gauge(obs.L("eval_max_shard_delta", "query", name)).Set(int64(s.MaxShardDelta))
}
