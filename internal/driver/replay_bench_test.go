package driver

import (
	"testing"

	"ariadne/internal/capture"
	"ariadne/internal/engine"
	"ariadne/internal/gen"
	"ariadne/internal/graph"
	"ariadne/internal/provenance"
	"ariadne/internal/queries"
	"ariadne/internal/value"
)

// vecProg is an ALS-stand-in: vertex state is a dense factor vector and
// every superstep exchanges full vectors with the neighbors. Its provenance
// is dominated by the vector payloads (the paper's §6.1 observation — ALS
// provenance for one superstep exceeded 80GB), which is exactly the shape
// where a query that never reads values or message payloads profits from
// projection pushdown.
type vecProg struct {
	dim   int
	steps int
}

func (p vecProg) InitialValue(_ *graph.Graph, id engine.VertexID) value.Value {
	v := make([]float64, p.dim)
	for i := range v {
		v[i] = float64(id) + float64(i)*0.25
	}
	return value.NewVector(v)
}

func (p vecProg) Compute(ctx *engine.Context, msgs []engine.IncomingMessage) error {
	if ctx.Superstep() >= p.steps {
		return nil
	}
	v := append([]float64(nil), ctx.Value().Vec()...)
	for _, m := range msgs {
		mv := m.Val.Vec()
		for i := range v {
			if i < len(mv) {
				v[i] = 0.5*v[i] + 0.5*mv[i]
			}
		}
	}
	val := value.NewVector(v)
	ctx.SetValue(val)
	dst, _ := ctx.OutNeighbors()
	for _, d := range dst {
		ctx.SendMessage(d, val)
	}
	return nil
}

// BenchmarkLayeredReplay measures projection pushdown on the layered
// driver: a v2-spilled vector-valued capture replayed for Query 4 — which
// reads receive_message peers and edges but never vertex values or message
// payloads — with projection on versus off. The projected leg decodes only
// the core + receive-peer columns from each layer file; the unprojected leg
// pays the full-width decode of every factor vector it will never look at.
// Both legs run the compiled evaluation path. benchjson derives
// layered_replay_facts_s from the projected/unprojected facts/s ratio.
func BenchmarkLayeredReplay(b *testing.B) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 6, 7))
	if err != nil {
		b.Fatal(err)
	}
	store := provenance.NewStore(provenance.StoreConfig{SpillDir: b.TempDir(), SpillAll: true})
	defer store.Close()
	obs := capture.NewObserver(capture.FullPolicy(), store)
	prog := vecProg{dim: 32, steps: 8}
	e, err := engine.New(g, prog, engine.Config{
		MaxSupersteps: prog.steps + 1,
		Observers:     []engine.Observer{obs},
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}

	def := queries.PageRankCheck()
	run := func(b *testing.B, opts ...EvalOpt) {
		b.ReportAllocs()
		var facts int64
		for i := 0; i < b.N; i++ {
			q, err := def.Build()
			if err != nil {
				b.Fatal(err)
			}
			res, err := Layered(q, store, g, opts...)
			if err != nil {
				b.Fatal(err)
			}
			facts = res.Facts
		}
		b.ReportMetric(float64(facts)*float64(b.N)/b.Elapsed().Seconds(), "facts/s")
	}
	b.Run("projected", func(b *testing.B) { run(b) })
	b.Run("unprojected", func(b *testing.B) { run(b, NoProjection()) })
}
