package driver

import (
	"math"

	"ariadne/internal/engine"
	"ariadne/internal/graph"
	"ariadne/internal/value"
)

type ssspProg struct{}

func (ssspProg) InitialValue(_ *graph.Graph, _ engine.VertexID) value.Value {
	return value.NewFloat(math.Inf(1))
}

func (ssspProg) Compute(ctx *engine.Context, msgs []engine.IncomingMessage) error {
	best := math.Inf(1)
	if ctx.ID() == 0 {
		best = 0
	}
	for _, m := range msgs {
		if f := m.Val.Float(); f < best {
			best = f
		}
	}
	if best < ctx.Value().Float() {
		ctx.SetValue(value.NewFloat(best))
		dst, w := ctx.OutNeighbors()
		for i, d := range dst {
			ctx.SendMessage(d, value.NewFloat(best+w[i]))
		}
	}
	return nil
}
