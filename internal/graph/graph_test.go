package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustGraph(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	g, err := NewFromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBasicCSR(t *testing.T) {
	g := mustGraph(t, 4, []Edge{
		{0, 1, 1.5}, {0, 2, 2.0}, {1, 2, 0.5}, {2, 3, 1.0}, {3, 0, 0.25},
	})
	if g.NumVertices() != 4 || g.NumEdges() != 5 {
		t.Fatalf("size = %d/%d", g.NumVertices(), g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(3) != 1 {
		t.Errorf("degrees wrong: %d, %d", g.OutDegree(0), g.OutDegree(3))
	}
	dst, w := g.OutNeighbors(0)
	if len(dst) != 2 || dst[0] != 1 || dst[1] != 2 || w[0] != 1.5 || w[1] != 2.0 {
		t.Errorf("out(0) = %v %v", dst, w)
	}
	if wt, ok := g.EdgeWeight(1, 2); !ok || wt != 0.5 {
		t.Errorf("EdgeWeight(1,2) = %v %v", wt, ok)
	}
	if _, ok := g.EdgeWeight(1, 3); ok {
		t.Error("EdgeWeight(1,3) should not exist")
	}
}

func TestOutOfRangeEdge(t *testing.T) {
	if _, err := NewFromEdges(2, []Edge{{0, 5, 1}}); err == nil {
		t.Error("out-of-range edge should fail")
	}
	if _, err := NewFromEdges(-1, nil); err == nil {
		t.Error("negative n should fail")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := mustGraph(t, 0, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Error("empty graph wrong")
	}
	st := ComputeStats(g, 3, 1)
	if st.AvgDegree != 0 {
		t.Error("empty stats wrong")
	}
}

func TestOutEdgesSorted(t *testing.T) {
	g := mustGraph(t, 5, []Edge{{0, 4, 4}, {0, 1, 1}, {0, 3, 3}, {0, 2, 2}})
	dst, w := g.OutNeighbors(0)
	for i := 1; i < len(dst); i++ {
		if dst[i-1] > dst[i] {
			t.Fatalf("out-edges not sorted: %v", dst)
		}
	}
	for i, d := range dst {
		if w[i] != float64(d) {
			t.Errorf("weight misaligned after sort: dst=%d w=%v", d, w[i])
		}
	}
}

func TestInEdges(t *testing.T) {
	g := mustGraph(t, 4, []Edge{{0, 2, 1}, {1, 2, 2}, {3, 2, 3}, {2, 0, 9}})
	if g.HasInEdges() {
		t.Error("in-edges should not exist before BuildInEdges")
	}
	g.BuildInEdges()
	g.BuildInEdges() // idempotent
	if g.InDegree(2) != 3 || g.InDegree(1) != 0 || g.InDegree(0) != 1 {
		t.Errorf("in-degrees: %d %d %d", g.InDegree(2), g.InDegree(1), g.InDegree(0))
	}
	src, w := g.InNeighbors(2)
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	if len(src) != 3 || sum != 6 {
		t.Errorf("in(2) = %v %v", src, w)
	}
}

func TestUndirected(t *testing.T) {
	g := mustGraph(t, 3, []Edge{{0, 1, 1}, {1, 0, 1}, {1, 2, 1}})
	u := g.Undirected()
	// 0<->1 already both ways; 1->2 gains 2->1. Total 4.
	if u.NumEdges() != 4 {
		t.Fatalf("undirected edges = %d, want 4", u.NumEdges())
	}
	if _, ok := u.EdgeWeight(2, 1); !ok {
		t.Error("reverse edge 2->1 missing")
	}
}

func TestStatsChain(t *testing.T) {
	// 0->1->2->3: eccentricity from 0 is 3.
	g := mustGraph(t, 4, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}})
	dist := make([]int32, 4)
	if ecc := bfsEccentricity(g, 0, dist); ecc != 3 {
		t.Errorf("ecc(0) = %d, want 3", ecc)
	}
	st := ComputeStats(g, 8, 42)
	if st.AvgDegree != 0.75 {
		t.Errorf("avg degree = %v", st.AvgDegree)
	}
	if st.MaxOutDeg != 1 {
		t.Errorf("max out deg = %d", st.MaxOutDeg)
	}
	if !strings.Contains(st.String(), "|V|=4") {
		t.Errorf("stats string: %s", st.String())
	}
}

func TestHighestDegreeVertex(t *testing.T) {
	g := mustGraph(t, 4, []Edge{{2, 0, 1}, {2, 1, 1}, {2, 3, 1}, {0, 1, 1}})
	if hd := HighestDegreeVertex(g); hd != 2 {
		t.Errorf("highest degree = %d, want 2", hd)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := mustGraph(t, 4, []Edge{{0, 1, 0.5}, {1, 2, 1}, {3, 0, 2.25}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 4 || g2.NumEdges() != 3 {
		t.Fatalf("round trip size %d/%d", g2.NumVertices(), g2.NumEdges())
	}
	if w, ok := g2.EdgeWeight(3, 0); !ok || w != 2.25 {
		t.Errorf("weight lost: %v %v", w, ok)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",       // too few fields
		"a 1\n",     // bad src
		"0 b\n",     // bad dst
		"0 1 zzz\n", // bad weight
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Errorf("input %q should fail", c)
		}
	}
	// Comments and blanks are fine.
	g, err := ReadEdgeList(strings.NewReader("# comment\n\n% also comment\n0 1\n"))
	if err != nil || g.NumEdges() != 1 {
		t.Errorf("comment handling: %v %v", g, err)
	}
}

func TestCSRPropertyDegreeSum(t *testing.T) {
	// Property: sum of out-degrees == NumEdges, and in-CSR mirrors out-CSR.
	f := func(raw []uint16) bool {
		const n = 32
		edges := make([]Edge, 0, len(raw))
		for _, r := range raw {
			edges = append(edges, Edge{VertexID(r % n), VertexID((r >> 5) % n), 1})
		}
		g, err := NewFromEdges(n, edges)
		if err != nil {
			return false
		}
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.OutDegree(VertexID(v))
		}
		if sum != g.NumEdges() {
			return false
		}
		g.BuildInEdges()
		insum := 0
		for v := 0; v < n; v++ {
			insum += g.InDegree(VertexID(v))
		}
		return insum == g.NumEdges()
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMemSizePositive(t *testing.T) {
	g := mustGraph(t, 3, []Edge{{0, 1, 1}})
	if g.MemSize() <= 0 {
		t.Error("MemSize should be positive")
	}
	before := g.MemSize()
	g.BuildInEdges()
	if g.MemSize() <= before {
		t.Error("in-edges should increase MemSize")
	}
}
