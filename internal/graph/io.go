package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Edge-list text I/O. The format is one edge per line:
//
//	src dst [weight]
//
// Lines starting with '#' or '%' are comments. Vertex IDs must be
// non-negative integers; the vertex count is 1 + the largest ID seen.

// ReadEdgeList parses an edge-list stream into a Graph.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var edges []Edge
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst [weight]', got %q", lineNo, line)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %v", lineNo, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %v", lineNo, err)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %v", lineNo, err)
			}
		}
		edges = append(edges, Edge{VertexID(src), VertexID(dst), w})
		if int(src) > maxID {
			maxID = int(src)
		}
		if int(dst) > maxID {
			maxID = int(dst)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return NewFromEdges(maxID+1, edges)
}

// WriteEdgeList writes g in edge-list format with weights.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < g.NumVertices(); v++ {
		dst, wts := g.OutNeighbors(VertexID(v))
		for i, d := range dst {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", v, d, wts[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
