package graph

import (
	"fmt"
	"math/rand"
)

// Stats summarizes a graph, mirroring the columns of the paper's Table 2
// (|V|, |E|, average degree, average diameter estimate).
type Stats struct {
	NumVertices int
	NumEdges    int
	AvgDegree   float64
	// AvgDiameter is the mean eccentricity over sampled sources (BFS hops),
	// an estimate of the paper's "Avg Diameter" column.
	AvgDiameter float64
	MaxOutDeg   int
	MaxInDeg    int
}

// ComputeStats computes summary statistics. diameterSamples BFS runs from
// random sources estimate the average diameter; 0 skips the estimate.
func ComputeStats(g *Graph, diameterSamples int, seed int64) Stats {
	st := Stats{NumVertices: g.NumVertices(), NumEdges: g.NumEdges()}
	if st.NumVertices > 0 {
		st.AvgDegree = float64(st.NumEdges) / float64(st.NumVertices)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(VertexID(v)); d > st.MaxOutDeg {
			st.MaxOutDeg = d
		}
	}
	if g.HasInEdges() {
		for v := 0; v < g.NumVertices(); v++ {
			if d := g.InDegree(VertexID(v)); d > st.MaxInDeg {
				st.MaxInDeg = d
			}
		}
	}
	if diameterSamples > 0 && st.NumVertices > 0 {
		rng := rand.New(rand.NewSource(seed))
		var sum float64
		var cnt int
		dist := make([]int32, g.NumVertices())
		for s := 0; s < diameterSamples; s++ {
			src := VertexID(rng.Intn(g.NumVertices()))
			ecc := bfsEccentricity(g, src, dist)
			if ecc > 0 {
				sum += float64(ecc)
				cnt++
			}
		}
		if cnt > 0 {
			st.AvgDiameter = sum / float64(cnt)
		}
	}
	return st
}

// bfsEccentricity returns the max BFS hop count reached from src
// (0 if src has no out-edges). dist is scratch space of size NumVertices.
func bfsEccentricity(g *Graph, src VertexID, dist []int32) int32 {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []VertexID{src}
	var ecc int32
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dst, _ := g.OutNeighbors(v)
		for _, u := range dst {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				if dist[u] > ecc {
					ecc = dist[u]
				}
				queue = append(queue, u)
			}
		}
	}
	return ecc
}

// HighestDegreeVertex returns the vertex with the largest out-degree,
// used by the paper's Table 4 experiment (forward lineage from the
// highest-degree vertex for PageRank and WCC).
func HighestDegreeVertex(g *Graph) VertexID {
	var best VertexID
	bestDeg := -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(VertexID(v)); d > bestDeg {
			bestDeg = d
			best = VertexID(v)
		}
	}
	return best
}

// String renders a Table-2-style row.
func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d avg-deg=%.2f avg-diam=%.2f", s.NumVertices, s.NumEdges, s.AvgDegree, s.AvgDiameter)
}
