// Package graph provides the in-memory directed graph substrate that both
// the vertex-centric engine and the provenance store operate on.
//
// Graphs are stored in compressed sparse row (CSR) form: out-edges always,
// in-edges optionally (needed by analytics and PQL queries that inspect
// in-degree, e.g. paper Query 4). Vertex IDs are dense uint32 indexes.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. IDs are dense: 0..NumVertices-1.
type VertexID = uint32

// Edge is a weighted directed edge, used during construction.
type Edge struct {
	Src, Dst VertexID
	Weight   float64
}

// Graph is an immutable weighted digraph in CSR form.
type Graph struct {
	numVertices int

	// Out-edge CSR: edges of vertex v are outDst[outOff[v]:outOff[v+1]].
	outOff []int64
	outDst []VertexID
	outW   []float64

	// In-edge CSR, built lazily by BuildInEdges.
	inOff []int64
	inSrc []VertexID
	inW   []float64
}

// NewFromEdges builds a Graph with n vertices from an edge list.
// Edges referencing vertices >= n are rejected. Parallel edges are kept.
// Out-edges of each vertex are sorted by destination.
func NewFromEdges(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	g := &Graph{numVertices: n}
	deg := make([]int64, n+1)
	for _, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for %d vertices", e.Src, e.Dst, n)
		}
		deg[e.Src+1]++
	}
	for i := 1; i <= n; i++ {
		deg[i] += deg[i-1]
	}
	g.outOff = deg
	m := len(edges)
	g.outDst = make([]VertexID, m)
	g.outW = make([]float64, m)
	next := make([]int64, n)
	copy(next, g.outOff[:n])
	for _, e := range edges {
		p := next[e.Src]
		next[e.Src]++
		g.outDst[p] = e.Dst
		g.outW[p] = e.Weight
	}
	// Sort each vertex's out-edges by destination for deterministic iteration.
	for v := 0; v < n; v++ {
		lo, hi := g.outOff[v], g.outOff[v+1]
		sortEdgeRange(g.outDst[lo:hi], g.outW[lo:hi])
	}
	return g, nil
}

func sortEdgeRange(dst []VertexID, w []float64) {
	type pair struct {
		d VertexID
		w float64
	}
	if len(dst) < 2 {
		return
	}
	ps := make([]pair, len(dst))
	for i := range dst {
		ps[i] = pair{dst[i], w[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].d < ps[j].d })
	for i, p := range ps {
		dst[i], w[i] = p.d, p.w
	}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.numVertices }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int { return len(g.outDst) }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int {
	return int(g.outOff[v+1] - g.outOff[v])
}

// OutNeighbors returns the destinations and weights of v's out-edges.
// The returned slices alias internal storage and must not be modified.
func (g *Graph) OutNeighbors(v VertexID) ([]VertexID, []float64) {
	lo, hi := g.outOff[v], g.outOff[v+1]
	return g.outDst[lo:hi], g.outW[lo:hi]
}

// HasInEdges reports whether the in-edge CSR has been built.
func (g *Graph) HasInEdges() bool { return g.inOff != nil }

// BuildInEdges constructs the reverse (in-edge) CSR. Idempotent.
func (g *Graph) BuildInEdges() {
	if g.inOff != nil {
		return
	}
	n := g.numVertices
	deg := make([]int64, n+1)
	for _, d := range g.outDst {
		deg[d+1]++
	}
	for i := 1; i <= n; i++ {
		deg[i] += deg[i-1]
	}
	g.inOff = deg
	g.inSrc = make([]VertexID, len(g.outDst))
	g.inW = make([]float64, len(g.outDst))
	next := make([]int64, n)
	copy(next, g.inOff[:n])
	for v := 0; v < n; v++ {
		lo, hi := g.outOff[v], g.outOff[v+1]
		for i := lo; i < hi; i++ {
			d := g.outDst[i]
			p := next[d]
			next[d]++
			g.inSrc[p] = VertexID(v)
			g.inW[p] = g.outW[i]
		}
	}
}

// InDegree returns the in-degree of v. BuildInEdges must have been called.
func (g *Graph) InDegree(v VertexID) int {
	return int(g.inOff[v+1] - g.inOff[v])
}

// InNeighbors returns the sources and weights of v's in-edges.
// BuildInEdges must have been called first.
func (g *Graph) InNeighbors(v VertexID) ([]VertexID, []float64) {
	lo, hi := g.inOff[v], g.inOff[v+1]
	return g.inSrc[lo:hi], g.inW[lo:hi]
}

// EdgeWeight returns the weight of the first edge v->u and whether it exists.
func (g *Graph) EdgeWeight(v, u VertexID) (float64, bool) {
	dst, w := g.OutNeighbors(v)
	// dst is sorted; binary search.
	i := sort.Search(len(dst), func(i int) bool { return dst[i] >= u })
	if i < len(dst) && dst[i] == u {
		return w[i], true
	}
	return 0, false
}

// Undirected returns a new graph where every edge (u,v) also appears as
// (v,u) (deduplicated against existing reverse edges). WCC treats the input
// as undirected (label propagation both ways), mirroring Giraph's WCC.
func (g *Graph) Undirected() *Graph {
	seen := make(map[uint64]bool, g.NumEdges()*2)
	edges := make([]Edge, 0, g.NumEdges()*2)
	key := func(a, b VertexID) uint64 { return uint64(a)<<32 | uint64(b) }
	for v := 0; v < g.numVertices; v++ {
		dst, w := g.OutNeighbors(VertexID(v))
		for i, d := range dst {
			if !seen[key(VertexID(v), d)] {
				seen[key(VertexID(v), d)] = true
				edges = append(edges, Edge{VertexID(v), d, w[i]})
			}
			if !seen[key(d, VertexID(v))] {
				seen[key(d, VertexID(v))] = true
				edges = append(edges, Edge{d, VertexID(v), w[i]})
			}
		}
	}
	ug, err := NewFromEdges(g.numVertices, edges)
	if err != nil {
		panic("graph: internal error building undirected view: " + err.Error())
	}
	return ug
}

// MemSize returns the approximate memory footprint of the graph in bytes.
// This is the denominator of the paper's provenance-size ratios (Tables 3, 4).
func (g *Graph) MemSize() int64 {
	s := int64(len(g.outOff))*8 + int64(len(g.outDst))*4 + int64(len(g.outW))*8
	s += int64(len(g.inOff))*8 + int64(len(g.inSrc))*4 + int64(len(g.inW))*8
	return s
}
