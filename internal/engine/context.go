package engine

import (
	"ariadne/internal/graph"
	"ariadne/internal/value"
)

// Context is the per-vertex view a Program receives during Compute.
// It is reused across vertices of a partition; Programs must not retain it.
type Context struct {
	engine    *Engine
	superstep int
	partition int

	id      VertexID
	sent    []SentMessage
	emitted []ProvFact
}

func (c *Context) reset(v VertexID) {
	c.id = v
	c.sent = c.sent[:0]
	c.emitted = nil
}

// ID returns the vertex being computed.
func (c *Context) ID() VertexID { return c.id }

// Superstep returns the current superstep number (0-based).
func (c *Context) Superstep() int { return c.superstep }

// NumVertices returns the number of vertices in the graph.
func (c *Context) NumVertices() int { return c.engine.g.NumVertices() }

// Graph returns the input graph (read-only by convention).
func (c *Context) Graph() *graph.Graph { return c.engine.g }

// Observing reports whether any observers are attached to the run, so
// programs can skip EmitProv work when nothing consumes it.
func (c *Context) Observing() bool { return len(c.engine.cfg.Observers) > 0 }

// Value returns the current value of this vertex.
func (c *Context) Value() value.Value { return c.engine.values[c.id] }

// SetValue updates this vertex's value.
func (c *Context) SetValue(v value.Value) { c.engine.values[c.id] = v }

// OutNeighbors returns this vertex's out-edge destinations and weights.
// The slices alias engine storage and must not be modified.
func (c *Context) OutNeighbors() ([]graph.VertexID, []float64) {
	return c.engine.g.OutNeighbors(c.id)
}

// OutDegree returns this vertex's out-degree.
func (c *Context) OutDegree() int { return c.engine.g.OutDegree(c.id) }

// InDegree returns this vertex's in-degree if the graph has in-edges built,
// else -1.
func (c *Context) InDegree() int {
	if !c.engine.g.HasInEdges() {
		return -1
	}
	return c.engine.g.InDegree(c.id)
}

// SendMessage sends val to vertex dst, delivered at the next superstep.
// Giraph-style, dst may be any vertex ID, not only a neighbor (paper Query 4
// monitors exactly this kind of stray message).
func (c *Context) SendMessage(dst VertexID, val value.Value) {
	c.sent = append(c.sent, SentMessage{Dst: dst, Val: val})
}

// SendToAllNeighbors sends val along every out-edge.
func (c *Context) SendToAllNeighbors(val value.Value) {
	dst, _ := c.engine.g.OutNeighbors(c.id)
	for _, d := range dst {
		c.sent = append(c.sent, SentMessage{Dst: d, Val: val})
	}
}

// DiscardSentMessages drops every message this vertex queued during the
// current Compute call. The approximate-optimization wrapper (paper §2.2,
// §6.2.2: "only message neighbors on large updates") uses it to suppress
// sends when the vertex value changed less than the threshold.
func (c *Context) DiscardSentMessages() { c.sent = c.sent[:0] }

// EmitProv publishes an auxiliary provenance fact (table, args...) for this
// vertex at this superstep. Analytics-specific tables such as the paper's
// prov-error and prov-prediction (ALS, Queries 7-8) are produced this way;
// facts flow to observers, never back into the analytic.
func (c *Context) EmitProv(table string, args ...value.Value) {
	c.emitted = append(c.emitted, ProvFact{Table: table, Args: args})
}

// AggregateFloat folds v into the named global aggregator with the given op;
// the merged value is readable next superstep via the AggregatorReader.
func (c *Context) AggregateFloat(name string, op AggOp, v float64) {
	c.engine.agg.add(c.partition, name, op, v)
}

// Aggregated returns the global aggregator values from the previous
// superstep.
func (c *Context) Aggregated() AggregatorReader { return c.engine.agg.reader() }
