package engine

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"ariadne/internal/fault"
	"ariadne/internal/graph"
	"ariadne/internal/obs"
	"ariadne/internal/value"
)

// Checkpoint/recovery subsystem (Giraph-style superstep checkpointing).
//
// At configurable superstep intervals the engine snapshots everything the
// next superstep depends on — vertex values, last-active supersteps, the
// in-flight message queues, merged aggregator values, run statistics, and
// one opaque state blob per checkpointable observer — to a binary file:
//
//	magic "ACKP" | version:1B | payload (value.Blob) | crc32(magic..payload)
//
// Files are written atomically (temp file + fsync + rename) and registered
// in a manifest, itself rewritten atomically, listing checkpoints oldest
// first. Resume walks the manifest newest-first and restores from the first
// checkpoint that passes the CRC and decodes cleanly, so a truncated or
// corrupt newest checkpoint falls back to the previous one.
//
// Because vertex programs are stateless between supersteps (a BSP
// requirement), restoring this snapshot and re-running from the saved
// superstep is byte-identical to an uninterrupted run.

var checkpointMagic = [4]byte{'A', 'C', 'K', 'P'}

const (
	// checkpointVersion 2 extended v1 with the new RunStats totals
	// (delivered/combined messages, peak active, per-phase wall times) and
	// the per-superstep metrics profiles, so a recovered run reports
	// cumulative — not truncated — metrics. Version 3 adds the partition
	// supervision columns (RunStats.PartitionRetries/DeadlineHits/
	// StragglerFlags and the matching per-superstep profile fields) and,
	// inside the capture observer's blob, the capture-gap records and
	// degradation state of a degraded run. Version 4 adds the parallel
	// barrier columns (RunStats.MessagesCombinedSender and the profiles'
	// MessagesCombinedSender/DeliveryMaxShard). Version 5 adds the
	// distributed-tracing telemetry: the span timeline, the per-exchange
	// RPC aggregates behind the net_rpc EDB, and the profiles'
	// per-superstep transport deltas, so a resumed run's trace covers the
	// pre-crash supersteps. Older versions are not readable.
	checkpointVersion  = 5
	manifestName       = "MANIFEST"
	checkpointAttempts = 4
	checkpointBackoff  = time.Millisecond
)

// CheckpointConfig enables superstep-boundary checkpointing.
type CheckpointConfig struct {
	// Dir receives checkpoint files and the manifest.
	Dir string
	// Interval checkpoints every Interval supersteps; <=0 disables.
	Interval int
	// Keep bounds how many checkpoints are retained; <=0 means 2 (the
	// newest plus one fallback for corrupt-newest recovery).
	Keep int
}

func (c *CheckpointConfig) keep() int {
	if c.Keep <= 0 {
		return 2
	}
	return c.Keep
}

// Checkpointable is an optional Observer extension: observers that carry
// state across supersteps (provenance capture, online query evaluation)
// implement it so recovery restores their state in lockstep with the
// engine's — extending the paper's non-interference guarantee across
// failures.
type Checkpointable interface {
	// MarshalCheckpoint snapshots the observer state after the superstep
	// that was just observed.
	MarshalCheckpoint() ([]byte, error)
	// UnmarshalCheckpoint fully resets the observer to the snapshot.
	UnmarshalCheckpoint(data []byte) error
}

// checkpointData is a decoded checkpoint.
type checkpointData struct {
	resumeSS   int
	nVertices  int
	nEdges     int64
	values     []value.Value
	lastActive []int32
	inbox      []inboxEntry
	aggCurrent map[string]float64
	stat       RunStats
	profiles   []obs.SuperstepProfile
	spans      []obs.Span
	rpcs       []obs.RPCStat
	obsPresent []bool
	obsBlobs   [][]byte
}

type inboxEntry struct {
	dst  VertexID
	msgs []IncomingMessage
}

// writeCheckpoint snapshots engine state entering superstep resumeSS.
func (e *Engine) writeCheckpoint(resumeSS int) error {
	ck := e.cfg.Checkpoint
	payload, err := e.encodeCheckpoint(resumeSS)
	if err != nil {
		return fmt.Errorf("engine: checkpoint at superstep %d: %w", resumeSS-1, err)
	}
	name := fmt.Sprintf("checkpoint-%06d.ckpt", resumeSS)
	path := filepath.Join(ck.Dir, name)
	m := e.cfg.Metrics
	write := func() error {
		if err := e.cfg.Fault.Hit(fault.SiteCheckpointWrite, resumeSS-1, -1, -1); err != nil {
			return err
		}
		return writeFileAtomic(path, payload)
	}
	notify := func(attempt int, err error) {
		m.AddRetry("checkpoint")
		m.Tracef(obs.Warn, "checkpoint", resumeSS-1, "write attempt %d/%d failed, retrying: %v",
			attempt, checkpointAttempts, err)
	}
	start := time.Now()
	if err := fault.RetryNotify(checkpointAttempts, checkpointBackoff, write, notify); err != nil {
		m.Tracef(obs.Error, "checkpoint", resumeSS-1, "giving up after %d attempts: %v", checkpointAttempts, err)
		return fmt.Errorf("engine: writing checkpoint at superstep %d: %w", resumeSS-1, err)
	}
	d := time.Since(start)
	e.stat.CheckpointWall += d
	e.lastCkptSS = resumeSS
	m.AddCheckpoint(int64(len(payload)), d)
	m.Tracef(obs.Info, "checkpoint", resumeSS-1, "wrote %s (%d bytes)", name, len(payload))
	return updateManifest(ck.Dir, name, ck.keep())
}

// encodeCheckpoint builds the full file contents (magic through CRC).
func (e *Engine) encodeCheckpoint(resumeSS int) ([]byte, error) {
	w := value.NewBlob()
	w.Uvarint(uint64(resumeSS))
	w.Uvarint(uint64(e.g.NumVertices()))
	w.Uvarint(uint64(e.g.NumEdges()))
	for _, v := range e.values {
		w.Value(v)
	}
	for _, la := range e.lastActive {
		w.Int(int64(la))
	}
	// In-flight messages, flattened and sorted by destination so the
	// checkpoint is independent of the partition count.
	var entries []inboxEntry
	for p := range e.inboxes {
		for dst, msgs := range e.inboxes[p] {
			entries = append(entries, inboxEntry{dst: dst, msgs: msgs})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].dst < entries[j].dst })
	w.Uvarint(uint64(len(entries)))
	for _, en := range entries {
		w.Uvarint(uint64(en.dst))
		w.Uvarint(uint64(len(en.msgs)))
		for _, m := range en.msgs {
			w.Uvarint(uint64(m.Src))
			w.Value(m.Val)
		}
	}
	// Merged aggregator values (Pregel semantics: readable next superstep).
	aggNames := make([]string, 0, len(e.agg.current))
	for name := range e.agg.current {
		aggNames = append(aggNames, name)
	}
	sort.Strings(aggNames)
	w.Uvarint(uint64(len(aggNames)))
	for _, name := range aggNames {
		w.String(name)
		w.Float(e.agg.current[name])
	}
	// Run statistics.
	w.Uvarint(uint64(e.stat.Supersteps))
	w.Uvarint(uint64(e.stat.MessagesSent))
	w.Uvarint(uint64(len(e.stat.ActiveVertices)))
	for _, n := range e.stat.ActiveVertices {
		w.Uvarint(uint64(n))
	}
	// v2: the extended totals and per-phase wall times...
	w.Uvarint(uint64(e.stat.MessagesDelivered))
	w.Uvarint(uint64(e.stat.MessagesCombined))
	w.Uvarint(uint64(e.stat.PeakActiveVertices))
	w.Uvarint(uint64(e.stat.ComputeWall))
	w.Uvarint(uint64(e.stat.BarrierWall))
	w.Uvarint(uint64(e.stat.ObserveWall))
	w.Uvarint(uint64(e.stat.CheckpointWall))
	// v3: partition supervision totals.
	w.Uvarint(uint64(e.stat.PartitionRetries))
	w.Uvarint(uint64(e.stat.DeadlineHits))
	w.Uvarint(uint64(e.stat.StragglerFlags))
	// v4: parallel-barrier totals.
	w.Uvarint(uint64(e.stat.MessagesCombinedSender))
	// Marshal observer blobs before snapshotting the profiles: the capture
	// observer syncs its async spill pipeline here, which back-fills spill
	// bytes/durations into the per-superstep profiles the next block writes.
	// The file layout is unchanged (profiles, then blobs).
	type obBlob struct {
		ok   bool
		blob []byte
	}
	blobs := make([]obBlob, 0, len(e.cfg.Observers))
	for _, o := range e.cfg.Observers {
		c, ok := o.(Checkpointable)
		if !ok {
			blobs = append(blobs, obBlob{})
			continue
		}
		blob, err := c.MarshalCheckpoint()
		if err != nil {
			return nil, fmt.Errorf("observer %T: %w", o, err)
		}
		blobs = append(blobs, obBlob{ok: true, blob: blob})
	}
	// ...the per-superstep metrics profiles (empty when the run is
	// uninstrumented), so Resume restores cumulative observability state.
	obs.EncodeProfiles(w, e.cfg.Metrics.Profiles())
	// v5: the distributed span timeline and per-exchange RPC aggregates
	// (both empty when span tracing is off / the run is in-process).
	obs.EncodeSpans(w, e.cfg.Metrics.Spans())
	obs.EncodeRPCStats(w, e.cfg.Metrics.RPCStats())
	// Observer state blobs, in cfg.Observers order.
	w.Uvarint(uint64(len(blobs)))
	for _, b := range blobs {
		w.Bool(b.ok)
		if b.ok {
			w.Bytes8(b.blob)
		}
	}

	buf := make([]byte, 0, len(w.Bytes())+9)
	buf = append(buf, checkpointMagic[:]...)
	buf = append(buf, checkpointVersion)
	buf = append(buf, w.Bytes()...)
	crc := crc32.ChecksumIEEE(buf)
	buf = append(buf, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
	return buf, nil
}

// loadCheckpoint reads and verifies one checkpoint file. Every corruption —
// truncation at any byte, bit flips, bad counts — returns an error.
func loadCheckpoint(path string) (*checkpointData, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(checkpointMagic)+1+4 {
		return nil, fmt.Errorf("engine: checkpoint %s truncated (%d bytes)", filepath.Base(path), len(raw))
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	crc := uint32(tail[0]) | uint32(tail[1])<<8 | uint32(tail[2])<<16 | uint32(tail[3])<<24
	if crc32.ChecksumIEEE(body) != crc {
		return nil, fmt.Errorf("engine: checkpoint %s fails CRC check", filepath.Base(path))
	}
	if [4]byte(body[:4]) != checkpointMagic {
		return nil, fmt.Errorf("engine: checkpoint %s has bad magic %q", filepath.Base(path), body[:4])
	}
	if body[4] != checkpointVersion {
		return nil, fmt.Errorf("engine: checkpoint %s has unsupported version %d", filepath.Base(path), body[4])
	}
	r := value.NewBlobReader(body[5:])
	cp := &checkpointData{}
	cp.resumeSS = int(r.Uvarint())
	cp.nVertices = r.Count()
	cp.nEdges = int64(r.Uvarint())
	if r.Err() == nil {
		cp.values = make([]value.Value, cp.nVertices)
		for i := range cp.values {
			cp.values[i] = r.Value()
		}
		cp.lastActive = make([]int32, cp.nVertices)
		for i := range cp.lastActive {
			cp.lastActive[i] = int32(r.Int())
		}
	}
	nInbox := r.Count()
	for i := 0; i < nInbox && r.Err() == nil; i++ {
		en := inboxEntry{dst: VertexID(r.Uvarint())}
		nMsgs := r.Count()
		for j := 0; j < nMsgs && r.Err() == nil; j++ {
			en.msgs = append(en.msgs, IncomingMessage{Src: VertexID(r.Uvarint()), Val: r.Value()})
		}
		cp.inbox = append(cp.inbox, en)
	}
	cp.aggCurrent = map[string]float64{}
	nAgg := r.Count()
	for i := 0; i < nAgg && r.Err() == nil; i++ {
		name := r.String()
		cp.aggCurrent[name] = r.Float()
	}
	cp.stat.Supersteps = int(r.Uvarint())
	cp.stat.MessagesSent = int64(r.Uvarint())
	nActive := r.Count()
	for i := 0; i < nActive && r.Err() == nil; i++ {
		cp.stat.ActiveVertices = append(cp.stat.ActiveVertices, int(r.Uvarint()))
	}
	cp.stat.MessagesDelivered = int64(r.Uvarint())
	cp.stat.MessagesCombined = int64(r.Uvarint())
	cp.stat.PeakActiveVertices = int(r.Uvarint())
	cp.stat.ComputeWall = time.Duration(r.Uvarint())
	cp.stat.BarrierWall = time.Duration(r.Uvarint())
	cp.stat.ObserveWall = time.Duration(r.Uvarint())
	cp.stat.CheckpointWall = time.Duration(r.Uvarint())
	cp.stat.PartitionRetries = int64(r.Uvarint())
	cp.stat.DeadlineHits = int64(r.Uvarint())
	cp.stat.StragglerFlags = int64(r.Uvarint())
	cp.stat.MessagesCombinedSender = int64(r.Uvarint())
	if r.Err() == nil {
		var perr error
		if cp.profiles, perr = obs.DecodeProfiles(r); perr != nil {
			return nil, fmt.Errorf("engine: checkpoint %s corrupt: %w", filepath.Base(path), perr)
		}
	}
	if r.Err() == nil {
		var perr error
		if cp.spans, perr = obs.DecodeSpans(r); perr != nil {
			return nil, fmt.Errorf("engine: checkpoint %s corrupt: %w", filepath.Base(path), perr)
		}
	}
	if r.Err() == nil {
		var perr error
		if cp.rpcs, perr = obs.DecodeRPCStats(r); perr != nil {
			return nil, fmt.Errorf("engine: checkpoint %s corrupt: %w", filepath.Base(path), perr)
		}
	}
	nObs := r.Count()
	for i := 0; i < nObs && r.Err() == nil; i++ {
		present := r.Bool()
		cp.obsPresent = append(cp.obsPresent, present)
		if present {
			cp.obsBlobs = append(cp.obsBlobs, r.Bytes8())
		} else {
			cp.obsBlobs = append(cp.obsBlobs, nil)
		}
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("engine: checkpoint %s corrupt: %w", filepath.Base(path), r.Err())
	}
	return cp, nil
}

// restoreCore installs the engine-core slice of a checkpoint — vertex
// values, last-active marks, in-flight inboxes, merged aggregators, and the
// resume superstep — without touching run statistics, metrics history, or
// observer state. It is the re-hydration half of restore(): the resident
// runtime's replay engine seeds from it (no observers attached, so the full
// restore()'s observer-set validation must not apply) and then replays the
// supersteps since to recover state that died with a worker.
func (e *Engine) restoreCore(cp *checkpointData) error {
	if cp.nVertices != e.g.NumVertices() || cp.nEdges != int64(e.g.NumEdges()) {
		return fmt.Errorf("engine: checkpoint was taken over a different graph (%d vertices / %d edges, have %d / %d)",
			cp.nVertices, cp.nEdges, e.g.NumVertices(), e.g.NumEdges())
	}
	copy(e.values, cp.values)
	copy(e.lastActive, cp.lastActive)
	for p := range e.inboxes {
		e.inboxes[p] = make(map[VertexID][]IncomingMessage)
	}
	for _, en := range cp.inbox {
		e.inboxes[e.partition(en.dst)][en.dst] = en.msgs
	}
	e.agg.current = cp.aggCurrent
	e.startSS = cp.resumeSS
	e.lastCkptSS = cp.resumeSS
	return nil
}

// restore loads a decoded checkpoint into the engine.
func (e *Engine) restore(cp *checkpointData) error {
	if len(cp.obsPresent) != len(e.cfg.Observers) {
		return fmt.Errorf("engine: checkpoint has %d observer states, config has %d observers — resume with the same observer set",
			len(cp.obsPresent), len(e.cfg.Observers))
	}
	if err := e.restoreCore(cp); err != nil {
		return err
	}
	e.stat = cp.stat
	// Restore the metrics history so a recovered run reports cumulative
	// per-superstep profiles and counters, not just post-resume ones.
	e.cfg.Metrics.RestoreProfiles(cp.profiles)
	e.cfg.Metrics.RestoreSpans(cp.spans)
	e.cfg.Metrics.RestoreRPCStats(cp.rpcs)
	for i, o := range e.cfg.Observers {
		c, ok := o.(Checkpointable)
		if cp.obsPresent[i] != ok {
			return fmt.Errorf("engine: observer %d (%T) checkpointability mismatch with saved state", i, o)
		}
		if !ok {
			continue
		}
		if err := c.UnmarshalCheckpoint(cp.obsBlobs[i]); err != nil {
			return fmt.Errorf("engine: restoring observer %d (%T): %w", i, o, err)
		}
	}
	return nil
}

// Resume reconstructs an engine from the newest readable checkpoint in
// cfg.Checkpoint.Dir, positioned to continue at the saved superstep. When
// the newest checkpoint is damaged, older manifest entries are tried in
// turn. Observers in cfg must match the checkpointed run's observer set;
// checkpointable ones are restored from their saved state.
func Resume(g *graph.Graph, prog Program, cfg Config) (*Engine, error) {
	ck := cfg.Checkpoint
	if ck == nil || ck.Dir == "" {
		return nil, errors.New("engine: Resume requires Config.Checkpoint with a Dir")
	}
	names, err := readManifest(ck.Dir)
	if err != nil {
		return nil, fmt.Errorf("engine: reading checkpoint manifest: %w", err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("engine: no checkpoints recorded in %s", ck.Dir)
	}
	var errs []error
	for i := len(names) - 1; i >= 0; i-- {
		cp, err := loadCheckpoint(filepath.Join(ck.Dir, names[i]))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		e, err := New(g, prog, cfg)
		if err != nil {
			return nil, err
		}
		if err := e.restore(cp); err != nil {
			errs = append(errs, err)
			continue
		}
		return e, nil
	}
	return nil, fmt.Errorf("engine: no usable checkpoint in %s: %w", ck.Dir, errors.Join(errs...))
}

// ResumedFrom returns the superstep the engine will continue from (0 for a
// fresh engine).
func (e *Engine) ResumedFrom() int { return e.startSS }

// LatestCheckpoint reports the superstep the newest readable checkpoint in
// dir resumes at, or an error when none is usable.
func LatestCheckpoint(dir string) (int, error) {
	names, err := readManifest(dir)
	if err != nil {
		return 0, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		cp, err := loadCheckpoint(filepath.Join(dir, names[i]))
		if err == nil {
			return cp.resumeSS, nil
		}
	}
	return 0, fmt.Errorf("engine: no usable checkpoint in %s", dir)
}

// writeFileAtomic writes data via a temp file, fsync, and rename, so a
// crash mid-write never leaves a partial file at the final path.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// readManifest returns the checkpoint filenames, oldest first.
func readManifest(dir string) ([]string, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var names []string
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line != "" {
			names = append(names, line)
		}
	}
	return names, nil
}

// updateManifest appends name, prunes entries beyond keep, and rewrites the
// manifest atomically. The manifest is rewritten before old files are
// deleted, so a crash between the two leaves only unreferenced files (and a
// resume that tolerates missing ones), never a referenced-but-deleted one.
func updateManifest(dir, name string, keep int) error {
	names, err := readManifest(dir)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("engine: reading checkpoint manifest: %w", err)
	}
	names = append(names, name)
	var drop []string
	if len(names) > keep {
		drop = names[:len(names)-keep]
		names = names[len(names)-keep:]
	}
	if err := writeFileAtomic(filepath.Join(dir, manifestName), []byte(strings.Join(names, "\n")+"\n")); err != nil {
		return fmt.Errorf("engine: writing checkpoint manifest: %w", err)
	}
	for _, old := range drop {
		os.Remove(filepath.Join(dir, old))
	}
	return nil
}
