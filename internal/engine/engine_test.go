package engine

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"ariadne/internal/graph"
	"ariadne/internal/value"
)

// minProg is a miniature SSSP-like program: value = min distance (hop count)
// from vertex 0; on improvement, send value+1 to out-neighbors.
type minProg struct{}

func (minProg) InitialValue(_ *graph.Graph, v VertexID) value.Value {
	return value.NewFloat(math.Inf(1))
}

func (minProg) Compute(ctx *Context, msgs []IncomingMessage) error {
	best := math.Inf(1)
	if ctx.ID() == 0 {
		best = 0
	}
	for _, m := range msgs {
		if f := m.Val.Float(); f < best {
			best = f
		}
	}
	if best < ctx.Value().Float() {
		ctx.SetValue(value.NewFloat(best))
		ctx.SendToAllNeighbors(value.NewFloat(best + 1))
	}
	return nil
}

func chainGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{Src: VertexID(i), Dst: VertexID(i + 1), Weight: 1})
	}
	g, err := graph.NewFromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMinPropagationChain(t *testing.T) {
	for _, parts := range []int{1, 3, 8} {
		g := chainGraph(t, 10)
		e, err := New(g, minProg{}, Config{Partitions: parts})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		// Hop distance along the chain.
		for v, val := range e.Values() {
			if val.Float() != float64(v) {
				t.Errorf("parts=%d: dist[%d] = %v, want %d", parts, v, val, v)
			}
		}
		// Chain of 10 needs 10 supersteps (0..9) plus one quiescent check.
		if stats.Supersteps < 10 {
			t.Errorf("parts=%d: supersteps = %d", parts, stats.Supersteps)
		}
		if stats.ActiveVertices[0] != 10 {
			t.Errorf("superstep 0 must compute all vertices, got %d", stats.ActiveVertices[0])
		}
	}
}

func TestMaxSupersteps(t *testing.T) {
	g := chainGraph(t, 50)
	e, _ := New(g, minProg{}, Config{MaxSupersteps: 5})
	stats, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps != 5 {
		t.Errorf("supersteps = %d, want 5", stats.Supersteps)
	}
	// Vertex 10 unreachable in 5 supersteps.
	if !math.IsInf(e.Values()[10].Float(), 1) {
		t.Errorf("vertex 10 should still be inf")
	}
}

// crashProg fails at a designated vertex and superstep.
type crashProg struct{ at VertexID }

func (crashProg) InitialValue(_ *graph.Graph, _ VertexID) value.Value { return value.NewInt(0) }
func (p crashProg) Compute(ctx *Context, _ []IncomingMessage) error {
	if ctx.Superstep() == 1 && ctx.ID() == p.at {
		return fmt.Errorf("bad input at vertex %d", ctx.ID())
	}
	if ctx.Superstep() == 0 {
		ctx.SendToAllNeighbors(value.NewInt(1))
	}
	return nil
}

func TestCrashCulprit(t *testing.T) {
	g := chainGraph(t, 6)
	e, _ := New(g, crashProg{at: 3}, Config{Partitions: 2})
	_, err := e.Run()
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want CrashError, got %v", err)
	}
	if ce.Vertex != 3 || ce.Superstep != 1 {
		t.Errorf("culprit = vertex %d ss %d, want vertex 3 ss 1", ce.Vertex, ce.Superstep)
	}
	if !e.Stats().Aborted {
		t.Error("stats should mark aborted")
	}
}

// fanProg sends two messages from every leaf to vertex 0 so the combiner
// has something to merge.
type fanProg struct{}

func (fanProg) InitialValue(_ *graph.Graph, _ VertexID) value.Value { return value.NewFloat(0) }
func (fanProg) Compute(ctx *Context, msgs []IncomingMessage) error {
	if ctx.Superstep() == 0 && ctx.ID() != 0 {
		ctx.SendMessage(0, value.NewFloat(1))
		ctx.SendMessage(0, value.NewFloat(2))
		return nil
	}
	var sum float64
	for _, m := range msgs {
		sum += m.Val.Float()
	}
	ctx.SetValue(value.NewFloat(ctx.Value().Float() + sum))
	return nil
}

// countObserver records what it sees.
type countObserver struct {
	raw       bool
	perSS     map[int]int // superstep -> records
	recvCount int
	finished  int
}

func (o *countObserver) NeedsRawMessages() bool { return o.raw }
func (o *countObserver) ObserveSuperstep(v *SuperstepView) error {
	if o.perSS == nil {
		o.perSS = map[int]int{}
	}
	o.perSS[v.Superstep] += len(v.Records)
	for _, r := range v.Records {
		o.recvCount += len(r.Received)
	}
	return nil
}
func (o *countObserver) Finish(last int) error { o.finished = last; return nil }

func TestCombinerMergesMessages(t *testing.T) {
	g, _ := graph.NewFromEdges(4, nil)
	sum := func(a, b value.Value) value.Value { return value.NewFloat(a.Float() + b.Float()) }

	// With combiner: vertex 0 receives one combined message worth 6.
	obs := &countObserver{}
	e, _ := New(g, fanProg{}, Config{Combiner: sum, Observers: []Observer{obs}, Partitions: 2})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Values()[0].Float(); got != 9 {
		t.Errorf("combined sum = %v, want 9", got)
	}
	if obs.recvCount != 1 {
		t.Errorf("combiner should deliver 1 message, saw %d", obs.recvCount)
	}

	// Observer needing raw messages disables the combiner: 6 messages.
	obs2 := &countObserver{raw: true}
	e2, _ := New(g, fanProg{}, Config{Combiner: sum, Observers: []Observer{obs2}, Partitions: 2})
	if _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e2.Values()[0].Float(); got != 9 {
		t.Errorf("raw sum = %v, want 9", got)
	}
	if obs2.recvCount != 6 {
		t.Errorf("raw delivery should carry 6 messages, saw %d", obs2.recvCount)
	}
}

func TestObserverRecordsEvolution(t *testing.T) {
	g := chainGraph(t, 4)
	obs := &evoObserver{seen: map[VertexID][]int{}}
	e, _ := New(g, minProg{}, Config{Observers: []Observer{obs}})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Vertex 2 computes at ss 0 (no update) and ss 2 (update): its record at
	// ss 2 must point back to ss 0 via PrevActive.
	got := obs.prev[2]
	if got[2] != 0 {
		t.Errorf("vertex 2 ss 2 PrevActive = %d, want 0", got[2])
	}
	if got[0] != -1 {
		t.Errorf("vertex 2 ss 0 PrevActive = %d, want -1", got[0])
	}
	if obs.finishedAt < 0 {
		t.Error("Finish not called")
	}
}

type evoObserver struct {
	seen       map[VertexID][]int
	prev       map[VertexID]map[int]int
	finishedAt int
}

func (o *evoObserver) NeedsRawMessages() bool { return false }
func (o *evoObserver) ObserveSuperstep(v *SuperstepView) error {
	if o.prev == nil {
		o.prev = map[VertexID]map[int]int{}
	}
	for _, r := range v.Records {
		o.seen[r.ID] = append(o.seen[r.ID], r.Superstep)
		if o.prev[r.ID] == nil {
			o.prev[r.ID] = map[int]int{}
		}
		o.prev[r.ID][r.Superstep] = r.PrevActive
	}
	return nil
}
func (o *evoObserver) Finish(last int) error { o.finishedAt = last; return nil }

type failObserver struct{}

func (failObserver) NeedsRawMessages() bool                { return false }
func (failObserver) ObserveSuperstep(*SuperstepView) error { return errors.New("boom") }
func (failObserver) Finish(int) error                      { return nil }

func TestObserverErrorAborts(t *testing.T) {
	g := chainGraph(t, 3)
	e, _ := New(g, minProg{}, Config{Observers: []Observer{failObserver{}}})
	if _, err := e.Run(); err == nil {
		t.Fatal("observer error should abort run")
	}
}

// aggProg exercises global aggregators.
type aggProg struct{}

func (aggProg) InitialValue(_ *graph.Graph, _ VertexID) value.Value { return value.NewInt(0) }
func (aggProg) Compute(ctx *Context, _ []IncomingMessage) error {
	if ctx.Superstep() == 0 {
		ctx.AggregateFloat("sum", AggSum, float64(ctx.ID()))
		ctx.AggregateFloat("min", AggMin, float64(ctx.ID()))
		ctx.AggregateFloat("max", AggMax, float64(ctx.ID()))
		ctx.AggregateFloat("count", AggCount, 1)
		ctx.SendMessage(ctx.ID(), value.NewInt(1)) // keep alive one superstep
		return nil
	}
	// Superstep 1: read previous superstep's merged values.
	agg := ctx.Aggregated()
	sum, _ := agg.Float("sum")
	ctx.SetValue(value.NewFloat(sum))
	return nil
}

func TestAggregators(t *testing.T) {
	g, _ := graph.NewFromEdges(5, nil)
	e, _ := New(g, aggProg{}, Config{Partitions: 3})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	agg := e.Aggregated()
	check := func(name string, want float64) {
		t.Helper()
		// After the final superstep the aggregator map reflects the last
		// superstep that wrote, which is superstep 0's values merged.
		got, ok := agg.Float(name)
		if ok && got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	// 0+1+2+3+4 = 10
	if e.Values()[0].Float() != 10 {
		t.Errorf("sum visible at ss1 = %v, want 10", e.Values()[0])
	}
	check("count", 5)
	if _, ok := agg.Float("missing"); ok {
		t.Error("missing aggregator should not exist")
	}
}

func TestDeterministicAcrossPartitions(t *testing.T) {
	g := chainGraph(t, 30)
	run := func(parts int) []value.Value {
		e, _ := New(g, minProg{}, Config{Partitions: parts})
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Values()
	}
	a, b := run(1), run(7)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("value[%d] differs across partition counts: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, minProg{}, Config{}); err == nil {
		t.Error("nil graph should fail")
	}
	g := chainGraph(t, 2)
	if _, err := New(g, nil, Config{}); err == nil {
		t.Error("nil program should fail")
	}
}
