package engine

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ariadne/internal/fault"
	"ariadne/internal/graph"
	"ariadne/internal/value"
)

// runToEnd runs minProg over a chain and returns the final values.
func runToEnd(t *testing.T, n int, cfg Config) []value.Value {
	t.Helper()
	e, err := New(chainGraph(t, n), minProg{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e.Values()
}

func sameValues(t *testing.T, got, want []value.Value) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("value count %d != %d", len(got), len(want))
	}
	for i := range got {
		// Byte-identical: compare the binary encoding, not just Equal.
		g := got[i].AppendBinary(nil)
		w := want[i].AppendBinary(nil)
		if string(g) != string(w) {
			t.Fatalf("value[%d] = %v, want %v (encodings differ)", i, got[i], want[i])
		}
	}
}

func TestCheckpointResumeByteIdentical(t *testing.T) {
	const n = 12
	baseline := runToEnd(t, n, Config{Partitions: 3})

	dir := t.TempDir()
	g := chainGraph(t, n)
	cfg := Config{
		Partitions: 3,
		Checkpoint: &CheckpointConfig{Dir: dir, Interval: 2},
		Fault:      fault.NewInjector(fault.PanicAt(5, -1)),
	}
	e, err := New(g, minProg{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run()
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want CrashError from injected panic, got %v", err)
	}
	if ce.Superstep != 5 {
		t.Errorf("crash superstep = %d, want 5", ce.Superstep)
	}
	if !errors.Is(err, ErrComputePanic) {
		t.Errorf("crash cause should be ErrComputePanic: %v", err)
	}

	// Resume without the fault: picks up from the ss-4 checkpoint.
	cfg.Fault = nil
	re, err := Resume(g, minProg{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if re.ResumedFrom() != 4 {
		t.Errorf("ResumedFrom = %d, want 4", re.ResumedFrom())
	}
	stats, err := re.Run()
	if err != nil {
		t.Fatal(err)
	}
	sameValues(t, re.Values(), baseline)
	if stats.ActiveVertices[0] != n {
		t.Errorf("restored stats lost superstep-0 history: %v", stats.ActiveVertices)
	}
}

func TestResumeAcrossPartitionCounts(t *testing.T) {
	const n = 12
	baseline := runToEnd(t, n, Config{Partitions: 1})

	dir := t.TempDir()
	g := chainGraph(t, n)
	cfg := Config{
		Partitions: 4,
		Checkpoint: &CheckpointConfig{Dir: dir, Interval: 3},
		Fault:      fault.NewInjector(fault.PanicAt(7, -1)),
	}
	e, _ := New(g, minProg{}, cfg)
	if _, err := e.Run(); err == nil {
		t.Fatal("expected injected crash")
	}

	// Checkpoints are partition-count independent: resume on 2 partitions.
	cfg.Fault = nil
	cfg.Partitions = 2
	re, err := Resume(g, minProg{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := re.Run(); err != nil {
		t.Fatal(err)
	}
	sameValues(t, re.Values(), baseline)
}

func TestCheckpointWriteRetriesTransientErrors(t *testing.T) {
	dir := t.TempDir()
	g := chainGraph(t, 8)
	cfg := Config{
		Checkpoint: &CheckpointConfig{Dir: dir, Interval: 2},
		Fault:      fault.NewInjector(fault.IOErrors(fault.SiteCheckpointWrite, 2)),
	}
	e, _ := New(g, minProg{}, cfg)
	if _, err := e.Run(); err != nil {
		t.Fatalf("transient checkpoint errors should be retried: %v", err)
	}
	if _, err := LatestCheckpoint(dir); err != nil {
		t.Fatalf("no checkpoint after retried writes: %v", err)
	}

	// More consecutive failures than attempts: the run aborts cleanly.
	cfg.Fault = fault.NewInjector(fault.IOErrors(fault.SiteCheckpointWrite, 100))
	e2, _ := New(chainGraph(t, 8), minProg{}, cfg)
	stats, err := e2.Run()
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("exhausted retries = %v, want ErrInjected", err)
	}
	if !stats.Aborted {
		t.Error("run should be marked aborted")
	}
}

// crashRun produces a checkpoint directory from a crashed run and returns
// the graph used.
func crashRun(t *testing.T, dir string, interval, crashSS int) {
	t.Helper()
	cfg := Config{
		Checkpoint: &CheckpointConfig{Dir: dir, Interval: interval, Keep: 4},
		Fault:      fault.NewInjector(fault.PanicAt(crashSS, -1)),
	}
	e, _ := New(chainGraph(t, 12), minProg{}, cfg)
	if _, err := e.Run(); err == nil {
		t.Fatal("expected injected crash")
	}
}

func TestResumeFallsBackWhenNewestCorrupt(t *testing.T) {
	dir := t.TempDir()
	crashRun(t, dir, 2, 7) // checkpoints resuming at 2, 4, 6

	// Truncate the newest checkpoint mid-file.
	names, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	newest := filepath.Join(dir, names[len(names)-1])
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := Config{Checkpoint: &CheckpointConfig{Dir: dir, Interval: 2, Keep: 4}}
	re, err := Resume(chainGraph(t, 12), minProg{}, cfg)
	if err != nil {
		t.Fatalf("resume should fall back to an older checkpoint: %v", err)
	}
	if re.ResumedFrom() != 4 {
		t.Errorf("ResumedFrom = %d, want fallback 4", re.ResumedFrom())
	}
	if _, err := re.Run(); err != nil {
		t.Fatal(err)
	}
	sameValues(t, re.Values(), runToEnd(t, 12, Config{}))
}

func TestResumeFailsWhenAllCheckpointsCorrupt(t *testing.T) {
	dir := t.TempDir()
	crashRun(t, dir, 2, 5)
	names, _ := readManifest(dir)
	for _, name := range names {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{Checkpoint: &CheckpointConfig{Dir: dir, Interval: 2}}
	if _, err := Resume(chainGraph(t, 12), minProg{}, cfg); err == nil {
		t.Fatal("resume over all-corrupt checkpoints should fail")
	}
}

func TestResumeRejectsDifferentGraph(t *testing.T) {
	dir := t.TempDir()
	crashRun(t, dir, 2, 5)
	cfg := Config{Checkpoint: &CheckpointConfig{Dir: dir, Interval: 2}}
	if _, err := Resume(chainGraph(t, 7), minProg{}, cfg); err == nil {
		t.Fatal("resume over a different graph should fail")
	}
}

// TestCheckpointTruncationNeverPanics loads the checkpoint file truncated at
// every possible byte boundary: each must produce an error, never a panic.
func TestCheckpointTruncationNeverPanics(t *testing.T) {
	dir := t.TempDir()
	crashRun(t, dir, 2, 5)
	names, _ := readManifest(dir)
	raw, err := os.ReadFile(filepath.Join(dir, names[0]))
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.ckpt")
	for cut := 0; cut < len(raw); cut++ {
		if err := os.WriteFile(trunc, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := loadCheckpoint(trunc); err == nil {
			t.Fatalf("truncation at byte %d of %d decoded without error", cut, len(raw))
		}
	}
	// Bit flips must be caught by the CRC.
	for _, pos := range []int{0, 5, len(raw) / 2, len(raw) - 5} {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x40
		if err := os.WriteFile(trunc, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := loadCheckpoint(trunc); err == nil {
			t.Fatalf("bit flip at byte %d decoded without error", pos)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	// Pre-canceled context: aborts before superstep 0.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, _ := New(chainGraph(t, 10), minProg{}, Config{Context: ctx})
	stats, err := e.Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !stats.Aborted || stats.Supersteps != 0 {
		t.Errorf("stats = %+v, want aborted before superstep 0", stats)
	}

	// Cancel mid-run from an observer: the next barrier aborts the run.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	obs := &cancelObserver{cancel: cancel2, at: 2}
	e2, _ := New(chainGraph(t, 10), minProg{}, Config{Context: ctx2, Observers: []Observer{obs}})
	stats2, err := e2.Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats2.Supersteps != 3 {
		t.Errorf("run stopped after %d supersteps, want 3", stats2.Supersteps)
	}
}

type cancelObserver struct {
	cancel context.CancelFunc
	at     int
}

func (o *cancelObserver) NeedsRawMessages() bool { return false }
func (o *cancelObserver) ObserveSuperstep(v *SuperstepView) error {
	if v.Superstep == o.at {
		o.cancel()
	}
	return nil
}
func (o *cancelObserver) Finish(int) error { return nil }

// aggCheckProg writes an aggregator every superstep and mixes the previous
// superstep's merged value into its own, so a resume that loses aggregator
// state produces different final values.
type aggCheckProg struct{}

func (aggCheckProg) InitialValue(_ *graph.Graph, _ VertexID) value.Value {
	return value.NewFloat(0)
}

func (aggCheckProg) Compute(ctx *Context, _ []IncomingMessage) error {
	ctx.AggregateFloat("sum", AggSum, float64(ctx.ID()+1)*float64(ctx.Superstep()+1))
	prev, _ := ctx.Aggregated().Float("sum")
	ctx.SetValue(value.NewFloat(ctx.Value().Float() + prev))
	ctx.SendMessage(ctx.ID(), value.NewInt(1)) // stay active
	return nil
}

func TestResumeRestoresAggregators(t *testing.T) {
	g := chainGraph(t, 6)
	base, _ := New(g, aggCheckProg{}, Config{MaxSupersteps: 8, Partitions: 2})
	if _, err := base.Run(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg := Config{
		MaxSupersteps: 8,
		Partitions:    2,
		Checkpoint:    &CheckpointConfig{Dir: dir, Interval: 3},
		Fault:         fault.NewInjector(fault.PanicAt(5, -1)),
	}
	e, _ := New(g, aggCheckProg{}, cfg)
	if _, err := e.Run(); err == nil {
		t.Fatal("expected injected crash")
	}
	cfg.Fault = nil
	re, err := Resume(g, aggCheckProg{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := re.Run(); err != nil {
		t.Fatal(err)
	}
	sameValues(t, re.Values(), base.Values())
}
