// Transport boundary: the superstep compute/exchange seam the distributed
// runtime plugs into. The engine remains the single coordinator ("master" in
// BLADYG terms): it owns the authoritative vertex values, inboxes,
// aggregators, observers, and checkpoints, and each superstep it hands every
// partition's work — active vertices, their current values, their inbox —
// to a Transport, which executes the vertex programs either on an in-process
// executor or on a remote worker process and returns the partition's
// outboxes, records, and aggregator contributions. Because the barrier-side
// delivery, combining, observation, and checkpointing code is exactly the
// code the in-process path runs, a transport-backed run is bit-identical to
// a local one by construction; only *where* Compute executes changes.
//
// Robustness contract: a Transport failure (connection loss, exceeded
// message deadlines, an unreachable peer) is reported as an error wrapping
// ErrTransport — distinct from a remote *compute* crash, which travels back
// as ExecResult.Crash and is reconstructed into the same CrashError a local
// run would produce. The recovery ladder, in order: the transport's own
// per-message retransmit budget; partition failover inside the transport's
// worker pool (the TCP leg reroutes the same ExecRequest to a surviving
// worker — any worker computes it bit-identically and capture is fully
// preserved, so a worker death costs nothing but latency while survivors
// remain); the engine's supervised partition retry; and finally, when the
// transport reports that no workers remain, local re-execution — the engine
// pins the partition local from the superstep barrier (the master holds the
// program and graph, so the analytic completes bit-identically) while
// shedding that partition's provenance capture via the degraded-mode
// machinery, exactly as repeated capture failures do.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ariadne/internal/fault"
	"ariadne/internal/graph"
	"ariadne/internal/obs"
	"ariadne/internal/value"
)

// ErrTransport is the base error of transport-layer failures (dial errors,
// send/recv deadline expiries, heartbeat-declared dead peers). It classifies
// a failed partition attempt as "the network, not the program": supervision
// retries it, and past MaxRetries the engine falls back to local execution
// instead of aborting the run.
var ErrTransport = errors.New("transport failure")

// Transport executes one partition's superstep compute, either in-process
// or on a remote worker. Exec must be safe for concurrent calls (the engine
// issues one call per partition per superstep, from the per-partition worker
// goroutines) and must be synchronous: when ctx is cancelled or its deadline
// expires the call returns promptly so a supervised retry never races an
// abandoned attempt.
//
// Exec errors wrapping ErrTransport mean the request may not have reached
// the worker (or the reply was lost); the engine treats the request as
// idempotent — ExecRequest is a pure function of its payload — and re-sends
// it on retry. A remote vertex-program failure is NOT an Exec error: it
// comes back inside ExecResult.Crash so the master reproduces the exact
// CrashError (culprit vertex, superstep, panic/fault cause) a local run
// would have raised.
type Transport interface {
	Exec(ctx context.Context, req *ExecRequest) (*ExecResult, error)
	Close() error
}

// ExecRequest carries everything one partition needs to compute one
// superstep: the active vertices in ascending order with their current
// values and previous-active supersteps, the per-vertex inbox, and the
// merged aggregator values of the previous superstep. It is a pure value —
// executing it twice yields the same ExecResult — which is what licenses
// at-least-once delivery with receiver-side reply dedup in the TCP leg.
type ExecRequest struct {
	Superstep int
	Partition int
	// Observing asks for VertexRecords in the result (provenance capture or
	// online queries are attached master-side).
	Observing bool
	// Combine enables sender-side combining on the worker, using the
	// program's combiner (both sides are constructed from the same analytic,
	// so the association order matches the local path exactly).
	Combine bool
	// Active lists the vertices to compute, ascending. Values and PrevActive
	// align with it; Inbox[i] holds the messages for Active[i] (may be nil).
	Active     []VertexID
	Values     []value.Value
	PrevActive []int32
	Inbox      [][]IncomingMessage
	// Agg holds the merged aggregator values of the previous superstep
	// (Pregel read-your-previous-superstep semantics).
	Agg map[string]float64
	// Trace context (PR 7): when the master runs with span tracing enabled,
	// TraceID carries the run's trace ID and ParentSpan the span ID of this
	// partition's exchange, so the worker's decode/compute/encode child
	// spans land under the right parent in the merged timeline. Both zero
	// when tracing is off — the worker then records nothing.
	TraceID    uint64
	ParentSpan uint64
}

// OutMessage is one outbox entry on the wire: source and destination vertex
// plus the (possibly sender-combined) value, in emission order.
type OutMessage struct {
	Src, Dst VertexID
	Val      value.Value
}

// AggUpdate is one partition's partial aggregator contribution for the
// superstep, merged at the master barrier in the same per-partition order as
// local execution.
type AggUpdate struct {
	Name string
	Op   AggOp
	Val  float64
	N    int64
}

// RemoteCrash is a vertex-program failure serialized across the transport.
// The cause classification travels as flags so the master can rebuild an
// error chain that errors.Is-matches the local sentinels (ErrComputePanic,
// fault.ErrInjected, context deadline/cancel) and supervision classifies the
// retry exactly as it would a local crash.
type RemoteCrash struct {
	Vertex    VertexID
	Superstep int
	Message   string
	Panic     bool
	Injected  bool
	Deadline  bool
	Canceled  bool
}

// Err rebuilds the crash cause with the sentinel chain restored.
func (rc *RemoteCrash) Err() error {
	base := errors.New(rc.Message)
	var err error = base
	if rc.Canceled {
		err = fmt.Errorf("%w: %w", base, context.Canceled)
	} else if rc.Deadline {
		err = fmt.Errorf("%w: %w", base, context.DeadlineExceeded)
	}
	if rc.Injected {
		err = fmt.Errorf("%w: %w", fault.ErrInjected, err)
	}
	if rc.Panic {
		err = fmt.Errorf("%w: %w", ErrComputePanic, err)
	}
	return err
}

// ExecResult is one partition's completed superstep: new values for the
// computed vertices, the per-destination-partition outboxes in canonical
// emission order, the observer records (when requested), message accounting,
// and the partition's aggregator partials. Crash is set instead when a
// vertex failed; the other fields are then meaningless.
type ExecResult struct {
	Partition int
	Crash     *RemoteCrash

	Computed  []VertexID
	NewValues []value.Value // aligned with Computed
	Outbox    [][]OutMessage
	Records   []VertexRecord

	Sent           int64
	CombinedSender int64
	Agg            []AggUpdate

	// Spans carries the worker's completed child spans back to the master,
	// piggybacked on the result frame (empty unless the request carried
	// trace context). The master merges them via Metrics.AddRemoteSpans.
	Spans []obs.Span
}

// Executor runs partition supersteps against request-supplied state — the
// worker-process side of the transport. It wraps a private Engine over the
// same graph and program the master holds; each Exec installs the request's
// values, inbox, and aggregator snapshot, runs the partition exactly as the
// master's in-process path would, and extracts the result. Exec is
// serialized by an internal mutex (a worker serves one master connection,
// but its partitions' requests may arrive back to back).
type Executor struct {
	mu sync.Mutex
	e  *Engine
}

// NewExecutor creates a worker-side executor for prog over g. cfg supplies
// Partitions (which must match the master's) and the program's Combiner;
// other fields are ignored — observers, checkpointing, supervision, and
// metrics live on the master.
func NewExecutor(g *graph.Graph, prog Program, cfg Config) (*Executor, error) {
	e, err := New(g, prog, Config{
		Partitions: cfg.Partitions,
		Combiner:   cfg.Combiner,
		Fault:      cfg.Fault,
	})
	if err != nil {
		return nil, err
	}
	return &Executor{e: e}, nil
}

// Partitions returns the executor's partition count (handshake check).
func (x *Executor) Partitions() int { return x.e.nParts }

// Graph returns the executor's graph (handshake fingerprint).
func (x *Executor) Graph() *graph.Graph { return x.e.g }

// Exec computes one partition superstep from the request's state. The
// context bounds the attempt like a supervision deadline does locally:
// cancellation aborts between vertices and surfaces as a RemoteCrash with
// the deadline/cancel cause preserved.
func (x *Executor) Exec(ctx context.Context, req *ExecRequest) *ExecResult {
	x.mu.Lock()
	defer x.mu.Unlock()
	e := x.e
	p := req.Partition
	inbox := make(map[VertexID][]IncomingMessage, len(req.Active))
	for i, v := range req.Active {
		e.values[v] = req.Values[i]
		e.lastActive[v] = req.PrevActive[i]
		if len(req.Inbox[i]) > 0 {
			inbox[v] = req.Inbox[i]
		}
	}
	e.inboxes[p] = inbox
	e.agg.setCurrent(req.Agg)
	e.agg.resetPartition(p)
	if req.Combine {
		e.sendComb = e.cfg.Combiner
	} else {
		e.sendComb = nil
	}
	e.runCtx = context.Background() // any ctx expiry is attempt-scoped here

	var pr partResult
	e.runPartition(ctx, p, req.Superstep, req.Observing, req.Active, &pr)

	res := &ExecResult{Partition: p, Sent: pr.sent, CombinedSender: pr.combinedSender}
	if c := pr.crash; c != nil {
		res.Crash = &RemoteCrash{
			Vertex:    c.Vertex,
			Superstep: c.Superstep,
			Message:   c.Err.Error(),
			Panic:     errors.Is(c.Err, ErrComputePanic),
			Injected:  errors.Is(c.Err, fault.ErrInjected),
			Deadline:  errors.Is(c.Err, context.DeadlineExceeded),
			Canceled:  errors.Is(c.Err, context.Canceled),
		}
		return res
	}
	res.Computed = append([]VertexID(nil), pr.computed...)
	res.NewValues = make([]value.Value, len(pr.computed))
	for i, v := range pr.computed {
		res.NewValues[i] = e.values[v]
	}
	res.Outbox = make([][]OutMessage, e.nParts)
	for dp, msgs := range pr.outbox {
		if len(msgs) == 0 {
			continue
		}
		out := make([]OutMessage, len(msgs))
		for i, om := range msgs {
			out[i] = OutMessage{Src: om.src, Dst: om.dst, Val: om.val}
		}
		res.Outbox[dp] = out
	}
	if req.Observing {
		res.Records = append([]VertexRecord(nil), pr.records...)
	}
	res.Agg = e.agg.partial(p)
	return res
}

// buildExecRequest snapshots partition p's superstep input for the
// transport. Everything referenced is either copied or immutable for the
// duration of the call (inbox slices are only recycled at the next barrier,
// after every Exec of this superstep returned).
func (e *Engine) buildExecRequest(p, ss int, observing bool, ids []VertexID) *ExecRequest {
	req := &ExecRequest{
		Superstep:  ss,
		Partition:  p,
		Observing:  observing,
		Combine:    e.sendComb != nil,
		Active:     ids,
		Values:     make([]value.Value, len(ids)),
		PrevActive: make([]int32, len(ids)),
		Inbox:      make([][]IncomingMessage, len(ids)),
		Agg:        e.agg.currentSnapshot(),
	}
	inbox := e.inboxes[p]
	for i, v := range ids {
		req.Values[i] = e.values[v]
		req.PrevActive[i] = e.lastActive[v]
		req.Inbox[i] = inbox[v]
	}
	if m := e.cfg.Metrics; m.SpansEnabled() {
		req.TraceID = m.SpanTraceID()
		req.ParentSpan = m.NewSpanID()
	}
	return req
}

// applyExecResult installs a transport result into the master's state: new
// values for the computed vertices, the partition's barrier scratch
// (outboxes, records, accounting), and its aggregator partials. Mirrors
// what runPartition would have left behind, so the barrier code downstream
// is unchanged. Partition-local, so safe from p's worker goroutine.
func (e *Engine) applyExecResult(p int, res *ExecResult, out *partResult) {
	out.reset(e.nParts, false)
	if len(res.Spans) > 0 {
		e.cfg.Metrics.AddRemoteSpans(res.Spans)
	}
	if res.Crash != nil {
		out.crash = &CrashError{Vertex: res.Crash.Vertex, Superstep: res.Crash.Superstep, Err: res.Crash.Err()}
		return
	}
	for i, v := range res.Computed {
		e.values[v] = res.NewValues[i]
	}
	out.computed = append(out.computed, res.Computed...)
	out.records = append(out.records, res.Records...)
	for dp := range res.Outbox {
		for _, m := range res.Outbox[dp] {
			out.outbox[dp] = append(out.outbox[dp], outMsg{src: m.Src, dst: m.Dst, val: m.Val})
		}
	}
	out.sent = res.Sent
	out.combinedSender = res.CombinedSender
	e.agg.applyPartial(p, res.Agg)
}

// transportRetryable classifies failed transport attempts for supervised
// retry: transport-layer failures and everything retryableCrash accepts
// (remote panics and injected faults arrive reconstructed with their
// sentinels intact) are worth re-executing; parent cancellation is not.
func transportRetryable(err error) bool {
	if errors.Is(err, context.Canceled) {
		return false
	}
	return errors.Is(err, ErrTransport) || retryableCrash(err)
}

// transportCompute runs partition p's superstep through the configured
// transport, with the same supervision wrapper the local path uses: the
// attempt snapshot/reset is identical, so a retry (or the local fallback
// below) re-executes from the superstep barrier exactly like a supervised
// local re-execution. A transport with a worker pool (the TCP leg) fails a
// partition over to surviving workers internally, so an ErrTransport
// reaching this ladder means the pool is exhausted: when every supervised
// attempt still fails on a *transport* error — no worker can take the
// partition — it is pinned local for the rest of the run: the master
// executes it in-process (bit-identical result, same code) and sheds its
// provenance capture through the degraded-mode machinery, the same contract
// PR 3 applies to a partition whose capture keeps failing. A worker that
// later rejoins the pool serves other partitions; pinning is sticky by
// design (cheap, deterministic, and the gap accounting stays contiguous).
func (e *Engine) transportCompute(p, ss int, observing bool, ids []VertexID, results []partResult, durs []time.Duration) {
	start := time.Now()
	snap := make([]value.Value, len(ids))
	for i, v := range ids {
		snap[i] = e.values[v]
	}
	req := e.buildExecRequest(p, ss, observing, ids)
	attempt := func(actx context.Context) error {
		res, err := e.cfg.Transport.Exec(actx, req)
		if err != nil {
			return err
		}
		e.applyExecResult(p, res, &results[p])
		if c := results[p].crash; c != nil {
			return c
		}
		return nil
	}
	reset := func() {
		for i, v := range ids {
			e.values[v] = snap[i]
		}
		e.agg.resetPartition(p)
		results[p].reset(e.nParts, false)
	}
	var err error
	if e.sup != nil {
		err = e.sup.Run(e.runCtx, p, ss, attempt, reset, transportRetryable)
	} else if err = attempt(e.runCtx); err != nil && errors.Is(err, ErrTransport) && e.runCtx.Err() == nil {
		// Without supervision the transport's own per-message retries are
		// the only retry budget; give the attempt one clean re-execution
		// before declaring the partition unreachable.
		reset()
		err = attempt(e.runCtx)
	}
	if err != nil {
		if errors.Is(err, ErrTransport) && e.runCtx.Err() == nil {
			m := e.cfg.Metrics
			m.Tracef(obs.Warn, "transport", ss,
				"partition %d unreachable (%v); pinning local and shedding its capture", p, err)
			m.Counter(obs.MetricNetLocalFallbacks).Add(1)
			e.localPinned[p].Store(true)
			e.cfg.Degrade.ShedNow(p, ss)
			reset()
			if e.sup != nil {
				e.superviseCompute(p, ss, observing, ids, results, durs)
				return
			}
			e.runPartition(e.runCtx, p, ss, observing, ids, &results[p])
		} else if results[p].crash == nil {
			// Not a remote compute crash (those left their CrashError in the
			// scratch) and not eligible for local fallback — e.g. a transport
			// failure racing run cancellation. Clear any stale scratch and
			// surface the failure so the barrier aborts consistently instead
			// of delivering a partition that computed nothing.
			v := VertexID(0)
			if len(ids) > 0 {
				v = ids[0]
			}
			reset()
			results[p].crash = &CrashError{Vertex: v, Superstep: ss, Err: err}
		}
	}
	if req.TraceID != 0 {
		// The exchange umbrella span: this partition's whole transport
		// round for the superstep, including supervised retries and any
		// local fallback. Its SpanID is the ParentSpan the worker's child
		// spans and the TCP leg's rpc/backoff spans attached to.
		e.cfg.Metrics.RecordSpan(obs.Span{
			SpanID: req.ParentSpan, Proc: obs.ProcMaster, Name: obs.SpanExchange,
			Superstep: ss, Partition: p,
			Start: start.UnixNano(), Dur: int64(time.Since(start)),
			Tuples: int64(len(ids)),
		})
	}
	if durs != nil {
		durs[p] = time.Since(start)
	}
}

// aggregator helpers for the transport boundary ---------------------------

// currentSnapshot copies the merged previous-superstep aggregator values for
// an ExecRequest.
func (a *aggregators) currentSnapshot() map[string]float64 {
	if len(a.current) == 0 {
		return nil
	}
	m := make(map[string]float64, len(a.current))
	for k, v := range a.current {
		m[k] = v
	}
	return m
}

// setCurrent installs the master-supplied merged aggregator values on a
// worker-side engine.
func (a *aggregators) setCurrent(m map[string]float64) {
	cur := make(map[string]float64, len(m))
	for k, v := range m {
		cur[k] = v
	}
	a.current = cur
}

// partial extracts partition p's aggregator contributions in deterministic
// (name-sorted) order for the wire.
func (a *aggregators) partial(p int) []AggUpdate {
	m := a.parts[p]
	if len(m) == 0 {
		return nil
	}
	ups := make([]AggUpdate, 0, len(m))
	for name, c := range m {
		ups = append(ups, AggUpdate{Name: name, Op: c.op, Val: c.val, N: c.n})
	}
	sort.Slice(ups, func(i, j int) bool { return ups[i].Name < ups[j].Name })
	return ups
}

// applyPartial installs a remote partition's aggregator contributions on the
// master, bit-for-bit the cells local execution would have produced (the
// worker folded them with the same reduce order).
func (a *aggregators) applyPartial(p int, ups []AggUpdate) {
	if len(ups) == 0 {
		a.parts[p] = nil
		return
	}
	m := make(map[string]aggCell, len(ups))
	for _, u := range ups {
		m[u.Name] = aggCell{op: u.Op, val: u.Val, n: u.N}
	}
	a.parts[p] = m
}
